// metrics_diff: the CI regression gate over bench reports.
//
//   metrics_diff <baseline.json> <current.json> [options]
//
// Compares a freshly produced BENCH_<name>.json report against a
// checked-in baseline (bench/baselines/) using obs::DiffReports. Exit
// codes: 0 = within tolerance, 1 = regression (one "FAIL:" line per
// violated metric), 2 = usage or unreadable/unparseable input.
//
// Options (override any rules embedded in the baseline's "diff_rules"):
//   --timing-ratio=N   fail when a seconds-gauge or histogram sum exceeds
//                      baseline * N (N <= 1 disables timing checks)
//   --kpi-ratio=N      rate-KPI floor / latency-KPI ceiling factor
//   --skip=GLOB        ignore metrics matching GLOB (repeatable)
//   --exact-counter=GLOB  restrict the exact-counter gate to matching
//                      counters (repeatable; overrides baseline list)
//   --quiet            suppress informational "note:" lines
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.h"
#include "util/json.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> [--timing-ratio=N] "
               "[--kpi-ratio=N] [--skip=GLOB]... [--exact-counter=GLOB]... "
               "[--quiet]\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return in.good() || in.eof();
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool quiet = false;
  bool have_timing_ratio = false, have_kpi_ratio = false;
  double timing_ratio = 0, kpi_ratio = 0;
  std::vector<std::string> skip, exact_counters;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--timing-ratio=", 15) == 0) {
      if (!ParseDouble(arg + 15, &timing_ratio)) return Usage(argv[0]);
      have_timing_ratio = true;
    } else if (std::strncmp(arg, "--kpi-ratio=", 12) == 0) {
      if (!ParseDouble(arg + 12, &kpi_ratio)) return Usage(argv[0]);
      have_kpi_ratio = true;
    } else if (std::strncmp(arg, "--skip=", 7) == 0) {
      skip.emplace_back(arg + 7);
    } else if (std::strncmp(arg, "--exact-counter=", 16) == 0) {
      exact_counters.emplace_back(arg + 16);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "metrics_diff: unknown option %s\n", arg);
      return Usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) return Usage(argv[0]);

  kairos::util::JsonValue docs[2];
  const char* roles[2] = {"baseline", "current"};
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!ReadFile(paths[i], &text)) {
      std::fprintf(stderr, "metrics_diff: cannot read %s %s\n", roles[i],
                   paths[i].c_str());
      return 2;
    }
    std::string error;
    if (!kairos::util::JsonValue::Parse(text, &docs[i], &error)) {
      std::fprintf(stderr, "metrics_diff: %s %s: %s\n", roles[i],
                   paths[i].c_str(), error.c_str());
      return 2;
    }
  }

  // Precedence: defaults < baseline diff_rules < command-line flags.
  kairos::obs::DiffOptions options;
  kairos::obs::ApplyBaselineRules(docs[0], &options);
  if (have_timing_ratio) options.timing_ratio = timing_ratio;
  if (have_kpi_ratio) options.kpi_ratio = kpi_ratio;
  for (const auto& pattern : skip) options.skip.push_back(pattern);
  if (!exact_counters.empty()) options.exact_counters = exact_counters;

  const kairos::obs::DiffResult result =
      kairos::obs::DiffReports(docs[0], docs[1], options);

  if (!quiet) {
    for (const auto& note : result.notes) {
      std::printf("note: %s\n", note.c_str());
    }
  }
  for (const auto& failure : result.failures) {
    std::printf("FAIL: %s\n", failure.c_str());
  }
  if (!result.ok) {
    std::printf("metrics_diff: %zu regression(s) vs %s\n",
                result.failures.size(), paths[0].c_str());
    return 1;
  }
  std::printf("metrics_diff: OK (%zu metric notes) vs %s\n",
              result.notes.size(), paths[0].c_str());
  return 0;
}
