// The online consolidation control loop end to end:
//
//   build/example_online_consolidation [scenario] [steps]
//
// Streams a synthetic serving-traffic scenario (stable, diurnal,
// flash-crowd, node-drain; see src/trace/scenario.h) through the
// ConsolidationController: telemetry accumulates into rolling profiles,
// drift triggers migration-aware re-solves warm-started from the incumbent
// plan, and each re-solve is sequenced into a spill-checked migration plan.
// Prints the control-event transcript and the final placement.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "online/controller.h"
#include "trace/scenario.h"

using namespace kairos;

int main(int argc, char** argv) {
  trace::ScenarioKind kind = trace::ScenarioKind::kDiurnal;
  if (argc >= 2) {
    for (auto k : trace::AllScenarios()) {
      if (trace::ScenarioName(k) == argv[1]) kind = k;
    }
  }

  trace::ScenarioConfig scenario_config;
  scenario_config.seed = 2026;
  if (argc >= 3) scenario_config.steps = std::atoi(argv[2]);
  const trace::ScenarioTelemetry scenario =
      trace::MakeScenario(kind, scenario_config);

  online::ControllerConfig config;
  config.base.workloads = scenario.profiles;  // metadata template
  config.num_servers = 4;
  config.seed = 2026;
  online::ConsolidationController controller(config);

  std::printf("streaming scenario '%s' (%d workloads, %d steps)\n",
              trace::ScenarioName(kind).c_str(), scenario_config.workloads,
              scenario_config.steps);

  online::ReplayFeed feed = online::ReplayFeed::FromProfiles(scenario.profiles);
  std::vector<online::TelemetrySample> samples;
  int step = 0;
  while (feed.Next(&samples)) {
    if (step == scenario.drain_step) {
      std::printf("step %03d: draining a server\n", step);
      controller.DrainHighestServer();
    }
    controller.Ingest(samples);
    ++step;
  }

  std::printf("\ncontrol transcript (%zu events, %d migration moves total):\n%s",
              controller.history().size(), controller.total_moves(),
              controller.RenderHistory().c_str());

  for (size_t i = 0; i < controller.migration_plans().size(); ++i) {
    const auto& plan = controller.migration_plans()[i];
    if (plan.total_moves() > 0) {
      std::printf("\nre-solve %zu %s", i, plan.Render().c_str());
    }
  }

  std::printf("\nfinal placement on %d active servers, service objective %.2f\n",
              controller.active_servers(), controller.last_service_objective());
  return 0;
}
