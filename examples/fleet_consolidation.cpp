// Heterogeneous-fleet consolidation: place one set of workloads onto a
// mixed-generation fleet (cheap legacy Server 1 boxes next to bigger
// current-generation targets) and compare the class-aware placement with
// the same workloads forced onto the weakest class only.
//
//   build/example_fleet_consolidation
//
// The fleet is data, not a constant: sim::FleetSpec lists machine classes
// (spec, count, per-server cost weight) and every layer — evaluator,
// greedy, metaheuristics, migration planner — prices servers per class.
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "solve/portfolio.h"
#include "trace/scenario.h"
#include "util/table.h"

using namespace kairos;

namespace {

core::ConsolidationPlan SolveOn(const std::vector<monitor::WorkloadProfile>& workloads,
                                const sim::FleetSpec& fleet, std::string* winner) {
  core::ConsolidationProblem problem;
  problem.workloads = workloads;
  problem.fleet = fleet;

  std::vector<solve::PortfolioSolverSpec> specs;
  uint64_t seed = 2026;
  for (const std::string& name : solve::RegisteredSolverNames()) {
    specs.push_back({name, seed});
    seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  }
  const solve::PortfolioResult result =
      solve::PortfolioRunner().Run(problem, specs);
  if (winner) *winner = result.winner;
  return result.best;
}

}  // namespace

int main() {
  // A dozen steady workloads spread from small to RAM-hungry.
  trace::ScenarioConfig config;
  config.steps = 32;
  config.seed = 2026;
  const trace::FleetScenario scenario = trace::MakeFleetScenario(
      trace::FleetScenarioKind::kMixedGeneration, config);

  std::printf("fleet: %s\n", scenario.fleet.Render().c_str());
  std::printf("workloads: %zu (RAM 6..20 GB, CPU 0.5..1.8 cores each)\n\n",
              scenario.profiles.size());

  // 1. Class-aware solve over the full mixed fleet.
  std::string winner;
  const core::ConsolidationPlan mixed =
      SolveOn(scenario.profiles, scenario.fleet, &winner);
  std::printf("class-aware placement (winner %s):\n%s\n", winner.c_str(),
              mixed.Render().c_str());

  // 2. Baseline: the same workloads forced onto the weakest class alone.
  const sim::MachineClass& weak = scenario.fleet.classes[scenario.weakest_class];
  sim::FleetSpec weakest_only;
  weakest_only.AddClass(weak.spec, static_cast<int>(scenario.profiles.size()),
                        weak.cost_weight);
  const core::ConsolidationPlan forced =
      SolveOn(scenario.profiles, weakest_only, nullptr);

  std::printf("forced onto weakest class (%s): servers=%d, fleet cost %s\n",
              weak.spec.name.c_str(), forced.servers_used,
              util::FormatDouble(forced.fleet_cost, 2).c_str());
  std::printf(
      "class-aware fleet cost %s vs weakest-only %s -> %s%% cheaper\n",
      util::FormatDouble(mixed.fleet_cost, 2).c_str(),
      util::FormatDouble(forced.fleet_cost, 2).c_str(),
      util::FormatDouble(forced.fleet_cost > 0
                             ? 100.0 * (forced.fleet_cost - mixed.fleet_cost) /
                                   forced.fleet_cost
                             : 0.0,
                         1)
          .c_str());
  return 0;
}
