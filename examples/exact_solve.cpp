// Budgeted exact solving: prove an optimum with the "exact" branch-and-bound
// solver where the instance allows it, and measure the portfolio's gap to
// the certificate.
//
//   build/example_exact_solve [workloads] [max-nodes]
//
// Takes the first [workloads] servers of the Wikia dataset (default 8 — small
// enough to certify within the default node budget), runs the "exact" solver,
// then races the regular portfolio on the same instance and reports how far
// its incumbent sits from the proven optimum. Raise [workloads] to watch the
// search hit its node budget and degrade gracefully: the plan stays valid and
// the Render() line switches from "proved optimal" to a gap bound.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "model/analytic.h"
#include "solve/portfolio.h"
#include "solve/solver.h"
#include "trace/dataset.h"

using namespace kairos;

int main(int argc, char** argv) {
  const int workloads = argc >= 2 ? std::atoi(argv[1]) : 8;
  const int64_t max_nodes = argc >= 3 ? std::atoll(argv[2]) : 50000;

  const auto traces = trace::DatasetGenerator(2026).Generate(
      trace::DatasetKind::kWikia);
  const model::DiskModel disk_model = model::BuildAnalyticModel(
      sim::DiskSpec::Raid10(), model::AnalyticConfig{}, 120e9, 2000.0);

  core::ConsolidationProblem problem;
  problem.workloads = trace::ToProfiles(traces);
  if (workloads > 0 &&
      workloads < static_cast<int>(problem.workloads.size())) {
    problem.workloads.resize(workloads);
  }
  problem.disk_model = &disk_model;
  // A tight server cap keeps the search tree certifiable; the exact solver
  // prunes with the unified bound layer's committed-cost lower bounds.
  problem.max_servers = 5;

  solve::SolveBudget budget;
  budget.exact_max_nodes = max_nodes;

  std::printf("exact solve: %zu workloads, cap %d, node budget %lld\n",
              problem.workloads.size(), problem.max_servers,
              static_cast<long long>(budget.exact_max_nodes));

  auto exact = solve::SolverRegistry::Global().Create("exact", 2026);
  const core::ConsolidationPlan certificate =
      exact->Solve(problem, budget, nullptr);
  std::printf("\n--- exact branch-and-bound ---\n%s\n",
              certificate.Render().c_str());

  // The same instance through the default portfolio (which deliberately
  // excludes "exact": it is a certificate tool, not a racer).
  solve::PortfolioOptions options;
  options.budget = budget;
  const solve::PortfolioResult portfolio = solve::PortfolioRunner(options).Run(
      problem, solve::PortfolioRunner::DefaultSpecs(2026));
  std::printf("--- portfolio (winner: %s) ---\n%s\n",
              portfolio.winner.c_str(), portfolio.best.Render().c_str());

  const double gap = portfolio.best.objective - certificate.objective;
  if (certificate.proved_optimal) {
    std::printf("portfolio gap to proven optimum: %.6f (%.4f%%)\n", gap,
                100.0 * gap / std::max(1.0, std::abs(certificate.objective)));
  } else {
    std::printf("search truncated at %lld nodes: optimum within %.3f of "
                "%.1f; portfolio sits %.6f above the incumbent\n",
                static_cast<long long>(certificate.exact_nodes),
                certificate.optimality_gap, certificate.objective, gap);
  }
  return 0;
}
