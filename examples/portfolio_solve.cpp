// Solver-portfolio consolidation: race every registered placement strategy
// concurrently and keep the best plan.
//
//   build/example_portfolio_solve [dataset] [threads]
//
// Runs the default portfolio {greedy, engine, anneal, tabu} (src/solve/)
// against one of the paper's datasets, sharing a mutex-protected incumbent
// across solver threads. Results are deterministic for a fixed seed set:
// thread count changes wall-clock only. Prints each member's outcome and
// the winning plan.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "model/analytic.h"
#include "solve/portfolio.h"
#include "trace/dataset.h"
#include "util/units.h"

using namespace kairos;

int main(int argc, char** argv) {
  trace::DatasetKind kind = trace::DatasetKind::kWikia;
  if (argc >= 2) {
    for (auto k : trace::AllDatasets()) {
      if (trace::DatasetName(k) == argv[1]) kind = k;
    }
  }
  const int threads = argc >= 3 ? std::atoi(argv[2]) : 0;

  const auto traces = trace::DatasetGenerator(2026).Generate(kind);
  const model::DiskModel disk_model = model::BuildAnalyticModel(
      sim::DiskSpec::Raid10(), model::AnalyticConfig{}, 120e9, 2000.0);

  core::ConsolidationProblem problem;
  problem.workloads = trace::ToProfiles(traces);
  problem.disk_model = &disk_model;

  std::printf("racing portfolio on '%s' (%zu workloads, threads=%s)\n",
              trace::DatasetName(kind).c_str(), traces.size(),
              threads > 0 ? std::to_string(threads).c_str() : "auto");

  solve::PortfolioOptions options;
  options.threads = threads;
  const auto specs = solve::PortfolioRunner::DefaultSpecs(2026);
  const solve::PortfolioResult result =
      solve::PortfolioRunner(options).Run(problem, specs);

  std::printf("\n%-14s %-10s %-12s %-10s %s\n", "solver", "seconds",
              "objective", "feasible", "servers");
  for (const auto& member : result.members) {
    std::printf("%-14s %-10.2f %-12.1f %-10s %d\n", member.solver.c_str(),
                member.solve_seconds, member.plan.objective,
                member.plan.feasible ? "yes" : "no",
                member.plan.servers_used);
  }
  std::printf("\nwinner: %s (%.2fs wall, %d incumbent improvements%s)\n",
              result.winner.c_str(), result.wall_seconds,
              result.incumbent_improvements,
              result.early_stopped ? ", early-stopped" : "");
  std::printf("\n%s\n", result.best.Render().c_str());
  return 0;
}
