// Solver-portfolio consolidation: race every registered placement strategy
// concurrently and keep the best plan.
//
//   build/example_portfolio_solve [dataset] [threads]
//
// Races every solver in solve::RegisteredSolverNames() (src/solve/) against
// one of the paper's datasets, sharing a mutex-protected incumbent across
// solver threads — strategies registered with SolverRegistry::Global() show
// up here without touching this file. Results are deterministic for a fixed
// seed set: thread count changes wall-clock only. Prints each member's
// outcome and the winning plan.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "model/analytic.h"
#include "solve/portfolio.h"
#include "trace/dataset.h"
#include "util/units.h"

using namespace kairos;

int main(int argc, char** argv) {
  trace::DatasetKind kind = trace::DatasetKind::kWikia;
  if (argc >= 2) {
    for (auto k : trace::AllDatasets()) {
      if (trace::DatasetName(k) == argv[1]) kind = k;
    }
  }
  const int threads = argc >= 3 ? std::atoi(argv[2]) : 0;

  const auto traces = trace::DatasetGenerator(2026).Generate(kind);
  const model::DiskModel disk_model = model::BuildAnalyticModel(
      sim::DiskSpec::Raid10(), model::AnalyticConfig{}, 120e9, 2000.0);

  core::ConsolidationProblem problem;
  problem.workloads = trace::ToProfiles(traces);
  problem.disk_model = &disk_model;

  // One spec per registered solver, each with its own seed derived from the
  // shared experiment seed.
  std::vector<solve::PortfolioSolverSpec> specs;
  uint64_t seed = 2026;
  for (const std::string& name : solve::RegisteredSolverNames()) {
    specs.push_back({name, seed});
    seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  }

  std::printf("racing %zu registered solvers on '%s' (%zu workloads, threads=%s)\n",
              specs.size(), trace::DatasetName(kind).c_str(), traces.size(),
              threads > 0 ? std::to_string(threads).c_str() : "auto");

  solve::PortfolioOptions options;
  options.threads = threads;
  const solve::PortfolioResult result =
      solve::PortfolioRunner(options).Run(problem, specs);

  std::printf("\n%-14s %-10s %-12s %-10s %s\n", "solver", "seconds",
              "objective", "feasible", "servers");
  for (const auto& member : result.members) {
    std::printf("%-14s %-10.2f %-12.1f %-10s %d\n", member.solver.c_str(),
                member.solve_seconds, member.plan.objective,
                member.plan.feasible ? "yes" : "no",
                member.plan.servers_used);
  }
  std::printf("\nwinner: %s (%.2fs wall, %d incumbent improvements%s)\n",
              result.winner.c_str(), result.wall_seconds,
              result.incumbent_improvements,
              result.early_stopped ? ", early-stopped" : "");
  std::printf("\n%s\n", result.best.Render().c_str());
  return 0;
}
