// Quickstart: monitor three database workloads, gauge their RAM, and ask
// the consolidation engine whether they fit one server.
//
//   build/examples/quickstart
//
// Walks the full Kairos pipeline on a small, fast scenario:
//   1. run each workload on its own (simulated) dedicated server,
//   2. gauge the true RAM working set with the probe-table technique,
//   3. collect WorkloadProfiles with the resource monitor,
//   4. solve the consolidation problem,
//   5. print the resulting plan.
#include <cstdio>
#include <memory>

#include "core/engine.h"
#include "db/server.h"
#include "monitor/gauge.h"
#include "monitor/resource_monitor.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"
#include "workload/patterns.h"

using namespace kairos;

namespace {

// Profile one workload the way an operator would: attach the monitor to
// the production server, gauge, and collect statistics for a while.
monitor::WorkloadProfile ProfileWorkload(const std::string& name, uint64_t ws_mb,
                                         double tps, double cpu_us, uint64_t seed) {
  // The "production" deployment: a dedicated 8-core/32 GB server with an
  // over-provisioned 8 GB buffer pool (most of it unused — which is the
  // consolidation opportunity).
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 8 * util::kGiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, seed);

  workload::MicroSpec spec;
  spec.working_set_bytes = ws_mb * util::kMiB;
  spec.data_bytes = 2 * ws_mb * util::kMiB;
  spec.reads_per_tx = 4;
  spec.updates_per_tx = 2;
  spec.cpu_us_per_tx = cpu_us;
  spec.pattern = std::make_shared<workload::FlatPattern>(tps);
  workload::MicroWorkload w(name, spec);

  workload::Driver driver(&server, seed);
  driver.AddWorkload(&w);
  driver.Warm();
  driver.Run(5.0);

  // Step 2: buffer pool gauging — how much RAM does it actually need?
  monitor::BufferPoolGauge gauge(monitor::GaugeConfig{});
  const monitor::GaugeResult gauged = gauge.Run(&driver);
  std::printf("[%s] gauged working set: %.0f MB (buffer pool: %.0f MB)\n",
              name.c_str(), util::ToMiB(gauged.working_set_bytes),
              util::ToMiB(cfg.buffer_pool_bytes));

  // Step 3: collect the resource profile.
  monitor::ResourceMonitor monitor(monitor::MonitorConfig{});
  auto profiles =
      monitor.Collect(&driver, 15.0, {&w}, {{name, gauged.working_set_bytes}});
  return profiles[0];
}

}  // namespace

int main() {
  std::printf("Kairos quickstart: can these three databases share a server?\n\n");

  // Step 1-3: profile each workload on its dedicated server.
  core::ConsolidationProblem problem;
  problem.workloads.push_back(ProfileWorkload("orders", 256, 150, 400, 1));
  problem.workloads.push_back(ProfileWorkload("catalog", 384, 100, 600, 2));
  problem.workloads.push_back(ProfileWorkload("sessions", 128, 200, 300, 3));

  // Step 4: consolidate onto Server1-class machines.
  problem.fleet = sim::FleetSpec::Homogeneous(sim::MachineSpec::Server1());
  core::ConsolidationEngine engine(problem, core::EngineOptions{});
  const core::ConsolidationPlan plan = engine.Solve();

  // Step 5: the plan.
  std::printf("\n%s\n", plan.Render().c_str());
  for (size_t slot = 0; slot < plan.assignment.server_of_slot.size(); ++slot) {
    std::printf("  %s -> server %d\n", problem.workloads[slot].name.c_str(),
                plan.assignment.server_of_slot[slot]);
  }
  std::printf("\n3 dedicated servers -> %d consolidated (%.1f:1)\n",
              plan.servers_used, plan.consolidation_ratio);
  return plan.feasible ? 0 : 1;
}
