// Placement constraints: replication, anti-affinity, and pinning.
//
//   build/examples/replicated_placement
//
// A small fleet where the orders database needs 3 replicas (each on a
// distinct machine), two analytics tenants must never share a server, and
// one compliance database is pinned to server 0. Shows how the engine
// honours all constraints while still minimizing machines.
#include <cstdio>

#include "core/engine.h"
#include "util/units.h"

using namespace kairos;

namespace {

monitor::WorkloadProfile Profile(const std::string& name, double cpu, double ram_gb) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, 6, cpu);
  p.ram_bytes = util::TimeSeries::Constant(
      300, 6, ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, 6, 50);
  p.working_set_bytes = 0.8 * ram_gb * static_cast<double>(util::kGiB);
  return p;
}

}  // namespace

int main() {
  core::ConsolidationProblem problem;

  // 0: the orders database, replicated 3x for availability.
  problem.workloads.push_back(Profile("orders", 1.2, 20));
  problem.workloads.back().replicas = 3;
  // 1-2: two analytics tenants that contend violently when co-located.
  problem.workloads.push_back(Profile("analytics-a", 2.5, 24));
  problem.workloads.push_back(Profile("analytics-b", 2.5, 24));
  problem.anti_affinity.push_back({1, 2});
  // 3: compliance DB that must stay on the audited machine (server 0).
  problem.workloads.push_back(Profile("compliance", 0.4, 12));
  problem.workloads.back().pinned_server = 0;
  // 4-7: assorted small tenants.
  for (int i = 0; i < 4; ++i) {
    problem.workloads.push_back(Profile("app" + std::to_string(i), 0.6, 10));
  }

  problem.fleet = sim::FleetSpec::Homogeneous(sim::MachineSpec::ConsolidationTarget());
  const core::ConsolidationPlan plan =
      core::ConsolidationEngine(problem, core::EngineOptions{}).Solve();

  std::printf("%s\n", plan.Render().c_str());
  int slot = 0;
  for (const auto& w : problem.workloads) {
    for (int r = 0; r < w.replicas; ++r, ++slot) {
      std::printf("  %-12s%s -> server %d\n", w.name.c_str(),
                  w.replicas > 1 ? ("[" + std::to_string(r) + "]").c_str() : "   ",
                  plan.assignment.server_of_slot[slot]);
    }
  }
  std::printf("\nconstraints: orders replicas on distinct servers; analytics "
              "split; compliance pinned to server 0.\n");
  return plan.feasible ? 0 : 1;
}
