// Data-center consolidation from monitoring statistics.
//
//   build/examples/datacenter_consolidation [dataset] [trace-file]
//
// The production path: historical rrdtool-style statistics (here, the
// synthetic Second Life dataset — 97 database servers — or a trace file
// saved in the kairos-rrd format) are converted into workload profiles and
// consolidated onto 12-core / 96 GB target machines, with the disk
// constraint enforced by the target's disk model. Prints the plan,
// per-server load summary, and a comparison against the greedy baseline
// and fractional bound.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/engine.h"
#include "model/analytic.h"
#include "trace/dataset.h"
#include "trace/rrd.h"
#include "util/units.h"

using namespace kairos;

int main(int argc, char** argv) {
  // Pick the dataset (default: SecondLife) or load a trace file.
  std::vector<trace::ServerTrace> traces;
  std::string source = "SecondLife";
  if (argc >= 3 && std::strcmp(argv[1], "--file") == 0) {
    if (!trace::LoadTraces(argv[2], &traces)) {
      std::fprintf(stderr, "cannot load traces from %s\n", argv[2]);
      return 1;
    }
    source = argv[2];
  } else {
    trace::DatasetKind kind = trace::DatasetKind::kSecondLife;
    if (argc >= 2) {
      for (auto k : trace::AllDatasets()) {
        if (trace::DatasetName(k) == argv[1]) kind = k;
      }
    }
    source = trace::DatasetName(kind);
    traces = trace::DatasetGenerator(2026).Generate(kind);
  }
  std::printf("consolidating %zu servers from '%s'\n", traces.size(), source.c_str());

  // Disk model for the target configuration (RAID-10 class array).
  const model::DiskModel disk_model = model::BuildAnalyticModel(
      sim::DiskSpec::Raid10(), model::AnalyticConfig{}, 120e9, 2000.0);

  core::ConsolidationProblem problem;
  problem.workloads = trace::ToProfiles(traces);
  problem.fleet = sim::FleetSpec::Homogeneous(sim::MachineSpec::ConsolidationTarget());
  problem.disk_model = &disk_model;

  core::EngineOptions options;
  const core::ConsolidationPlan plan =
      core::ConsolidationEngine(problem, options).Solve();

  std::printf("\n%s\n", plan.Render().c_str());
  std::printf("summary: %zu -> %d servers (%.1f:1); greedy baseline: %s; "
              "fractional bound: %d; solve time %.1fs\n",
              traces.size(), plan.servers_used, plan.consolidation_ratio,
              plan.greedy_servers >= 0 ? std::to_string(plan.greedy_servers).c_str()
                                       : "infeasible",
              plan.fractional_lower_bound, plan.solve_seconds);
  return plan.feasible ? 0 : 1;
}
