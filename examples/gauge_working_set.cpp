// Buffer pool gauging against a live database.
//
//   build/examples/gauge_working_set
//
// Demonstrates the probe-table technique of Section 3.1 on a TPC-C tenant:
// the probe table grows inside the running DBMS while the user workload
// continues; the printed curve shows user disk reads staying flat until the
// probe displaces useful pages. Compares the gauged estimate with the
// OS-reported "active" memory that a VM-based consolidator would have to
// trust.
#include <cstdio>
#include <memory>

#include "db/server.h"
#include "monitor/gauge.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

using namespace kairos;

int main() {
  // A TPC-C database (5 warehouses, ~675 MB hot) on a server whose DBA
  // granted the DBMS a 4 GB buffer pool "to be safe".
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 4 * util::kGiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, 7);

  workload::TpccWorkload tpcc("tpcc5", 5,
                              std::make_shared<workload::FlatPattern>(150.0));
  workload::Driver driver(&server, 7);
  driver.AddWorkload(&tpcc);
  driver.Warm();
  driver.Run(5.0);

  std::printf("gauging a TPC-C(5w) tenant in a 4 GB buffer pool...\n\n");
  monitor::GaugeConfig gauge_cfg;
  gauge_cfg.max_step_pages = 8192;  // fast growth: the pool is huge
  monitor::BufferPoolGauge gauge(gauge_cfg);
  const monitor::GaugeResult result = gauge.Run(&driver);

  std::printf("stolen%%   user reads/s\n");
  for (size_t i = 0; i < result.curve.size(); i += 3) {
    const auto& p = result.curve[i];
    std::printf("%6.1f   %8.1f\n", 100.0 * p.stolen_fraction, p.reads_per_sec);
  }

  const double os_view = util::ToMiB(server.dbms().ActiveBytes());
  std::printf("\nOS view ('active' memory):  %8.0f MB\n", os_view);
  std::printf("gauged working set:         %8.0f MB\n",
              util::ToMiB(result.working_set_bytes));
  std::printf("true TPC-C(5w) hot set:     %8.0f MB\n",
              util::ToMiB(tpcc.WorkingSetBytes()));
  std::printf("RAM estimate reduced %.1fx -> room for %.0f more tenants like "
              "this on the same box\n",
              os_view / util::ToMiB(result.working_set_bytes),
              (os_view - util::ToMiB(result.working_set_bytes)) /
                  util::ToMiB(result.working_set_bytes));
  std::printf("gauging took %.0f s of simulated time at %.1f MB/s average "
              "probe growth\n", result.duration_s,
              result.avg_growth_bytes_per_sec / 1e6);
  return 0;
}
