// Online consolidation controller scenario sweep: streams the four
// serving-traffic scenarios (stable / diurnal / flash-crowd / node-drain)
// through the control loop twice — migration-aware (warm-started, move
// penalty) vs cold re-solve — and reports re-solve counts, migration
// moves, staging, and final placement quality. The headline: on the
// diurnal scenario the migration-aware loop needs far fewer moves at an
// equal-or-better final service objective.
//
//   build/bench_online_controller [--smoke] [--metrics-out=<path>]
//
// --smoke shrinks the horizon for CI; --metrics-out writes the
// BENCH_online_controller.json report (samples/sec and
// detection-to-migration latency KPIs included).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "obs/sink.h"
#include "online/controller.h"
#include "online/ingest.h"
#include "trace/scenario.h"
#include "util/rng.h"
#include "util/table.h"

using namespace kairos;

namespace {

/// Non-null when --metrics-out is set: every scenario's controller feeds
/// the one sink (tracks distinguish solvers; the "controller" track
/// accumulates all stage timelines in run order).
obs::Sink* g_sink = nullptr;

struct SweepResult {
  int steps = 0;
  int resolves = 0;
  int moves = 0;
  int stages = 0;
  bool all_safe = true;
  int final_servers = 0;
  double final_service_objective = 0;
};

SweepResult RunScenario(trace::ScenarioKind kind, bool migration_aware,
                        int steps, obs::Profiler* profiler) {
  obs::ProfileScope scenario_scope(
      profiler, "scenario/" + trace::ScenarioName(kind) +
                    (migration_aware ? "/aware" : "/cold"));
  trace::ScenarioConfig scenario_config;
  scenario_config.steps = steps;
  scenario_config.seed = bench::kSeed;
  const trace::ScenarioTelemetry scenario =
      trace::MakeScenario(kind, scenario_config);

  online::ControllerConfig config;
  config.base.workloads = scenario.profiles;
  config.num_servers = 4;
  config.migration_aware = migration_aware;
  config.seed = bench::kSeed;
  config.sink = g_sink;
  online::ConsolidationController controller(config);

  online::ReplayFeed feed = online::ReplayFeed::FromProfiles(scenario.profiles);
  feed.AttachSink(g_sink);
  std::vector<online::TelemetrySample> samples;
  SweepResult result;
  const bench::ScopedTimer scenario_timer;
  while (feed.Next(&samples)) {
    if (result.steps == scenario.drain_step) controller.DrainHighestServer();
    controller.Ingest(samples);
    ++result.steps;
  }

  result.resolves = static_cast<int>(controller.history().size());
  result.moves = controller.total_moves();
  for (const auto& e : controller.history()) {
    result.stages += e.stages;
    result.all_safe = result.all_safe && e.migration_safe;
  }
  result.final_servers =
      core::Assignment{controller.assignment()}.ServersUsed();
  result.final_service_objective = controller.CurrentServiceObjective();
  if (g_sink != nullptr) {
    g_sink->metrics()
        .gauge("bench.scenario_seconds." + trace::ScenarioName(kind) +
               (migration_aware ? ".aware" : ".cold"))
        ->Set(scenario_timer.Seconds());
  }
  return result;
}

/// Hard determinism gate: the diurnal and flash-crowd transcripts must be
/// byte-identical with no ingest plane and at 1/2/4/8 ingest threads.
/// Returns false (and reports the divergence on stderr) on any mismatch.
bool VerifyIngestDeterminism(int steps) {
  bool ok = true;
  for (const trace::ScenarioKind kind :
       {trace::ScenarioKind::kDiurnal, trace::ScenarioKind::kFlashCrowd}) {
    trace::ScenarioConfig scenario_config;
    scenario_config.steps = steps;
    scenario_config.seed = bench::kSeed;
    const trace::ScenarioTelemetry scenario =
        trace::MakeScenario(kind, scenario_config);

    auto run = [&](int ingest_threads, int ingest_stripes) {
      online::ControllerConfig config;
      config.base.workloads = scenario.profiles;
      config.num_servers = 4;
      config.seed = bench::kSeed;
      config.ingest_threads = ingest_threads;
      config.ingest_stripes = ingest_stripes;
      // No sink: the gate must not disturb the report's counter set.
      online::ConsolidationController controller(config);
      online::ReplayFeed feed =
          online::ReplayFeed::FromProfiles(scenario.profiles);
      controller.RunToEnd(&feed);
      return controller.RenderHistory();
    };

    const std::string reference = run(1, 0);  // legacy serial path
    for (const int threads : {1, 2, 4, 8}) {
      if (run(threads, 8) != reference) {
        std::fprintf(stderr,
                     "FAIL: %s transcript diverges at ingest_threads=%d\n",
                     trace::ScenarioName(kind).c_str(), threads);
        ok = false;
      }
    }
  }
  return ok;
}

/// Striped ingestion throughput sweep: N streams ingested for a fixed
/// number of steps at 1/2/4/8 threads, pure telemetry -> rolling-profile
/// path (no re-solves). Prints samples/sec per thread count, reports
/// ingest.samples_per_sec.tN / ingest.speedup.t8 KPIs, and cross-checks a
/// state fingerprint across thread counts (bit-identity, non-zero exit on
/// divergence).
bool RunIngestSweep(bench::BenchReporter* reporter, bool smoke) {
  const int streams = smoke ? 20000 : 1000000;
  const int steps = smoke ? 16 : 32;
  reporter->Config("ingest_streams", static_cast<int64_t>(streams));
  reporter->Config("ingest_steps", static_cast<int64_t>(steps));

  // One procedurally filled step, reused every iteration: the timed region
  // covers only the ingestion hot loop, never sample generation.
  std::vector<online::TelemetrySample> step(streams);
  util::Rng rng(bench::kSeed);
  for (auto& s : step) {
    s.cpu_cores = rng.Exponential(0.8);
    s.ram_bytes = rng.Uniform(1e9, 8e9);
    s.update_rows_per_sec = rng.Exponential(50.0);
    s.working_set_bytes = rng.Uniform(1e9, 6e9);
  }

  bench::Banner("striped ingestion sweep (" + std::to_string(streams) +
                " streams x " + std::to_string(steps) + " steps)");
  util::Table table({"threads", "stripes", "seconds", "samples/sec", "speedup"});

  // Fingerprint of a deterministic stream subset: bit-identical across
  // thread counts or the sweep fails the run.
  auto fingerprint = [&](online::StreamingProfileBuilder& builder) {
    std::vector<double> fp;
    for (int w = 0; w < builder.num_workloads(); w += 97) {
      const monitor::ProfileStats stats = builder.Stats(w);
      fp.push_back(stats.p95_cpu_cores);
      fp.push_back(stats.mean_cpu_cores);
      fp.push_back(stats.p95_ram_bytes);
      fp.push_back(builder.LifetimeP95Cpu(w));
    }
    return fp;
  };

  std::vector<double> reference_fp;
  double serial_sps = 0;
  bool ok = true;
  for (const int threads : {1, 2, 4, 8}) {
    online::StreamingProfileBuilder builder(streams, 12, 300.0);
    online::IngestOptions options;
    options.threads = threads;
    online::IngestPlane plane(&builder, options);
    plane.AttachSink(g_sink);

    const bench::ScopedTimer timer;
    for (int t = 0; t < steps; ++t) plane.IngestStep(step);
    const double seconds = timer.Seconds();

    const double sps =
        static_cast<double>(streams) * steps / (seconds > 0 ? seconds : 1e-9);
    if (threads == 1) {
      serial_sps = sps;
      reference_fp = fingerprint(builder);
    } else if (fingerprint(builder) != reference_fp) {
      std::fprintf(stderr,
                   "FAIL: ingest state fingerprint diverges at %d threads\n",
                   threads);
      ok = false;
    }
    table.AddRow({std::to_string(threads),
                  std::to_string(plane.stripes().num_stripes()),
                  util::FormatDouble(seconds, 3),
                  util::FormatDouble(sps / 1e6, 1) + "M",
                  util::FormatDouble(sps / serial_sps, 2) + "x"});
    reporter->Kpi("ingest.samples_per_sec.t" + std::to_string(threads), sps);
    if (threads == 8) reporter->Kpi("ingest.speedup.t8", sps / serial_sps);
  }
  std::printf("%s", table.ToString().c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("online_controller", argc, argv);
  const bool smoke = reporter.smoke();
  const int steps = smoke ? 64 : 288;
  g_sink = reporter.sink();
  reporter.Config("steps", static_cast<int64_t>(steps));

  bench::Banner("online controller scenario sweep (" +
                std::to_string(steps) + " steps, migration-aware vs cold)");

  util::Table table({"scenario", "mode", "re-solves", "moves", "stages",
                     "safe", "final servers", "final objective"});
  double diurnal_moves[2] = {0, 0};
  double diurnal_objective[2] = {0, 0};
  for (trace::ScenarioKind kind : trace::AllScenarios()) {
    for (int mode = 0; mode < 2; ++mode) {
      const bool aware = mode == 0;
      const SweepResult r = RunScenario(kind, aware, steps, reporter.profiler());
      table.AddRow({trace::ScenarioName(kind), aware ? "aware" : "cold",
                    std::to_string(r.resolves), std::to_string(r.moves),
                    std::to_string(r.stages), r.all_safe ? "yes" : "NO",
                    std::to_string(r.final_servers),
                    util::FormatDouble(r.final_service_objective, 1)});
      if (kind == trace::ScenarioKind::kDiurnal) {
        diurnal_moves[mode] = r.moves;
        diurnal_objective[mode] = r.final_service_objective;
      }
    }
  }
  std::printf("%s", table.ToString().c_str());

  std::printf(
      "\ndiurnal: migration-aware used %.0f moves vs %.0f cold (%.1fx fewer), "
      "final objective %.1f vs %.1f\n",
      diurnal_moves[0], diurnal_moves[1],
      diurnal_moves[0] > 0 ? diurnal_moves[1] / diurnal_moves[0] : 0.0,
      diurnal_objective[0], diurnal_objective[1]);

  reporter.Kpi("diurnal.aware_moves", diurnal_moves[0]);
  reporter.Kpi("diurnal.cold_moves", diurnal_moves[1]);

  // Striped parallel ingestion: hard determinism gate, then the
  // throughput sweep (which also cross-checks state bit-identity).
  bench::Banner("ingest determinism gate (1/2/4/8 threads vs serial)");
  const int determinism_steps = smoke ? 32 : 64;
  bool ok = VerifyIngestDeterminism(determinism_steps);
  if (ok) {
    std::printf("transcripts byte-identical across ingest thread counts "
                "(%d steps, diurnal + flash-crowd)\n",
                determinism_steps);
  }
  ok = RunIngestSweep(&reporter, smoke) && ok;

  const int report_status = reporter.WriteReport();
  return ok ? report_status : 1;
}
