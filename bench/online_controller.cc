// Online consolidation controller scenario sweep: streams the four
// serving-traffic scenarios (stable / diurnal / flash-crowd / node-drain)
// through the control loop twice — migration-aware (warm-started, move
// penalty) vs cold re-solve — and reports re-solve counts, migration
// moves, staging, and final placement quality. The headline: on the
// diurnal scenario the migration-aware loop needs far fewer moves at an
// equal-or-better final service objective.
//
//   build/bench_online_controller [--smoke] [--metrics-out=<path>]
//
// --smoke shrinks the horizon for CI; --metrics-out writes the
// BENCH_online_controller.json report (samples/sec and
// detection-to-migration latency KPIs included).
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/evaluator.h"
#include "obs/sink.h"
#include "online/controller.h"
#include "trace/scenario.h"
#include "util/table.h"

using namespace kairos;

namespace {

/// Non-null when --metrics-out is set: every scenario's controller feeds
/// the one sink (tracks distinguish solvers; the "controller" track
/// accumulates all stage timelines in run order).
obs::Sink* g_sink = nullptr;

struct SweepResult {
  int steps = 0;
  int resolves = 0;
  int moves = 0;
  int stages = 0;
  bool all_safe = true;
  int final_servers = 0;
  double final_service_objective = 0;
};

SweepResult RunScenario(trace::ScenarioKind kind, bool migration_aware,
                        int steps, obs::Profiler* profiler) {
  obs::ProfileScope scenario_scope(
      profiler, "scenario/" + trace::ScenarioName(kind) +
                    (migration_aware ? "/aware" : "/cold"));
  trace::ScenarioConfig scenario_config;
  scenario_config.steps = steps;
  scenario_config.seed = bench::kSeed;
  const trace::ScenarioTelemetry scenario =
      trace::MakeScenario(kind, scenario_config);

  online::ControllerConfig config;
  config.base.workloads = scenario.profiles;
  config.num_servers = 4;
  config.migration_aware = migration_aware;
  config.seed = bench::kSeed;
  config.sink = g_sink;
  online::ConsolidationController controller(config);

  online::ReplayFeed feed = online::ReplayFeed::FromProfiles(scenario.profiles);
  feed.AttachSink(g_sink);
  std::vector<online::TelemetrySample> samples;
  SweepResult result;
  const bench::ScopedTimer scenario_timer;
  while (feed.Next(&samples)) {
    if (result.steps == scenario.drain_step) controller.DrainHighestServer();
    controller.Ingest(samples);
    ++result.steps;
  }

  result.resolves = static_cast<int>(controller.history().size());
  result.moves = controller.total_moves();
  for (const auto& e : controller.history()) {
    result.stages += e.stages;
    result.all_safe = result.all_safe && e.migration_safe;
  }
  result.final_servers =
      core::Assignment{controller.assignment()}.ServersUsed();
  result.final_service_objective = controller.CurrentServiceObjective();
  if (g_sink != nullptr) {
    g_sink->metrics()
        .gauge("bench.scenario_seconds." + trace::ScenarioName(kind) +
               (migration_aware ? ".aware" : ".cold"))
        ->Set(scenario_timer.Seconds());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("online_controller", argc, argv);
  const bool smoke = reporter.smoke();
  const int steps = smoke ? 64 : 288;
  g_sink = reporter.sink();
  reporter.Config("steps", static_cast<int64_t>(steps));

  bench::Banner("online controller scenario sweep (" +
                std::to_string(steps) + " steps, migration-aware vs cold)");

  util::Table table({"scenario", "mode", "re-solves", "moves", "stages",
                     "safe", "final servers", "final objective"});
  double diurnal_moves[2] = {0, 0};
  double diurnal_objective[2] = {0, 0};
  for (trace::ScenarioKind kind : trace::AllScenarios()) {
    for (int mode = 0; mode < 2; ++mode) {
      const bool aware = mode == 0;
      const SweepResult r = RunScenario(kind, aware, steps, reporter.profiler());
      table.AddRow({trace::ScenarioName(kind), aware ? "aware" : "cold",
                    std::to_string(r.resolves), std::to_string(r.moves),
                    std::to_string(r.stages), r.all_safe ? "yes" : "NO",
                    std::to_string(r.final_servers),
                    util::FormatDouble(r.final_service_objective, 1)});
      if (kind == trace::ScenarioKind::kDiurnal) {
        diurnal_moves[mode] = r.moves;
        diurnal_objective[mode] = r.final_service_objective;
      }
    }
  }
  std::printf("%s", table.ToString().c_str());

  std::printf(
      "\ndiurnal: migration-aware used %.0f moves vs %.0f cold (%.1fx fewer), "
      "final objective %.1f vs %.1f\n",
      diurnal_moves[0], diurnal_moves[1],
      diurnal_moves[0] > 0 ? diurnal_moves[1] / diurnal_moves[0] : 0.0,
      diurnal_objective[0], diurnal_objective[1]);

  reporter.Kpi("diurnal.aware_moves", diurnal_moves[0]);
  reporter.Kpi("diurnal.cold_moves", diurnal_moves[1]);
  return reporter.WriteReport();
}
