// Google-benchmark microbenchmarks of the hot primitives: buffer-pool
// touches, flush-batch selection, disk-model evaluation, objective
// evaluation and incremental move deltas, and DIRECT iterations. These
// bound the cost of monitoring (must be negligible next to transaction
// work) and of the consolidation engine's inner loops.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "core/evaluator.h"
#include "db/buffer_pool.h"
#include "db/flusher.h"
#include "model/analytic.h"
#include "obs/sink.h"
#include "online/estimators.h"
#include "online/ingest.h"
#include "online/streaming_profile.h"
#include "opt/direct.h"
#include "sim/disk.h"
#include "util/rng.h"
#include "util/units.h"

namespace kairos {
namespace {

void BM_BufferPoolTouchHit(benchmark::State& state) {
  db::BufferPool pool(1 << 16);
  for (db::PageId p = 0; p < (1 << 16); ++p) pool.Touch(p, false);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pool.Touch(static_cast<db::PageId>(rng.UniformInt(0, (1 << 16) - 1)), false));
  }
}
BENCHMARK(BM_BufferPoolTouchHit);

void BM_BufferPoolTouchMissEvict(benchmark::State& state) {
  db::BufferPool pool(1 << 12);
  util::Rng rng(1);
  db::PageId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Touch(next++, (next & 3) == 0));
  }
}
BENCHMARK(BM_BufferPoolTouchMissEvict);

void BM_FlusherSelectBatch(benchmark::State& state) {
  db::BufferPool pool(1 << 16);
  util::Rng rng(2);
  for (int i = 0; i < (1 << 14); ++i) {
    pool.Touch(static_cast<db::PageId>(rng.UniformInt(0, (1 << 16) - 1)), true);
  }
  db::Flusher flusher{db::FlusherConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(flusher.SelectBatch(pool, 0.1, 0.5, false, 120.0));
  }
}
BENCHMARK(BM_FlusherSelectBatch);

void BM_DiskSortedWriteCost(benchmark::State& state) {
  sim::Disk disk{sim::DiskSpec{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.SortedWriteCost(1000, 16384, 4ULL << 30));
  }
}
BENCHMARK(BM_DiskSortedWriteCost);

void BM_DiskModelPredict(benchmark::State& state) {
  const model::DiskModel m = model::BuildAnalyticModel(
      sim::DiskSpec::Raid10(), model::AnalyticConfig{}, 96e9, 2000);
  double ws = 1e9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.PredictWriteBytesPerSec(ws, 500.0));
    ws = ws < 90e9 ? ws + 1e9 : 1e9;
  }
}
BENCHMARK(BM_DiskModelPredict);

core::ConsolidationProblem MakeProblem(int n, int samples) {
  static std::vector<core::ConsolidationProblem> keep;
  core::ConsolidationProblem prob;
  util::Rng rng(7);
  for (int i = 0; i < n; ++i) {
    monitor::WorkloadProfile p;
    p.name = "w" + std::to_string(i);
    std::vector<double> cpu(samples), ram(samples), rows(samples);
    for (int t = 0; t < samples; ++t) {
      cpu[t] = rng.Uniform(0.1, 1.5);
      ram[t] = rng.Uniform(4e9, 20e9);
      rows[t] = rng.Uniform(10, 200);
    }
    p.cpu_cores = util::TimeSeries(300, cpu);
    p.ram_bytes = util::TimeSeries(300, ram);
    p.update_rows_per_sec = util::TimeSeries(300, rows);
    p.working_set_bytes = 8e9;
    prob.workloads.push_back(p);
  }
  return prob;
}

void BM_EvaluatorFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto prob = MakeProblem(n, 288);
  core::Evaluator ev(prob, std::max(2, n / 8));
  util::Rng rng(3);
  std::vector<int> assignment(ev.num_slots());
  for (auto& a : assignment) a = static_cast<int>(rng.UniformInt(0, ev.max_servers() - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.Evaluate(assignment));
  }
}
BENCHMARK(BM_EvaluatorFull)->Arg(32)->Arg(128)->Arg(196);

// --- MoveDelta ops/sec: the incremental hot path of every local search,
// --- SA/tabu sweep, and online re-solve. Items-per-second in the report
// --- is moves evaluated (or applied) per second.

void BM_EvaluatorMoveDelta(benchmark::State& state) {
  const auto prob = MakeProblem(196, 288);
  core::Evaluator ev(prob, 24);
  util::Rng rng(3);
  std::vector<int> assignment(ev.num_slots());
  for (auto& a : assignment) a = static_cast<int>(rng.UniformInt(0, 23));
  ev.Load(assignment);
  for (auto _ : state) {
    const int slot = static_cast<int>(rng.UniformInt(0, ev.num_slots() - 1));
    const int to = static_cast<int>(rng.UniformInt(0, 23));
    benchmark::DoNotOptimize(ev.MoveDelta(slot, to));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluatorMoveDelta);

void BM_EvaluatorMoveDeltaDisk(benchmark::State& state) {
  // Same shape with an active nonlinear disk axis on every server: adds
  // two saturation-frontier evaluations per what-if.
  auto prob = MakeProblem(196, 288);
  static const model::DiskModel disk_model = model::BuildAnalyticModel(
      sim::DiskSpec::Raid10(), model::AnalyticConfig{}, 96e9, 2000);
  prob.disk_model = &disk_model;
  core::Evaluator ev(prob, 24);
  util::Rng rng(3);
  std::vector<int> assignment(ev.num_slots());
  for (auto& a : assignment) a = static_cast<int>(rng.UniformInt(0, 23));
  ev.Load(assignment);
  for (auto _ : state) {
    const int slot = static_cast<int>(rng.UniformInt(0, ev.num_slots() - 1));
    const int to = static_cast<int>(rng.UniformInt(0, 23));
    benchmark::DoNotOptimize(ev.MoveDelta(slot, to));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluatorMoveDeltaDisk);

void BM_EvaluatorMoveDeltaBatched(benchmark::State& state) {
  // The batched counterpart of BM_EvaluatorMoveDeltaDisk: one slot scored
  // against all 24 candidate targets per MoveDeltaBatch call (the
  // cross-shard rebalancer's access pattern). Items processed counts
  // *candidate moves*, directly comparable to the scalar bench's rate —
  // the batch amortizes the slot-removal half of the delta across the
  // whole target row.
  auto prob = MakeProblem(196, 288);
  static const model::DiskModel disk_model = model::BuildAnalyticModel(
      sim::DiskSpec::Raid10(), model::AnalyticConfig{}, 96e9, 2000);
  prob.disk_model = &disk_model;
  core::Evaluator ev(prob, 24);
  util::Rng rng(3);
  std::vector<int> assignment(ev.num_slots());
  for (auto& a : assignment) a = static_cast<int>(rng.UniformInt(0, 23));
  ev.Load(assignment);
  std::vector<int> targets(24);
  for (int j = 0; j < 24; ++j) targets[j] = j;
  std::vector<double> deltas;
  for (auto _ : state) {
    const int slot = static_cast<int>(rng.UniformInt(0, ev.num_slots() - 1));
    ev.MoveDeltaBatch(slot, targets, &deltas);
    benchmark::DoNotOptimize(deltas.data());
  }
  state.SetItemsProcessed(state.iterations() * targets.size());
}
BENCHMARK(BM_EvaluatorMoveDeltaBatched);

void BM_EvaluatorApplyMove(benchmark::State& state) {
  const auto prob = MakeProblem(196, 288);
  core::Evaluator ev(prob, 24);
  util::Rng rng(3);
  std::vector<int> assignment(ev.num_slots());
  for (auto& a : assignment) a = static_cast<int>(rng.UniformInt(0, 23));
  ev.Load(assignment);
  for (auto _ : state) {
    const int slot = static_cast<int>(rng.UniformInt(0, ev.num_slots() - 1));
    const int to = static_cast<int>(rng.UniformInt(0, 23));
    ev.ApplyMove(slot, to);
    benchmark::DoNotOptimize(ev.current_cost());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluatorApplyMove);

// --- Observability substrate: the null-sink branch and the attached-sink
// --- write path must both be negligible next to a DIRECT probe (the
// --- granularity the engine instruments at).

void BM_RegistryCounter(benchmark::State& state) {
  obs::Sink sink;
  obs::Counter* c = sink.metrics().counter("bench.counter");
  for (auto _ : state) {
    c->Add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryCounter);

void BM_TraceSinkEmit(benchmark::State& state) {
  obs::Sink sink;
  const uint32_t track = sink.trace().InternTrack("bench");
  const uint32_t name = sink.trace().InternName("event");
  int64_t i = 0;
  for (auto _ : state) {
    sink.trace().Emit(track, name, obs::EventKind::kPoint, i++, 1, 0.5);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSinkEmit);

/// The engine probe loop with a null vs attached sink: ProbeK carries the
/// instrumented branch, so the two arms bound the observer's overhead at
/// probe granularity (expected: indistinguishable — a DIRECT probe costs
/// orders of magnitude more than a ring write).
void BM_EngineProbeLoop(benchmark::State& state) {
  const bool attached = state.range(0) != 0;
  const auto prob = MakeProblem(32, 64);
  obs::Sink sink;
  core::EngineOptions options;
  options.probe_direct_evaluations = 60;
  options.sink = attached ? &sink : nullptr;
  core::ConsolidationEngine engine(prob, options);
  const int k = std::max(2, 32 / 4);
  for (auto _ : state) {
    core::Assignment out;
    benchmark::DoNotOptimize(engine.ProbeK(k, 60, &out));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(attached ? "sink=attached" : "sink=null");
}
BENCHMARK(BM_EngineProbeLoop)->Arg(0)->Arg(1);

// --- Telemetry ingestion: the pre-SoA per-sample scalar path vs the
// --- fused IngestBatch hot loop vs the striped parallel IngestPlane.
// --- Items processed counts telemetry samples, so the three rates are the
// --- samples/sec ladder of the online control plane's ingestion tier.

constexpr int kIngestStreams = 8192;
constexpr size_t kIngestWindow = 12;

std::vector<online::TelemetrySample> MakeIngestStep(int streams) {
  util::Rng rng(13);
  std::vector<online::TelemetrySample> step(streams);
  for (auto& s : step) {
    s.cpu_cores = rng.Exponential(0.8);
    s.ram_bytes = rng.Uniform(1e9, 8e9);
    s.update_rows_per_sec = rng.Exponential(50.0);
    s.working_set_bytes = rng.Uniform(1e9, 6e9);
  }
  return step;
}

void BM_IngestScalarPerSample(benchmark::State& state) {
  // One scalar estimator object per stream per signal, updated stream by
  // stream — the shape the SoA banks replaced.
  std::vector<online::RollingWindow> cpu(kIngestStreams,
                                         online::RollingWindow(kIngestWindow, 300.0));
  std::vector<online::RollingWindow> ram = cpu, rate = cpu;
  std::vector<online::P2Quantile> p95(kIngestStreams, online::P2Quantile(0.95));
  std::vector<online::DecayingMax> ws(kIngestStreams, online::DecayingMax(0.995));
  const auto step = MakeIngestStep(kIngestStreams);
  for (auto _ : state) {
    for (int w = 0; w < kIngestStreams; ++w) {
      const online::TelemetrySample& s = step[w];
      cpu[w].Push(s.cpu_cores);
      ram[w].Push(s.ram_bytes);
      rate[w].Push(s.update_rows_per_sec);
      p95[w].Add(s.cpu_cores);
      ws[w].Push(s.working_set_bytes);
    }
    benchmark::DoNotOptimize(cpu.data());
  }
  state.SetItemsProcessed(state.iterations() * kIngestStreams);
}
BENCHMARK(BM_IngestScalarPerSample);

void BM_IngestBatch(benchmark::State& state) {
  online::StreamingProfileBuilder builder(kIngestStreams, kIngestWindow, 300.0);
  const auto step = MakeIngestStep(kIngestStreams);
  for (auto _ : state) {
    builder.IngestBatch(step.data(), 0, kIngestStreams);
    builder.CommitStep();
    benchmark::DoNotOptimize(builder.samples_seen());
  }
  state.SetItemsProcessed(state.iterations() * kIngestStreams);
}
BENCHMARK(BM_IngestBatch);

void BM_IngestBatchStriped(benchmark::State& state) {
  online::StreamingProfileBuilder builder(kIngestStreams, kIngestWindow, 300.0);
  online::IngestOptions options;
  options.threads = static_cast<int>(state.range(0));
  options.stripes = 16;  // enough stripes to feed 8 workers
  online::IngestPlane plane(&builder, options);
  const auto step = MakeIngestStep(kIngestStreams);
  for (auto _ : state) {
    plane.IngestStep(step);
    benchmark::DoNotOptimize(builder.samples_seen());
  }
  state.SetItemsProcessed(state.iterations() * kIngestStreams);
  state.SetLabel("threads=" + std::to_string(options.threads));
}
BENCHMARK(BM_IngestBatchStriped)->Arg(2)->Arg(4)->Arg(8);

void BM_DirectSphere(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  opt::DirectOptimizer direct;
  opt::DirectOptions opts;
  opts.max_evaluations = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(direct.Minimize(
        [](const std::vector<double>& x) {
          double s = 0;
          for (double xi : x) s += (xi - 0.4) * (xi - 0.4);
          return s;
        },
        dims, opts));
  }
}
BENCHMARK(BM_DirectSphere)->Arg(4)->Arg(32)->Arg(128);

}  // namespace
}  // namespace kairos

// Custom main instead of BENCHMARK_MAIN(): the harness flags (--smoke,
// --metrics-out) must be stripped before benchmark::Initialize, which
// rejects arguments it does not recognize, and the run ends by writing the
// standard BENCH_microbench.json report.
int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("microbench", argc, argv);
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) continue;
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) continue;
    bench_args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteReport();
}
