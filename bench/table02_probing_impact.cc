// Table 2: impact of buffer-pool probing on perceived performance.
//
// A Wikipedia workload scaled to 100K pages (67 GB of data, ~2.2 GB working
// set) runs on a MySQL node with a 16 GB buffer pool. For target request
// rates 200/600/1000 tps and an unthrottled MAX case, throughput and mean
// latency are measured with and without aggressive gauging in progress.
// Expected shape (paper): throughput unchanged at the throttled rates with
// a few ms of extra latency; only the MAX case loses a slice (~12%) of its
// throughput. Gauging discovers the ~2.2 GB working set out of 16 GB.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "db/server.h"
#include "monitor/gauge.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/wikipedia.h"

namespace kairos {
namespace {

struct Measured {
  double tps = 0;
  double latency_ms = 0;
  uint64_t gauged_ws = 0;
  double gauge_seconds = 0;
  double growth_mbps = 0;
};

Measured Run(double target_tps, bool gauging) {
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 16 * util::kGiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, bench::kSeed);
  const double rate = target_tps > 0 ? target_tps : 2500.0;  // MAX: over-offer
  workload::WikipediaWorkload wiki(
      "wiki", 100, std::make_shared<workload::FlatPattern>(rate));
  workload::Driver driver(&server, bench::kSeed);
  driver.AddWorkload(&wiki);
  driver.Warm();
  driver.Run(3.0);

  Measured out;
  const db::DbCounters before = wiki.database()->lifetime();
  const double t_before = server.now();
  double elapsed = 0;
  if (gauging) {
    // Aggressive gauging while the user load runs (paper: ~6.4 MB/s growth,
    // working set found in ~37 minutes on the real node).
    monitor::GaugeConfig gcfg;
    gcfg.read_wait_seconds = 1.0;
    gcfg.max_step_pages = 2048;  // up to 32 MB/s probe growth ceiling
    // Back off at the first whiff of displaced pages: Wikipedia's Zipf
    // tail makes the knee gradual, and user performance comes first.
    gcfg.slow_threshold_pages_per_sec = 4.0;
    gcfg.stop_threshold_pages_per_sec = 15.0;
    monitor::BufferPoolGauge gauge(gcfg);
    const monitor::GaugeResult g = gauge.Run(&driver);
    out.gauged_ws = g.working_set_bytes;
    out.gauge_seconds = g.duration_s;
    out.growth_mbps = g.avg_growth_bytes_per_sec / 1e6;
    elapsed = server.now() - t_before;  // probing + post-probe settling
  } else {
    driver.Run(40.0);
    elapsed = server.now() - t_before;
  }
  const db::DbCounters after = wiki.database()->lifetime();
  out.tps = static_cast<double>(after.completed_tx - before.completed_tx) / elapsed;
  const double lat_sum = after.latency_weighted_ms - before.latency_weighted_ms;
  const int64_t done = after.completed_tx - before.completed_tx;
  out.latency_ms = done > 0 ? lat_sum / static_cast<double>(done) : 0;
  return out;
}

}  // namespace
}  // namespace kairos

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("table02_probing_impact", argc, argv);
  using namespace kairos;
  bench::Banner("Table 2: impact of probing on user-perceived performance");
  util::Table table({"target", "tput w/o gauging", "tput w/ gauging",
                     "lat w/o (ms)", "lat w/ (ms)"});
  Measured last_gauge;
  for (double target : {200.0, 600.0, 1000.0, 0.0}) {
    const Measured off = Run(target, false);
    const Measured on = Run(target, true);
    last_gauge = on;
    const std::string label =
        target > 0 ? util::FormatDouble(target, 0) + " tps" : "MAX";
    table.AddRow({label, util::FormatDouble(off.tps, 0) + " tps",
                  util::FormatDouble(on.tps, 0) + " tps",
                  util::FormatDouble(off.latency_ms, 1),
                  util::FormatDouble(on.latency_ms, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\ngauging (MAX case): found working set %.2f GB of a 16 GB pool in %.0f s "
      "(sim) at %.1f MB/s average probe growth\n(true Wikipedia@100Kp working "
      "set: 2.2 GB; paper gauged it in ~37 min at ~6.4 MB/s)\n",
      last_gauge.gauged_ws / 1e9, last_gauge.gauge_seconds, last_gauge.growth_mbps);
  return reporter.WriteReport();
}
