// Figure 7: consolidation ratios for the real-world datasets.
//
// Runs the consolidation engine on the synthetic reproductions of the
// Internal (25 servers), Wikia (34), Wikipedia (40), Second Life (97), and
// ALL (196) statistics, against 12-core / 96 GB target machines, and
// compares four strategies:
//   reference     - the current deployment (1 server per workload)
//   greedy        - single-resource first-fit baseline (may be infeasible)
//   our approach  - Kairos engine
//   frac./ideal.  - fractional idealized lower bound
// Expected shape (paper): ratios between ~5.5:1 and ~17:1; ours matches the
// idealized bound almost everywhere; greedy fails or trails on some
// datasets; ALL consolidates ~196 servers onto ~20-21.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "trace/dataset.h"
#include "util/table.h"

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig07_consolidation_ratios", argc, argv);
  using namespace kairos;
  bench::Banner("Figure 7: consolidation ratios (target: 12 cores / 96 GB)");

  const model::DiskModel disk_model = bench::TargetDiskModel();
  trace::DatasetGenerator gen(bench::kSeed);

  util::Table table({"dataset", "servers", "reference", "greedy", "our approach",
                     "frac/ideal", "ratio (ours)"});
  int total_cores_before = 0, total_cores_after = 0;

  auto run = [&](const std::string& name, std::vector<trace::ServerTrace> traces) {
    core::ConsolidationProblem prob;
    prob.workloads = trace::ToProfiles(traces);
    prob.disk_model = &disk_model;
    core::EngineOptions options;
    options.sink = reporter.sink();
    core::ConsolidationEngine engine(prob, options);
    const core::ConsolidationPlan plan = engine.Solve();
    table.AddRow({name, std::to_string(traces.size()),
                  std::to_string(traces.size()),
                  plan.greedy_servers >= 0 ? std::to_string(plan.greedy_servers)
                                           : "infeasible",
                  std::to_string(plan.servers_used),
                  std::to_string(plan.fractional_lower_bound),
                  util::FormatDouble(plan.consolidation_ratio, 1) + ":1"});
    if (name == "ALL") {
      for (const auto& t : traces) total_cores_before += t.machine.cores;
      total_cores_after = plan.servers_used * prob.fleet.classes[0].spec.cores;
      std::printf("[ALL] %s\n", plan.Render().c_str());
    }
    return plan;
  };

  for (auto kind : trace::AllDatasets()) {
    run(trace::DatasetName(kind), gen.Generate(kind));
  }
  run("ALL", gen.GenerateAll());

  std::printf("%s", table.ToString().c_str());
  std::printf("\ntotal cores, ALL: %d before -> %d after consolidation "
              "(paper: 1419 -> 252)\n",
              total_cores_before, total_cores_after);
  return reporter.WriteReport();
}
