// Sharded consolidation at fleet scale: partitions one mega-fleet
// consolidation problem into machine-class shards, solves them on the
// work-stealing pool, and reports placement throughput (slots consolidated
// per second) plus the thread-scaling curve at 1/2/4/8 workers. The
// determinism contract is asserted, not assumed: every thread count must
// produce a byte-identical plan, and the run fails hard when one does not.
//
//   build/bench_shard_scaling [--smoke] [--metrics-out=<path>]
//
// Full mode consolidates a 100,000-server / 1,000,000-slot fleet (the
// "datacenter-scale" configuration of the sharded-solve subsystem); --smoke
// shrinks it to 2,000 servers / 8,192 slots for CI. Speedup KPIs are
// reported for multicore hosts but not floor-gated: CI containers may have
// a single core, where the scaling curve is flat by construction.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/problem.h"
#include "obs/sink.h"
#include "solve/shard.h"
#include "solve/solver.h"
#include "util/rng.h"
#include "util/table.h"

using namespace kairos;

namespace {

/// Synthesizes the mega-fleet problem: `workloads` tenants (a deterministic
/// mix of sizes, a slice of them 2-replica) over a two-class fleet. Few
/// samples per series — the bench stresses placement volume, not horizon.
core::ConsolidationProblem MakeFleetProblem(int workloads, int weak_servers,
                                            int strong_servers) {
  constexpr int kSamples = 4;
  core::ConsolidationProblem prob;
  util::Rng rng(bench::kSeed);
  prob.workloads.reserve(workloads);
  for (int i = 0; i < workloads; ++i) {
    monitor::WorkloadProfile p;
    p.name = "t" + std::to_string(i);
    std::vector<double> cpu(kSamples), ram(kSamples), rows(kSamples, 0.0);
    const double cpu_base = rng.Uniform(0.05, 0.8);
    const double ram_base = rng.Uniform(1e9, 6e9);
    for (int t = 0; t < kSamples; ++t) {
      cpu[t] = cpu_base * rng.Uniform(0.8, 1.2);
      ram[t] = ram_base * rng.Uniform(0.9, 1.1);
    }
    p.cpu_cores = util::TimeSeries(300, cpu);
    p.ram_bytes = util::TimeSeries(300, ram);
    p.update_rows_per_sec = util::TimeSeries(300, rows);
    p.working_set_bytes = ram_base * 0.8;
    if (i % 16 == 0) p.replicas = 2;  // a slice of HA tenants
    prob.workloads.push_back(std::move(p));
  }
  prob.fleet = sim::FleetSpec();
  prob.fleet.AddClass(sim::MachineSpec::Server1(), weak_servers, 1.0)
      .AddClass(sim::MachineSpec::ConsolidationTarget(), strong_servers, 2.5);
  return prob;
}

struct RunResult {
  core::ConsolidationPlan plan;
  double seconds = 0;
};

RunResult RunSharded(const core::ConsolidationProblem& prob,
                     const solve::SolveBudget& budget, int threads,
                     int num_shards) {
  solve::ShardOptions options;
  options.threads = threads;
  options.num_shards = num_shards;
  options.local_solver = "greedy-multi";  // volume over polish at this scale
  solve::ShardedSolver solver(bench::kSeed, options);
  bench::ScopedTimer timer;
  RunResult r;
  r.plan = solver.Solve(prob, budget, nullptr);
  r.seconds = timer.Seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("shard_scaling", argc, argv);
  const bool smoke = reporter.smoke();

  // Full mode: >= 100k servers, >= 1M slots (1M = 937.5k tenants, every
  // 16th with a second replica). Smoke: ~2k servers, 8192 slots.
  const int workloads = smoke ? 7710 : 941177;
  const int weak_servers = smoke ? 1200 : 60000;
  const int strong_servers = smoke ? 800 : 40000;

  solve::SolveBudget budget;
  budget.sink = reporter.sink();

  bench::Banner("building the fleet problem");
  bench::ScopedTimer build_timer;
  const core::ConsolidationProblem prob =
      MakeFleetProblem(workloads, weak_servers, strong_servers);
  const int total_slots = prob.TotalSlots();
  const int cap = prob.ServerCap();
  std::printf("fleet %s, %d tenants, %d slots, built in %.2fs\n",
              prob.fleet.Render().c_str(), workloads, total_slots,
              build_timer.Seconds());
  reporter.Config("workloads", static_cast<int64_t>(workloads));
  reporter.Config("slots", static_cast<int64_t>(total_slots));
  reporter.Config("servers", static_cast<int64_t>(cap));

  const solve::ShardOptions probe_options;  // defaults: auto shard count
  const int num_shards =
      solve::ShardPartitioner(prob, probe_options).ResolvedShardCount();
  std::printf("partitioner: %d shards (~%d slots each)\n", num_shards,
              total_slots / num_shards);
  reporter.Config("shards", static_cast<int64_t>(num_shards));

  bench::Banner("sharded consolidation (auto threads)");
  const RunResult headline = RunSharded(prob, budget, /*threads=*/0, num_shards);
  const double slots_per_sec =
      headline.seconds > 0 ? total_slots / headline.seconds : 0;
  std::printf(
      "%s: %d servers used, fleet cost %.1f, ratio %.1f:1 — %d slots in "
      "%.2fs (%.0f slots/sec)\n",
      headline.plan.feasible ? "feasible" : "INFEASIBLE",
      headline.plan.servers_used, headline.plan.fleet_cost,
      headline.plan.consolidation_ratio, total_slots, headline.seconds,
      slots_per_sec);
  reporter.Kpi("consolidate.slots_per_sec", slots_per_sec);
  reporter.Kpi("consolidate.servers_used", headline.plan.servers_used);
  reporter.Kpi("consolidate.fleet_cost", headline.plan.fleet_cost);
  reporter.Kpi("consolidate.feasible", headline.plan.feasible ? 1 : 0);

  bench::Banner("thread scaling (byte-identical plans required)");
  util::Table table({"threads", "seconds", "slots/sec", "speedup", "plan"});
  bool identical = true;
  double serial_seconds = 0;
  std::vector<double> rates;
  for (int threads : {1, 2, 4, 8}) {
    const RunResult r = RunSharded(prob, budget, threads, num_shards);
    if (threads == 1) serial_seconds = r.seconds;
    const bool same = r.plan.assignment.server_of_slot ==
                          headline.plan.assignment.server_of_slot &&
                      r.plan.objective == headline.plan.objective;
    identical = identical && same;
    const double rate = r.seconds > 0 ? total_slots / r.seconds : 0;
    rates.push_back(rate);
    const double speedup = r.seconds > 0 ? serial_seconds / r.seconds : 0;
    table.AddRow({std::to_string(threads),
                  util::FormatDouble(r.seconds, 2),
                  util::FormatDouble(rate, 0),
                  util::FormatDouble(speedup, 2),
                  same ? "identical" : "DIVERGED"});
    reporter.Kpi("scale.slots_per_sec_" + std::to_string(threads) + "t", rate);
    if (threads > 1) {
      reporter.Kpi("scale.speedup_" + std::to_string(threads) + "t", speedup);
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("plans across thread counts: %s\n",
              identical ? "byte-identical" : "DIVERGED (bug)");

  const int rc = reporter.WriteReport();
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: sharded plans diverged across thread counts\n");
    return 1;
  }
  return rc;
}
