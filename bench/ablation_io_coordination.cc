// Ablation: which I/O coordination mechanisms buy the consolidated DBMS its
// advantage? (The design choices DESIGN.md calls out.)
//
//   1. Group commit: one shared log stream amortizes fsyncs across tenants;
//      with the window at ~0, every commit pays its own flush barrier.
//   2. Sorted (elevator) write-back: dirty pages written in page order
//      degenerate to cheap near-sequential sweeps; random-order write-back
//      pays a seek + rotation per page.
//   3. Cross-stream interleaving: N independent instances on one spindle
//      pay head movement the single coordinated instance avoids.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "db/server.h"
#include "sim/disk.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace kairos {
namespace {

double RunTotalTps(double group_commit_ms) {
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 28 * util::kGiB;
  cfg.group_commit_window_ms = group_commit_ms;
  db::Server server(sim::MachineSpec::Server1(), cfg, bench::kSeed);
  workload::Driver driver(&server, bench::kSeed);
  std::vector<std::unique_ptr<workload::TpccWorkload>> loads;
  for (int i = 0; i < 10; ++i) {
    loads.push_back(std::make_unique<workload::TpccWorkload>(
        "t" + std::to_string(i), 5, std::make_shared<workload::FlatPattern>(80.0)));
    driver.AddWorkload(loads.back().get());
  }
  driver.Warm();
  driver.Run(4.0);
  const auto res = driver.Run(20.0);
  double total = 0;
  for (const auto& w : res.workloads) total += w.MeanTps();
  return total;
}

}  // namespace
}  // namespace kairos

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("ablation_io_coordination", argc, argv);
  using namespace kairos;

  bench::Banner("Ablation 1: group commit window (10 tenants x TPC-C(5w)@80)");
  util::Table t1({"group_commit_ms", "total tps"});
  for (double ms : {0.05, 1.0, 5.0, 10.0}) {
    t1.AddRow({util::FormatDouble(ms, 2), util::FormatDouble(RunTotalTps(ms), 0)});
  }
  std::printf("%s", t1.ToString().c_str());
  std::printf("expected: tiny windows force ~1 fsync per commit and throttle "
              "the shared log; a few ms of batching restores throughput.\n");

  bench::Banner("Ablation 2: sorted vs unsorted write-back (device cost)");
  sim::Disk disk{sim::DiskSpec{}};
  util::Table t2({"pages", "span", "sorted cost (s)", "random cost (s)", "win"});
  for (int64_t pages : {100, 1000, 10000}) {
    for (uint64_t span_mb : {256, 2048, 16384}) {
      const uint64_t span = span_mb * util::kMiB;
      const double sorted = disk.SortedWriteCost(pages, 16384, span);
      const double random = disk.RandomWriteCost(pages, 16384);
      t2.AddRow({std::to_string(pages), std::to_string(span_mb) + "MB",
                 util::FormatDouble(sorted, 3), util::FormatDouble(random, 3),
                 util::FormatDouble(random / sorted, 1) + "x"});
    }
  }
  std::printf("%s", t2.ToString().c_str());
  std::printf("expected: the elevator's advantage grows with batch density "
              "(pages per span) — the mechanism behind coordinated flushing.\n");

  bench::Banner("Ablation 3: cross-stream interleaving (device cost/sec)");
  util::Table t3({"streams", "ops/sec", "interleave cost (s/s)"});
  for (int streams : {1, 2, 5, 10, 20}) {
    t3.AddRow({std::to_string(streams), "200",
               util::FormatDouble(disk.InterleaveCost(streams, 200), 3)});
  }
  std::printf("%s", t3.ToString().c_str());
  std::printf("expected: zero for one coordinated stream; grows with stream "
              "count — the VM baselines' structural penalty.\n");
  return reporter.WriteReport();
}
