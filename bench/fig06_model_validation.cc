// Figure 6: validating the combined-load resource models.
//
// Five synthetic workloads with different time-varying patterns (sinusoid,
// sawtooth, square, flat, bursty) and working sets from 0.5 to 2.5 GB are
// profiled in isolation on dedicated (over-provisioned) servers, gauged for
// RAM, and their combined load predicted with Kairos's models ("estimate")
// and with straight sums of OS statistics ("baseline"). The workloads are
// then physically co-located and measured ("real").
//
// Expected shapes (paper):
//   CPU  - estimate within a few percent of real; baseline overestimates by
//          double-counted per-instance overhead (~15%+).
//   RAM  - gauged sum ~= true combined working set; OS sum overestimates by
//          many times (the paper reports ~9x).
//   Disk - estimate tracks real closely at the top percentiles (where
//          consolidation decisions live); baseline (which includes idle
//          flushing measured on dedicated boxes) grossly overestimates.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "db/server.h"
#include "model/estimator.h"
#include "model/profiler.h"
#include "monitor/gauge.h"
#include "monitor/resource_monitor.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"

namespace kairos {
namespace {

struct Synth {
  std::string name;
  workload::MicroSpec spec;
};

std::vector<Synth> MakeWorkloads() {
  auto base = [](uint64_t ws_mb, double updates, double cpu_us) {
    workload::MicroSpec s;
    s.working_set_bytes = ws_mb * util::kMiB;
    s.data_bytes = 2 * ws_mb * util::kMiB;
    s.reads_per_tx = 3;
    s.updates_per_tx = updates;
    s.cpu_us_per_tx = cpu_us;
    return s;
  };
  std::vector<Synth> out;
  out.push_back({"sinusoid", base(512, 6, 500)});
  out.back().spec.pattern = std::make_shared<workload::SinusoidPattern>(200, 150, 30);
  out.push_back({"sawtooth", base(1024, 4, 700)});
  out.back().spec.pattern = std::make_shared<workload::SawtoothPattern>(50, 400, 40);
  out.push_back({"square", base(1536, 8, 300)});
  out.back().spec.pattern = std::make_shared<workload::SquarePattern>(80, 320, 36);
  out.push_back({"flat", base(2048, 3, 900)});
  out.back().spec.pattern = std::make_shared<workload::FlatPattern>(250);
  out.push_back({"bursty", base(2560, 5, 400)});
  out.back().spec.pattern = std::make_shared<workload::BurstyPattern>(60, 500, 45, 0.15);
  return out;
}

void PrintCdf(const std::string& title, const util::TimeSeries& real,
              const util::TimeSeries& est, const util::TimeSeries& naive,
              double unit, const std::string& unit_name) {
  bench::Banner(title + " (" + unit_name + ")");
  util::Table table({"percentile", "real", "our estimate", "baseline"});
  for (double p : {5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 100.0}) {
    table.AddRow({util::FormatDouble(p, 0),
                  util::FormatDouble(real.Percentile(p) / unit, 2),
                  util::FormatDouble(est.Percentile(p) / unit, 2),
                  util::FormatDouble(naive.Percentile(p) / unit, 2)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace kairos

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig06_model_validation", argc, argv);
  using namespace kairos;
  const double kMonitorSeconds = 80.0;
  auto synths = MakeWorkloads();

  // --- Phase 1: dedicated-server profiling with gauging ---
  db::DbmsConfig dedicated_cfg;
  dedicated_cfg.buffer_pool_bytes = 12 * util::kGiB;  // over-provisioned

  std::vector<monitor::WorkloadProfile> profiles;
  double true_ws_total = 0;
  for (size_t i = 0; i < synths.size(); ++i) {
    db::Server server(sim::MachineSpec::Server1(), dedicated_cfg, bench::kSeed + i);
    workload::MicroWorkload w(synths[i].name, synths[i].spec);
    workload::Driver driver(&server, bench::kSeed + i);
    driver.AddWorkload(&w);
    driver.Warm();
    driver.Run(30.0);  // settle write-back pacing

    monitor::GaugeConfig gcfg;
    gcfg.max_step_pages = 16384;
    gcfg.read_wait_seconds = 1.0;
    monitor::BufferPoolGauge gauge(gcfg);
    const monitor::GaugeResult gauged = gauge.Run(&driver);

    monitor::ResourceMonitor monitor(monitor::MonitorConfig{});
    auto p = monitor.Collect(&driver, kMonitorSeconds, {&w},
                             {{synths[i].name, gauged.working_set_bytes}});
    profiles.push_back(p[0]);
    true_ws_total += static_cast<double>(synths[i].spec.working_set_bytes);
    std::printf("profiled %-9s gauged ws %6.0f MB (true %6.0f MB), mean cpu "
                "%.2f cores, mean %4.0f rows/s\n",
                synths[i].name.c_str(), util::ToMiB(gauged.working_set_bytes),
                util::ToMiB(synths[i].spec.working_set_bytes),
                profiles.back().cpu_cores.Mean(),
                profiles.back().update_rows_per_sec.Mean());
  }

  // --- Phase 2: model-based and naive predictions ---
  model::ProfilerConfig pc;
  for (double gb : {2.0, 4.0, 6.0, 8.0}) {
    pc.working_set_bytes.push_back(gb * static_cast<double>(util::kGiB));
  }
  pc.rows_per_sec = {2000.0, 6000.0, 12000.0, 20000.0};
  // Long enough to pass the flush-pacing transient (the dirty set takes
  // ~the checkpoint-pacing residence time to reach steady state).
  pc.warmup_seconds = 30.0;
  pc.measure_seconds = 60.0;
  const model::DiskModel disk_model =
      model::DiskModelProfiler(sim::MachineSpec::Server1(), dedicated_cfg, pc)
          .BuildModel(bench::kSeed);

  db::DbmsConfig combined_cfg;
  combined_cfg.buffer_pool_bytes = 12 * util::kGiB;
  std::vector<const monitor::WorkloadProfile*> refs;
  for (const auto& p : profiles) refs.push_back(&p);
  model::CombinedLoadEstimator estimator(
      &disk_model, combined_cfg.base_cpu_cores,
      combined_cfg.dbms_ram_overhead_bytes + combined_cfg.os_ram_overhead_bytes);
  const model::CombinedPrediction est = estimator.Combine(refs);
  const model::CombinedPrediction naive = model::CombinedLoadEstimator::NaiveSum(refs);

  // --- Phase 3: physically co-locate and measure ---
  db::Server server(sim::MachineSpec::Server1(), combined_cfg, bench::kSeed + 99);
  std::vector<std::unique_ptr<workload::MicroWorkload>> ws;
  workload::Driver driver(&server, bench::kSeed + 99);
  for (const auto& s : synths) {
    ws.push_back(std::make_unique<workload::MicroWorkload>(s.name, s.spec));
    driver.AddWorkload(ws.back().get());
  }
  driver.Warm();
  driver.Run(30.0);  // settle write-back pacing
  const workload::RunResult real = driver.Run(kMonitorSeconds, 1.0);

  PrintCdf("Figure 6 CPU: combined utilization CDF", real.server.cpu_cores,
           est.cpu_cores, naive.cpu_cores, 1.0, "cores");
  PrintCdf("Figure 6 Disk: combined write throughput CDF",
           real.server.write_mbps.Scaled(1e6), est.disk_write_bytes_per_sec,
           naive.disk_write_bytes_per_sec, 1e6, "MB/s");

  bench::Banner("Figure 6 RAM: combined requirement");
  const double real_ram =
      true_ws_total + combined_cfg.dbms_ram_overhead_bytes +
      combined_cfg.os_ram_overhead_bytes;
  util::Table ram({"", "GB"});
  ram.AddRow({"true combined working set (+instance)",
              util::FormatDouble(real_ram / 1e9, 2)});
  ram.AddRow({"our estimate (gauged sum)",
              util::FormatDouble(est.ram_bytes.Max() / 1e9, 2)});
  ram.AddRow({"baseline (summed OS allocations)",
              util::FormatDouble(naive.ram_bytes.Max() / 1e9, 2)});
  std::printf("%s", ram.ToString().c_str());
  std::printf("baseline overestimates the actual requirement %.1fx (paper: ~9x)\n",
              naive.ram_bytes.Max() / real_ram);

  // Headline error numbers at the loaded percentiles.
  const double p90_real = real.server.write_mbps.Percentile(90.0) * 1e6;
  std::printf(
      "\ndisk @p90: real %.1f MB/s, estimate %.1f MB/s (err %.1f MB/s), baseline "
      "%.1f MB/s (err %.1f MB/s)\n",
      p90_real / 1e6, est.disk_write_bytes_per_sec.Percentile(90.0) / 1e6,
      std::abs(est.disk_write_bytes_per_sec.Percentile(90.0) - p90_real) / 1e6,
      naive.disk_write_bytes_per_sec.Percentile(90.0) / 1e6,
      std::abs(naive.disk_write_bytes_per_sec.Percentile(90.0) - p90_real) / 1e6);
  const double p90_cpu = real.server.cpu_cores.Percentile(90.0);
  std::printf("cpu @p90: real %.2f, estimate %.2f (err %.0f%%), baseline %.2f "
              "(err %.0f%%)\n",
              p90_cpu, est.cpu_cores.Percentile(90.0),
              100.0 * std::abs(est.cpu_cores.Percentile(90.0) - p90_cpu) / p90_cpu,
              naive.cpu_cores.Percentile(90.0),
              100.0 * std::abs(naive.cpu_cores.Percentile(90.0) - p90_cpu) / p90_cpu);
  return reporter.WriteReport();
}
