// Figure 11: OS virtualization (one DBMS process per database on a shared
// kernel) vs. the consolidated DBMS, across consolidation levels.
//
// For 10..80 TPC-C tenants on one machine, measures the maximum average
// per-database throughput each deployment sustains. Expected shape (paper):
// the consolidated DBMS curve sits above OS virtualization everywhere; for
// a given target per-DB throughput, consolidation supports 1.9-3.3x more
// tenants.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "util/table.h"
#include "vm/multi_instance.h"
#include "vm/vm_driver.h"
#include "util/units.h"
#include "workload/tpcc.h"

namespace kairos {
namespace {

// Runs `tenants` TPC-C databases all offered `rate` tps each; returns the
// fraction of offered load completed.
double CompletionFraction(vm::VirtKind kind, int tenants, double rate) {
  vm::MultiInstanceConfig cfg;
  cfg.machine = sim::MachineSpec::Server1();
  cfg.kind = kind;
  cfg.databases = tenants;
  // Production-tuned redo configuration, as in the Table 1 experiments.
  cfg.dbms.log_file_bytes = 512 * util::kMiB;
  cfg.dbms.flusher.flush_interval_s = 600.0;
  vm::MultiInstanceServer server(cfg, bench::kSeed);
  vm::VmDriver driver(&server, bench::kSeed);
  std::vector<std::unique_ptr<workload::TpccWorkload>> loads;
  for (int i = 0; i < tenants; ++i) {
    loads.push_back(std::make_unique<workload::TpccWorkload>(
        "t" + std::to_string(i), 2, std::make_shared<workload::FlatPattern>(rate)));
    driver.AttachWorkload(i, loads.back().get());
  }
  driver.Warm();
  driver.Run(4.0);
  const vm::VmRunResult res = driver.Run(12.0);
  return res.mean_total_tps / (rate * tenants);
}

// Max per-DB rate every tenant sustains (>=95% completion), by bisection —
// the paper's "maximum average throughput achievable per database".
double MaxPerDbTps(vm::VirtKind kind, int tenants) {
  double lo = 0.0, hi = 64.0;
  if (CompletionFraction(kind, tenants, hi) >= 0.95) return hi;
  for (int i = 0; i < 6; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid < 0.25) break;
    if (CompletionFraction(kind, tenants, mid) >= 0.95) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace
}  // namespace kairos

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig11_os_virtualization", argc, argv);
  using namespace kairos;
  bench::Banner("Figure 11: avg per-DB throughput vs. number of tenants");

  util::Table table({"tenants", "OS-virtualization (tps/db)",
                     "Consolidated-DBMS (tps/db)", "advantage"});
  std::vector<std::pair<int, double>> os_curve, db_curve;
  for (int n : {10, 20, 30, 40, 60, 80}) {
    const double os_tps = MaxPerDbTps(vm::VirtKind::kOsVirt, n);
    const double db_tps = MaxPerDbTps(vm::VirtKind::kConsolidatedDbms, n);
    os_curve.push_back({n, os_tps});
    db_curve.push_back({n, db_tps});
    table.AddRow({std::to_string(n), util::FormatDouble(os_tps, 1),
                  util::FormatDouble(db_tps, 1),
                  util::FormatDouble(db_tps / std::max(0.1, os_tps), 1) + "x"});
  }
  std::printf("%s", table.ToString().c_str());

  // The paper's headline: for a target per-DB throughput, how many more
  // tenants does the consolidated DBMS support?
  for (double target : {10.0, 20.0}) {
    auto supported = [&](const std::vector<std::pair<int, double>>& curve) {
      int best = 0;
      for (const auto& [n, tps] : curve) {
        if (tps >= target) best = n;
      }
      return best;
    };
    const int os_n = supported(os_curve);
    const int db_n = supported(db_curve);
    if (os_n > 0) {
      std::printf("target %.0f tps/db: OS virt supports %d tenants, consolidated "
                  "%d -> %.1fx consolidation level (paper: 1.9-3.3x)\n",
                  target, os_n, db_n, static_cast<double>(db_n) / os_n);
    }
  }
  return reporter.WriteReport();
}
