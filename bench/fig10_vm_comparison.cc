// Figure 10: hardware virtualization vs. consolidated DBMS at a fixed 20:1
// consolidation level.
//
// 20 TPC-C tenants on one Server-1-class machine, deployed as (a) one
// VMware-style VM per database and (b) one multi-tenant DBMS instance.
// Left panel: uniform load (all tenants at the same rate). Right panel:
// skewed load (19 tenants throttled to ~1 req/s, one at full speed).
// Expected shape (paper): the consolidated DBMS delivers 6-12x the total
// throughput in both cases — separate VMs waste RAM on per-instance
// overheads and lose group commit + coordinated write-back.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "util/table.h"
#include "vm/multi_instance.h"
#include "vm/vm_driver.h"
#include "workload/tpcc.h"

namespace kairos {
namespace {

vm::VmRunResult Run(vm::VirtKind kind, const std::vector<double>& tps_each,
                    double seconds, util::TimeSeries* series) {
  vm::MultiInstanceConfig cfg;
  cfg.machine = sim::MachineSpec::Server1();
  cfg.kind = kind;
  cfg.databases = static_cast<int>(tps_each.size());
  // Production-tuned redo configuration, as in the Table 1 experiments.
  cfg.dbms.log_file_bytes = 512 * util::kMiB;
  cfg.dbms.flusher.flush_interval_s = 600.0;
  vm::MultiInstanceServer server(cfg, bench::kSeed);
  vm::VmDriver driver(&server, bench::kSeed);
  std::vector<std::unique_ptr<workload::TpccWorkload>> loads;
  for (size_t i = 0; i < tps_each.size(); ++i) {
    loads.push_back(std::make_unique<workload::TpccWorkload>(
        "t" + std::to_string(i), 10,
        std::make_shared<workload::FlatPattern>(tps_each[i])));
    driver.AttachWorkload(static_cast<int>(i), loads.back().get());
  }
  driver.Warm();
  driver.Run(3.0);
  vm::VmRunResult res = driver.Run(seconds, 5.0);
  if (series) *series = res.total_tps;
  return res;
}

void Panel(const std::string& label, const std::vector<double>& tps_each) {
  bench::Banner("Figure 10 [" + label + "]: total throughput over time, 20:1");
  util::TimeSeries vm_series, db_series;
  const vm::VmRunResult vm_res =
      Run(vm::VirtKind::kHardwareVm, tps_each, 60.0, &vm_series);
  const vm::VmRunResult db_res =
      Run(vm::VirtKind::kConsolidatedDbms, tps_each, 60.0, &db_series);

  util::Table table({"time_s", "DB-in-VM (tps)", "Consolidated-DBMS (tps)"});
  for (size_t i = 0; i < std::min(vm_series.size(), db_series.size()); ++i) {
    table.AddRow({util::FormatDouble(vm_series.TimeAt(i), 0),
                  util::FormatDouble(vm_series.at(i), 1),
                  util::FormatDouble(db_series.at(i), 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("mean: DB-in-VM %.1f tps, consolidated %.1f tps -> %.1fx higher "
              "(paper: 6-12x)\n",
              vm_res.mean_total_tps, db_res.mean_total_tps,
              db_res.mean_total_tps / std::max(1.0, vm_res.mean_total_tps));
}

}  // namespace
}  // namespace kairos

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig10_vm_comparison", argc, argv);
  using namespace kairos;
  // Uniform: all 21 tenants offered the same aggressive rate (the paper's
  // ~20:1 consolidation level).
  Panel("uniform load", std::vector<double>(21, 19.0));
  // Skewed: 20 throttled to 1 tps, one unthrottled.
  std::vector<double> skewed(21, 1.0);
  skewed[0] = 250.0;
  Panel("skewed load", skewed);
  return reporter.WriteReport();
}
