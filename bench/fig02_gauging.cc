// Figure 2: Buffer Pool Gauging.
//
// Grows the probe table inside a live DBMS running TPC-C scaled to 5
// warehouses with a 953 MB buffer pool, and reports physical page reads/sec
// as a function of the fraction of the buffer pool stolen. Two
// configurations, as in the paper:
//   mysql    - 953 MB buffer pool, O_DIRECT (no OS file cache)
//   postgres - 953 MB shared buffers + ~1 GB OS file cache
// Expected shape: flat near zero until ~30-40% of the pool is stolen, then
// rising reads as useful pages are displaced. The gauged working set should
// land at the paper's 120-150 MB per warehouse.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "db/server.h"
#include "monitor/gauge.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace kairos {
namespace {

void RunConfig(const std::string& label, uint64_t pool_bytes, uint64_t cache_bytes) {
  bench::Banner("Figure 2 [" + label + "]: disk reads vs. % of buffer pool stolen");

  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = pool_bytes;
  cfg.os_file_cache_bytes = cache_bytes;
  db::Server server(sim::MachineSpec::Server1(), cfg, bench::kSeed);

  workload::TpccWorkload tpcc("tpcc5", 5,
                              std::make_shared<workload::FlatPattern>(120.0));
  workload::Driver driver(&server, bench::kSeed);
  driver.AddWorkload(&tpcc);
  driver.Warm();
  driver.Run(4.0);

  monitor::GaugeConfig gauge_cfg;
  gauge_cfg.max_step_pages = 1024;
  monitor::BufferPoolGauge gauge(gauge_cfg);
  const monitor::GaugeResult result = gauge.Run(&driver);

  util::Table table({"stolen_pct_of_pool", "disk_reads_pages_per_sec",
                     "probe_growth_MBps"});
  // Thin the curve for readability (every other point).
  for (size_t i = 0; i < result.curve.size(); i += 2) {
    const auto& p = result.curve[i];
    table.AddRow({util::FormatDouble(100.0 * p.stolen_fraction, 1),
                  util::FormatDouble(p.reads_per_sec, 1),
                  util::FormatDouble(p.probe_growth_bytes_per_sec / 1e6, 2)});
  }
  std::printf("%s", table.ToString().c_str());

  const double ws_mb = util::ToMiB(result.working_set_bytes);
  std::printf(
      "gauged working set: %.0f MB (true TPC-C 5w hot set: %.0f MB; paper says "
      "120-150 MB/warehouse)\n",
      ws_mb, util::ToMiB(tpcc.WorkingSetBytes()));
  std::printf("stolen at stop: %.0f MB of %.0f MB accessible; gauging took %.0f s "
              "(sim), avg growth %.2f MB/s\n",
              util::ToMiB(result.stolen_bytes), util::ToMiB(result.accessible_bytes),
              result.duration_s, result.avg_growth_bytes_per_sec / 1e6);

  // Section 3.1's OS-comparison: everything looks "active" to the kernel.
  const double active_mb = util::ToMiB(server.dbms().ActiveBytes() +
                                       server.dbms().FileCacheBytes());
  std::printf("OS 'active' memory: %.0f MB -> gauging reduces the RAM estimate "
              "%.1fx\n", active_mb, active_mb / ws_mb);
}

}  // namespace
}  // namespace kairos

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig02_gauging", argc, argv);
  kairos::RunConfig("mysql/O_DIRECT", 953 * kairos::util::kMiB, 0);
  kairos::RunConfig("postgres/shared+oscache", 953 * kairos::util::kMiB,
                    1024 * kairos::util::kMiB);
  return reporter.WriteReport();
}
