// Table 1: impact of consolidation on performance.
//
// Six experiments mixing TPC-C (10 warehouses) and Wikipedia (100K pages)
// at increasing intensities. For each, workloads run on dedicated servers
// ("w/o cons.") and co-located in one DBMS instance ("w/ cons."); the table
// reports throughput and mean latency in both deployments.
//
// Expected shape (paper): tests 1-4 (recommended by the engine) keep
// throughput identical with a few extra ms of latency; tests 5-6 (engine
// says NO) collapse throughput and blow up latency when forced.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "db/server.h"
#include "model/analytic.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/wikipedia.h"

namespace kairos {
namespace {

struct Tenant {
  enum Kind { kTpcc, kWiki } kind;
  double tps;
};

struct Experiment {
  std::string id;
  std::string description;
  std::vector<Tenant> tenants;
  bool recommended;
};

struct Measured {
  double tps = 0;
  double latency_ms = 0;
};

std::unique_ptr<workload::Workload> MakeWorkload(const Tenant& t, int index) {
  auto pattern = std::make_shared<workload::FlatPattern>(t.tps);
  if (t.kind == Tenant::kTpcc) {
    return std::make_unique<workload::TpccWorkload>("tpcc" + std::to_string(index),
                                                    10, pattern);
  }
  return std::make_unique<workload::WikipediaWorkload>(
      "wiki" + std::to_string(index), 100, pattern);
}

db::DbmsConfig ServerConfig() {
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 28 * util::kGiB;
  // Production-tuned redo configuration (the paper's Section 4 lists
  // log-file size among the I/O-relevant knobs): a large log defers
  // write-back, letting updates coalesce across the combined working set.
  cfg.log_file_bytes = 512 * util::kMiB;
  cfg.flusher.flush_interval_s = 600.0;
  return cfg;
}

// Runs tenants on one shared server (consolidated) or each on its own.
std::vector<Measured> Run(const std::vector<Tenant>& tenants, bool consolidated,
                          uint64_t seed) {
  std::vector<Measured> out(tenants.size());
  if (consolidated) {
    db::Server server(sim::MachineSpec::Server1(), ServerConfig(), seed);
    workload::Driver driver(&server, seed);
    std::vector<std::unique_ptr<workload::Workload>> ws;
    for (size_t i = 0; i < tenants.size(); ++i) {
      ws.push_back(MakeWorkload(tenants[i], static_cast<int>(i)));
      driver.AddWorkload(ws.back().get());
    }
    driver.Warm();
    driver.Run(60.0);  // pass the write-back pacing transient
    const auto res = driver.Run(120.0);
    for (size_t i = 0; i < tenants.size(); ++i) {
      out[i].tps = res.workloads[i].MeanTps();
      out[i].latency_ms = res.workloads[i].MeanLatencyMs();
    }
    return out;
  }
  for (size_t i = 0; i < tenants.size(); ++i) {
    db::Server server(sim::MachineSpec::Server1(), ServerConfig(), seed + i);
    workload::Driver driver(&server, seed + i);
    auto w = MakeWorkload(tenants[i], static_cast<int>(i));
    driver.AddWorkload(w.get());
    driver.Warm();
    driver.Run(60.0);
    const auto res = driver.Run(120.0);
    out[i].tps = res.workloads[0].MeanTps();
    out[i].latency_ms = res.workloads[0].MeanLatencyMs();
  }
  return out;
}

}  // namespace
}  // namespace kairos

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("table01_consolidation_perf", argc, argv);
  using namespace kairos;

  std::vector<Experiment> experiments;
  experiments.push_back({"1", "TPC-C(10w)@50 + Wikipedia(100Kp)@100",
                         {{Tenant::kTpcc, 50}, {Tenant::kWiki, 100}}, true});
  experiments.push_back({"2", "TPC-C(10w)@250 + Wikipedia(100Kp)@500",
                         {{Tenant::kTpcc, 250}, {Tenant::kWiki, 500}}, true});
  experiments.push_back({"3", "5x TPC-C(10w)@100",
                         {{Tenant::kTpcc, 100}, {Tenant::kTpcc, 100},
                          {Tenant::kTpcc, 100}, {Tenant::kTpcc, 100},
                          {Tenant::kTpcc, 100}}, true});
  {
    Experiment e{"4", "8x TPC-C(10w)@50 + Wikipedia(100Kp)@50", {}, true};
    for (int i = 0; i < 8; ++i) e.tenants.push_back({Tenant::kTpcc, 50});
    e.tenants.push_back({Tenant::kWiki, 50});
    experiments.push_back(e);
  }
  {
    Experiment e{"5", "5x TPC-C(10w)@400 (NOT recommended)", {}, false};
    for (int i = 0; i < 5; ++i) e.tenants.push_back({Tenant::kTpcc, 400});
    experiments.push_back(e);
  }
  {
    Experiment e{"6", "8x TPC-C(10w)@100 + Wikipedia(100Kp)@100 (NOT recommended)",
                 {}, false};
    for (int i = 0; i < 8; ++i) e.tenants.push_back({Tenant::kTpcc, 100});
    e.tenants.push_back({Tenant::kWiki, 100});
    experiments.push_back(e);
  }

  bench::Banner("Table 1: impact of consolidation on performance");
  util::Table table({"test", "tenant", "tput w/o cons", "tput w/ cons",
                     "lat w/o (ms)", "lat w/ (ms)"});
  for (const auto& exp : experiments) {
    const auto dedicated = Run(exp.tenants, /*consolidated=*/false, bench::kSeed);
    const auto consolidated = Run(exp.tenants, /*consolidated=*/true, bench::kSeed);
    // Collapse identical tenants into "Nx" rows like the paper.
    size_t i = 0;
    while (i < exp.tenants.size()) {
      size_t j = i;
      double ded_tps = 0, con_tps = 0, ded_lat = 0, con_lat = 0;
      while (j < exp.tenants.size() && exp.tenants[j].kind == exp.tenants[i].kind &&
             exp.tenants[j].tps == exp.tenants[i].tps) {
        ded_tps += dedicated[j].tps;
        con_tps += consolidated[j].tps;
        ded_lat += dedicated[j].latency_ms;
        con_lat += consolidated[j].latency_ms;
        ++j;
      }
      const double n = static_cast<double>(j - i);
      const std::string tenant =
          (n > 1 ? std::to_string(j - i) + "x " : std::string()) +
          (exp.tenants[i].kind == Tenant::kTpcc ? "TPC-C(10w)" : "Wikipedia(100Kp)");
      table.AddRow({exp.id + (exp.recommended ? "" : "*"), tenant,
                    util::FormatDouble(ded_tps / n, 0) + " tps",
                    util::FormatDouble(con_tps / n, 0) + " tps",
                    util::FormatDouble(ded_lat / n, 1),
                    util::FormatDouble(con_lat / n, 1)});
      i = j;
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n* = consolidation NOT recommended by the engine (tests 5-6): "
              "expect throughput collapse and large latencies when forced.\n");
  return reporter.WriteReport();
}
