// Figure 8: aggregate CPU load for the ~200 consolidated workloads.
//
// Consolidates the ALL dataset and reports, over the 24-hour window, the
// average, 5th-, and 95th-percentile CPU utilization across the
// consolidated servers. Expected shape (paper): the three curves are close
// together (good balance) and the 95th percentile stays well below
// saturation (low risk).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "trace/dataset.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig08_load_balance", argc, argv);
  using namespace kairos;
  bench::Banner("Figure 8: aggregate CPU across consolidated servers (ALL)");

  const model::DiskModel disk_model = bench::TargetDiskModel();
  trace::DatasetGenerator gen(bench::kSeed);
  core::ConsolidationProblem prob;
  prob.workloads = trace::ToProfiles(gen.GenerateAll());
  prob.disk_model = &disk_model;
  core::EngineOptions engine_options;
  engine_options.sink = reporter.sink();
  const core::ConsolidationPlan plan =
      core::ConsolidationEngine(prob, engine_options).Solve();
  std::printf("consolidated %zu workloads onto %d servers (feasible=%s)\n",
              prob.workloads.size(), plan.servers_used,
              plan.feasible ? "yes" : "NO");

  const double capacity = prob.fleet.classes[0].spec.StandardCores();
  const size_t samples = plan.server_loads.front().cpu_cores.size();
  util::Table table({"hour", "avg cpu %", "p95 cpu %", "p5 cpu %"});
  util::Accumulator spread;
  for (size_t t = 0; t < samples; t += 6) {  // every 30 minutes
    std::vector<double> util_pct;
    for (const auto& s : plan.server_loads) {
      util_pct.push_back(100.0 * s.cpu_cores[t] / capacity);
    }
    const double avg = [&] {
      double sum = 0;
      for (double v : util_pct) sum += v;
      return sum / util_pct.size();
    }();
    const double p95 = util::Percentile(util_pct, 95.0);
    const double p5 = util::Percentile(util_pct, 5.0);
    spread.Add(p95 - p5);
    table.AddRow({util::FormatDouble(t * 300.0 / 3600.0, 1),
                  util::FormatDouble(avg, 1), util::FormatDouble(p95, 1),
                  util::FormatDouble(p5, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nmean p95-p5 spread: %.1f%% of a server; max p95 over the day "
              "stays below saturation (100%%)\n", spread.Mean());
  return reporter.WriteReport();
}
