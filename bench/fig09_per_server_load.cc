// Figure 9: per-server CPU (box plots) and RAM (max, the circles) for the
// ALL dataset consolidated onto the target machines.
//
// Expected shape (paper): load approximately balanced across servers; on
// every server either RAM or CPU is close enough to capacity that no two
// servers could be merged; a small safety margin (~5%) remains even on the
// most loaded machines.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "trace/dataset.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig09_per_server_load", argc, argv);
  using namespace kairos;
  bench::Banner("Figure 9: per-server CPU box plots and max RAM (ALL)");

  const model::DiskModel disk_model = bench::TargetDiskModel();
  trace::DatasetGenerator gen(bench::kSeed);
  core::ConsolidationProblem prob;
  prob.workloads = trace::ToProfiles(gen.GenerateAll());
  prob.disk_model = &disk_model;
  core::EngineOptions engine_options;
  engine_options.sink = reporter.sink();
  const core::ConsolidationPlan plan =
      core::ConsolidationEngine(prob, engine_options).Solve();

  const double cpu_cap = prob.fleet.classes[0].spec.StandardCores();
  const double ram_cap = static_cast<double>(prob.fleet.classes[0].spec.ram_bytes);

  util::Table table({"server", "tenants", "cpu min%", "q1%", "median%", "q3%",
                     "max%", "outliers", "max RAM %", "max RAM GB"});
  int mergeable_pairs = 0;
  std::vector<double> ram_pct, cpu_q3;
  for (size_t j = 0; j < plan.server_loads.size(); ++j) {
    const auto& s = plan.server_loads[j];
    std::vector<double> cpu_pct;
    for (double v : s.cpu_cores) cpu_pct.push_back(100.0 * v / cpu_cap);
    const util::BoxPlot box = util::MakeBoxPlot(cpu_pct);
    double ram_max = 0;
    for (double v : s.ram_bytes) ram_max = std::max(ram_max, v);
    ram_pct.push_back(100.0 * ram_max / ram_cap);
    cpu_q3.push_back(box.q3);
    table.AddRow({std::to_string(j + 1), std::to_string(s.num_slots),
                  util::FormatDouble(box.min, 1), util::FormatDouble(box.q1, 1),
                  util::FormatDouble(box.median, 1), util::FormatDouble(box.q3, 1),
                  util::FormatDouble(box.max, 1),
                  std::to_string(box.outliers.size()),
                  util::FormatDouble(ram_pct.back(), 1),
                  util::FormatDouble(ram_max / static_cast<double>(util::kGiB), 1)});
  }
  // Mergeability check: can any two servers be combined within RAM and CPU?
  for (size_t a = 0; a < plan.server_loads.size(); ++a) {
    for (size_t b = a + 1; b < plan.server_loads.size(); ++b) {
      const auto& sa = plan.server_loads[a];
      const auto& sb = plan.server_loads[b];
      bool fits = true;
      for (size_t t = 0; t < sa.cpu_cores.size() && fits; ++t) {
        if (sa.cpu_cores[t] + sb.cpu_cores[t] > 0.9 * cpu_cap) fits = false;
        if (sa.ram_bytes[t] + sb.ram_bytes[t] > 0.95 * ram_cap) fits = false;
      }
      if (fits) ++mergeable_pairs;
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nserver pairs that could still be merged (RAM+CPU): %d "
              "(paper: none — RAM or CPU always prevents merging)\n",
              mergeable_pairs);
  return reporter.WriteReport();
}
