// Shared helpers for the table/figure reproduction benches, including the
// BenchReporter harness that gives every bench binary the same observability
// surface: `--smoke` (CI-sized run), `--metrics-out=<path>` (write the
// versioned BENCH_<name>.json report of obs/report.h). A path ending in
// ".json" names the report file exactly; anything else is treated as a
// directory and the report lands at `<path>/BENCH_<name>.json`.
#ifndef KAIROS_BENCH_BENCH_COMMON_H_
#define KAIROS_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/analytic.h"
#include "model/disk_model.h"
#include "obs/export.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "sim/machine.h"

namespace kairos::bench {

/// Seed shared by all benches so outputs are reproducible run-to-run.
inline constexpr uint64_t kSeed = 2026;

/// True when `--smoke` appears anywhere on the command line: benches shrink
/// their horizons/sweeps to CI-sized runs. The one flag every bench binary
/// parses the same way.
inline bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

/// Value of `--metrics-out=<path>` anywhere on the command line (empty when
/// absent): where the bench writes its obs::Sink JSON export. Like
/// SmokeMode, parsed identically by every bench binary.
inline std::string MetricsOutPath(int argc, char** argv) {
  constexpr const char kFlag[] = "--metrics-out=";
  constexpr size_t kFlagLen = sizeof(kFlag) - 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, kFlagLen) == 0) {
      return std::string(argv[i] + kFlagLen);
    }
  }
  return std::string();
}

/// Wall-clock section timer (steady clock) — the shared replacement for the
/// ad-hoc per-bench Now()/duration boilerplate.
class ScopedTimer {
 public:
  ScopedTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Disk model for the 12-core / 96 GB consolidation target (analytic
/// profile over the RAID array; see DESIGN.md for the substitution note).
inline model::DiskModel TargetDiskModel() {
  return model::BuildAnalyticModel(sim::DiskSpec::Raid10(),
                                   model::AnalyticConfig{}, 120e9, 2000.0);
}

/// Prints a section banner so bench output reads like the paper's figure.
inline void Banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// The per-bench report harness. Construct first thing in main(); when
/// `--metrics-out` is given, sink() and profiler() are live and the bench
/// instruments its runs through them; otherwise both return nullptr and the
/// bench pays one branch per instrumentation site. End every bench with
/// `return reporter.WriteReport();` — a report that cannot be opened *or*
/// written makes the process exit non-zero, so CI can never silently skip
/// report validation. All reporter status goes to stderr; bench stdout
/// transcripts stay byte-identical with the flag on or off.
class BenchReporter {
 public:
  BenchReporter(const std::string& bench_name, int argc, char** argv)
      : name_(bench_name),
        smoke_(SmokeMode(argc, argv)),
        out_path_(MetricsOutPath(argc, argv)) {
    if (!out_path_.empty()) {
      sink_ = std::make_unique<obs::Sink>();
      profiler_ = std::make_unique<obs::Profiler>();
    }
    Config("smoke", smoke_ ? "1" : "0");
    Config("seed", std::to_string(kSeed));
  }

  const std::string& name() const { return name_; }
  bool smoke() const { return smoke_; }

  /// Null unless --metrics-out was given.
  obs::Sink* sink() { return sink_.get(); }
  obs::Profiler* profiler() { return profiler_.get(); }

  /// Starts a bench-phase span on the single-writer "bench" track (no-op
  /// without a sink). Benches are single-threaded at the top level.
  obs::ScopedSpan Phase(const std::string& phase, int64_t i0 = 0) {
    return obs::ScopedSpan(sink_.get(), "bench", phase, i0);
  }

  /// Echoes one config key into the report (later writes win in order).
  void Config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, value);
  }
  void Config(const std::string& key, int64_t value) {
    Config(key, std::to_string(value));
  }
  void Config(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    Config(key, std::string(buf));
  }

  /// Adds one bench-specific KPI (appended after the derived ones).
  void Kpi(const std::string& kpi_name, double value) {
    kpis_.push_back({kpi_name, value});
  }

  /// Writes BENCH_<name>.json and returns the bench's exit code: 0 on
  /// success or when no --metrics-out was given, 1 when the report cannot
  /// be opened or fully written.
  int WriteReport() {
    if (out_path_.empty()) return 0;
    if (sink_ != nullptr) {
      sink_->metrics().gauge("bench.total_seconds")->Set(total_timer_.Seconds());
    }
    const std::string path = ReportPath();
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "metrics-out: cannot open %s\n", path.c_str());
      return 1;
    }
    obs::WriteBenchReport(out, name_, config_, *sink_, profiler_.get(), kpis_);
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "metrics-out: write to %s failed\n", path.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics-out: wrote %s\n", path.c_str());
    return 0;
  }

  /// Where WriteReport() will put the report.
  std::string ReportPath() const {
    const std::string suffix = ".json";
    if (out_path_.size() >= suffix.size() &&
        out_path_.compare(out_path_.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
      return out_path_;
    }
    return out_path_ + "/BENCH_" + name_ + ".json";
  }

 private:
  std::string name_;
  bool smoke_;
  std::string out_path_;
  std::unique_ptr<obs::Sink> sink_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<obs::KpiValue> kpis_;
  ScopedTimer total_timer_;
};

}  // namespace kairos::bench

#endif  // KAIROS_BENCH_BENCH_COMMON_H_
