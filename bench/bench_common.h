// Shared helpers for the table/figure reproduction benches.
#ifndef KAIROS_BENCH_BENCH_COMMON_H_
#define KAIROS_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "model/analytic.h"
#include "model/disk_model.h"
#include "obs/export.h"
#include "obs/sink.h"
#include "sim/machine.h"

namespace kairos::bench {

/// Seed shared by all benches so outputs are reproducible run-to-run.
inline constexpr uint64_t kSeed = 2026;

/// True when `--smoke` appears anywhere on the command line: benches shrink
/// their horizons/sweeps to CI-sized runs. The one flag every bench binary
/// parses the same way.
inline bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

/// Value of `--metrics-out=<path>` anywhere on the command line (empty when
/// absent): where the bench writes its obs::Sink JSON export. Like
/// SmokeMode, parsed identically by every bench binary.
inline std::string MetricsOutPath(int argc, char** argv) {
  constexpr const char kFlag[] = "--metrics-out=";
  constexpr size_t kFlagLen = sizeof(kFlag) - 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, kFlagLen) == 0) {
      return std::string(argv[i] + kFlagLen);
    }
  }
  return std::string();
}

/// Writes `sink`'s JSON export to `path` (no-op on an empty path). Status
/// goes to stderr so bench stdout transcripts stay byte-identical with the
/// flag on or off.
inline void WriteMetrics(const obs::Sink& sink, const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "metrics-out: cannot open %s\n", path.c_str());
    return;
  }
  obs::ExportJson(sink, out);
  std::fprintf(stderr, "metrics-out: wrote %s\n", path.c_str());
}

/// Wall-clock section timer (steady clock) — the shared replacement for the
/// ad-hoc per-bench Now()/duration boilerplate.
class ScopedTimer {
 public:
  ScopedTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Disk model for the 12-core / 96 GB consolidation target (analytic
/// profile over the RAID array; see DESIGN.md for the substitution note).
inline model::DiskModel TargetDiskModel() {
  return model::BuildAnalyticModel(sim::DiskSpec::Raid10(),
                                   model::AnalyticConfig{}, 120e9, 2000.0);
}

/// Prints a section banner so bench output reads like the paper's figure.
inline void Banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace kairos::bench

#endif  // KAIROS_BENCH_BENCH_COMMON_H_
