// Shared helpers for the table/figure reproduction benches.
#ifndef KAIROS_BENCH_BENCH_COMMON_H_
#define KAIROS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "model/analytic.h"
#include "model/disk_model.h"
#include "sim/machine.h"

namespace kairos::bench {

/// Seed shared by all benches so outputs are reproducible run-to-run.
inline constexpr uint64_t kSeed = 2026;

/// True when `--smoke` appears anywhere on the command line: benches shrink
/// their horizons/sweeps to CI-sized runs. The one flag every bench binary
/// parses the same way.
inline bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

/// Disk model for the 12-core / 96 GB consolidation target (analytic
/// profile over the RAID array; see DESIGN.md for the substitution note).
inline model::DiskModel TargetDiskModel() {
  return model::BuildAnalyticModel(sim::DiskSpec::Raid10(),
                                   model::AnalyticConfig{}, 120e9, 2000.0);
}

/// Prints a section banner so bench output reads like the paper's figure.
inline void Banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace kairos::bench

#endif  // KAIROS_BENCH_BENCH_COMMON_H_
