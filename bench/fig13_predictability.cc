// Figure 13: past load predicts future load.
//
// For the Wikipedia and Second Life aggregate CPU statistics, the average
// of weeks 1-2 predicts week 3. Expected shape (paper): RMSE around 7-8% of
// the mean load — small enough that a modest safety margin covers it; the
// Second Life curve shows the nightly snapshot shelf repeating on schedule.
#include <cstdio>

#include "bench/bench_common.h"
#include "trace/dataset.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig13_predictability", argc, argv);
  using namespace kairos;
  bench::Banner("Figure 13: predicting week-3 CPU from the mean of weeks 1-2");

  const char* day_names[] = {"Wed", "Thu", "Fri", "Sat", "Sun", "Mon", "Tue"};
  for (auto kind : {trace::DatasetKind::kWikipedia, trace::DatasetKind::kSecondLife}) {
    const auto series = trace::WeeklyAggregateCpu(kind, 3, bench::kSeed);
    const int week = 7 * 24;
    std::vector<double> prediction(week), actual(week);
    for (int i = 0; i < week; ++i) {
      prediction[i] = 0.5 * (series.at(i) + series.at(week + i));
      actual[i] = series.at(2 * week + i);
    }

    std::printf("\n[%s] scaled CPU load (%% of a core), 4-hour samples:\n",
                trace::DatasetName(kind).c_str());
    util::Table table({"day", "hour", "real (week 3)", "prediction (avg w1-w2)"});
    for (int i = 0; i < week; i += 4) {
      table.AddRow({day_names[(i / 24) % 7], std::to_string(i % 24),
                    util::FormatDouble(actual[i], 1),
                    util::FormatDouble(prediction[i], 1)});
    }
    std::printf("%s", table.ToString().c_str());

    const double rmse = util::Rmse(prediction, actual);
    double mean = 0;
    for (double v : actual) mean += v;
    mean /= week;
    std::printf("RMSE %.1f (%.1f%% of mean load %.1f) — paper reports ~25 "
                "(~7-8%%)\n", rmse, 100.0 * rmse / mean, mean);
  }
  return reporter.WriteReport();
}
