// Figure 4: Disk Model for the experimental configuration.
//
// Sweeps the simulated Server-1 machine (two quad-core Xeons, 32 GB RAM,
// one 7200 RPM SATA disk) over working-set sizes and row-update rates with
// the synthetic OLTP workload, fits the Least-Absolute-Residuals 2nd-order
// polynomial, and prints:
//   * the measured grid (the paper collects ~7,000 points; the simulated
//     sweep uses a coarser grid),
//   * the fitted I/O surface sampled like the paper's contour plot,
//   * the quadratic saturation frontier (the thick dashed line).
// Expected shape: write throughput grows sublinearly with update rate,
// grows with working set size, and the max sustainable rate falls as the
// working set grows.
#include <cstdio>

#include "bench/bench_common.h"
#include "model/profiler.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig04_disk_model", argc, argv);
  using namespace kairos;

  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 6 * util::kGiB;  // all working sets fit in RAM
  model::ProfilerConfig pc;
  for (double gb : {1.0, 1.5, 2.0, 2.5, 3.0, 3.5}) {
    pc.working_set_bytes.push_back(gb * static_cast<double>(util::kGiB));
  }
  for (double rate : {1000.0, 4000.0, 8000.0, 14000.0, 20000.0, 28000.0, 40000.0}) {
    pc.rows_per_sec.push_back(rate);
  }
  pc.warmup_seconds = 3.0;
  pc.measure_seconds = 8.0;

  model::DiskModelProfiler profiler(sim::MachineSpec::Server1(), cfg, pc);
  bench::Banner("Figure 4: profiling sweep (measured grid)");
  const auto points = profiler.CollectPoints(bench::kSeed);
  util::Table grid({"ws_MB", "target_rows_s", "achieved_rows_s", "disk_write_MBps",
                    "saturated"});
  for (const auto& p : points) {
    grid.AddRow({util::FormatDouble(p.working_set_bytes / 1e6, 0),
                 util::FormatDouble(p.target_rows_per_sec, 0),
                 util::FormatDouble(p.achieved_rows_per_sec, 0),
                 util::FormatDouble(p.write_bytes_per_sec / 1e6, 2),
                 p.saturated ? "yes" : "no"});
  }
  std::printf("%s", grid.ToString().c_str());

  const model::DiskModel model = model::DiskModel::Fit(points);
  if (!model.valid()) {
    std::printf("model fit FAILED\n");
    return 1;
  }

  bench::Banner("Figure 4: fitted LAR polynomial surface (write MB/s)");
  util::Table surface({"ws_MB \\ rows_s", "2000", "8000", "16000", "24000", "32000"});
  for (double gb : {1.0, 1.5, 2.0, 2.5, 3.0, 3.5}) {
    const double ws = gb * static_cast<double>(util::kGiB);
    std::vector<std::string> row{util::FormatDouble(ws / 1e6, 0)};
    for (double rate : {2000.0, 8000.0, 16000.0, 24000.0, 32000.0}) {
      row.push_back(util::FormatDouble(model.PredictWriteBytesPerSec(ws, rate) / 1e6, 1));
    }
    surface.AddRow(row);
  }
  std::printf("%s", surface.ToString().c_str());

  bench::Banner("Figure 4: saturation frontier (dashed line)");
  util::Table frontier({"ws_MB", "max_sustainable_rows_s", "write_MBps_at_max"});
  for (double gb : {1.0, 1.5, 2.0, 2.5, 3.0, 3.5}) {
    const double ws = gb * static_cast<double>(util::kGiB);
    const double max_rate = model.MaxSustainableRate(ws);
    frontier.AddRow({util::FormatDouble(ws / 1e6, 0),
                     util::FormatDouble(max_rate, 0),
                     util::FormatDouble(model.PredictWriteBytesPerSec(ws, max_rate) / 1e6, 1)});
  }
  std::printf("%s", frontier.ToString().c_str());
  const auto& c = model.io_surface().coefficients();
  std::printf("LAR poly2d (normalized inputs): %.3g %+.3g u %+.3g v %+.3g u^2 "
              "%+.3g uv %+.3g v^2\n", c[0], c[1], c[2], c[3], c[4], c[5]);
  return reporter.WriteReport();
}
