// Section 6 / 7.5: solver performance.
//
// Compares the bounded-K binary-search strategy (fractional lower bound,
// greedy upper bound, feasibility probes, then a polish at K') against a
// direct application of the solver to the full space. Expected shape
// (paper): the bounded search is dramatically faster (up to 45x on the
// Wikia statistics — over 33 min unbounded vs 44 s bounded) at equal or
// better solution quality, and all individual datasets solve within
// minutes.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "trace/dataset.h"
#include "util/table.h"

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace kairos;
  bench::Banner("Solver performance: bounded-K binary search vs. full space");

  const model::DiskModel disk_model = bench::TargetDiskModel();
  trace::DatasetGenerator gen(bench::kSeed);

  util::Table table({"dataset", "workloads", "bounded-K (s)", "servers",
                     "full-space (s)", "servers", "speedup"});
  for (auto kind : trace::AllDatasets()) {
    const auto traces = gen.Generate(kind);
    core::ConsolidationProblem prob;
    prob.workloads = trace::ToProfiles(traces);
    prob.disk_model = &disk_model;

    core::EngineOptions bounded;
    const double t0 = Now();
    const auto plan_bounded = core::ConsolidationEngine(prob, bounded).Solve();
    const double bounded_s = Now() - t0;

    core::EngineOptions full;
    full.use_bounded_k = false;
    // Give the unbounded solver a budget that reaches comparable quality;
    // its space is max_servers = N, so it needs far more work per step.
    full.direct_evaluations = 20000;
    full.local_search_max_sweeps = 200;
    const double t1 = Now();
    const auto plan_full = core::ConsolidationEngine(prob, full).Solve();
    const double full_s = Now() - t1;

    table.AddRow({trace::DatasetName(kind), std::to_string(traces.size()),
                  util::FormatDouble(bounded_s, 2),
                  std::to_string(plan_bounded.servers_used) +
                      (plan_bounded.feasible ? "" : "!"),
                  util::FormatDouble(full_s, 2),
                  std::to_string(plan_full.servers_used) +
                      (plan_full.feasible ? "" : "!"),
                  util::FormatDouble(full_s / std::max(1e-3, bounded_s), 1) + "x"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n'!' marks an infeasible result. Expected: bounded-K much "
              "faster at equal-or-fewer servers (paper: up to 45x; all "
              "individual datasets under 8 minutes).\n");
  return 0;
}
