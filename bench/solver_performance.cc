// Section 6 / 7.5: solver performance.
//
// Compares the bounded-K binary-search strategy (fractional lower bound,
// greedy upper bound, feasibility probes, then a polish at K') against a
// direct application of the solver to the full space. Expected shape
// (paper): the bounded search is dramatically faster (up to 45x on the
// Wikia statistics — over 33 min unbounded vs 44 s bounded) at equal or
// better solution quality, and all individual datasets solve within
// minutes.
// Also compares the solver portfolio (src/solve/) at 1/2/4 threads against
// the single engine on the same problems: the portfolio should match or
// beat the engine's objective, and adding threads should cut wall-clock
// versus running the same solvers sequentially.
// Finally, on exactly solvable sub-instances of each dataset, races the
// portfolio against the "exact" branch-and-bound solver and reports the
// certified optimality gap (KPI solver.gap_to_exact, exact-gated at 0 in
// the CI baseline: the portfolio must keep finding the proven optimum).
//
// --smoke shrinks traces, budgets, and the dataset sweep for CI.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "obs/sink.h"
#include "solve/portfolio.h"
#include "solve/solver.h"
#include "trace/dataset.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kairos;
  bench::BenchReporter reporter("solver_performance", argc, argv);
  obs::Sink* const sink_ptr = reporter.sink();
  const bool smoke = reporter.smoke();

  bench::Banner("Solver performance: bounded-K binary search vs. full space");

  const model::DiskModel disk_model = bench::TargetDiskModel();
  trace::TraceConfig trace_config;
  if (smoke) trace_config.samples = 48;
  reporter.Config("samples", static_cast<int64_t>(trace_config.samples));
  trace::DatasetGenerator gen(bench::kSeed, trace_config);
  std::vector<trace::DatasetKind> datasets = trace::AllDatasets();
  if (smoke) datasets.resize(2);  // Internal + Wikia keep CI under a minute

  util::Table table({"dataset", "workloads", "bounded-K (s)", "servers",
                     "full-space (s)", "servers", "speedup"});
  for (auto kind : datasets) {
    const auto traces = gen.Generate(kind);
    core::ConsolidationProblem prob;
    prob.workloads = trace::ToProfiles(traces);
    prob.disk_model = &disk_model;

    core::EngineOptions bounded;
    bounded.sink = sink_ptr;
    bounded.obs_label = "bounded";
    if (smoke) {
      bounded.direct_evaluations = 800;
      bounded.local_search_max_sweeps = 40;
    }
    const bench::ScopedTimer bounded_timer;
    const auto plan_bounded = core::ConsolidationEngine(prob, bounded).Solve();
    const double bounded_s = bounded_timer.Seconds();

    core::EngineOptions full;
    full.use_bounded_k = false;
    // Give the unbounded solver a budget that reaches comparable quality;
    // its space is max_servers = N, so it needs far more work per step.
    full.direct_evaluations = smoke ? 2000 : 20000;
    full.local_search_max_sweeps = smoke ? 60 : 200;
    full.sink = sink_ptr;
    full.obs_label = "full-space";
    const bench::ScopedTimer full_timer;
    const auto plan_full = core::ConsolidationEngine(prob, full).Solve();
    const double full_s = full_timer.Seconds();

    table.AddRow({trace::DatasetName(kind), std::to_string(traces.size()),
                  util::FormatDouble(bounded_s, 2),
                  std::to_string(plan_bounded.servers_used) +
                      (plan_bounded.feasible ? "" : "!"),
                  util::FormatDouble(full_s, 2),
                  std::to_string(plan_full.servers_used) +
                      (plan_full.feasible ? "" : "!"),
                  util::FormatDouble(full_s / std::max(1e-3, bounded_s), 1) + "x"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n'!' marks an infeasible result. Expected: bounded-K much "
              "faster at equal-or-fewer servers (paper: up to 45x; all "
              "individual datasets under 8 minutes).\n");

  bench::Banner("Solver portfolio {greedy, engine, anneal, tabu}: threads vs. "
                "single engine");

  util::Table portfolio_table({"dataset", "engine obj", "engine (s)",
                               "portfolio obj", "winner", "1-thr (s)",
                               "2-thr (s)", "4-thr (s)", "4-thr speedup"});
  for (auto kind : datasets) {
    const auto traces = gen.Generate(kind);
    core::ConsolidationProblem prob;
    prob.workloads = trace::ToProfiles(traces);
    prob.disk_model = &disk_model;

    core::EngineOptions engine_options;
    engine_options.sink = sink_ptr;
    if (smoke) {
      engine_options.direct_evaluations = 800;
      engine_options.local_search_max_sweeps = 40;
    }
    const bench::ScopedTimer engine_timer;
    const auto engine_plan =
        core::ConsolidationEngine(prob, engine_options).Solve();
    const double engine_s = engine_timer.Seconds();

    const auto specs = solve::PortfolioRunner::DefaultSpecs(bench::kSeed);
    double seconds[3] = {0, 0, 0};
    solve::PortfolioResult result;
    const int thread_counts[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      solve::PortfolioOptions options;
      options.threads = thread_counts[i];
      options.budget.sink = sink_ptr;
      if (smoke) {
        options.budget.max_iterations = 8000;
        options.budget.direct_evaluations = 800;
        options.budget.probe_direct_evaluations = 200;
      }
      const auto r = solve::PortfolioRunner(options).Run(prob, specs);
      seconds[i] = r.wall_seconds;
      result = r;  // same specs + seeds -> same plans at every thread count
    }

    portfolio_table.AddRow(
        {trace::DatasetName(kind), util::FormatDouble(engine_plan.objective, 1),
         util::FormatDouble(engine_s, 2),
         util::FormatDouble(result.best.objective, 1) +
             (result.best.feasible ? "" : "!"),
         result.winner, util::FormatDouble(seconds[0], 2),
         util::FormatDouble(seconds[1], 2), util::FormatDouble(seconds[2], 2),
         util::FormatDouble(seconds[0] / std::max(1e-3, seconds[2]), 1) + "x"});
  }
  std::printf("%s", portfolio_table.ToString().c_str());
  std::printf("\nExpected: portfolio objective <= engine objective on every "
              "dataset, and — on a multi-core host — 4 threads well under "
              "the 1-thread (sequential) wall-clock. Detected hardware "
              "threads: %u (speedups flatten to ~1x on a single core).\n",
              std::thread::hardware_concurrency());

  bench::Banner("Gap to exact: portfolio incumbent vs. certified optimum");

  // Sub-instances small enough for the branch-and-bound to *prove* the
  // optimum within its default node budget: the first few workloads of each
  // dataset on a tight server cap. The portfolio's gap to that certificate
  // is the quality KPI the CI baseline pins at zero.
  const int sub_workloads = 8;
  const int sub_cap = 5;
  reporter.Config("exact_sub_workloads", static_cast<int64_t>(sub_workloads));
  reporter.Config("exact_sub_cap", static_cast<int64_t>(sub_cap));

  util::Table gap_table({"dataset", "slots", "exact obj", "nodes", "proved",
                         "portfolio obj", "gap"});
  double worst_gap = 0;
  int64_t proved_instances = 0;
  for (auto kind : datasets) {
    const auto traces = gen.Generate(kind);
    core::ConsolidationProblem prob;
    prob.workloads = trace::ToProfiles(traces);
    prob.workloads.resize(
        std::min<size_t>(prob.workloads.size(), sub_workloads));
    prob.disk_model = &disk_model;
    prob.max_servers = sub_cap;

    solve::SolveBudget budget;
    budget.sink = sink_ptr;
    if (smoke) {
      budget.max_iterations = 8000;
      budget.direct_evaluations = 800;
      budget.probe_direct_evaluations = 200;
    }

    auto exact = solve::SolverRegistry::Global().Create("exact", bench::kSeed);
    const auto exact_plan = exact->Solve(prob, budget, nullptr);

    solve::PortfolioOptions options;
    options.threads = 2;
    options.budget = budget;
    const auto portfolio_result = solve::PortfolioRunner(options).Run(
        prob, solve::PortfolioRunner::DefaultSpecs(bench::kSeed));

    // Gap relative to the certificate; only proved instances feed the KPI
    // (a truncated exact run bounds nothing the portfolio must answer for).
    const double gap =
        exact_plan.proved_optimal
            ? std::max(0.0, (portfolio_result.best.objective -
                             exact_plan.objective) /
                               std::max(1.0, std::abs(exact_plan.objective)))
            : -1.0;
    if (exact_plan.proved_optimal) {
      ++proved_instances;
      worst_gap = std::max(worst_gap, gap);
    }
    gap_table.AddRow(
        {trace::DatasetName(kind), std::to_string(prob.TotalSlots()),
         util::FormatDouble(exact_plan.objective, 1),
         std::to_string(exact_plan.exact_nodes),
         exact_plan.proved_optimal ? "yes" : "no",
         util::FormatDouble(portfolio_result.best.objective, 1),
         exact_plan.proved_optimal ? util::FormatDouble(gap, 6) : "n/a"});
  }
  std::printf("%s", gap_table.ToString().c_str());
  std::printf("\nExpected: every sub-instance proved optimal and the "
              "portfolio incumbent on the certificate (gap 0): the "
              "metaheuristics lose nothing to the exact search at this "
              "scale.\n");
  reporter.Kpi("solver.gap_to_exact", worst_gap);
  reporter.Kpi("solver.exact_proved_instances",
               static_cast<double>(proved_instances));

  return reporter.WriteReport();
}
