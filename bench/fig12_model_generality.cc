// Figure 12: generality of the disk model.
//
// (a) Database size does not matter: a synthetic workload touching a fixed
//     512 MB hot set inside databases of 1 / 2 / 5 GB produces nearly
//     identical write-throughput curves.
// (b) Transaction type does not matter: TPC-C (30 warehouses, ~4-6 GB
//     database) and Wikipedia (100K pages, 67 GB database) with comparable
//     ~2.2 GB working sets impose nearly identical disk write throughput at
//     equal rows-updated/sec (Wikipedia with higher variance due to its
//     tuple-size spread).
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "db/server.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"
#include "workload/tpcc.h"
#include "workload/wikipedia.h"

namespace kairos {
namespace {

struct Point {
  double rows_per_sec = 0;
  double write_mbps = 0;
  double write_stddev = 0;
};

Point Measure(workload::Workload* w, db::Server* server, double seconds,
              uint64_t seed) {
  workload::Driver driver(server, seed);
  driver.AddWorkload(w);
  driver.Warm();
  driver.Run(4.0);
  const workload::RunResult res = driver.Run(seconds, 1.0);
  Point p;
  p.rows_per_sec = res.workloads[0].update_rows_per_sec.Mean();
  p.write_mbps = res.server.write_mbps.Mean();
  util::Accumulator acc;
  for (double v : res.server.write_mbps.values()) acc.Add(v);
  p.write_stddev = acc.Stddev();
  return p;
}

}  // namespace
}  // namespace kairos

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig12_model_generality", argc, argv);
  using namespace kairos;

  // ---- Panel (a): database size does not matter ----
  bench::Banner("Figure 12a: database size does not matter (512 MB hot set)");
  util::Table a({"rows_updated_per_sec", "DB 1GB (MB/s)", "DB 2GB (MB/s)",
                 "DB 5GB (MB/s)"});
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 8 * util::kGiB;
  for (double rate : {4000.0, 10000.0, 20000.0, 30000.0, 40000.0}) {
    std::vector<std::string> row{util::FormatDouble(rate, 0)};
    for (double db_gb : {1.0, 2.0, 5.0}) {
      workload::MicroSpec spec;
      spec.working_set_bytes = 512 * util::kMiB;
      spec.data_bytes = static_cast<uint64_t>(db_gb * util::kGiB);
      spec.updates_per_tx = 10;
      spec.reads_per_tx = 2;
      spec.cpu_us_per_tx = 120;
      spec.pattern = std::make_shared<workload::FlatPattern>(rate / 10.0);
      workload::MicroWorkload w("size", spec);
      db::Server server(sim::MachineSpec::Server1(), cfg, bench::kSeed);
      const Point p = Measure(&w, &server, 12.0, bench::kSeed);
      row.push_back(util::FormatDouble(p.write_mbps, 2));
    }
    a.AddRow(row);
  }
  std::printf("%s", a.ToString().c_str());
  std::printf("expected: columns nearly identical — only the working set "
              "matters, not total database size.\n");

  // ---- Panel (b): transaction type does not matter ----
  bench::Banner(
      "Figure 12b: transaction type does not matter (~2.2 GB working sets)");
  util::Table b({"rows_updated_per_sec(target)", "tpcc30w MB/s", "(sd)",
                 "wikipedia100Kp MB/s", "(sd)"});
  for (double rate : {200.0, 400.0, 600.0, 800.0, 1000.0}) {
    // TPC-C 30 warehouses: ~12 updated rows/tx.
    workload::TpccWorkload tpcc(
        "tpcc", 30, std::make_shared<workload::FlatPattern>(
                        rate / workload::TpccWorkload::Profile().update_rows));
    db::Server s1(sim::MachineSpec::Server1(), cfg, bench::kSeed);
    const Point pt = Measure(&tpcc, &s1, 15.0, bench::kSeed);

    // Wikipedia 100K pages: ~0.5 updated rows/tx, 67 GB of data.
    workload::WikipediaWorkload wiki(
        "wiki", 100, std::make_shared<workload::FlatPattern>(
                         rate / workload::WikipediaWorkload::Profile().update_rows));
    db::DbmsConfig wiki_cfg = cfg;
    db::Server s2(sim::MachineSpec::Server1(), wiki_cfg, bench::kSeed);
    const Point pw = Measure(&wiki, &s2, 15.0, bench::kSeed);

    b.AddRow({util::FormatDouble(rate, 0), util::FormatDouble(pt.write_mbps, 2),
              util::FormatDouble(pt.write_stddev, 2),
              util::FormatDouble(pw.write_mbps, 2),
              util::FormatDouble(pw.write_stddev, 2)});
  }
  std::printf("%s", b.ToString().c_str());
  std::printf(
      "expected: the two workloads impose similar write throughput at equal\n"
      "update rates despite a ~14x database-size difference; Wikipedia shows\n"
      "higher variance (70 B - 3.6 MB tuples).\n");
  return reporter.WriteReport();
}
