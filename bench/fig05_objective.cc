// Figure 5: a rendering of the consolidation objective function.
//
// Projects the objective onto one axis — the fraction of total load piled
// onto one server — for solutions using 4, 5, and 6 servers, in a scenario
// where 4 servers is the optimum. Expected shape (as in the paper's
// sketch): each K has a valley at the balanced assignment; every 4-server
// value is below every 5-server value, which is below every 6-server value;
// and pushing too much load onto one server spikes the objective through
// the constraint-violation penalty.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/evaluator.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  kairos::bench::BenchReporter reporter("fig05_objective", argc, argv);
  using namespace kairos;
  bench::Banner("Figure 5: objective vs. load concentration, per server count");

  // 12 identical workloads; 3 fit comfortably on a server, so 4 servers is
  // the minimum feasible count.
  core::ConsolidationProblem prob;
  for (int i = 0; i < 12; ++i) {
    monitor::WorkloadProfile p;
    p.name = "w" + std::to_string(i);
    p.cpu_cores = util::TimeSeries::Constant(300, 4, 2.8);
    p.ram_bytes = util::TimeSeries::Constant(
        300, 4, 26.0 * static_cast<double>(util::kGiB));
    p.update_rows_per_sec = util::TimeSeries::Constant(300, 4, 10.0);
    p.working_set_bytes = 20e9;
    prob.workloads.push_back(p);
  }

  util::Table table({"servers", "workloads_on_server0", "objective", "feasible"});
  for (int k : {4, 5, 6}) {
    core::Evaluator ev(prob, k);
    // Sweep concentration: m workloads on server 0, rest round-robin over
    // the remaining k-1 servers.
    for (int m = 1; m <= 12 - (k - 1); ++m) {
      std::vector<int> assignment(12);
      for (int i = 0; i < 12; ++i) {
        assignment[i] = i < m ? 0 : 1 + (i - m) % (k - 1);
      }
      ev.Load(assignment);
      table.AddRow({std::to_string(k), std::to_string(m),
                    util::FormatDouble(ev.current_cost(), 2),
                    ev.IsFeasible() ? "yes" : "VIOLATION"});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexpected: minima at the balanced points (3 per server for K=4); any\n"
      "K=4 solution < any K=5 < any K=6; overloading server0 spikes the\n"
      "objective (the constraint-violation wall on the left of Figure 5).\n");
  return reporter.WriteReport();
}
