// Heterogeneous-fleet consolidation sweep: solves the mixed-class scenarios
// over a sweep of class mixes (how many current-generation boxes are
// available next to the weakest class) and reports servers used per class,
// fleet cost, and consolidation ratio for each mix. Mix 0 is the "same
// workloads forced onto the weakest class" baseline; the headline is how
// much cheaper the class-aware placement gets as bigger boxes join the
// fleet. A second section streams the generation-upgrade scenario through
// the online controller and drains the legacy class mid-horizon. A third
// section sweeps the RAID-vs-spindle scenario — two classes with identical
// CPU/RAM but different *per-class disk models* — showing the update-heavy
// workloads landing on the RAID class, and demonstrates the disk-aware
// migration ledger flagging a staged plan that transiently overloads a
// spindle-bound box.
//
//   build/bench_fleet_consolidation [--smoke]
//
// --smoke shrinks horizons and solver budgets for CI.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/sink.h"
#include "online/controller.h"
#include "online/migration.h"
#include "online/telemetry.h"
#include "solve/portfolio.h"
#include "trace/scenario.h"
#include "util/table.h"

using namespace kairos;

namespace {

/// Non-null when --metrics-out is set: every section's solves feed the one
/// sink (all output goes to the JSON file; stdout stays byte-identical).
obs::Sink* g_sink = nullptr;

struct MixResult {
  core::ConsolidationPlan plan;
  std::string winner;
};

/// One spec per registered solver, seeds derived from `seed`.
std::vector<solve::PortfolioSolverSpec> MakeSpecs(uint64_t seed) {
  std::vector<solve::PortfolioSolverSpec> specs;
  for (const std::string& name : solve::RegisteredSolverNames()) {
    specs.push_back({name, seed});
    seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  }
  return specs;
}

MixResult SolveMix(const trace::FleetScenario& scenario, int strong_count,
                   const solve::SolveBudget& budget) {
  core::ConsolidationProblem problem;
  problem.workloads = scenario.profiles;
  problem.fleet.classes = {scenario.fleet.classes[0]};
  if (strong_count > 0) {
    sim::MachineClass strong = scenario.fleet.classes[1];
    strong.count = strong_count;
    problem.fleet.classes.push_back(strong);
  }

  solve::PortfolioOptions options;
  options.budget = budget;
  options.budget.sink = g_sink;
  const solve::PortfolioResult result =
      solve::PortfolioRunner(options).Run(problem, MakeSpecs(bench::kSeed));
  return {result.best, result.winner};
}

void SweepScenario(trace::FleetScenarioKind kind, int steps,
                   const solve::SolveBudget& budget) {
  trace::ScenarioConfig config;
  config.steps = steps;
  config.seed = bench::kSeed;
  const trace::FleetScenario scenario = trace::MakeFleetScenario(kind, config);

  const sim::MachineClass& weak = scenario.fleet.classes[0];
  const sim::MachineClass& strong = scenario.fleet.classes[1];
  std::printf("scenario %s: %zu workloads, weak=%s w=%s, strong=%s w=%s\n",
              trace::FleetScenarioName(kind).c_str(), scenario.profiles.size(),
              weak.spec.name.c_str(),
              util::FormatDouble(weak.cost_weight, 2).c_str(),
              strong.spec.name.c_str(),
              util::FormatDouble(strong.cost_weight, 2).c_str());

  util::Table table({"strong boxes", "winner", "weak used", "strong used",
                     "fleet cost", "ratio", "feasible"});
  double weakest_only_cost = 0;
  double best_cost = 1e300;
  const int max_strong = strong.count;
  for (int m = 0; m <= max_strong; ++m) {
    const MixResult r = SolveMix(scenario, m, budget);
    const int weak_used =
        r.plan.class_servers_used.empty() ? 0 : r.plan.class_servers_used[0];
    const int strong_used = r.plan.class_servers_used.size() > 1
                                ? r.plan.class_servers_used[1]
                                : 0;
    table.AddRow({std::to_string(m), r.winner, std::to_string(weak_used),
                  std::to_string(strong_used),
                  util::FormatDouble(r.plan.fleet_cost, 2),
                  util::FormatDouble(r.plan.consolidation_ratio, 1),
                  r.plan.feasible ? "yes" : "NO"});
    if (m == 0) weakest_only_cost = r.plan.fleet_cost;
    if (r.plan.feasible && r.plan.fleet_cost < best_cost) {
      best_cost = r.plan.fleet_cost;
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("best mix fleet cost %s vs weakest-only %s (%s%% cheaper)\n\n",
              util::FormatDouble(best_cost, 2).c_str(),
              util::FormatDouble(weakest_only_cost, 2).c_str(),
              util::FormatDouble(
                  weakest_only_cost > 0
                      ? 100.0 * (weakest_only_cost - best_cost) / weakest_only_cost
                      : 0.0,
                  1)
                  .c_str());
}

/// RAID-vs-spindle: solve the mixed-disk fleet, report where the
/// update-heavy workloads landed, then ask the migration planner to stage
/// a plan that parks two update-heavy tenants on one spindle box — the
/// disk-aware ledger must flag it unsafe.
void RaidVsSpindle(int steps, const solve::SolveBudget& budget) {
  trace::ScenarioConfig config;
  config.steps = steps;
  config.seed = bench::kSeed;
  const trace::FleetScenario scenario = trace::MakeFleetScenario(
      trace::FleetScenarioKind::kRaidVsSpindle, config);

  core::ConsolidationProblem problem;
  problem.workloads = scenario.profiles;
  problem.fleet = scenario.fleet;

  solve::PortfolioOptions options;
  options.budget = budget;
  options.budget.sink = g_sink;
  const solve::PortfolioResult result =
      solve::PortfolioRunner(options).Run(problem, MakeSpecs(bench::kSeed));

  std::printf("fleet: %s\n", scenario.fleet.Render().c_str());
  int heavy_on_raid = 0, heavy_total = 0, light_on_raid = 0;
  std::vector<char> is_heavy(scenario.profiles.size(), 0);
  for (int w : scenario.update_heavy) is_heavy[w] = 1;
  const auto& plan = result.best.assignment.server_of_slot;
  for (int w = 0; w < static_cast<int>(plan.size()); ++w) {
    const bool on_raid =
        scenario.fleet.ClassOf(plan[w]) == scenario.raid_class;
    if (is_heavy[w]) {
      ++heavy_total;
      if (on_raid) ++heavy_on_raid;
    } else if (on_raid) {
      ++light_on_raid;
    }
  }
  std::printf(
      "winner %s: %s, fleet cost %s, update-heavy on raid %d/%d, "
      "light on raid %d\n",
      result.winner.c_str(), result.best.feasible ? "feasible" : "INFEASIBLE",
      util::FormatDouble(result.best.fleet_cost, 2).c_str(), heavy_on_raid,
      heavy_total, light_on_raid);

  // Ledger rejection demo: stage "two update-heavy tenants onto one
  // spindle box" from the solved placement. One fits; the second would
  // push the box past its sustainable update rate mid-migration.
  if (scenario.update_heavy.size() >= 2) {
    std::vector<int> from = plan;
    std::vector<int> to = plan;
    // A spindle server nobody uses in the incumbent placement.
    int spare_spindle = -1;
    for (int j = 0; j < scenario.fleet.classes[0].count; ++j) {
      bool used = false;
      for (int s : from) used = used || s == j;
      if (!used) {
        spare_spindle = j;
        break;
      }
    }
    if (spare_spindle >= 0) {
      to[scenario.update_heavy[0]] = spare_spindle;
      to[scenario.update_heavy[1]] = spare_spindle;
      const online::MigrationPlan bad =
          online::MigrationPlanner(/*max_stages=*/6).Plan(problem, from, to);
      std::printf(
          "staged co-location of 2 update-heavy tenants on spindle server "
          "%d: %s (%d moves, %zu stages)\n",
          spare_spindle, bad.safe ? "safe (BUG)" : "rejected as UNSAFE",
          bad.total_moves(), bad.stages.size());
    }
  }
  std::printf("\n");
}

/// Count-prefix vs cost-budget dimensioning head-to-head on the engine
/// solver: fleet cost on the scenarios where the declaration order hides
/// the good class mix (the ROADMAP's bounded-K prefix-probing miss). The
/// cheaper/denser class is declared last in both, so the legacy prefix can
/// only reach it through the greedy rescue, while the budget search buys it
/// outright.
void DimensioningComparison(const std::vector<trace::FleetScenarioKind>& kinds,
                            int steps, const solve::SolveBudget& budget) {
  util::Table table({"scenario", "dimensioning", "feasible", "fleet cost",
                     "servers", "budget probes", "chosen mix"});
  for (trace::FleetScenarioKind kind : kinds) {
    trace::ScenarioConfig config;
    config.steps = steps;
    config.seed = bench::kSeed;
    const trace::FleetScenario scenario = trace::MakeFleetScenario(kind, config);
    core::ConsolidationProblem problem;
    problem.workloads = scenario.profiles;
    problem.fleet = scenario.fleet;

    double prefix_cost = 0, budget_cost = 0;
    for (core::DimensioningMode mode :
         {core::DimensioningMode::kCountPrefix,
          core::DimensioningMode::kCostBudget}) {
      core::EngineOptions options;
      options.seed = bench::kSeed;
      options.direct_evaluations = budget.direct_evaluations;
      options.probe_direct_evaluations = budget.probe_direct_evaluations;
      options.local_search_max_sweeps = budget.local_search_max_sweeps;
      options.dimensioning = mode;
      options.sink = g_sink;
      options.obs_label =
          mode == core::DimensioningMode::kCostBudget ? "dim-cost" : "dim-prefix";
      const core::ConsolidationPlan plan =
          core::ConsolidationEngine(problem, options).Solve();
      std::string mix = "-";
      if (!plan.chosen_class_counts.empty()) {
        mix.clear();
        for (size_t c = 0; c < plan.chosen_class_counts.size(); ++c) {
          if (c > 0) mix += " ";
          mix += scenario.fleet.classes[c].spec.name + "=" +
                 std::to_string(plan.chosen_class_counts[c]);
        }
      }
      const bool cost_mode = mode == core::DimensioningMode::kCostBudget;
      (cost_mode ? budget_cost : prefix_cost) = plan.fleet_cost;
      table.AddRow({trace::FleetScenarioName(kind),
                    cost_mode ? "cost-budget" : "count-prefix",
                    plan.feasible ? "yes" : "NO",
                    util::FormatDouble(plan.fleet_cost, 2),
                    std::to_string(plan.servers_used),
                    std::to_string(plan.budget_probes), mix});
    }
    std::printf("%s: cost-budget fleet cost %s vs count-prefix %s (%s%% cheaper)\n",
                trace::FleetScenarioName(kind).c_str(),
                util::FormatDouble(budget_cost, 2).c_str(),
                util::FormatDouble(prefix_cost, 2).c_str(),
                util::FormatDouble(
                    prefix_cost > 0
                        ? 100.0 * (prefix_cost - budget_cost) / prefix_cost
                        : 0.0,
                    1)
                    .c_str());
  }
  std::printf("%s\n", table.ToString().c_str());
}

/// Dimensioner probe-context cache on vs off: the cached full-cap
/// evaluator + greedy packing context must not change a single decision —
/// identical chosen mix and fleet cost — so the whole comparison is a
/// probe-latency delta. Returns false (failing the bench) when the plans
/// diverge.
bool ProbeCacheComparison(trace::FleetScenarioKind kind, int steps,
                          const solve::SolveBudget& budget,
                          bench::BenchReporter* reporter) {
  trace::ScenarioConfig config;
  config.steps = steps;
  config.seed = bench::kSeed;
  const trace::FleetScenario scenario = trace::MakeFleetScenario(kind, config);
  core::ConsolidationProblem problem;
  problem.workloads = scenario.profiles;
  problem.fleet = scenario.fleet;

  core::ConsolidationPlan plans[2];
  double seconds[2] = {0, 0};
  for (int cached = 0; cached < 2; ++cached) {
    core::EngineOptions options;
    options.seed = bench::kSeed;
    options.direct_evaluations = budget.direct_evaluations;
    options.probe_direct_evaluations = budget.probe_direct_evaluations;
    options.local_search_max_sweeps = budget.local_search_max_sweeps;
    options.dimensioning = core::DimensioningMode::kCostBudget;
    options.reuse_probe_context = cached == 1;
    options.sink = g_sink;
    options.obs_label = cached ? "dim-cache-on" : "dim-cache-off";
    bench::ScopedTimer timer;
    plans[cached] = core::ConsolidationEngine(problem, options).Solve();
    seconds[cached] = timer.Seconds();
  }

  const bool identical =
      plans[0].assignment.server_of_slot == plans[1].assignment.server_of_slot &&
      plans[0].chosen_class_counts == plans[1].chosen_class_counts &&
      plans[0].fleet_cost == plans[1].fleet_cost;
  const double speedup = seconds[1] > 0 ? seconds[0] / seconds[1] : 0;
  std::printf(
      "%s: probe context cached %ss vs rebuilt %ss (%sx), %d probes, "
      "plans %s\n",
      trace::FleetScenarioName(kind).c_str(),
      util::FormatDouble(seconds[1], 3).c_str(),
      util::FormatDouble(seconds[0], 3).c_str(),
      util::FormatDouble(speedup, 2).c_str(), plans[1].budget_probes,
      identical ? "identical" : "DIVERGED (bug)");
  reporter->Kpi("dim.probe_cache_on_seconds", seconds[1]);
  reporter->Kpi("dim.probe_cache_off_seconds", seconds[0]);
  reporter->Kpi("dim.probe_cache_speedup", speedup);
  return identical;
}

void GenerationUpgradeDrain(int steps) {
  trace::ScenarioConfig config;
  config.steps = steps;
  config.seed = bench::kSeed;
  const trace::FleetScenario scenario =
      trace::MakeFleetScenario(trace::FleetScenarioKind::kGenerationUpgrade, config);

  online::ControllerConfig controller_config;
  controller_config.base.workloads = scenario.profiles;
  controller_config.base.fleet = scenario.fleet;
  controller_config.seed = bench::kSeed;
  controller_config.sink = g_sink;
  online::ConsolidationController controller(controller_config);

  online::ReplayFeed feed = online::ReplayFeed::FromProfiles(scenario.profiles);
  std::vector<online::TelemetrySample> samples;
  int step = 0;
  bool drained = false;
  while (feed.Next(&samples)) {
    if (step == scenario.drain_step) {
      drained = controller.DrainClass(scenario.drain_class);
    }
    controller.Ingest(samples);
    ++step;
  }

  int moves = controller.total_moves();
  bool all_safe = true;
  for (const auto& e : controller.history()) {
    all_safe = all_safe && e.migration_safe;
  }
  int on_legacy = 0;
  for (int s : controller.assignment()) {
    if (controller_config.base.fleet.ClassOf(s) == scenario.drain_class) ++on_legacy;
  }
  std::printf(
      "generation-upgrade: drain(%s)=%s at step %d, re-solves=%zu, moves=%d, "
      "staged-safe=%s, slots left on legacy=%d\n",
      scenario.fleet.classes[scenario.drain_class].spec.name.c_str(),
      drained ? "ok" : "REFUSED", scenario.drain_step,
      controller.history().size(), moves, all_safe ? "yes" : "NO", on_legacy);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("fleet_consolidation", argc, argv);
  const bool smoke = reporter.smoke();
  const int steps = smoke ? 24 : 96;
  g_sink = reporter.sink();
  reporter.Config("steps", static_cast<int64_t>(steps));

  solve::SolveBudget budget;
  budget.max_iterations = smoke ? 12000 : 30000;
  budget.direct_evaluations = smoke ? 800 : 4000;
  budget.probe_direct_evaluations = smoke ? 200 : 800;

  bench::Banner("heterogeneous fleet consolidation (class-mix sweep, " +
                std::to_string(steps) + " steps)");
  SweepScenario(trace::FleetScenarioKind::kMixedGeneration, steps, budget);
  SweepScenario(trace::FleetScenarioKind::kScaleUpVsScaleOut, steps, budget);

  bench::Banner("per-class disk models: RAID vs spindle");
  SweepScenario(trace::FleetScenarioKind::kRaidVsSpindle, steps, budget);
  RaidVsSpindle(steps, budget);

  bench::Banner("cost-based dimensioning (count-prefix vs cost-budget)");
  DimensioningComparison({trace::FleetScenarioKind::kRaidVsSpindle,
                          trace::FleetScenarioKind::kScaleUpVsScaleOut},
                         steps, budget);

  bench::Banner("dimensioner probe-context cache (on vs off)");
  const bool cache_ok = ProbeCacheComparison(
      trace::FleetScenarioKind::kRaidVsSpindle, steps, budget, &reporter);

  bench::Banner("generation-upgrade drain (online controller)");
  GenerationUpgradeDrain(smoke ? 32 : 64);

  const int rc = reporter.WriteReport();
  return cache_ok ? rc : 1;
}
