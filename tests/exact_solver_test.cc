// The "exact" branch-and-bound solver: on fleets small enough to enumerate
// it must match the brute-force optimum of the same encoding and prove it
// (proved_optimal, gap 0); on larger instances it must respect the node
// budget and report a truncation gap instead of running away. Plans stay a
// pure function of (problem, budget, seed), and Render() surfaces the
// gap/proved-optimal line only for exact plans.
#include "solve/branch_bound.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/evaluator.h"
#include "solve/solver.h"
#include "util/units.h"

namespace kairos {
namespace {

monitor::WorkloadProfile MakeProfile(const std::string& name, double cpu_cores,
                                     double ram_gb, int samples = 4) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, samples, cpu_cores);
  p.ram_bytes = util::TimeSeries::Constant(
      300, samples, ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, samples, 0.0);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

solve::SolveBudget TestBudget() {
  solve::SolveBudget budget;
  budget.max_iterations = 4000;
  budget.direct_evaluations = 400;
  budget.probe_direct_evaluations = 200;
  budget.local_search_max_sweeps = 20;
  return budget;
}

/// Exhaustive optimum over EVERY assignment of slots to [0, cap) — a strict
/// superset of the branch-and-bound's encoding (pin-violating placements
/// carry the pin penalty and lose), so matching it proves global optimality.
double BruteForceBest(const core::ConsolidationProblem& problem, int cap) {
  core::Evaluator ev(problem, cap);
  const int slots = problem.TotalSlots();
  std::vector<int> a(slots, 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    best = std::min(best, ev.Evaluate(a));
    int i = 0;
    while (i < slots) {
      if (++a[i] < cap) break;
      a[i] = 0;
      ++i;
    }
    if (i == slots) break;
  }
  return best;
}

void ExpectMatchesBruteForce(const core::ConsolidationProblem& problem) {
  const int cap = solve::HardCap(problem);
  const double brute = BruteForceBest(problem, cap);

  auto solver = solve::SolverRegistry::Global().Create("exact", 17);
  ASSERT_NE(solver, nullptr);
  const core::ConsolidationPlan plan =
      solver->Solve(problem, TestBudget(), nullptr);

  EXPECT_TRUE(plan.exact_search);
  EXPECT_TRUE(plan.proved_optimal);
  EXPECT_EQ(plan.optimality_gap, 0.0);
  EXPECT_GT(plan.exact_nodes, 0);
  EXPECT_LE(std::abs(plan.objective - brute),
            1e-6 * std::max(1.0, std::abs(brute)))
      << "exact " << plan.objective << " vs brute force " << brute;

  // The reported objective is the plan's true score, not an accumulator.
  core::Evaluator ev(problem, cap);
  const double rescored = ev.Evaluate(plan.assignment.server_of_slot);
  EXPECT_LE(std::abs(plan.objective - rescored),
            1e-6 * std::max(1.0, std::abs(rescored)));
}

TEST(ExactSolverTest, RegisteredInPortfolioRegistry) {
  const std::vector<std::string> names = solve::RegisteredSolverNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "exact"), names.end());
}

TEST(ExactSolverTest, MatchesBruteForceUniformFleet) {
  core::ConsolidationProblem problem;
  for (int i = 0; i < 4; ++i) {
    problem.workloads.push_back(
        MakeProfile("w" + std::to_string(i), 0.6 + 0.3 * i, 3.0 + 2.0 * i));
  }
  problem.workloads[1].replicas = 2;  // 5 slots
  problem.anti_affinity = {{0, 2}};
  problem.fleet =
      sim::FleetSpec::Homogeneous(sim::MachineSpec::ConsolidationTarget());
  problem.max_servers = 3;  // 3^5 = 243 assignments
  ExpectMatchesBruteForce(problem);
}

TEST(ExactSolverTest, MatchesBruteForceHeterogeneousFleet) {
  core::ConsolidationProblem problem;
  for (int i = 0; i < 4; ++i) {
    problem.workloads.push_back(
        MakeProfile("w" + std::to_string(i), 0.5 + 0.4 * i, 4.0 + 3.0 * i));
  }
  problem.fleet.classes.clear();
  problem.fleet.AddClass(sim::MachineSpec::Server1(), 2, 0.8)
      .AddClass(sim::MachineSpec::ConsolidationTarget(), 2, 1.0);
  ExpectMatchesBruteForce(problem);  // 4^4 = 256 assignments
}

TEST(ExactSolverTest, MatchesBruteForceWithPins) {
  core::ConsolidationProblem problem;
  for (int i = 0; i < 4; ++i) {
    problem.workloads.push_back(
        MakeProfile("w" + std::to_string(i), 0.7, 5.0 + 2.0 * i));
  }
  problem.workloads[0].pinned_server = 1;
  problem.fleet =
      sim::FleetSpec::Homogeneous(sim::MachineSpec::ConsolidationTarget());
  problem.max_servers = 3;
  ExpectMatchesBruteForce(problem);

  auto solver = solve::SolverRegistry::Global().Create("exact", 17);
  const core::ConsolidationPlan plan =
      solver->Solve(problem, TestBudget(), nullptr);
  EXPECT_EQ(plan.assignment.server_of_slot[0], 1);
}

TEST(ExactSolverTest, RespectsNodeBudgetAndReportsGap) {
  core::ConsolidationProblem problem;
  for (int i = 0; i < 18; ++i) {
    problem.workloads.push_back(MakeProfile(
        "w" + std::to_string(i), 0.4 + 0.1 * (i % 5), 3.0 + 1.0 * (i % 7)));
  }
  problem.fleet =
      sim::FleetSpec::Homogeneous(sim::MachineSpec::ConsolidationTarget());
  problem.max_servers = 12;

  solve::SolveBudget budget = TestBudget();
  budget.exact_max_nodes = 40;  // far too few for 18 slots x 12 servers
  auto solver = solve::SolverRegistry::Global().Create("exact", 17);
  ASSERT_NE(solver, nullptr);
  const core::ConsolidationPlan plan = solver->Solve(problem, budget, nullptr);

  EXPECT_TRUE(plan.exact_search);
  EXPECT_FALSE(plan.proved_optimal);
  EXPECT_LE(plan.exact_nodes, budget.exact_max_nodes + 1);
  EXPECT_GE(plan.optimality_gap, 0.0);
  // Truncated or not, the returned plan is a complete valid assignment (the
  // warm start when nothing better was reached in time).
  ASSERT_EQ(plan.assignment.server_of_slot.size(),
            static_cast<size_t>(problem.TotalSlots()));
  const int cap = solve::HardCap(problem);
  for (int s : plan.assignment.server_of_slot) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, cap);
  }
}

TEST(ExactSolverTest, DeterministicAcrossRuns) {
  core::ConsolidationProblem problem;
  for (int i = 0; i < 6; ++i) {
    problem.workloads.push_back(
        MakeProfile("w" + std::to_string(i), 0.5 + 0.2 * i, 4.0 + 1.5 * i));
  }
  problem.fleet.classes.clear();
  problem.fleet.AddClass(sim::MachineSpec::Server1(), 3, 0.8)
      .AddClass(sim::MachineSpec::ConsolidationTarget(), 3, 1.0);

  auto a = solve::SolverRegistry::Global().Create("exact", 23);
  auto b = solve::SolverRegistry::Global().Create("exact", 23);
  const core::ConsolidationPlan pa = a->Solve(problem, TestBudget(), nullptr);
  const core::ConsolidationPlan pb = b->Solve(problem, TestBudget(), nullptr);
  EXPECT_EQ(pa.assignment.server_of_slot, pb.assignment.server_of_slot);
  EXPECT_EQ(pa.objective, pb.objective);
  EXPECT_EQ(pa.exact_nodes, pb.exact_nodes);
}

TEST(ExactSolverTest, RenderGapLineGatedOnExactSearch) {
  core::ConsolidationProblem problem;
  for (int i = 0; i < 4; ++i) {
    problem.workloads.push_back(
        MakeProfile("w" + std::to_string(i), 0.6, 4.0 + 1.0 * i));
  }
  problem.fleet =
      sim::FleetSpec::Homogeneous(sim::MachineSpec::ConsolidationTarget());
  problem.max_servers = 3;

  auto exact = solve::SolverRegistry::Global().Create("exact", 17);
  const core::ConsolidationPlan exact_plan =
      exact->Solve(problem, TestBudget(), nullptr);
  EXPECT_NE(exact_plan.Render().find("exact:"), std::string::npos);
  EXPECT_NE(exact_plan.Render().find("proved optimal"), std::string::npos);

  auto engine = solve::SolverRegistry::Global().Create("engine", 17);
  const core::ConsolidationPlan engine_plan =
      engine->Solve(problem, TestBudget(), nullptr);
  EXPECT_EQ(engine_plan.Render().find("exact:"), std::string::npos);
}

}  // namespace
}  // namespace kairos
