#include "sim/disk.h"

#include <gtest/gtest.h>

#include "sim/machine.h"

namespace kairos::sim {
namespace {

DiskSpec Spec() { return DiskSpec(); }

TEST(DiskTest, SeqWriteScalesWithBytes) {
  Disk d(Spec());
  EXPECT_LT(d.SeqWriteCost(1 << 20, 0), d.SeqWriteCost(16 << 20, 0));
  EXPECT_DOUBLE_EQ(d.SeqWriteCost(0, 0), 0.0);
}

TEST(DiskTest, FsyncAddsCost) {
  Disk d(Spec());
  EXPECT_GT(d.SeqWriteCost(1 << 20, 10), d.SeqWriteCost(1 << 20, 0));
}

TEST(DiskTest, SeekTimeMonotonic) {
  Disk d(Spec());
  EXPECT_LT(d.SeekTime(0.0), d.SeekTime(0.1));
  EXPECT_LT(d.SeekTime(0.1), d.SeekTime(1.0));
  EXPECT_DOUBLE_EQ(d.SeekTime(1.0), d.SeekTime(2.0));  // clamped
}

TEST(DiskTest, RandomReadLinearInPages) {
  Disk d(Spec());
  const double one = d.RandomReadCost(1, 16384);
  EXPECT_NEAR(d.RandomReadCost(10, 16384), 10 * one, 1e-12);
  EXPECT_DOUBLE_EQ(d.RandomReadCost(0, 16384), 0.0);
}

TEST(DiskTest, SortedCheaperThanRandomWrites) {
  Disk d(Spec());
  const int64_t pages = 1000;
  const uint64_t page = 16384;
  // Sorted within a 1 GB span vs fully random.
  EXPECT_LT(d.SortedWriteCost(pages, page, 1ULL << 30), d.RandomWriteCost(pages, page));
}

TEST(DiskTest, DenseSortedBatchApproachesSweep) {
  Disk d(Spec());
  const uint64_t page = 16384;
  const uint64_t span = 256ULL << 20;  // 256 MB
  // Batch so dense the sweep bound must kick in.
  const int64_t pages = static_cast<int64_t>(span / page);
  const double cost = d.SortedWriteCost(pages, page, span);
  const double sweep =
      d.SeekTime(1.0 / 3.0) + static_cast<double>(span) / (d.spec().seq_write_mbps * 1e6);
  EXPECT_NEAR(cost, sweep, 1e-9);
}

TEST(DiskTest, SparseSortedStillPaysSeeks) {
  Disk d(Spec());
  // 10 pages over the whole disk: essentially random.
  const double sparse = d.SortedWriteCost(10, 16384, d.spec().capacity_bytes);
  EXPECT_GT(sparse, 0.5 * d.RandomWriteCost(10, 16384));
}

TEST(DiskTest, SortedCostMonotonicInPages) {
  Disk d(Spec());
  double prev = 0;
  for (int64_t pages : {10, 100, 1000, 10000}) {
    const double c = d.SortedWriteCost(pages, 16384, 2ULL << 30);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(DiskTest, InterleaveZeroForSingleStream) {
  Disk d(Spec());
  EXPECT_DOUBLE_EQ(d.InterleaveCost(1, 1000), 0.0);
  EXPECT_DOUBLE_EQ(d.InterleaveCost(0, 1000), 0.0);
  EXPECT_DOUBLE_EQ(d.InterleaveCost(5, 0), 0.0);
}

TEST(DiskTest, InterleaveGrowsWithStreams) {
  Disk d(Spec());
  EXPECT_GT(d.InterleaveCost(4, 100), d.InterleaveCost(2, 100));
  EXPECT_GT(d.InterleaveCost(2, 100), 0.0);
}

TEST(DiskTest, TickAccountingUnderCapacity) {
  Disk d(Spec());
  d.Submit(0.03);
  const auto stats = d.EndTick(0.1);
  EXPECT_DOUBLE_EQ(stats.busy_seconds, 0.03);
  EXPECT_NEAR(stats.utilization, 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(stats.serviced_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.backlog_seconds, 0.0);
}

TEST(DiskTest, TickBacklogCarriesOver) {
  Disk d(Spec());
  d.Submit(0.25);
  auto stats = d.EndTick(0.1);
  EXPECT_DOUBLE_EQ(stats.busy_seconds, 0.1);
  EXPECT_DOUBLE_EQ(stats.utilization, 1.0);
  EXPECT_NEAR(stats.serviced_fraction, 0.4, 1e-12);
  EXPECT_NEAR(stats.backlog_seconds, 0.15, 1e-12);
  // Next tick drains backlog even with no new demand.
  stats = d.EndTick(0.1);
  EXPECT_DOUBLE_EQ(stats.busy_seconds, 0.1);
  stats = d.EndTick(0.1);
  EXPECT_NEAR(stats.busy_seconds, 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(stats.backlog_seconds, 0.0);
}

TEST(DiskTest, ResetClearsState) {
  Disk d(Spec());
  d.Submit(10.0);
  d.EndTick(0.1);
  d.Reset();
  const auto stats = d.EndTick(0.1);
  EXPECT_DOUBLE_EQ(stats.demand_seconds, 0.0);
  EXPECT_DOUBLE_EQ(d.total_busy_seconds(), 0.0);
}

TEST(MachineTest, StandardCoresScaling) {
  MachineSpec m = MachineSpec::Server1();
  EXPECT_NEAR(m.StandardCores(), 8.0, 1e-9);  // 2.66 GHz = standard
  MachineSpec m2 = MachineSpec::Server2();
  EXPECT_NEAR(m2.StandardCores(), 2.0 * 3.2 / 2.66, 1e-9);
}

TEST(MachineTest, ConsolidationTarget) {
  const MachineSpec t = MachineSpec::ConsolidationTarget();
  EXPECT_EQ(t.cores, 12);
  EXPECT_EQ(t.ram_bytes, 96 * util::kGiB);
}

}  // namespace
}  // namespace kairos::sim
