#include "db/buffer_pool.h"

#include <gtest/gtest.h>

namespace kairos::db {
namespace {

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(10);
  TouchResult r = pool.Touch(1, false);
  EXPECT_FALSE(r.hit);
  r = pool.Touch(1, false);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.logical_reads(), 2u);
}

TEST(BufferPoolTest, LruEvictionOrder) {
  BufferPool pool(2);
  pool.Touch(1, false);
  pool.Touch(2, false);
  const TouchResult r = pool.Touch(3, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_page, 1u);
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(2));
}

TEST(BufferPoolTest, TouchPromotes) {
  BufferPool pool(2);
  pool.Touch(1, false);
  pool.Touch(2, false);
  pool.Touch(1, false);  // promote 1
  const TouchResult r = pool.Touch(3, false);
  EXPECT_EQ(r.evicted_page, 2u);
  EXPECT_TRUE(pool.Contains(1));
}

TEST(BufferPoolTest, DirtyTracking) {
  BufferPool pool(10);
  TouchResult r = pool.Touch(1, true);
  EXPECT_TRUE(r.newly_dirty);
  EXPECT_TRUE(pool.IsDirty(1));
  EXPECT_EQ(pool.dirty_count(), 1u);
  // Second dirty touch coalesces: not newly dirty.
  r = pool.Touch(1, true);
  EXPECT_FALSE(r.newly_dirty);
  EXPECT_EQ(pool.dirty_count(), 1u);
}

TEST(BufferPoolTest, CleanTouchKeepsDirtyBit) {
  BufferPool pool(10);
  pool.Touch(1, true);
  pool.Touch(1, false);
  EXPECT_TRUE(pool.IsDirty(1));
}

TEST(BufferPoolTest, MarkClean) {
  BufferPool pool(10);
  pool.Touch(1, true);
  pool.MarkClean(1);
  EXPECT_FALSE(pool.IsDirty(1));
  EXPECT_EQ(pool.dirty_count(), 0u);
  EXPECT_TRUE(pool.Contains(1));
  // Re-dirty is newly dirty again.
  EXPECT_TRUE(pool.Touch(1, true).newly_dirty);
}

TEST(BufferPoolTest, DirtyEvictionFlagged) {
  BufferPool pool(1);
  pool.Touch(1, true);
  const TouchResult r = pool.Touch(2, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(pool.dirty_evictions(), 1u);
  EXPECT_EQ(pool.dirty_count(), 0u);
}

TEST(BufferPoolTest, DirtyPagesSortedAscending) {
  BufferPool pool(10);
  for (PageId p : {7, 3, 9, 1}) pool.Touch(p, true);
  PageId prev = 0;
  for (PageId p : pool.dirty_pages()) {
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_EQ(pool.dirty_count(), 4u);
}

TEST(BufferPoolTest, EvictRemovesDirtyEntry) {
  BufferPool pool(10);
  pool.Touch(5, true);
  pool.Evict(5);
  EXPECT_FALSE(pool.Contains(5));
  EXPECT_EQ(pool.dirty_count(), 0u);
}

TEST(BufferPoolTest, CapacityRespected) {
  BufferPool pool(100);
  for (PageId p = 0; p < 1000; ++p) pool.Touch(p, false);
  EXPECT_EQ(pool.size(), 100u);
  EXPECT_EQ(pool.evictions(), 900u);
}

TEST(BufferPoolTest, MissRatio) {
  BufferPool pool(10);
  pool.Touch(1, false);
  pool.Touch(1, false);
  pool.Touch(1, false);
  pool.Touch(2, false);
  EXPECT_DOUBLE_EQ(pool.MissRatio(), 0.5);
}

TEST(BufferPoolTest, DirtyFraction) {
  BufferPool pool(4);
  pool.Touch(1, true);
  pool.Touch(2, false);
  EXPECT_DOUBLE_EQ(pool.DirtyFraction(), 0.25);
}

TEST(BufferPoolTest, WorkingSetStaysResidentUnderScans) {
  // Hot pages touched every round survive a cold scan smaller than the
  // slack; this is the property buffer pool gauging relies on.
  BufferPool pool(100);
  for (PageId p = 0; p < 50; ++p) pool.Touch(p, false);  // hot set
  for (int round = 0; round < 10; ++round) {
    for (PageId p = 0; p < 50; ++p) pool.Touch(p, false);
    // 40 cold pages per round fit in the slack.
    for (PageId p = 1000 + round * 40; p < 1040 + round * 40; ++p) {
      pool.Touch(p, false);
    }
  }
  for (PageId p = 0; p < 50; ++p) EXPECT_TRUE(pool.Contains(p));
}

}  // namespace
}  // namespace kairos::db
