// util::UnionFind: smallest-member representatives, order-independent
// grouping — the contract the shard builder's anti-affinity grouping
// depends on for determinism.
#include "util/union_find.h"

#include <gtest/gtest.h>

namespace kairos {
namespace {

TEST(UnionFindTest, SingletonsAreTheirOwnRepresentatives) {
  util::UnionFind uf(4);
  EXPECT_EQ(uf.size(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(uf.Find(i), i);
  }
  EXPECT_FALSE(uf.Connected(0, 3));
}

TEST(UnionFindTest, SmallestMemberWinsEveryUnion) {
  util::UnionFind uf(6);
  uf.Union(4, 5);
  EXPECT_EQ(uf.Find(5), 4);
  uf.Union(5, 2);  // merging via a non-root member still works
  EXPECT_EQ(uf.Find(4), 2);
  EXPECT_EQ(uf.Find(5), 2);
  uf.Union(2, 2);  // self-union is a no-op
  EXPECT_EQ(uf.Find(2), 2);
  EXPECT_TRUE(uf.Connected(4, 2));
  EXPECT_FALSE(uf.Connected(4, 0));
}

TEST(UnionFindTest, GroupingIsIndependentOfPairOrder) {
  // The same pairs in two different arrival orders must produce identical
  // representatives for every element.
  const std::pair<int, int> pairs[] = {{1, 3}, {5, 7}, {3, 5}, {0, 6}};
  util::UnionFind forward(8), backward(8);
  for (const auto& [a, b] : pairs) forward.Union(a, b);
  for (int i = 3; i >= 0; --i) backward.Union(pairs[i].first, pairs[i].second);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(forward.Find(i), backward.Find(i)) << "element " << i;
  }
  // {1,3,5,7} collapsed to smallest member 1; {0,6} to 0; 2 and 4 alone.
  EXPECT_EQ(forward.Find(7), 1);
  EXPECT_EQ(forward.Find(6), 0);
  EXPECT_EQ(forward.Find(2), 2);
  EXPECT_EQ(forward.Find(4), 4);
}

}  // namespace
}  // namespace kairos
