#include "online/controller.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/evaluator.h"
#include "online/drift.h"
#include "online/estimators.h"
#include "online/migration.h"
#include "online/telemetry.h"
#include "sim/capacity.h"
#include "solve/solver.h"
#include "trace/scenario.h"
#include "util/rng.h"
#include "util/units.h"

namespace kairos::online {
namespace {

// ---------------------------------------------------------------------------
// Streaming estimators
// ---------------------------------------------------------------------------

TEST(EstimatorsTest, P2QuantileApproximatesExactP95) {
  util::Rng rng(7);
  std::vector<double> samples;
  P2Quantile p2(0.95);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.Exponential(10.0);
    samples.push_back(x);
    p2.Add(x);
  }
  std::sort(samples.begin(), samples.end());
  const double exact = samples[static_cast<size_t>(0.95 * samples.size())];
  EXPECT_NEAR(p2.Estimate(), exact, 0.10 * exact);
}

TEST(EstimatorsTest, P2QuantileExactForFewSamples) {
  P2Quantile p2(0.5);
  p2.Add(3.0);
  p2.Add(1.0);
  p2.Add(2.0);
  EXPECT_DOUBLE_EQ(p2.Estimate(), 2.0);
}

TEST(EstimatorsTest, RollingWindowKeepsLastW) {
  RollingWindow window(3, 1.0);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) window.Push(v);
  EXPECT_TRUE(window.full());
  EXPECT_DOUBLE_EQ(window.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(window.Max(), 5.0);
  const util::TimeSeries series = window.ToSeries();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.at(0), 3.0);
  EXPECT_DOUBLE_EQ(series.at(2), 5.0);
}

TEST(EstimatorsTest, DecayingMaxFollowsAndForgets) {
  DecayingMax ws(0.9);
  ws.Push(100.0);
  EXPECT_DOUBLE_EQ(ws.value(), 100.0);
  ws.Push(10.0);  // decays rather than drops
  EXPECT_DOUBLE_EQ(ws.value(), 90.0);
  ws.Push(200.0);  // rises immediately
  EXPECT_DOUBLE_EQ(ws.value(), 200.0);
}

TEST(EstimatorsTest, StreamingProfileBuilderWindowsAndStats) {
  StreamingProfileBuilder builder(2, 4, 300.0);
  for (int t = 0; t < 10; ++t) {
    builder.Ingest({{1.0 + t, 8e9, 5.0, 6e9}, {0.5, 4e9, 1.0, 3e9}});
  }
  const monitor::WorkloadProfile p0 = builder.Profile(0);
  ASSERT_EQ(p0.cpu_cores.size(), 4u);  // last W samples only
  EXPECT_DOUBLE_EQ(p0.cpu_cores.at(3), 10.0);
  EXPECT_GT(p0.working_set_bytes, 0);
  const monitor::ProfileStats stats = builder.Stats(0);
  EXPECT_DOUBLE_EQ(stats.peak_cpu_cores, 10.0);
  EXPECT_DOUBLE_EQ(stats.mean_cpu_cores, (7.0 + 8.0 + 9.0 + 10.0) / 4.0);
  EXPECT_GT(builder.LifetimeP95Cpu(0), builder.Stats(1).p95_cpu_cores);
}

// ---------------------------------------------------------------------------
// Telemetry feeds
// ---------------------------------------------------------------------------

TEST(TelemetryTest, ReplayFeedStepsThroughProfiles) {
  monitor::WorkloadProfile p;
  p.name = "a";
  p.cpu_cores = util::TimeSeries(300, {1.0, 2.0, 3.0});
  p.ram_bytes = util::TimeSeries(300, {10.0, 20.0, 30.0});
  p.update_rows_per_sec = util::TimeSeries(300, {0.0, 0.0, 0.0});
  p.working_set_bytes = 5.0;

  ReplayFeed feed = ReplayFeed::FromProfiles({p});
  EXPECT_EQ(feed.num_workloads(), 1);
  EXPECT_EQ(feed.workload_name(0), "a");
  EXPECT_EQ(feed.steps_total(), 3);

  std::vector<TelemetrySample> samples;
  ASSERT_TRUE(feed.Next(&samples));
  EXPECT_DOUBLE_EQ(samples[0].cpu_cores, 1.0);
  ASSERT_TRUE(feed.Next(&samples));
  ASSERT_TRUE(feed.Next(&samples));
  EXPECT_DOUBLE_EQ(samples[0].ram_bytes, 30.0);
  EXPECT_FALSE(feed.Next(&samples));
}

TEST(TelemetryTest, ReplayFeedFromDriverRunApportionsCpuByTps) {
  workload::RunResult run;
  workload::WorkloadRunStats a, b;
  a.name = "a";
  a.tps = util::TimeSeries(1.0, {30.0, 10.0});
  a.update_rows_per_sec = util::TimeSeries(1.0, {3.0, 1.0});
  b.name = "b";
  b.tps = util::TimeSeries(1.0, {10.0, 30.0});
  b.update_rows_per_sec = util::TimeSeries(1.0, {1.0, 3.0});
  run.workloads = {a, b};
  run.server.cpu_cores = util::TimeSeries(1.0, {4.0, 8.0});

  ReplayFeed feed = ReplayFeed::FromRun(run, {1e9, 2e9});
  std::vector<TelemetrySample> samples;
  ASSERT_TRUE(feed.Next(&samples));
  EXPECT_DOUBLE_EQ(samples[0].cpu_cores, 3.0);  // 4 cores * 30/40
  EXPECT_DOUBLE_EQ(samples[1].cpu_cores, 1.0);
  EXPECT_DOUBLE_EQ(samples[1].ram_bytes, 2e9);
  ASSERT_TRUE(feed.Next(&samples));
  EXPECT_DOUBLE_EQ(samples[0].cpu_cores, 2.0);  // 8 cores * 10/40
  EXPECT_FALSE(feed.Next(&samples));
}

// ---------------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------------

monitor::ProfileStats StatsWithCpu(double p95_cpu) {
  monitor::ProfileStats s;
  s.p95_cpu_cores = p95_cpu;
  s.p95_ram_bytes = 8e9;
  return s;
}

TEST(DriftTest, FiresOnRelativeDeviationAfterCooldown) {
  DriftConfig config;
  config.cooldown_steps = 4;
  DriftDetector detector(config);
  detector.Rebase(0, {StatsWithCpu(1.0)});

  // Within cooldown: even big drift is ignored.
  EXPECT_FALSE(detector.Check(2, {StatsWithCpu(3.0)}, false).resolve);
  // After cooldown: small deviation no, large deviation yes.
  EXPECT_FALSE(detector.Check(10, {StatsWithCpu(1.1)}, false).resolve);
  const DriftDecision d = detector.Check(10, {StatsWithCpu(2.0)}, false);
  EXPECT_TRUE(d.resolve);
  EXPECT_EQ(d.reason, "drift:w0");
}

TEST(DriftTest, AbsoluteFloorSuppressesIdleFlapping) {
  DriftConfig config;
  config.cooldown_steps = 0;
  DriftDetector detector(config);
  // 0.01 -> 0.05 cores is 5x relative but far below the absolute floor.
  detector.Rebase(0, {StatsWithCpu(0.01)});
  EXPECT_FALSE(detector.Check(10, {StatsWithCpu(0.05)}, false).resolve);
}

TEST(DriftTest, ViolationForecastBypassesCooldown) {
  DriftConfig config;
  config.cooldown_steps = 100;
  DriftDetector detector(config);
  detector.Rebase(0, {StatsWithCpu(1.0)});
  const DriftDecision d = detector.Check(1, {StatsWithCpu(1.0)}, true);
  EXPECT_TRUE(d.resolve);
  EXPECT_EQ(d.reason, "violation-forecast");
}

// ---------------------------------------------------------------------------
// Migration planning
// ---------------------------------------------------------------------------

monitor::WorkloadProfile BigRamProfile(const std::string& name, double ram_gb) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, 4, 0.5);
  p.ram_bytes = util::TimeSeries::Constant(
      300, 4, ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, 4, 0.0);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

TEST(MigrationTest, SwapDeadlockBouncesThroughSpareServer) {
  // Two 50 GB workloads must swap servers; 96 GB machines cannot hold both
  // at once, so the planner must detour one through the spare third server.
  core::ConsolidationProblem prob;
  prob.workloads = {BigRamProfile("a", 50.0), BigRamProfile("b", 50.0)};
  prob.max_servers = 3;

  const MigrationPlan plan = MigrationPlanner().Plan(prob, {0, 1}, {1, 0});
  EXPECT_TRUE(plan.safe);
  EXPECT_EQ(plan.total_moves(), 3);  // bounce + two direct moves
  bool saw_bounce = false;
  for (const auto& stage : plan.stages) {
    for (const auto& m : stage.moves) saw_bounce = saw_bounce || m.bounce;
  }
  EXPECT_TRUE(saw_bounce);

  // Replaying the moves in order never exceeds capacity and lands on the
  // target placement.
  sim::CapacityLedger ledger(prob.fleet, 3, 4, prob.cpu_headroom,
                             prob.ram_headroom,
                             static_cast<double>(prob.instance_ram_overhead_bytes));
  std::vector<int> state = {0, 1};
  for (int s = 0; s < 2; ++s) {
    ledger.Add(state[s], prob.workloads[s].cpu_cores.values(),
               prob.workloads[s].ram_bytes.values());
  }
  for (const auto& stage : plan.stages) {
    for (const auto& m : stage.moves) {
      EXPECT_EQ(m.from, state[m.slot]);
      EXPECT_TRUE(ledger.CanAdd(m.to, prob.workloads[m.slot].cpu_cores.values(),
                                prob.workloads[m.slot].ram_bytes.values()));
      ledger.Add(m.to, prob.workloads[m.slot].cpu_cores.values(),
                 prob.workloads[m.slot].ram_bytes.values());
      ledger.Remove(m.from, prob.workloads[m.slot].cpu_cores.values(),
                    prob.workloads[m.slot].ram_bytes.values());
      state[m.slot] = m.to;
    }
  }
  EXPECT_EQ(state, (std::vector<int>{1, 0}));
}

TEST(MigrationTest, ForcedStageFlaggedUnsafeWithoutSpareRoom) {
  // Same swap with only the two servers: no bounce target exists, so the
  // moves are forced and the plan flagged unsafe.
  core::ConsolidationProblem prob;
  prob.workloads = {BigRamProfile("a", 50.0), BigRamProfile("b", 50.0)};
  prob.max_servers = 2;
  const MigrationPlan plan = MigrationPlanner().Plan(prob, {0, 1}, {1, 0});
  EXPECT_FALSE(plan.safe);
  EXPECT_EQ(plan.total_moves(), 2);
}

TEST(MigrationTest, ReplicaSwapNeverCoLocatesAntiAffineSlots) {
  // Two replicas of one workload swap servers. Capacity allows a direct
  // move, but landing on the sibling's server — even transiently — would
  // break replica anti-affinity, so the planner must detour via server 2.
  core::ConsolidationProblem prob;
  prob.workloads = {BigRamProfile("r", 4.0)};
  prob.workloads[0].replicas = 2;
  prob.max_servers = 3;

  const MigrationPlan plan = MigrationPlanner().Plan(prob, {0, 1}, {1, 0});
  EXPECT_TRUE(plan.safe);
  std::vector<int> state = {0, 1};
  for (const auto& stage : plan.stages) {
    for (const auto& m : stage.moves) {
      state[m.slot] = m.to;
      EXPECT_NE(state[0], state[1]) << "replicas co-located mid-migration";
    }
  }
  EXPECT_EQ(state, (std::vector<int>{1, 0}));
}

TEST(MigrationTest, IdentityPlacementNeedsNoMoves) {
  core::ConsolidationProblem prob;
  prob.workloads = {BigRamProfile("a", 10.0), BigRamProfile("b", 10.0)};
  prob.max_servers = 2;
  const MigrationPlan plan = MigrationPlanner().Plan(prob, {0, 1}, {0, 1});
  EXPECT_TRUE(plan.safe);
  EXPECT_EQ(plan.total_moves(), 0);
  EXPECT_TRUE(plan.stages.empty());
}

// ---------------------------------------------------------------------------
// Warm-started solving
// ---------------------------------------------------------------------------

TEST(WarmStartTest, ValidSeedAssignmentChecksShapeAndRange) {
  core::ConsolidationProblem prob;
  prob.workloads = {BigRamProfile("a", 4.0), BigRamProfile("b", 4.0)};
  EXPECT_TRUE(solve::ValidSeedAssignment(prob, 2, {0, 1}));
  EXPECT_FALSE(solve::ValidSeedAssignment(prob, 2, {0}));       // wrong size
  EXPECT_FALSE(solve::ValidSeedAssignment(prob, 2, {0, 2}));    // out of cap
  EXPECT_FALSE(solve::ValidSeedAssignment(prob, 2, {-1, 0}));
  EXPECT_FALSE(solve::ValidSeedAssignment(prob, 2, {}));
}

TEST(WarmStartTest, StartAssignmentPrefersCheaperIncumbent) {
  // With a strong migration penalty toward the incumbent spread placement,
  // the warm seed beats the greedy one-server packing.
  core::ConsolidationProblem prob;
  for (int i = 0; i < 4; ++i) prob.workloads.push_back(BigRamProfile("w", 4.0));
  prob.max_servers = 2;
  prob.current_assignment = {1, 1, 0, 0};
  // Greedy packs everything onto server 0, moving slots 0 and 1 off their
  // incumbent: dearer than the extra server the incumbent keeps.
  prob.migration_cost_weight = 600.0;

  solve::SolveBudget budget;
  budget.seed_assignment = {1, 1, 0, 0};
  const core::Assignment start = solve::StartAssignment(prob, 2, budget);
  EXPECT_EQ(start.server_of_slot, budget.seed_assignment);

  // An invalid seed falls back to greedy regardless.
  budget.seed_assignment = {5, 5, 5, 5};
  const core::Assignment fallback = solve::StartAssignment(prob, 2, budget);
  for (int s : fallback.server_of_slot) EXPECT_LT(s, 2);
}

TEST(WarmStartTest, PolishSolverRegisteredAndEnumerable) {
  const std::vector<std::string> names = solve::RegisteredSolverNames();
  for (const char* expected :
       {"anneal", "engine", "greedy", "greedy-multi", "polish", "tabu"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  auto polish = solve::SolverRegistry::Global().Create("polish", 3);
  ASSERT_NE(polish, nullptr);
  EXPECT_EQ(polish->name(), "polish");
}

// ---------------------------------------------------------------------------
// The controller end to end
// ---------------------------------------------------------------------------

trace::ScenarioTelemetry DiurnalScenario() {
  trace::ScenarioConfig config;
  config.steps = 64;
  config.seed = 11;
  return trace::MakeScenario(trace::ScenarioKind::kDiurnal, config);
}

ControllerConfig MakeControllerConfig(const trace::ScenarioTelemetry& scenario,
                                      bool migration_aware) {
  ControllerConfig config;
  config.base.workloads = scenario.profiles;
  config.num_servers = 4;
  config.migration_aware = migration_aware;
  config.seed = 11;
  return config;
}

std::string RunScenarioHistory(const trace::ScenarioTelemetry& scenario,
                               ControllerConfig config) {
  ConsolidationController controller(config);
  ReplayFeed feed = ReplayFeed::FromProfiles(scenario.profiles);
  controller.RunToEnd(&feed);
  return controller.RenderHistory();
}

TEST(ControllerTest, ByteIdenticalHistoryAcrossRunsAndThreadCounts) {
  const trace::ScenarioTelemetry scenario = DiurnalScenario();
  ControllerConfig config = MakeControllerConfig(scenario, true);

  config.threads = 1;
  const std::string one_thread = RunScenarioHistory(scenario, config);
  config.threads = 4;
  const std::string four_threads = RunScenarioHistory(scenario, config);
  const std::string four_again = RunScenarioHistory(scenario, config);

  EXPECT_FALSE(one_thread.empty());
  EXPECT_GT(std::count(one_thread.begin(), one_thread.end(), '\n'), 2);
  EXPECT_EQ(one_thread, four_threads);
  EXPECT_EQ(four_threads, four_again);
}

TEST(ControllerTest, MigrationAwareUsesFewerMovesThanColdOnDiurnal) {
  const trace::ScenarioTelemetry scenario = DiurnalScenario();

  ConsolidationController aware(MakeControllerConfig(scenario, true));
  ConsolidationController cold(MakeControllerConfig(scenario, false));
  ReplayFeed aware_feed = ReplayFeed::FromProfiles(scenario.profiles);
  ReplayFeed cold_feed = ReplayFeed::FromProfiles(scenario.profiles);
  aware.RunToEnd(&aware_feed);
  cold.RunToEnd(&cold_feed);

  // Measurably fewer migrations: at least 2x fewer.
  EXPECT_GT(cold.total_moves(), 0);
  EXPECT_LE(2 * aware.total_moves(), cold.total_moves())
      << "aware " << aware.total_moves() << " vs cold " << cold.total_moves();

  // At an equal-or-better final placement. The objective counts kServerCost
  // (1000) per server plus a per-server balance tail in [1, e]; "equal" is
  // asserted at sub-balance-tail granularity: the same consolidation level,
  // and an objective within one balance unit (0.05% here) of cold's.
  EXPECT_EQ(core::Assignment{aware.assignment()}.ServersUsed(),
            core::Assignment{cold.assignment()}.ServersUsed());
  const double aware_objective = aware.CurrentServiceObjective();
  const double cold_objective = cold.CurrentServiceObjective();
  EXPECT_LE(aware_objective, cold_objective + 1.0);

  // Every staged migration respected the spill check.
  for (const auto& e : aware.history()) EXPECT_TRUE(e.migration_safe);
}

TEST(ControllerTest, ConstraintsSurviveWarmStartedResolves) {
  trace::ScenarioTelemetry scenario = DiurnalScenario();
  ControllerConfig config = MakeControllerConfig(scenario, true);
  // w0/w1 must never share a server; w2 is pinned to server 0; w3 runs two
  // replicas on distinct servers.
  config.base.anti_affinity = {{0, 1}};
  config.base.workloads[2].pinned_server = 0;
  config.base.workloads[3].replicas = 2;

  ConsolidationController controller(config);
  ReplayFeed feed = ReplayFeed::FromProfiles(scenario.profiles);
  controller.RunToEnd(&feed);

  ASSERT_GT(controller.history().size(), 2u);
  // Slot layout: w0->0, w1->1, w2->2, w3->{3,4}, w4->5, ...
  for (const auto& e : controller.history()) {
    ASSERT_EQ(e.plan.size(), scenario.profiles.size() + 1);
    EXPECT_NE(e.plan[0], e.plan[1]) << "anti-affinity at step " << e.step;
    EXPECT_EQ(e.plan[2], 0) << "pin at step " << e.step;
    EXPECT_NE(e.plan[3], e.plan[4]) << "replicas at step " << e.step;
  }
}

TEST(ControllerTest, NodeDrainEvacuatesAndShrinksFleet) {
  trace::ScenarioConfig scenario_config;
  scenario_config.steps = 48;
  scenario_config.seed = 11;
  const trace::ScenarioTelemetry scenario =
      trace::MakeScenario(trace::ScenarioKind::kNodeDrain, scenario_config);

  ConsolidationController controller(MakeControllerConfig(scenario, true));
  ReplayFeed feed = ReplayFeed::FromProfiles(scenario.profiles);
  std::vector<TelemetrySample> samples;
  int step = 0;
  while (feed.Next(&samples)) {
    if (step == scenario.drain_step) controller.DrainHighestServer();
    controller.Ingest(samples);
    ++step;
  }

  EXPECT_EQ(controller.active_servers(), 3);
  bool drained = false;
  for (const auto& e : controller.history()) {
    if (e.reason == "node-drain") {
      drained = true;
      EXPECT_GT(e.moves, 0);  // the drained server's slots were evacuated
    }
  }
  EXPECT_TRUE(drained);
  for (int s : controller.assignment()) EXPECT_LT(s, 3);
}

TEST(ControllerTest, DrainRefusedWhenPinTargetsAffectedServer) {
  trace::ScenarioConfig scenario_config;
  scenario_config.steps = 16;
  scenario_config.seed = 11;
  const trace::ScenarioTelemetry scenario =
      trace::MakeScenario(trace::ScenarioKind::kStable, scenario_config);

  ControllerConfig config = MakeControllerConfig(scenario, true);
  config.base.workloads[0].pinned_server = 0;  // stable packs onto server 0
  ConsolidationController controller(config);
  ReplayFeed feed = ReplayFeed::FromProfiles(scenario.profiles);
  controller.RunToEnd(&feed);
  ASSERT_FALSE(controller.assignment().empty());

  EXPECT_FALSE(controller.DrainHighestServer());
  EXPECT_EQ(controller.active_servers(), 4);  // fleet unchanged
  EXPECT_NE(controller.last_drain_refusal().find("pinned"), std::string::npos)
      << controller.last_drain_refusal();
}

TEST(ControllerTest, DrainRefusalPointsAtDrainClassOnHeterogeneousFleet) {
  trace::ScenarioConfig scenario_config;
  scenario_config.steps = 8;
  scenario_config.seed = 11;
  const trace::ScenarioTelemetry scenario =
      trace::MakeScenario(trace::ScenarioKind::kStable, scenario_config);

  ControllerConfig config = MakeControllerConfig(scenario, true);
  config.base.fleet = sim::FleetSpec();
  config.base.fleet.AddClass(sim::MachineSpec::Server1(), 2, 1.0)
      .AddClass(sim::MachineSpec::ConsolidationTarget(), 2, 1.5);
  ConsolidationController controller(config);

  EXPECT_FALSE(controller.DrainHighestServer());
  // The refusal explains itself: it names the class mix and the operation
  // that *does* apply to a mixed-generation fleet.
  const std::string& why = controller.last_drain_refusal();
  EXPECT_NE(why.find("not uniform"), std::string::npos) << why;
  EXPECT_NE(why.find("DrainClass"), std::string::npos) << why;
  EXPECT_NE(why.find(config.base.fleet.Render()), std::string::npos) << why;
  EXPECT_EQ(controller.active_servers(), 4);  // fleet unchanged
}

TEST(ControllerTest, ShardRepairGateKeepsHistoryDeterministic) {
  const trace::ScenarioTelemetry scenario = DiurnalScenario();
  ControllerConfig config = MakeControllerConfig(scenario, true);
  config.shard_repair = true;
  config.shard.num_shards = 2;

  config.threads = 1;
  const std::string one_thread = RunScenarioHistory(scenario, config);
  config.threads = 4;
  const std::string four_threads = RunScenarioHistory(scenario, config);
  const std::string four_again = RunScenarioHistory(scenario, config);

  EXPECT_FALSE(one_thread.empty());
  EXPECT_EQ(one_thread, four_threads);
  EXPECT_EQ(four_threads, four_again);
}

TEST(ControllerTest, StableTrafficNeverResolvesAfterBootstrap) {
  trace::ScenarioConfig scenario_config;
  scenario_config.steps = 48;
  scenario_config.seed = 11;
  const trace::ScenarioTelemetry scenario =
      trace::MakeScenario(trace::ScenarioKind::kStable, scenario_config);

  ConsolidationController controller(MakeControllerConfig(scenario, true));
  ReplayFeed feed = ReplayFeed::FromProfiles(scenario.profiles);
  controller.RunToEnd(&feed);

  ASSERT_EQ(controller.history().size(), 1u);
  EXPECT_EQ(controller.history()[0].reason, "bootstrap");
  EXPECT_EQ(controller.total_moves(), 0);
}

}  // namespace
}  // namespace kairos::online
