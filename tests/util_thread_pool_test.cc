#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kairos::util {
namespace {

TEST(ThreadPoolTest, WorkerCountDefaultsAndClamps) {
  EXPECT_GE(ThreadPool(0).num_workers(), 1);
  EXPECT_GE(ThreadPool(-3).num_workers(), 1);
  EXPECT_EQ(ThreadPool(1).num_workers(), 1);
  EXPECT_EQ(ThreadPool(4).num_workers(), 4);
}

TEST(ThreadPoolTest, EveryTaskRunsExactlyOnceUnderContention) {
  constexpr int kTasks = 1000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kTasks, [&](int i) {
    // Uneven task weights force steals on multi-core hosts.
    volatile double sink = 0;
    for (int k = 0; k < (i % 7) * 50; ++k) sink += k * 0.5;
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, IndexMergedResultsMatchSerialAtAnyWorkerCount) {
  constexpr int kTasks = 257;
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<long> out(kTasks, 0);
    pool.ParallelFor(kTasks, [&](int i) { out[i] = 31L * i * i + 7 * i; });
    return out;
  };
  const std::vector<long> serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPoolTest, ReusedAcrossGenerationsWithoutStaleTasks) {
  // Back-to-back ParallelFor calls on one pool: a straggler from call k
  // must never run a task against call k+1's closure.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    const int n = 50 + round;
    pool.ParallelFor(n, [&](int i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, EmptyAndNegativeRangesAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](int) { calls.fetch_add(1); });
  pool.ParallelFor(-5, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleWorkerRunsSeriallyOnCallerWithoutSteals) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(16, [&](int i) { order.push_back(i); });
  // Worker 0 owns every task and pops FIFO: strict submission order.
  std::vector<int> expect(16);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
  EXPECT_EQ(pool.steal_count(), 0u);
}

}  // namespace
}  // namespace kairos::util
