#include "solve/portfolio.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/engine.h"
#include "core/greedy.h"
#include "solve/adapters.h"
#include "solve/annealing.h"
#include "solve/solver.h"
#include "solve/tabu.h"
#include "util/units.h"

namespace kairos::solve {
namespace {

monitor::WorkloadProfile MakeProfile(const std::string& name, double cpu_cores,
                                     double ram_gb, int samples = 6) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, samples, cpu_cores);
  p.ram_bytes = util::TimeSeries::Constant(300, samples,
                                           ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, samples, 0.0);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

core::ConsolidationProblem SmallProblem(int n = 6, double cpu = 0.5,
                                        double ram_gb = 30.0) {
  core::ConsolidationProblem prob;
  for (int i = 0; i < n; ++i) {
    prob.workloads.push_back(MakeProfile("w" + std::to_string(i), cpu, ram_gb));
  }
  return prob;
}

// A heterogeneous problem where greedy packing leaves room to improve.
core::ConsolidationProblem MixedProblem() {
  core::ConsolidationProblem prob;
  for (int i = 0; i < 4; ++i) {
    prob.workloads.push_back(MakeProfile("big" + std::to_string(i), 3.0, 30.0));
  }
  for (int i = 0; i < 8; ++i) {
    prob.workloads.push_back(MakeProfile("small" + std::to_string(i), 0.3, 6.0));
  }
  return prob;
}

TEST(SolverRegistryTest, BuiltinsRegistered) {
  auto& registry = SolverRegistry::Global();
  for (const char* name : {"greedy", "greedy-multi", "engine", "anneal", "tabu"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    auto solver = registry.Create(name, 7);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->name(), name);
  }
}

TEST(SolverRegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(SolverRegistry::Global().Create("no-such-solver", 1), nullptr);
  EXPECT_FALSE(SolverRegistry::Global().Contains("no-such-solver"));
}

TEST(SolverRegistryTest, CustomRegistrationAndDuplicateRejection) {
  auto& registry = SolverRegistry::Global();
  const std::string name = "test-custom-greedy";
  if (!registry.Contains(name)) {
    EXPECT_TRUE(registry.Register(name, [](uint64_t) {
      return std::make_unique<GreedyBaselineSolver>();
    }));
  }
  // Second registration under the same key is rejected.
  EXPECT_FALSE(registry.Register(name, [](uint64_t) {
    return std::make_unique<GreedyMultiSolver>();
  }));
  EXPECT_NE(registry.Create(name, 1), nullptr);
}

TEST(SolveAdaptersTest, GreedySolverMatchesGreedyBaseline) {
  const auto prob = SmallProblem();
  GreedyBaselineSolver solver;
  const auto plan = solver.Solve(prob, SolveBudget{}, nullptr);
  const auto direct = core::GreedyBaseline(prob, HardCap(prob));
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, direct.servers_used);
}

TEST(SolveMetaheuristicTest, AnnealNeverWorseThanGreedySeed) {
  const auto prob = MixedProblem();
  const int cap = HardCap(prob);
  bool clean = false;
  const auto seed = core::GreedyMultiResource(prob, cap, &clean);
  core::Evaluator ev(prob, cap);
  const double seed_cost = ev.Evaluate(seed.server_of_slot);

  for (uint64_t s : {1ULL, 2ULL, 42ULL}) {
    AnnealingSolver sa(s);
    const auto plan = sa.Solve(prob, SolveBudget{}, nullptr);
    EXPECT_LE(plan.objective, seed_cost) << "seed " << s;
  }
}

TEST(SolveMetaheuristicTest, TabuNeverWorseThanGreedySeed) {
  const auto prob = MixedProblem();
  const int cap = HardCap(prob);
  bool clean = false;
  const auto seed = core::GreedyMultiResource(prob, cap, &clean);
  core::Evaluator ev(prob, cap);
  const double seed_cost = ev.Evaluate(seed.server_of_slot);

  for (uint64_t s : {1ULL, 2ULL, 42ULL}) {
    TabuSolver tabu(s);
    const auto plan = tabu.Solve(prob, SolveBudget{}, nullptr);
    EXPECT_LE(plan.objective, seed_cost) << "seed " << s;
  }
}

TEST(SolveMetaheuristicTest, MetaheuristicsFindFeasiblePacking) {
  // 6 x 30 GB: three fit per 96 GB server -> 2 servers.
  const auto prob = SmallProblem();
  SolveBudget budget;
  AnnealingSolver sa(3);
  const auto sa_plan = sa.Solve(prob, budget, nullptr);
  EXPECT_TRUE(sa_plan.feasible);
  EXPECT_LE(sa_plan.servers_used, 3);

  TabuSolver tabu(3);
  const auto tabu_plan = tabu.Solve(prob, budget, nullptr);
  EXPECT_TRUE(tabu_plan.feasible);
  EXPECT_EQ(tabu_plan.servers_used, 2);
}

TEST(SharedIncumbentTest, TracksBestAndCounts) {
  SharedIncumbent incumbent;
  EXPECT_FALSE(incumbent.Best().valid);
  EXPECT_TRUE(incumbent.Offer({0, 0}, 10.0, false, "a"));
  // Feasible beats infeasible even at higher objective.
  EXPECT_TRUE(incumbent.Offer({0, 1}, 20.0, true, "b"));
  // Worse feasible does not improve.
  EXPECT_FALSE(incumbent.Offer({1, 1}, 25.0, true, "c"));
  EXPECT_TRUE(incumbent.Offer({1, 0}, 5.0, true, "d"));
  const auto best = incumbent.Best();
  EXPECT_TRUE(best.valid);
  EXPECT_EQ(best.source, "d");
  EXPECT_DOUBLE_EQ(best.objective, 5.0);
  EXPECT_EQ(incumbent.offers(), 4);
  EXPECT_EQ(incumbent.improvements(), 3);
  EXPECT_FALSE(incumbent.ShouldStop());
}

TEST(SharedIncumbentTest, EarlyStopFiresAtTarget) {
  SharedIncumbent incumbent(/*target_objective=*/100.0);
  incumbent.Offer({0}, 150.0, true, "a");
  EXPECT_FALSE(incumbent.ShouldStop());
  incumbent.Offer({0}, 90.0, false, "a");  // infeasible: no stop
  EXPECT_FALSE(incumbent.ShouldStop());
  incumbent.Offer({0}, 90.0, true, "a");
  EXPECT_TRUE(incumbent.ShouldStop());
}

TEST(SharedIncumbentTest, PortfolioEarlyStopsOnTarget) {
  const auto prob = SmallProblem();
  // Any feasible 2-server plan has objective just above 2 * kServerCost;
  // a generous target fires as soon as one is found.
  PortfolioOptions options;
  options.target_objective = 3.0 * core::kServerCost;
  options.budget.max_iterations = 200000000;  // would run long without the stop
  PortfolioRunner runner(options);
  const auto result =
      runner.Run(prob, {{"greedy", 1}, {"anneal", 2}, {"tabu", 3}});
  EXPECT_TRUE(result.early_stopped);
  EXPECT_TRUE(result.best.feasible);
  EXPECT_LE(result.best.objective, options.target_objective);
}

TEST(PortfolioTest, BeatsOrMatchesSingleEngine) {
  const auto prob = MixedProblem();
  core::EngineOptions engine_options;
  const auto engine_plan =
      core::ConsolidationEngine(prob, engine_options).Solve();

  PortfolioRunner runner;
  const auto result = runner.Run(prob, PortfolioRunner::DefaultSpecs(1));
  ASSERT_GE(result.winner_index, 0);
  EXPECT_TRUE(result.best.feasible);
  EXPECT_LE(result.best.objective, engine_plan.objective);
  EXPECT_EQ(result.members.size(), 4u);
}

TEST(PortfolioTest, DeterministicForFixedSeeds) {
  const auto prob = MixedProblem();
  const auto specs = PortfolioRunner::DefaultSpecs(7);

  PortfolioOptions two_threads;
  two_threads.threads = 2;
  PortfolioOptions four_threads;
  four_threads.threads = 4;

  const auto r1 = PortfolioRunner(two_threads).Run(prob, specs);
  const auto r2 = PortfolioRunner(four_threads).Run(prob, specs);
  const auto r3 = PortfolioRunner(two_threads).Run(prob, specs);

  ASSERT_GE(r1.winner_index, 0);
  // Byte-identical winning assignment across runs and thread counts.
  EXPECT_EQ(r1.best.assignment.server_of_slot, r2.best.assignment.server_of_slot);
  EXPECT_EQ(r1.best.assignment.server_of_slot, r3.best.assignment.server_of_slot);
  EXPECT_EQ(r1.winner_index, r2.winner_index);
  EXPECT_EQ(r1.winner, r3.winner);
  EXPECT_DOUBLE_EQ(r1.best.objective, r2.best.objective);
  // Per-member plans are deterministic too, not just the winner.
  for (size_t i = 0; i < r1.members.size(); ++i) {
    EXPECT_EQ(r1.members[i].plan.assignment.server_of_slot,
              r2.members[i].plan.assignment.server_of_slot)
        << specs[i].solver;
  }
}

TEST(PortfolioTest, UnknownSolverReportedEmpty) {
  const auto prob = SmallProblem(3);
  PortfolioRunner runner;
  const auto result = runner.Run(prob, {{"greedy", 1}, {"bogus", 2}});
  ASSERT_EQ(result.members.size(), 2u);
  EXPECT_EQ(result.winner, "greedy");
  EXPECT_TRUE(result.members[1].plan.assignment.server_of_slot.empty());
}

TEST(PortfolioTest, RespectsPinsAndReplicas) {
  core::ConsolidationProblem prob;
  prob.workloads.push_back(MakeProfile("r", 0.5, 8.0));
  prob.workloads.back().replicas = 3;
  prob.workloads.push_back(MakeProfile("s", 0.5, 8.0));
  prob.workloads.back().pinned_server = 1;
  prob.max_servers = 4;

  PortfolioRunner runner;
  const auto result = runner.Run(prob, PortfolioRunner::DefaultSpecs(5));
  ASSERT_GE(result.winner_index, 0);
  EXPECT_TRUE(result.best.feasible);
  const auto& a = result.best.assignment.server_of_slot;
  ASSERT_EQ(a.size(), 4u);
  // Replicas on distinct servers; pin honoured.
  EXPECT_NE(a[0], a[1]);
  EXPECT_NE(a[0], a[2]);
  EXPECT_NE(a[1], a[2]);
  EXPECT_EQ(a[3], 1);
}

}  // namespace
}  // namespace kairos::solve
