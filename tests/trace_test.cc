#include "trace/dataset.h"

#include <gtest/gtest.h>

#include "trace/rrd.h"
#include "util/stats.h"
#include "util/units.h"

namespace kairos::trace {
namespace {

TEST(DatasetTest, ServerCountsMatchPaper) {
  EXPECT_EQ(DatasetServerCount(DatasetKind::kInternal), 25);
  EXPECT_EQ(DatasetServerCount(DatasetKind::kWikia), 34);
  EXPECT_EQ(DatasetServerCount(DatasetKind::kWikipedia), 40);
  EXPECT_EQ(DatasetServerCount(DatasetKind::kSecondLife), 97);
  DatasetGenerator gen(1);
  EXPECT_EQ(gen.GenerateAll().size(), 196u);
}

TEST(DatasetTest, Deterministic) {
  DatasetGenerator a(42), b(42);
  const auto ta = a.Generate(DatasetKind::kWikia);
  const auto tb = b.Generate(DatasetKind::kWikia);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].cpu_cores.values(), tb[i].cpu_cores.values());
  }
  DatasetGenerator c(43);
  EXPECT_NE(c.Generate(DatasetKind::kWikia)[0].cpu_cores.values(),
            ta[0].cpu_cores.values());
}

TEST(DatasetTest, SamplingMatchesRrdConvention) {
  DatasetGenerator gen(1);
  const auto traces = gen.Generate(DatasetKind::kInternal);
  for (const auto& t : traces) {
    EXPECT_EQ(t.cpu_cores.size(), 288u);  // 24h at 5 min
    EXPECT_DOUBLE_EQ(t.cpu_cores.interval_seconds(), 300.0);
  }
}

TEST(DatasetTest, MeanCpuUnderFourPercent) {
  // The paper's headline: <4% average CPU utilization across ~200 servers.
  DatasetGenerator gen(7);
  double used = 0, capacity = 0;
  for (const auto& t : gen.GenerateAll()) {
    used += t.cpu_cores.Mean();
    capacity += t.machine.StandardCores();
  }
  EXPECT_LT(used / capacity, 0.04);
  EXPECT_GT(used / capacity, 0.005);  // not trivially idle either
}

TEST(DatasetTest, AllocatedRamExceedsRequired) {
  DatasetGenerator gen(7);
  for (const auto& t : gen.GenerateAll()) {
    EXPECT_GT(t.ram_allocated_bytes.Mean(), t.ram_required_bytes.Mean());
    EXPECT_GT(t.working_set_bytes, 0);
    EXPECT_LE(t.working_set_bytes, t.ram_required_bytes.Max());
  }
}

TEST(DatasetTest, WikipediaUsesThirtyPercentScaling) {
  DatasetGenerator gen(7);
  for (const auto& t : gen.Generate(DatasetKind::kWikipedia)) {
    EXPECT_NEAR(t.ram_required_bytes.Mean() / t.ram_allocated_bytes.Mean(), 0.7,
                1e-9);
  }
}

TEST(DatasetTest, SecondLifeSnapshotMachines) {
  DatasetGenerator gen(7);
  const auto traces = gen.Generate(DatasetKind::kSecondLife);
  // The first 27 machines carry a late-night CPU shelf the others lack.
  int spiky = 0;
  for (int i = 0; i < 27; ++i) {
    const auto& cpu = traces[i].cpu_cores;
    if (cpu.Max() > cpu.Mean() + 1.0) ++spiky;
  }
  EXPECT_GE(spiky, 24);
  int calm = 0;
  for (size_t i = 27; i < traces.size(); ++i) {
    if (traces[i].cpu_cores.Max() < 2.0) ++calm;
  }
  EXPECT_GE(calm, 60);
}

TEST(DatasetTest, DiurnalShape) {
  // Wikia evening peak: the busiest sample sits in the evening hours and
  // is well above the nightly trough.
  DatasetGenerator gen(7);
  const auto traces = gen.Generate(DatasetKind::kWikia);
  int evening_peaks = 0;
  for (const auto& t : traces) {
    size_t peak_i = 0;
    for (size_t i = 1; i < t.cpu_cores.size(); ++i) {
      if (t.cpu_cores.at(i) > t.cpu_cores.at(peak_i)) peak_i = i;
    }
    const double peak_hour = t.cpu_cores.TimeAt(peak_i) / 3600.0;
    if (peak_hour > 16.0 && peak_hour < 24.0) ++evening_peaks;
    EXPECT_GT(t.cpu_cores.Max(), 2.5 * std::max(0.02, t.cpu_cores.Min()));
  }
  EXPECT_GE(evening_peaks, 28);  // most of 34
}

TEST(DatasetTest, ToProfileCopiesFields) {
  DatasetGenerator gen(7);
  const auto traces = gen.Generate(DatasetKind::kInternal);
  const auto profile = ToProfile(traces[0]);
  EXPECT_EQ(profile.name, traces[0].name);
  EXPECT_EQ(profile.cpu_cores.values(), traces[0].cpu_cores.values());
  EXPECT_EQ(profile.ram_bytes.values(), traces[0].ram_required_bytes.values());
  EXPECT_DOUBLE_EQ(profile.working_set_bytes, traces[0].working_set_bytes);
  EXPECT_EQ(ToProfiles(traces).size(), traces.size());
}

TEST(WeeklyTest, ThreeWeeksHourly) {
  const auto series = WeeklyAggregateCpu(DatasetKind::kWikipedia, 3, 5);
  EXPECT_EQ(series.size(), 3u * 7 * 24);
  EXPECT_DOUBLE_EQ(series.interval_seconds(), 3600.0);
}

TEST(WeeklyTest, PastPredictsFuture) {
  // Figure 13: the average of weeks 1-2 predicts week 3 within ~7-8%.
  for (DatasetKind kind : {DatasetKind::kWikipedia, DatasetKind::kSecondLife}) {
    const auto series = WeeklyAggregateCpu(kind, 3, 11);
    const int week = 7 * 24;
    std::vector<double> prediction(week), actual(week);
    for (int i = 0; i < week; ++i) {
      prediction[i] = 0.5 * (series.at(i) + series.at(week + i));
      actual[i] = series.at(2 * week + i);
    }
    const double rmse = util::Rmse(prediction, actual);
    double mean = 0;
    for (double v : actual) mean += v;
    mean /= week;
    EXPECT_LT(rmse / mean, 0.12);  // paper reports 7-8%
    EXPECT_GT(rmse, 0.0);
  }
}

TEST(WeeklyTest, SecondLifeNightShelf) {
  const auto series = WeeklyAggregateCpu(DatasetKind::kSecondLife, 1, 3);
  // Hours 2-4 carry the snapshot pool load: compare 3am vs 6am.
  double h3 = 0, h6 = 0;
  for (int d = 0; d < 7; ++d) {
    h3 += series.at(d * 24 + 3);
    h6 += series.at(d * 24 + 6);
  }
  EXPECT_GT(h3, h6 * 1.3);
}

TEST(RrdTest, RoundTrip) {
  DatasetGenerator gen(9, TraceConfig{24, 300.0});
  const auto traces = gen.Generate(DatasetKind::kInternal);
  const std::string text = SerializeTraces(traces);
  std::vector<ServerTrace> parsed;
  ASSERT_TRUE(ParseTraces(text, &parsed));
  ASSERT_EQ(parsed.size(), traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(parsed[i].name, traces[i].name);
    EXPECT_EQ(parsed[i].dataset, traces[i].dataset);
    EXPECT_EQ(parsed[i].cpu_cores.values(), traces[i].cpu_cores.values());
    EXPECT_EQ(parsed[i].update_rows_per_sec.values(),
              traces[i].update_rows_per_sec.values());
    EXPECT_DOUBLE_EQ(parsed[i].working_set_bytes, traces[i].working_set_bytes);
  }
}

TEST(RrdTest, RejectsGarbage) {
  std::vector<ServerTrace> out;
  EXPECT_FALSE(ParseTraces("not-a-trace 1 2", &out));
  EXPECT_FALSE(ParseTraces("", &out));
  EXPECT_FALSE(ParseTraces("kairos-rrd 2 0", &out));  // wrong version
}

TEST(RrdTest, FileRoundTrip) {
  DatasetGenerator gen(9, TraceConfig{8, 300.0});
  const auto traces = gen.Generate(DatasetKind::kWikia);
  const std::string path = ::testing::TempDir() + "/traces.krrd";
  ASSERT_TRUE(SaveTraces(path, traces));
  std::vector<ServerTrace> parsed;
  ASSERT_TRUE(LoadTraces(path, &parsed));
  EXPECT_EQ(parsed.size(), traces.size());
}

}  // namespace
}  // namespace kairos::trace
