// Heterogeneous-fleet coverage: FleetSpec/EffectiveCapacity units, the
// identical-machines equivalence property (a FleetSpec of identical
// machines must reproduce the homogeneous path byte-for-byte for every
// registered solver and thread count), the mixed-generation cost win the
// bench reports, per-class capacity in the ledger/migration planner, and
// the online controller's class-targeted drain.
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "core/evaluator.h"
#include "online/controller.h"
#include "online/telemetry.h"
#include "sim/capacity.h"
#include "solve/portfolio.h"
#include "solve/solver.h"
#include "trace/scenario.h"
#include "util/rng.h"
#include "util/units.h"

namespace kairos {
namespace {

monitor::WorkloadProfile MakeProfile(const std::string& name, double cpu_cores,
                                     double ram_gb, int samples = 6) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, samples, cpu_cores);
  p.ram_bytes = util::TimeSeries::Constant(300, samples,
                                           ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, samples, 0.0);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

// ---------------------------------------------------------------------------
// FleetSpec / EffectiveCapacity units
// ---------------------------------------------------------------------------

TEST(FleetSpecTest, ClassLayoutAndBounds) {
  sim::FleetSpec fleet;
  fleet.AddClass(sim::MachineSpec::Server1(), 3, 0.5)
      .AddClass(sim::MachineSpec::ConsolidationTarget(), 2, 1.0);
  EXPECT_EQ(fleet.num_classes(), 2);
  EXPECT_EQ(fleet.TotalServers(), 5);
  EXPECT_EQ(fleet.ClassOf(0), 0);
  EXPECT_EQ(fleet.ClassOf(2), 0);
  EXPECT_EQ(fleet.ClassOf(3), 1);
  EXPECT_EQ(fleet.ClassOf(4), 1);
  EXPECT_EQ(fleet.ClassOf(7), 1);  // stranded index clamps to the last class
  EXPECT_EQ(fleet.ClassBegin(1), 3);
  EXPECT_EQ(fleet.ClassOfServers(5), (std::vector<int>{0, 0, 0, 1, 1}));
  EXPECT_FALSE(fleet.Uniform());
}

TEST(FleetSpecTest, UnboundedClassAbsorbsTail) {
  const sim::FleetSpec fleet =
      sim::FleetSpec::Homogeneous(sim::MachineSpec::ConsolidationTarget());
  EXPECT_EQ(fleet.TotalServers(), 0);  // unbounded
  EXPECT_EQ(fleet.ClassOf(0), 0);
  EXPECT_EQ(fleet.ClassOf(1000), 0);
  EXPECT_TRUE(fleet.Uniform());
}

TEST(FleetSpecTest, UniformityIgnoresSplitButNotWeightOrDrain) {
  const sim::MachineSpec spec = sim::MachineSpec::ConsolidationTarget();
  sim::FleetSpec split;
  split.AddClass(spec, 3, 1.0).AddClass(spec, 5, 1.0);
  EXPECT_TRUE(split.Uniform());  // identical machines, identical weight

  sim::FleetSpec weighted = split;
  weighted.classes[1].cost_weight = 2.0;
  EXPECT_FALSE(weighted.Uniform());

  sim::FleetSpec drained = split;
  drained.classes[0].drained = true;
  EXPECT_TRUE(drained.UniformMachines());
  EXPECT_FALSE(drained.Uniform());
  EXPECT_TRUE(drained.DrainedServer(0));
  EXPECT_FALSE(drained.DrainedServer(3));
}

TEST(FleetSpecTest, EffectiveCapacityMatchesSpecArithmetic) {
  const sim::MachineSpec spec = sim::MachineSpec::Server1();
  const sim::EffectiveCapacity cap = sim::EffectiveCapacity::Of(spec, 0.9, 0.95);
  EXPECT_EQ(cap.cpu_full_cores, spec.StandardCores());
  EXPECT_EQ(cap.ram_full_bytes, static_cast<double>(spec.ram_bytes));
  EXPECT_EQ(cap.cpu_cores, spec.StandardCores() * 0.9);
  EXPECT_EQ(cap.ram_bytes, static_cast<double>(spec.ram_bytes) * 0.95);
}

// ---------------------------------------------------------------------------
// Identical-machines equivalence property
// ---------------------------------------------------------------------------

/// A problem exercising replicas, pins, and anti-affinity. `fleet_split`
/// true builds the same server pool as two bounded classes of identical
/// machines; false is the classic homogeneous setup.
core::ConsolidationProblem EquivalenceProblem(bool fleet_split) {
  constexpr int kServers = 10;
  core::ConsolidationProblem prob;
  for (int i = 0; i < 8; ++i) {
    prob.workloads.push_back(MakeProfile("w" + std::to_string(i),
                                         0.5 + 0.2 * i, 4.0 + 1.0 * i));
  }
  prob.workloads[1].replicas = 2;
  prob.workloads[2].pinned_server = 1;
  prob.anti_affinity = {{3, 4}};
  const sim::MachineSpec target = sim::MachineSpec::ConsolidationTarget();
  if (fleet_split) {
    prob.fleet.classes.clear();
    prob.fleet.AddClass(target, 4, 1.0).AddClass(target, kServers - 4, 1.0);
  } else {
    prob.fleet = sim::FleetSpec::Homogeneous(target);
    prob.max_servers = kServers;
  }
  EXPECT_EQ(prob.ServerCap(), kServers);
  return prob;
}

solve::SolveBudget EquivalenceBudget() {
  solve::SolveBudget budget;
  budget.max_iterations = 6000;
  budget.direct_evaluations = 600;
  budget.probe_direct_evaluations = 200;
  budget.local_search_max_sweeps = 30;
  return budget;
}

TEST(FleetEquivalenceTest, EvaluatorBitIdenticalOnIdenticalMachines) {
  const core::ConsolidationProblem hom = EquivalenceProblem(false);
  const core::ConsolidationProblem fleet = EquivalenceProblem(true);
  core::Evaluator ev_hom(hom, hom.ServerCap());
  core::Evaluator ev_fleet(fleet, fleet.ServerCap());
  ASSERT_EQ(ev_hom.num_slots(), ev_fleet.num_slots());

  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> assignment(ev_hom.num_slots());
    for (int& a : assignment) {
      a = static_cast<int>(rng.UniformInt(0, hom.ServerCap() - 1));
    }
    EXPECT_EQ(ev_hom.Evaluate(assignment), ev_fleet.Evaluate(assignment));
  }
}

TEST(FleetEquivalenceTest, EverySolverBitIdenticalOnIdenticalMachines) {
  const core::ConsolidationProblem hom = EquivalenceProblem(false);
  const core::ConsolidationProblem fleet = EquivalenceProblem(true);
  const solve::SolveBudget budget = EquivalenceBudget();

  for (const std::string& name : solve::RegisteredSolverNames()) {
    auto solver_hom = solve::SolverRegistry::Global().Create(name, 11);
    auto solver_fleet = solve::SolverRegistry::Global().Create(name, 11);
    ASSERT_NE(solver_hom, nullptr) << name;
    const core::ConsolidationPlan plan_hom =
        solver_hom->Solve(hom, budget, nullptr);
    const core::ConsolidationPlan plan_fleet =
        solver_fleet->Solve(fleet, budget, nullptr);
    EXPECT_EQ(plan_hom.assignment.server_of_slot,
              plan_fleet.assignment.server_of_slot)
        << name;
    EXPECT_EQ(plan_hom.objective, plan_fleet.objective) << name;
    EXPECT_EQ(plan_hom.feasible, plan_fleet.feasible) << name;
  }
}

TEST(FleetEquivalenceTest, PortfolioBitIdenticalAcrossThreadCounts) {
  const core::ConsolidationProblem hom = EquivalenceProblem(false);
  const core::ConsolidationProblem fleet = EquivalenceProblem(true);

  std::vector<solve::PortfolioSolverSpec> specs;
  uint64_t seed = 5;
  for (const std::string& name : solve::RegisteredSolverNames()) {
    specs.push_back({name, seed});
    seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  }

  std::vector<int> reference;
  for (int threads : {1, 2, 4}) {
    solve::PortfolioOptions options;
    options.threads = threads;
    options.budget = EquivalenceBudget();
    const solve::PortfolioResult r_hom =
        solve::PortfolioRunner(options).Run(hom, specs);
    const solve::PortfolioResult r_fleet =
        solve::PortfolioRunner(options).Run(fleet, specs);
    ASSERT_GE(r_hom.winner_index, 0);
    EXPECT_EQ(r_hom.best.assignment.server_of_slot,
              r_fleet.best.assignment.server_of_slot)
        << threads << " threads";
    EXPECT_EQ(r_hom.best.objective, r_fleet.best.objective);
    EXPECT_EQ(r_hom.winner, r_fleet.winner);
    if (reference.empty()) {
      reference = r_hom.best.assignment.server_of_slot;
    } else {
      EXPECT_EQ(r_hom.best.assignment.server_of_slot, reference)
          << threads << " threads vs 1";
    }
  }
}

// ---------------------------------------------------------------------------
// Heterogeneous behaviour
// ---------------------------------------------------------------------------

TEST(FleetHeterogeneousTest, EvaluatorPricesClassesDifferently) {
  // One big workload: a 60 GB footprint overloads a Server1 (32 GB) but
  // fits the 96 GB target; the per-server capacities must come from the
  // slot's own server class.
  core::ConsolidationProblem prob;
  prob.workloads.push_back(MakeProfile("big", 1.0, 60.0));
  prob.fleet.classes.clear();
  prob.fleet.AddClass(sim::MachineSpec::Server1(), 1, 0.5)
      .AddClass(sim::MachineSpec::ConsolidationTarget(), 1, 1.0);

  core::Evaluator ev(prob, prob.ServerCap());
  ev.Load({0});  // on the legacy box
  EXPECT_FALSE(ev.IsFeasible());
  ev.Load({1});  // on the big target
  EXPECT_TRUE(ev.IsFeasible());
  EXPECT_EQ(ev.ClassOfServer(0), 0);
  EXPECT_EQ(ev.ClassOfServer(1), 1);
  EXPECT_LT(ev.cpu_capacity(0), ev.cpu_capacity(1));

  // At equal feasibility, the cheaper class wins the objective.
  core::ConsolidationProblem small_prob;
  small_prob.workloads.push_back(MakeProfile("small", 0.3, 2.0));
  small_prob.fleet = prob.fleet;
  core::Evaluator ev2(small_prob, small_prob.ServerCap());
  EXPECT_LT(ev2.Evaluate({0}), ev2.Evaluate({1}));
}

TEST(FleetHeterogeneousTest, MixedFleetStrictlyCheaperThanWeakestOnly) {
  // The acceptance check behind bench_fleet_consolidation: on the
  // mixed-generation scenario the class-aware solve beats the same
  // workloads forced onto the weakest class, in fleet cost.
  trace::ScenarioConfig config;
  config.steps = 16;
  config.seed = 3;
  const trace::FleetScenario scenario = trace::MakeFleetScenario(
      trace::FleetScenarioKind::kMixedGeneration, config);

  std::vector<solve::PortfolioSolverSpec> specs;
  uint64_t seed = 17;
  for (const std::string& name : solve::RegisteredSolverNames()) {
    specs.push_back({name, seed});
    seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  }
  solve::PortfolioOptions options;
  options.budget = EquivalenceBudget();

  core::ConsolidationProblem mixed;
  mixed.workloads = scenario.profiles;
  mixed.fleet = scenario.fleet;
  const solve::PortfolioResult mixed_result =
      solve::PortfolioRunner(options).Run(mixed, specs);

  core::ConsolidationProblem forced;
  forced.workloads = scenario.profiles;
  const sim::MachineClass& weak = scenario.fleet.classes[scenario.weakest_class];
  forced.fleet = sim::FleetSpec::Homogeneous(weak.spec, weak.cost_weight);
  const solve::PortfolioResult forced_result =
      solve::PortfolioRunner(options).Run(forced, specs);

  ASSERT_TRUE(mixed_result.best.feasible);
  ASSERT_TRUE(forced_result.best.feasible);
  EXPECT_LT(mixed_result.best.fleet_cost, forced_result.best.fleet_cost);
  // The win comes from actually using the stronger class.
  ASSERT_EQ(mixed_result.best.class_servers_used.size(), 2u);
  EXPECT_GT(mixed_result.best.class_servers_used[1], 0);
}

TEST(FleetHeterogeneousTest, EngineKeepsGreedyBaselineWhenPrefixProbingMisses) {
  // The bounded-K search probes the declaration-order prefix of the fleet,
  // so with the cheaper big class declared *after* a sea of small boxes it
  // can only find all-small plans; the engine must fall back to its own
  // class-aware greedy baseline (one big box) instead of returning a fleet
  // an order of magnitude dearer.
  sim::MachineSpec small;
  small.name = "small4c16g";
  small.cores = 4;
  small.ram_bytes = 16 * util::kGiB;
  sim::MachineSpec big;
  big.name = "big24c192g";
  big.cores = 24;
  big.ram_bytes = 192 * util::kGiB;

  core::ConsolidationProblem prob;
  for (int i = 0; i < 8; ++i) {
    // 10 GB each: one per small box (15 GB usable), all eight on one big.
    prob.workloads.push_back(MakeProfile("w" + std::to_string(i), 0.5, 10.0, 4));
  }
  prob.fleet.classes.clear();
  prob.fleet.AddClass(small, 20, 1.0).AddClass(big, 2, 0.9);

  const core::ConsolidationPlan plan =
      core::ConsolidationEngine(prob, core::EngineOptions{}).Solve();
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.fleet_cost, 0.9 + 1e-9)
      << "engine returned " << plan.servers_used
      << " servers at fleet cost " << plan.fleet_cost;
}

TEST(FleetHeterogeneousTest, CapacityLedgerUsesPerServerCapacity) {
  sim::FleetSpec fleet;
  fleet.AddClass(sim::MachineSpec::Server1(), 1, 1.0)        // 32 GB
      .AddClass(sim::MachineSpec::ConsolidationTarget(), 1, 1.0);  // 96 GB
  sim::CapacityLedger ledger(fleet, 2, 4, 0.9, 0.95, 0.0);

  const std::vector<double> cpu(4, 0.5);
  const std::vector<double> ram(4, 60.0 * static_cast<double>(util::kGiB));
  EXPECT_FALSE(ledger.CanAdd(0, cpu, ram));  // 60 GB > Server1's 32 GB
  EXPECT_TRUE(ledger.CanAdd(1, cpu, ram));   // fits the 96 GB target
}

TEST(FleetHeterogeneousTest, MigrationSpillCheckRespectsClassCapacity) {
  // Two 40 GB workloads on the big box must move to the two legacy boxes
  // (one each). A plan landing both on one 32 GB legacy box would spill;
  // the planner must stage one move per target without ever co-locating.
  core::ConsolidationProblem prob;
  prob.workloads = {MakeProfile("a", 0.5, 20.0, 4), MakeProfile("b", 0.5, 20.0, 4)};
  prob.fleet.classes.clear();
  prob.fleet.AddClass(sim::MachineSpec::Server1(), 2, 0.5)
      .AddClass(sim::MachineSpec::ConsolidationTarget(), 1, 1.0);

  const online::MigrationPlan plan =
      online::MigrationPlanner().Plan(prob, {2, 2}, {0, 1});
  EXPECT_TRUE(plan.safe);
  EXPECT_EQ(plan.total_moves(), 2);
}

// ---------------------------------------------------------------------------
// Online class drain
// ---------------------------------------------------------------------------

TEST(FleetDrainTest, GenerationUpgradeEvacuatesLegacyClass) {
  trace::ScenarioConfig config;
  config.steps = 32;
  config.seed = 11;
  const trace::FleetScenario scenario = trace::MakeFleetScenario(
      trace::FleetScenarioKind::kGenerationUpgrade, config);
  ASSERT_GE(scenario.drain_step, 0);

  online::ControllerConfig controller_config;
  controller_config.base.workloads = scenario.profiles;
  controller_config.base.fleet = scenario.fleet;
  controller_config.seed = 11;
  online::ConsolidationController controller(controller_config);

  online::ReplayFeed feed = online::ReplayFeed::FromProfiles(scenario.profiles);
  std::vector<online::TelemetrySample> samples;
  int step = 0;
  bool drained = false;
  int on_legacy_before_drain = -1;
  while (feed.Next(&samples)) {
    if (step == scenario.drain_step) {
      on_legacy_before_drain = 0;
      for (int s : controller.assignment()) {
        if (scenario.fleet.ClassOf(s) == scenario.drain_class) {
          ++on_legacy_before_drain;
        }
      }
      drained = controller.DrainClass(scenario.drain_class);
    }
    controller.Ingest(samples);
    ++step;
  }

  ASSERT_TRUE(drained);
  // The amortized legacy class genuinely hosted the plan before the drain…
  EXPECT_GT(on_legacy_before_drain, 0);
  // …and is empty afterwards.
  for (int s : controller.assignment()) {
    EXPECT_NE(scenario.fleet.ClassOf(s), scenario.drain_class)
        << "slot still on drained class (server " << s << ")";
  }
  bool saw_drain_event = false;
  for (const auto& e : controller.history()) {
    if (e.reason.rfind("class-drain:", 0) == 0) {
      saw_drain_event = true;
      EXPECT_GT(e.moves, 0);
    }
  }
  EXPECT_TRUE(saw_drain_event);

  // A heterogeneous fleet refuses the homogeneous relabel-based drain.
  EXPECT_FALSE(controller.DrainHighestServer());
  // Redundant or fleet-emptying drains are refused.
  EXPECT_FALSE(controller.DrainClass(scenario.drain_class));
  EXPECT_FALSE(controller.DrainClass(1));  // would leave nothing usable
  EXPECT_FALSE(controller.DrainClass(99));
}

TEST(FleetDrainTest, DrainRefusedWhenPinTargetsClass) {
  trace::ScenarioConfig config;
  config.steps = 16;
  config.seed = 11;
  const trace::FleetScenario scenario = trace::MakeFleetScenario(
      trace::FleetScenarioKind::kGenerationUpgrade, config);

  online::ControllerConfig controller_config;
  controller_config.base.workloads = scenario.profiles;
  controller_config.base.fleet = scenario.fleet;
  controller_config.base.workloads[0].pinned_server = 0;  // a legacy server
  controller_config.seed = 11;
  online::ConsolidationController controller(controller_config);
  EXPECT_FALSE(controller.DrainClass(0));
}

TEST(FleetDrainTest, HeterogeneousControllerHistoryDeterministic) {
  trace::ScenarioConfig config;
  config.steps = 24;
  config.seed = 19;
  const trace::FleetScenario scenario = trace::MakeFleetScenario(
      trace::FleetScenarioKind::kMixedGeneration, config);

  auto run = [&](int threads) {
    online::ControllerConfig controller_config;
    controller_config.base.workloads = scenario.profiles;
    controller_config.base.fleet = scenario.fleet;
    controller_config.seed = 19;
    controller_config.threads = threads;
    online::ConsolidationController controller(controller_config);
    online::ReplayFeed feed = online::ReplayFeed::FromProfiles(scenario.profiles);
    controller.RunToEnd(&feed);
    return controller.RenderHistory();
  };

  const std::string one = run(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, run(4));
}

}  // namespace
}  // namespace kairos
