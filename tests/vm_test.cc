#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/units.h"
#include "vm/multi_instance.h"
#include "vm/vm_driver.h"
#include "workload/micro.h"
#include "workload/patterns.h"
#include "workload/tpcc.h"

namespace kairos::vm {
namespace {

MultiInstanceConfig Config(VirtKind kind, int databases) {
  MultiInstanceConfig cfg;
  cfg.machine = sim::MachineSpec::Server1();
  cfg.kind = kind;
  cfg.databases = databases;
  return cfg;
}

TEST(MultiInstanceTest, RamPartitioning) {
  // 32 GB machine, 8 tenants.
  const MultiInstanceServer hw(Config(VirtKind::kHardwareVm, 8), 1);
  const MultiInstanceServer os(Config(VirtKind::kOsVirt, 8), 1);
  const MultiInstanceServer one(Config(VirtKind::kConsolidatedDbms, 8), 1);
  // Hardware VMs pay OS+DBMS overhead per tenant; OS virt shares the OS;
  // the consolidated instance pays one overhead total.
  EXPECT_LT(hw.pool_bytes_per_instance(), os.pool_bytes_per_instance());
  EXPECT_GT(one.pool_bytes_per_instance(), 8 * os.pool_bytes_per_instance());
  // Per-VM pool: 4 GB minus ~254 MB of overheads.
  EXPECT_NEAR(static_cast<double>(hw.pool_bytes_per_instance()) / util::kGiB, 3.75,
              0.1);
}

TEST(MultiInstanceTest, InstanceTopology) {
  MultiInstanceServer hw(Config(VirtKind::kHardwareVm, 4), 1);
  EXPECT_EQ(hw.num_instances(), 4);
  MultiInstanceServer one(Config(VirtKind::kConsolidatedDbms, 4), 1);
  EXPECT_EQ(one.num_instances(), 1);
  // All tenants map to the single instance.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(&one.instance_of(i), &one.instance(0));
    EXPECT_NE(one.database(i), nullptr);
  }
}

VmRunResult RunTpcc(VirtKind kind, int databases, int warehouses, double tps_each,
                    double seconds = 10.0) {
  MultiInstanceServer server(Config(kind, databases), 5);
  VmDriver driver(&server, 5);
  std::vector<std::unique_ptr<workload::TpccWorkload>> loads;
  for (int i = 0; i < databases; ++i) {
    loads.push_back(std::make_unique<workload::TpccWorkload>(
        "t" + std::to_string(i), warehouses,
        std::make_shared<workload::FlatPattern>(tps_each)));
    driver.AttachWorkload(i, loads.back().get());
  }
  driver.Warm();
  driver.Run(2.0);  // settle
  return driver.Run(seconds);
}

TEST(VmComparisonTest, ConsolidatedBeatsHardwareVmAtHighDensity) {
  // 20 tenants on one machine (the Figure 10 setting, scaled down in time).
  const VmRunResult vm = RunTpcc(VirtKind::kHardwareVm, 20, 2, 12.0);
  const VmRunResult consolidated = RunTpcc(VirtKind::kConsolidatedDbms, 20, 2, 12.0);
  EXPECT_GT(consolidated.mean_total_tps, 2.0 * vm.mean_total_tps);
}

TEST(VmComparisonTest, OsVirtBetweenVmAndConsolidated) {
  const VmRunResult vm = RunTpcc(VirtKind::kHardwareVm, 16, 2, 12.0, 6.0);
  const VmRunResult os = RunTpcc(VirtKind::kOsVirt, 16, 2, 12.0, 6.0);
  const VmRunResult one = RunTpcc(VirtKind::kConsolidatedDbms, 16, 2, 12.0, 6.0);
  EXPECT_GE(os.mean_total_tps, vm.mean_total_tps * 0.95);
  EXPECT_GT(one.mean_total_tps, os.mean_total_tps);
}

TEST(VmComparisonTest, LowDensityRoughlyEqual) {
  // With 2 tenants everything fits everywhere: the approaches should be
  // within ~25% of each other.
  const VmRunResult vm = RunTpcc(VirtKind::kHardwareVm, 2, 2, 20.0, 6.0);
  const VmRunResult one = RunTpcc(VirtKind::kConsolidatedDbms, 2, 2, 20.0, 6.0);
  EXPECT_NEAR(vm.mean_total_tps / one.mean_total_tps, 1.0, 0.25);
}

TEST(VmComparisonTest, SkewedLoadHandled) {
  // 7 throttled tenants + 1 fast one (Figure 10 right panel, scaled).
  MultiInstanceServer server(Config(VirtKind::kConsolidatedDbms, 8), 5);
  VmDriver driver(&server, 5);
  std::vector<std::unique_ptr<workload::TpccWorkload>> loads;
  for (int i = 0; i < 8; ++i) {
    const double tps = i == 0 ? 200.0 : 1.0;
    loads.push_back(std::make_unique<workload::TpccWorkload>(
        "t" + std::to_string(i), 2, std::make_shared<workload::FlatPattern>(tps)));
    driver.AttachWorkload(i, loads.back().get());
  }
  driver.Warm();
  const VmRunResult res = driver.Run(8.0);
  // The fast tenant dominates total throughput; the slow ones stay alive.
  EXPECT_GT(res.per_db_mean_tps[0], 100.0);
  for (int i = 1; i < 8; ++i) EXPECT_GE(res.per_db_mean_tps[i], 0.5);
}

}  // namespace
}  // namespace kairos::vm
