// Unit and property tests of the resource-axis layer (model/resource_model.h):
// linear axes combine additively, the nonlinear disk combiner is monotone
// in added working set, and an invalid disk model degrades the axis to
// linear semantics (the classic "no disk constraint" setup).
#include "model/resource_model.h"

#include <gtest/gtest.h>

#include "model/analytic.h"
#include "sim/disk.h"

namespace kairos {
namespace {

model::DiskModel AnalyticSpindleModel() {
  return model::BuildAnalyticModel(sim::DiskSpec{}, model::AnalyticConfig{},
                                   96e9, 4000.0);
}

TEST(LinearResourceTest, ConstantCapacityAndHeadroom) {
  const model::LinearResource cpu("cpu", 12.0, 0.9);
  EXPECT_EQ(cpu.name(), "cpu");
  EXPECT_TRUE(cpu.active());
  EXPECT_EQ(cpu.Capacity(0.0), 12.0);
  EXPECT_EQ(cpu.Capacity(1e12), 12.0);  // aux is ignored
  EXPECT_EQ(cpu.UsableCapacity(0.0), 12.0 * 0.9);
  EXPECT_DOUBLE_EQ(cpu.Utilization(6.0, 0.0), 0.5);
}

TEST(LinearResourceTest, UtilizationIsAdditiveInLoad) {
  const model::LinearResource ram("ram", 96e9, 0.95);
  // Linear combination: the utilization of a summed load is the sum of the
  // utilizations — the paper's CPU/RAM combining property.
  for (double a : {1e9, 7e9, 20e9}) {
    for (double b : {2e9, 11e9, 40e9}) {
      EXPECT_DOUBLE_EQ(ram.Utilization(a + b, 0.0),
                       ram.Utilization(a, 0.0) + ram.Utilization(b, 0.0));
    }
  }
}

TEST(DiskResourceTest, MatchesLegacyHeadroomArithmetic) {
  const model::DiskModel m = AnalyticSpindleModel();
  ASSERT_TRUE(m.valid());
  const model::DiskResource disk(&m, 0.9);
  ASSERT_TRUE(disk.active());
  for (double ws : {1e9, 8e9, 32e9, 96e9}) {
    // Bit-for-bit the arithmetic every consumer used to hand-roll.
    EXPECT_EQ(disk.Capacity(ws), m.MaxSustainableRate(ws));
    EXPECT_EQ(disk.UsableCapacity(ws), 0.9 * m.MaxSustainableRate(ws));
  }
}

TEST(DiskResourceTest, MonotoneInAddedWorkingSet) {
  // The nonlinear combining property: adding working set to a server never
  // *increases* the sustainable rate, so at a fixed update rate the
  // utilization is monotone non-decreasing in the aggregate working set.
  const model::DiskModel m = AnalyticSpindleModel();
  ASSERT_TRUE(m.valid());
  const model::DiskResource disk(&m, 0.9);

  // Monotone up to polynomial fit noise: the frontier is a fitted
  // quadratic, so allow a 0.1% relative wobble (the observed boundary
  // artifact is ~0.007%) — what must never happen is capacity *recovering*
  // as tenants pile working set onto the server.
  const double rate = 200.0;
  double prev_cap = disk.Capacity(1e9);
  double prev_util = disk.Utilization(rate, 1e9);
  for (double ws = 2e9; ws <= 96e9; ws += 1e9) {
    const double cap = disk.Capacity(ws);
    const double util = disk.Utilization(rate, ws);
    EXPECT_LE(cap, prev_cap * (1.0 + 1e-3)) << "capacity grew at ws=" << ws;
    EXPECT_GE(util, prev_util * (1.0 - 1e-3)) << "utilization shrank at ws=" << ws;
    prev_cap = cap;
    prev_util = util;
  }
  // And it is genuinely nonlinear: capacity at double the working set is
  // not just the capacity at half of it (unlike any linear axis).
  EXPECT_LT(disk.Capacity(96e9), disk.Capacity(8e9));
}

TEST(DiskResourceTest, ReducesToLinearWhenModelInvalid) {
  const model::DiskModel invalid;  // never fitted
  ASSERT_FALSE(invalid.valid());
  const model::DiskResource disk(&invalid, 0.9, /*fallback_capacity=*/500.0);
  EXPECT_FALSE(disk.active());
  // Capacity no longer depends on the working set: linear semantics.
  EXPECT_EQ(disk.Capacity(1e9), 500.0);
  EXPECT_EQ(disk.Capacity(64e9), 500.0);
  EXPECT_DOUBLE_EQ(disk.Utilization(100.0, 1e9) + disk.Utilization(150.0, 64e9),
                   disk.Utilization(250.0, 3e9));

  // Null model behaves the same (and defaults to unbounded capacity).
  const model::DiskResource none;
  EXPECT_FALSE(none.active());
  EXPECT_EQ(none.Capacity(1e9), model::DiskResource::kUnbounded);

  const model::DiskResource null_model(nullptr, 0.9);
  EXPECT_FALSE(null_model.active());
}

}  // namespace
}  // namespace kairos
