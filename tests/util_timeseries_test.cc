#include "util/timeseries.h"

#include <gtest/gtest.h>

namespace kairos::util {
namespace {

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries s(5.0, {1, 2, 3});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.interval_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(s.at(1), 2);
  EXPECT_DOUBLE_EQ(s.TimeAt(2), 10.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3);
  EXPECT_DOUBLE_EQ(s.Min(), 1);
  EXPECT_DOUBLE_EQ(s.Mean(), 2);
}

TEST(TimeSeriesTest, EmptyDefaults) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Max(), 0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0);
}

TEST(TimeSeriesTest, Constant) {
  const TimeSeries s = TimeSeries::Constant(1.0, 4, 7.5);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.Min(), 7.5);
  EXPECT_DOUBLE_EQ(s.Max(), 7.5);
}

TEST(TimeSeriesTest, Scaled) {
  TimeSeries s(1.0, {1, 2});
  const TimeSeries t = s.Scaled(3.0);
  EXPECT_DOUBLE_EQ(t.at(0), 3);
  EXPECT_DOUBLE_EQ(t.at(1), 6);
  EXPECT_DOUBLE_EQ(s.at(0), 1);  // original untouched
}

TEST(TimeSeriesTest, AddTruncatesToShorter) {
  TimeSeries a(1.0, {1, 2, 3});
  TimeSeries b(1.0, {10, 20});
  const TimeSeries c = a + b;
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.at(0), 11);
  EXPECT_DOUBLE_EQ(c.at(1), 22);
}

TEST(TimeSeriesTest, AccumulateExtends) {
  TimeSeries a(1.0, {1, 2});
  TimeSeries b(1.0, {10, 20, 30});
  a.AccumulateInPlace(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.at(0), 11);
  EXPECT_DOUBLE_EQ(a.at(2), 30);
}

TEST(TimeSeriesTest, AccumulateIntoEmpty) {
  TimeSeries a;
  a.AccumulateInPlace(TimeSeries(2.0, {5, 6}));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.interval_seconds(), 2.0);
}

TEST(TimeSeriesTest, ResampleAverages) {
  TimeSeries s(1.0, {1, 3, 5, 7, 9});
  const TimeSeries r = s.Resampled(2.0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r.at(0), 2);
  EXPECT_DOUBLE_EQ(r.at(1), 6);
  EXPECT_DOUBLE_EQ(r.at(2), 9);  // trailing partial bucket
}

TEST(TimeSeriesTest, PercentileOfSamples) {
  TimeSeries s(1.0, {0, 10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.Percentile(50), 20);
}

TEST(TimeSeriesTest, MapApplies) {
  TimeSeries s(1.0, {1, 2});
  const TimeSeries t = s.Map([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(t.at(1), 4);
}

TEST(TimeSeriesTest, SumSeries) {
  const TimeSeries sum =
      SumSeries({TimeSeries(1.0, {1, 1}), TimeSeries(1.0, {2, 2, 2})});
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum.at(0), 3);
  EXPECT_DOUBLE_EQ(sum.at(2), 2);
}

}  // namespace
}  // namespace kairos::util
