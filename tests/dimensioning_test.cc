// Cost-based fleet dimensioning (core::FleetDimensioner + the engine's
// DimensioningMode): the budget search over class mixes must convert the
// ROADMAP's known wrong-answer case — bounded-K prefix probing skipping a
// cheaper/denser class declared late in the fleet order — into a solved
// one, while uniform fleets reproduce the legacy count-prefix path
// byte-for-byte at every portfolio thread count. Also unit-covers the new
// pieces this rides on: the disk-aware DenseServerOrder score, the
// subset-restricted greedy packing, and the bounded-best-class
// FractionalLowerBound.
#include "core/dimensioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/bounds.h"
#include "core/engine.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "core/load_accountant.h"
#include "model/analytic.h"
#include "sim/disk.h"
#include "solve/portfolio.h"
#include "solve/solver.h"
#include "trace/scenario.h"
#include "util/units.h"

namespace kairos {
namespace {

monitor::WorkloadProfile MakeProfile(const std::string& name, double cpu_cores,
                                     double ram_gb, int samples = 4) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, samples, cpu_cores);
  p.ram_bytes = util::TimeSeries::Constant(
      300, samples, ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, samples, 0.0);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

solve::SolveBudget TestBudget() {
  solve::SolveBudget budget;
  budget.max_iterations = 8000;
  budget.direct_evaluations = 800;
  budget.probe_direct_evaluations = 300;
  budget.local_search_max_sweeps = 40;
  return budget;
}

core::EngineOptions EngineOptionsFor(const solve::SolveBudget& budget,
                                     core::DimensioningMode mode) {
  core::EngineOptions options;
  options.seed = 11;
  options.direct_evaluations = budget.direct_evaluations;
  options.probe_direct_evaluations = budget.probe_direct_evaluations;
  options.local_search_max_sweeps = budget.local_search_max_sweeps;
  options.dimensioning = mode;
  return options;
}

std::vector<solve::PortfolioSolverSpec> AllSpecs(uint64_t seed) {
  std::vector<solve::PortfolioSolverSpec> specs;
  for (const std::string& name : solve::RegisteredSolverNames()) {
    specs.push_back({name, seed});
    seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  }
  return specs;
}

// ---------------------------------------------------------------------------
// The ROADMAP miss: RAID classes declared last, prefix probing blind
// ---------------------------------------------------------------------------

core::ConsolidationProblem RaidProblem(trace::FleetScenario* scenario_out) {
  trace::ScenarioConfig config;
  config.steps = 16;
  config.seed = 7;
  *scenario_out = trace::MakeFleetScenario(
      trace::FleetScenarioKind::kRaidVsSpindle, config);
  core::ConsolidationProblem problem;
  problem.workloads = scenario_out->profiles;
  problem.fleet = scenario_out->fleet;
  return problem;
}

TEST(CostBudgetDimensioningTest, RaidDeclaredLastBeatsPrefixAndGreedy) {
  trace::FleetScenario scenario;
  const core::ConsolidationProblem problem = RaidProblem(&scenario);
  // Premise of the regression: the RAID class is declared *last*, so the
  // declaration-order prefix opens every spindle before the first RAID box.
  ASSERT_EQ(scenario.raid_class, problem.fleet.num_classes() - 1);
  ASSERT_FALSE(problem.fleet.Uniform());

  const solve::SolveBudget budget = TestBudget();
  const core::ConsolidationPlan cost_plan =
      core::ConsolidationEngine(
          problem,
          EngineOptionsFor(budget, core::DimensioningMode::kCostBudget))
          .Solve();
  const core::ConsolidationPlan prefix_plan =
      core::ConsolidationEngine(
          problem,
          EngineOptionsFor(budget, core::DimensioningMode::kCountPrefix))
          .Solve();

  ASSERT_TRUE(cost_plan.feasible);
  EXPECT_GT(cost_plan.budget_probes, 0);
  EXPECT_EQ(prefix_plan.budget_probes, 0);

  // Never worse than the class-aware greedy baseline's fleet cost...
  auto greedy_solver = solve::SolverRegistry::Global().Create("greedy", 11);
  ASSERT_NE(greedy_solver, nullptr);
  const core::ConsolidationPlan greedy_plan =
      greedy_solver->Solve(problem, budget, nullptr);
  ASSERT_TRUE(greedy_plan.feasible);
  EXPECT_LE(cost_plan.fleet_cost, greedy_plan.fleet_cost + 1e-9);

  // ...never worse than the legacy count-prefix engine...
  EXPECT_LE(cost_plan.fleet_cost, prefix_plan.fleet_cost + 1e-9);
  EXPECT_LE(cost_plan.objective, prefix_plan.objective + 1e-9);

  // ...and within 1% of the best plan the whole portfolio finds.
  solve::PortfolioOptions options;
  options.budget = budget;
  const solve::PortfolioResult portfolio =
      solve::PortfolioRunner(options).Run(problem, AllSpecs(11));
  ASSERT_TRUE(portfolio.best.feasible);
  EXPECT_LE(cost_plan.objective, portfolio.best.objective * 1.01);
}

TEST(CostBudgetDimensioningTest, DimensionerChoosesRaidMixUnderBudget) {
  trace::FleetScenario scenario;
  const core::ConsolidationProblem problem = RaidProblem(&scenario);
  const solve::SolveBudget budget = TestBudget();
  core::ConsolidationEngine engine(
      problem, EngineOptionsFor(budget, core::DimensioningMode::kCostBudget));
  core::FleetDimensioner dimensioner(
      problem, engine,
      EngineOptionsFor(budget, core::DimensioningMode::kCostBudget));
  const core::GreedyResult greedy =
      core::GreedyBaseline(problem, problem.ServerCap());
  const core::DimensioningResult dim = dimensioner.Run(greedy);

  ASSERT_TRUE(dim.found);
  EXPECT_GT(dim.budget_probes, 0);
  ASSERT_EQ(dim.class_counts.size(), 2u);
  // The chosen mix actually buys the late-declared RAID class, and costs
  // less than the all-spindle fleet the declaration prefix is stuck with.
  EXPECT_GT(dim.class_counts[scenario.raid_class], 0);
  const double spindle_only_cost =
      static_cast<double>(problem.fleet.classes[0].count) *
      problem.fleet.classes[0].cost_weight;
  EXPECT_LT(dim.budget, spindle_only_cost);
  // The probe's assignment is restricted to the chosen multiset.
  std::vector<char> member(problem.ServerCap(), 0);
  for (int j : dim.servers) member[j] = 1;
  core::Evaluator ev(problem, problem.ServerCap());
  for (int s : dim.assignment.server_of_slot) {
    EXPECT_TRUE(member[s]) << "slot placed outside the chosen mix";
  }
  ev.Load(dim.assignment.server_of_slot);
  EXPECT_TRUE(ev.IsFeasible());
}

TEST(CostBudgetDimensioningTest, ProbeContextReuseBitIdenticalToRebuild) {
  // reuse_probe_context is a latency lever only: the cached full-cap
  // evaluator and greedy packing context must reproduce the per-probe
  // rebuild bit for bit — same plan, same chosen mix, same probe count.
  trace::FleetScenario scenario;
  const core::ConsolidationProblem problem = RaidProblem(&scenario);
  const solve::SolveBudget budget = TestBudget();

  core::EngineOptions cached =
      EngineOptionsFor(budget, core::DimensioningMode::kCostBudget);
  cached.reuse_probe_context = true;
  core::EngineOptions rebuilt = cached;
  rebuilt.reuse_probe_context = false;

  const core::ConsolidationPlan with_cache =
      core::ConsolidationEngine(problem, cached).Solve();
  const core::ConsolidationPlan without_cache =
      core::ConsolidationEngine(problem, rebuilt).Solve();

  EXPECT_EQ(with_cache.assignment.server_of_slot,
            without_cache.assignment.server_of_slot);
  EXPECT_EQ(with_cache.objective, without_cache.objective);
  EXPECT_EQ(with_cache.fleet_cost, without_cache.fleet_cost);
  EXPECT_EQ(with_cache.chosen_class_counts, without_cache.chosen_class_counts);
  EXPECT_EQ(with_cache.budget_probes, without_cache.budget_probes);
  EXPECT_GT(with_cache.budget_probes, 0);
}

// ---------------------------------------------------------------------------
// The interleaved-mix miss: no purchase-order prefix reaches the optimum
// ---------------------------------------------------------------------------

core::ConsolidationProblem InterleavedProblem(trace::FleetScenario* scenario_out) {
  trace::ScenarioConfig config;
  config.steps = 12;
  config.seed = 7;
  *scenario_out = trace::MakeFleetScenario(
      trace::FleetScenarioKind::kInterleavedMix, config);
  core::ConsolidationProblem problem;
  problem.workloads = scenario_out->profiles;
  problem.fleet = scenario_out->fleet;
  return problem;
}

/// The retired prefix enumeration's candidate purchase orders, rebuilt from
/// the public pieces it was made of: the dense order, cheapest-class-first,
/// and each class's servers first (dense within and after). The cheapest
/// fractional-cover prefix across these is everything that search could
/// ever probe — the floor the knapsack has to beat.
double CheapestPrefixCoverCost(const core::ConsolidationProblem& problem,
                               const core::LoadAccountant& acct,
                               const core::LoadAccountant::AggregateDemand& demand) {
  std::vector<std::vector<int>> orders;
  const std::vector<int> dense = core::DenseServerOrder(acct);
  orders.push_back(dense);
  std::vector<int> cheap = acct.PlacableServers();
  std::stable_sort(cheap.begin(), cheap.end(), [&](int a, int b) {
    return acct.ClassWeight(acct.ClassOfServer(a)) <
           acct.ClassWeight(acct.ClassOfServer(b));
  });
  orders.push_back(std::move(cheap));
  for (int c = 0; c < acct.num_classes(); ++c) {
    std::vector<int> first = dense;
    std::stable_partition(first.begin(), first.end(), [&](int j) {
      return acct.ClassOfServer(j) == c;
    });
    orders.push_back(std::move(first));
  }

  double best = std::numeric_limits<double>::infinity();
  for (const std::vector<int>& order : orders) {
    const int m = core::BoundEngine::CoveragePrefix(acct, demand,
                                                    /*min_servers=*/1, order);
    if (m <= 0) continue;
    double cost = 0;
    for (int i = 0; i < m; ++i) {
      cost += acct.ClassWeight(acct.ClassOfServer(order[i]));
    }
    best = std::min(best, cost);
  }
  return best;
}

TEST(CostBudgetDimensioningTest, KnapsackReachesInterleavedMixPrefixesMiss) {
  trace::FleetScenario scenario;
  const core::ConsolidationProblem problem = InterleavedProblem(&scenario);
  ASSERT_EQ(problem.fleet.num_classes(), 3);
  const int cap = problem.ServerCap();
  const core::LoadAccountant acct(problem, cap, /*track_server_load=*/false);
  const core::LoadAccountant::AggregateDemand demand = acct.TotalDemand();

  // The knapsack's cheapest cover interleaves both specialist classes —
  // partial counts of each, none of the dear fallback...
  const std::vector<int> avail = problem.fleet.ClassCounts(cap);
  const std::vector<core::ClassMix> mixes = core::BoundEngine::CheapestCoverMixes(
      acct, demand, /*min_servers=*/1, /*min_counts=*/{0, 0, 0}, avail,
      /*max_cost=*/0.0, /*max_mixes=*/8);
  ASSERT_FALSE(mixes.empty());
  const core::ClassMix& best = mixes.front();
  EXPECT_GT(best.counts[0], 0);
  EXPECT_LT(best.counts[0], avail[0]);
  EXPECT_GT(best.counts[1], 0);
  EXPECT_LT(best.counts[1], avail[1]);
  EXPECT_EQ(best.counts[2], 0);

  // ...and costs strictly less than the cheapest coverage prefix of ANY
  // candidate purchase order: the retired enumeration provably never
  // probed a subset this cheap.
  const double prefix_floor = CheapestPrefixCoverCost(problem, acct, demand);
  ASSERT_TRUE(std::isfinite(prefix_floor));
  EXPECT_LT(best.cost, prefix_floor - 1e-9);

  // End to end, the dimensioner lands on that interleaved mix (anchor
  // disabled: the reach claim is about the dimensioner's own search space).
  const solve::SolveBudget budget = TestBudget();
  core::ConsolidationEngine engine(
      problem, EngineOptionsFor(budget, core::DimensioningMode::kCostBudget));
  core::FleetDimensioner dimensioner(
      problem, engine,
      EngineOptionsFor(budget, core::DimensioningMode::kCostBudget));
  const core::DimensioningResult dim = dimensioner.Run(core::GreedyResult{});
  ASSERT_TRUE(dim.found);
  ASSERT_EQ(dim.class_counts.size(), 3u);
  EXPECT_GT(dim.class_counts[0], 0);
  EXPECT_GT(dim.class_counts[1], 0);
  EXPECT_EQ(dim.class_counts[2], 0);
  EXPECT_LT(dim.budget, prefix_floor - 1e-9);

  core::Evaluator ev(problem, cap);
  ev.Load(dim.assignment.server_of_slot);
  EXPECT_TRUE(ev.IsFeasible());
}

// ---------------------------------------------------------------------------
// Uniform fleets: the legacy path, byte for byte
// ---------------------------------------------------------------------------

core::ConsolidationProblem UniformProblem() {
  core::ConsolidationProblem problem;
  for (int i = 0; i < 8; ++i) {
    problem.workloads.push_back(
        MakeProfile("w" + std::to_string(i), 0.5 + 0.2 * i, 4.0 + 1.0 * i));
  }
  problem.workloads[1].replicas = 2;
  problem.anti_affinity = {{3, 4}};
  const sim::MachineSpec target = sim::MachineSpec::ConsolidationTarget();
  problem.fleet.classes.clear();
  problem.fleet.AddClass(target, 4, 1.0).AddClass(target, 6, 1.0);
  return problem;
}

TEST(CostBudgetDimensioningTest, UniformFleetBitIdenticalAcrossModes) {
  const core::ConsolidationProblem problem = UniformProblem();
  ASSERT_TRUE(problem.fleet.Uniform());
  const solve::SolveBudget budget = TestBudget();

  const core::ConsolidationPlan cost_plan =
      core::ConsolidationEngine(
          problem,
          EngineOptionsFor(budget, core::DimensioningMode::kCostBudget))
          .Solve();
  const core::ConsolidationPlan prefix_plan =
      core::ConsolidationEngine(
          problem,
          EngineOptionsFor(budget, core::DimensioningMode::kCountPrefix))
          .Solve();
  EXPECT_EQ(cost_plan.assignment.server_of_slot,
            prefix_plan.assignment.server_of_slot);
  EXPECT_EQ(cost_plan.objective, prefix_plan.objective);
  EXPECT_EQ(cost_plan.feasible, prefix_plan.feasible);
  EXPECT_EQ(cost_plan.budget_probes, 0);
  EXPECT_TRUE(cost_plan.chosen_class_counts.empty());
}

TEST(CostBudgetDimensioningTest, UniformPortfolioBitIdenticalAcrossThreads) {
  const core::ConsolidationProblem problem = UniformProblem();
  std::vector<int> reference;
  for (int threads : {1, 2, 4}) {
    for (core::DimensioningMode mode :
         {core::DimensioningMode::kCostBudget,
          core::DimensioningMode::kCountPrefix}) {
      solve::PortfolioOptions options;
      options.threads = threads;
      options.budget = TestBudget();
      options.budget.dimensioning = mode;
      const solve::PortfolioResult result =
          solve::PortfolioRunner(options).Run(problem, AllSpecs(5));
      ASSERT_GE(result.winner_index, 0);
      if (reference.empty()) {
        reference = result.best.assignment.server_of_slot;
      } else {
        EXPECT_EQ(result.best.assignment.server_of_slot, reference)
            << threads << " threads, mode "
            << (mode == core::DimensioningMode::kCostBudget ? "cost-budget"
                                                            : "count-prefix");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Units: disk-aware dense order, restricted packing, bounded lower bound
// ---------------------------------------------------------------------------

TEST(DenseServerOrderTest, DiskModelBreaksCpuRamTie) {
  // Identical CPU/RAM and cost weight; only the disk models differ. The
  // disk-aware score must rank the RAID class denser.
  const model::AnalyticConfig disk_cfg;
  auto spindle_model = std::make_shared<model::DiskModel>(
      model::BuildAnalyticModel(sim::DiskSpec{}, disk_cfg, 96e9, 4000.0));
  auto raid_model = std::make_shared<model::DiskModel>(
      model::BuildAnalyticModel(sim::DiskSpec::Raid10(), disk_cfg, 120e9,
                                20000.0));
  core::ConsolidationProblem problem;
  problem.workloads.push_back(MakeProfile("w", 0.5, 4.0));
  const sim::MachineSpec box = sim::MachineSpec::ConsolidationTarget();
  problem.fleet.classes.clear();
  problem.fleet.AddClass(box, 2, 1.0)
      .WithClassDisk(spindle_model)
      .AddClass(box, 2, 1.0)
      .WithClassDisk(raid_model);

  const core::LoadAccountant acct(problem, problem.ServerCap(),
                                  /*track_server_load=*/false);
  const std::vector<int> order = core::DenseServerOrder(acct);
  ASSERT_EQ(order.size(), 4u);
  // RAID servers (indices 2, 3) lead.
  EXPECT_EQ(acct.ClassOfServer(order[0]), 1);
  EXPECT_EQ(acct.ClassOfServer(order[1]), 1);

  // Without disk models the same fleet scores by CPU/RAM only: equal
  // classes keep ascending index order (the pre-disk-aware ranking).
  core::ConsolidationProblem plain = problem;
  plain.fleet.classes[0].disk_model = nullptr;
  plain.fleet.classes[1].disk_model = nullptr;
  const core::LoadAccountant plain_acct(plain, plain.ServerCap(),
                                        /*track_server_load=*/false);
  EXPECT_EQ(core::DenseServerOrder(plain_acct),
            (std::vector<int>{0, 1, 2, 3}));
}

TEST(GreedyRestrictionTest, MultiResourcePackingStaysInsideSubset) {
  core::ConsolidationProblem problem;
  for (int i = 0; i < 6; ++i) {
    problem.workloads.push_back(MakeProfile("w" + std::to_string(i), 0.4, 6.0));
  }
  problem.fleet.classes.clear();
  problem.fleet.AddClass(sim::MachineSpec::ConsolidationTarget(), 8, 1.0);
  problem.max_servers = 8;

  const std::vector<int> subset = {2, 5};
  bool clean = false;
  const core::Assignment packed =
      core::GreedyMultiResource(problem, 8, &clean, &subset);
  for (int s : packed.server_of_slot) {
    EXPECT_TRUE(s == 2 || s == 5) << "packed onto server " << s;
  }
}

TEST(FractionalLowerBoundTest, BoundedBestClassSpillsToSmallerClasses) {
  // 30 standard cores of demand. One big box (24 cores) covers 19.4 after
  // headroom; pretending every server is big ("best class") would report
  // ceil(30 / 19.4) = 2 — unreachable, there is only one big box. Filling
  // best-class-first then spilling to the 4-core smalls (3.6 usable each)
  // needs 1 + ceil((30 - 19.44) / 3.24) = 5.
  sim::MachineSpec small;
  small.name = "small4c16g";
  small.cores = 4;
  small.ram_bytes = 16 * util::kGiB;
  sim::MachineSpec big;
  big.name = "big24c192g";
  big.cores = 24;
  big.ram_bytes = 192 * util::kGiB;

  core::ConsolidationProblem problem;
  for (int i = 0; i < 10; ++i) {
    problem.workloads.push_back(MakeProfile("w" + std::to_string(i), 3.0, 1.0));
  }
  problem.fleet.classes.clear();
  problem.fleet.AddClass(small, 20, 1.0).AddClass(big, 1, 2.0);
  const int bound = core::FractionalLowerBound(problem);
  EXPECT_GT(bound, 2);  // the old all-best-class bound
  EXPECT_LE(bound, 10);

  // Uniform fleets keep the classic arithmetic.
  core::ConsolidationProblem uniform;
  for (int i = 0; i < 10; ++i) {
    uniform.workloads.push_back(MakeProfile("w" + std::to_string(i), 3.0, 1.0));
  }
  uniform.fleet = sim::FleetSpec::Homogeneous(big);
  const double usable = big.StandardCores() * uniform.cpu_headroom;
  EXPECT_EQ(core::FractionalLowerBound(uniform),
            static_cast<int>(std::ceil(30.0 / usable)));
}

}  // namespace
}  // namespace kairos
