#include "util/polyfit.h"

#include <gtest/gtest.h>
#include <cmath>

#include "util/rng.h"

namespace kairos::util {
namespace {

TEST(SolveLinearTest, Identity) {
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem({1, 0, 0, 1}, {3, 4}, 2, &x));
  EXPECT_DOUBLE_EQ(x[0], 3);
  EXPECT_DOUBLE_EQ(x[1], 4);
}

TEST(SolveLinearTest, General) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem({2, 1, 1, -1}, {5, 1}, 2, &x));
  EXPECT_NEAR(x[0], 2, 1e-12);
  EXPECT_NEAR(x[1], 1, 1e-12);
}

TEST(SolveLinearTest, SingularFails) {
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem({1, 2, 2, 4}, {1, 2}, 2, &x));
}

TEST(SolveLinearTest, NeedsPivoting) {
  // First pivot is zero; partial pivoting must handle it.
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem({0, 1, 1, 0}, {7, 9}, 2, &x));
  EXPECT_NEAR(x[0], 9, 1e-12);
  EXPECT_NEAR(x[1], 7, 1e-12);
}

TEST(LeastSquaresTest, RecoversLine) {
  // y = 2 + 3u sampled exactly.
  std::vector<double> x, y;
  for (double u = 0; u < 10; u += 1) {
    x.push_back(1.0);
    x.push_back(u);
    y.push_back(2 + 3 * u);
  }
  std::vector<double> beta;
  ASSERT_TRUE(LeastSquares(x, y, 2, &beta));
  EXPECT_NEAR(beta[0], 2, 1e-9);
  EXPECT_NEAR(beta[1], 3, 1e-9);
}

TEST(LarTest, RobustToOutliers) {
  // y = 5u with one wild outlier; LAR should track the line better than OLS.
  std::vector<double> x, y;
  for (double u = 0; u <= 20; u += 1) {
    x.push_back(1.0);
    x.push_back(u);
    y.push_back(5 * u);
  }
  y[20] = 1000;  // outlier at the end tilts the OLS slope
  std::vector<double> ols, lar;
  ASSERT_TRUE(LeastSquares(x, y, 2, &ols));
  ASSERT_TRUE(LeastAbsoluteResiduals(x, y, 2, &lar));
  EXPECT_LT(std::fabs(lar[1] - 5.0), std::fabs(ols[1] - 5.0));
  EXPECT_NEAR(lar[1], 5.0, 0.2);
}

TEST(Poly2DTest, EvaluatesCoefficients) {
  const Poly2D p({1, 2, 3, 4, 5, 6});
  // 1 + 2u + 3v + 4u^2 + 5uv + 6v^2 at (1, 2) = 1+2+6+4+10+24 = 47.
  EXPECT_DOUBLE_EQ(p.Eval(1, 2), 47);
}

TEST(Poly2DTest, ExactRecovery) {
  const Poly2D truth({0.5, -1, 2, 0.25, 1.5, -0.75});
  std::vector<double> u, v, y;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const double a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
    u.push_back(a);
    v.push_back(b);
    y.push_back(truth.Eval(a, b));
  }
  Poly2D fit;
  ASSERT_TRUE(Poly2D::FitLeastSquares(u, v, y, &fit));
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(fit.coefficients()[i], truth.coefficients()[i], 1e-6);
  }
  Poly2D lar;
  ASSERT_TRUE(Poly2D::FitLar(u, v, y, &lar));
  EXPECT_NEAR(lar.Eval(1.0, 1.0), truth.Eval(1.0, 1.0), 1e-4);
}

TEST(Poly1DTest, QuadraticRecovery) {
  std::vector<double> u, y;
  for (double a = -3; a <= 3; a += 0.5) {
    u.push_back(a);
    y.push_back(2 - a + 0.5 * a * a);
  }
  Poly1D fit;
  ASSERT_TRUE(Poly1D::Fit(u, y, &fit));
  EXPECT_NEAR(fit.coefficients()[0], 2, 1e-9);
  EXPECT_NEAR(fit.coefficients()[1], -1, 1e-9);
  EXPECT_NEAR(fit.coefficients()[2], 0.5, 1e-9);
  EXPECT_NEAR(fit.Eval(2.0), 2.0, 1e-9);
}

}  // namespace
}  // namespace kairos::util
