// Parameterized property tests: invariants that must hold across sweeps of
// configurations, not just at hand-picked points.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/engine.h"
#include "db/server.h"
#include "model/analytic.h"
#include "monitor/gauge.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"

namespace kairos {
namespace {

// ---- Gauging accuracy across working-set / pool ratios ----

class GaugeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GaugeSweep, EstimateWithinTolerance) {
  const auto [ws_mb, pool_mb] = GetParam();
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = static_cast<uint64_t>(pool_mb) * util::kMiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, 7);
  workload::MicroSpec spec;
  spec.working_set_bytes = static_cast<uint64_t>(ws_mb) * util::kMiB;
  spec.data_bytes = 2 * spec.working_set_bytes;
  spec.reads_per_tx = 4;
  spec.updates_per_tx = 2;
  spec.pattern = std::make_shared<workload::FlatPattern>(400);
  workload::MicroWorkload w("m", spec);
  workload::Driver driver(&server, 7);
  driver.AddWorkload(&w);
  driver.Warm();
  driver.Run(2.0);

  monitor::BufferPoolGauge gauge(monitor::GaugeConfig{});
  const monitor::GaugeResult result = gauge.Run(&driver);
  // Never underestimate by much (unsafe) and stay within ~40% above.
  EXPECT_GT(static_cast<double>(result.working_set_bytes),
            0.8 * static_cast<double>(spec.working_set_bytes));
  EXPECT_LT(static_cast<double>(result.working_set_bytes),
            1.4 * static_cast<double>(spec.working_set_bytes) +
                64.0 * static_cast<double>(util::kMiB));
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, GaugeSweep,
    ::testing::Values(std::make_tuple(96, 256), std::make_tuple(160, 512),
                      std::make_tuple(256, 512), std::make_tuple(192, 1024)));

// ---- The combining property across tenant counts ----

class CombineSweep : public ::testing::TestWithParam<int> {};

TEST_P(CombineSweep, AggregateIoMatchesSingleWorkload) {
  const int tenants = GetParam();
  auto run = [&](int n) {
    db::DbmsConfig cfg;
    cfg.buffer_pool_bytes = 2 * util::kGiB;
    db::Server server(sim::MachineSpec::Server1(), cfg, 23);
    workload::Driver driver(&server, 23);
    std::vector<std::unique_ptr<workload::MicroWorkload>> ws;
    for (int i = 0; i < n; ++i) {
      workload::MicroSpec spec;
      spec.working_set_bytes = 768 * util::kMiB / n;
      spec.data_bytes = 2 * spec.working_set_bytes;
      spec.updates_per_tx = 10;
      spec.reads_per_tx = 2;
      spec.pattern = std::make_shared<workload::FlatPattern>(6000.0 / n / 10.0);
      ws.push_back(std::make_unique<workload::MicroWorkload>(
          "t" + std::to_string(i), spec));
      driver.AddWorkload(ws.back().get());
    }
    driver.Warm();
    driver.Run(3.0);
    return driver.Run(8.0).server.write_mbps.Mean();
  };
  const double combined = run(tenants);
  const double single = run(1);
  EXPECT_NEAR(combined, single, 0.3 * single + 0.5);
}

INSTANTIATE_TEST_SUITE_P(TenantCounts, CombineSweep, ::testing::Values(2, 3, 6));

// ---- Engine invariants over randomized problems ----

class EngineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineSweep, PlanInvariants) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);
  core::ConsolidationProblem prob;
  const int n = 6 + static_cast<int>(rng.UniformInt(0, 8));
  for (int i = 0; i < n; ++i) {
    monitor::WorkloadProfile p;
    p.name = "w" + std::to_string(i);
    std::vector<double> cpu(6), ram(6), rows(6);
    for (int t = 0; t < 6; ++t) {
      cpu[t] = rng.Uniform(0.05, 2.5);
      ram[t] = rng.Uniform(2e9, 30e9);
      rows[t] = rng.Uniform(5, 150);
    }
    p.cpu_cores = util::TimeSeries(300, cpu);
    p.ram_bytes = util::TimeSeries(300, ram);
    p.update_rows_per_sec = util::TimeSeries(300, rows);
    p.working_set_bytes = rng.Uniform(1e9, 20e9);
    if (rng.Bernoulli(0.2)) p.replicas = 2;
    prob.workloads.push_back(p);
  }
  core::EngineOptions opts;
  opts.seed = seed;
  const core::ConsolidationPlan plan = core::ConsolidationEngine(prob, opts).Solve();

  // Invariant 1: every slot assigned to a valid server.
  const int slots = prob.TotalSlots();
  ASSERT_EQ(static_cast<int>(plan.assignment.server_of_slot.size()), slots);
  for (int s : plan.assignment.server_of_slot) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, slots);
  }
  // Invariant 2: never below the fractional bound; never above one server
  // per slot.
  EXPECT_GE(plan.servers_used, plan.fractional_lower_bound);
  EXPECT_LE(plan.servers_used, slots);
  // Invariant 3: a feasible plan never loses to a feasible greedy.
  if (plan.feasible && plan.greedy_servers >= 0) {
    EXPECT_LE(plan.servers_used, plan.greedy_servers);
  }
  // Invariant 4: replicas of one workload land on distinct servers when the
  // plan is feasible.
  if (plan.feasible) {
    int slot = 0;
    for (const auto& w : prob.workloads) {
      for (int a = 0; a < w.replicas; ++a) {
        for (int b = a + 1; b < w.replicas; ++b) {
          EXPECT_NE(plan.assignment.server_of_slot[slot + a],
                    plan.assignment.server_of_slot[slot + b]);
        }
      }
      slot += w.replicas;
    }
  }
  // Invariant 5: the reported objective matches re-evaluation.
  core::Evaluator ev(prob, slots);
  std::vector<int> a = plan.assignment.server_of_slot;
  ev.Load(a);
  EXPECT_EQ(ev.IsFeasible(), plan.feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---- Analytic disk model invariants across a grid ----

class AnalyticSweep : public ::testing::TestWithParam<double> {};

TEST_P(AnalyticSweep, MonotoneAndPositive) {
  const double ws_gb = GetParam();
  model::AnalyticConfig cfg;
  const double ws = ws_gb * 1e9;
  double prev = 0;
  for (double rate = 100; rate <= 25600; rate *= 2) {
    const double v = model::AnalyticWriteBytesPerSec(cfg, ws, rate);
    EXPECT_GT(v, prev);  // strictly increasing in rate
    prev = v;
    // Never exceeds the no-coalescing bound: log + one page per row.
    EXPECT_LE(v, rate * (cfg.log_bytes_per_row + cfg.page_bytes) * 1.001);
  }
  const sim::DiskSpec raid = sim::DiskSpec::Raid10();
  const double max_rate = model::AnalyticMaxRate(raid, cfg, ws);
  EXPECT_GT(max_rate, 0);
  // Just below the frontier is sustainable; just above is not.
  EXPECT_LT(model::AnalyticDiskBusyFraction(raid, cfg, ws, max_rate * 0.98), 1.0);
  EXPECT_GT(model::AnalyticDiskBusyFraction(raid, cfg, ws, max_rate * 1.05), 1.0);
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, AnalyticSweep,
                         ::testing::Values(0.5, 2.0, 8.0, 32.0, 96.0));

}  // namespace
}  // namespace kairos
