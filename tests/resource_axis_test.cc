// Resource-axis layer integration coverage: (a) the legacy shared disk
// model and per-class disk models resolving to the same model are
// byte-for-byte equivalent across every registered solver and 1/2/4
// portfolio threads, (b) the hard drain mask shrinks the search space and
// keeps every solver off drained servers, (c) the migration ledger's
// disk-aware spill check flags a staged plan that transiently overloads a
// spindle-bound server (pre-refactor this plan staged "safe" because the
// ledger checked CPU/RAM only), and (d) per-class disk models genuinely
// change placement: update-heavy workloads land on the RAID class.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "model/analytic.h"
#include "online/migration.h"
#include "sim/capacity.h"
#include "sim/disk.h"
#include "sim/fleet.h"
#include "solve/portfolio.h"
#include "solve/solver.h"
#include "trace/scenario.h"
#include "util/rng.h"
#include "util/units.h"

namespace kairos {
namespace {

monitor::WorkloadProfile MakeProfile(const std::string& name, double cpu_cores,
                                     double ram_gb, double rows_per_sec,
                                     int samples = 6) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, samples, cpu_cores);
  p.ram_bytes = util::TimeSeries::Constant(300, samples,
                                           ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, samples, rows_per_sec);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

std::shared_ptr<const model::DiskModel> SpindleModel() {
  static const auto model = std::make_shared<const model::DiskModel>(
      model::BuildAnalyticModel(sim::DiskSpec{}, model::AnalyticConfig{}, 96e9,
                                4000.0));
  return model;
}

std::shared_ptr<const model::DiskModel> RaidModel() {
  static const auto model = std::make_shared<const model::DiskModel>(
      model::BuildAnalyticModel(sim::DiskSpec::Raid10(), model::AnalyticConfig{},
                                120e9, 20000.0));
  return model;
}

solve::SolveBudget SmallBudget() {
  solve::SolveBudget budget;
  budget.max_iterations = 4000;
  budget.direct_evaluations = 400;
  budget.probe_direct_evaluations = 150;
  budget.local_search_max_sweeps = 20;
  return budget;
}

std::vector<solve::PortfolioSolverSpec> AllSolverSpecs(uint64_t seed) {
  std::vector<solve::PortfolioSolverSpec> specs;
  for (const std::string& name : solve::RegisteredSolverNames()) {
    specs.push_back({name, seed});
    seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Legacy shared model == per-class same model, byte-for-byte
// ---------------------------------------------------------------------------

/// Disk-exercising workload mix on a uniform split fleet. `per_class`
/// attaches the spindle model to every class; false uses the legacy shared
/// problem field. Both must take identical code paths and produce
/// bit-identical numbers.
core::ConsolidationProblem DiskEquivalenceProblem(bool per_class) {
  constexpr int kServers = 8;
  core::ConsolidationProblem prob;
  for (int i = 0; i < 7; ++i) {
    prob.workloads.push_back(MakeProfile("w" + std::to_string(i),
                                         0.4 + 0.15 * i, 4.0 + 1.5 * i,
                                         30.0 + 45.0 * i));
  }
  prob.workloads[2].replicas = 2;
  prob.anti_affinity = {{1, 5}};
  const sim::MachineSpec target = sim::MachineSpec::ConsolidationTarget();
  prob.fleet.classes.clear();
  prob.fleet.AddClass(target, 3, 1.0).AddClass(target, kServers - 3, 1.0);
  if (per_class) {
    // One shared_ptr for every class: UniformMachines() stays true, so the
    // solver gates match the legacy path exactly.
    for (auto& c : prob.fleet.classes) c.disk_model = SpindleModel();
  } else {
    prob.disk_model = SpindleModel().get();
  }
  EXPECT_TRUE(prob.fleet.Uniform());
  return prob;
}

TEST(ResourceAxisEquivalenceTest, EvaluatorBitIdentical) {
  const core::ConsolidationProblem legacy = DiskEquivalenceProblem(false);
  const core::ConsolidationProblem per_class = DiskEquivalenceProblem(true);
  core::Evaluator ev_legacy(legacy, legacy.ServerCap());
  core::Evaluator ev_class(per_class, per_class.ServerCap());
  ASSERT_EQ(ev_legacy.num_slots(), ev_class.num_slots());

  util::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> assignment(ev_legacy.num_slots());
    for (int& a : assignment) {
      a = static_cast<int>(rng.UniformInt(0, legacy.ServerCap() - 1));
    }
    EXPECT_EQ(ev_legacy.Evaluate(assignment), ev_class.Evaluate(assignment));
  }
  // The greedy packers and the bound see the same per-class axis.
  EXPECT_EQ(core::FractionalLowerBound(legacy),
            core::FractionalLowerBound(per_class));
}

TEST(ResourceAxisEquivalenceTest, EverySolverBitIdentical) {
  const core::ConsolidationProblem legacy = DiskEquivalenceProblem(false);
  const core::ConsolidationProblem per_class = DiskEquivalenceProblem(true);
  const solve::SolveBudget budget = SmallBudget();

  for (const std::string& name : solve::RegisteredSolverNames()) {
    auto solver_legacy = solve::SolverRegistry::Global().Create(name, 23);
    auto solver_class = solve::SolverRegistry::Global().Create(name, 23);
    ASSERT_NE(solver_legacy, nullptr) << name;
    const core::ConsolidationPlan a = solver_legacy->Solve(legacy, budget, nullptr);
    const core::ConsolidationPlan b = solver_class->Solve(per_class, budget, nullptr);
    EXPECT_EQ(a.assignment.server_of_slot, b.assignment.server_of_slot) << name;
    EXPECT_EQ(a.objective, b.objective) << name;
    EXPECT_EQ(a.feasible, b.feasible) << name;
  }
}

TEST(ResourceAxisEquivalenceTest, PortfolioBitIdenticalAcross124Threads) {
  const core::ConsolidationProblem legacy = DiskEquivalenceProblem(false);
  const core::ConsolidationProblem per_class = DiskEquivalenceProblem(true);
  const std::vector<solve::PortfolioSolverSpec> specs = AllSolverSpecs(31);

  std::vector<int> reference;
  for (int threads : {1, 2, 4}) {
    solve::PortfolioOptions options;
    options.threads = threads;
    options.budget = SmallBudget();
    const solve::PortfolioResult r_legacy =
        solve::PortfolioRunner(options).Run(legacy, specs);
    const solve::PortfolioResult r_class =
        solve::PortfolioRunner(options).Run(per_class, specs);
    ASSERT_GE(r_legacy.winner_index, 0);
    EXPECT_EQ(r_legacy.best.assignment.server_of_slot,
              r_class.best.assignment.server_of_slot)
        << threads << " threads";
    EXPECT_EQ(r_legacy.best.objective, r_class.best.objective);
    EXPECT_EQ(r_legacy.winner, r_class.winner);
    if (reference.empty()) {
      reference = r_legacy.best.assignment.server_of_slot;
    } else {
      EXPECT_EQ(r_legacy.best.assignment.server_of_slot, reference)
          << threads << " threads vs 1";
    }
  }
}

// ---------------------------------------------------------------------------
// Hard drain mask
// ---------------------------------------------------------------------------

TEST(DrainMaskTest, ShrinksSearchSpaceAndKeepsSolversOffDrainedServers) {
  // A big fleet with most of it drained: 30 drained legacy boxes ahead of
  // 20 live ones. The mask must shrink every solver's target set to the
  // live 20 outright — not just penalize the drained 30.
  const sim::MachineSpec target = sim::MachineSpec::ConsolidationTarget();
  core::ConsolidationProblem prob;
  for (int i = 0; i < 8; ++i) {
    prob.workloads.push_back(MakeProfile("w" + std::to_string(i),
                                         0.5 + 0.1 * i, 5.0 + 1.0 * i, 20.0));
  }
  prob.fleet.classes.clear();
  prob.fleet.AddClass(target, 30, 1.0).AddClass(target, 20, 1.0);
  prob.fleet.classes[0].drained = true;
  const int cap = prob.ServerCap();
  ASSERT_EQ(cap, 50);

  // The search space genuinely shrank: 20 placable targets, all in the
  // live class.
  const std::vector<int> placable = prob.fleet.PlacableServers(cap);
  ASSERT_EQ(static_cast<int>(placable.size()), 20);
  for (int j : placable) EXPECT_GE(j, 30);

  // Every registered solver stays off the drained class.
  const solve::SolveBudget budget = SmallBudget();
  for (const std::string& name : solve::RegisteredSolverNames()) {
    auto solver = solve::SolverRegistry::Global().Create(name, 7);
    ASSERT_NE(solver, nullptr) << name;
    const core::ConsolidationPlan plan = solver->Solve(prob, budget, nullptr);
    for (int s : plan.assignment.server_of_slot) {
      EXPECT_FALSE(prob.fleet.DrainedServer(s))
          << name << " placed a slot on drained server " << s;
    }
  }
}

// ---------------------------------------------------------------------------
// Disk-aware migration spill check (regression)
// ---------------------------------------------------------------------------

/// Two update-heavy tenants and three spindle-disk servers. CPU and RAM
/// fit everywhere; only the disk axis distinguishes the plans.
core::ConsolidationProblem SpindleBoundProblem() {
  core::ConsolidationProblem prob;
  const double rate = 0.55 * SpindleModel()->MaxSustainableRate(10e9);
  prob.workloads = {MakeProfile("a", 0.4, 8.0, rate, 4),
                    MakeProfile("b", 0.4, 8.0, rate, 4)};
  sim::MachineSpec spindle = sim::MachineSpec::ConsolidationTarget();
  spindle.name = "spindle";
  prob.fleet.classes.clear();
  prob.fleet.AddClass(spindle, 3, 1.0).WithClassDisk(SpindleModel());
  return prob;
}

TEST(DiskAwareLedgerTest, TransientSpindleOverloadFlaggedUnsafe) {
  // Regression: pre-refactor the ledger checked CPU/RAM only, so staging
  // both update-heavy tenants onto one spindle box passed as "safe" for
  // the wrong reason. The disk-aware spill check must refuse: one tenant
  // fits (55% of the sustainable rate), two together (110%) never do.
  const core::ConsolidationProblem prob = SpindleBoundProblem();
  const online::MigrationPlan bad =
      online::MigrationPlanner(/*max_stages=*/6).Plan(prob, {0, 1}, {2, 2});
  EXPECT_FALSE(bad.safe)
      << "disk-overloading staged plan was admitted:\n" << bad.Render();

  // The equivalent non-overloading plan still stages cleanly.
  const online::MigrationPlan good =
      online::MigrationPlanner().Plan(prob, {0, 1}, {2, 0});
  EXPECT_TRUE(good.safe) << good.Render();
  EXPECT_EQ(good.total_moves(), 2);
}

TEST(DiskAwareLedgerTest, LedgerTracksRateAndWorkingSet) {
  sim::FleetSpec fleet;
  fleet.AddClass(sim::MachineSpec::ConsolidationTarget(), 2, 1.0)
      .WithClassDisk(SpindleModel());
  sim::CapacityLedger ledger(fleet, 2, 4, 0.9, 0.95, 0.0);

  const std::vector<double> cpu(4, 0.5);
  const std::vector<double> ram(4, 4.0 * static_cast<double>(util::kGiB));
  const double cap = SpindleModel()->MaxSustainableRate(20e9);
  const std::vector<double> rate(4, 0.55 * cap);

  EXPECT_TRUE(ledger.CanAdd(0, cpu, ram, rate, 10e9));
  ledger.Add(0, cpu, ram, rate, 10e9);
  EXPECT_GT(ledger.PeakDiskFraction(0), 0.5);
  // A second identical tenant would exceed the headroomed frontier at the
  // *combined* working set.
  EXPECT_FALSE(ledger.CanAdd(0, cpu, ram, rate, 10e9));
  // CPU/RAM-only admission still passes: disk is what binds.
  EXPECT_TRUE(ledger.CanAdd(0, cpu, ram));
  // The other (empty) server takes it.
  EXPECT_TRUE(ledger.CanAdd(1, cpu, ram, rate, 10e9));
  // Removing the load frees the axis again.
  ledger.Remove(0, cpu, ram, rate, 10e9);
  EXPECT_TRUE(ledger.CanAdd(0, cpu, ram, rate, 10e9));
  EXPECT_EQ(ledger.PeakDiskFraction(0), 0.0);
}

// ---------------------------------------------------------------------------
// Per-class disk models change placement
// ---------------------------------------------------------------------------

TEST(RaidVsSpindleTest, UpdateHeavyWorkloadsLandOnRaidClass) {
  trace::ScenarioConfig config;
  config.workloads = 8;
  config.steps = 8;
  config.seed = 5;
  const trace::FleetScenario scenario = trace::MakeFleetScenario(
      trace::FleetScenarioKind::kRaidVsSpindle, config);
  ASSERT_EQ(scenario.raid_class, 1);
  ASSERT_FALSE(scenario.update_heavy.empty());
  ASSERT_TRUE(scenario.fleet.AnyClassDisk());

  solve::PortfolioOptions options;
  options.budget = SmallBudget();

  core::ConsolidationProblem with_disk;
  with_disk.workloads = scenario.profiles;
  with_disk.fleet = scenario.fleet;
  const solve::PortfolioResult solved =
      solve::PortfolioRunner(options).Run(with_disk, AllSolverSpecs(9));
  ASSERT_TRUE(solved.best.feasible);

  core::ConsolidationProblem without_disk = with_disk;
  for (auto& c : without_disk.fleet.classes) c.disk_model.reset();
  const solve::PortfolioResult blind =
      solve::PortfolioRunner(options).Run(without_disk, AllSolverSpecs(9));
  ASSERT_TRUE(blind.best.feasible);

  auto heavy_on_raid = [&](const core::ConsolidationPlan& plan) {
    int n = 0;
    for (int w : scenario.update_heavy) {
      if (scenario.fleet.ClassOf(plan.assignment.server_of_slot[w]) ==
          scenario.raid_class) {
        ++n;
      }
    }
    return n;
  };
  const int aware = heavy_on_raid(solved.best);
  const int unaware = heavy_on_raid(blind.best);
  // The per-class models pull the update-heavy tenants onto RAID; without
  // them the cheaper spindle class absorbs everything.
  EXPECT_GT(aware, static_cast<int>(scenario.update_heavy.size()) / 2);
  EXPECT_GT(aware, unaware);
  EXPECT_EQ(unaware, 0);
}

}  // namespace
}  // namespace kairos
