#include <gtest/gtest.h>

#include <memory>

#include "db/server.h"
#include "monitor/gauge.h"
#include "monitor/resource_monitor.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"
#include "workload/patterns.h"

namespace kairos::monitor {
namespace {

workload::MicroSpec Spec(uint64_t ws_mb, double tps, double cpu_us = 300) {
  workload::MicroSpec spec;
  spec.working_set_bytes = ws_mb * util::kMiB;
  spec.data_bytes = 2 * ws_mb * util::kMiB;
  spec.reads_per_tx = 4;
  spec.updates_per_tx = 2;
  spec.cpu_us_per_tx = cpu_us;
  spec.pattern = std::make_shared<workload::FlatPattern>(tps);
  return spec;
}

TEST(ResourceMonitorTest, CpuSeriesMatchesLoad) {
  db::Server server(sim::MachineSpec::Server1(), db::DbmsConfig{}, 5);
  workload::MicroWorkload w("m", Spec(32, 500, 1000));  // 0.5 cores of tx CPU
  workload::Driver driver(&server, 5);
  driver.AddWorkload(&w);
  driver.Warm();
  ResourceMonitor monitor(MonitorConfig{});
  const auto profiles = monitor.Collect(&driver, 10.0, {&w});
  ASSERT_EQ(profiles.size(), 1u);
  const auto& p = profiles[0];
  EXPECT_EQ(p.cpu_cores.size(), 10u);
  // ~0.5 cores tx CPU + overheads.
  EXPECT_NEAR(p.cpu_cores.Mean(), 0.58, 0.15);
}

TEST(ResourceMonitorTest, UpdateRateMatchesWorkload) {
  db::Server server(sim::MachineSpec::Server1(), db::DbmsConfig{}, 5);
  workload::MicroWorkload w("m", Spec(32, 200));
  workload::Driver driver(&server, 5);
  driver.AddWorkload(&w);
  driver.Warm();
  ResourceMonitor monitor(MonitorConfig{});
  const auto profiles = monitor.Collect(&driver, 8.0, {&w});
  // 200 tps x 2 updates = 400 rows/sec.
  EXPECT_NEAR(profiles[0].update_rows_per_sec.Mean(), 400, 40);
}

TEST(ResourceMonitorTest, GaugedRamOverridesDeclared) {
  db::Server server(sim::MachineSpec::Server1(), db::DbmsConfig{}, 5);
  workload::MicroWorkload w("m", Spec(32, 100));
  workload::Driver driver(&server, 5);
  driver.AddWorkload(&w);
  driver.Warm();
  ResourceMonitor monitor(MonitorConfig{});
  const auto profiles =
      monitor.Collect(&driver, 4.0, {&w}, {{"m", 77 * util::kMiB}});
  EXPECT_DOUBLE_EQ(profiles[0].ram_bytes.Max(),
                   static_cast<double>(77 * util::kMiB));
}

TEST(ResourceMonitorTest, ScaledRamFallback) {
  db::Server server(sim::MachineSpec::Server1(), db::DbmsConfig{}, 5);
  workload::MicroWorkload w("m", Spec(32, 100));
  workload::Driver driver(&server, 5);
  driver.AddWorkload(&w);
  driver.Warm();
  MonitorConfig cfg;
  cfg.use_gauged_ram = false;
  cfg.ram_scaling = 0.5;
  ResourceMonitor monitor(cfg);
  const auto profiles = monitor.Collect(&driver, 4.0, {&w});
  // Scaled RAM is half of the OS-reported allocation.
  EXPECT_NEAR(profiles[0].ram_bytes.Mean(), 0.5 * profiles[0].os_ram_bytes.Mean(),
              0.05 * profiles[0].os_ram_bytes.Mean());
}

TEST(ResourceMonitorTest, OsStatsOverestimateRam) {
  // The gap that motivates gauging: allocated RSS >> true working set.
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 512 * util::kMiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, 5);
  workload::MicroWorkload w("m", Spec(64, 300));  // 64 MB true WS
  workload::Driver driver(&server, 5);
  driver.AddWorkload(&w);
  driver.Warm();
  ResourceMonitor monitor(MonitorConfig{});
  const auto profiles = monitor.Collect(&driver, 6.0, {&w});
  EXPECT_GT(profiles[0].os_ram_bytes.Mean(), 0.9 * profiles[0].ram_bytes.Mean());
}

// ---- Buffer pool gauging ----

TEST(GaugeTest, FindsWorkingSetOfMicroWorkload) {
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 512 * util::kMiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, 5);
  // True working set 160 MB inside a 512 MB pool.
  workload::MicroWorkload w("m", Spec(160, 400));
  workload::Driver driver(&server, 5);
  driver.AddWorkload(&w);
  driver.Warm();
  driver.Run(2.0);

  BufferPoolGauge gauge(GaugeConfig{});
  const GaugeResult result = gauge.Run(&driver);
  // Estimate within ~25% of the true working set.
  EXPECT_NEAR(static_cast<double>(result.working_set_bytes),
              static_cast<double>(160 * util::kMiB),
              0.25 * 160 * util::kMiB);
  EXPECT_GT(result.stolen_bytes, 200 * util::kMiB);  // stole the slack
  EXPECT_FALSE(result.curve.empty());
}

TEST(GaugeTest, CurveFlatThenRising) {
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 256 * util::kMiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, 5);
  workload::MicroWorkload w("m", Spec(128, 400));
  workload::Driver driver(&server, 5);
  driver.AddWorkload(&w);
  driver.Warm();
  driver.Run(2.0);

  BufferPoolGauge gauge(GaugeConfig{});
  const GaugeResult result = gauge.Run(&driver);
  ASSERT_GT(result.curve.size(), 3u);
  // Early points: near-zero reads. Final point: elevated reads.
  EXPECT_LT(result.curve.front().reads_per_sec, 10.0);
  EXPECT_GT(result.curve.back().reads_per_sec,
            result.curve.front().reads_per_sec + 20.0);
}

TEST(GaugeTest, WorkloadThroughputSurvivesGauging) {
  // Table 2's property: gauging must not hurt user throughput.
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 512 * util::kMiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, 5);
  workload::MicroWorkload w("m", Spec(128, 300));
  workload::Driver driver(&server, 5);
  driver.AddWorkload(&w);
  driver.Warm();
  driver.Run(2.0);
  const db::DbCounters before = w.database()->lifetime();

  BufferPoolGauge gauge(GaugeConfig{});
  gauge.Run(&driver);
  const db::DbCounters after = w.database()->lifetime();
  const int64_t submitted = after.submitted_tx - before.submitted_tx;
  const int64_t completed = after.completed_tx - before.completed_tx;
  ASSERT_GT(submitted, 0);
  const double fraction =
      static_cast<double>(completed) / static_cast<double>(submitted);
  // The paper's Table 2 bound: gauging costs only a small slice of
  // throughput even while actively probing (they report <5% at saturation;
  // our probe overshoots the knee slightly harder, costing up to ~8%).
  EXPECT_GT(fraction, 0.90);
}

TEST(GaugeTest, StopsBeforeStealingEverything) {
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 256 * util::kMiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, 5);
  workload::MicroWorkload w("m", Spec(200, 500));  // WS ~78% of pool
  workload::Driver driver(&server, 5);
  driver.AddWorkload(&w);
  driver.Warm();
  driver.Run(2.0);

  BufferPoolGauge gauge(GaugeConfig{});
  const GaugeResult result = gauge.Run(&driver);
  // Most of the pool is needed; only a sliver can be stolen.
  EXPECT_LT(result.stolen_bytes, 130 * util::kMiB);
}

}  // namespace
}  // namespace kairos::monitor
