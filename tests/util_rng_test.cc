#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace kairos::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZipfWithinRange) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Zipf(100, 0.5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, ZipfSkewFavorsLowRanks) {
  Rng rng(31);
  int low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(1000, 0.8) < 100) ++low;
  }
  // With strong skew, far more than 10% of samples land in the lowest 10%.
  EXPECT_GT(static_cast<double>(low) / n, 0.3);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(37);
  EXPECT_EQ(rng.Zipf(1, 0.5), 0);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanMatches) {
  const double mean = GetParam();
  Rng rng(41 + static_cast<uint64_t>(mean * 1000));
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 20.0, 100.0, 500.0));

TEST(RngTest, PoissonZeroMean) {
  Rng rng(43);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

}  // namespace
}  // namespace kairos::util
