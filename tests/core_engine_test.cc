#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "util/units.h"

namespace kairos::core {
namespace {

monitor::WorkloadProfile MakeProfile(const std::string& name, double cpu_cores,
                                     double ram_gb, double rows = 0,
                                     int samples = 6) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, samples, cpu_cores);
  p.ram_bytes = util::TimeSeries::Constant(300, samples,
                                           ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, samples, rows);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

TEST(GreedyTest, PacksByRam) {
  ConsolidationProblem prob;
  for (int i = 0; i < 6; ++i) prob.workloads.push_back(MakeProfile("w", 0.2, 30.0));
  // 96 GB * 0.95 - overhead: three 30 GB workloads fit per server.
  const GreedyResult g = GreedySingleResource(prob, Resource::kRam);
  EXPECT_TRUE(g.feasible);
  EXPECT_EQ(g.servers_used, 2);
}

TEST(GreedyTest, SingleResourceBlindSpot) {
  // RAM-greedy packs 3 per server, but CPU then overflows: greedy-by-RAM
  // must be reported infeasible (the paper's Figure 7 "no result" case).
  ConsolidationProblem prob;
  for (int i = 0; i < 6; ++i) prob.workloads.push_back(MakeProfile("w", 5.0, 30.0));
  const GreedyResult by_ram = GreedySingleResource(prob, Resource::kRam);
  EXPECT_FALSE(by_ram.feasible);
  // But greedy-by-CPU happens to produce a feasible packing here.
  const GreedyResult best = GreedyBaseline(prob);
  EXPECT_TRUE(best.feasible);
  EXPECT_EQ(best.servers_used, 3);  // 10.8 usable cores -> 2 x 5.0 per server
}

TEST(GreedyTest, MultiResourceAlwaysCompletes) {
  ConsolidationProblem prob;
  for (int i = 0; i < 5; ++i) prob.workloads.push_back(MakeProfile("w", 3.0, 25.0));
  bool feasible = false;
  const Assignment a = GreedyMultiResource(prob, 0, &feasible);
  EXPECT_TRUE(feasible);
  EXPECT_EQ(a.server_of_slot.size(), 5u);
  Evaluator ev(prob, 5);
  ev.Load(a.server_of_slot);
  EXPECT_TRUE(ev.IsFeasible());
}

TEST(GreedyTest, FractionalBound) {
  ConsolidationProblem prob;
  // 10 workloads x 24 GB = 240 GB; capacity 91.2 GB -> ceil = 3.
  for (int i = 0; i < 10; ++i) prob.workloads.push_back(MakeProfile("w", 0.5, 24.0));
  EXPECT_EQ(FractionalLowerBound(prob), 3);
}

TEST(GreedyTest, FractionalBoundCpuBinding) {
  ConsolidationProblem prob;
  // 8 workloads x 4 cores = 32 cores; capacity 10.8 -> ceil = 3.
  for (int i = 0; i < 8; ++i) prob.workloads.push_back(MakeProfile("w", 4.0, 2.0));
  EXPECT_EQ(FractionalLowerBound(prob), 3);
}

TEST(EngineTest, TrivialSingleServer) {
  ConsolidationProblem prob;
  for (int i = 0; i < 4; ++i) prob.workloads.push_back(MakeProfile("w", 0.5, 8.0));
  ConsolidationEngine engine(prob, EngineOptions{});
  const ConsolidationPlan plan = engine.Solve();
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, 1);
  EXPECT_DOUBLE_EQ(plan.consolidation_ratio, 4.0);
}

TEST(EngineTest, FindsMinimalServerCount) {
  // 6 x 40 GB: two per server -> 3 servers minimum.
  ConsolidationProblem prob;
  for (int i = 0; i < 6; ++i) prob.workloads.push_back(MakeProfile("w", 0.5, 40.0));
  ConsolidationEngine engine(prob, EngineOptions{});
  const ConsolidationPlan plan = engine.Solve();
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, 3);
  EXPECT_EQ(plan.fractional_lower_bound, 3);
}

TEST(EngineTest, MatchesIdealizedBoundWhenPossible) {
  ConsolidationProblem prob;
  for (int i = 0; i < 12; ++i) prob.workloads.push_back(MakeProfile("w", 1.0, 14.0));
  ConsolidationEngine engine(prob, EngineOptions{});
  const ConsolidationPlan plan = engine.Solve();
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, plan.fractional_lower_bound);
}

TEST(EngineTest, ReplicasOnDistinctServers) {
  ConsolidationProblem prob;
  prob.workloads.push_back(MakeProfile("r", 0.5, 8.0));
  prob.workloads.back().replicas = 3;
  prob.workloads.push_back(MakeProfile("s", 0.5, 8.0));
  ConsolidationEngine engine(prob, EngineOptions{});
  const ConsolidationPlan plan = engine.Solve();
  EXPECT_TRUE(plan.feasible);
  // Three replicas need three distinct servers.
  EXPECT_GE(plan.servers_used, 3);
  const auto& a = plan.assignment.server_of_slot;
  EXPECT_NE(a[0], a[1]);
  EXPECT_NE(a[0], a[2]);
  EXPECT_NE(a[1], a[2]);
}

TEST(EngineTest, PinningRespected) {
  ConsolidationProblem prob;
  for (int i = 0; i < 3; ++i) prob.workloads.push_back(MakeProfile("w", 0.5, 8.0));
  prob.workloads[1].pinned_server = 2;
  prob.max_servers = 4;
  ConsolidationEngine engine(prob, EngineOptions{});
  const ConsolidationPlan plan = engine.Solve();
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.assignment.server_of_slot[1], 2);
}

TEST(EngineTest, HeterogeneousLoadsBalanced) {
  ConsolidationProblem prob;
  for (int i = 0; i < 4; ++i) prob.workloads.push_back(MakeProfile("big", 3.0, 30.0));
  for (int i = 0; i < 8; ++i) prob.workloads.push_back(MakeProfile("small", 0.3, 6.0));
  ConsolidationEngine engine(prob, EngineOptions{});
  const ConsolidationPlan plan = engine.Solve();
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, 2);
  // Each server should carry roughly half the RAM.
  ASSERT_EQ(plan.server_loads.size(), 2u);
  const double r0 = plan.server_loads[0].ram_bytes[0];
  const double r1 = plan.server_loads[1].ram_bytes[0];
  EXPECT_NEAR(r0 / (r0 + r1), 0.5, 0.15);
}

TEST(EngineTest, BoundedAndUnboundedAgree) {
  ConsolidationProblem prob;
  for (int i = 0; i < 8; ++i) {
    prob.workloads.push_back(MakeProfile("w" + std::to_string(i), 1.0 + 0.2 * i,
                                         10.0 + 2.0 * i));
  }
  EngineOptions bounded;
  EngineOptions unbounded;
  unbounded.use_bounded_k = false;
  unbounded.direct_evaluations = 2000;
  const ConsolidationPlan p1 = ConsolidationEngine(prob, bounded).Solve();
  const ConsolidationPlan p2 = ConsolidationEngine(prob, unbounded).Solve();
  EXPECT_TRUE(p1.feasible);
  EXPECT_TRUE(p2.feasible);
  // The bounded search never does worse on server count.
  EXPECT_LE(p1.servers_used, p2.servers_used);
}

TEST(EngineTest, TimeVaryingAntiCorrelatedLoadsShareServer) {
  // Two workloads each peaking at 8 cores but at different times fit on
  // one 12-core machine only because the engine uses time series.
  ConsolidationProblem prob;
  monitor::WorkloadProfile a = MakeProfile("a", 0, 8.0);
  a.cpu_cores = util::TimeSeries(300, {8.0, 8.0, 0.5, 0.5});
  monitor::WorkloadProfile b = MakeProfile("b", 0, 8.0);
  b.cpu_cores = util::TimeSeries(300, {0.5, 0.5, 8.0, 8.0});
  prob.workloads = {a, b};
  ConsolidationEngine engine(prob, EngineOptions{});
  const ConsolidationPlan plan = engine.Solve();
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, 1);

  // Correlated peaks (both at once) cannot share.
  ConsolidationProblem prob2;
  monitor::WorkloadProfile c = a;
  prob2.workloads = {a, c};
  const ConsolidationPlan plan2 = ConsolidationEngine(prob2, EngineOptions{}).Solve();
  EXPECT_TRUE(plan2.feasible);
  EXPECT_EQ(plan2.servers_used, 2);
}

TEST(EngineTest, RenderProducesSummary) {
  ConsolidationProblem prob;
  for (int i = 0; i < 3; ++i) prob.workloads.push_back(MakeProfile("w", 0.5, 8.0));
  const ConsolidationPlan plan = ConsolidationEngine(prob, EngineOptions{}).Solve();
  const std::string text = plan.Render();
  EXPECT_NE(text.find("FEASIBLE"), std::string::npos);
  EXPECT_NE(text.find("server"), std::string::npos);
}

}  // namespace
}  // namespace kairos::core
