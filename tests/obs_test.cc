// Tests for the observability substrate (src/obs/) and its acceptance
// contract: deterministic snapshots and merged traces, and — the hard
// requirement — identical solver/controller results with a sink attached
// vs detached, at every portfolio thread count.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "online/controller.h"
#include "online/telemetry.h"
#include "solve/portfolio.h"
#include "trace/scenario.h"
#include "util/units.h"

namespace kairos {
namespace {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, CounterSumsStripedWritesExactly) {
  obs::Registry registry;
  obs::Counter* c = registry.counter("writes");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add(1);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kPerThread);
}

TEST(RegistryTest, HandlesAreStableAndSharedByName) {
  obs::Registry registry;
  obs::Counter* a = registry.counter("same");
  obs::Counter* b = registry.counter("same");
  EXPECT_EQ(a, b);
  a->Add(2);
  b->Add(3);
  EXPECT_EQ(a->Value(), 5);
}

TEST(RegistryTest, SnapshotListsSortedByName) {
  obs::Registry registry;
  registry.counter("zebra")->Add(1);
  registry.counter("alpha")->Add(2);
  registry.counter("mid")->Add(3);
  registry.gauge("g.z")->Set(1.5);
  registry.gauge("g.a")->Set(-2.0);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "g.a");
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, -2.0);
}

TEST(RegistryTest, HistogramBucketsAndOverflow) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("lat", {0.1, 1.0, 10.0});
  h->Observe(0.05);   // bucket 0
  h->Observe(0.5);    // bucket 1
  h->Observe(0.5);    // bucket 1
  h->Observe(5.0);    // bucket 2
  h->Observe(100.0);  // overflow
  const std::vector<int64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h->TotalCount(), 5);
  EXPECT_NEAR(h->Sum(), 106.05, 1e-9);
}

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, MergedTraceOrdersByTrackThenSeq) {
  obs::TraceSink trace;
  const uint32_t ta = trace.InternTrack("a");
  const uint32_t tb = trace.InternTrack("b");
  const uint32_t name = trace.InternName("e");
  // Interleave emissions across tracks; the merge must come back grouped by
  // track, each track in emission (seq) order.
  trace.Emit(ta, name, obs::EventKind::kPoint, 1);
  trace.Emit(tb, name, obs::EventKind::kPoint, 10);
  trace.Emit(ta, name, obs::EventKind::kPoint, 2);
  trace.Emit(tb, name, obs::EventKind::kPoint, 20);
  const std::vector<obs::TraceEvent> merged = trace.MergedTrace();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].track, ta);
  EXPECT_EQ(merged[0].i0, 1);
  EXPECT_EQ(merged[1].track, ta);
  EXPECT_EQ(merged[1].i0, 2);
  EXPECT_EQ(merged[2].track, tb);
  EXPECT_EQ(merged[2].i0, 10);
  EXPECT_EQ(merged[3].track, tb);
  EXPECT_EQ(merged[3].i0, 20);
}

TEST(TraceSinkTest, PerThreadRingsMergeWithoutLoss) {
  obs::TraceSink trace;
  const uint32_t name = trace.InternName("e");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  // One track per thread (the substrate's single-writer-per-track
  // contract), each emitting a deterministic sequence.
  std::vector<uint32_t> tracks;
  for (int t = 0; t < kThreads; ++t) {
    tracks.push_back(trace.InternTrack("thread/" + std::to_string(t)));
  }
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&trace, &tracks, name, t] {
      for (int i = 0; i < kPerThread; ++i) {
        trace.Emit(tracks[t], name, obs::EventKind::kPoint, i);
      }
    });
  }
  for (auto& th : pool) th.join();
  const std::vector<obs::TraceEvent> merged = trace.MergedTrace();
  ASSERT_EQ(merged.size(), size_t{kThreads} * kPerThread);
  EXPECT_EQ(trace.dropped_events(), 0);
  // Within each track, i0 must come back 0..kPerThread-1 in order.
  size_t idx = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i, ++idx) {
      ASSERT_EQ(merged[idx].track, tracks[t]);
      ASSERT_EQ(merged[idx].i0, i);
    }
  }
}

TEST(TraceSinkTest, BoundedRingDropsNewestAndCounts) {
  obs::TraceSink trace(/*ring_capacity=*/8);
  const uint32_t track = trace.InternTrack("t");
  const uint32_t name = trace.InternName("e");
  for (int i = 0; i < 20; ++i) {
    trace.Emit(track, name, obs::EventKind::kPoint, i);
  }
  const std::vector<obs::TraceEvent> merged = trace.MergedTrace();
  EXPECT_EQ(merged.size(), 8u);
  EXPECT_EQ(trace.dropped_events(), 12);
  // The stored prefix keeps contiguous seq numbers (drops never burn one).
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].i0, static_cast<int64_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Sink on/off identity
// ---------------------------------------------------------------------------

monitor::WorkloadProfile MakeProfile(const std::string& name, double cpu_cores,
                                     double ram_gb) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, 6, cpu_cores);
  p.ram_bytes =
      util::TimeSeries::Constant(300, 6, ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, 6, 0.0);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

core::ConsolidationProblem MixedProblem() {
  core::ConsolidationProblem prob;
  for (int i = 0; i < 4; ++i) {
    prob.workloads.push_back(MakeProfile("big" + std::to_string(i), 3.0, 30.0));
  }
  for (int i = 0; i < 8; ++i) {
    prob.workloads.push_back(MakeProfile("small" + std::to_string(i), 0.3, 6.0));
  }
  return prob;
}

solve::SolveBudget SmallBudget() {
  solve::SolveBudget budget;
  budget.max_iterations = 4000;
  budget.direct_evaluations = 400;
  budget.probe_direct_evaluations = 150;
  budget.local_search_max_sweeps = 20;
  return budget;
}

TEST(SinkIdentityTest, PortfolioPlansIdenticalWithSinkOnVsOffAtEveryThreadCount) {
  const core::ConsolidationProblem prob = MixedProblem();
  const auto specs = solve::PortfolioRunner::DefaultSpecs(17);

  solve::PortfolioOptions detached_options;
  detached_options.threads = 1;
  detached_options.budget = SmallBudget();
  const solve::PortfolioResult baseline =
      solve::PortfolioRunner(detached_options).Run(prob, specs);

  for (int threads : {1, 2, 4}) {
    obs::Sink sink;
    solve::PortfolioOptions options;
    options.threads = threads;
    options.budget = SmallBudget();
    options.budget.sink = &sink;
    const solve::PortfolioResult observed =
        solve::PortfolioRunner(options).Run(prob, specs);

    // The acceptance contract: observing the solve must not change it.
    EXPECT_EQ(observed.winner, baseline.winner) << threads;
    EXPECT_EQ(observed.best.objective, baseline.best.objective) << threads;
    EXPECT_EQ(observed.best.assignment.server_of_slot,
              baseline.best.assignment.server_of_slot)
        << threads;
    ASSERT_EQ(observed.members.size(), baseline.members.size());
    for (size_t i = 0; i < observed.members.size(); ++i) {
      EXPECT_EQ(observed.members[i].plan.objective,
                baseline.members[i].plan.objective)
          << "member " << i << " at " << threads << " threads";
      EXPECT_EQ(observed.members[i].plan.assignment.server_of_slot,
                baseline.members[i].plan.assignment.server_of_slot)
          << "member " << i << " at " << threads << " threads";
    }
  }
}

TEST(SinkIdentityTest, CountersAndCurvesStableAcrossThreadCounts) {
  const core::ConsolidationProblem prob = MixedProblem();
  const auto specs = solve::PortfolioRunner::DefaultSpecs(17);

  std::vector<obs::MetricsSnapshot> snapshots;
  std::vector<std::string> curve_signatures;
  for (int threads : {1, 2, 4}) {
    obs::Sink sink;
    solve::PortfolioOptions options;
    options.threads = threads;
    options.budget = SmallBudget();
    options.budget.sink = &sink;
    solve::PortfolioRunner(options).Run(prob, specs);
    snapshots.push_back(sink.metrics().Snapshot());

    // Signature of the deterministic event payloads: track/name/kind/seq
    // and the data fields, wall-clock excluded.
    const std::vector<obs::TraceEvent> merged = sink.trace().MergedTrace();
    const std::vector<std::string> tracks = sink.trace().TrackNames();
    const std::vector<std::string> names = sink.trace().EventNames();
    std::string signature;
    for (const obs::TraceEvent& e : merged) {
      signature += tracks[e.track] + "|" + names[e.name] + "|" +
                   std::to_string(static_cast<int>(e.kind)) + "|" +
                   std::to_string(e.seq) + "|" + std::to_string(e.i0) + "|" +
                   std::to_string(e.i1) + "|" + std::to_string(e.d0) + ";";
    }
    curve_signatures.push_back(signature);
  }

  for (size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].counters, snapshots[0].counters) << "threads run " << i;
    EXPECT_EQ(curve_signatures[i], curve_signatures[0]) << "threads run " << i;
  }
}

TEST(SinkIdentityTest, EveryPortfolioMemberExportsAnIncumbentCurve) {
  const core::ConsolidationProblem prob = MixedProblem();
  const auto specs = solve::PortfolioRunner::DefaultSpecs(17);
  obs::Sink sink;
  solve::PortfolioOptions options;
  options.threads = 2;
  options.budget = SmallBudget();
  options.budget.sink = &sink;
  solve::PortfolioRunner(options).Run(prob, specs);

  const std::vector<obs::TraceEvent> merged = sink.trace().MergedTrace();
  const std::vector<std::string> tracks = sink.trace().TrackNames();
  const std::vector<std::string> names = sink.trace().EventNames();
  std::set<std::string> curve_prefixes;
  for (const obs::TraceEvent& e : merged) {
    if (names[e.name] != "incumbent") continue;
    const std::string& track = tracks[e.track];
    curve_prefixes.insert(track.substr(0, track.find('/')));
  }
  for (const char* member : {"greedy", "engine", "anneal", "tabu"}) {
    EXPECT_TRUE(curve_prefixes.count(member)) << member;
  }
}

TEST(SinkIdentityTest, ControllerHistoryByteIdenticalWithSinkOnVsOff) {
  trace::ScenarioConfig scenario_config;
  scenario_config.steps = 48;
  scenario_config.seed = 11;
  const trace::ScenarioTelemetry scenario =
      trace::MakeScenario(trace::ScenarioKind::kDiurnal, scenario_config);

  online::ControllerConfig config;
  config.base.workloads = scenario.profiles;
  config.num_servers = 4;
  config.seed = 11;

  online::ConsolidationController plain(config);
  online::ReplayFeed plain_feed = online::ReplayFeed::FromProfiles(scenario.profiles);
  plain.RunToEnd(&plain_feed);

  obs::Sink sink;
  config.sink = &sink;
  online::ConsolidationController observed(config);
  online::ReplayFeed observed_feed =
      online::ReplayFeed::FromProfiles(scenario.profiles);
  observed.RunToEnd(&observed_feed);

  EXPECT_EQ(observed.RenderHistory(), plain.RenderHistory());
  ASSERT_FALSE(observed.history().empty());

  // The sink recorded the stage timeline: a detect/resolve/plan/ledger
  // tuple per adopted plan plus a detection-to-migration latency.
  const std::vector<obs::TraceEvent> merged = sink.trace().MergedTrace();
  const std::vector<std::string> names = sink.trace().EventNames();
  int detects = 0, resolves = 0, plans = 0, ledgers = 0, latencies = 0;
  for (const obs::TraceEvent& e : merged) {
    const std::string& n = names[e.name];
    detects += n == "detect";
    resolves += n == "resolve";
    plans += n == "plan";
    ledgers += n == "ledger";
    latencies += n == "detect_to_migrate";
  }
  const int adopted = static_cast<int>(observed.history().size());
  EXPECT_GE(detects, adopted);
  EXPECT_EQ(resolves, adopted);
  EXPECT_EQ(plans, adopted);
  EXPECT_EQ(ledgers, adopted);
  EXPECT_EQ(latencies, adopted);
  EXPECT_EQ(
      sink.metrics().counter("controller.resolves")->Value(), adopted);
}

// ---------------------------------------------------------------------------
// Engine probes + export
// ---------------------------------------------------------------------------

TEST(SinkExportTest, EngineRecordsProbesAndJsonCarriesRequiredKeys) {
  const core::ConsolidationProblem prob = MixedProblem();
  obs::Sink sink;
  core::EngineOptions options;
  options.direct_evaluations = 400;
  options.probe_direct_evaluations = 150;
  options.local_search_max_sweeps = 20;
  options.sink = &sink;
  const core::ConsolidationPlan plan =
      core::ConsolidationEngine(prob, options).Solve();

  EXPECT_GT(plan.probe_attempts, 0);
  EXPECT_EQ(sink.metrics().counter("engine.probes")->Value(),
            plan.probe_attempts);
  // Render()'s probe-rate line rides on the recorded attempts.
  EXPECT_NE(plan.Render().find("probes " + std::to_string(plan.probe_attempts)),
            std::string::npos);

  const std::string json = obs::ExportJsonString(sink);
  for (const char* key :
       {"\"meta\"", "\"counters\"", "\"gauges\"", "\"histograms\"",
        "\"probes\"", "\"incumbent_curves\"", "\"controller\"",
        "\"detection_to_migration_seconds\"", "\"events\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The probes view is populated (one entry per ProbeK/ProbeServers call).
  EXPECT_NE(json.find("\"type\": \"probe\""), std::string::npos);
  // The engine's incumbent curve came through with >= 1 point.
  EXPECT_NE(json.find("\"engine/1\": [{\"iteration\""), std::string::npos);
}

TEST(SinkExportTest, TextExportListsMetricsAndTrackCounts) {
  obs::Sink sink;
  sink.Count("alpha", 3);
  sink.metrics().gauge("beta")->Set(1.25);
  sink.Point("track-x", "event-y", 1);
  const std::string text = obs::ExportText(sink);
  EXPECT_NE(text.find("alpha = 3"), std::string::npos);
  EXPECT_NE(text.find("beta = 1.25"), std::string::npos);
  EXPECT_NE(text.find("track-x: 1 events"), std::string::npos);
}

}  // namespace
}  // namespace kairos
