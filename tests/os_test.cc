#include <gtest/gtest.h>

#include "os/file_cache.h"
#include "os/os_stats.h"

namespace kairos::os {
namespace {

TEST(FileCacheTest, MissOnEmpty) {
  FileCache c(4);
  EXPECT_FALSE(c.Lookup(1));
  EXPECT_EQ(c.misses(), 1u);
}

TEST(FileCacheTest, HitAfterInsert) {
  FileCache c(4);
  c.Insert(1);
  EXPECT_TRUE(c.Lookup(1));
  EXPECT_EQ(c.hits(), 1u);
}

TEST(FileCacheTest, LruEviction) {
  FileCache c(2);
  c.Insert(1);
  c.Insert(2);
  c.Insert(3);  // evicts 1
  EXPECT_FALSE(c.Lookup(1));
  EXPECT_TRUE(c.Lookup(2));
  EXPECT_TRUE(c.Lookup(3));
}

TEST(FileCacheTest, LookupPromotes) {
  FileCache c(2);
  c.Insert(1);
  c.Insert(2);
  EXPECT_TRUE(c.Lookup(1));  // 1 now MRU
  c.Insert(3);               // evicts 2
  EXPECT_TRUE(c.Lookup(1));
  EXPECT_FALSE(c.Lookup(2));
}

TEST(FileCacheTest, InsertExistingPromotes) {
  FileCache c(2);
  c.Insert(1);
  c.Insert(2);
  c.Insert(1);  // promote, no growth
  EXPECT_EQ(c.size(), 2u);
  c.Insert(3);  // evicts 2
  EXPECT_TRUE(c.Lookup(1));
  EXPECT_FALSE(c.Lookup(2));
}

TEST(FileCacheTest, DisabledCache) {
  FileCache c(0);
  EXPECT_TRUE(c.disabled());
  c.Insert(1);
  EXPECT_FALSE(c.Lookup(1));
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.misses(), 0u);  // disabled lookups don't count
}

TEST(FileCacheTest, Erase) {
  FileCache c(4);
  c.Insert(1);
  c.Erase(1);
  EXPECT_FALSE(c.Lookup(1));
  c.Erase(99);  // no-op
}

TEST(FileCacheTest, Reset) {
  FileCache c(4);
  c.Insert(1);
  c.Lookup(1);
  c.Reset();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(StatsCollectorTest, RatesOverWindow) {
  StatsCollector sc;
  sc.RecordTick(0.5, 0.25, 1000, 800, 500, 1500, 2);
  sc.RecordTick(0.5, 0.25, 2000, 1600, 500, 500, 2);
  const ProcessStats s = sc.Snapshot();
  EXPECT_NEAR(s.cpu_percent, 50.0, 1e-9);  // 0.5 core-s over 1 s
  EXPECT_EQ(s.rss_bytes, 2000u);           // latest
  EXPECT_EQ(s.active_bytes, 1600u);
  EXPECT_NEAR(s.read_bytes_per_sec, 1000.0, 1e-9);
  EXPECT_NEAR(s.write_bytes_per_sec, 2000.0, 1e-9);
  EXPECT_NEAR(s.page_reads_per_sec, 4.0, 1e-9);
}

TEST(StatsCollectorTest, SnapshotResetsWindow) {
  StatsCollector sc;
  sc.RecordTick(1.0, 1.0, 100, 100, 100, 100, 1);
  sc.Snapshot();
  const ProcessStats s = sc.Snapshot();
  EXPECT_DOUBLE_EQ(s.cpu_percent, 0.0);
  EXPECT_EQ(s.rss_bytes, 100u);  // gauge values persist
}

}  // namespace
}  // namespace kairos::os
