// Tests for the minimal JSON document model used to read back bench
// reports and metrics baselines (util/json.h).
#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace kairos {
namespace {

using util::JsonValue;

TEST(JsonParseTest, ScalarsAndTypes) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse("null", &v));
  EXPECT_TRUE(v.is_null());

  ASSERT_TRUE(JsonValue::Parse("true", &v));
  EXPECT_EQ(v.type, JsonValue::Type::kBool);
  EXPECT_TRUE(v.boolean);

  ASSERT_TRUE(JsonValue::Parse("false", &v));
  EXPECT_FALSE(v.boolean);

  ASSERT_TRUE(JsonValue::Parse("-12.5e2", &v));
  ASSERT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.number, -1250.0);

  ASSERT_TRUE(JsonValue::Parse("\"hello\"", &v));
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.string, "hello");
}

TEST(JsonParseTest, StringEscapes) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(R"("a\"b\\c\nd\te")", &v));
  EXPECT_EQ(v.string, "a\"b\\c\nd\te");
  // BMP \uXXXX escapes decode to UTF-8.
  ASSERT_TRUE(JsonValue::Parse("\"\\u00e9A\"", &v));
  EXPECT_EQ(v.string, "\xc3\xa9"
                      "A");
}

TEST(JsonParseTest, ObjectPreservesInsertionOrderAndFinds) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(
      R"({"zebra": 1, "alpha": {"nested": [1, 2, 3]}, "mid": "s"})", &v));
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "zebra");
  EXPECT_EQ(v.object[1].first, "alpha");
  EXPECT_EQ(v.object[2].first, "mid");

  const JsonValue* nested = v.Find("alpha");
  ASSERT_NE(nested, nullptr);
  const JsonValue* arr = nested->Find("nested");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->array[2].number, 3.0);

  EXPECT_EQ(v.Find("absent"), nullptr);
  // Find on a non-object is null, not a crash.
  EXPECT_EQ(arr->Find("x"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedInputWithPosition) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{\"a\": }", &v, &error));
  EXPECT_NE(error.find("offset"), std::string::npos) << error;

  EXPECT_FALSE(JsonValue::Parse("", &v, &error));
  EXPECT_FALSE(JsonValue::Parse("[1, 2", &v, &error));
  EXPECT_FALSE(JsonValue::Parse("\"unterminated", &v, &error));
  EXPECT_FALSE(JsonValue::Parse("nul", &v, &error));
  // Trailing garbage after a complete document is an error too.
  EXPECT_FALSE(JsonValue::Parse("{} extra", &v, &error));
}

TEST(JsonParseTest, RoundTripsLargeCounterValuesExactly) {
  // int64 counters are emitted as integers; doubles are exact to 2^53.
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse("9007199254740992", &v));
  EXPECT_EQ(static_cast<int64_t>(v.number), int64_t{9007199254740992});
}

}  // namespace
}  // namespace kairos
