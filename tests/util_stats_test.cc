#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kairos::util {
namespace {

TEST(AccumulatorTest, Empty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Variance(), 0.0);
}

TEST(AccumulatorTest, BasicMoments) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.Min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 4.0);
  EXPECT_NEAR(acc.Variance(), 1.25, 1e-12);
}

TEST(PercentileTest, Empty) { EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0); }

TEST(PercentileTest, SingleValue) {
  EXPECT_DOUBLE_EQ(Percentile({3.0}, 0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0}, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0}, 100), 3.0);
}

TEST(PercentileTest, Interpolates) {
  const std::vector<double> v{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 10);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 20);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5), 5);
}

TEST(PercentileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3}, 50), 3);
}

TEST(RmseTest, Basics) {
  EXPECT_DOUBLE_EQ(Rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(Rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(Rmse({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Rmse({1}, {1, 2}), 0.0);  // size mismatch -> 0
}

TEST(MeanAbsErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(MeanAbsError({1, 2}, {2, 4}), 1.5);
}

TEST(CdfTest, SortedAndNormalized) {
  const auto cdf = EmpiricalCdf({3, 1, 2, 2});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1);
  EXPECT_DOUBLE_EQ(cdf.back().value, 3);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().fraction, 0.25);
}

TEST(CdfTest, Empty) { EXPECT_TRUE(EmpiricalCdf({}).empty()); }

TEST(BoxPlotTest, NoOutliers) {
  std::vector<double> v;
  for (int i = 1; i <= 11; ++i) v.push_back(i);
  const BoxPlot b = MakeBoxPlot(v);
  EXPECT_DOUBLE_EQ(b.median, 6);
  EXPECT_DOUBLE_EQ(b.q1, 3.5);
  EXPECT_DOUBLE_EQ(b.q3, 8.5);
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.max, 11);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(BoxPlotTest, DetectsOutlier) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  const BoxPlot b = MakeBoxPlot(v);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100);
  EXPECT_LT(b.max, 100);
}

TEST(BoxPlotTest, Empty) {
  const BoxPlot b = MakeBoxPlot({});
  EXPECT_DOUBLE_EQ(b.median, 0);
}

}  // namespace
}  // namespace kairos::util
