#include <gtest/gtest.h>

#include <memory>

#include "db/server.h"
#include "model/analytic.h"
#include "model/disk_model.h"
#include "model/estimator.h"
#include "model/profiler.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"
#include "workload/patterns.h"

namespace kairos::model {
namespace {

std::vector<ProfilePoint> SyntheticPoints() {
  // write = 100*rate + 0.5*ws_mb*rate (a plausibly nonlinear surface),
  // saturating at rate_max = 50000 - 8*ws_mb.
  std::vector<ProfilePoint> points;
  for (double ws_mb : {500.0, 1000.0, 2000.0, 3000.0}) {
    for (double rate : {1000.0, 5000.0, 10000.0, 20000.0, 30000.0}) {
      ProfilePoint p;
      p.working_set_bytes = ws_mb * 1e6;
      p.target_rows_per_sec = rate;
      const double max_rate = 50000 - 8 * ws_mb;
      p.achieved_rows_per_sec = std::min(rate, max_rate);
      p.write_bytes_per_sec = 100 * p.achieved_rows_per_sec + 0.03 * ws_mb * rate;
      p.saturated = rate > max_rate;
      points.push_back(p);
    }
  }
  return points;
}

TEST(DiskModelTest, InvalidWhenTooFewPoints) {
  EXPECT_FALSE(DiskModel::Fit({}).valid());
  std::vector<ProfilePoint> three(3);
  EXPECT_FALSE(DiskModel::Fit(three).valid());
}

TEST(DiskModelTest, FitsSurface) {
  const DiskModel m = DiskModel::Fit(SyntheticPoints());
  ASSERT_TRUE(m.valid());
  // Interpolated prediction close to the generating function.
  const double ws = 1500e6, rate = 8000;
  const double truth = 100 * rate + 0.03 * 1500 * rate;
  EXPECT_NEAR(m.PredictWriteBytesPerSec(ws, rate), truth, 0.2 * truth);
}

TEST(DiskModelTest, PredictionMonotonicInRate) {
  const DiskModel m = DiskModel::Fit(SyntheticPoints());
  double prev = -1;
  for (double rate = 1000; rate <= 20000; rate += 1000) {
    const double v = m.PredictWriteBytesPerSec(1e9, rate);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(DiskModelTest, FrontierDecreasesWithWorkingSet) {
  const DiskModel m = DiskModel::Fit(SyntheticPoints());
  EXPECT_GT(m.MaxSustainableRate(500e6), m.MaxSustainableRate(3000e6));
  // The sampled grid tops out at 30000, so the observable frontier at small
  // working sets is the grid cap; at 3000 MB the true frontier (26000)
  // lies below the cap and must show through.
  EXPECT_NEAR(m.MaxSustainableRate(1000e6), 30000, 4000);
  EXPECT_NEAR(m.MaxSustainableRate(3000e6), 26000, 4000);
}

TEST(DiskModelTest, SustainabilityChecks) {
  const DiskModel m = DiskModel::Fit(SyntheticPoints());
  EXPECT_TRUE(m.IsSustainable(1000e6, 1000, 0.9));
  EXPECT_FALSE(m.IsSustainable(1000e6, 1e6, 0.9));
  EXPECT_GT(m.UtilizationFraction(1000e6, 20000),
            m.UtilizationFraction(1000e6, 10000));
}

TEST(ProfilerTest, SmallGridProducesSanePoints) {
  DiskModelProfiler profiler(sim::MachineSpec::Server1(), db::DbmsConfig{},
                             ProfilerConfig::Small());
  const auto points = profiler.CollectPoints(11);
  ASSERT_EQ(points.size(), 9u);
  for (const auto& p : points) {
    EXPECT_GT(p.achieved_rows_per_sec, 0);
    EXPECT_LE(p.achieved_rows_per_sec, p.target_rows_per_sec * 1.15);
    EXPECT_GT(p.write_bytes_per_sec, 0);
  }
}

TEST(ProfilerTest, WriteThroughputGrowsWithRate) {
  DiskModelProfiler profiler(sim::MachineSpec::Server1(), db::DbmsConfig{},
                             ProfilerConfig::Small());
  const auto slow = profiler.MeasurePoint(util::kGiB, 2000, 11);
  const auto fast = profiler.MeasurePoint(util::kGiB, 12000, 11);
  EXPECT_GT(fast.write_bytes_per_sec, slow.write_bytes_per_sec);
}

TEST(ProfilerTest, SublinearIoGrowth) {
  // Update coalescing: 6x the rate should yield well under 6x the I/O.
  // Long enough measurement to pass the flush-pacing transient.
  ProfilerConfig pc = ProfilerConfig::Small();
  pc.warmup_seconds = 4.0;
  pc.measure_seconds = 12.0;
  DiskModelProfiler profiler(sim::MachineSpec::Server1(), db::DbmsConfig{}, pc);
  const auto slow = profiler.MeasurePoint(512 * util::kMiB, 3000, 13);
  const auto fast = profiler.MeasurePoint(512 * util::kMiB, 18000, 13);
  const double ratio = fast.write_bytes_per_sec / slow.write_bytes_per_sec;
  EXPECT_LT(ratio, 5.0);
  EXPECT_GT(ratio, 1.2);
}

TEST(ProfilerTest, LargerWorkingSetMoreIo) {
  // Figure 4's second axis: same rate over a larger set dirties more
  // distinct pages. Buffer pool sized so both working sets fit in RAM.
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 4 * util::kGiB;
  DiskModelProfiler profiler(sim::MachineSpec::Server1(), cfg,
                             ProfilerConfig::Small());
  const auto small = profiler.MeasurePoint(256 * util::kMiB, 8000, 17);
  const auto large = profiler.MeasurePoint(2048ULL * util::kMiB, 8000, 17);
  EXPECT_GT(large.write_bytes_per_sec, small.write_bytes_per_sec * 1.1);
}

// The paper's key combining property: N databases with aggregate (X, Y)
// produce the same I/O as one database at (X, Y).
TEST(CombiningPropertyTest, MultipleTenantsMatchSingleWorkload) {
  auto run = [](int tenants, uint64_t ws_each, double rate_each) {
    db::DbmsConfig cfg;
    cfg.buffer_pool_bytes = 2 * util::kGiB;
    db::Server server(sim::MachineSpec::Server1(), cfg, 21);
    workload::Driver driver(&server, 21);
    std::vector<std::unique_ptr<workload::MicroWorkload>> ws;
    for (int i = 0; i < tenants; ++i) {
      workload::MicroSpec spec;
      spec.working_set_bytes = ws_each;
      spec.data_bytes = 2 * ws_each;
      spec.updates_per_tx = 10;
      spec.reads_per_tx = 2;
      spec.cpu_us_per_tx = 100;
      spec.pattern =
          std::make_shared<workload::FlatPattern>(rate_each / spec.updates_per_tx);
      ws.push_back(std::make_unique<workload::MicroWorkload>(
          "t" + std::to_string(i), spec));
      driver.AddWorkload(ws.back().get());
    }
    driver.Warm();
    driver.Run(2.0);
    const auto res = driver.Run(8.0);
    return res.server.write_mbps.Mean();
  };
  // 4 tenants x (128 MB, 2000 rows/s) vs 1 tenant x (512 MB, 8000 rows/s).
  const double combined = run(4, 128 * util::kMiB, 2000);
  const double single = run(1, 512 * util::kMiB, 8000);
  EXPECT_NEAR(combined, single, 0.25 * single);
}

TEST(EstimatorTest, CpuOverheadRemoved) {
  monitor::WorkloadProfile a, b;
  a.cpu_cores = util::TimeSeries(1.0, {0.5, 0.6});
  b.cpu_cores = util::TimeSeries(1.0, {0.3, 0.2});
  a.ram_bytes = b.ram_bytes = util::TimeSeries(1.0, {1e9, 1e9});
  a.update_rows_per_sec = b.update_rows_per_sec = util::TimeSeries(1.0, {10, 10});
  CombinedLoadEstimator est(nullptr, 0.05, 0);
  const auto pred = est.Combine({&a, &b});
  // Sum minus one duplicated overhead: 0.8 - 0.05, 0.8 - 0.05.
  EXPECT_NEAR(pred.cpu_cores.at(0), 0.75, 1e-9);
  EXPECT_NEAR(pred.cpu_cores.at(1), 0.75, 1e-9);
}

TEST(EstimatorTest, RamSumsWithInstanceOverhead) {
  monitor::WorkloadProfile a, b;
  a.cpu_cores = b.cpu_cores = util::TimeSeries(1.0, {0.1});
  a.ram_bytes = util::TimeSeries(1.0, {1e9});
  b.ram_bytes = util::TimeSeries(1.0, {2e9});
  a.update_rows_per_sec = b.update_rows_per_sec = util::TimeSeries(1.0, {0});
  CombinedLoadEstimator est(nullptr, 0.0, 100);
  const auto pred = est.Combine({&a, &b});
  EXPECT_DOUBLE_EQ(pred.ram_bytes.at(0), 3e9 + 100);
}

TEST(EstimatorTest, DiskUsesModelWhenPresent) {
  const DiskModel m = DiskModel::Fit(SyntheticPoints());
  monitor::WorkloadProfile a, b;
  a.cpu_cores = b.cpu_cores = util::TimeSeries(1.0, {0.1});
  a.ram_bytes = b.ram_bytes = util::TimeSeries(1.0, {1e8});
  a.update_rows_per_sec = util::TimeSeries(1.0, {3000});
  b.update_rows_per_sec = util::TimeSeries(1.0, {5000});
  a.working_set_bytes = 400e6;
  b.working_set_bytes = 600e6;
  CombinedLoadEstimator est(&m, 0.0, 0);
  const auto pred = est.Combine({&a, &b});
  EXPECT_NEAR(pred.disk_write_bytes_per_sec.at(0),
              m.PredictWriteBytesPerSec(1000e6, 8000), 1.0);
}

TEST(EstimatorTest, NaiveSumUsesOsStats) {
  monitor::WorkloadProfile a, b;
  a.os_write_bytes_per_sec = util::TimeSeries(1.0, {100});
  b.os_write_bytes_per_sec = util::TimeSeries(1.0, {200});
  a.os_ram_bytes = util::TimeSeries(1.0, {5e9});
  b.os_ram_bytes = util::TimeSeries(1.0, {7e9});
  a.cpu_cores = b.cpu_cores = util::TimeSeries(1.0, {0.5});
  const auto naive = CombinedLoadEstimator::NaiveSum({&a, &b});
  EXPECT_DOUBLE_EQ(naive.disk_write_bytes_per_sec.at(0), 300);
  EXPECT_DOUBLE_EQ(naive.ram_bytes.at(0), 12e9);
  EXPECT_DOUBLE_EQ(naive.cpu_cores.at(0), 1.0);
}

TEST(AnalyticTest, WriteThroughputMonotonicInRate) {
  AnalyticConfig cfg;
  double prev = -1;
  for (double rate : {100.0, 500.0, 2000.0, 8000.0}) {
    const double v = AnalyticWriteBytesPerSec(cfg, 10e9, rate);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(AnalyticTest, CoalescingSublinear) {
  AnalyticConfig cfg;
  const double ws = 1e9;
  const double one = AnalyticWriteBytesPerSec(cfg, ws, 5000);
  const double ten = AnalyticWriteBytesPerSec(cfg, ws, 50000);
  EXPECT_LT(ten, 10 * one);
}

TEST(AnalyticTest, MaxRateDecreasesWithWorkingSet) {
  AnalyticConfig cfg;
  sim::DiskSpec disk;
  EXPECT_GT(AnalyticMaxRate(disk, cfg, 1e9), AnalyticMaxRate(disk, cfg, 8e9));
}

TEST(AnalyticTest, RaidSustainsConsolidatedRates) {
  // The consolidation target's array sustains the aggregate update rates
  // the trace experiments place on one server (hundreds to ~2000 rows/s).
  AnalyticConfig cfg;
  const sim::DiskSpec raid = sim::DiskSpec::Raid10();
  EXPECT_GT(AnalyticMaxRate(raid, cfg, 80e9), 600.0);
}

TEST(AnalyticTest, BuildsValidModel) {
  AnalyticConfig cfg;
  const sim::DiskSpec raid = sim::DiskSpec::Raid10();
  const DiskModel m = BuildAnalyticModel(raid, cfg, 96e9, 4000);
  ASSERT_TRUE(m.valid());
  EXPECT_GT(m.MaxSustainableRate(8e9), 0);
  EXPECT_GT(m.MaxSustainableRate(8e9), m.MaxSustainableRate(96e9));
}

}  // namespace
}  // namespace kairos::model
