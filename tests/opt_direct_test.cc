#include "opt/direct.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kairos::opt {
namespace {

double Sphere(const std::vector<double>& x, const std::vector<double>& center) {
  double s = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - center[i];
    s += d * d;
  }
  return s;
}

TEST(DirectTest, MinimizesSphere1D) {
  DirectOptimizer direct;
  DirectOptions opts;
  opts.max_evaluations = 300;
  const auto res = direct.Minimize(
      [](const std::vector<double>& x) { return Sphere(x, {0.7}); }, 1, opts);
  EXPECT_NEAR(res.x[0], 0.7, 0.02);
  EXPECT_LT(res.fx, 1e-3);
}

TEST(DirectTest, MinimizesSphere4D) {
  DirectOptimizer direct;
  DirectOptions opts;
  opts.max_evaluations = 3000;
  const std::vector<double> center{0.2, 0.8, 0.5, 0.35};
  const auto res = direct.Minimize(
      [&](const std::vector<double>& x) { return Sphere(x, center); }, 4, opts);
  EXPECT_LT(res.fx, 0.01);
}

TEST(DirectTest, EscapesLocalMinima) {
  // Rastrigin-flavored multimodal function on [0,1], global min at 0.5.
  DirectOptimizer direct;
  DirectOptions opts;
  opts.max_evaluations = 2000;
  const auto f = [](const std::vector<double>& x) {
    double s = 0;
    for (double xi : x) {
      const double z = (xi - 0.5) * 8.0;
      s += z * z - 3.0 * std::cos(2.0 * M_PI * z) + 3.0;
    }
    return s;
  };
  const auto res = direct.Minimize(f, 2, opts);
  EXPECT_LT(res.fx, 0.5);
  EXPECT_NEAR(res.x[0], 0.5, 0.05);
  EXPECT_NEAR(res.x[1], 0.5, 0.05);
}

TEST(DirectTest, RespectsEvaluationBudget) {
  DirectOptimizer direct;
  DirectOptions opts;
  opts.max_evaluations = 100;
  int calls = 0;
  direct.Minimize(
      [&](const std::vector<double>& x) {
        ++calls;
        return Sphere(x, {0.3, 0.3, 0.3});
      },
      3, opts);
  EXPECT_LE(calls, 105);  // small slack for the division batch in flight
  EXPECT_GE(calls, 50);
}

TEST(DirectTest, StopsAtTargetValue) {
  DirectOptimizer direct;
  DirectOptions opts;
  opts.max_evaluations = 100000;
  opts.target_value = 0.01;
  const auto res = direct.Minimize(
      [](const std::vector<double>& x) { return Sphere(x, {0.5, 0.5}); }, 2, opts);
  EXPECT_TRUE(res.hit_target);
  EXPECT_LT(res.evaluations, 1000);
}

TEST(DirectTest, HandlesFlatFunction) {
  DirectOptimizer direct;
  DirectOptions opts;
  opts.max_evaluations = 200;
  const auto res =
      direct.Minimize([](const std::vector<double>&) { return 7.0; }, 3, opts);
  EXPECT_DOUBLE_EQ(res.fx, 7.0);
}

TEST(DirectTest, ZeroDims) {
  DirectOptimizer direct;
  const auto res =
      direct.Minimize([](const std::vector<double>&) { return 1.0; }, 0,
                      DirectOptions{});
  EXPECT_TRUE(res.x.empty());
}

TEST(DirectTest, EpsilonBiasesSearch) {
  // Both settings minimize; with a deceptive function the more-global
  // epsilon should not do worse than a tiny epsilon at equal budget.
  const auto f = [](const std::vector<double>& x) {
    // Deep narrow basin near 0.9, broad shallow basin near 0.3.
    const double a = (x[0] - 0.9) / 0.02;
    const double b = (x[0] - 0.3) / 0.3;
    return std::min(a * a - 2.0, b * b - 1.0);
  };
  DirectOptimizer direct;
  DirectOptions global;
  global.max_evaluations = 1500;
  global.epsilon = 1e-2;
  DirectOptions local = global;
  local.epsilon = 1e-7;
  const auto res_g = direct.Minimize(f, 1, global);
  const auto res_l = direct.Minimize(f, 1, local);
  EXPECT_LE(res_g.fx, -1.9);   // found the deep basin
  EXPECT_LE(res_l.fx, -0.95);  // at least the shallow one
}

TEST(DirectTest, BestPointWithinBounds) {
  DirectOptimizer direct;
  DirectOptions opts;
  opts.max_evaluations = 500;
  const auto res = direct.Minimize(
      [](const std::vector<double>& x) { return -x[0] - x[1]; }, 2, opts);
  for (double v : res.x) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_GT(res.x[0], 0.8);  // pushed toward the boundary
}

}  // namespace
}  // namespace kairos::opt
