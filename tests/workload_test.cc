#include <gtest/gtest.h>

#include <memory>

#include "db/server.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"
#include "workload/patterns.h"
#include "workload/tpcc.h"
#include "workload/wikipedia.h"

namespace kairos::workload {
namespace {

TEST(PatternsTest, Flat) {
  FlatPattern p(42);
  EXPECT_DOUBLE_EQ(p.RateAt(0), 42);
  EXPECT_DOUBLE_EQ(p.RateAt(1e6), 42);
}

TEST(PatternsTest, SinusoidBounds) {
  SinusoidPattern p(100, 50, 3600);
  for (double t = 0; t < 7200; t += 100) {
    EXPECT_GE(p.RateAt(t), 50 - 1e-9);
    EXPECT_LE(p.RateAt(t), 150 + 1e-9);
  }
  // Mean over a full period is the mean parameter.
  double sum = 0;
  const int n = 3600;
  for (int i = 0; i < n; ++i) sum += p.RateAt(i);
  EXPECT_NEAR(sum / n, 100, 1.0);
}

TEST(PatternsTest, SinusoidClampsNegative) {
  SinusoidPattern p(10, 50, 100);
  double min_v = 1e9;
  for (double t = 0; t < 100; t += 1) min_v = std::min(min_v, p.RateAt(t));
  EXPECT_DOUBLE_EQ(min_v, 0.0);
}

TEST(PatternsTest, SawtoothRamp) {
  SawtoothPattern p(0, 100, 100);
  EXPECT_DOUBLE_EQ(p.RateAt(0), 0);
  EXPECT_DOUBLE_EQ(p.RateAt(50), 50);
  EXPECT_NEAR(p.RateAt(99), 99, 1e-9);
  EXPECT_DOUBLE_EQ(p.RateAt(100), 0);  // resets
}

TEST(PatternsTest, SquareAlternates) {
  SquarePattern p(10, 90, 100);
  EXPECT_DOUBLE_EQ(p.RateAt(10), 10);
  EXPECT_DOUBLE_EQ(p.RateAt(60), 90);
  EXPECT_DOUBLE_EQ(p.RateAt(110), 10);
}

TEST(PatternsTest, BurstyWindows) {
  BurstyPattern p(5, 500, 100, 0.1);
  EXPECT_DOUBLE_EQ(p.RateAt(5), 500);   // within the burst
  EXPECT_DOUBLE_EQ(p.RateAt(50), 5);    // baseline
}

TEST(TpccTest, ScalesWithWarehouses) {
  auto pattern = std::make_shared<FlatPattern>(10);
  TpccWorkload w5("t5", 5, pattern);
  TpccWorkload w10("t10", 10, pattern);
  EXPECT_EQ(w10.WorkingSetBytes(), 2 * w5.WorkingSetBytes());
  EXPECT_EQ(w10.DataSizeBytes(), 2 * w5.DataSizeBytes());
  // Paper: 120-150 MB working set per warehouse.
  EXPECT_GE(w5.WorkingSetBytes() / 5, 120 * util::kMiB);
  EXPECT_LE(w5.WorkingSetBytes() / 5, 150 * util::kMiB);
}

TEST(TpccTest, ProfileShape) {
  const db::TxProfile p = TpccWorkload::Profile();
  EXPECT_GT(p.update_rows, 5);   // write-heavy OLTP
  EXPECT_GT(p.read_rows, p.update_rows);
  EXPECT_GT(p.base_latency_ms, 10);
}

TEST(WikipediaTest, ReadMostly) {
  const db::TxProfile p = WikipediaWorkload::Profile();
  EXPECT_LT(p.update_rows, 1.0);  // ~8% writes
  EXPECT_GT(p.read_rows / (p.read_rows + p.update_rows), 0.9);
}

TEST(WikipediaTest, ScaleMatchesPaper) {
  auto pattern = std::make_shared<FlatPattern>(10);
  WikipediaWorkload w("wiki", 100, pattern);
  // 100K pages: 67 GB data, 2.2 GB working set.
  EXPECT_NEAR(static_cast<double>(w.DataSizeBytes()) / util::kGiB, 67.0, 1.0);
  EXPECT_NEAR(static_cast<double>(w.WorkingSetBytes()) / util::kGiB, 2.2, 0.1);
}

TEST(MicroTest, BatchHonorsPattern) {
  sim::MachineSpec machine = sim::MachineSpec::Server1();
  db::Server server(machine, db::DbmsConfig{}, 3);
  MicroSpec spec;
  spec.data_bytes = 32 * util::kMiB;
  spec.working_set_bytes = 16 * util::kMiB;
  spec.pattern = std::make_shared<FlatPattern>(100);
  MicroWorkload w("m", spec);
  Driver driver(&server, 3);
  driver.AddWorkload(&w);
  util::Rng rng(1);
  double total = 0;
  for (int i = 0; i < 1000; ++i) {
    total += static_cast<double>(w.MakeBatch(0.0, 0.1, rng).transactions);
  }
  EXPECT_NEAR(total / 1000.0, 10.0, 1.0);  // ~10 tx per 0.1s tick
}

TEST(DriverTest, TimeAdvancesAcrossRuns) {
  db::Server server(sim::MachineSpec::Server1(), db::DbmsConfig{}, 3);
  MicroSpec spec;
  spec.data_bytes = 32 * util::kMiB;
  spec.working_set_bytes = 16 * util::kMiB;
  spec.pattern = std::make_shared<FlatPattern>(50);
  MicroWorkload w("m", spec);
  Driver driver(&server, 3);
  driver.AddWorkload(&w);
  driver.Run(2.0);
  const double t1 = server.now();
  driver.Run(3.0);
  EXPECT_NEAR(server.now() - t1, 3.0, 1e-9);
}

TEST(DriverTest, SampleWindowsCoverDuration) {
  db::Server server(sim::MachineSpec::Server1(), db::DbmsConfig{}, 3);
  MicroSpec spec;
  spec.data_bytes = 32 * util::kMiB;
  spec.working_set_bytes = 16 * util::kMiB;
  spec.pattern = std::make_shared<FlatPattern>(50);
  MicroWorkload w("m", spec);
  Driver driver(&server, 3);
  driver.AddWorkload(&w);
  const RunResult res = driver.Run(10.0, 2.0);
  EXPECT_EQ(res.workloads.front().tps.size(), 5u);
  EXPECT_EQ(res.server.write_mbps.size(), 5u);
}

TEST(DriverTest, TimeVaryingLoadTracked) {
  db::Server server(sim::MachineSpec::Server1(), db::DbmsConfig{}, 3);
  MicroSpec spec;
  spec.data_bytes = 32 * util::kMiB;
  spec.working_set_bytes = 16 * util::kMiB;
  spec.pattern = std::make_shared<SquarePattern>(20, 200, 10.0);
  MicroWorkload w("sq", spec);
  Driver driver(&server, 3);
  driver.AddWorkload(&w);
  driver.Warm();
  const RunResult res = driver.Run(10.0, 1.0);
  const auto& tps = res.workloads.front().tps;
  // First half ~20 tps, second half ~200 tps.
  EXPECT_LT(tps.at(1), 60);
  EXPECT_GT(tps.at(7), 120);
}

}  // namespace
}  // namespace kairos::workload
