#include "solve/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/engine.h"
#include "core/evaluator.h"
#include "solve/solver.h"
#include "util/units.h"

namespace kairos::solve {
namespace {

monitor::WorkloadProfile MakeProfile(const std::string& name, double cpu_cores,
                                     double ram_gb, int samples = 6) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, samples, cpu_cores);
  p.ram_bytes = util::TimeSeries::Constant(300, samples,
                                           ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, samples, 0.0);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

/// A two-class heterogeneous fleet (6 legacy + 4 target servers) with
/// enough varied workloads to spread across shards.
core::ConsolidationProblem TwoClassProblem(int n = 12) {
  core::ConsolidationProblem prob;
  for (int i = 0; i < n; ++i) {
    prob.workloads.push_back(MakeProfile("w" + std::to_string(i),
                                         0.4 + 0.15 * (i % 5),
                                         3.0 + 1.0 * (i % 4)));
  }
  prob.fleet = sim::FleetSpec();
  prob.fleet.AddClass(sim::MachineSpec::Server1(), 6, 1.0)
      .AddClass(sim::MachineSpec::ConsolidationTarget(), 4, 1.5);
  return prob;
}

// ---------------------------------------------------------------------------
// ShardSeed
// ---------------------------------------------------------------------------

TEST(ShardSeedTest, StableDistinctAndNonZero) {
  // Pure function of (master, id): stable across calls.
  for (uint64_t master : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    for (int id = 0; id < 16; ++id) {
      EXPECT_EQ(ShardSeed(master, id), ShardSeed(master, id));
      EXPECT_NE(ShardSeed(master, id), 0u);
    }
  }
  // Neighbouring shard ids and neighbouring masters land in distinct
  // streams (no collisions over a small grid).
  std::set<uint64_t> seen;
  for (uint64_t master : {1ULL, 2ULL, 3ULL}) {
    for (int id = 0; id < 32; ++id) seen.insert(ShardSeed(master, id));
  }
  EXPECT_EQ(seen.size(), 3u * 32u);
  // The seed of shard k does not depend on how many shards exist.
  EXPECT_EQ(ShardSeed(7, 3), ShardSeed(7, 3));
}

// ---------------------------------------------------------------------------
// ShardPartitioner
// ---------------------------------------------------------------------------

TEST(ShardPartitionerTest, EveryClassSpreadAcrossShardsDisjointly) {
  const core::ConsolidationProblem prob = TwoClassProblem();
  ShardOptions options;
  options.num_shards = 2;
  const ShardPartitioner partitioner(prob, options);
  ASSERT_EQ(partitioner.ResolvedShardCount(), 2);
  const std::vector<FleetShard> shards = partitioner.Partition(11);
  ASSERT_EQ(shards.size(), 2u);

  // 6+4 servers split 3+2 / 3+2: both shards see both machine classes.
  EXPECT_EQ(shards[0].servers, (std::vector<int>{0, 1, 2, 6, 7}));
  EXPECT_EQ(shards[1].servers, (std::vector<int>{3, 4, 5, 8, 9}));
  for (const FleetShard& shard : shards) {
    ASSERT_EQ(shard.problem.fleet.num_classes(), 2);
    EXPECT_EQ(shard.problem.fleet.TotalServers(), 5);  // fully bounded
    EXPECT_EQ(shard.seed, ShardSeed(11, shard.id));
  }

  // ShardOfServer inverts the dealing.
  for (const FleetShard& shard : shards) {
    for (int j : shard.servers) {
      EXPECT_EQ(partitioner.ShardOfServer(j), shard.id) << "server " << j;
    }
  }
  EXPECT_EQ(partitioner.ShardOfServer(-1), -1);
  EXPECT_EQ(partitioner.ShardOfServer(10), -1);

  // Workloads and slots: disjoint covers of the global index spaces.
  std::set<int> workloads, slots;
  for (const FleetShard& shard : shards) {
    EXPECT_TRUE(std::is_sorted(shard.workloads.begin(), shard.workloads.end()));
    for (int w : shard.workloads) EXPECT_TRUE(workloads.insert(w).second);
    for (int sl : shard.slots) EXPECT_TRUE(slots.insert(sl).second);
    EXPECT_EQ(shard.problem.TotalSlots(),
              static_cast<int>(shard.slots.size()));
  }
  EXPECT_EQ(workloads.size(), prob.workloads.size());
  EXPECT_EQ(static_cast<int>(slots.size()), prob.TotalSlots());
}

TEST(ShardPartitionerTest, PartitionIsDeterministic) {
  const core::ConsolidationProblem prob = TwoClassProblem();
  ShardOptions options;
  options.num_shards = 3;
  const ShardPartitioner partitioner(prob, options);
  const std::vector<FleetShard> a = partitioner.Partition(5);
  const std::vector<FleetShard> b = partitioner.Partition(5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].servers, b[i].servers);
    EXPECT_EQ(a[i].workloads, b[i].workloads);
    EXPECT_EQ(a[i].slots, b[i].slots);
  }
}

TEST(ShardPartitionerTest, PinnedGroupRoutesToThePinOwningShard) {
  core::ConsolidationProblem prob = TwoClassProblem();
  prob.workloads[0].pinned_server = 8;  // shard 1's range in class 1
  ShardOptions options;
  options.num_shards = 2;
  const ShardPartitioner partitioner(prob, options);
  const std::vector<FleetShard> shards = partitioner.Partition(11);
  ASSERT_EQ(partitioner.ShardOfServer(8), 1);
  const FleetShard& shard = shards[1];
  auto it = std::find(shard.workloads.begin(), shard.workloads.end(), 0);
  ASSERT_NE(it, shard.workloads.end());
  // The pin is remapped into the shard-local server index space.
  const int lw = static_cast<int>(it - shard.workloads.begin());
  const int lp = shard.problem.workloads[lw].pinned_server;
  ASSERT_GE(lp, 0);
  EXPECT_EQ(shard.servers[lp], 8);
}

TEST(ShardPartitionerTest, AntiAffinityGroupsNeverSpanShards) {
  core::ConsolidationProblem prob = TwoClassProblem();
  prob.anti_affinity = {{0, 7}, {7, 3}, {5, 11}};
  ShardOptions options;
  options.num_shards = 2;
  const ShardPartitioner partitioner(prob, options);
  const std::vector<FleetShard> shards = partitioner.Partition(11);

  auto shard_of_workload = [&](int w) {
    for (const FleetShard& shard : shards) {
      if (std::binary_search(shard.workloads.begin(), shard.workloads.end(), w))
        return shard.id;
    }
    return -1;
  };
  // The union-find chain {0,7,3} stays together, as does {5,11}.
  EXPECT_EQ(shard_of_workload(0), shard_of_workload(7));
  EXPECT_EQ(shard_of_workload(7), shard_of_workload(3));
  EXPECT_EQ(shard_of_workload(5), shard_of_workload(11));
  // Every explicit pair survives, remapped, inside exactly one shard.
  int pairs = 0;
  for (const FleetShard& shard : shards) {
    for (const auto& [a, b] : shard.problem.anti_affinity) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, static_cast<int>(shard.workloads.size()));
      EXPECT_GE(b, 0);
      EXPECT_LT(b, static_cast<int>(shard.workloads.size()));
      ++pairs;
    }
  }
  EXPECT_EQ(pairs, 3);
}

TEST(ShardPartitionerTest, MoreShardsThanWorkloadsLeavesEmptyShards) {
  core::ConsolidationProblem prob;
  prob.workloads.push_back(MakeProfile("only", 0.5, 4.0));
  prob.fleet = sim::FleetSpec();
  prob.fleet.AddClass(sim::MachineSpec::Server1(), 4, 1.0)
      .AddClass(sim::MachineSpec::ConsolidationTarget(), 4, 1.5);
  ShardOptions options;
  options.num_shards = 4;
  const ShardPartitioner partitioner(prob, options);
  const std::vector<FleetShard> shards = partitioner.Partition(3);
  ASSERT_EQ(shards.size(), 4u);

  int populated = 0, empty = 0;
  for (const FleetShard& shard : shards) {
    EXPECT_FALSE(shard.servers.empty());  // servers are dealt regardless
    if (shard.slots.empty()) {
      EXPECT_TRUE(shard.workloads.empty());
      EXPECT_EQ(shard.problem.TotalSlots(), 0);
      ++empty;
    } else {
      ++populated;
    }
  }
  EXPECT_EQ(populated, 1);
  EXPECT_EQ(empty, 3);

  // The sharded solver still produces a valid single-workload plan.
  ShardedSolver solver(3, options);
  const core::ConsolidationPlan plan = solver.Solve(prob, SolveBudget{}, nullptr);
  ASSERT_EQ(plan.assignment.server_of_slot.size(), 1u);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, 1);
}

TEST(ShardPartitionerTest, AutoShardCountClampsToServerCap) {
  core::ConsolidationProblem prob = TwoClassProblem(30);
  ShardOptions options;
  options.num_shards = 0;
  options.target_shard_slots = 2;  // would ask for 15 shards
  const ShardPartitioner partitioner(prob, options);
  // Clamped to the 10-server cap.
  EXPECT_EQ(partitioner.ResolvedShardCount(), 10);

  options.num_shards = 64;
  EXPECT_EQ(ShardPartitioner(prob, options).ResolvedShardCount(), 10);
}

// ---------------------------------------------------------------------------
// ShardedSolver
// ---------------------------------------------------------------------------

TEST(ShardedSolverTest, RegisteredInTheGlobalRegistry) {
  auto& registry = SolverRegistry::Global();
  ASSERT_TRUE(registry.Contains("sharded"));
  auto solver = registry.Create("sharded", 7);
  ASSERT_NE(solver, nullptr);
  EXPECT_EQ(solver->name(), "sharded");
}

TEST(ShardedSolverTest, ByteIdenticalPlansAtAnyThreadCount) {
  core::ConsolidationProblem prob = TwoClassProblem(16);
  prob.workloads[2].replicas = 2;
  prob.workloads[4].pinned_server = 7;
  prob.anti_affinity = {{0, 1}};

  auto solve = [&](int threads) {
    ShardOptions options;
    options.num_shards = 3;
    options.threads = threads;
    ShardedSolver solver(11, options);
    return solver.Solve(prob, SolveBudget{}, nullptr);
  };
  const core::ConsolidationPlan one = solve(1);
  for (int threads : {2, 4, 8}) {
    const core::ConsolidationPlan plan = solve(threads);
    EXPECT_EQ(plan.assignment.server_of_slot, one.assignment.server_of_slot)
        << threads << " threads";
    EXPECT_EQ(plan.objective, one.objective) << threads << " threads";
    EXPECT_EQ(plan.feasible, one.feasible) << threads << " threads";
  }
}

TEST(ShardedSolverTest, HonoursPinsReplicasAndAntiAffinity) {
  core::ConsolidationProblem prob = TwoClassProblem(16);
  prob.workloads[2].replicas = 2;
  prob.workloads[4].pinned_server = 7;
  prob.anti_affinity = {{0, 1}};

  ShardOptions options;
  options.num_shards = 3;
  ShardedSolver solver(11, options);
  const core::ConsolidationPlan plan = solver.Solve(prob, SolveBudget{}, nullptr);
  const std::vector<int>& a = plan.assignment.server_of_slot;
  ASSERT_EQ(static_cast<int>(a.size()), prob.TotalSlots());
  EXPECT_TRUE(plan.feasible);
  // Slot layout: w0->0, w1->1, w2->{2,3}, w3->4, w4->5, ...
  EXPECT_NE(a[0], a[1]);  // anti-affinity
  EXPECT_NE(a[2], a[3]);  // replica spread
  EXPECT_EQ(a[5], 7);     // pin
  for (int s : a) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, prob.ServerCap());
  }
}

TEST(ShardedSolverTest, SingleShardDegeneratesGracefully) {
  const core::ConsolidationProblem prob = TwoClassProblem(6);
  ShardOptions options;
  options.num_shards = 1;
  ShardedSolver solver(5, options);
  const core::ConsolidationPlan plan = solver.Solve(prob, SolveBudget{}, nullptr);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(static_cast<int>(plan.assignment.server_of_slot.size()),
            prob.TotalSlots());
}

TEST(ShardedSolverTest, EmptyProblemYieldsEmptyPlan) {
  core::ConsolidationProblem prob;
  ShardOptions options;
  ShardedSolver solver(1, options);
  const core::ConsolidationPlan plan = solver.Solve(prob, SolveBudget{}, nullptr);
  EXPECT_TRUE(plan.assignment.server_of_slot.empty());
  EXPECT_EQ(plan.servers_used, 0);
}

// ---------------------------------------------------------------------------
// ShardRepair
// ---------------------------------------------------------------------------

TEST(ShardRepairTest, RepairsLocallyAndNeverWorsensCost) {
  core::ConsolidationProblem prob = TwoClassProblem(16);
  prob.migration_cost_weight = 25.0;

  // Build an incumbent with a full solve, then perturb it.
  ShardOptions options;
  options.num_shards = 2;
  ShardedSolver solver(11, options);
  const core::ConsolidationPlan incumbent =
      solver.Solve(prob, SolveBudget{}, nullptr);
  prob.current_assignment = incumbent.assignment.server_of_slot;

  const int cap = prob.ServerCap();
  core::Evaluator ev(prob, cap);
  ev.Load(prob.current_assignment);
  const double cost_before = ev.current_cost();

  const int workload = 3;
  core::ConsolidationPlan repaired;
  const bool ok =
      ShardRepair(prob, SolveBudget{}, options, 11, workload, &repaired);
  if (ok) {
    ASSERT_EQ(static_cast<int>(repaired.assignment.server_of_slot.size()),
              prob.TotalSlots());
    // No worse than the incumbent under the same (migration-aware) score.
    EXPECT_LE(ev.Evaluate(repaired.assignment.server_of_slot),
              cost_before + 1e-9);
    // Only the target shard's slots may differ from the incumbent.
    const ShardPartitioner partitioner(prob, options);
    const std::vector<FleetShard> shards = partitioner.Partition(11);
    std::vector<char> in_target(prob.TotalSlots(), 0);
    for (const FleetShard& shard : shards) {
      if (std::binary_search(shard.workloads.begin(), shard.workloads.end(),
                             workload)) {
        for (int sl : shard.slots) in_target[sl] = 1;
      }
    }
    for (int sl = 0; sl < prob.TotalSlots(); ++sl) {
      if (!in_target[sl]) {
        EXPECT_EQ(repaired.assignment.server_of_slot[sl],
                  prob.current_assignment[sl])
            << "foreign slot " << sl << " moved";
      }
    }
  }

  // Deterministic: a second call agrees bit for bit.
  core::ConsolidationPlan again;
  EXPECT_EQ(ShardRepair(prob, SolveBudget{}, options, 11, workload, &again), ok);
  if (ok) {
    EXPECT_EQ(again.assignment.server_of_slot,
              repaired.assignment.server_of_slot);
  }
}

TEST(ShardRepairTest, RefusesWithoutUsableIncumbent) {
  core::ConsolidationProblem prob = TwoClassProblem(8);
  core::ConsolidationPlan plan;
  ShardOptions options;
  // No incumbent at all.
  EXPECT_FALSE(ShardRepair(prob, SolveBudget{}, options, 1, 0, &plan));
  // Wrong length.
  prob.current_assignment = {0, 1};
  EXPECT_FALSE(ShardRepair(prob, SolveBudget{}, options, 1, 0, &plan));
  // Stranded incumbent entry (beyond the cap).
  prob.current_assignment.assign(prob.TotalSlots(), 0);
  prob.current_assignment[0] = prob.ServerCap();
  EXPECT_FALSE(ShardRepair(prob, SolveBudget{}, options, 1, 0, &plan));
  // Invalid workload index.
  prob.current_assignment.assign(prob.TotalSlots(), 0);
  EXPECT_FALSE(ShardRepair(prob, SolveBudget{}, options, 1, -1, &plan));
  EXPECT_FALSE(ShardRepair(prob, SolveBudget{}, options, 1, 99, &plan));
}

}  // namespace
}  // namespace kairos::solve
