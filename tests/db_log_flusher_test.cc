#include <gtest/gtest.h>

#include "db/buffer_pool.h"
#include "db/flusher.h"
#include "db/log_manager.h"

namespace kairos::db {
namespace {

TEST(LogManagerTest, EmptyFlush) {
  LogManager log(5.0, 1 << 20);
  const auto r = log.FlushTick(0.1);
  EXPECT_EQ(r.bytes, 0u);
  EXPECT_EQ(r.groups, 0);
}

TEST(LogManagerTest, GroupCommitBoundsGroups) {
  LogManager log(5.0, 1 << 30);
  log.Append(1000, 100000);
  const auto r = log.FlushTick(0.1);  // 0.1s / 5ms = 20 windows
  EXPECT_EQ(r.bytes, 100000u);
  EXPECT_LE(r.groups, 21);
  EXPECT_GE(r.groups, 1);
  EXPECT_DOUBLE_EQ(r.avg_commit_wait_ms, 2.5);
}

TEST(LogManagerTest, FewCommitsFewGroups) {
  LogManager log(5.0, 1 << 30);
  log.Append(3, 300);
  const auto r = log.FlushTick(1.0);
  EXPECT_EQ(r.groups, 3);  // never more groups than commits
}

TEST(LogManagerTest, CheckpointTrigger) {
  LogManager log(5.0, 1000);
  log.Append(1, 600);
  log.FlushTick(0.1);
  EXPECT_FALSE(log.CheckpointDue());
  log.Append(1, 600);
  log.FlushTick(0.1);
  EXPECT_TRUE(log.CheckpointDue());
  log.CheckpointDone();
  EXPECT_FALSE(log.CheckpointDue());
  EXPECT_EQ(log.total_bytes(), 1200u);
}

TEST(FlusherTest, NothingToFlush) {
  BufferPool pool(100);
  Flusher f(FlusherConfig{});
  const FlushBatch b = f.SelectBatch(pool, 0.1, 0.0, false);
  EXPECT_TRUE(b.pages.empty());
}

TEST(FlusherTest, IdleDiskFlushesAggressively) {
  BufferPool pool(1000);
  for (PageId p = 0; p < 100; ++p) pool.Touch(p, true);
  Flusher f(FlusherConfig{});
  const FlushBatch b = f.SelectBatch(pool, 0.1, 0.0, false);
  // Idle flushing drains most of the dirty set.
  EXPECT_GT(b.pages.size(), 50u);
  EXPECT_FALSE(b.mandatory);
}

TEST(FlusherTest, BusyDiskFlushesSlowly) {
  BufferPool pool(1000);
  for (PageId p = 0; p < 100; ++p) pool.Touch(p, true);
  FlusherConfig cfg;
  cfg.flush_interval_s = 2.0;
  Flusher f(cfg);
  const FlushBatch b = f.SelectBatch(pool, 0.1, 0.95, false);
  // Only the base rate: ~100 * 0.1 / 2 = 5 pages.
  EXPECT_LE(b.pages.size(), 10u);
  EXPECT_GE(b.pages.size(), 1u);
}

TEST(FlusherTest, WatermarkForcesMandatory) {
  BufferPool pool(100);
  for (PageId p = 0; p < 90; ++p) pool.Touch(p, true);  // 90% dirty
  Flusher f(FlusherConfig{});
  const FlushBatch b = f.SelectBatch(pool, 0.1, 0.99, false);
  EXPECT_TRUE(b.mandatory);
  EXPECT_EQ(b.pages.size(), 90u);
}

TEST(FlusherTest, CheckpointForcesMandatory) {
  BufferPool pool(1000);
  for (PageId p = 0; p < 10; ++p) pool.Touch(p, true);
  Flusher f(FlusherConfig{});
  const FlushBatch b = f.SelectBatch(pool, 0.1, 0.99, true);
  EXPECT_TRUE(b.mandatory);
  EXPECT_EQ(b.pages.size(), 10u);
}

TEST(FlusherTest, BatchSortedWithSpan) {
  BufferPool pool(1000);
  for (PageId p : {500, 10, 300, 42}) pool.Touch(p, true);
  Flusher f(FlusherConfig{});
  const FlushBatch b = f.SelectBatch(pool, 0.1, 0.0, true);
  ASSERT_EQ(b.pages.size(), 4u);
  EXPECT_TRUE(std::is_sorted(b.pages.begin(), b.pages.end()));
  EXPECT_EQ(b.span_pages, 500u - 10u + 1u);
}

TEST(FlusherTest, RespectsPerTickCap) {
  BufferPool pool(100000);
  for (PageId p = 0; p < 50000; ++p) pool.Touch(p, true);
  FlusherConfig cfg;
  cfg.max_pages_per_tick = 1000;
  Flusher f(cfg);
  const FlushBatch b = f.SelectBatch(pool, 0.1, 0.0, true);
  EXPECT_EQ(b.pages.size(), 1000u);
}

}  // namespace
}  // namespace kairos::db
