// Tests for the versioned bench-report schema and the baseline diff engine
// (obs/report.h) that tools/metrics_diff gates CI on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/profile.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "util/json.h"

namespace kairos {
namespace {

using util::JsonValue;

std::string ReportString(const obs::Sink& sink,
                         const obs::Profiler* profiler = nullptr,
                         const std::vector<obs::KpiValue>& kpis = {}) {
  std::ostringstream os;
  obs::WriteBenchReport(os, "unit", {{"smoke", "1"}}, sink, profiler, kpis);
  return os.str();
}

JsonValue MustParse(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(text, &doc, &error)) << error;
  return doc;
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(ReportSchemaTest, EmptySinkStillEmitsEveryTopLevelField) {
  // A bench that recorded nothing must still produce a schema-complete,
  // parseable document (satellite: empty registry snapshot export).
  obs::Sink sink;
  const JsonValue doc = MustParse(ReportString(sink));
  for (const char* key :
       {"schema_version", "bench", "config", "kpis", "meta", "counters",
        "gauges", "histograms", "probes", "incumbent_curves", "controller",
        "span_profile", "events"}) {
    EXPECT_NE(doc.Find(key), nullptr) << key;
  }
  EXPECT_DOUBLE_EQ(doc.Find("schema_version")->number,
                   obs::kReportSchemaVersion);
  EXPECT_EQ(doc.Find("bench")->string, "unit");
  EXPECT_EQ(doc.Find("config")->Find("smoke")->string, "1");
  EXPECT_TRUE(doc.Find("counters")->object.empty());
  EXPECT_TRUE(doc.Find("events")->array.empty());
  // No profiler passed: the optional section is absent, not empty.
  EXPECT_EQ(doc.Find("profile_sections"), nullptr);
}

TEST(ReportSchemaTest, TraceRingOverflowIsAccountedInMeta) {
  obs::Sink sink(/*trace_ring_capacity=*/8);
  const uint32_t track = sink.trace().InternTrack("t");
  const uint32_t name = sink.trace().InternName("e");
  for (int i = 0; i < 20; ++i) {
    sink.trace().Emit(track, name, obs::EventKind::kPoint, i);
  }
  const JsonValue doc = MustParse(ReportString(sink));
  const JsonValue* meta = doc.Find("meta");
  ASSERT_NE(meta, nullptr);
  ASSERT_NE(meta->Find("dropped_events"), nullptr);
  EXPECT_DOUBLE_EQ(meta->Find("dropped_events")->number, 12.0);
  EXPECT_EQ(doc.Find("events")->array.size(), 8u);
}

TEST(ReportSchemaTest, HistogramObservationExactlyOnBucketBound) {
  // A value exactly on a bucket's upper bound lands in that bucket, and the
  // JSON carries it there (satellite: bound-exact observation).
  obs::Sink sink;
  obs::Histogram* h =
      sink.metrics().histogram("lat_seconds", {0.1, 1.0, 10.0});
  h->Observe(1.0);  // exactly the second bound -> bucket "<=1"
  const JsonValue doc = MustParse(ReportString(sink));
  const JsonValue* hist = nullptr;
  for (const JsonValue& entry : doc.Find("histograms")->array) {
    if (entry.Find("name")->string == "lat_seconds") hist = &entry;
  }
  ASSERT_NE(hist, nullptr);
  const JsonValue* counts = hist->Find("counts");
  ASSERT_NE(counts, nullptr);
  ASSERT_EQ(counts->array.size(), 4u);
  EXPECT_DOUBLE_EQ(counts->array[0].number, 0.0);
  EXPECT_DOUBLE_EQ(counts->array[1].number, 1.0);
  EXPECT_DOUBLE_EQ(counts->array[2].number, 0.0);
  EXPECT_DOUBLE_EQ(hist->Find("total")->number, 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->number, 1.0);
}

TEST(ReportSchemaTest, KpisAndProfileSectionsFlowThrough) {
  obs::Sink sink;
  sink.Count("engine.probes", 100);
  obs::Profiler profiler;
  {
    obs::ProfileScope scope(&profiler, "scenario/x");
  }
  const JsonValue doc = MustParse(
      ReportString(sink, &profiler, {{"custom.kpi", 42.5}}));
  EXPECT_DOUBLE_EQ(doc.Find("kpis")->Find("custom.kpi")->number, 42.5);
  const JsonValue* sections = doc.Find("profile_sections");
  ASSERT_NE(sections, nullptr);
  ASSERT_EQ(sections->array.size(), 1u);
  EXPECT_EQ(sections->array[0].Find("name")->string, "scenario/x");
}

// ---------------------------------------------------------------------------
// GlobMatch + baseline rules
// ---------------------------------------------------------------------------

TEST(DiffRulesTest, GlobMatchHandlesLiteralPrefixSuffixAndStar) {
  EXPECT_TRUE(obs::GlobMatch("engine.probes", "engine.probes"));
  EXPECT_FALSE(obs::GlobMatch("engine.probes", "engine.probes_feasible"));
  EXPECT_TRUE(obs::GlobMatch("engine.*", "engine.probes"));
  EXPECT_FALSE(obs::GlobMatch("engine.*", "portfolio.runs"));
  EXPECT_TRUE(obs::GlobMatch("*_per_sec", "move_delta_ops_per_sec"));
  EXPECT_FALSE(obs::GlobMatch("*_per_sec", "mean_seconds"));
  EXPECT_TRUE(obs::GlobMatch("*", "anything"));
}

TEST(DiffRulesTest, ApplyBaselineRulesOverlaysEmbeddedDiffRules) {
  const JsonValue baseline = MustParse(R"({
    "schema_version": 1, "bench": "b",
    "diff_rules": {
      "timing_ratio": 2.5,
      "exact_counters": ["controller.*", "portfolio.runs"],
      "skip": ["flaky.*"]
    }
  })");
  obs::DiffOptions options;
  obs::ApplyBaselineRules(baseline, &options);
  EXPECT_DOUBLE_EQ(options.timing_ratio, 2.5);
  EXPECT_DOUBLE_EQ(options.kpi_ratio, 4.0);  // untouched default
  ASSERT_EQ(options.exact_counters.size(), 2u);
  EXPECT_EQ(options.exact_counters[0], "controller.*");
  ASSERT_EQ(options.skip.size(), 1u);
  EXPECT_EQ(options.skip[0], "flaky.*");
}

// ---------------------------------------------------------------------------
// DiffReports
// ---------------------------------------------------------------------------

std::string SinkReport(int64_t probes, double solve_seconds,
                       double rate_kpi) {
  obs::Sink sink;
  sink.Count("engine.probes", probes);
  sink.metrics().gauge("bench.total_seconds")->Set(solve_seconds);
  std::ostringstream os;
  obs::WriteBenchReport(os, "unit", {}, sink, nullptr,
                        {{"probe_rate_per_sec", rate_kpi},
                         {"latency_mean_seconds", solve_seconds}});
  return os.str();
}

TEST(DiffReportsTest, IdenticalReportsPass) {
  const JsonValue doc = MustParse(SinkReport(100, 2.0, 50.0));
  obs::DiffOptions options;
  options.timing_ratio = 1.5;
  const obs::DiffResult result = obs::DiffReports(doc, doc, options);
  EXPECT_TRUE(result.ok) << (result.failures.empty() ? ""
                                                     : result.failures[0]);
  EXPECT_TRUE(result.failures.empty());
}

TEST(DiffReportsTest, CounterMismatchFailsExactly) {
  const JsonValue baseline = MustParse(SinkReport(100, 2.0, 50.0));
  const JsonValue current = MustParse(SinkReport(101, 2.0, 50.0));
  const obs::DiffResult result =
      obs::DiffReports(baseline, current, obs::DiffOptions{});
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("engine.probes"), std::string::npos);
}

TEST(DiffReportsTest, ExactCounterGlobsDemoteOtherCountersToNotes) {
  const JsonValue baseline = MustParse(SinkReport(100, 2.0, 50.0));
  const JsonValue current = MustParse(SinkReport(101, 2.0, 50.0));
  obs::DiffOptions options;
  options.exact_counters = {"portfolio.*"};  // engine.probes not gated
  const obs::DiffResult result = obs::DiffReports(baseline, current, options);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.notes.empty());
}

TEST(DiffReportsTest, InjectedDoubleTimingFailsRatioGate) {
  // The CI self-test scenario: same counters, 2x wall time must fail at
  // timing_ratio 1.5 on both the seconds-gauge and the latency KPI.
  const JsonValue baseline = MustParse(SinkReport(100, 2.0, 50.0));
  const JsonValue current = MustParse(SinkReport(100, 4.0, 50.0));
  obs::DiffOptions options;
  options.timing_ratio = 1.5;
  options.kpi_ratio = 1.5;
  const obs::DiffResult result = obs::DiffReports(baseline, current, options);
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.failures.size(), 2u);
  // Without timing checks (ratio 0) the same pair passes the gauge but the
  // latency KPI ceiling still applies.
  obs::DiffOptions lax;
  lax.timing_ratio = 0;
  lax.kpi_ratio = 1.5;
  const obs::DiffResult lax_result = obs::DiffReports(baseline, current, lax);
  EXPECT_FALSE(lax_result.ok);
  for (const std::string& failure : lax_result.failures) {
    EXPECT_EQ(failure.find("gauge"), std::string::npos) << failure;
  }
}

TEST(DiffReportsTest, RateKpiFloorCatchesThroughputCollapse) {
  const JsonValue baseline = MustParse(SinkReport(100, 2.0, 50.0));
  const JsonValue slower = MustParse(SinkReport(100, 2.0, 10.0));
  obs::DiffOptions options;
  options.kpi_ratio = 4.0;  // floor at 50/4 = 12.5 > 10
  const obs::DiffResult result = obs::DiffReports(baseline, slower, options);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures[0].find("probe_rate_per_sec"), std::string::npos);
  // A faster run never fails the floor.
  const JsonValue faster = MustParse(SinkReport(100, 2.0, 500.0));
  EXPECT_TRUE(obs::DiffReports(baseline, faster, options).ok);
}

TEST(DiffReportsTest, SkipGlobsSilenceMetricsEntirely) {
  const JsonValue baseline = MustParse(SinkReport(100, 2.0, 50.0));
  const JsonValue current = MustParse(SinkReport(999, 2.0, 50.0));
  obs::DiffOptions options;
  options.skip = {"engine.*"};
  const obs::DiffResult result = obs::DiffReports(baseline, current, options);
  EXPECT_TRUE(result.ok) << (result.failures.empty() ? ""
                                                     : result.failures[0]);
}

TEST(DiffReportsTest, MismatchedSchemaOrBenchNameFails) {
  const JsonValue a = MustParse(SinkReport(100, 2.0, 50.0));
  JsonValue wrong_bench = a;
  for (auto& member : wrong_bench.object) {
    if (member.first == "bench") member.second.string = "other";
  }
  EXPECT_FALSE(obs::DiffReports(a, wrong_bench, obs::DiffOptions{}).ok);

  JsonValue wrong_version = a;
  for (auto& member : wrong_version.object) {
    if (member.first == "schema_version") member.second.number = 99;
  }
  EXPECT_FALSE(obs::DiffReports(wrong_version, a, obs::DiffOptions{}).ok);
}

}  // namespace
}  // namespace kairos
