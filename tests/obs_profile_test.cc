// Tests for the span profiler (obs/profile.h): explicit section timing via
// Profiler, span-derived profiles via BuildSpanProfile, and — the
// acceptance contract — controller transcripts byte-identical with a
// profiler attached vs detached at every portfolio thread count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/profile.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "online/controller.h"
#include "online/telemetry.h"
#include "trace/scenario.h"
#include "util/json.h"

namespace kairos {
namespace {

// ---------------------------------------------------------------------------
// Profiler: explicit section stack
// ---------------------------------------------------------------------------

TEST(ProfilerTest, NestedSectionsSplitSelfFromTotal) {
  obs::Profiler profiler;
  const uint32_t outer = profiler.InternSection("outer");
  const uint32_t inner = profiler.InternSection("inner");

  profiler.Enter(outer);
  profiler.Enter(inner);
  profiler.Exit(inner);
  profiler.Exit(outer);

  const std::vector<obs::ProfileEntry> sections = profiler.SectionProfile();
  ASSERT_EQ(sections.size(), 2u);
  // Sorted by name: inner before outer.
  EXPECT_EQ(sections[0].name, "inner");
  EXPECT_EQ(sections[0].count, 1);
  EXPECT_EQ(sections[1].name, "outer");
  EXPECT_EQ(sections[1].count, 1);
  // The child's total is carved out of the parent's self time.
  EXPECT_GE(sections[1].total_seconds, sections[0].total_seconds);
  EXPECT_LE(sections[1].self_seconds,
            sections[1].total_seconds - sections[0].total_seconds + 1e-6);
  // Leaf sections have self == total.
  EXPECT_DOUBLE_EQ(sections[0].self_seconds, sections[0].total_seconds);
}

TEST(ProfilerTest, ProfileScopeIsRaiiAndNullSafe) {
  obs::Profiler profiler;
  {
    obs::ProfileScope outer(&profiler, "outer");
    obs::ProfileScope inner(&profiler, "inner");
  }
  {
    // Null profiler: every operation is a no-op, not a crash.
    obs::ProfileScope noop(nullptr, "ignored");
  }
  const std::vector<obs::ProfileEntry> sections = profiler.SectionProfile();
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].name, "inner");
  EXPECT_EQ(sections[1].name, "outer");
}

TEST(ProfilerTest, MergesTalliesAcrossThreads) {
  obs::Profiler profiler;
  const uint32_t section = profiler.InternSection("work");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&profiler, section] {
      for (int i = 0; i < kPerThread; ++i) {
        profiler.Enter(section);
        profiler.Exit(section);
      }
    });
  }
  for (auto& th : pool) th.join();
  const std::vector<obs::ProfileEntry> sections = profiler.SectionProfile();
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].count, int64_t{kThreads} * kPerThread);
}

TEST(ProfilerTest, MismatchedExitIsIgnored) {
  obs::Profiler profiler;
  const uint32_t a = profiler.InternSection("a");
  const uint32_t b = profiler.InternSection("b");
  profiler.Enter(a);
  profiler.Exit(b);  // not the top of the stack: ignored
  profiler.Exit(a);
  const std::vector<obs::ProfileEntry> sections = profiler.SectionProfile();
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].name, "a");
  EXPECT_EQ(sections[0].count, 1);
}

TEST(ProfilerTest, ExportJsonParsesAndExportTextListsSections) {
  obs::Profiler profiler;
  {
    obs::ProfileScope scope(&profiler, "solve");
  }
  std::ostringstream os;
  profiler.ExportJson(os);
  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::JsonValue::Parse(os.str(), &doc, &error)) << error;
  const util::JsonValue* sections = doc.Find("sections");
  ASSERT_NE(sections, nullptr);
  ASSERT_TRUE(sections->is_array());
  ASSERT_EQ(sections->array.size(), 1u);
  EXPECT_EQ(sections->array[0].Find("name")->string, "solve");
  EXPECT_DOUBLE_EQ(sections->array[0].Find("count")->number, 1.0);

  const std::string text = profiler.ExportText();
  EXPECT_NE(text.find("solve"), std::string::npos);
}

// ---------------------------------------------------------------------------
// BuildSpanProfile: span-derived self/total
// ---------------------------------------------------------------------------

TEST(SpanProfileTest, NestedSpansAggregateSelfAndTotal) {
  obs::TraceSink trace;
  const uint32_t track = trace.InternTrack("t");
  const uint32_t outer = trace.InternName("outer");
  const uint32_t inner = trace.InternName("inner");
  // outer [0, 10s] containing inner [1, 4s]: emitted as kBegin/kEnd pairs
  // with d1 = duration on the kEnd.
  trace.Emit(track, outer, obs::EventKind::kBegin, 0);
  trace.Emit(track, inner, obs::EventKind::kBegin, 0);
  trace.Emit(track, inner, obs::EventKind::kEnd, 0, 0, 0.0, 4.0);
  trace.Emit(track, outer, obs::EventKind::kEnd, 0, 0, 0.0, 10.0);

  const std::vector<obs::ProfileEntry> profile = obs::BuildSpanProfile(trace);
  ASSERT_EQ(profile.size(), 2u);
  // Sorted by (track, name): "inner" interned after "outer" but names sort
  // lexicographically within the track.
  const obs::ProfileEntry* inner_entry = nullptr;
  const obs::ProfileEntry* outer_entry = nullptr;
  for (const auto& e : profile) {
    if (e.name == "inner") inner_entry = &e;
    if (e.name == "outer") outer_entry = &e;
  }
  ASSERT_NE(inner_entry, nullptr);
  ASSERT_NE(outer_entry, nullptr);
  EXPECT_EQ(inner_entry->count, 1);
  EXPECT_DOUBLE_EQ(inner_entry->total_seconds, 4.0);
  EXPECT_DOUBLE_EQ(inner_entry->self_seconds, 4.0);
  EXPECT_EQ(outer_entry->count, 1);
  EXPECT_DOUBLE_EQ(outer_entry->total_seconds, 10.0);
  EXPECT_DOUBLE_EQ(outer_entry->self_seconds, 6.0);
}

TEST(SpanProfileTest, UnmatchedSpansAreDroppedNotCrashed) {
  obs::TraceSink trace;
  const uint32_t track = trace.InternTrack("t");
  const uint32_t open_only = trace.InternName("open-only");
  const uint32_t orphan = trace.InternName("orphan");
  const uint32_t good = trace.InternName("good");
  trace.Emit(track, open_only, obs::EventKind::kBegin, 0);  // never closed
  trace.Emit(track, orphan, obs::EventKind::kEnd, 0, 0, 0.0, 3.0);  // no open
  trace.Emit(track, good, obs::EventKind::kBegin, 0);
  trace.Emit(track, good, obs::EventKind::kEnd, 0, 0, 0.0, 2.0);

  const std::vector<obs::ProfileEntry> profile = obs::BuildSpanProfile(trace);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile[0].name, "good");
  EXPECT_DOUBLE_EQ(profile[0].total_seconds, 2.0);
}

// ---------------------------------------------------------------------------
// Determinism: profiler attached vs detached
// ---------------------------------------------------------------------------

TEST(ProfilerIdentityTest, ControllerTranscriptByteIdenticalAtEveryThreadCount) {
  trace::ScenarioConfig scenario_config;
  scenario_config.steps = 48;
  scenario_config.seed = 11;
  const trace::ScenarioTelemetry scenario =
      trace::MakeScenario(trace::ScenarioKind::kDiurnal, scenario_config);

  online::ControllerConfig config;
  config.base.workloads = scenario.profiles;
  config.num_servers = 4;
  config.seed = 11;

  for (int threads : {1, 2, 4}) {
    config.threads = threads;

    config.sink = nullptr;
    online::ConsolidationController plain(config);
    online::ReplayFeed plain_feed =
        online::ReplayFeed::FromProfiles(scenario.profiles);
    plain.RunToEnd(&plain_feed);

    // Attached run: sink + profiler sections wrapped around the drain, the
    // exact instrumentation shape BenchReporter uses.
    obs::Sink sink;
    obs::Profiler profiler;
    config.sink = &sink;
    online::ConsolidationController observed(config);
    online::ReplayFeed observed_feed =
        online::ReplayFeed::FromProfiles(scenario.profiles);
    observed_feed.AttachSink(&sink);
    {
      obs::ProfileScope scope(&profiler, "scenario/diurnal");
      observed.RunToEnd(&observed_feed);
    }

    EXPECT_EQ(observed.RenderHistory(), plain.RenderHistory())
        << "threads=" << threads;
    // The profiler actually recorded the drain.
    const std::vector<obs::ProfileEntry> sections = profiler.SectionProfile();
    ASSERT_EQ(sections.size(), 1u);
    EXPECT_EQ(sections[0].count, 1);
    EXPECT_GT(sections[0].total_seconds, 0.0);
    // The ingestion counters flowed through feed and controller alike.
    EXPECT_EQ(sink.metrics().counter("telemetry.steps_emitted")->Value(), 48);
    EXPECT_EQ(sink.metrics().counter("controller.steps_ingested")->Value(), 48);
  }
}

}  // namespace
}  // namespace kairos
