#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/units.h"

namespace kairos::core {
namespace {

monitor::WorkloadProfile MakeProfile(const std::string& name, double cpu_cores,
                                     double ram_gb, double rows = 0,
                                     int samples = 4) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, samples, cpu_cores);
  p.ram_bytes = util::TimeSeries::Constant(300, samples,
                                           ram_gb * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, samples, rows);
  p.working_set_bytes = ram_gb * 0.8 * static_cast<double>(util::kGiB);
  return p;
}

ConsolidationProblem SmallProblem(int n, double cpu_each = 1.0, double ram_gb = 8.0) {
  ConsolidationProblem prob;
  for (int i = 0; i < n; ++i) {
    prob.workloads.push_back(MakeProfile("w" + std::to_string(i), cpu_each, ram_gb));
  }
  return prob;
}

TEST(EvaluatorTest, FewerServersAlwaysCheaper) {
  ConsolidationProblem prob = SmallProblem(4, 0.5, 4.0);
  Evaluator ev(prob, 4);
  // All on one server (fits easily) vs spread across four.
  const double packed = ev.Evaluate({0, 0, 0, 0});
  const double spread = ev.Evaluate({0, 1, 2, 3});
  EXPECT_LT(packed, spread);
}

TEST(EvaluatorTest, BalancePreferredAtEqualServerCount) {
  ConsolidationProblem prob = SmallProblem(4, 2.0, 8.0);
  Evaluator ev(prob, 2);
  const double balanced = ev.Evaluate({0, 0, 1, 1});
  const double skewed = ev.Evaluate({0, 0, 0, 1});
  EXPECT_LT(balanced, skewed);
}

TEST(EvaluatorTest, CpuViolationPenalized) {
  // 12-core target: 8 workloads of 2 cores each = 16 cores on one server.
  ConsolidationProblem prob = SmallProblem(8, 2.0, 1.0);
  Evaluator ev(prob, 8);
  std::vector<int> packed(8, 0);
  std::vector<int> spread{0, 0, 0, 1, 1, 1, 0, 1};
  EXPECT_GT(ev.Evaluate(packed), ev.Evaluate(spread));
  ev.Load(packed);
  EXPECT_FALSE(ev.IsFeasible());
  ev.Load(spread);
  EXPECT_TRUE(ev.IsFeasible());
}

TEST(EvaluatorTest, RamViolationPenalized) {
  // 96 GB target: two 60 GB workloads cannot share.
  ConsolidationProblem prob = SmallProblem(2, 0.1, 60.0);
  Evaluator ev(prob, 2);
  ev.Load({0, 0});
  EXPECT_FALSE(ev.IsFeasible());
  ev.Load({0, 1});
  EXPECT_TRUE(ev.IsFeasible());
}

TEST(EvaluatorTest, ReplicasForcedApart) {
  ConsolidationProblem prob = SmallProblem(2, 0.5, 4.0);
  prob.workloads[0].replicas = 2;
  Evaluator ev(prob, 3);
  ASSERT_EQ(ev.num_slots(), 3);
  // Slots 0,1 are replicas of workload 0.
  ev.Load({0, 0, 1});
  EXPECT_FALSE(ev.IsFeasible());
  ev.Load({0, 1, 1});
  EXPECT_TRUE(ev.IsFeasible());
}

TEST(EvaluatorTest, AntiAffinityPairs) {
  ConsolidationProblem prob = SmallProblem(3, 0.5, 4.0);
  prob.anti_affinity.push_back({0, 1});
  Evaluator ev(prob, 2);
  ev.Load({0, 0, 1});
  EXPECT_FALSE(ev.IsFeasible());
  ev.Load({0, 1, 0});
  EXPECT_TRUE(ev.IsFeasible());
}

TEST(EvaluatorTest, PinnedSlotPenalizedElsewhere) {
  ConsolidationProblem prob = SmallProblem(2, 0.5, 4.0);
  prob.workloads[1].pinned_server = 1;
  Evaluator ev(prob, 2);
  const double wrong = ev.Evaluate({0, 0});
  const double right = ev.Evaluate({0, 1});
  EXPECT_GT(wrong, right + 1e6);
}

TEST(EvaluatorTest, MoveDeltaMatchesFullRecompute) {
  ConsolidationProblem prob = SmallProblem(6, 1.3, 9.0);
  prob.workloads[2].replicas = 2;
  Evaluator ev(prob, 4);
  util::Rng rng(3);
  std::vector<int> assignment(ev.num_slots());
  for (auto& a : assignment) a = static_cast<int>(rng.UniformInt(0, 3));
  ev.Load(assignment);
  for (int trial = 0; trial < 200; ++trial) {
    const int slot = static_cast<int>(rng.UniformInt(0, ev.num_slots() - 1));
    const int to = static_cast<int>(rng.UniformInt(0, 3));
    const double delta = ev.MoveDelta(slot, to);
    std::vector<int> moved = ev.assignment();
    const double before = ev.Evaluate(moved);
    moved[slot] = to;
    const double after = ev.Evaluate(moved);
    EXPECT_NEAR(delta, after - before, 1e-6 * std::max(1.0, std::abs(after)));
    // Occasionally apply the move to vary the cached state.
    if (trial % 3 == 0) ev.ApplyMove(slot, to);
  }
}

TEST(EvaluatorTest, ApplyMoveKeepsCostConsistent) {
  ConsolidationProblem prob = SmallProblem(5, 0.8, 6.0);
  Evaluator ev(prob, 3);
  util::Rng rng(4);
  std::vector<int> assignment(ev.num_slots(), 0);
  ev.Load(assignment);
  for (int i = 0; i < 100; ++i) {
    const int slot = static_cast<int>(rng.UniformInt(0, ev.num_slots() - 1));
    const int to = static_cast<int>(rng.UniformInt(0, 2));
    ev.ApplyMove(slot, to);
  }
  EXPECT_NEAR(ev.current_cost(), ev.Evaluate(ev.assignment()),
              1e-6 * std::max(1.0, ev.current_cost()));
}

TEST(EvaluatorTest, ServerLoadSnapshot) {
  ConsolidationProblem prob = SmallProblem(3, 1.0, 8.0);
  Evaluator ev(prob, 2);
  ev.Load({0, 0, 1});
  const auto s0 = ev.GetServerLoad(0);
  const auto s1 = ev.GetServerLoad(1);
  EXPECT_TRUE(s0.used);
  EXPECT_EQ(s0.num_slots, 2);
  EXPECT_EQ(s1.num_slots, 1);
  // Two workloads' CPU plus one instance overhead.
  EXPECT_NEAR(s0.cpu_cores[0], 2.0 - prob.per_instance_cpu_overhead_cores, 1e-9);
  const auto unused = [&] {
    Evaluator e2(prob, 3);
    e2.Load({0, 0, 0});
    return e2.GetServerLoad(2);
  }();
  EXPECT_FALSE(unused.used);
}

TEST(EvaluatorTest, DiskConstraintViaModel) {
  // A fake disk model from synthetic points: max rate ~ 10000 regardless
  // of working set (flat frontier over the fitted range).
  std::vector<model::ProfilePoint> points;
  for (double ws : {1e9, 2e9, 3e9}) {
    for (double rate : {2000.0, 6000.0, 10000.0}) {
      model::ProfilePoint p;
      p.working_set_bytes = ws;
      p.target_rows_per_sec = rate;
      p.achieved_rows_per_sec = rate;
      p.write_bytes_per_sec = 150 * rate;
      points.push_back(p);
    }
  }
  const model::DiskModel m = model::DiskModel::Fit(points);
  ASSERT_TRUE(m.valid());

  ConsolidationProblem prob;
  prob.disk_model = &m;
  prob.workloads.push_back(MakeProfile("a", 0.2, 4.0, 7000));
  prob.workloads.push_back(MakeProfile("b", 0.2, 4.0, 7000));
  Evaluator ev(prob, 2);
  ev.Load({0, 0});  // 14000 rows/s > 0.9 * ~10000
  EXPECT_FALSE(ev.IsFeasible());
  ev.Load({0, 1});
  EXPECT_TRUE(ev.IsFeasible());
}

TEST(EvaluatorMigrationTest, ChargesMovedSlots) {
  ConsolidationProblem prob = SmallProblem(4, 0.5, 4.0);
  prob.current_assignment = {0, 0, 1, 1};
  prob.migration_cost_weight = 10.0;
  prob.migration_move_cost = {1.0, 2.0, 1.0, 1.0};
  Evaluator ev(prob, 2);

  ev.Load({0, 0, 1, 1});  // stay put: no penalty
  EXPECT_DOUBLE_EQ(ev.migration_cost(), 0.0);
  EXPECT_EQ(ev.MovesFromCurrent(), 0);

  ev.Load({1, 0, 1, 0});  // w0 moves (cost 1), w3 moves (cost 1)
  EXPECT_DOUBLE_EQ(ev.migration_cost(), 20.0);
  EXPECT_EQ(ev.MovesFromCurrent(), 2);

  ev.Load({0, 1, 1, 1});  // w1 moves at double cost
  EXPECT_DOUBLE_EQ(ev.migration_cost(), 20.0);

  // One-shot and incremental evaluation agree, including the penalty.
  EXPECT_DOUBLE_EQ(ev.Evaluate({1, 0, 1, 0}),
                   [&] { Evaluator e2(prob, 2); e2.Load({1, 0, 1, 0});
                         return e2.current_cost(); }());
}

TEST(EvaluatorMigrationTest, MoveDeltaMatchesReload) {
  ConsolidationProblem prob = SmallProblem(5, 0.8, 6.0);
  prob.current_assignment = {0, 0, 1, 1, 2};
  prob.migration_cost_weight = 25.0;
  Evaluator ev(prob, 3);
  ev.Load({0, 0, 1, 1, 2});

  for (int slot = 0; slot < 5; ++slot) {
    for (int to = 0; to < 3; ++to) {
      const double predicted = ev.current_cost() + ev.MoveDelta(slot, to);
      Evaluator fresh(prob, 3);
      std::vector<int> moved = ev.assignment();
      moved[slot] = to;
      fresh.Load(moved);
      EXPECT_NEAR(predicted, fresh.current_cost(), 1e-6)
          << "slot " << slot << " -> " << to;
    }
  }

  // ApplyMove keeps the incremental migration cost in sync with a reload.
  ev.ApplyMove(0, 2);
  ev.ApplyMove(4, 0);
  Evaluator fresh(prob, 3);
  fresh.Load(ev.assignment());
  EXPECT_NEAR(ev.current_cost(), fresh.current_cost(), 1e-6);
  EXPECT_DOUBLE_EQ(ev.migration_cost(), fresh.migration_cost());
  EXPECT_EQ(ev.MovesFromCurrent(), 2);
}

TEST(EvaluatorBatchTest, MoveDeltaBatchBitIdenticalToScalar) {
  // A problem exercising every delta term at once: pins, anti-affinity,
  // replicas, and a migration penalty. The batch path must reproduce the
  // scalar MoveDelta bit for bit (same FP association), not just closely.
  ConsolidationProblem prob = SmallProblem(8, 0.9, 6.0);
  prob.workloads[1].replicas = 2;
  prob.workloads[2].pinned_server = 1;
  prob.anti_affinity = {{3, 4}};
  prob.current_assignment = {0, 1, 1, 1, 2, 2, 0, 3, 3};
  prob.migration_cost_weight = 25.0;

  const int cap = 4;
  Evaluator ev(prob, cap);
  ev.Load({0, 1, 2, 1, 2, 3, 0, 1, 3});

  std::vector<int> targets(cap);
  for (int j = 0; j < cap; ++j) targets[j] = j;
  std::vector<double> deltas;
  for (int slot = 0; slot < ev.num_slots(); ++slot) {
    ev.MoveDeltaBatch(slot, targets, &deltas);
    ASSERT_EQ(deltas.size(), targets.size());
    for (int i = 0; i < cap; ++i) {
      EXPECT_EQ(deltas[i], ev.MoveDelta(slot, targets[i]))
          << "slot " << slot << " -> " << targets[i];
    }
  }

  // Still exact after incremental mutation (dirty-list scratch reuse).
  ev.ApplyMove(0, 3);
  ev.ApplyMove(5, 0);
  for (int slot = 0; slot < ev.num_slots(); ++slot) {
    ev.MoveDeltaBatch(slot, targets, &deltas);
    for (int i = 0; i < cap; ++i) {
      EXPECT_EQ(deltas[i], ev.MoveDelta(slot, targets[i]))
          << "post-move slot " << slot << " -> " << targets[i];
    }
  }
}

TEST(EvaluatorMigrationTest, ServerSavingsStillDominateMoves) {
  // Consolidating 2 -> 1 servers saves kServerCost, which must beat moving
  // every slot at the default weight.
  ConsolidationProblem prob = SmallProblem(4, 0.5, 4.0);
  prob.current_assignment = {0, 0, 1, 1};
  prob.migration_cost_weight = 25.0;
  Evaluator ev(prob, 2);
  EXPECT_LT(ev.Evaluate({0, 0, 0, 0}), ev.Evaluate({0, 0, 1, 1}));
}

}  // namespace
}  // namespace kairos::core
