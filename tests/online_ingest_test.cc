// Striped parallel ingestion: the StripeMap layout, bit-identity of the SoA
// estimator banks against the scalar estimators, thread-count independence
// of the IngestPlane, the sharded drift scan, and byte-identical controller
// transcripts at 1/2/4/8 ingest threads.
#include "online/ingest.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/sink.h"
#include "online/controller.h"
#include "online/drift.h"
#include "online/estimators.h"
#include "online/streaming_profile.h"
#include "online/telemetry.h"
#include "trace/scenario.h"
#include "util/rng.h"
#include "util/units.h"

namespace kairos::online {
namespace {

// ---------------------------------------------------------------------------
// StripeMap
// ---------------------------------------------------------------------------

TEST(StripeMapTest, ContiguousDisjointRangesCoverEveryStream) {
  const StripeMap map(37, 5);
  EXPECT_EQ(map.num_streams(), 37);
  EXPECT_EQ(map.num_stripes(), 5);
  EXPECT_EQ(map.begin(0), 0);
  EXPECT_EQ(map.end(map.num_stripes() - 1), 37);
  for (int s = 0; s + 1 < map.num_stripes(); ++s) {
    EXPECT_EQ(map.end(s), map.begin(s + 1));  // contiguous, no gap
  }
  // Even split: sizes differ by at most one, fat stripes first.
  for (int s = 0; s < map.num_stripes(); ++s) {
    EXPECT_GE(map.size(s), 37 / 5);
    EXPECT_LE(map.size(s), 37 / 5 + 1);
    if (s > 0) EXPECT_LE(map.size(s), map.size(s - 1));
  }
  // StripeOf inverts begin/end for every stream.
  for (int w = 0; w < map.num_streams(); ++w) {
    const int s = map.StripeOf(w);
    EXPECT_GE(w, map.begin(s));
    EXPECT_LT(w, map.end(s));
  }
}

TEST(StripeMapTest, StripeCountClampsToStreams) {
  EXPECT_EQ(StripeMap(3, 16).num_stripes(), 3);
  EXPECT_EQ(StripeMap(1, 0).num_stripes(), 1);
}

TEST(StripeMapTest, AutoStripesDependsOnlyOnStreamCount) {
  EXPECT_EQ(StripeMap::AutoStripes(1), 1);
  EXPECT_EQ(StripeMap::AutoStripes(2048), 1);
  EXPECT_EQ(StripeMap::AutoStripes(2049), 2);
  EXPECT_EQ(StripeMap::AutoStripes(1 << 20), 256);  // clamp
  // StripeMap(n, 0) adopts the auto count.
  EXPECT_EQ(StripeMap(5000, 0).num_stripes(), StripeMap::AutoStripes(5000));
}

// ---------------------------------------------------------------------------
// SoA banks vs scalar estimators: bit-identical state evolution
// ---------------------------------------------------------------------------

TEST(EstimatorBankTest, RollingWindowBankMatchesScalarBitExact) {
  constexpr int kStreams = 3;
  constexpr size_t kCapacity = 5;
  std::vector<RollingWindow> scalar(kStreams, RollingWindow(kCapacity, 300.0));
  RollingWindowBank bank(kStreams, kCapacity, 300.0);

  util::Rng rng(17);
  for (int t = 0; t < 23; ++t) {
    for (int w = 0; w < kStreams; ++w) {
      const double x = rng.Exponential(2.0);
      scalar[w].Push(x);
      bank.Push(w, x);
    }
    bank.CommitStep();
    for (int w = 0; w < kStreams; ++w) {
      // EXPECT_EQ, not NEAR: the bank must run the identical FP operations
      // in the identical order, at every prefix including the ring wrap.
      EXPECT_EQ(bank.Mean(w), scalar[w].Mean()) << "t=" << t << " w=" << w;
      EXPECT_EQ(bank.Max(w), scalar[w].Max()) << "t=" << t << " w=" << w;
      const util::TimeSeries a = bank.ToSeries(w);
      const util::TimeSeries b = scalar[w].ToSeries();
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), b.at(i));
    }
  }
  EXPECT_TRUE(bank.full());
}

TEST(EstimatorBankTest, P2QuantileBankMatchesScalarBitExact) {
  constexpr int kStreams = 3;
  std::vector<P2Quantile> scalar(kStreams, P2Quantile(0.95));
  P2QuantileBank bank(kStreams, 0.95);

  util::Rng rng(23);
  for (int t = 0; t < 1000; ++t) {
    for (int w = 0; w < kStreams; ++w) {
      // Distinct distributions per stream so marker paths diverge.
      const double x = w == 0   ? rng.Exponential(10.0)
                       : w == 1 ? rng.Gaussian(5.0, 2.0)
                                : rng.Uniform(0.0, 1.0);
      scalar[w].Add(x);
      bank.Add(w, x);
    }
    bank.CommitStep();
    // Every prefix, including the exact small-sample path (count < 5) and
    // the first marker-interpolation steps.
    for (int w = 0; w < kStreams; ++w) {
      EXPECT_EQ(bank.Estimate(w), scalar[w].Estimate()) << "t=" << t << " w=" << w;
    }
  }
}

TEST(EstimatorBankTest, DecayingMaxBankMatchesScalarBitExact) {
  constexpr int kStreams = 2;
  std::vector<DecayingMax> scalar(kStreams, DecayingMax(0.995));
  DecayingMaxBank bank(kStreams, 0.995);
  util::Rng rng(31);
  for (int t = 0; t < 200; ++t) {
    for (int w = 0; w < kStreams; ++w) {
      const double x = rng.Exponential(6.0 * util::kGiB);
      scalar[w].Push(x);
      bank.Push(w, x);
      EXPECT_EQ(bank.value(w), scalar[w].value());
    }
  }
}

// ---------------------------------------------------------------------------
// StreamingProfileBuilder: batch protocol == serial Ingest
// ---------------------------------------------------------------------------

std::vector<TelemetrySample> RandomStep(util::Rng* rng, int streams) {
  std::vector<TelemetrySample> step(streams);
  for (auto& s : step) {
    s.cpu_cores = rng->Exponential(0.8);
    s.ram_bytes = rng->Uniform(1.0, 8.0) * static_cast<double>(util::kGiB);
    s.update_rows_per_sec = rng->Exponential(50.0);
    s.working_set_bytes = rng->Uniform(1.0, 6.0) * static_cast<double>(util::kGiB);
  }
  return step;
}

void ExpectSameState(StreamingProfileBuilder& a, StreamingProfileBuilder& b) {
  ASSERT_EQ(a.num_workloads(), b.num_workloads());
  EXPECT_EQ(a.samples_seen(), b.samples_seen());
  for (int w = 0; w < a.num_workloads(); ++w) {
    const monitor::WorkloadProfile pa = a.Profile(w);
    const monitor::WorkloadProfile pb = b.Profile(w);
    ASSERT_EQ(pa.cpu_cores.size(), pb.cpu_cores.size());
    for (size_t i = 0; i < pa.cpu_cores.size(); ++i) {
      EXPECT_EQ(pa.cpu_cores.at(i), pb.cpu_cores.at(i));
      EXPECT_EQ(pa.ram_bytes.at(i), pb.ram_bytes.at(i));
      EXPECT_EQ(pa.update_rows_per_sec.at(i), pb.update_rows_per_sec.at(i));
    }
    EXPECT_EQ(pa.working_set_bytes, pb.working_set_bytes);
    EXPECT_EQ(a.LifetimeP95Cpu(w), b.LifetimeP95Cpu(w));
    const monitor::ProfileStats sa = a.Stats(w);
    const monitor::ProfileStats sb = b.Stats(w);
    EXPECT_EQ(sa.p95_cpu_cores, sb.p95_cpu_cores);
    EXPECT_EQ(sa.p95_ram_bytes, sb.p95_ram_bytes);
    EXPECT_EQ(sa.mean_cpu_cores, sb.mean_cpu_cores);
  }
}

TEST(IngestPlaneTest, SplitBatchesMatchSerialIngest) {
  constexpr int kStreams = 11;
  StreamingProfileBuilder serial(kStreams, 7, 300.0);
  StreamingProfileBuilder batched(kStreams, 7, 300.0);

  util::Rng rng(41);
  for (int t = 0; t < 30; ++t) {
    const std::vector<TelemetrySample> step = RandomStep(&rng, kStreams);
    serial.Ingest(step);
    // Arbitrary uneven split, out of order: [7, 11) then [0, 3) then [3, 7).
    batched.IngestBatch(step.data(), 7, kStreams);
    batched.IngestBatch(step.data(), 0, 3);
    batched.IngestBatch(step.data(), 3, 7);
    batched.CommitStep();
  }
  ExpectSameState(serial, batched);
}

TEST(IngestPlaneTest, StateIdenticalAcrossThreadCounts) {
  constexpr int kStreams = 37;  // odd: uneven stripes
  constexpr int kSteps = 40;
  util::Rng rng(47);
  std::vector<std::vector<TelemetrySample>> steps;
  for (int t = 0; t < kSteps; ++t) steps.push_back(RandomStep(&rng, kStreams));

  StreamingProfileBuilder reference(kStreams, 12, 300.0);
  for (const auto& step : steps) reference.Ingest(step);

  for (int threads : {1, 2, 4, 8}) {
    StreamingProfileBuilder builder(kStreams, 12, 300.0);
    IngestOptions options;
    options.threads = threads;
    options.stripes = 5;
    IngestPlane plane(&builder, options);
    for (const auto& step : steps) plane.IngestStep(step);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameState(reference, builder);
  }
}

TEST(IngestPlaneTest, CountsStepsAndStripeBatches) {
  StreamingProfileBuilder builder(10, 4, 300.0);
  IngestOptions options;
  options.threads = 2;
  options.stripes = 3;
  IngestPlane plane(&builder, options);
  obs::Sink sink;
  plane.AttachSink(&sink);

  util::Rng rng(3);
  for (int t = 0; t < 6; ++t) plane.IngestStep(RandomStep(&rng, 10));

  EXPECT_EQ(sink.metrics().counter("ingest.steps")->Value(), 6);
  EXPECT_EQ(sink.metrics().counter("ingest.stripe_batches")->Value(), 18);
  EXPECT_EQ(sink.metrics().gauge("ingest.stripes")->Value(), 3.0);
  EXPECT_EQ(sink.metrics().gauge("ingest.threads")->Value(), 2.0);
}

// ---------------------------------------------------------------------------
// ReplayFeed buffer reuse
// ---------------------------------------------------------------------------

TEST(IngestPlaneTest, ReplayFeedNextReusesCallerBuffer) {
  util::Rng rng(5);
  std::vector<std::string> names = {"w0", "w1", "w2"};
  std::vector<std::vector<TelemetrySample>> steps;
  for (int t = 0; t < 10; ++t) steps.push_back(RandomStep(&rng, 3));
  ReplayFeed feed(names, steps);

  std::vector<TelemetrySample> samples;
  ASSERT_TRUE(feed.Next(&samples));
  const TelemetrySample* buffer = samples.data();
  while (feed.Next(&samples)) {
    // Steady state never reallocates: every step has the same workload
    // count, so assign() reuses the first step's capacity.
    EXPECT_EQ(samples.data(), buffer);
  }
}

// ---------------------------------------------------------------------------
// Sharded drift scan
// ---------------------------------------------------------------------------

monitor::ProfileStats StatsWithCpu(double p95_cpu) {
  monitor::ProfileStats stats;
  stats.p95_cpu_cores = p95_cpu;
  stats.p95_ram_bytes = 8e9;
  return stats;
}

TEST(DriftScanTest, PerStripeScansFoldToTheSerialDecision) {
  DriftConfig config;
  config.cooldown_steps = 0;
  DriftDetector detector(config);
  std::vector<monitor::ProfileStats> reference(8, StatsWithCpu(1.0));
  detector.Rebase(0, reference);

  // Streams 2 and 6 drift (different halves).
  std::vector<monitor::ProfileStats> current = reference;
  current[2] = StatsWithCpu(2.0);
  current[6] = StatsWithCpu(3.0);

  ASSERT_TRUE(detector.ScanEnabled(10, current.size()));
  const StripeMap map(8, 2);
  DriftScan folded;
  int drifted_shards = 0;
  for (int s = 0; s < map.num_stripes(); ++s) {
    const DriftScan scan = detector.ScanRange(current, map.begin(s), map.end(s));
    if (scan.drifted_streams == 0) continue;
    if (folded.first_stream < 0) folded.first_stream = scan.first_stream;
    folded.drifted_streams += scan.drifted_streams;
    ++drifted_shards;
  }
  const DriftDecision sharded = detector.Decide(folded, drifted_shards);
  const DriftDecision serial = detector.Check(10, current, false);

  EXPECT_TRUE(sharded.resolve);
  EXPECT_EQ(sharded.reason, serial.reason);
  EXPECT_EQ(sharded.reason, "drift:w2");  // lowest drifted stream wins
  EXPECT_EQ(sharded.first_stream, 2);
  EXPECT_EQ(sharded.drifted_streams, 2);
  EXPECT_EQ(serial.drifted_streams, 2);
  EXPECT_EQ(sharded.drifted_shards, 2);
}

TEST(DriftScanTest, CooldownAndSizeMismatchDisableTheScan) {
  DriftConfig config;
  config.cooldown_steps = 6;
  DriftDetector detector(config);
  EXPECT_FALSE(detector.ScanEnabled(3, 1));  // no reference yet
  detector.Rebase(0, {StatsWithCpu(1.0)});
  EXPECT_FALSE(detector.ScanEnabled(3, 1));  // inside cooldown
  EXPECT_TRUE(detector.ScanEnabled(6, 1));
  EXPECT_FALSE(detector.ScanEnabled(6, 2));  // stream-count mismatch
}

// ---------------------------------------------------------------------------
// Controller transcripts across ingest thread counts
// ---------------------------------------------------------------------------

std::string RunScenarioHistory(const trace::ScenarioTelemetry& scenario,
                               const ControllerConfig& config) {
  ConsolidationController controller(config);
  ReplayFeed feed = ReplayFeed::FromProfiles(scenario.profiles);
  controller.RunToEnd(&feed);
  return controller.RenderHistory();
}

ControllerConfig MakeScenarioConfig(const trace::ScenarioTelemetry& scenario) {
  ControllerConfig config;
  config.base.workloads = scenario.profiles;
  config.num_servers = 4;
  config.seed = 11;
  return config;
}

TEST(IngestControllerTest, HistoryByteIdenticalAcrossIngestThreads) {
  for (const trace::ScenarioKind kind :
       {trace::ScenarioKind::kDiurnal, trace::ScenarioKind::kFlashCrowd}) {
    trace::ScenarioConfig scenario_config;
    scenario_config.steps = 48;
    scenario_config.seed = 11;
    const trace::ScenarioTelemetry scenario =
        trace::MakeScenario(kind, scenario_config);
    SCOPED_TRACE(kind == trace::ScenarioKind::kDiurnal ? "diurnal"
                                                       : "flash-crowd");

    // Reference: the legacy serial path (no ingest plane at all).
    ControllerConfig config = MakeScenarioConfig(scenario);
    const std::string reference = RunScenarioHistory(scenario, config);
    ASSERT_FALSE(reference.empty());

    config.ingest_stripes = 4;
    for (int threads : {1, 2, 4, 8}) {
      config.ingest_threads = threads;
      SCOPED_TRACE("ingest_threads=" + std::to_string(threads));
      EXPECT_EQ(RunScenarioHistory(scenario, config), reference);
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-stream drift escalates past the shard repair
// ---------------------------------------------------------------------------

monitor::WorkloadProfile ConstantProfile(const std::string& name, double cpu,
                                         int steps) {
  monitor::WorkloadProfile p;
  p.name = name;
  p.cpu_cores = util::TimeSeries::Constant(300, steps, cpu);
  p.ram_bytes = util::TimeSeries::Constant(
      300, steps, 4.0 * static_cast<double>(util::kGiB));
  p.update_rows_per_sec = util::TimeSeries::Constant(300, steps, 10.0);
  p.working_set_bytes = 2.0 * static_cast<double>(util::kGiB);
  return p;
}

TEST(IngestControllerTest, MultiStreamDriftEscalatesToGlobalResolve) {
  // Four steady workloads; after step 12, two of them (in different
  // stripes) jump 60% — drift on two streams at once.
  constexpr int kSteps = 24;
  std::vector<monitor::WorkloadProfile> profiles;
  for (int w = 0; w < 4; ++w) {
    profiles.push_back(ConstantProfile("w" + std::to_string(w), 1.0, kSteps));
  }
  for (int t = 12; t < kSteps; ++t) {
    profiles[1].cpu_cores.mutable_values()[t] = 1.6;
    profiles[3].cpu_cores.mutable_values()[t] = 1.6;
  }

  obs::Sink sink;
  ControllerConfig config;
  config.base.workloads = profiles;
  config.num_servers = 4;
  config.seed = 11;
  config.migration_aware = true;
  config.shard_repair = true;
  config.shard.num_shards = 2;
  config.drift.cooldown_steps = 1;
  config.ingest_threads = 2;
  config.ingest_stripes = 2;  // streams 1 and 3 land in different stripes
  config.sink = &sink;

  ConsolidationController controller(config);
  ReplayFeed feed = ReplayFeed::FromProfiles(profiles);
  controller.RunToEnd(&feed);

  const ControlEvent* drift_event = nullptr;
  for (const auto& e : controller.history()) {
    if (e.reason.rfind("drift:", 0) == 0) drift_event = &e;
  }
  ASSERT_NE(drift_event, nullptr) << controller.RenderHistory();
  // Two streams drifted: the shard repair was bypassed for a full
  // portfolio re-solve.
  EXPECT_NE(drift_event->winner, "shard-repair");
  EXPECT_GE(sink.metrics().counter("controller.drift_escalations")->Value(), 1);
  EXPECT_EQ(sink.metrics().counter("controller.shard_repairs")->Value(), 0);
}

}  // namespace
}  // namespace kairos::online
