// End-to-end pipeline tests: monitor live workloads -> gauge RAM -> build
// profiles -> consolidate -> validate the plan by actually running the
// consolidated deployment (the Section 7.2 methodology in miniature).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "core/engine.h"
#include "db/server.h"
#include "model/analytic.h"
#include "monitor/gauge.h"
#include "monitor/resource_monitor.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"
#include "workload/patterns.h"

namespace kairos {
namespace {

workload::MicroSpec Spec(uint64_t ws_mb, double tps, double cpu_us,
                         std::shared_ptr<workload::LoadPattern> pattern = nullptr) {
  workload::MicroSpec spec;
  spec.working_set_bytes = ws_mb * util::kMiB;
  spec.data_bytes = 2 * ws_mb * util::kMiB;
  spec.reads_per_tx = 4;
  spec.updates_per_tx = 2;
  spec.cpu_us_per_tx = cpu_us;
  spec.pattern =
      pattern ? std::move(pattern) : std::make_shared<workload::FlatPattern>(tps);
  return spec;
}

// Monitors one workload on a dedicated server and returns its profile.
monitor::WorkloadProfile ProfileOne(const std::string& name,
                                    const workload::MicroSpec& spec, uint64_t seed) {
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 4 * util::kGiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, seed);
  workload::MicroWorkload w(name, spec);
  workload::Driver driver(&server, seed);
  driver.AddWorkload(&w);
  driver.Warm();
  driver.Run(2.0);
  monitor::ResourceMonitor monitor(monitor::MonitorConfig{});
  auto profiles = monitor.Collect(&driver, 8.0, {&w});
  return profiles[0];
}

TEST(IntegrationTest, MonitorProfileConsolidateValidate) {
  // Three modest workloads that clearly fit one Server1-class machine.
  std::vector<monitor::WorkloadProfile> profiles;
  profiles.push_back(ProfileOne("a", Spec(256, 150, 400), 31));
  profiles.push_back(ProfileOne("b", Spec(384, 100, 600), 32));
  profiles.push_back(ProfileOne("c", Spec(128, 200, 300), 33));

  core::ConsolidationProblem problem;
  problem.workloads = profiles;
  problem.fleet = sim::FleetSpec::Homogeneous(sim::MachineSpec::Server1());
  const core::ConsolidationPlan plan =
      core::ConsolidationEngine(problem, core::EngineOptions{}).Solve();
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, 1);

  // Validate by physically co-locating, as the paper does: throughput of
  // each workload must match the dedicated-server deployment.
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 8 * util::kGiB;
  db::Server server(sim::MachineSpec::Server1(), cfg, 77);
  workload::MicroWorkload a("a", Spec(256, 150, 400));
  workload::MicroWorkload b("b", Spec(384, 100, 600));
  workload::MicroWorkload c("c", Spec(128, 200, 300));
  workload::Driver driver(&server, 77);
  driver.AddWorkload(&a);
  driver.AddWorkload(&b);
  driver.AddWorkload(&c);
  driver.Warm();
  driver.Run(2.0);
  const auto res = driver.Run(10.0);
  EXPECT_NEAR(res.workloads[0].MeanTps(), 150, 15);
  EXPECT_NEAR(res.workloads[1].MeanTps(), 100, 10);
  EXPECT_NEAR(res.workloads[2].MeanTps(), 200, 20);
  // Latency stays in the same regime as dedicated (a few ms over base).
  for (const auto& w : res.workloads) EXPECT_LT(w.MeanLatencyMs(), 30.0);
}

TEST(IntegrationTest, EngineRejectsOverload) {
  // Workloads whose combined CPU exceeds one machine: the engine must use
  // two servers rather than recommend an overloaded single machine.
  std::vector<monitor::WorkloadProfile> profiles;
  for (int i = 0; i < 3; ++i) {
    monitor::WorkloadProfile p;
    p.name = "hot" + std::to_string(i);
    p.cpu_cores = util::TimeSeries::Constant(1.0, 4, 3.5);
    p.ram_bytes = util::TimeSeries::Constant(1.0, 4, 1e9);
    p.update_rows_per_sec = util::TimeSeries::Constant(1.0, 4, 10);
    p.working_set_bytes = 8e8;
    profiles.push_back(p);
  }
  core::ConsolidationProblem problem;
  problem.workloads = profiles;
  problem.fleet = sim::FleetSpec::Homogeneous(sim::MachineSpec::Server1());  // 8 cores
  const auto plan = core::ConsolidationEngine(problem, core::EngineOptions{}).Solve();
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, 2);  // 3 x 3.5 = 10.5 > 7.2 usable cores
}

TEST(IntegrationTest, GaugeFeedsEngine) {
  // Gauged working sets (not OS RSS) are what make consolidation possible:
  // with RSS the two workloads would not fit one 32 GB machine.
  db::DbmsConfig cfg;
  cfg.buffer_pool_bytes = 24 * util::kGiB;  // over-provisioned pool
  db::Server server(sim::MachineSpec::Server1(), cfg, 41);
  workload::MicroWorkload w("big", Spec(512, 200, 300));
  workload::Driver driver(&server, 41);
  driver.AddWorkload(&w);
  driver.Warm();
  driver.Run(2.0);

  monitor::GaugeConfig gauge_cfg;
  gauge_cfg.max_step_pages = 16384;  // fast gauging of the huge pool
  monitor::BufferPoolGauge gauge(gauge_cfg);
  const monitor::GaugeResult gauged = gauge.Run(&driver);
  // OS view: ~24 GB allocated. Gauged: hundreds of MB.
  EXPECT_LT(gauged.working_set_bytes, 4 * util::kGiB);

  monitor::ResourceMonitor monitor(monitor::MonitorConfig{});
  auto profiles =
      monitor.Collect(&driver, 4.0, {&w}, {{"big", gauged.working_set_bytes}});
  core::ConsolidationProblem problem;
  problem.workloads = {profiles[0], profiles[0], profiles[0]};
  problem.fleet = sim::FleetSpec::Homogeneous(sim::MachineSpec::Server1());
  const auto plan = core::ConsolidationEngine(problem, core::EngineOptions{}).Solve();
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, 1);
}

TEST(IntegrationTest, TimeVaryingWorkloadsConsolidate) {
  // Anti-correlated sinusoidal CPU loads pack tighter than their peaks
  // would suggest — the engine's time-series constraints at work.
  auto day = [](double phase) {
    return std::make_shared<workload::SinusoidPattern>(300.0, 280.0, 40.0, phase);
  };
  std::vector<monitor::WorkloadProfile> profiles;
  profiles.push_back(
      ProfileOne("day", Spec(128, 0, 2500, day(0.0)), 51));
  profiles.push_back(
      ProfileOne("night", Spec(128, 0, 2500, day(M_PI)), 52));

  core::ConsolidationProblem problem;
  problem.workloads = profiles;
  problem.fleet = sim::FleetSpec::Homogeneous(sim::MachineSpec::Server2());  // 2 cores
  const auto plan = core::ConsolidationEngine(problem, core::EngineOptions{}).Solve();
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used, 1);
}

}  // namespace
}  // namespace kairos
