#include "db/dbms.h"

#include <gtest/gtest.h>

#include <memory>

#include "db/server.h"
#include "sim/machine.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"
#include "workload/patterns.h"

namespace kairos::db {
namespace {

DbmsConfig SmallConfig() {
  DbmsConfig c;
  c.buffer_pool_bytes = 64 * util::kMiB;
  return c;
}

TEST(DbmsTest, CreateDatabasesAndTables) {
  sim::Disk disk{sim::DiskSpec{}};
  Dbms dbms(SmallConfig(), &disk, 1);
  Database* a = dbms.CreateDatabase("a");
  Database* b = dbms.CreateDatabase("b");
  EXPECT_EQ(dbms.databases().size(), 2u);
  EXPECT_EQ(a->name(), "a");
  Region* t = a->CreateTable("t", 100);
  EXPECT_EQ(t->pages, 100u);
  EXPECT_EQ(a->TotalPages(), 100u);
  EXPECT_EQ(b->TotalPages(), 0u);
  // Regions don't overlap.
  Region* t2 = b->CreateTable("t", 100);
  EXPECT_GE(t2->start, t->start + t->reserved);
}

TEST(DbmsTest, ExtendTableWithinReservation) {
  sim::Disk disk{sim::DiskSpec{}};
  Dbms dbms(SmallConfig(), &disk, 1);
  Database* a = dbms.CreateDatabase("a");
  Region* t = a->CreateTable("t", 10, 100);
  const PageId start = t->start;
  a->ExtendTable(t, 50);
  EXPECT_EQ(t->pages, 60u);
  EXPECT_EQ(t->start, start);  // still in place
  a->ExtendTable(t, 100);      // exceeds reservation -> relocated
  EXPECT_EQ(t->pages, 160u);
}

TEST(DbmsTest, TouchSequentialCountsMissesOnce) {
  sim::Disk disk{sim::DiskSpec{}};
  Dbms dbms(SmallConfig(), &disk, 1);
  Database* a = dbms.CreateDatabase("a");
  Region* t = a->CreateTable("t", 100);
  dbms.TouchSequential(a, *t, 0, 100, false, 1.0);
  dbms.PrepareTick(0.1);
  disk.EndTick(0.1);
  dbms.FinalizeTick(0.1, 8.0, 0.0);
  EXPECT_EQ(a->lifetime().physical_reads, 100);
  // Second scan: all resident, no reads.
  dbms.TouchSequential(a, *t, 0, 100, false, 1.0);
  dbms.PrepareTick(0.1);
  disk.EndTick(0.1);
  dbms.FinalizeTick(0.1, 8.0, 0.0);
  EXPECT_EQ(a->lifetime().physical_reads, 100);
}

TEST(DbmsTest, AppendPagesNeverReads) {
  sim::Disk disk{sim::DiskSpec{}};
  Dbms dbms(SmallConfig(), &disk, 1);
  Database* a = dbms.CreateDatabase("a");
  Region* t = a->CreateTable("probe", 0, 10000);
  dbms.AppendPages(a, t, 500, 1.0, 64);
  EXPECT_EQ(t->pages, 500u);
  dbms.PrepareTick(0.1);
  disk.EndTick(0.1);
  dbms.FinalizeTick(0.1, 8.0, 0.0);
  EXPECT_EQ(a->lifetime().physical_reads, 0);
  // Appended pages are resident and dirty -> they will be flushed.
  EXPECT_GT(dbms.buffer_pool().dirty_count() + dbms.total_write_bytes() / 16384, 0u);
}

TEST(DbmsTest, RssIncludesOverheadAndPool) {
  sim::Disk disk{sim::DiskSpec{}};
  DbmsConfig cfg = SmallConfig();
  Dbms dbms(cfg, &disk, 1);
  Database* a = dbms.CreateDatabase("a");
  Region* t = a->CreateTable("t", 1000);
  EXPECT_EQ(dbms.RssBytes(), cfg.dbms_ram_overhead_bytes);  // empty pool
  dbms.TouchSequential(a, *t, 0, 1000, false, 1.0);
  EXPECT_EQ(dbms.RssBytes(), 1000 * cfg.page_bytes + cfg.dbms_ram_overhead_bytes);
}

// End-to-end behaviour through the Server/Driver stack.

workload::MicroSpec LightSpec(double tps) {
  workload::MicroSpec spec;
  spec.data_bytes = 64 * util::kMiB;
  spec.working_set_bytes = 32 * util::kMiB;
  spec.reads_per_tx = 4;
  spec.updates_per_tx = 2;
  spec.cpu_us_per_tx = 200;
  spec.pattern = std::make_shared<workload::FlatPattern>(tps);
  return spec;
}

TEST(ServerTest, LightLoadCompletesEverything) {
  Server server(sim::MachineSpec::Server1(), DbmsConfig{}, 7);
  workload::MicroWorkload w("light", LightSpec(100));
  workload::Driver driver(&server, 7);
  driver.AddWorkload(&w);
  driver.Warm();
  const auto res = driver.Run(10.0);
  const auto& ws = res.workloads.front();
  EXPECT_NEAR(ws.MeanTps(), 100.0, 10.0);
  EXPECT_GT(ws.total_completed, 900);
  // Warm working set: essentially no physical reads.
  EXPECT_LT(res.server.pages_read_per_sec.Mean(), 20.0);
  // Latency stays near the base (5 ms) plus commit wait.
  EXPECT_LT(ws.MeanLatencyMs(), 20.0);
}

TEST(ServerTest, CpuSaturationThrottlesThroughput) {
  Server server(sim::MachineSpec::Server2(), DbmsConfig{}, 7);  // 2 cores
  workload::MicroSpec spec = LightSpec(2000);
  spec.working_set_bytes = 16 * util::kMiB;
  spec.data_bytes = 32 * util::kMiB;
  spec.cpu_us_per_tx = 4000;  // 2000 tps * 4ms = 8 cores demanded
  workload::MicroWorkload w("heavy", spec);
  workload::Driver driver(&server, 7);
  driver.AddWorkload(&w);
  driver.Warm();
  const auto res = driver.Run(10.0);
  const auto& ws = res.workloads.front();
  // Roughly 2 usable cores / 4ms = ~500 tps ceiling.
  EXPECT_LT(ws.MeanTps(), 700.0);
  EXPECT_GT(ws.MeanTps(), 250.0);
  // Saturation shows up as high latency.
  EXPECT_GT(ws.MeanLatencyMs(), 100.0);
}

TEST(ServerTest, WorkingSetLargerThanPoolCausesReads) {
  DbmsConfig cfg;
  cfg.buffer_pool_bytes = 32 * util::kMiB;
  Server server(sim::MachineSpec::Server1(), cfg, 7);
  workload::MicroSpec spec = LightSpec(200);
  spec.working_set_bytes = 128 * util::kMiB;  // 4x the pool
  spec.data_bytes = 256 * util::kMiB;
  workload::MicroWorkload w("thrash", spec);
  workload::Driver driver(&server, 7);
  driver.AddWorkload(&w);
  const auto res = driver.Run(10.0);
  EXPECT_GT(res.server.pages_read_per_sec.Mean(), 100.0);
}

TEST(ServerTest, UpdatesProduceDiskWrites) {
  Server server(sim::MachineSpec::Server1(), DbmsConfig{}, 7);
  workload::MicroWorkload w("writer", LightSpec(500));
  workload::Driver driver(&server, 7);
  driver.AddWorkload(&w);
  driver.Warm();
  const auto res = driver.Run(10.0);
  // 500 tps * 2 updates: log + flushed pages must show up as writes.
  EXPECT_GT(res.server.write_mbps.Mean(), 0.1);
}

TEST(ServerTest, MultiTenantFairDegradation) {
  // Two identical tenants on a CPU-starved machine degrade about equally
  // (the paper observes MySQL divides resources evenly).
  Server server(sim::MachineSpec::Server2(), DbmsConfig{}, 7);
  workload::MicroSpec spec = LightSpec(800);
  spec.working_set_bytes = 16 * util::kMiB;
  spec.data_bytes = 32 * util::kMiB;
  spec.cpu_us_per_tx = 3000;
  workload::MicroWorkload w1("a", spec), w2("b", spec);
  workload::Driver driver(&server, 7);
  driver.AddWorkload(&w1);
  driver.AddWorkload(&w2);
  driver.Warm();
  const auto res = driver.Run(10.0);
  const double t1 = res.workloads[0].MeanTps();
  const double t2 = res.workloads[1].MeanTps();
  EXPECT_GT(t1, 50.0);
  EXPECT_NEAR(t1 / (t1 + t2), 0.5, 0.08);
}

TEST(ServerTest, DeterministicAcrossRuns) {
  auto run = []() {
    Server server(sim::MachineSpec::Server1(), DbmsConfig{}, 99);
    workload::MicroWorkload w("d", LightSpec(150));
    workload::Driver driver(&server, 99);
    driver.AddWorkload(&w);
    driver.Warm();
    return driver.Run(5.0).workloads.front().total_completed;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace kairos::db
