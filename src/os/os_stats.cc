#include "os/os_stats.h"

namespace kairos::os {

void StatsCollector::RecordTick(double tick_seconds, double cpu_core_seconds,
                                uint64_t rss_bytes, uint64_t active_bytes,
                                uint64_t read_bytes, uint64_t write_bytes,
                                uint64_t pages_read) {
  window_seconds_ += tick_seconds;
  cpu_core_seconds_ += cpu_core_seconds;
  read_bytes_ += read_bytes;
  write_bytes_ += write_bytes;
  pages_read_ += pages_read;
  last_rss_ = rss_bytes;
  last_active_ = active_bytes;
}

ProcessStats StatsCollector::Snapshot() {
  ProcessStats s;
  if (window_seconds_ > 0.0) {
    s.cpu_percent = 100.0 * cpu_core_seconds_ / window_seconds_;
    s.read_bytes_per_sec = static_cast<double>(read_bytes_) / window_seconds_;
    s.write_bytes_per_sec = static_cast<double>(write_bytes_) / window_seconds_;
    s.page_reads_per_sec = static_cast<double>(pages_read_) / window_seconds_;
  }
  s.rss_bytes = last_rss_;
  s.active_bytes = last_active_;
  window_seconds_ = 0.0;
  cpu_core_seconds_ = 0.0;
  read_bytes_ = 0;
  write_bytes_ = 0;
  pages_read_ = 0;
  return s;
}

}  // namespace kairos::os
