#include "os/file_cache.h"

namespace kairos::os {

FileCache::FileCache(uint64_t capacity_pages) : capacity_pages_(capacity_pages) {}

bool FileCache::Lookup(PageId page) {
  if (disabled()) return false;
  auto it = map_.find(page);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void FileCache::Insert(PageId page) {
  if (disabled()) return;
  auto it = map_.find(page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
  while (map_.size() > capacity_pages_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

void FileCache::Erase(PageId page) {
  auto it = map_.find(page);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void FileCache::Reset() {
  lru_.clear();
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace kairos::os
