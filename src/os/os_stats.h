// OS-level statistics as exposed by /proc and iostat: what a monitoring
// agent can see without cooperation from the DBMS. The key property the
// paper exploits is that these counters OVERESTIMATE memory needs (allocated
// vs actively-required RAM), motivating buffer pool gauging.
#ifndef KAIROS_OS_OS_STATS_H_
#define KAIROS_OS_OS_STATS_H_

#include <cstdint>

namespace kairos::os {

/// A snapshot of OS-visible resource counters for one DBMS process, in the
/// units Linux tools report.
struct ProcessStats {
  /// CPU utilization as a percentage of one core (Linux convention: 250
  /// means 2.5 cores busy).
  double cpu_percent = 0.0;
  /// Resident set size: all memory the process has allocated and touched.
  uint64_t rss_bytes = 0;
  /// Pages the kernel marks "active" — for a warmed-up DBMS this is
  /// essentially the whole buffer pool, regardless of the true working set.
  uint64_t active_bytes = 0;
  /// Physical read throughput (bytes/sec) over the sample window.
  double read_bytes_per_sec = 0.0;
  /// Physical write throughput (bytes/sec) over the sample window.
  double write_bytes_per_sec = 0.0;
  /// Physical page reads per second over the sample window.
  double page_reads_per_sec = 0.0;
};

/// Accumulates raw usage during simulation ticks and produces rate-based
/// snapshots over sampling windows, like reading /proc twice and diffing.
class StatsCollector {
 public:
  /// Adds one tick's usage for the monitored process.
  void RecordTick(double tick_seconds, double cpu_core_seconds, uint64_t rss_bytes,
                  uint64_t active_bytes, uint64_t read_bytes, uint64_t write_bytes,
                  uint64_t pages_read);

  /// Produces rates since the previous Snapshot() call and resets the window.
  ProcessStats Snapshot();

  /// Seconds accumulated in the current window.
  double window_seconds() const { return window_seconds_; }

 private:
  double window_seconds_ = 0.0;
  double cpu_core_seconds_ = 0.0;
  uint64_t read_bytes_ = 0;
  uint64_t write_bytes_ = 0;
  uint64_t pages_read_ = 0;
  uint64_t last_rss_ = 0;
  uint64_t last_active_ = 0;
};

}  // namespace kairos::os

#endif  // KAIROS_OS_OS_STATS_H_
