// OS file cache: an LRU page cache that sits between the DBMS buffer pool
// and the disk. PostgreSQL-style configurations use a small shared buffer
// plus a large file cache; MySQL/InnoDB with O_DIRECT bypasses it.
#ifndef KAIROS_OS_FILE_CACHE_H_
#define KAIROS_OS_FILE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace kairos::os {

/// Identifier of a fixed-size page in the machine-global page id space.
using PageId = uint64_t;

/// A strict-LRU page cache.
class FileCache {
 public:
  /// Creates a cache holding at most `capacity_pages` pages. Zero capacity
  /// means the cache is disabled (every lookup misses, inserts are dropped).
  explicit FileCache(uint64_t capacity_pages);

  /// Looks up a page; on hit, promotes it to MRU.
  bool Lookup(PageId page);

  /// Inserts (or promotes) a page, evicting LRU pages as needed.
  void Insert(PageId page);

  /// Removes a page if present (e.g., the DBMS invalidated it).
  void Erase(PageId page);

  /// Number of resident pages.
  uint64_t size() const { return map_.size(); }
  /// Capacity in pages.
  uint64_t capacity() const { return capacity_pages_; }
  /// True when the cache has zero capacity.
  bool disabled() const { return capacity_pages_ == 0; }

  /// Cumulative hits and misses observed by Lookup().
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Clears contents and statistics.
  void Reset();

 private:
  uint64_t capacity_pages_;
  std::list<PageId> lru_;  // front = MRU
  std::unordered_map<PageId, std::list<PageId>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace kairos::os

#endif  // KAIROS_OS_FILE_CACHE_H_
