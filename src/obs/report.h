// Versioned bench-report schema + the baseline diff engine behind
// tools/metrics_diff.
//
// Every bench executable (bench_common.h's BenchReporter) writes one
// `BENCH_<name>.json` per run:
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "config": {"smoke": "1", "seed": "2026", ...},   // string echoes
//     "kpis": {"probe_rate_per_sec": ..., ...},        // derived numbers
//     "profile_sections": [...],                       // Profiler sections
//     ... the standard sink fields (obs/export.h): meta, counters,
//     gauges, histograms, probes, incumbent_curves, controller,
//     span_profile, events ...
//   }
//
// Reports are diffed against checked-in baselines (bench/baselines/) by
// DiffReports with per-metric tolerance classes:
//
//   counters    — exact (they are deterministic for a deterministic
//                 workload); a baseline's "diff_rules.exact_counters"
//                 glob list restricts which ones must match, so
//                 FP-trajectory-sensitive counts (iteration-dependent
//                 improvement tallies) can be left out of the gate.
//   timings     — "seconds"-named gauges and histogram sums are wall
//                 clock; compared only when timing_ratio > 1, failing
//                 when current > baseline * timing_ratio.
//   KPIs        — "*_per_sec" rates fail below baseline / kpi_ratio
//                 (floor); "*seconds*" latencies fail above
//                 baseline * kpi_ratio (ceiling); anything else must
//                 match to ~1e-6 relative.
//
// A baseline may embed its own rules under "diff_rules"
// ({"exact_counters": [...], "skip": [...], "timing_ratio": N,
// "kpi_ratio": N}); precedence is defaults < baseline rules < caller
// overrides (CLI flags).
#ifndef KAIROS_OBS_REPORT_H_
#define KAIROS_OBS_REPORT_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/profile.h"
#include "obs/sink.h"
#include "util/json.h"

namespace kairos::obs {

/// Bumped whenever the report layout changes incompatibly; DiffReports
/// refuses to compare mismatched versions.
inline constexpr int kReportSchemaVersion = 1;

/// One derived KPI (name suffix conventions drive the diff rules above).
struct KpiValue {
  std::string name;
  double value = 0;
};

/// KPIs computable from the sink alone. Emitted only when their inputs
/// exist (a fig bench with no online controller gets no samples/sec):
///   probe_rate_per_sec            engine.probes / Σ "solve" span seconds
///   move_delta_ops_per_sec        evaluator.move_delta_ops / Σ solver
///                                 span seconds (falls back to "solve")
///   evaluate_ops_per_sec          likewise for evaluator.evaluate_ops
///   online.samples_per_sec        controller.samples_ingested /
///                                 controller.ingest_seconds gauge
///   online.detect_to_migrate_mean_seconds
///                                 histogram sum / total
///   portfolio.incumbent_improvements  echoed as a KPI for trend lines
std::vector<KpiValue> ComputeDerivedKpis(const Sink& sink);

/// Writes one complete BENCH_<name>.json document. `config` entries are
/// echoed as string key/values; `extra_kpis` are appended after the
/// derived ones (later duplicates win at read time — object order is
/// preserved). `profiler` may be null (no "profile_sections" field).
void WriteBenchReport(std::ostream& os, const std::string& bench_name,
                      const std::vector<std::pair<std::string, std::string>>&
                          config,
                      const Sink& sink, const Profiler* profiler,
                      const std::vector<KpiValue>& extra_kpis);

/// Tolerance configuration for DiffReports. Patterns are simple globs
/// with at most one '*'.
struct DiffOptions {
  /// Timing comparisons (seconds-gauges, histogram sums) run only when
  /// > 1; current > baseline * timing_ratio fails.
  double timing_ratio = 0;
  /// KPI rate floor / latency ceiling factor; <= 1 skips KPI bounds.
  double kpi_ratio = 4.0;
  /// Metrics matching any pattern are ignored entirely.
  std::vector<std::string> skip;
  /// When non-empty, only counters matching a pattern must be exact;
  /// the rest are informational.
  std::vector<std::string> exact_counters;
};

struct DiffResult {
  bool ok = true;
  std::vector<std::string> failures;  ///< Regressions (gate on these).
  std::vector<std::string> notes;     ///< Informational drift.
};

/// Overlays the baseline's embedded "diff_rules" (when present) onto
/// `options`. Fields absent from diff_rules keep their current values.
void ApplyBaselineRules(const util::JsonValue& baseline, DiffOptions* options);

/// Compares a freshly produced report against a baseline report (both
/// parsed JSON roots). Never throws; malformed documents fail the diff.
DiffResult DiffReports(const util::JsonValue& baseline,
                       const util::JsonValue& current,
                       const DiffOptions& options);

/// Glob match with at most one '*' (more stars than one: literal compare
/// of the first segment + suffix). Exposed for tests.
bool GlobMatch(const std::string& pattern, const std::string& name);

}  // namespace kairos::obs

#endif  // KAIROS_OBS_REPORT_H_
