#include "obs/profile.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <utility>

namespace kairos::obs {

namespace {

uint64_t NextProfilerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of (profiler id -> state), mirroring TraceSink's ring
/// cache: Enter/Exit skip the profiler mutex after a thread's first section.
/// Profiler ids are never reused, so a stale entry can never match a live
/// profiler.
struct StateCacheEntry {
  uint64_t profiler_id = 0;
  void* state = nullptr;
};

thread_local std::vector<StateCacheEntry> tl_state_cache;

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%12.6f", seconds);
  return buf;
}

}  // namespace

std::vector<ProfileEntry> BuildSpanProfile(const TraceSink& trace) {
  const std::vector<TraceEvent> merged = trace.MergedTrace();
  const std::vector<std::string> tracks = trace.TrackNames();
  const std::vector<std::string> names = trace.EventNames();

  // (track id, name id) -> running tally. Self time is attributed by a
  // per-track stack walk: events within a track are seq-ordered and spans
  // nest (single-writer contract), so a kEnd closes the innermost open
  // kBegin, and its duration is added to the parent's child time.
  struct OpenSpan {
    uint32_t name = 0;
    double child_seconds = 0;
  };
  std::map<std::pair<uint32_t, uint32_t>, ProfileEntry> tally;
  std::vector<OpenSpan> stack;
  uint32_t current_track = 0;
  bool have_track = false;
  for (const TraceEvent& event : merged) {
    if (!have_track || event.track != current_track) {
      // Open spans at a track boundary have no kEnd in the buffer; drop them.
      stack.clear();
      current_track = event.track;
      have_track = true;
    }
    if (event.kind == EventKind::kBegin) {
      stack.push_back({event.name, 0});
    } else if (event.kind == EventKind::kEnd) {
      // Pop until we find the matching begin; intervening opens lost their
      // ends to ring overflow and are dropped.
      double child_seconds = 0;
      bool matched = false;
      while (!stack.empty()) {
        const OpenSpan open = stack.back();
        stack.pop_back();
        if (open.name == event.name) {
          child_seconds = open.child_seconds;
          matched = true;
          break;
        }
      }
      if (!matched) continue;  // Orphan kEnd (its kBegin was dropped).
      ProfileEntry& entry = tally[{event.track, event.name}];
      entry.count += 1;
      entry.total_seconds += event.d1;
      entry.self_seconds += event.d1 - child_seconds;
      if (!stack.empty()) stack.back().child_seconds += event.d1;
    }
  }

  std::vector<ProfileEntry> profile;
  profile.reserve(tally.size());
  for (auto& [key, entry] : tally) {
    entry.track = key.first < tracks.size() ? tracks[key.first] : "";
    entry.name = key.second < names.size() ? names[key.second] : "";
    profile.push_back(std::move(entry));
  }
  std::sort(profile.begin(), profile.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.track != b.track) return a.track < b.track;
              return a.name < b.name;
            });
  return profile;
}

Profiler::Profiler() : profiler_id_(NextProfilerId()) {}

Profiler::~Profiler() = default;

Profiler::ThreadState* Profiler::LocalState() {
  for (const StateCacheEntry& e : tl_state_cache) {
    if (e.profiler_id == profiler_id_) {
      return static_cast<ThreadState*>(e.state);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  states_.push_back(std::make_unique<ThreadState>());
  ThreadState* state = states_.back().get();
  tl_state_cache.push_back({profiler_id_, state});
  return state;
}

uint32_t Profiler::InternSection(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = section_ids_.find(name);
  if (it != section_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(section_names_.size());
  section_ids_.emplace(name, id);
  section_names_.push_back(name);
  return id;
}

void Profiler::Enter(uint32_t section) {
  ThreadState* state = LocalState();
  Frame frame;
  frame.section = section;
  frame.start = std::chrono::steady_clock::now();
  state->stack.push_back(frame);
}

void Profiler::Exit(uint32_t section) {
  const auto now = std::chrono::steady_clock::now();
  ThreadState* state = LocalState();
  if (state->stack.empty() || state->stack.back().section != section) {
    return;  // Mismatched Exit; RAII callers never hit this.
  }
  const Frame frame = state->stack.back();
  state->stack.pop_back();
  const double total =
      std::chrono::duration<double>(now - frame.start).count();
  if (state->tallies.size() <= section) {
    state->tallies.resize(section + 1);
  }
  Tally& tally = state->tallies[section];
  tally.count += 1;
  tally.total_seconds += total;
  tally.self_seconds += total - frame.child_seconds;
  if (!state->stack.empty()) {
    state->stack.back().child_seconds += total;
  }
}

std::vector<ProfileEntry> Profiler::SectionProfile() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Tally> merged(section_names_.size());
  for (const auto& state : states_) {
    for (size_t i = 0; i < state->tallies.size(); ++i) {
      merged[i].count += state->tallies[i].count;
      merged[i].total_seconds += state->tallies[i].total_seconds;
      merged[i].self_seconds += state->tallies[i].self_seconds;
    }
  }
  std::vector<ProfileEntry> profile;
  profile.reserve(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    if (merged[i].count == 0) continue;  // interned but never completed
    ProfileEntry entry;
    entry.name = section_names_[i];
    entry.count = merged[i].count;
    entry.total_seconds = merged[i].total_seconds;
    entry.self_seconds = merged[i].self_seconds;
    profile.push_back(std::move(entry));
  }
  std::sort(profile.begin(), profile.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.name < b.name;
            });
  return profile;
}

void Profiler::ExportJson(std::ostream& os) const {
  const std::vector<ProfileEntry> profile = SectionProfile();
  os << "{\"sections\":[";
  for (size_t i = 0; i < profile.size(); ++i) {
    if (i != 0) os << ",";
    char buf[64];
    os << "{\"name\":\"" << profile[i].name << "\",\"count\":"
       << profile[i].count;
    std::snprintf(buf, sizeof(buf), "%.9g", profile[i].total_seconds);
    os << ",\"total_seconds\":" << buf;
    std::snprintf(buf, sizeof(buf), "%.9g", profile[i].self_seconds);
    os << ",\"self_seconds\":" << buf << "}";
  }
  os << "]}";
}

std::string Profiler::ExportText() const {
  const std::vector<ProfileEntry> profile = SectionProfile();
  std::string out;
  out += "section profile (seconds)\n";
  out += "       total         self    count  section\n";
  for (const ProfileEntry& entry : profile) {
    out += FormatSeconds(entry.total_seconds);
    out += " ";
    out += FormatSeconds(entry.self_seconds);
    out += " ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%8lld",
                  static_cast<long long>(entry.count));
    out += buf;
    out += "  ";
    out += entry.name;
    out += "\n";
  }
  return out;
}

}  // namespace kairos::obs
