#include "obs/trace.h"

#include <algorithm>

namespace kairos::obs {

namespace {

uint64_t NextSinkId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of (sink id -> ring) so Emit() skips the sink mutex
/// after a thread's first event. Sink ids are never reused, so an entry
/// for a destroyed sink can never match a live one.
struct RingCacheEntry {
  uint64_t sink_id = 0;
  void* ring = nullptr;
};

thread_local std::vector<RingCacheEntry> tl_ring_cache;

}  // namespace

TraceSink::TraceSink(size_t ring_capacity)
    : ring_capacity_(std::max<size_t>(1, ring_capacity)),
      sink_id_(NextSinkId()),
      epoch_(std::chrono::steady_clock::now()) {}

TraceSink::~TraceSink() = default;

TraceSink::Ring* TraceSink::LocalRing() {
  for (const RingCacheEntry& e : tl_ring_cache) {
    if (e.sink_id == sink_id_) return static_cast<Ring*>(e.ring);
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(ring_capacity_));
  Ring* ring = rings_.back().get();
  tl_ring_cache.push_back({sink_id_, ring});
  return ring;
}

uint32_t TraceSink::InternTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(track_names_.size());
  track_ids_.emplace(name, id);
  track_names_.push_back(name);
  track_seq_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  return id;
}

uint32_t TraceSink::InternName(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(event_names_.size());
  name_ids_.emplace(name, id);
  event_names_.push_back(name);
  return id;
}

void TraceSink::Emit(uint32_t track, uint32_t name, EventKind kind, int64_t i0,
                     int64_t i1, double d0, double d1) {
  Ring* ring = LocalRing();
  if (ring->events.size() >= ring_capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent event;
  event.track = track;
  event.name = name;
  event.kind = kind;
  // The track's sequence counter is only incremented for events that are
  // actually stored somewhere (a dropped event burns no seq on other
  // threads' rings because a track has a single writer at a time).
  event.seq = track_seq_[track]->fetch_add(1, std::memory_order_relaxed);
  event.wall_seconds = WallSeconds();
  event.i0 = i0;
  event.i1 = i1;
  event.d0 = d0;
  event.d1 = d1;
  ring->events.push_back(event);
}

double TraceSink::WallSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<TraceEvent> TraceSink::MergedTrace() const {
  std::vector<TraceEvent> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto& ring : rings_) total += ring->events.size();
    merged.reserve(total);
    for (const auto& ring : rings_) {
      merged.insert(merged.end(), ring->events.begin(), ring->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.track != b.track) return a.track < b.track;
              return a.seq < b.seq;
            });
  return merged;
}

std::vector<std::string> TraceSink::TrackNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return track_names_;
}

std::vector<std::string> TraceSink::EventNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return event_names_;
}

}  // namespace kairos::obs
