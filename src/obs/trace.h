// obs::TraceSink — deterministic solver/controller tracing.
//
// Writers append fixed-size TraceEvents to a bounded per-thread ring (no
// lock on the append path; registration of a new thread's ring takes the
// sink mutex once). Every event belongs to a *track* — one logical actor's
// timeline ("engine/7", "anneal/42", "controller") — and carries a
// sequence number drawn from that track's atomic counter.
//
// Determinism contract: a track must never be written concurrently by two
// threads (each solver runs its whole trajectory on one thread; the engine
// and controller are internally single-threaded), so (track, seq) is a
// total order that does not depend on thread scheduling. MergedTrace()
// sorts by (track, seq): for a deterministic workload the merged trace is
// identical across runs and thread counts in everything except the
// wall_seconds stamps, which are explicitly excluded from the guarantee.
//
// Overflow: a full ring drops the incoming event (drop-newest) and counts
// it in dropped_events(); instrument at probe/iteration-improvement
// granularity, never per MoveDelta, so real traces stay far below the
// bound.
#ifndef KAIROS_OBS_TRACE_H_
#define KAIROS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace kairos::obs {

enum class EventKind : uint8_t {
  kPoint = 0,  ///< Instantaneous event.
  kBegin = 1,  ///< Span begin.
  kEnd = 2,    ///< Span end (d1 carries the span's wall duration).
};

/// One fixed-size trace record. i0/i1/d0/d1 are typed by the event name
/// (e.g. "probe": i0 = K or subset size, i1 = feasible, d0 = DIRECT evals;
/// "incumbent": i0 = iteration, i1 = feasible, d0 = objective).
struct TraceEvent {
  uint32_t track = 0;  ///< Interned track id (TraceSink::TrackName).
  uint32_t name = 0;   ///< Interned event name id (TraceSink::EventName).
  EventKind kind = EventKind::kPoint;
  uint64_t seq = 0;         ///< Per-track sequence number.
  double wall_seconds = 0;  ///< Since sink construction. NOT deterministic.
  int64_t i0 = 0;
  int64_t i1 = 0;
  double d0 = 0;
  double d1 = 0;
};

class TraceSink {
 public:
  /// `ring_capacity` bounds the events buffered per writer thread.
  explicit TraceSink(size_t ring_capacity = size_t{1} << 15);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Interns a track / event name, returning its stable id. Hot paths
  /// should intern once outside their loops.
  uint32_t InternTrack(const std::string& name);
  uint32_t InternName(const std::string& name);

  /// Appends one event to the calling thread's ring (drop-newest when
  /// full). Lock-free after the thread's first call.
  void Emit(uint32_t track, uint32_t name, EventKind kind, int64_t i0 = 0,
            int64_t i1 = 0, double d0 = 0, double d1 = 0);

  /// All buffered events sorted by (track, seq). Call only when writers
  /// are quiesced (after the instrumented run completes).
  std::vector<TraceEvent> MergedTrace() const;

  /// Track / event-name id -> string (index == interned id).
  std::vector<std::string> TrackNames() const;
  std::vector<std::string> EventNames() const;

  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Wall seconds since sink construction (the events' time base).
  double WallSeconds() const;

 private:
  struct Ring {
    explicit Ring(size_t capacity) { events.reserve(capacity); }
    std::vector<TraceEvent> events;  ///< Append-only up to capacity.
  };

  Ring* LocalRing();

  const size_t ring_capacity_;
  const uint64_t sink_id_;  ///< Unique per sink; keys the thread-local cache.
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::map<std::string, uint32_t> track_ids_;
  std::vector<std::string> track_names_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> track_seq_;
  std::map<std::string, uint32_t> name_ids_;
  std::vector<std::string> event_names_;

  std::atomic<int64_t> dropped_{0};
};

}  // namespace kairos::obs

#endif  // KAIROS_OBS_TRACE_H_
