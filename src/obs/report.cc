#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/export.h"

namespace kairos::obs {

namespace {

const int64_t* FindCounter(const MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* FindGauge(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const MetricsSnapshot::Hist* FindHist(const MetricsSnapshot& snap,
                                      const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

bool MatchesAny(const std::vector<std::string>& patterns,
                const std::string& name) {
  for (const std::string& pattern : patterns) {
    if (GlobMatch(pattern, name)) return true;
  }
  return false;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Numeric object member (null when absent or non-numeric).
const util::JsonValue* NumberField(const util::JsonValue& obj,
                                   const std::string& key) {
  const util::JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v : nullptr;
}

}  // namespace

bool GlobMatch(const std::string& pattern, const std::string& name) {
  const size_t star = pattern.find('*');
  if (star == std::string::npos) return pattern == name;
  const std::string prefix = pattern.substr(0, star);
  const std::string suffix = pattern.substr(star + 1);
  if (name.size() < prefix.size() + suffix.size()) return false;
  return name.compare(0, prefix.size(), prefix) == 0 &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<KpiValue> ComputeDerivedKpis(const Sink& sink) {
  const MetricsSnapshot snap = sink.metrics().Snapshot();
  const std::vector<ProfileEntry> spans = BuildSpanProfile(sink.trace());

  double solve_seconds = 0;
  double solver_seconds = 0;
  for (const ProfileEntry& entry : spans) {
    if (entry.name == "solve") solve_seconds += entry.total_seconds;
    if (entry.name == "solver") solver_seconds += entry.total_seconds;
  }
  // Portfolio member spans measure actual solver time; standalone engine
  // runs only have "solve" spans.
  const double work_seconds = solver_seconds > 0 ? solver_seconds
                                                 : solve_seconds;

  std::vector<KpiValue> kpis;
  const int64_t* probes = FindCounter(snap, "engine.probes");
  if (probes != nullptr && solve_seconds > 0) {
    kpis.push_back({"probe_rate_per_sec",
                    static_cast<double>(*probes) / solve_seconds});
  }
  const int64_t* move_delta = FindCounter(snap, "evaluator.move_delta_ops");
  if (move_delta != nullptr && work_seconds > 0) {
    kpis.push_back({"move_delta_ops_per_sec",
                    static_cast<double>(*move_delta) / work_seconds});
  }
  const int64_t* evaluates = FindCounter(snap, "evaluator.evaluate_ops");
  if (evaluates != nullptr && work_seconds > 0) {
    kpis.push_back({"evaluate_ops_per_sec",
                    static_cast<double>(*evaluates) / work_seconds});
  }
  const int64_t* samples = FindCounter(snap, "controller.samples_ingested");
  const double* ingest_seconds = FindGauge(snap, "controller.ingest_seconds");
  if (samples != nullptr && ingest_seconds != nullptr &&
      *ingest_seconds > 0) {
    kpis.push_back({"online.samples_per_sec",
                    static_cast<double>(*samples) / *ingest_seconds});
  }
  const MetricsSnapshot::Hist* latency =
      FindHist(snap, "controller.detect_to_migrate_seconds");
  if (latency != nullptr && latency->total > 0) {
    kpis.push_back({"online.detect_to_migrate_mean_seconds",
                    latency->sum / static_cast<double>(latency->total)});
  }
  const int64_t* improvements =
      FindCounter(snap, "portfolio.incumbent_improvements");
  if (improvements != nullptr) {
    kpis.push_back({"portfolio.incumbent_improvements",
                    static_cast<double>(*improvements)});
  }
  return kpis;
}

void WriteBenchReport(
    std::ostream& os, const std::string& bench_name,
    const std::vector<std::pair<std::string, std::string>>& config,
    const Sink& sink, const Profiler* profiler,
    const std::vector<KpiValue>& extra_kpis) {
  os << "{\n";
  os << "  \"schema_version\": " << kReportSchemaVersion << ",\n";
  os << "  \"bench\": " << JsonQuote(bench_name) << ",\n";

  os << "  \"config\": {";
  for (size_t i = 0; i < config.size(); ++i) {
    if (i > 0) os << ", ";
    os << JsonQuote(config[i].first) << ": " << JsonQuote(config[i].second);
  }
  os << "},\n";

  std::vector<KpiValue> kpis = ComputeDerivedKpis(sink);
  kpis.insert(kpis.end(), extra_kpis.begin(), extra_kpis.end());
  os << "  \"kpis\": {";
  for (size_t i = 0; i < kpis.size(); ++i) {
    if (i > 0) os << ", ";
    os << JsonQuote(kpis[i].name) << ": " << JsonNum(kpis[i].value);
  }
  os << "},\n";

  if (profiler != nullptr) {
    os << "  \"profile_sections\": [";
    const std::vector<ProfileEntry> sections = profiler->SectionProfile();
    for (size_t i = 0; i < sections.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"name\": " << JsonQuote(sections[i].name)
         << ", \"count\": " << sections[i].count
         << ", \"total_seconds\": " << JsonNum(sections[i].total_seconds)
         << ", \"self_seconds\": " << JsonNum(sections[i].self_seconds)
         << "}";
    }
    os << "],\n";
  }

  ExportJsonFields(sink, os);
  os << "}\n";
}

void ApplyBaselineRules(const util::JsonValue& baseline,
                        DiffOptions* options) {
  const util::JsonValue* rules = baseline.Find("diff_rules");
  if (rules == nullptr || !rules->is_object()) return;
  if (const util::JsonValue* v = NumberField(*rules, "timing_ratio")) {
    options->timing_ratio = v->number;
  }
  if (const util::JsonValue* v = NumberField(*rules, "kpi_ratio")) {
    options->kpi_ratio = v->number;
  }
  if (const util::JsonValue* v = rules->Find("skip");
      v != nullptr && v->is_array()) {
    for (const util::JsonValue& p : v->array) {
      if (p.is_string()) options->skip.push_back(p.string);
    }
  }
  if (const util::JsonValue* v = rules->Find("exact_counters");
      v != nullptr && v->is_array()) {
    for (const util::JsonValue& p : v->array) {
      if (p.is_string()) options->exact_counters.push_back(p.string);
    }
  }
}

DiffResult DiffReports(const util::JsonValue& baseline,
                       const util::JsonValue& current,
                       const DiffOptions& options) {
  DiffResult result;
  auto fail = [&result](const std::string& msg) {
    result.ok = false;
    result.failures.push_back(msg);
  };
  auto note = [&result](const std::string& msg) {
    result.notes.push_back(msg);
  };

  if (!baseline.is_object() || !current.is_object()) {
    fail("baseline or current report is not a JSON object");
    return result;
  }

  // --- Identity: schema version + bench name must match. ------------------
  const util::JsonValue* base_version = NumberField(baseline, "schema_version");
  const util::JsonValue* cur_version = NumberField(current, "schema_version");
  if (base_version == nullptr || cur_version == nullptr ||
      base_version->number != cur_version->number) {
    fail("schema_version mismatch (baseline " +
         (base_version ? Fmt(base_version->number) : "absent") + ", current " +
         (cur_version ? Fmt(cur_version->number) : "absent") + ")");
    return result;
  }
  const util::JsonValue* base_bench = baseline.Find("bench");
  const util::JsonValue* cur_bench = current.Find("bench");
  if (base_bench == nullptr || cur_bench == nullptr ||
      !base_bench->is_string() || !cur_bench->is_string() ||
      base_bench->string != cur_bench->string) {
    fail("bench name mismatch");
    return result;
  }

  // --- Counters: exact, gated by skip / exact_counters. -------------------
  const util::JsonValue* base_counters = baseline.Find("counters");
  const util::JsonValue* cur_counters = current.Find("counters");
  if (base_counters != nullptr && base_counters->is_object()) {
    for (const auto& [name, base_value] : base_counters->object) {
      if (!base_value.is_number()) continue;
      if (MatchesAny(options.skip, name)) continue;
      const bool gated = options.exact_counters.empty() ||
                         MatchesAny(options.exact_counters, name);
      const util::JsonValue* cur_value =
          cur_counters != nullptr ? cur_counters->Find(name) : nullptr;
      if (cur_value == nullptr || !cur_value->is_number()) {
        if (gated) {
          fail("counter " + name + " missing from current report");
        } else {
          note("counter " + name + " missing from current report");
        }
        continue;
      }
      if (cur_value->number != base_value.number) {
        const std::string msg = "counter " + name + ": baseline " +
                                Fmt(base_value.number) + ", current " +
                                Fmt(cur_value->number);
        if (gated) {
          fail(msg);
        } else {
          note(msg);
        }
      }
    }
  }
  if (cur_counters != nullptr && cur_counters->is_object() &&
      base_counters != nullptr && base_counters->is_object()) {
    for (const auto& [name, value] : cur_counters->object) {
      (void)value;
      if (base_counters->Find(name) == nullptr) {
        note("new counter " + name + " (not in baseline)");
      }
    }
  }

  // --- Timings: seconds-named gauges, ratio-bounded. ----------------------
  const util::JsonValue* base_gauges = baseline.Find("gauges");
  const util::JsonValue* cur_gauges = current.Find("gauges");
  if (base_gauges != nullptr && base_gauges->is_object()) {
    for (const auto& [name, base_value] : base_gauges->object) {
      if (!base_value.is_number()) continue;
      if (MatchesAny(options.skip, name)) continue;
      const util::JsonValue* cur_value =
          cur_gauges != nullptr ? cur_gauges->Find(name) : nullptr;
      if (cur_value == nullptr || !cur_value->is_number()) {
        note("gauge " + name + " missing from current report");
        continue;
      }
      const bool timing = name.find("seconds") != std::string::npos;
      if (timing && options.timing_ratio > 1 && base_value.number > 1e-9) {
        if (cur_value->number > base_value.number * options.timing_ratio) {
          fail("timing gauge " + name + ": current " + Fmt(cur_value->number) +
               "s > " + Fmt(options.timing_ratio) + "x baseline " +
               Fmt(base_value.number) + "s");
        }
      } else if (!timing && cur_value->number != base_value.number) {
        note("gauge " + name + ": baseline " + Fmt(base_value.number) +
             ", current " + Fmt(cur_value->number));
      }
    }
  }

  // --- Histograms: totals exact, sums are timings. ------------------------
  const util::JsonValue* base_hists = baseline.Find("histograms");
  const util::JsonValue* cur_hists = current.Find("histograms");
  if (base_hists != nullptr && base_hists->is_array()) {
    for (const util::JsonValue& bh : base_hists->array) {
      const util::JsonValue* bname = bh.Find("name");
      const util::JsonValue* btotal = NumberField(bh, "total");
      if (bname == nullptr || !bname->is_string() || btotal == nullptr) {
        continue;
      }
      if (MatchesAny(options.skip, bname->string)) continue;
      const util::JsonValue* ch = nullptr;
      if (cur_hists != nullptr && cur_hists->is_array()) {
        for (const util::JsonValue& candidate : cur_hists->array) {
          const util::JsonValue* cname = candidate.Find("name");
          if (cname != nullptr && cname->is_string() &&
              cname->string == bname->string) {
            ch = &candidate;
            break;
          }
        }
      }
      if (ch == nullptr) {
        fail("histogram " + bname->string + " missing from current report");
        continue;
      }
      const util::JsonValue* ctotal = NumberField(*ch, "total");
      if (ctotal == nullptr || ctotal->number != btotal->number) {
        fail("histogram " + bname->string + " total: baseline " +
             Fmt(btotal->number) + ", current " +
             (ctotal ? Fmt(ctotal->number) : "absent"));
      }
      const util::JsonValue* bsum = NumberField(bh, "sum");
      const util::JsonValue* csum = NumberField(*ch, "sum");
      if (options.timing_ratio > 1 && bsum != nullptr && csum != nullptr &&
          bsum->number > 1e-9 &&
          csum->number > bsum->number * options.timing_ratio) {
        fail("histogram " + bname->string + " sum: current " +
             Fmt(csum->number) + " > " + Fmt(options.timing_ratio) +
             "x baseline " + Fmt(bsum->number));
      }
    }
  }

  // --- KPIs: rate floors, latency ceilings, exact otherwise. --------------
  const util::JsonValue* base_kpis = baseline.Find("kpis");
  const util::JsonValue* cur_kpis = current.Find("kpis");
  if (base_kpis != nullptr && base_kpis->is_object()) {
    for (const auto& [name, base_value] : base_kpis->object) {
      if (!base_value.is_number()) continue;
      if (MatchesAny(options.skip, name)) continue;
      const util::JsonValue* cur_value =
          cur_kpis != nullptr ? cur_kpis->Find(name) : nullptr;
      if (cur_value == nullptr || !cur_value->is_number()) {
        fail("kpi " + name + " missing from current report");
        continue;
      }
      const bool rate = name.size() >= 8 &&
                        name.compare(name.size() - 8, 8, "_per_sec") == 0;
      const bool latency = !rate &&
                           name.find("seconds") != std::string::npos;
      if (rate) {
        if (options.kpi_ratio > 1 && base_value.number > 0 &&
            cur_value->number < base_value.number / options.kpi_ratio) {
          fail("kpi " + name + ": current " + Fmt(cur_value->number) +
               " < baseline " + Fmt(base_value.number) + " / " +
               Fmt(options.kpi_ratio));
        }
      } else if (latency) {
        if (options.kpi_ratio > 1 && base_value.number > 1e-9 &&
            cur_value->number > base_value.number * options.kpi_ratio) {
          fail("kpi " + name + ": current " + Fmt(cur_value->number) +
               "s > " + Fmt(options.kpi_ratio) + "x baseline " +
               Fmt(base_value.number) + "s");
        }
      } else {
        const double scale = std::max(std::fabs(base_value.number), 1.0);
        if (std::fabs(cur_value->number - base_value.number) >
            1e-6 * scale) {
          fail("kpi " + name + ": baseline " + Fmt(base_value.number) +
               ", current " + Fmt(cur_value->number));
        }
      }
    }
  }

  return result;
}

}  // namespace kairos::obs
