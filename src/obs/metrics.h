// obs::Registry — named counters, gauges, and fixed-bucket histograms for
// the solver/controller observability substrate. Designed for two
// properties the rest of the stack depends on:
//
//   1. Zero contention on the write path: counters and histogram buckets
//      are striped across cache-line-padded per-thread slots (a thread is
//      assigned a stripe once, round-robin), so portfolio workers never
//      bounce a shared line. Snapshot() sums the stripes.
//   2. Deterministic snapshots: metrics are keyed by name in a sorted map,
//      so Snapshot() always lists them in sorted-name order, and counters
//      fed by deterministic work (probe counts, incumbent improvements)
//      report identical values regardless of portfolio thread count.
//
// Registration (the first counter()/gauge()/histogram() call for a name)
// takes a mutex; instrumented hot paths should hoist the returned pointer
// out of their loops. Updates through the returned handles are lock-free.
#ifndef KAIROS_OBS_METRICS_H_
#define KAIROS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace kairos::obs {

/// Write-path stripes per metric. A power of two; threads are assigned
/// stripes round-robin, so up to kStripes writers proceed without sharing
/// a cache line.
inline constexpr int kStripes = 16;

/// The calling thread's stripe index (assigned once per thread,
/// round-robin over kStripes).
int ThreadStripe();

/// Monotonic counter. Add() is a relaxed fetch_add on the caller's stripe;
/// Value() sums the stripes (exact once writers quiesce).
class Counter {
 public:
  void Add(int64_t v = 1) {
    stripes_[ThreadStripe()].v.fetch_add(v, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t sum = 0;
    for (const Stripe& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

/// Last-writer-wins double value (bench section timings, config echoes).
class Gauge {
 public:
  void Set(double v) { bits_.store(ToBits(v), std::memory_order_relaxed); }
  double Value() const { return FromBits(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t ToBits(double v);
  static double FromBits(uint64_t b);
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], the
/// last implicit bucket counts the overflow. Bounds are fixed at creation;
/// bucket counts and the sum are striped like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<int64_t> BucketCounts() const;
  int64_t TotalCount() const;
  double Sum() const;

 private:
  struct alignas(64) Stripe {
    std::vector<std::atomic<int64_t>> buckets;
    std::atomic<int64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};  // double, CAS-accumulated
  };
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// One deterministic point-in-time view of a Registry, every section in
/// sorted-name order.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct Hist {
    std::string name;
    std::vector<double> bounds;
    std::vector<int64_t> counts;  ///< bounds.size() + 1 entries (overflow last).
    int64_t total = 0;
    double sum = 0;
  };
  std::vector<Hist> histograms;
};

/// Name-keyed metric registry. Get-or-create handles are stable for the
/// registry's lifetime; updates through them never touch the registry lock.
class Registry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` must be ascending; only the first call's bounds stick.
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace kairos::obs

#endif  // KAIROS_OBS_METRICS_H_
