// Exporters for the observability substrate: a machine-readable JSON dump
// (what `--metrics-out=<path>` writes and CI validates) and a
// human-readable text-table dump.
//
// The JSON document carries the raw substrate (counters, gauges,
// histograms, the full merged trace) plus derived views keyed for the
// analyses the ROADMAP benches need:
//
//   "probes"                  — every engine probe attempt (count-prefix
//                               "probe" and cost-budget "budget_probe"
//                               events) with size/feasibility/detail.
//   "incumbent_curves"        — per-solver objective-vs-iteration curves
//                               ("incumbent" events grouped by track), each
//                               point carrying a coarse wall bucket.
//   "controller"              — the online controller's per-stage timeline
//                               (detect / resolve / plan / ledger) and the
//                               "detection_to_migration_seconds" latencies.
//   "span_profile"            — per-(track, event) self/total wall-time
//                               aggregation of the kBegin/kEnd spans
//                               (obs/profile.h).
//
// Wall-clock fields are machine-dependent; everything else is deterministic
// for a deterministic workload (see trace.h).
#ifndef KAIROS_OBS_EXPORT_H_
#define KAIROS_OBS_EXPORT_H_

#include <ostream>
#include <string>

#include "obs/sink.h"

namespace kairos::obs {

/// Wall-bucket width for incumbent-curve points: wall_bucket =
/// floor(wall_seconds / kWallBucketSeconds).
inline constexpr double kWallBucketSeconds = 0.01;

/// Writes the full JSON document described above.
void ExportJson(const Sink& sink, std::ostream& os);

/// Writes the document's fields only — no enclosing braces, no trailing
/// comma — so composite documents (bench reports, report.h) can embed the
/// standard sink dump alongside their own fields.
void ExportJsonFields(const Sink& sink, std::ostream& os);

/// JSON string escaping (quotes included).
std::string JsonQuote(const std::string& s);

/// JSON-safe double literal (nan/inf have no JSON literal; emits null).
std::string JsonNum(double v);

/// JSON convenience wrapper.
std::string ExportJsonString(const Sink& sink);

/// Human-readable dump: metric tables plus a per-track trace summary.
std::string ExportText(const Sink& sink);

}  // namespace kairos::obs

#endif  // KAIROS_OBS_EXPORT_H_
