#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

namespace kairos::obs {

int ThreadStripe() {
  static std::atomic<int> next{0};
  thread_local const int stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

uint64_t Gauge::ToBits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double Gauge::FromBits(uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  stripes_.reserve(kStripes);
  for (int i = 0; i < kStripes; ++i) {
    auto stripe = std::make_unique<Stripe>();
    stripe->buckets = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
    stripes_.push_back(std::move(stripe));
  }
}

void Histogram::Observe(double v) {
  Stripe& s = *stripes_[ThreadStripe()];
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  // CAS-accumulate the double sum (observations are probe/stage-grained,
  // so contention here is negligible).
  uint64_t old_bits = s.sum_bits.load(std::memory_order_relaxed);
  for (;;) {
    double old_sum;
    std::memcpy(&old_sum, &old_bits, sizeof(old_sum));
    const double new_sum = old_sum + v;
    uint64_t new_bits;
    std::memcpy(&new_bits, &new_sum, sizeof(new_bits));
    if (s.sum_bits.compare_exchange_weak(old_bits, new_bits,
                                         std::memory_order_relaxed)) {
      break;
    }
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1, 0);
  for (const auto& s : stripes_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += s->buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (const auto& s : stripes_) {
    total += s->count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double sum = 0;
  for (const auto& s : stripes_) {
    const uint64_t bits = s->sum_bits.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    sum += v;
  }
  return sum;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  // std::map iterates in key order, so every section is sorted by name.
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->Value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->Value());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist hist;
    hist.name = name;
    hist.bounds = h->bounds();
    hist.counts = h->BucketCounts();
    hist.total = h->TotalCount();
    hist.sum = h->Sum();
    snap.histograms.push_back(std::move(hist));
  }
  return snap;
}

}  // namespace kairos::obs
