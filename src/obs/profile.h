// obs::Profiler — the perf-trajectory layer's wall-time profile: where did
// a run spend its time, aggregated deterministically enough to diff
// run-over-run.
//
// Two complementary sources feed one ProfileEntry shape
// (count / total / self seconds):
//
//   1. Span aggregation (BuildSpanProfile): pairs the kBegin/kEnd events
//      already buffered in a TraceSink into a per-(track, event) profile.
//      Within one track, spans nest by the single-writer contract, so a
//      seq-ordered stack walk attributes self-time exactly: a span's self
//      seconds are its total minus the totals of the spans directly nested
//      inside it.
//   2. An explicit thread-local timer stack (Profiler + ProfileScope): for
//      nested hot sections that are too fine for trace events (no ring
//      space, no per-event seq traffic). Enter/Exit maintain a per-thread
//      frame stack and accumulate into per-thread flat tallies; reads merge
//      the threads under a mutex.
//
// Determinism contract: entry *structure* — section/track names, nesting
// attribution, and counts — is deterministic for a deterministic workload
// and independent of thread count (rows are keyed by name and reported in
// sorted order). The seconds are wall-clock and explicitly excluded, same
// as TraceEvent::wall_seconds. A Profiler only ever observes: attaching one
// never touches an RNG stream or changes any transcript.
//
// Recursion caveat (gprof-style): a section nested inside itself counts its
// total seconds once per level, so recursive totals can exceed wall time;
// self seconds stay exact.
#ifndef KAIROS_OBS_PROFILE_H_
#define KAIROS_OBS_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace kairos::obs {

/// One aggregated profile row (a trace span kind or a timer section).
struct ProfileEntry {
  std::string track;  ///< Span source track; empty for timer sections.
  std::string name;   ///< Event / section name.
  int64_t count = 0;  ///< Completed invocations.
  double total_seconds = 0;  ///< Inclusive wall time.
  double self_seconds = 0;   ///< Exclusive wall time (total minus children).
};

/// Aggregates a TraceSink's kBegin/kEnd spans into a per-(track, name)
/// self/total profile, sorted by (track, name). Unmatched kBegin events
/// (spans still open when the sink was read) are dropped; unmatched kEnd
/// events reset that track's stack. Call when writers are quiesced.
std::vector<ProfileEntry> BuildSpanProfile(const TraceSink& trace);

/// Explicit nested-section timer. Hot paths intern a section id once, then
/// Enter/Exit cost two steady_clock reads plus thread-local arithmetic — no
/// atomics, no locks after a thread's first section.
class Profiler {
 public:
  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Interns a section name, returning its stable id (mutex-guarded; hoist
  /// out of loops).
  uint32_t InternSection(const std::string& name);

  /// Pushes / pops the calling thread's frame stack. Exit(id) must match
  /// the innermost open Enter(id) (RAII via ProfileScope guarantees this);
  /// a mismatched Exit is ignored.
  void Enter(uint32_t section);
  void Exit(uint32_t section);

  /// Merged per-section profile across all threads, sorted by name.
  /// Sections with open frames report their completed invocations only.
  std::vector<ProfileEntry> SectionProfile() const;

  /// {"sections": [{"name", "count", "total_seconds", "self_seconds"}...]}
  void ExportJson(std::ostream& os) const;
  /// Human-readable section table.
  std::string ExportText() const;

 private:
  struct Frame {
    uint32_t section = 0;
    std::chrono::steady_clock::time_point start;
    double child_seconds = 0;
  };
  struct Tally {
    int64_t count = 0;
    double total_seconds = 0;
    double self_seconds = 0;
  };
  struct ThreadState {
    std::vector<Frame> stack;
    std::vector<Tally> tallies;  ///< Indexed by section id.
  };

  ThreadState* LocalState();

  const uint64_t profiler_id_;  ///< Never reused; keys the thread-local cache.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadState>> states_;
  std::map<std::string, uint32_t> section_ids_;
  std::vector<std::string> section_names_;
};

/// RAII section scope; a null profiler makes it a no-op.
class ProfileScope {
 public:
  ProfileScope(Profiler* profiler, uint32_t section)
      : profiler_(profiler), section_(section) {
    if (profiler_ != nullptr) profiler_->Enter(section_);
  }
  /// Convenience (interns per call — fine outside hot loops).
  ProfileScope(Profiler* profiler, const std::string& name)
      : profiler_(profiler) {
    if (profiler_ != nullptr) {
      section_ = profiler_->InternSection(name);
      profiler_->Enter(section_);
    }
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) profiler_->Exit(section_);
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_;
  uint32_t section_ = 0;
};

}  // namespace kairos::obs

#endif  // KAIROS_OBS_PROFILE_H_
