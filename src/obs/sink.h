// obs::Sink — the one handle the rest of the stack attaches: a metrics
// Registry plus a TraceSink. Instrumentation points hold a nullable
// `obs::Sink*` (EngineOptions::sink, SolveBudget::sink,
// ControllerConfig::sink); a null sink costs exactly one predictable
// branch per instrumented site, and an attached sink never touches an RNG
// stream — observing a solve must not change it.
#ifndef KAIROS_OBS_SINK_H_
#define KAIROS_OBS_SINK_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace kairos::obs {

class Sink {
 public:
  Sink() = default;
  explicit Sink(size_t trace_ring_capacity) : trace_(trace_ring_capacity) {}

  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }

  /// Convenience one-shot point event (interns on every call — fine at
  /// probe/stage granularity; hot loops should pre-intern and use
  /// trace().Emit directly).
  void Point(const std::string& track, const std::string& name, int64_t i0 = 0,
             int64_t i1 = 0, double d0 = 0, double d1 = 0) {
    trace_.Emit(trace_.InternTrack(track), trace_.InternName(name),
                EventKind::kPoint, i0, i1, d0, d1);
  }

  /// Convenience counter bump (interns on every call).
  void Count(const std::string& name, int64_t v = 1) {
    metrics_.counter(name)->Add(v);
  }

 private:
  Registry metrics_;
  TraceSink trace_;
};

/// RAII span: emits kBegin on construction and kEnd (d1 = wall duration in
/// seconds) on destruction. A null sink makes both no-ops.
class ScopedSpan {
 public:
  ScopedSpan(Sink* sink, const std::string& track, const std::string& name,
             int64_t i0 = 0)
      : sink_(sink), i0_(i0) {
    if (sink_ == nullptr) return;
    track_ = sink_->trace().InternTrack(track);
    name_ = sink_->trace().InternName(name);
    start_ = std::chrono::steady_clock::now();
    sink_->trace().Emit(track_, name_, EventKind::kBegin, i0_);
  }

  /// Pre-interned ids (InternTrack/InternName hoisted by the caller): no
  /// string traffic or intern lock on the span path.
  ScopedSpan(Sink* sink, uint32_t track, uint32_t name, int64_t i0 = 0)
      : sink_(sink), track_(track), name_(name), i0_(i0) {
    if (sink_ == nullptr) return;
    start_ = std::chrono::steady_clock::now();
    sink_->trace().Emit(track_, name_, EventKind::kBegin, i0_);
  }

  ~ScopedSpan() {
    if (sink_ == nullptr) return;
    sink_->trace().Emit(track_, name_, EventKind::kEnd, i0_, 0, 0, Seconds());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Wall seconds since the span began (0 with a null sink).
  double Seconds() const {
    if (sink_ == nullptr) return 0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  Sink* sink_;
  uint32_t track_ = 0;
  uint32_t name_ = 0;
  int64_t i0_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace kairos::obs

#endif  // KAIROS_OBS_SINK_H_
