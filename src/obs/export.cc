#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "obs/profile.h"

namespace kairos::obs {

namespace {

const char* KindName(EventKind kind) {
  switch (kind) {
    case EventKind::kBegin: return "begin";
    case EventKind::kEnd: return "end";
    case EventKind::kPoint: break;
  }
  return "point";
}

struct NamedEvent {
  const TraceEvent* e;
  const std::string* track;
  const std::string* name;
};

}  // namespace

/// JSON string escaping for the metric/track names we emit (plain ASCII
/// identifiers in practice, but stay correct for anything).
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// JSON-safe double (nan/inf have no JSON literal; emit null).
std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

namespace {

/// Local shorthands so the exporter body reads as before.
std::string Quote(const std::string& s) { return JsonQuote(s); }
std::string Num(double v) { return JsonNum(v); }

}  // namespace

void ExportJsonFields(const Sink& sink, std::ostream& os) {
  const MetricsSnapshot snap = sink.metrics().Snapshot();
  const std::vector<TraceEvent> events = sink.trace().MergedTrace();
  const std::vector<std::string> tracks = sink.trace().TrackNames();
  const std::vector<std::string> names = sink.trace().EventNames();

  std::vector<NamedEvent> named;
  named.reserve(events.size());
  for (const TraceEvent& e : events) {
    if (e.track >= tracks.size() || e.name >= names.size()) continue;
    named.push_back({&e, &tracks[e.track], &names[e.name]});
  }

  os << "  \"meta\": {\"wall_seconds\": " << Num(sink.trace().WallSeconds())
     << ", \"dropped_events\": " << sink.trace().dropped_events()
     << ", \"wall_bucket_seconds\": " << Num(kWallBucketSeconds) << "},\n";

  // --- Raw metrics (sorted-name order from the snapshot). -----------------
  os << "  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) os << ", ";
    os << Quote(snap.counters[i].first) << ": " << snap.counters[i].second;
  }
  os << "},\n";

  os << "  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) os << ", ";
    os << Quote(snap.gauges[i].first) << ": " << Num(snap.gauges[i].second);
  }
  os << "},\n";

  os << "  \"histograms\": [";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i > 0) os << ", ";
    os << "{\"name\": " << Quote(h.name) << ", \"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) os << ", ";
      os << Num(h.bounds[b]);
    }
    os << "], \"counts\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) os << ", ";
      os << h.counts[b];
    }
    os << "], \"total\": " << h.total << ", \"sum\": " << Num(h.sum) << "}";
  }
  os << "],\n";

  // --- Derived view: probe attempts. --------------------------------------
  os << "  \"probes\": [";
  bool first = true;
  for (const NamedEvent& ne : named) {
    if (*ne.name != "probe" && *ne.name != "budget_probe") continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"track\": " << Quote(*ne.track) << ", \"type\": " << Quote(*ne.name)
       << ", \"size\": " << ne.e->i0 << ", \"feasible\": " << ne.e->i1
       << ", \"detail\": " << Num(ne.e->d0)
       << ", \"wall\": " << Num(ne.e->wall_seconds) << "}";
  }
  os << "],\n";

  // --- Derived view: per-solver incumbent-improvement curves. -------------
  std::map<std::string, std::vector<const TraceEvent*>> curves;
  for (const NamedEvent& ne : named) {
    if (*ne.name == "incumbent") curves[*ne.track].push_back(ne.e);
  }
  os << "  \"incumbent_curves\": {";
  first = true;
  for (const auto& [track, points] : curves) {
    if (!first) os << ", ";
    first = false;
    os << Quote(track) << ": [";
    for (size_t i = 0; i < points.size(); ++i) {
      const TraceEvent& e = *points[i];
      if (i > 0) os << ", ";
      os << "{\"iteration\": " << e.i0 << ", \"feasible\": " << e.i1
         << ", \"objective\": " << Num(e.d0) << ", \"wall_bucket\": "
         << static_cast<int64_t>(e.wall_seconds / kWallBucketSeconds) << "}";
    }
    os << "]";
  }
  os << "},\n";

  // --- Derived view: controller stage timeline + latency. -----------------
  os << "  \"controller\": {\"stages\": [";
  first = true;
  for (const NamedEvent& ne : named) {
    if (*ne.name != "detect" && *ne.name != "resolve" && *ne.name != "plan" &&
        *ne.name != "ledger") {
      continue;
    }
    if (!first) os << ", ";
    first = false;
    os << "{\"step\": " << ne.e->i0 << ", \"stage\": " << Quote(*ne.name)
       << ", \"value\": " << ne.e->i1 << ", \"seconds\": " << Num(ne.e->d0)
       << ", \"wall\": " << Num(ne.e->wall_seconds) << "}";
  }
  os << "], \"detection_to_migration_seconds\": [";
  first = true;
  for (const NamedEvent& ne : named) {
    if (*ne.name != "detect_to_migrate") continue;
    if (!first) os << ", ";
    first = false;
    os << Num(ne.e->d0);
  }
  os << "]},\n";

  // --- Derived view: per-(track, event) span self/total profile. ----------
  const std::vector<ProfileEntry> span_profile = BuildSpanProfile(sink.trace());
  os << "  \"span_profile\": [";
  for (size_t i = 0; i < span_profile.size(); ++i) {
    const ProfileEntry& entry = span_profile[i];
    if (i > 0) os << ", ";
    os << "{\"track\": " << Quote(entry.track) << ", \"name\": "
       << Quote(entry.name) << ", \"count\": " << entry.count
       << ", \"total_seconds\": " << Num(entry.total_seconds)
       << ", \"self_seconds\": " << Num(entry.self_seconds) << "}";
  }
  os << "],\n";

  // --- Full merged trace. --------------------------------------------------
  os << "  \"events\": [";
  for (size_t i = 0; i < named.size(); ++i) {
    const NamedEvent& ne = named[i];
    if (i > 0) os << ", ";
    os << "{\"track\": " << Quote(*ne.track) << ", \"name\": " << Quote(*ne.name)
       << ", \"kind\": \"" << KindName(ne.e->kind) << "\", \"seq\": " << ne.e->seq
       << ", \"wall\": " << Num(ne.e->wall_seconds) << ", \"i0\": " << ne.e->i0
       << ", \"i1\": " << ne.e->i1 << ", \"d0\": " << Num(ne.e->d0)
       << ", \"d1\": " << Num(ne.e->d1) << "}";
  }
  os << "]\n";
}

void ExportJson(const Sink& sink, std::ostream& os) {
  os << "{\n";
  ExportJsonFields(sink, os);
  os << "}\n";
}

std::string ExportJsonString(const Sink& sink) {
  std::ostringstream os;
  ExportJson(sink, os);
  return os.str();
}

std::string ExportText(const Sink& sink) {
  const MetricsSnapshot snap = sink.metrics().Snapshot();
  std::ostringstream os;

  os << "== counters ==\n";
  for (const auto& [name, value] : snap.counters) {
    os << "  " << name << " = " << value << "\n";
  }
  os << "== gauges ==\n";
  for (const auto& [name, value] : snap.gauges) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    os << "  " << name << " = " << buf << "\n";
  }
  os << "== histograms ==\n";
  for (const auto& h : snap.histograms) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", h.sum);
    os << "  " << h.name << ": total=" << h.total << " sum=" << buf
       << " buckets=[";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) os << " ";
      os << h.counts[b];
    }
    os << "]\n";
  }

  const std::vector<TraceEvent> events = sink.trace().MergedTrace();
  const std::vector<std::string> tracks = sink.trace().TrackNames();
  std::map<std::string, int64_t> per_track;
  for (const TraceEvent& e : events) {
    if (e.track < tracks.size()) ++per_track[tracks[e.track]];
  }
  os << "== trace (" << events.size() << " events, "
     << sink.trace().dropped_events() << " dropped) ==\n";
  for (const auto& [track, count] : per_track) {
    os << "  " << track << ": " << count << " events\n";
  }

  os << "== span profile (total / self seconds, count) ==\n";
  for (const ProfileEntry& entry : BuildSpanProfile(sink.trace())) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  %12.6f %12.6f %8lld  %s:%s\n",
                  entry.total_seconds, entry.self_seconds,
                  static_cast<long long>(entry.count), entry.track.c_str(),
                  entry.name.c_str());
    os << buf;
  }
  return os.str();
}

}  // namespace kairos::obs
