#include "solve/branch_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "core/bounds.h"
#include "core/greedy.h"
#include "obs/sink.h"

namespace kairos::solve {

namespace {

/// Slots in branching order: pinned slots first (forced placements — they
/// open their pin servers before any free slot branches), then free slots
/// hardest-first by normalized peak demand, so tight slots fail high in the
/// tree and the bound prunes early.
std::vector<int> BranchSlotOrder(const core::LoadAccountant& acct, int cap) {
  const int num_slots = acct.num_slots();
  std::vector<int> pinned, free_slots;
  for (int s = 0; s < num_slots; ++s) {
    const int pin = acct.PinOfSlot(s);
    (pin >= 0 && pin < cap ? pinned : free_slots).push_back(s);
  }
  const sim::EffectiveCapacity best = acct.BestClass();
  const int samples = acct.num_samples();
  std::vector<double> difficulty(num_slots, 0.0);
  for (int s : free_slots) {
    const double* cpu = acct.SlotSeries(core::Axis::kCpu, s);
    const double* ram = acct.SlotSeries(core::Axis::kRam, s);
    double peak_cpu = 0, peak_ram = 0;
    for (int t = 0; t < samples; ++t) {
      peak_cpu = std::max(peak_cpu, cpu[t]);
      peak_ram = std::max(peak_ram, ram[t]);
    }
    double d = 0;
    if (best.cpu_cores > 0) d += peak_cpu / best.cpu_cores;
    if (best.ram_bytes > 0) d += peak_ram / best.ram_bytes;
    difficulty[s] = d;
  }
  std::stable_sort(free_slots.begin(), free_slots.end(),
                   [&](int a, int b) { return difficulty[a] > difficulty[b]; });
  pinned.insert(pinned.end(), free_slots.begin(), free_slots.end());
  return pinned;
}

}  // namespace

core::ConsolidationPlan BranchAndBoundSolver::Solve(
    const core::ConsolidationProblem& problem, const SolveBudget& budget,
    SharedIncumbent* incumbent) {
  const auto start_time = std::chrono::steady_clock::now();
  const int cap = HardCap(problem);
  const int num_slots = problem.TotalSlots();

  // Warm start: the portfolio's shared start assignment (warm seed or
  // greedy packing), rescored exactly — the initial incumbent every subtree
  // must beat.
  const core::Assignment start = StartAssignment(problem, cap, budget);
  core::Evaluator ev(problem, cap);
  std::vector<int> best_assignment = start.server_of_slot;
  double best_cost = ev.Evaluate(best_assignment);
  bool best_feasible = false;

  core::BoundEngine engine(problem, cap);
  const core::LoadAccountant& acct = engine.accountant();

  // The encoding's target set: the fleet placement mask when it bites,
  // else the full index space (mirrors opt::direct's DecodePoint).
  const sim::FleetSpec::PlacementMask mask = problem.fleet.PlacementTargets(cap);
  std::vector<int> targets;
  if (mask.masked) {
    targets = mask.targets;
  } else {
    targets.resize(cap);
    for (int j = 0; j < cap; ++j) targets[j] = j;
  }

  // Servers a pin or the migration term makes distinguishable even while
  // closed: interchangeability (the symmetry break below) only holds for
  // servers whose identity no objective term observes.
  std::vector<char> distinguished(cap, 0);
  for (const auto& w : problem.workloads) {
    if (w.pinned_server >= 0 && w.pinned_server < cap) {
      distinguished[w.pinned_server] = 1;
    }
  }
  if (problem.migration_cost_weight > 0.0) {
    for (int j : problem.current_assignment) {
      if (j >= 0 && j < cap) distinguished[j] = 1;
    }
  }

  const std::vector<int> slot_order = BranchSlotOrder(acct, cap);
  const int num_classes = acct.num_classes();

  // Candidate servers for `slot` under the current partial assignment:
  // pins are forced; otherwise every open target, every closed
  // distinguished target, and the first closed undistinguished target of
  // each class (its closed siblings are symmetric), ordered cheapest
  // placement delta first.
  std::vector<char> class_taken(num_classes, 0);
  std::vector<std::pair<double, int>> scored;
  const auto candidates_for = [&](int slot) {
    std::vector<int> cands;
    const int pin = acct.PinOfSlot(slot);
    if (pin >= 0 && pin < cap) {
      cands.push_back(pin);
      return cands;
    }
    std::fill(class_taken.begin(), class_taken.end(), 0);
    scored.clear();
    for (int j : targets) {
      if (!engine.ServerOpen(j) && !distinguished[j]) {
        const int klass = acct.ClassOfServer(j);
        if (class_taken[klass]) continue;
        class_taken[klass] = 1;
      }
      scored.emplace_back(engine.PlaceDelta(slot, j), j);
    }
    std::sort(scored.begin(), scored.end());
    cands.reserve(scored.size());
    for (const auto& [delta, j] : scored) cands.push_back(j);
    return cands;
  };

  struct Frame {
    int slot = -1;
    std::vector<int> cands;
    size_t next = 0;
    int placed = -1;  // currently placed candidate server (-1 = none)
    double committed_at_entry = 0;
  };

  const int64_t max_nodes = std::max<int64_t>(1, budget.exact_max_nodes);
  int64_t nodes = 0;
  bool truncated = false;
  // Tightest known lower bound on what the abandoned subtrees could still
  // contain (min over their roots' committed costs) — the gap certificate
  // on truncation.
  double lb_abandoned = std::numeric_limits<double>::infinity();

  const auto offer_best = [&] {
    if (incumbent != nullptr) {
      incumbent->Offer(best_assignment, best_cost, best_feasible, name());
    }
  };
  const auto slack = [&] { return 1e-7 * std::max(1.0, std::fabs(best_cost)); };
  const auto out_of_budget = [&] {
    if (nodes >= max_nodes) return true;
    if ((nodes & 0xFF) == 0) {
      if (incumbent != nullptr && incumbent->ShouldStop()) return true;
      if (budget.exact_max_seconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_time)
                .count();
        if (elapsed >= budget.exact_max_seconds) return true;
      }
    }
    return false;
  };

  if (num_slots > 0) {
    // Feasibility of the warm start decides whether it may stand as the
    // final answer when the search finds nothing better.
    ev.Load(best_assignment);
    best_feasible = ev.IsFeasible();
    offer_best();

    std::vector<Frame> stack;
    stack.reserve(std::min<size_t>(num_slots, 4096));
    Frame root;
    root.slot = slot_order[0];
    root.cands = candidates_for(root.slot);
    stack.push_back(std::move(root));

    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.placed >= 0) {
        engine.Unplace(f.slot, f.placed);
        f.placed = -1;
      }
      if (truncated || f.next >= f.cands.size()) {
        if (truncated && f.next < f.cands.size()) {
          lb_abandoned = std::min(lb_abandoned, f.committed_at_entry);
        }
        stack.pop_back();
        continue;
      }
      if (out_of_budget()) {
        truncated = true;
        continue;
      }
      const int server = f.cands[f.next++];
      ++nodes;
      engine.Place(f.slot, server);
      f.placed = server;
      const int depth = static_cast<int>(stack.size());
      const double lb = engine.committed_cost() + engine.CompletionBound();
      if (lb >= best_cost - slack()) continue;  // prune; unplaced at loop top
      if (depth == num_slots) {
        // Complete assignment: rescore with the evaluator (the incremental
        // tracker's FP drift never decides an incumbent).
        std::vector<int> assignment(num_slots, -1);
        for (int s = 0; s < num_slots; ++s) assignment[s] = engine.ServerOf(s);
        ev.Load(assignment);
        const double exact_cost = ev.current_cost();
        if (exact_cost < best_cost) {
          best_cost = exact_cost;
          best_assignment = std::move(assignment);
          best_feasible = ev.IsFeasible();
          offer_best();
        }
        continue;
      }
      Frame child;
      child.slot = slot_order[depth];
      child.cands = candidates_for(child.slot);
      child.committed_at_entry = engine.committed_cost();
      stack.push_back(std::move(child));
    }
  }

  core::ConsolidationPlan plan =
      core::FinalizePlan(problem, best_assignment, cap);
  plan.fractional_lower_bound = core::FractionalLowerBound(problem);
  plan.exact_search = true;
  plan.exact_nodes = nodes;
  plan.proved_optimal = !truncated;
  plan.optimality_gap =
      truncated ? std::max(0.0, best_cost - std::min(lb_abandoned, best_cost))
                : 0.0;
  plan.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  if (budget.sink != nullptr) {
    obs::TraceSink& trace = budget.sink->trace();
    trace.Emit(trace.InternTrack(name() + "/" + std::to_string(seed_)),
               trace.InternName("incumbent"), obs::EventKind::kPoint,
               /*i0=*/static_cast<int64_t>(nodes),
               /*i1=*/plan.feasible ? 1 : 0, /*d0=*/plan.objective);
    budget.sink->metrics().counter("exact.nodes")->Add(nodes);
    budget.sink->metrics()
        .counter(plan.proved_optimal ? "exact.proved_optimal"
                                     : "exact.truncated")
        ->Add(1);
  }
  if (incumbent != nullptr) {
    incumbent->Offer(plan.assignment.server_of_slot, plan.objective,
                     plan.feasible, name());
  }
  return plan;
}

}  // namespace kairos::solve
