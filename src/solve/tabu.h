// Tabu search over Assignment moves: best-improvement relocation scans
// with a recency-based tabu list on (slot, server) pairs, aspiration on
// best-ever cost, and periodic swap kicks. Seeded from the multi-resource
// greedy and scored by the incremental core::Evaluator.
#ifndef KAIROS_SOLVE_TABU_H_
#define KAIROS_SOLVE_TABU_H_

#include "solve/solver.h"

namespace kairos::solve {

/// Deterministic tabu search. Never returns a plan worse than its greedy
/// seed (the reported plan is the best-ever assignment, which starts at the
/// seed).
class TabuSolver : public Solver {
 public:
  struct Options {
    /// Base tabu tenure, in iterations; the effective tenure adds a small
    /// seeded jitter so cycles of any fixed length break.
    int tenure = 12;
    int tenure_jitter = 6;
    /// Every `kick_interval` non-improving iterations, apply a random swap
    /// kick to escape the current basin.
    int kick_interval = 40;
    /// Heterogeneous fleets only: every `reclass_interval` non-improving
    /// iterations, kick one server's whole unpinned payload onto an empty
    /// server of a different machine class (never fires on uniform fleets,
    /// keeping the homogeneous search bit-identical).
    int reclass_interval = 25;
    /// ShouldStop() poll interval, in iterations.
    int stop_poll_interval = 64;
  };

  explicit TabuSolver(uint64_t seed) : seed_(seed) {}
  TabuSolver(uint64_t seed, const Options& options)
      : seed_(seed), options_(options) {}

  std::string name() const override { return "tabu"; }
  core::ConsolidationPlan Solve(const core::ConsolidationProblem& problem,
                                const SolveBudget& budget,
                                SharedIncumbent* incumbent) override;

 private:
  uint64_t seed_;
  Options options_;
};

}  // namespace kairos::solve

#endif  // KAIROS_SOLVE_TABU_H_
