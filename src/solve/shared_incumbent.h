// SharedIncumbent: the mutex-protected best-plan blackboard a solver
// portfolio races against. Solvers publish improving assignments with
// Offer(); the portfolio (or any solver) polls ShouldStop() to abort early
// once a target objective is reached or a stop is requested.
//
// Solvers only *publish* to the incumbent and *poll* the stop flag — they
// never read the incumbent back into their own search trajectory. That
// keeps every solver's output a pure function of (problem, budget, seed),
// which is what makes portfolio results reproducible regardless of thread
// scheduling.
#ifndef KAIROS_SOLVE_SHARED_INCUMBENT_H_
#define KAIROS_SOLVE_SHARED_INCUMBENT_H_

#include <atomic>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

namespace kairos::solve {

/// Thread-safe best-known-plan store with early-stop signalling.
class SharedIncumbent {
 public:
  /// `target_objective`: once a feasible plan at or below this objective is
  /// offered, ShouldStop() flips to true. Use Unbounded() (the default) to
  /// never early-stop on quality.
  explicit SharedIncumbent(double target_objective = Unbounded());

  static constexpr double Unbounded() {
    return -std::numeric_limits<double>::infinity();
  }

  /// Publishes a candidate. Returns true when it improved the incumbent
  /// (feasible beats infeasible; then lower objective wins). Flips the stop
  /// flag when a feasible candidate reaches the target objective.
  bool Offer(const std::vector<int>& assignment, double objective,
             bool feasible, const std::string& source);

  /// Snapshot of the current best (valid=false when nothing offered yet).
  struct Snapshot {
    bool valid = false;
    std::vector<int> assignment;
    double objective = std::numeric_limits<double>::infinity();
    bool feasible = false;
    std::string source;
  };
  Snapshot Best() const;

  /// True once the target objective was reached or RequestStop() was called.
  bool ShouldStop() const { return stop_.load(std::memory_order_relaxed); }

  /// Manually aborts the race (e.g., wall-clock budget exhausted).
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// Total Offer() calls / improving Offer() calls so far.
  int offers() const;
  int improvements() const;

 private:
  const double target_objective_;
  mutable std::mutex mu_;
  Snapshot best_;
  int offers_ = 0;
  int improvements_ = 0;
  std::atomic<bool> stop_{false};
};

}  // namespace kairos::solve

#endif  // KAIROS_SOLVE_SHARED_INCUMBENT_H_
