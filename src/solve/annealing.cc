#include "solve/annealing.h"

#include <algorithm>
#include <cmath>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "util/rng.h"

namespace kairos::solve {

core::ConsolidationPlan AnnealingSolver::Solve(
    const core::ConsolidationProblem& problem, const SolveBudget& budget,
    SharedIncumbent* incumbent) {
  const int cap = HardCap(problem);
  util::Rng rng(seed_);

  const core::Assignment seed_assignment = StartAssignment(problem, cap, budget);

  core::Evaluator ev(problem, cap);
  ev.Load(seed_assignment.server_of_slot);
  const int slots = ev.num_slots();

  std::vector<int> best = ev.assignment();
  double best_cost = ev.current_cost();
  bool best_feasible = ev.IsFeasible();
  if (incumbent) {
    incumbent->Offer(best, best_cost, best_feasible, name());
  }

  // Incumbent-curve trace ids, interned once so the per-improvement cost is
  // one branch plus a ring write (never an RNG touch).
  obs::Sink* const sink = budget.sink;
  uint32_t obs_track = 0, obs_incumbent = 0;
  obs::Counter* improvements = nullptr;
  if (sink != nullptr) {
    obs_track =
        sink->trace().InternTrack(name() + "/" + std::to_string(seed_));
    obs_incumbent = sink->trace().InternName("incumbent");
    improvements = sink->metrics().counter(name() + ".improvements");
    // Iteration-0 point: every attached run exports a curve with >= 1 point.
    sink->trace().Emit(obs_track, obs_incumbent, obs::EventKind::kPoint,
                       /*i0=*/0, /*i1=*/best_feasible ? 1 : 0,
                       /*d0=*/best_cost);
  }

  if (slots < 2 || cap < 2) {
    return core::FinalizePlan(problem, best, cap);
  }

  int it = 0;
  const auto record_if_best = [&] {
    const bool feasible = ev.IsFeasible();
    if ((feasible && !best_feasible) ||
        (feasible == best_feasible && ev.current_cost() < best_cost)) {
      best = ev.assignment();
      best_cost = ev.current_cost();
      best_feasible = feasible;
      if (sink != nullptr) {
        sink->trace().Emit(obs_track, obs_incumbent, obs::EventKind::kPoint,
                           /*i0=*/it, /*i1=*/best_feasible ? 1 : 0,
                           /*d0=*/best_cost);
        improvements->Add(1);
      }
      if (incumbent) incumbent->Offer(best, best_cost, best_feasible, name());
    }
  };

  // Temperature scaled to the seed cost so acceptance behaves consistently
  // across problem sizes (the objective spans orders of magnitude between
  // feasible and penalized regions).
  double temperature = std::max(
      1.0, options_.initial_temp_fraction * std::abs(ev.current_cost()));
  const int epoch = std::max(1, options_.epoch_slots_factor * slots);

  // Cross-class moves only exist on non-uniform fleets; the gate also keeps
  // the RNG stream (and thus every result) bit-identical on uniform ones.
  const bool fleet_moves = !problem.fleet.Uniform();

  // Hard drain mask: with drained classes present, relocation targets are
  // drawn from the placable servers only and swaps never land on a drained
  // server. Unmasked fleets keep the classic RNG stream bit-for-bit.
  const sim::FleetSpec::PlacementMask mask = problem.fleet.PlacementTargets(cap);

  for (it = 0; it < budget.max_iterations; ++it) {
    if (incumbent && it % options_.stop_poll_interval == 0 &&
        incumbent->ShouldStop()) {
      break;
    }
    if (it > 0 && it % epoch == 0) temperature *= options_.cooling;

    if (fleet_moves && rng.NextDouble() < options_.reclass_probability) {
      // Re-class: migrate one server's whole unpinned payload onto an empty
      // server of a different machine class (e.g. two legacy boxes folding
      // onto one big target) — a package move single relocations only reach
      // through an uphill barrier.
      const int slot = static_cast<int>(rng.UniformInt(0, slots - 1));
      const int from = ev.assignment()[slot];
      const std::vector<int> targets = EmptyCrossClassServers(problem, ev, from);
      const std::vector<int> movers = MovableSlotsOn(ev, from);
      if (targets.empty() || movers.empty()) continue;
      const int to = targets[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(targets.size()) - 1))];
      const double before = ev.current_cost();
      for (int s : movers) ev.ApplyMove(s, to);
      const double delta = ev.current_cost() - before;
      if (delta <= 0) {
        record_if_best();
      } else if (rng.NextDouble() >= std::exp(-delta / temperature)) {
        for (int s : movers) ev.ApplyMove(s, from);  // reject: roll back
      }
      continue;
    }

    if (rng.NextDouble() < options_.swap_probability) {
      // Swap the servers of two unpinned slots.
      const int a = static_cast<int>(rng.UniformInt(0, slots - 1));
      const int b = static_cast<int>(rng.UniformInt(0, slots - 1));
      if (a == b) continue;
      if (ev.PinOfSlot(a) >= 0 || ev.PinOfSlot(b) >= 0) continue;
      const int sa = ev.assignment()[a];
      const int sb = ev.assignment()[b];
      if (sa == sb) continue;
      if (mask.masked && (problem.fleet.DrainedServer(sa) ||
                          problem.fleet.DrainedServer(sb))) {
        continue;
      }
      const double before = ev.current_cost();
      ev.ApplyMove(a, sb);
      ev.ApplyMove(b, sa);
      const double delta = ev.current_cost() - before;
      if (delta <= 0) {
        record_if_best();
      } else if (rng.NextDouble() >= std::exp(-delta / temperature)) {
        ev.ApplyMove(b, sb);  // reject: roll back
        ev.ApplyMove(a, sa);
      }
    } else {
      // Relocate one unpinned slot to a random other server (a random
      // other *placable* server under the drain mask).
      const int slot = static_cast<int>(rng.UniformInt(0, slots - 1));
      if (ev.PinOfSlot(slot) >= 0) continue;
      const int from = ev.assignment()[slot];
      int to;
      if (mask.masked) {
        // Uniform over placable servers != from; when `from` itself is
        // drained (an evacuation move) every target is valid.
        const auto it = std::lower_bound(mask.targets.begin(),
                                         mask.targets.end(), from);
        const int n = static_cast<int>(mask.targets.size());
        if (it != mask.targets.end() && *it == from) {
          if (n < 2) continue;
          int idx = static_cast<int>(rng.UniformInt(0, n - 2));
          if (idx >= static_cast<int>(it - mask.targets.begin())) ++idx;
          to = mask.targets[idx];
        } else {
          to = mask.targets[static_cast<size_t>(rng.UniformInt(0, n - 1))];
        }
      } else {
        to = static_cast<int>(rng.UniformInt(0, cap - 2));
        if (to >= from) ++to;  // uniform over servers != from
      }
      const double delta = ev.MoveDelta(slot, to);
      if (delta <= 0 || rng.NextDouble() < std::exp(-delta / temperature)) {
        ev.ApplyMove(slot, to);
        if (delta <= 0) record_if_best();
      }
    }
  }

  return core::FinalizePlan(problem, best, cap);
}

}  // namespace kairos::solve
