// Simulated annealing over Assignment moves (relocate + swap), seeded from
// the multi-resource greedy and scored by the incremental core::Evaluator.
// A cheap, derivative-free complement to the DIRECT engine in the
// portfolio: it explores the discrete move space directly instead of going
// through the continuous encoding.
#ifndef KAIROS_SOLVE_ANNEALING_H_
#define KAIROS_SOLVE_ANNEALING_H_

#include "solve/solver.h"

namespace kairos::solve {

/// Geometric-cooling SA. Never returns a plan worse than its greedy seed:
/// the best-ever assignment (which starts at the seed) is what is reported.
class AnnealingSolver : public Solver {
 public:
  struct Options {
    /// Initial acceptance temperature as a fraction of the seed cost.
    double initial_temp_fraction = 0.02;
    /// Geometric cooling rate applied once per epoch.
    double cooling = 0.95;
    /// Moves per epoch, as a multiple of the slot count.
    int epoch_slots_factor = 8;
    /// Probability of proposing a swap instead of a relocation.
    double swap_probability = 0.25;
    /// Heterogeneous fleets only: probability of proposing a cross-class
    /// "re-class" move — one server's whole unpinned payload migrates onto
    /// an empty server of a different machine class. Never drawn on uniform
    /// fleets, so the homogeneous move stream is untouched.
    double reclass_probability = 0.08;
    /// ShouldStop() poll interval, in moves.
    int stop_poll_interval = 256;
  };

  explicit AnnealingSolver(uint64_t seed) : seed_(seed) {}
  AnnealingSolver(uint64_t seed, const Options& options)
      : seed_(seed), options_(options) {}

  std::string name() const override { return "anneal"; }
  core::ConsolidationPlan Solve(const core::ConsolidationProblem& problem,
                                const SolveBudget& budget,
                                SharedIncumbent* incumbent) override;

 private:
  uint64_t seed_;
  Options options_;
};

}  // namespace kairos::solve

#endif  // KAIROS_SOLVE_ANNEALING_H_
