// Portfolio adapters wrapping the pre-existing placers behind the Solver
// interface: the paper's greedy baselines (Section 6) and the full
// bounded-K DIRECT consolidation engine (Sections 5-6).
#ifndef KAIROS_SOLVE_ADAPTERS_H_
#define KAIROS_SOLVE_ADAPTERS_H_

#include "solve/solver.h"

namespace kairos::solve {

/// core::GreedyBaseline — the paper's single-resource greedy comparison
/// baseline (tries each resource, keeps the best feasible packing).
class GreedyBaselineSolver : public Solver {
 public:
  std::string name() const override { return "greedy"; }
  core::ConsolidationPlan Solve(const core::ConsolidationProblem& problem,
                                const SolveBudget& budget,
                                SharedIncumbent* incumbent) override;
};

/// core::GreedyMultiResource — the multi-resource greedy used to seed the
/// engine. Always completes; may be infeasible.
class GreedyMultiSolver : public Solver {
 public:
  std::string name() const override { return "greedy-multi"; }
  core::ConsolidationPlan Solve(const core::ConsolidationProblem& problem,
                                const SolveBudget& budget,
                                SharedIncumbent* incumbent) override;
};

/// core::ConsolidationEngine — bounded-K binary search over DIRECT probes
/// plus local-search polish. Streams probe incumbents to the shared
/// incumbent and honours its stop flag between phases.
class EngineSolver : public Solver {
 public:
  explicit EngineSolver(uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "engine"; }
  core::ConsolidationPlan Solve(const core::ConsolidationProblem& problem,
                                const SolveBudget& budget,
                                SharedIncumbent* incumbent) override;

 private:
  uint64_t seed_;
};

/// core::ConsolidationEngine::PolishPlan around the budget's warm-start
/// seed (or the multi-resource greedy when none is given): local search
/// plus a DIRECT pass at the full cap, without the binary search on K. The
/// cheapest way to refresh an incumbent after small drift — the online
/// controller's workhorse.
class WarmStartPolishSolver : public Solver {
 public:
  explicit WarmStartPolishSolver(uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "polish"; }
  core::ConsolidationPlan Solve(const core::ConsolidationProblem& problem,
                                const SolveBudget& budget,
                                SharedIncumbent* incumbent) override;

 private:
  uint64_t seed_;
};

}  // namespace kairos::solve

#endif  // KAIROS_SOLVE_ADAPTERS_H_
