#include "solve/shard.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <utility>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/load_accountant.h"
#include "util/thread_pool.h"
#include "util/union_find.h"

namespace kairos::solve {

namespace {

using util::UnionFind;

/// Local index of global server `server` within the ascending `servers`
/// map; -1 when the shard does not own it.
int LocalServerIndex(const std::vector<int>& servers, int server) {
  auto it = std::lower_bound(servers.begin(), servers.end(), server);
  if (it == servers.end() || *it != server) return -1;
  return static_cast<int>(it - servers.begin());
}

}  // namespace

uint64_t ShardSeed(uint64_t master_seed, int shard_id) {
  // splitmix64 finalizer over the (master, id) pair.
  uint64_t x = master_seed +
               0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(shard_id) + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

ShardPartitioner::ShardPartitioner(const core::ConsolidationProblem& problem,
                                   const ShardOptions& options)
    : problem_(problem), options_(options) {
  cap_ = problem.ServerCap();

  // A Uniform() fleet partitions as one virtual class spanning the whole
  // index space: the shards come out identical no matter how the identical
  // machines were declared (one unbounded class, two bounded splits, ...),
  // preserving the representation-equivalence property every solver holds.
  if (problem.fleet.Uniform()) {
    vclasses_.push_back({0, 0, cap_});
  } else {
    const std::vector<int> counts = problem.fleet.ClassCounts(cap_);
    int begin = 0;
    for (int c = 0; c < static_cast<int>(counts.size()); ++c) {
      if (counts[c] > 0) vclasses_.push_back({c, begin, counts[c]});
      begin += counts[c];
    }
  }

  const int slots = problem.TotalSlots();
  int shards = options.num_shards;
  if (shards <= 0) {
    const int target = std::max(1, options.target_shard_slots);
    shards = (slots + target - 1) / target;
  }
  num_shards_ = std::max(1, std::min(shards, std::max(1, cap_)));
}

int ShardPartitioner::ShareOf(int v, int s) const {
  const int n = vclasses_[v].count;
  return n / num_shards_ + (s < n % num_shards_ ? 1 : 0);
}

int ShardPartitioner::ShareBegin(int v, int s) const {
  const int n = vclasses_[v].count;
  const int q = n / num_shards_;
  const int r = n % num_shards_;
  return vclasses_[v].begin + s * q + std::min(s, r);
}

int ShardPartitioner::ShardOfServer(int server) const {
  if (server < 0 || server >= cap_) return -1;
  for (int v = 0; v < static_cast<int>(vclasses_.size()); ++v) {
    const VClass& vc = vclasses_[v];
    if (server < vc.begin || server >= vc.begin + vc.count) continue;
    const int offset = server - vc.begin;
    const int q = vc.count / num_shards_;
    const int r = vc.count % num_shards_;
    if (q == 0) return offset;  // one server per shard, lowest ids first
    if (offset < r * (q + 1)) return offset / (q + 1);
    return r + (offset - r * (q + 1)) / q;
  }
  return -1;
}

std::vector<FleetShard> ShardPartitioner::Partition(uint64_t master_seed) const {
  const int S = num_shards_;
  const int num_workloads = static_cast<int>(problem_.workloads.size());

  // Global slot layout (workload-major, like the evaluator's).
  std::vector<int> slot_begin(num_workloads + 1, 0);
  for (int w = 0; w < num_workloads; ++w) {
    slot_begin[w + 1] = slot_begin[w] + problem_.workloads[w].replicas;
  }
  const int total_slots = slot_begin[num_workloads];

  // Behavioural demand scores: per-workload normalized CPU+RAM peaks, the
  // LPT weight of the routing below. Slot-only accountant — no per-server
  // matrices are allocated for what may be a very large cap.
  const core::LoadAccountant acct(problem_, cap_, /*track_server_load=*/false);
  const sim::EffectiveCapacity best = acct.BestClass();
  std::vector<double> workload_score(num_workloads, 0.0);
  for (int s = 0; s < acct.num_slots(); ++s) {
    const double* cpu = acct.SlotSeries(core::Axis::kCpu, s);
    const double* ram = acct.SlotSeries(core::Axis::kRam, s);
    double peak_cpu = 0.0, peak_ram = 0.0;
    for (int t = 0; t < acct.num_samples(); ++t) {
      peak_cpu = std::max(peak_cpu, cpu[t]);
      peak_ram = std::max(peak_ram, ram[t]);
    }
    const double score =
        (best.cpu_cores > 0 ? peak_cpu / best.cpu_cores : 0.0) +
        (best.ram_bytes > 0 ? peak_ram / best.ram_bytes : 0.0);
    workload_score[acct.WorkloadOfSlot(s)] += score;
  }

  // Anti-affinity groups (atomic routing units).
  UnionFind uf(num_workloads);
  for (const auto& [a, b] : problem_.anti_affinity) {
    if (a < 0 || a >= num_workloads || b < 0 || b >= num_workloads) continue;
    uf.Union(a, b);
  }
  struct Group {
    std::vector<int> members;  // ascending
    double score = 0.0;
    int max_replicas = 1;
    int pin_server = -1;      // first in-range pin among members
    int current_server = -1;  // first in-range current server among slots
  };
  std::vector<Group> groups;
  std::vector<int> group_of(num_workloads, -1);
  const bool has_current =
      static_cast<int>(problem_.current_assignment.size()) == total_slots;
  for (int w = 0; w < num_workloads; ++w) {
    const int root = uf.Find(w);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    Group& g = groups[group_of[root]];
    g.members.push_back(w);
    g.score += workload_score[w];
    g.max_replicas = std::max(g.max_replicas, problem_.workloads[w].replicas);
    const int pin = problem_.workloads[w].pinned_server;
    if (g.pin_server < 0 && pin >= 0 && pin < cap_) g.pin_server = pin;
    if (has_current && g.current_server < 0) {
      for (int sl = slot_begin[w]; sl < slot_begin[w + 1]; ++sl) {
        const int cur = problem_.current_assignment[sl];
        if (cur >= 0 && cur < cap_) {
          g.current_server = cur;
          break;
        }
      }
    }
  }

  // Per-shard routing capacity: normalized placable CPU+RAM (drained
  // classes contribute nothing), plus raw server counts for replica fits.
  std::vector<double> cap_score(S, 0.0);
  std::vector<int> placable_count(S, 0), total_count(S, 0);
  for (int v = 0; v < static_cast<int>(vclasses_.size()); ++v) {
    const int klass = vclasses_[v].klass;
    const bool drained = acct.ClassDrained(klass);
    const sim::EffectiveCapacity& cc = acct.CapacityOfClass(klass);
    const double unit =
        (best.cpu_cores > 0 ? cc.cpu_cores / best.cpu_cores : 0.0) +
        (best.ram_bytes > 0 ? cc.ram_bytes / best.ram_bytes : 0.0);
    for (int s = 0; s < S; ++s) {
      const int share = ShareOf(v, s);
      total_count[s] += share;
      if (!drained) {
        placable_count[s] += share;
        cap_score[s] += unit * share;
      }
    }
  }

  // Route groups to shards: pinned groups to the pin's shard, then
  // migration-aware groups to their current server's shard, then the rest
  // LPT (heaviest first) onto the shard with the most normalized headroom.
  std::vector<int> shard_of_workload(num_workloads, 0);
  std::vector<double> load(S, 0.0);
  std::vector<char> routed(groups.size(), 0);
  auto route = [&](int gi, int shard) {
    for (int w : groups[gi].members) shard_of_workload[w] = shard;
    load[shard] += groups[gi].score;
    routed[gi] = 1;
  };
  auto fits = [&](int shard, const Group& g) {
    const int have =
        placable_count[shard] > 0 ? placable_count[shard] : total_count[shard];
    return have >= g.max_replicas;
  };
  auto fallback_shard = [&](const Group& g) {
    // No shard fits the replica count: largest placable pool, lowest id.
    int pick = 0;
    for (int s = 1; s < S; ++s) {
      const int have_p =
          placable_count[pick] > 0 ? placable_count[pick] : total_count[pick];
      const int have_s =
          placable_count[s] > 0 ? placable_count[s] : total_count[s];
      if (have_s > have_p) pick = s;
    }
    (void)g;
    return pick;
  };
  for (int gi = 0; gi < static_cast<int>(groups.size()); ++gi) {
    if (groups[gi].pin_server < 0) continue;
    route(gi, ShardOfServer(groups[gi].pin_server));
  }
  for (int gi = 0; gi < static_cast<int>(groups.size()); ++gi) {
    if (routed[gi] || groups[gi].current_server < 0) continue;
    const int shard = ShardOfServer(groups[gi].current_server);
    route(gi, fits(shard, groups[gi]) ? shard : fallback_shard(groups[gi]));
  }
  std::vector<int> rest;
  for (int gi = 0; gi < static_cast<int>(groups.size()); ++gi) {
    if (!routed[gi]) rest.push_back(gi);
  }
  std::sort(rest.begin(), rest.end(), [&](int a, int b) {
    if (groups[a].score != groups[b].score) {
      return groups[a].score > groups[b].score;
    }
    return groups[a].members.front() < groups[b].members.front();
  });
  for (int gi : rest) {
    int pick = -1;
    double pick_ratio = std::numeric_limits<double>::infinity();
    for (int s = 0; s < S; ++s) {
      if (!fits(s, groups[gi]) || cap_score[s] <= 0.0) continue;
      const double ratio = (load[s] + groups[gi].score) / cap_score[s];
      if (ratio < pick_ratio) {
        pick_ratio = ratio;
        pick = s;
      }
    }
    if (pick < 0) {
      // Fully drained (or zero-capacity) fleet: balance by score over the
      // shards that at least fit the replicas.
      for (int s = 0; s < S; ++s) {
        if (!fits(s, groups[gi])) continue;
        if (pick < 0 || load[s] < load[pick]) pick = s;
      }
    }
    route(gi, pick >= 0 ? pick : fallback_shard(groups[gi]));
  }

  // Materialize the shard subproblems.
  std::vector<FleetShard> shards(S);
  std::vector<int> local_of_workload(num_workloads, -1);
  for (int s = 0; s < S; ++s) {
    FleetShard& shard = shards[s];
    shard.id = s;
    shard.seed = ShardSeed(master_seed, s);

    core::ConsolidationProblem& sub = shard.problem;
    sub.fleet.classes.clear();
    for (int v = 0; v < static_cast<int>(vclasses_.size()); ++v) {
      const int share = ShareOf(v, s);
      if (share <= 0) continue;
      sim::MachineClass mc = problem_.fleet.classes[vclasses_[v].klass];
      mc.count = share;  // never unbounded: shard fleets are fully bounded
      sub.fleet.classes.push_back(mc);
      const int begin = ShareBegin(v, s);
      for (int i = 0; i < share; ++i) shard.servers.push_back(begin + i);
    }
    sub.max_servers = 0;  // the shard fleet is the pool
    sub.disk_model = problem_.disk_model;
    sub.cpu_headroom = problem_.cpu_headroom;
    sub.ram_headroom = problem_.ram_headroom;
    sub.disk_headroom = problem_.disk_headroom;
    sub.per_instance_cpu_overhead_cores = problem_.per_instance_cpu_overhead_cores;
    sub.instance_ram_overhead_bytes = problem_.instance_ram_overhead_bytes;
    sub.cpu_weight = problem_.cpu_weight;
    sub.ram_weight = problem_.ram_weight;
    sub.disk_weight = problem_.disk_weight;
    sub.migration_cost_weight = problem_.migration_cost_weight;

    for (int w = 0; w < num_workloads; ++w) {
      if (shard_of_workload[w] != s) continue;
      local_of_workload[w] = static_cast<int>(shard.workloads.size());
      shard.workloads.push_back(w);
      monitor::WorkloadProfile profile = problem_.workloads[w];
      // Pins remap to the local index space; a pin the shard does not own
      // (a conflicted multi-pin group) is released here and repaired
      // globally after stitching.
      profile.pinned_server = LocalServerIndex(shard.servers, profile.pinned_server);
      sub.workloads.push_back(std::move(profile));
      for (int sl = slot_begin[w]; sl < slot_begin[w + 1]; ++sl) {
        shard.slots.push_back(sl);
      }
    }

    if (static_cast<int>(problem_.migration_move_cost.size()) == num_workloads) {
      sub.migration_move_cost.reserve(shard.workloads.size());
      for (int w : shard.workloads) {
        sub.migration_move_cost.push_back(problem_.migration_move_cost[w]);
      }
    }
    if (has_current) {
      sub.current_assignment.reserve(shard.slots.size());
      for (int sl : shard.slots) {
        // Foreign current servers map to -1: any local placement is a move,
        // which is exactly what it costs globally.
        sub.current_assignment.push_back(
            LocalServerIndex(shard.servers, problem_.current_assignment[sl]));
      }
    }
  }

  for (int s = 0; s < S; ++s) {
    FleetShard& shard = shards[s];
    core::ConsolidationProblem& sub = shard.problem;
    for (const auto& [a, b] : problem_.anti_affinity) {
      if (a < 0 || a >= num_workloads || b < 0 || b >= num_workloads) continue;
      if (shard_of_workload[a] != s || shard_of_workload[b] != s) continue;
      sub.anti_affinity.emplace_back(local_of_workload[a], local_of_workload[b]);
    }
  }

  return shards;
}

namespace {

/// Solves one shard with a registry solver under a budget scaled down by
/// the shard count. Returns the local assignment (one local server index
/// per local slot), clamped into the shard's index space.
std::vector<int> SolveShardLocal(const FleetShard& shard,
                                 const SolveBudget& parent, int num_shards,
                                 const std::vector<int>* warm_seed,
                                 const ShardOptions& options) {
  const int slots = shard.problem.TotalSlots();
  if (slots == 0 || shard.servers.empty()) return std::vector<int>(slots, 0);
  const int local_cap = HardCap(shard.problem);

  SolveBudget budget;
  const int S = std::max(1, num_shards);
  budget.max_iterations = std::max(200, parent.max_iterations / S);
  budget.direct_evaluations = std::max(50, parent.direct_evaluations / S);
  budget.probe_direct_evaluations =
      std::max(25, parent.probe_direct_evaluations / S);
  budget.local_search_max_sweeps = parent.local_search_max_sweeps;
  budget.dimensioning = parent.dimensioning;
  budget.sink = parent.sink;
  if (warm_seed != nullptr) {
    // The global warm seed carries over only when every shard slot's seed
    // server lives in this shard; a partial remap would fabricate
    // placements the seed never contained.
    std::vector<int> seed(slots);
    bool ok = true;
    for (int ls = 0; ls < slots; ++ls) {
      const int local = LocalServerIndex(shard.servers, (*warm_seed)[shard.slots[ls]]);
      if (local < 0) {
        ok = false;
        break;
      }
      seed[ls] = local;
    }
    if (ok) budget.seed_assignment = std::move(seed);
  }

  std::string name = options.local_solver;
  if (name.empty()) name = slots <= 96 ? "engine" : "greedy-multi";
  if (name == "sharded") name = "greedy-multi";  // no recursive sharding
  auto solver = SolverRegistry::Global().Create(name, shard.seed);
  if (solver == nullptr) {
    solver = SolverRegistry::Global().Create("greedy-multi", shard.seed);
  }
  const core::ConsolidationPlan plan =
      solver->Solve(shard.problem, budget, /*incumbent=*/nullptr);

  std::vector<int> out = plan.assignment.server_of_slot;
  out.resize(slots, 0);
  for (int& v : out) {
    if (v < 0 || v >= local_cap) v = 0;
  }
  return out;
}

/// Bounded cross-shard rebalance: per round, the shard with the most
/// violation (then the highest normalized load) donates its heaviest
/// movable slots to the emptiest servers of the shard with the most
/// headroom; each candidate scores all targets in one MoveDeltaBatch pass
/// and takes the best strictly improving move. Sequential and
/// RNG-free — byte-identical at any thread count.
int RebalanceAcrossShards(const std::vector<FleetShard>& shards,
                          core::Evaluator* ev, const ShardOptions& options) {
  const int S = static_cast<int>(shards.size());
  if (S <= 1 || options.rebalance_rounds <= 0 ||
      options.rebalance_max_moves <= 0) {
    return 0;
  }
  const core::LoadAccountant& acct = ev->accountant();
  const int cap = ev->max_servers();
  const int num_slots = ev->num_slots();

  std::vector<int> shard_of_server(cap, -1);
  for (const FleetShard& shard : shards) {
    for (int j : shard.servers) {
      if (j >= 0 && j < cap) shard_of_server[j] = shard.id;
    }
  }

  const sim::EffectiveCapacity best = acct.BestClass();
  std::vector<double> slot_score(num_slots, 0.0);
  for (int s = 0; s < num_slots; ++s) {
    const double* cpu = acct.SlotSeries(core::Axis::kCpu, s);
    const double* ram = acct.SlotSeries(core::Axis::kRam, s);
    double peak_cpu = 0.0, peak_ram = 0.0;
    for (int t = 0; t < acct.num_samples(); ++t) {
      peak_cpu = std::max(peak_cpu, cpu[t]);
      peak_ram = std::max(peak_ram, ram[t]);
    }
    slot_score[s] = (best.cpu_cores > 0 ? peak_cpu / best.cpu_cores : 0.0) +
                    (best.ram_bytes > 0 ? peak_ram / best.ram_bytes : 0.0);
  }
  std::vector<double> cap_score(S, 0.0);
  for (const FleetShard& shard : shards) {
    for (int j : shard.servers) {
      const int c = acct.ClassOfServer(j);
      if (acct.ClassDrained(c)) continue;
      const sim::EffectiveCapacity& cc = acct.CapacityOfClass(c);
      cap_score[shard.id] +=
          (best.cpu_cores > 0 ? cc.cpu_cores / best.cpu_cores : 0.0) +
          (best.ram_bytes > 0 ? cc.ram_bytes / best.ram_bytes : 0.0);
    }
  }

  int total_moves = 0;
  std::vector<int> targets;
  std::vector<double> deltas;
  for (int round = 0; round < options.rebalance_rounds; ++round) {
    // Shard pressure from the *current* placement (moves shift it).
    std::vector<double> violation(S, 0.0), load(S, 0.0);
    for (int j = 0; j < cap; ++j) {
      if (shard_of_server[j] >= 0) {
        violation[shard_of_server[j]] += ev->ServerViolation(j);
      }
    }
    for (int sl = 0; sl < num_slots; ++sl) {
      const int home = shard_of_server[ev->assignment()[sl]];
      if (home >= 0) load[home] += slot_score[sl];
    }
    auto ratio = [&](int s) {
      if (cap_score[s] > 0.0) return load[s] / cap_score[s];
      return load[s] > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    };
    int donor = 0;
    for (int s = 1; s < S; ++s) {
      if (violation[s] > violation[donor] ||
          (violation[s] == violation[donor] && ratio(s) > ratio(donor))) {
        donor = s;
      }
    }
    int receiver = -1;
    for (int s = 0; s < S; ++s) {
      if (s == donor || cap_score[s] <= 0.0) continue;
      if (receiver < 0 || ratio(s) < ratio(receiver)) receiver = s;
    }
    if (receiver < 0) break;

    // Donor candidates: movable slots, violating servers first, heaviest
    // first, slot index as the final tie-break.
    struct Candidate {
      int slot = 0;
      bool violating = false;
      double score = 0.0;
    };
    std::vector<Candidate> candidates;
    for (int sl = 0; sl < num_slots; ++sl) {
      const int j = ev->assignment()[sl];
      if (j < 0 || j >= cap || shard_of_server[j] != donor) continue;
      if (ev->PinOfSlot(sl) >= 0) continue;
      candidates.push_back({sl, ev->ServerViolation(j) > 0.0, slot_score[sl]});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.violating != b.violating) return a.violating;
                if (a.score != b.score) return a.score > b.score;
                return a.slot < b.slot;
              });
    if (static_cast<int>(candidates.size()) > 4 * options.rebalance_max_moves) {
      candidates.resize(4 * options.rebalance_max_moves);
    }

    // Receiver targets: placable servers, emptiest first (occupancy at
    // round start), index as the tie-break.
    targets.clear();
    for (int j : shards[receiver].servers) {
      if (!acct.ClassDrained(acct.ClassOfServer(j))) targets.push_back(j);
    }
    std::stable_sort(targets.begin(), targets.end(), [&](int a, int b) {
      return acct.ServerCount(a) < acct.ServerCount(b);
    });
    if (static_cast<int>(targets.size()) > options.rebalance_max_targets) {
      targets.resize(options.rebalance_max_targets);
    }
    if (targets.empty()) break;

    int moves_this_round = 0;
    for (const Candidate& cand : candidates) {
      if (moves_this_round >= options.rebalance_max_moves) break;
      ev->MoveDeltaBatch(cand.slot, targets, &deltas);
      int pick = -1;
      double pick_delta = -1e-9;
      for (int i = 0; i < static_cast<int>(deltas.size()); ++i) {
        if (deltas[i] < pick_delta) {
          pick_delta = deltas[i];
          pick = i;
        }
      }
      if (pick >= 0) {
        ev->ApplyMove(cand.slot, targets[pick]);
        ++moves_this_round;
      }
    }
    total_moves += moves_this_round;
    if (moves_this_round == 0) break;
  }
  return total_moves;
}

}  // namespace

bool ShardRepair(const core::ConsolidationProblem& problem,
                 const SolveBudget& budget, const ShardOptions& options,
                 uint64_t master_seed, int workload,
                 core::ConsolidationPlan* plan) {
  const int cap = HardCap(problem);
  const int total_slots = problem.TotalSlots();
  if (workload < 0 || workload >= static_cast<int>(problem.workloads.size())) {
    return false;
  }
  if (static_cast<int>(problem.current_assignment.size()) != total_slots) {
    return false;
  }
  for (int s : problem.current_assignment) {
    if (s < 0 || s >= cap) return false;  // stranded incumbent: full re-solve
  }

  const ShardPartitioner partitioner(problem, options);
  const std::vector<FleetShard> shards = partitioner.Partition(master_seed);
  const FleetShard* target = nullptr;
  for (const FleetShard& shard : shards) {
    if (std::binary_search(shard.workloads.begin(), shard.workloads.end(),
                           workload)) {
      target = &shard;
      break;
    }
  }
  if (target == nullptr || target->servers.empty()) return false;

  const bool warm = ValidSeedAssignment(problem, cap, budget.seed_assignment);
  const std::vector<int> local =
      SolveShardLocal(*target, budget, static_cast<int>(shards.size()),
                      warm ? &budget.seed_assignment : nullptr, options);

  std::vector<int> stitched = problem.current_assignment;
  for (int ls = 0; ls < static_cast<int>(target->slots.size()); ++ls) {
    stitched[target->slots[ls]] = target->servers[local[ls]];
  }

  core::Evaluator ev(problem, cap);
  ev.Load(problem.current_assignment);
  const double cost_old = ev.current_cost();
  const bool feasible_old = ev.IsFeasible();
  ev.Load(stitched);
  for (int sl = 0; sl < ev.num_slots(); ++sl) {
    const int pin = ev.PinOfSlot(sl);
    if (pin >= 0 && pin < cap && ev.assignment()[sl] != pin) {
      ev.ApplyMove(sl, pin);
    }
  }
  if (ev.current_cost() > cost_old) return false;
  if (feasible_old && !ev.IsFeasible()) return false;
  *plan = core::FinalizePlan(problem, ev.assignment(), cap);
  return true;
}

ShardedSolver::ShardedSolver(uint64_t seed, ShardOptions options)
    : seed_(seed), options_(std::move(options)) {}

core::ConsolidationPlan ShardedSolver::Solve(
    const core::ConsolidationProblem& problem, const SolveBudget& budget,
    SharedIncumbent* incumbent) {
  const int cap = HardCap(problem);
  if (problem.TotalSlots() == 0) {
    if (cap < 1) {
      // Nothing to place and nowhere to place it (a default-constructed
      // problem): FinalizePlan would build an Evaluator, whose accountant
      // requires at least one server — hand back the empty plan directly.
      core::ConsolidationPlan plan;
      plan.feasible = true;
      plan.class_servers_used.assign(problem.fleet.num_classes(), 0);
      for (const auto& c : problem.fleet.classes) {
        plan.class_names.push_back(c.spec.name);
      }
      return plan;
    }
    return core::FinalizePlan(problem, std::vector<int>(), cap);
  }

  const ShardPartitioner partitioner(problem, options_);
  const std::vector<FleetShard> shards = partitioner.Partition(seed_);
  const int S = static_cast<int>(shards.size());
  const bool warm = ValidSeedAssignment(problem, cap, budget.seed_assignment);

  std::vector<std::vector<int>> local(S);
  uint64_t steals = 0;
  {
    util::ThreadPool pool(options_.threads);
    const std::function<void(int)> task = [&](int s) {
      local[s] = SolveShardLocal(shards[s], budget, S,
                                 warm ? &budget.seed_assignment : nullptr,
                                 options_);
      // Credit this worker's evaluator ops before it goes idle; flushing
      // early only moves tallies to the sink sooner, never drops them.
      if (budget.sink != nullptr) core::FlushEvalOps(budget.sink);
    };
    pool.ParallelFor(S, task);
    steals = pool.steal_count();
  }

  // Stitch the local plans into the global index space.
  std::vector<int> assignment(problem.TotalSlots(), 0);
  for (const FleetShard& shard : shards) {
    const std::vector<int>& plan = local[shard.id];
    for (int ls = 0; ls < static_cast<int>(shard.slots.size()); ++ls) {
      assignment[shard.slots[ls]] = shard.servers[plan[ls]];
    }
  }

  core::Evaluator ev(problem, cap);
  ev.Load(assignment);
  // Pins released during partitioning (a pin owned by another shard) come
  // home here, so pins are honoured exactly like every other solver.
  for (int sl = 0; sl < ev.num_slots(); ++sl) {
    const int pin = ev.PinOfSlot(sl);
    if (pin >= 0 && pin < cap && ev.assignment()[sl] != pin) {
      ev.ApplyMove(sl, pin);
    }
  }
  const int rebalance_moves = RebalanceAcrossShards(shards, &ev, options_);

  core::ConsolidationPlan plan = core::FinalizePlan(problem, ev.assignment(), cap);
  if (budget.sink != nullptr) {
    budget.sink->Count("sharded.runs");
    budget.sink->Count("sharded.shards", S);
    budget.sink->Count("sharded.rebalance_moves", rebalance_moves);
    budget.sink->Count("sharded.pool_steals", static_cast<int64_t>(steals));
    obs::TraceSink& trace = budget.sink->trace();
    trace.Emit(trace.InternTrack("sharded/" + std::to_string(seed_)),
               trace.InternName("incumbent"), obs::EventKind::kPoint,
               /*i0=*/0, /*i1=*/plan.feasible ? 1 : 0, /*d0=*/plan.objective);
    core::FlushEvalOps(budget.sink);
  }
  if (incumbent != nullptr) {
    incumbent->Offer(plan.assignment.server_of_slot, plan.objective,
                     plan.feasible, name());
  }
  return plan;
}

}  // namespace kairos::solve
