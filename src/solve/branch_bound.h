// The exact portfolio member (registry name "exact"): depth-first
// branch-and-bound over the slot->server assignment encoding, pruned by
// core::BoundEngine's incremental committed cost + admissible completion
// bound (the "ILP Modulo Data" decomposition: an exact master search
// propagating against the LoadAccountant's load/capacity data).
//
// The search space is exactly the opt::direct encoding the heuristics
// optimize over — pins forced, free slots restricted to the fleet's
// placement targets — with symmetry breaking across identical servers:
// closed servers of the same machine class are interchangeable unless a pin
// or the problem's current assignment distinguishes them, so only the first
// closed undistinguished server per class is branched on.
//
// Deterministic: the node budget (SolveBudget::exact_max_nodes) is the
// primary limit; the optional wall-clock cap (exact_max_seconds) is off by
// default. On truncation the plan carries an upper bound on the optimality
// gap; an exhausted search sets proved_optimal (ConsolidationPlan's exact
// fields), which bench_solver_performance turns into solver.gap_to_exact.
#ifndef KAIROS_SOLVE_BRANCH_BOUND_H_
#define KAIROS_SOLVE_BRANCH_BOUND_H_

#include <cstdint>

#include "solve/solver.h"

namespace kairos::solve {

class BranchAndBoundSolver : public Solver {
 public:
  explicit BranchAndBoundSolver(uint64_t seed) : seed_(seed) {}

  std::string name() const override { return "exact"; }

  core::ConsolidationPlan Solve(const core::ConsolidationProblem& problem,
                                const SolveBudget& budget,
                                SharedIncumbent* incumbent) override;

 private:
  uint64_t seed_;
};

}  // namespace kairos::solve

#endif  // KAIROS_SOLVE_BRANCH_BOUND_H_
