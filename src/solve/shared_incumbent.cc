#include "solve/shared_incumbent.h"

namespace kairos::solve {

SharedIncumbent::SharedIncumbent(double target_objective)
    : target_objective_(target_objective) {}

bool SharedIncumbent::Offer(const std::vector<int>& assignment,
                            double objective, bool feasible,
                            const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  ++offers_;
  const bool improves =
      !best_.valid || (feasible && !best_.feasible) ||
      (feasible == best_.feasible && objective < best_.objective);
  if (improves) {
    best_.valid = true;
    best_.assignment = assignment;
    best_.objective = objective;
    best_.feasible = feasible;
    best_.source = source;
    ++improvements_;
  }
  if (feasible && objective <= target_objective_) {
    stop_.store(true, std::memory_order_relaxed);
  }
  return improves;
}

SharedIncumbent::Snapshot SharedIncumbent::Best() const {
  std::lock_guard<std::mutex> lock(mu_);
  return best_;
}

int SharedIncumbent::offers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offers_;
}

int SharedIncumbent::improvements() const {
  std::lock_guard<std::mutex> lock(mu_);
  return improvements_;
}

}  // namespace kairos::solve
