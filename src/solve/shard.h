// Sharded parallel consolidation: partition one ConsolidationProblem into
// per-machine-class fleet shards, solve the shards concurrently on a
// deterministic work-stealing pool (util::ThreadPool), stitch the local
// plans back into the global index space, and repair the seams with a
// bounded cross-shard rebalancing pass driven by batched MoveDelta
// evaluation.
//
// Determinism contract: the partition is a pure function of the problem
// and the options (no RNG), every shard solves with a seed derived only
// from (master_seed, shard_id), and the rebalance runs sequentially on the
// caller thread — so the final plan is byte-identical at any worker-thread
// count. Thread count changes wall-clock only.
#ifndef KAIROS_SOLVE_SHARD_H_
#define KAIROS_SOLVE_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.h"
#include "solve/solver.h"

namespace kairos::solve {

/// Knobs of the sharded solver and its partitioner.
struct ShardOptions {
  /// Shard count; <= 0 derives it from target_shard_slots (and clamps to
  /// the server cap, so every shard owns at least one server).
  int num_shards = 0;
  /// Auto mode aims for roughly this many slots per shard.
  int target_shard_slots = 512;
  /// Worker threads for the shard solves; <= 0 uses hardware concurrency.
  /// Any value yields the same plan.
  int threads = 0;
  /// Cross-shard rebalance: donor->receiver passes after stitching. Each
  /// round moves at most rebalance_max_moves slots; 0 disables the pass.
  int rebalance_rounds = 2;
  int rebalance_max_moves = 32;
  /// Candidate target servers per batched delta evaluation.
  int rebalance_max_targets = 64;
  /// Registry name of the per-shard solver; empty picks "engine" for small
  /// shards and "greedy-multi" for large ones. "sharded" itself is
  /// rejected (no recursive sharding).
  std::string local_solver;
};

/// One shard: a self-contained subproblem over a subset of the fleet's
/// server index space and a subset of the workloads, plus the maps back to
/// the global index spaces. `problem` holds copies of the routed workload
/// profiles but borrows the parent's shared disk model pointer — shards
/// must not outlive the problem they were partitioned from.
struct FleetShard {
  int id = 0;
  /// Deterministic per-shard solve seed (ShardSeed(master, id)).
  uint64_t seed = 1;
  core::ConsolidationProblem problem;
  std::vector<int> servers;    ///< Local server index -> global server.
  std::vector<int> workloads;  ///< Local workload index -> global workload.
  std::vector<int> slots;      ///< Local slot index -> global slot.
};

/// Per-shard solve seed: a splitmix64 finalizer over (master_seed,
/// shard_id), so neighbouring shard ids land in unrelated RNG streams and
/// the seed of shard k is stable under repartitioning as long as k exists.
uint64_t ShardSeed(uint64_t master_seed, int shard_id);

/// Splits a ConsolidationProblem into shard-local subproblems. Servers are
/// dealt as contiguous per-class ranges (every machine class is spread
/// across all shards proportionally); a Uniform() fleet is treated as one
/// virtual class regardless of how it is declared, so behaviourally
/// identical fleet representations partition identically. Workloads are
/// routed whole (all replicas together), anti-affinity groups atomically
/// (union-find), pinned groups to the shard owning the pin, migration-aware
/// groups to the shard owning their current server, and the rest
/// longest-processing-time-first onto the shard with the most normalized
/// headroom. The partition uses only behavioural values (capacities, cost
/// weights, demand peaks) — never pointer identity or declaration layout.
class ShardPartitioner {
 public:
  ShardPartitioner(const core::ConsolidationProblem& problem,
                   const ShardOptions& options);

  /// Shard count after clamping (>= 1).
  int ResolvedShardCount() const { return num_shards_; }

  /// Builds the shard subproblems; per-shard seeds derive from
  /// `master_seed`. Shards with no routed workloads come back with empty
  /// workload/slot maps (their servers stay idle).
  std::vector<FleetShard> Partition(uint64_t master_seed) const;

  /// Shard owning global server index `server` (-1 when out of range).
  int ShardOfServer(int server) const;

 private:
  /// One contiguous server range of one (possibly virtual) machine class.
  struct VClass {
    int klass = 0;  ///< Parent fleet class index.
    int begin = 0;  ///< First global server index of the range.
    int count = 0;
  };

  /// Servers of vclass `v` owned by shard `s` (even split, remainder to
  /// the lowest shard ids).
  int ShareOf(int v, int s) const;
  /// First global server index of shard `s`'s range within vclass `v`.
  int ShareBegin(int v, int s) const;

  const core::ConsolidationProblem& problem_;
  ShardOptions options_;
  int cap_ = 0;
  int num_shards_ = 1;
  std::vector<VClass> vclasses_;
};

/// The "sharded" registry solver: partition, parallel shard solves,
/// stitch, pin repair, bounded cross-shard rebalance (batched MoveDelta),
/// FinalizePlan. Plans are a pure function of (problem, budget, seed,
/// options) — never of the thread count.
class ShardedSolver : public Solver {
 public:
  explicit ShardedSolver(uint64_t seed, ShardOptions options = ShardOptions());

  std::string name() const override { return "sharded"; }

  core::ConsolidationPlan Solve(const core::ConsolidationProblem& problem,
                                const SolveBudget& budget,
                                SharedIncumbent* incumbent) override;

 private:
  uint64_t seed_;
  ShardOptions options_;
};

/// Shard-routed drift repair (the online controller's fast path): partition
/// `problem`, re-solve only the shard whose routing owns `workload`
/// (warm-started from the budget's seed when it carries over), and keep
/// every other slot at problem.current_assignment. Returns true — filling
/// *plan — when the stitched plan scores no worse than the incumbent
/// placement and is no less feasible; false when the problem carries no
/// in-range incumbent, the workload index is invalid, or the local
/// re-solve did not pay off (callers then fall back to a full re-solve).
/// Deterministic: a pure function of (problem, budget, options, seed,
/// workload).
bool ShardRepair(const core::ConsolidationProblem& problem,
                 const SolveBudget& budget, const ShardOptions& options,
                 uint64_t master_seed, int workload,
                 core::ConsolidationPlan* plan);

}  // namespace kairos::solve

#endif  // KAIROS_SOLVE_SHARD_H_
