#include "solve/tabu.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "util/rng.h"

namespace kairos::solve {

core::ConsolidationPlan TabuSolver::Solve(
    const core::ConsolidationProblem& problem, const SolveBudget& budget,
    SharedIncumbent* incumbent) {
  const int cap = HardCap(problem);
  util::Rng rng(seed_);

  const core::Assignment seed_assignment = StartAssignment(problem, cap, budget);

  core::Evaluator ev(problem, cap);
  ev.Load(seed_assignment.server_of_slot);
  const int slots = ev.num_slots();

  std::vector<int> best = ev.assignment();
  double best_cost = ev.current_cost();
  bool best_feasible = ev.IsFeasible();
  if (incumbent) {
    incumbent->Offer(best, best_cost, best_feasible, name());
  }

  // Incumbent-curve trace ids, interned once so the per-improvement cost is
  // one branch plus a ring write (never an RNG touch).
  obs::Sink* const sink = budget.sink;
  uint32_t obs_track = 0, obs_incumbent = 0;
  obs::Counter* improvements = nullptr;
  if (sink != nullptr) {
    obs_track =
        sink->trace().InternTrack(name() + "/" + std::to_string(seed_));
    obs_incumbent = sink->trace().InternName("incumbent");
    improvements = sink->metrics().counter(name() + ".improvements");
    // Iteration-0 point: every attached run exports a curve with >= 1 point.
    sink->trace().Emit(obs_track, obs_incumbent, obs::EventKind::kPoint,
                       /*i0=*/0, /*i1=*/best_feasible ? 1 : 0,
                       /*d0=*/best_cost);
  }

  if (slots < 1 || cap < 2) {
    return core::FinalizePlan(problem, best, cap);
  }

  // tabu_until[slot * cap + server] > iteration forbids moving `slot` back
  // onto `server` (set when the slot leaves it).
  std::vector<int> tabu_until(static_cast<size_t>(slots) * cap, -1);
  int iteration = 0;
  const auto record_if_best = [&] {
    const bool feasible = ev.IsFeasible();
    if ((feasible && !best_feasible) ||
        (feasible == best_feasible && ev.current_cost() < best_cost)) {
      best = ev.assignment();
      best_cost = ev.current_cost();
      best_feasible = feasible;
      if (sink != nullptr) {
        sink->trace().Emit(obs_track, obs_incumbent, obs::EventKind::kPoint,
                           /*i0=*/iteration, /*i1=*/best_feasible ? 1 : 0,
                           /*d0=*/best_cost);
        improvements->Add(1);
      }
      if (incumbent) incumbent->Offer(best, best_cost, best_feasible, name());
    }
  };

  // Cross-class moves only exist on non-uniform fleets; the gate also keeps
  // the RNG stream (and thus every result) bit-identical on uniform ones.
  const bool fleet_moves = !problem.fleet.Uniform();

  // Hard drain mask: the best-improvement scan only considers placable
  // servers as relocation targets, so drained classes shrink the
  // neighborhood (slots*targets instead of slots*cap move evaluations per
  // scan) instead of being explored and penalized. Identical to the classic
  // [0, cap) scan when nothing is drained.
  const sim::FleetSpec::PlacementMask mask = problem.fleet.PlacementTargets(cap);

  // budget.max_iterations counts move evaluations (one MoveDelta each), so
  // the tabu budget is comparable to SA's regardless of problem size.
  long evals = 0;
  const long max_evals = budget.max_iterations;
  int since_improvement = 0;

  bool out_of_budget = false;
  while (evals < max_evals && !out_of_budget) {
    ++iteration;

    // Best-improvement scan over all (unpinned slot, server) relocations.
    // Budget and the shared stop flag are checked inside the scan too: one
    // scan costs ~slots*cap evaluations, which can dwarf the whole budget
    // on large problems.
    double best_delta = std::numeric_limits<double>::infinity();
    int best_slot = -1, best_to = -1;
    for (int slot = 0; slot < slots && !out_of_budget; ++slot) {
      if (evals >= max_evals ||
          (incumbent && slot % options_.stop_poll_interval == 0 &&
           incumbent->ShouldStop())) {
        out_of_budget = true;
        break;
      }
      if (ev.PinOfSlot(slot) >= 0) continue;
      const int from = ev.assignment()[slot];
      for (int to : mask.targets) {
        if (to == from) continue;
        const double d = ev.MoveDelta(slot, to);
        ++evals;
        const bool is_tabu = tabu_until[slot * cap + to] > iteration;
        // Aspiration: a tabu move is allowed when it beats the best-ever.
        if (is_tabu && ev.current_cost() + d >= best_cost) continue;
        if (d < best_delta) {
          best_delta = d;
          best_slot = slot;
          best_to = to;
        }
      }
    }
    if (best_slot < 0) break;  // everything tabu and nothing aspirates

    const int from = ev.assignment()[best_slot];
    ev.ApplyMove(best_slot, best_to);
    const int tenure = options_.tenure +
                       static_cast<int>(rng.UniformInt(0, options_.tenure_jitter));
    tabu_until[best_slot * cap + from] = iteration + tenure;

    if (best_delta < -1e-12) {
      record_if_best();
      since_improvement = 0;
    } else {
      ++since_improvement;
      // Periodic swap kick to leave the current basin.
      if (options_.kick_interval > 0 &&
          since_improvement % options_.kick_interval == 0) {
        const int a = static_cast<int>(rng.UniformInt(0, slots - 1));
        const int b = static_cast<int>(rng.UniformInt(0, slots - 1));
        if (a != b && ev.PinOfSlot(a) < 0 && ev.PinOfSlot(b) < 0 &&
            ev.assignment()[a] != ev.assignment()[b]) {
          const int sa = ev.assignment()[a];
          const int sb = ev.assignment()[b];
          if (!mask.masked || (!problem.fleet.DrainedServer(sa) &&
                               !problem.fleet.DrainedServer(sb))) {
            ev.ApplyMove(a, sb);
            ev.ApplyMove(b, sa);
            evals += 2;
            record_if_best();
          }
        }
      }
      // Heterogeneous fleets: periodic re-class kick — one server's whole
      // unpinned payload onto an empty server of a different class, the
      // package move that crosses the "open a bigger box" cost barrier.
      if (fleet_moves && options_.reclass_interval > 0 &&
          since_improvement % options_.reclass_interval == 0) {
        const int slot = static_cast<int>(rng.UniformInt(0, slots - 1));
        const int from = ev.assignment()[slot];
        const std::vector<int> targets = EmptyCrossClassServers(problem, ev, from);
        const std::vector<int> movers = MovableSlotsOn(ev, from);
        if (!targets.empty() && !movers.empty()) {
          const int to = targets[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(targets.size()) - 1))];
          for (int s : movers) ev.ApplyMove(s, to);
          evals += static_cast<long>(movers.size());
          record_if_best();
        }
      }
    }
  }

  return core::FinalizePlan(problem, best, cap);
}

}  // namespace kairos::solve
