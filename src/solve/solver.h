// The pluggable Placer interface of the solver portfolio (ROADMAP: race
// multiple strategies instead of betting on one algorithm, in the spirit of
// solver-portfolio architectures). A Solver turns a ConsolidationProblem
// into a ConsolidationPlan within a budget, publishing incumbents to a
// SharedIncumbent so sibling solvers can early-stop.
//
// Implementations must be deterministic: the returned plan is a pure
// function of (problem, budget, seed). The incumbent is write/poll-only
// (see shared_incumbent.h), so thread scheduling never changes results.
#ifndef KAIROS_SOLVE_SOLVER_H_
#define KAIROS_SOLVE_SOLVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/problem.h"
#include "solve/shared_incumbent.h"

namespace kairos::solve {

/// Work limits for one Solve() call. Iteration/evaluation budgets (not
/// wall-clock) so results are machine-independent and reproducible.
struct SolveBudget {
  /// Move budget for the metaheuristics (SA, tabu).
  int max_iterations = 30000;
  /// DIRECT evaluation budget for the engine adapter's final solve.
  int direct_evaluations = 4000;
  /// DIRECT evaluation budget per engine feasibility probe.
  int probe_direct_evaluations = 800;
  /// Local-search sweep cap for the engine adapter.
  int local_search_max_sweeps = 60;
  /// Node budget for the "exact" branch-and-bound solver (one node per
  /// attempted placement). The deterministic primary limit: large
  /// instances return the warm-start incumbent plus a gap bound instead of
  /// running away.
  int64_t exact_max_nodes = 50000;
  /// Optional wall-clock cap for "exact" (seconds; 0 disables). Off by
  /// default so results stay machine-independent.
  double exact_max_seconds = 0.0;
  /// How the engine adapter dimensions heterogeneous fleets, and whether
  /// the metaheuristics may warm-start from the cost-based dimensioner's
  /// dense-prefix seed. kCountPrefix forces the legacy count search
  /// everywhere; the default cost-budget mode only engages on non-uniform
  /// fleets (uniform fleets stay bit-identical either way).
  core::DimensioningMode dimensioning = core::DimensioningMode::kCostBudget;
  /// Warm-start seed (one server index per slot, all within [0, HardCap)).
  /// When valid, the metaheuristics and the "polish" solver start from it
  /// instead of the greedy packing whenever it scores no worse; empty means
  /// cold start. The online controller seeds this with its incumbent plan.
  std::vector<int> seed_assignment;
  /// Observability sink shared by every portfolio member, nullable. Solvers
  /// record incumbent-improvement curves ("incumbent" events on track
  /// "<name>/<seed>") at iteration granularity; a null sink costs one
  /// predictable branch per improvement and an attached one never touches
  /// any RNG stream (plans stay bit-identical with the observer on or off).
  obs::Sink* sink = nullptr;
};

/// Upper bound on server indices a solver may use (the problem's
/// max_servers, or one server per slot when unset, further capped by a
/// bounded fleet).
int HardCap(const core::ConsolidationProblem& problem);

/// Unpinned slots currently placed on `server` in `ev`'s loaded assignment
/// (the move set of the metaheuristics' cross-class "re-class" neighborhood).
std::vector<int> MovableSlotsOn(const core::Evaluator& ev, int server);

/// Empty, non-drained servers of a *different* machine class than `from`:
/// the candidate targets of a re-class move (migrating one server's whole
/// payload onto another hardware generation).
std::vector<int> EmptyCrossClassServers(const core::ConsolidationProblem& problem,
                                        const core::Evaluator& ev, int from);

/// True when `seed` can warm-start the problem at `cap` servers: one entry
/// per slot, every entry in [0, cap).
bool ValidSeedAssignment(const core::ConsolidationProblem& problem, int cap,
                         const std::vector<int>& seed);

/// The start assignment for seeded solvers: the budget's warm seed when
/// valid and no costlier than the multi-resource greedy packing (ties keep
/// the warm seed, so an incumbent-quality start is never thrown away),
/// otherwise the greedy packing.
core::Assignment StartAssignment(const core::ConsolidationProblem& problem,
                                 int cap, const SolveBudget& budget);

/// A portfolio member. Implementations should poll
/// `incumbent->ShouldStop()` periodically and return their best-so-far when
/// it fires, and publish improving plans via `incumbent->Offer()`.
/// `incumbent` may be null for standalone use.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry key / report label.
  virtual std::string name() const = 0;

  virtual core::ConsolidationPlan Solve(const core::ConsolidationProblem& problem,
                                        const SolveBudget& budget,
                                        SharedIncumbent* incumbent) = 0;
};

/// Builds a solver from a deterministic seed.
using SolverFactory = std::function<std::unique_ptr<Solver>(uint64_t seed)>;

/// String-keyed solver factory registry. Global() comes pre-populated with
/// the built-ins: "greedy", "greedy-multi", "engine", "anneal", "tabu",
/// "polish", "sharded", "exact".
/// Thread-safe: registration and lookup may race with in-flight portfolio
/// runs.
class SolverRegistry {
 public:
  /// The process-wide registry (built-ins registered on first use).
  static SolverRegistry& Global();

  /// Registers a factory under `name`; returns false (and leaves the
  /// existing entry) when the name is taken.
  bool Register(const std::string& name, SolverFactory factory);

  /// Instantiates `name` with `seed`; null when unknown.
  std::unique_ptr<Solver> Create(const std::string& name, uint64_t seed) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  bool ContainsLocked(const std::string& name) const;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, SolverFactory>> entries_;
};

/// Sorted names of every solver in SolverRegistry::Global() — use this to
/// enumerate the portfolio instead of hard-coding built-in names, so newly
/// registered strategies are picked up automatically.
std::vector<std::string> RegisteredSolverNames();

}  // namespace kairos::solve

#endif  // KAIROS_SOLVE_SOLVER_H_
