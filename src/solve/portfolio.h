// PortfolioRunner: races N registered solvers concurrently against one
// SharedIncumbent. Each solver is deterministic given its seed and never
// reads the incumbent back into its trajectory, so without a target
// objective the winning plan is a pure function of (problem, specs,
// budget) — thread count and scheduling only change wall-clock, not
// results. With a target objective set the race early-stops as soon as any
// solver reaches it; the winner is then guaranteed to meet the target, but
// its identity may vary between runs, because solvers interrupted by the
// stop flag return their (timing-dependent) best-so-far.
#ifndef KAIROS_SOLVE_PORTFOLIO_H_
#define KAIROS_SOLVE_PORTFOLIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "solve/solver.h"

namespace kairos::solve {

/// One portfolio member: a registry key plus its deterministic seed.
struct PortfolioSolverSpec {
  std::string solver;
  uint64_t seed = 1;
};

struct PortfolioOptions {
  /// Worker threads; 0 = one per solver (capped at hardware concurrency).
  int threads = 0;
  /// Per-solver work limits.
  SolveBudget budget;
  /// Early-stop: abort all solvers once a feasible plan at or below this
  /// objective is found. Default: run every solver to completion.
  double target_objective = SharedIncumbent::Unbounded();
};

/// Per-solver outcome, in spec order.
struct PortfolioMemberResult {
  std::string solver;
  uint64_t seed = 0;
  core::ConsolidationPlan plan;
  double solve_seconds = 0;
};

struct PortfolioResult {
  /// The winning plan (deterministic tie-break: feasible first, then lower
  /// objective, then fewer servers, then lower spec index).
  core::ConsolidationPlan best;
  int winner_index = -1;       ///< Index into `members` / the spec list.
  std::string winner;          ///< Solver name of the winner.
  bool early_stopped = false;  ///< Target objective reached before all done.
  int incumbent_improvements = 0;
  double wall_seconds = 0;
  std::vector<PortfolioMemberResult> members;
};

/// Runs solver portfolios.
class PortfolioRunner {
 public:
  explicit PortfolioRunner(PortfolioOptions options = PortfolioOptions())
      : options_(options) {}

  /// Races `specs` (looked up in SolverRegistry::Global()) on the problem.
  /// Unknown solver names are reported with an infeasible empty plan.
  PortfolioResult Run(const core::ConsolidationProblem& problem,
                      const std::vector<PortfolioSolverSpec>& specs) const;

  /// The default portfolio: {greedy, engine, anneal, tabu}, seeds derived
  /// from `seed`.
  static std::vector<PortfolioSolverSpec> DefaultSpecs(uint64_t seed = 1);

 private:
  PortfolioOptions options_;
};

}  // namespace kairos::solve

#endif  // KAIROS_SOLVE_PORTFOLIO_H_
