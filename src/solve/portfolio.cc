#include "solve/portfolio.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "core/evaluator.h"

namespace kairos::solve {

namespace {

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since)
      .count();
}

/// True when `a` should win over `b` (the deterministic tie-break).
bool Beats(const core::ConsolidationPlan& a, const core::ConsolidationPlan& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (a.objective != b.objective) return a.objective < b.objective;
  return a.servers_used < b.servers_used;
}

}  // namespace

std::vector<PortfolioSolverSpec> PortfolioRunner::DefaultSpecs(uint64_t seed) {
  return {{"greedy", seed},
          {"engine", seed},
          {"anneal", seed * 0x9E3779B97F4A7C15ULL + 1},
          {"tabu", seed * 0xBF58476D1CE4E5B9ULL + 2}};
}

PortfolioResult PortfolioRunner::Run(
    const core::ConsolidationProblem& problem,
    const std::vector<PortfolioSolverSpec>& specs) const {
  const auto start = std::chrono::steady_clock::now();
  PortfolioResult result;
  result.members.resize(specs.size());
  if (specs.empty()) return result;

  SharedIncumbent incumbent(options_.target_objective);

  int threads = options_.threads;
  if (threads <= 0) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::max(1, hw > 0 ? std::min<int>(hw, specs.size())
                                 : static_cast<int>(specs.size()));
  }
  threads = std::min<int>(threads, specs.size());

  // Work queue over solver indices: T workers pop the next unstarted
  // solver. Which worker runs which solver is scheduling-dependent; the
  // result is not, because every solver is deterministic and isolated.
  // Each member gets its own trace track ("portfolio/<i>-<solver>"), so
  // exactly one thread ever writes it and the merged trace stays
  // deterministic regardless of scheduling.
  obs::Sink* const sink = options_.budget.sink;

  // Pre-intern every member's track plus the shared event name and cache
  // the counter handle once, so workers never take the intern/registry
  // locks or rebuild track-name strings per member.
  std::vector<uint32_t> member_tracks;
  uint32_t solver_name_id = 0;
  obs::Counter* members_run = nullptr;
  if (sink != nullptr) {
    member_tracks.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      member_tracks.push_back(sink->trace().InternTrack(
          "portfolio/" + std::to_string(i) + "-" + specs[i].solver));
    }
    solver_name_id = sink->trace().InternName("solver");
    members_run = sink->metrics().counter("portfolio.members_run");
  }

  std::atomic<int> next{0};
  const auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= static_cast<int>(specs.size())) return;
      PortfolioMemberResult& member = result.members[i];
      member.solver = specs[i].solver;
      member.seed = specs[i].seed;
      const auto solver_start = std::chrono::steady_clock::now();
      std::unique_ptr<Solver> solver =
          SolverRegistry::Global().Create(specs[i].solver, specs[i].seed);
      if (solver) {
        obs::ScopedSpan member_span(sink, member_tracks.empty() ? 0
                                                                : member_tracks[i],
                                    solver_name_id, /*i0=*/i);
        core::ResetEvalOps();
        member.plan = solver->Solve(problem, options_.budget, &incumbent);
        core::FlushEvalOps(sink);
      }
      member.solve_seconds = Seconds(solver_start);
      if (members_run != nullptr) members_run->Add(1);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // Deterministic winner selection over the complete member results (not
  // over incumbent publish order, which is timing-dependent).
  for (size_t i = 0; i < result.members.size(); ++i) {
    const core::ConsolidationPlan& plan = result.members[i].plan;
    if (plan.assignment.server_of_slot.empty()) continue;  // unknown solver
    if (result.winner_index < 0 || Beats(plan, result.best)) {
      result.best = plan;
      result.winner_index = static_cast<int>(i);
      result.winner = result.members[i].solver;
    }
  }

  result.early_stopped = incumbent.ShouldStop();
  result.incumbent_improvements = incumbent.improvements();
  result.wall_seconds = Seconds(start);
  if (sink != nullptr) {
    sink->Count("portfolio.runs");
    if (result.early_stopped) sink->Count("portfolio.early_stops");
    sink->Count("portfolio.incumbent_improvements",
                result.incumbent_improvements);
  }
  return result;
}

}  // namespace kairos::solve
