#include "solve/adapters.h"

#include <utility>

#include "core/greedy.h"

namespace kairos::solve {

namespace {

/// Evaluates + reports `assignment`, offering it to the incumbent. The
/// one-shot greedy solvers emit a single-point incumbent curve (iteration 0)
/// when a sink rides along, so every portfolio member exports a curve.
core::ConsolidationPlan Finish(const core::ConsolidationProblem& problem,
                               const std::vector<int>& assignment, int k,
                               const std::string& source, uint64_t seed,
                               const SolveBudget& budget,
                               SharedIncumbent* incumbent) {
  core::ConsolidationPlan plan = core::FinalizePlan(problem, assignment, k);
  if (budget.sink != nullptr) {
    obs::TraceSink& trace = budget.sink->trace();
    trace.Emit(trace.InternTrack(source + "/" + std::to_string(seed)),
               trace.InternName("incumbent"), obs::EventKind::kPoint,
               /*i0=*/0, /*i1=*/plan.feasible ? 1 : 0, /*d0=*/plan.objective);
  }
  if (incumbent) {
    incumbent->Offer(plan.assignment.server_of_slot, plan.objective,
                     plan.feasible, source);
  }
  return plan;
}

}  // namespace

core::ConsolidationPlan GreedyBaselineSolver::Solve(
    const core::ConsolidationProblem& problem, const SolveBudget& budget,
    SharedIncumbent* incumbent) {
  const int cap = HardCap(problem);
  const core::GreedyResult g = core::GreedyBaseline(problem, cap);
  if (g.feasible) {
    return Finish(problem, g.assignment.server_of_slot, cap, name(),
                  /*seed=*/0, budget, incumbent);
  }
  // No single-resource packing survived the full constraint check: report
  // the multi-resource completion instead of an empty plan (marked
  // infeasible by FinalizePlan when it is).
  bool clean = false;
  const core::Assignment fallback =
      core::GreedyMultiResource(problem, cap, &clean);
  return Finish(problem, fallback.server_of_slot, cap, name(),
                /*seed=*/0, budget, incumbent);
}

core::ConsolidationPlan GreedyMultiSolver::Solve(
    const core::ConsolidationProblem& problem, const SolveBudget& budget,
    SharedIncumbent* incumbent) {
  const int cap = HardCap(problem);
  bool clean = false;
  const core::Assignment a = core::GreedyMultiResource(problem, cap, &clean);
  return Finish(problem, a.server_of_slot, cap, name(),
                /*seed=*/0, budget, incumbent);
}

core::ConsolidationPlan EngineSolver::Solve(
    const core::ConsolidationProblem& problem, const SolveBudget& budget,
    SharedIncumbent* incumbent) {
  core::EngineOptions options;
  options.seed = seed_;
  options.direct_evaluations = budget.direct_evaluations;
  options.probe_direct_evaluations = budget.probe_direct_evaluations;
  options.local_search_max_sweeps = budget.local_search_max_sweeps;
  options.dimensioning = budget.dimensioning;
  options.sink = budget.sink;
  if (incumbent) {
    const std::string source = name();
    options.on_incumbent = [incumbent, source](const core::Assignment& a,
                                               double objective, bool feasible) {
      incumbent->Offer(a.server_of_slot, objective, feasible, source);
    };
    options.should_stop = [incumbent] { return incumbent->ShouldStop(); };
  }
  return core::ConsolidationEngine(problem, options).Solve();
}

core::ConsolidationPlan WarmStartPolishSolver::Solve(
    const core::ConsolidationProblem& problem, const SolveBudget& budget,
    SharedIncumbent* incumbent) {
  const int cap = HardCap(problem);
  const core::Assignment start = StartAssignment(problem, cap, budget);

  core::EngineOptions options;
  options.seed = seed_;
  options.direct_evaluations = budget.direct_evaluations;
  options.local_search_max_sweeps = budget.local_search_max_sweeps;
  options.sink = budget.sink;
  options.obs_label = "polish";
  if (incumbent) {
    const std::string source = name();
    options.on_incumbent = [incumbent, source](const core::Assignment& a,
                                               double objective, bool feasible) {
      incumbent->Offer(a.server_of_slot, objective, feasible, source);
    };
    options.should_stop = [incumbent] { return incumbent->ShouldStop(); };
  }
  return core::ConsolidationEngine(problem, options).PolishPlan(start, cap);
}

}  // namespace kairos::solve
