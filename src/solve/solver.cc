#include "solve/solver.h"

#include <algorithm>

#include "solve/adapters.h"
#include "solve/annealing.h"
#include "solve/tabu.h"

namespace kairos::solve {

int HardCap(const core::ConsolidationProblem& problem) {
  return problem.max_servers > 0 ? problem.max_servers : problem.TotalSlots();
}

SolverRegistry& SolverRegistry::Global() {
  // Built-ins are registered here, not via static self-registration objects:
  // those get dead-stripped out of static libraries.
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    r->Register("greedy", [](uint64_t) {
      return std::make_unique<GreedyBaselineSolver>();
    });
    r->Register("greedy-multi", [](uint64_t) {
      return std::make_unique<GreedyMultiSolver>();
    });
    r->Register("engine", [](uint64_t seed) {
      return std::make_unique<EngineSolver>(seed);
    });
    r->Register("anneal", [](uint64_t seed) {
      return std::make_unique<AnnealingSolver>(seed);
    });
    r->Register("tabu", [](uint64_t seed) {
      return std::make_unique<TabuSolver>(seed);
    });
    return r;
  }();
  return *registry;
}

bool SolverRegistry::Register(const std::string& name, SolverFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ContainsLocked(name)) return false;
  entries_.emplace_back(name, std::move(factory));
  return true;
}

std::unique_ptr<Solver> SolverRegistry::Create(const std::string& name,
                                               uint64_t seed) const {
  SolverFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, f] : entries_) {
      if (key == name) {
        factory = f;
        break;
      }
    }
  }
  return factory ? factory(seed) : nullptr;
}

bool SolverRegistry::ContainsLocked(const std::string& name) const {
  for (const auto& [key, factory] : entries_) {
    if (key == name) return true;
  }
  return false;
}

bool SolverRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ContainsLocked(name);
}

std::vector<std::string> SolverRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, factory] : entries_) names.push_back(key);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace kairos::solve
