#include "solve/solver.h"

#include <algorithm>

#include "core/dimensioner.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "solve/adapters.h"
#include "solve/annealing.h"
#include "solve/branch_bound.h"
#include "solve/shard.h"
#include "solve/tabu.h"

namespace kairos::solve {

int HardCap(const core::ConsolidationProblem& problem) {
  return problem.ServerCap();
}

std::vector<int> MovableSlotsOn(const core::Evaluator& ev, int server) {
  std::vector<int> slots;
  for (int s = 0; s < ev.num_slots(); ++s) {
    if (ev.assignment()[s] == server && ev.PinOfSlot(s) < 0) slots.push_back(s);
  }
  return slots;
}

std::vector<int> EmptyCrossClassServers(const core::ConsolidationProblem& problem,
                                        const core::Evaluator& ev, int from) {
  const int cap = ev.max_servers();
  std::vector<char> used(cap, 0);
  for (int s = 0; s < ev.num_slots(); ++s) used[ev.assignment()[s]] = 1;
  const int from_class = problem.fleet.ClassOf(from);
  std::vector<int> out;
  for (int j = 0; j < cap; ++j) {
    if (used[j] || j == from) continue;
    const int klass = problem.fleet.ClassOf(j);
    if (klass == from_class) continue;
    if (problem.fleet.classes[klass].drained) continue;
    out.push_back(j);
  }
  return out;
}

bool ValidSeedAssignment(const core::ConsolidationProblem& problem, int cap,
                         const std::vector<int>& seed) {
  if (static_cast<int>(seed.size()) != problem.TotalSlots()) return false;
  for (int s : seed) {
    if (s < 0 || s >= cap) return false;
  }
  return true;
}

core::Assignment StartAssignment(const core::ConsolidationProblem& problem,
                                 int cap, const SolveBudget& budget) {
  bool clean = false;
  core::Assignment start = core::GreedyMultiResource(problem, cap, &clean);
  const bool dim_seed =
      budget.dimensioning == core::DimensioningMode::kCostBudget &&
      !problem.fleet.Uniform();
  const bool warm = ValidSeedAssignment(problem, cap, budget.seed_assignment);
  if (!dim_seed && !warm) return start;
  core::Evaluator ev(problem, cap);
  double start_cost = ev.Evaluate(start.server_of_slot);
  if (dim_seed) {
    // Cost-based dimensioning's cheap seed: the coverage-prefix packing
    // over the dense purchase order. Warm-starts the metaheuristics toward
    // cheap-dense class mixes they otherwise only reach via cross-class
    // moves. Uniform fleets skip it, keeping the classic stream untouched.
    const core::Assignment dense_seed =
        core::FleetDimensioner::GreedySeed(problem, cap);
    const double dense_cost = ev.Evaluate(dense_seed.server_of_slot);
    if (dense_cost < start_cost) {
      start = dense_seed;
      start_cost = dense_cost;
    }
  }
  if (warm && ev.Evaluate(budget.seed_assignment) <= start_cost) {
    start.server_of_slot = budget.seed_assignment;
  }
  return start;
}

SolverRegistry& SolverRegistry::Global() {
  // Built-ins are registered here, not via static self-registration objects:
  // those get dead-stripped out of static libraries.
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    r->Register("greedy", [](uint64_t) {
      return std::make_unique<GreedyBaselineSolver>();
    });
    r->Register("greedy-multi", [](uint64_t) {
      return std::make_unique<GreedyMultiSolver>();
    });
    r->Register("engine", [](uint64_t seed) {
      return std::make_unique<EngineSolver>(seed);
    });
    r->Register("anneal", [](uint64_t seed) {
      return std::make_unique<AnnealingSolver>(seed);
    });
    r->Register("tabu", [](uint64_t seed) {
      return std::make_unique<TabuSolver>(seed);
    });
    r->Register("polish", [](uint64_t seed) {
      return std::make_unique<WarmStartPolishSolver>(seed);
    });
    r->Register("sharded", [](uint64_t seed) {
      return std::make_unique<ShardedSolver>(seed);
    });
    r->Register("exact", [](uint64_t seed) {
      return std::make_unique<BranchAndBoundSolver>(seed);
    });
    return r;
  }();
  return *registry;
}

bool SolverRegistry::Register(const std::string& name, SolverFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ContainsLocked(name)) return false;
  entries_.emplace_back(name, std::move(factory));
  return true;
}

std::unique_ptr<Solver> SolverRegistry::Create(const std::string& name,
                                               uint64_t seed) const {
  SolverFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, f] : entries_) {
      if (key == name) {
        factory = f;
        break;
      }
    }
  }
  return factory ? factory(seed) : nullptr;
}

bool SolverRegistry::ContainsLocked(const std::string& name) const {
  for (const auto& [key, factory] : entries_) {
    if (key == name) return true;
  }
  return false;
}

bool SolverRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ContainsLocked(name);
}

std::vector<std::string> SolverRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, factory] : entries_) names.push_back(key);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> RegisteredSolverNames() {
  return SolverRegistry::Global().Names();
}

}  // namespace kairos::solve
