// WorkloadProfile: the resource time series describing one workload, as
// produced by the resource monitor (or imported from historical rrdtool
// statistics). This is the input record of the consolidation engine.
#ifndef KAIROS_MONITOR_PROFILE_H_
#define KAIROS_MONITOR_PROFILE_H_

#include <cstdint>
#include <string>

#include "util/timeseries.h"

namespace kairos::monitor {

/// Per-workload resource utilization over time, normalized to standard
/// cores and bytes.
struct WorkloadProfile {
  std::string name;

  /// CPU used, in standard cores, including the per-instance OS+DBMS
  /// overhead of the dedicated source server (the combined-load estimator
  /// removes the duplicated overhead when co-locating).
  util::TimeSeries cpu_cores;

  /// RAM the workload actually needs (buffer pool gauging result, or
  /// scaled-down historical allocation when gauging was not possible).
  util::TimeSeries ram_bytes;

  /// Row-modification rate (updates+inserts+deletes), the disk model's
  /// load input.
  util::TimeSeries update_rows_per_sec;

  /// Working set size, the disk model's size input.
  double working_set_bytes = 0;

  /// --- Raw OS-reported statistics, kept for the naive-baseline
  /// comparisons of Figure 6 ---
  /// Allocated (RSS) memory as the OS reports it (overestimate).
  util::TimeSeries os_ram_bytes;
  /// Physical write throughput as iostat reports it on the dedicated
  /// server, including idle-time flushing (overestimate of requirement).
  util::TimeSeries os_write_bytes_per_sec;

  /// Number of replicas to place (each on a distinct server).
  int replicas = 1;
  /// If >= 0, this workload must be placed on that server index.
  int pinned_server = -1;

  /// Peak values (conveniences over the series).
  double PeakCpuCores() const { return cpu_cores.Max(); }
  double PeakRamBytes() const { return ram_bytes.Max(); }
  double PeakUpdateRate() const { return update_rows_per_sec.Max(); }
};

/// Summary statistics of one profile — the compact fingerprint the online
/// drift detector compares between the profile a plan was solved against
/// and the live rolling profile.
struct ProfileStats {
  double mean_cpu_cores = 0;
  double p95_cpu_cores = 0;
  double peak_cpu_cores = 0;
  double mean_ram_bytes = 0;
  double p95_ram_bytes = 0;
  double peak_ram_bytes = 0;
  double p95_update_rows_per_sec = 0;
  double working_set_bytes = 0;
};

/// Computes the summary fingerprint of a profile.
ProfileStats Summarize(const WorkloadProfile& profile);

}  // namespace kairos::monitor

#endif  // KAIROS_MONITOR_PROFILE_H_
