#include "monitor/gauge.h"

#include <algorithm>
#include <deque>

#include "db/dbms.h"

namespace kairos::monitor {

BufferPoolGauge::BufferPoolGauge(const GaugeConfig& config) : config_(config) {}

GaugeResult BufferPoolGauge::Run(workload::Driver* driver) {
  GaugeResult result;
  db::Dbms& dbms = driver->server()->dbms();
  const uint64_t page_bytes = dbms.config().page_bytes;
  const uint64_t pool_bytes = dbms.config().buffer_pool_bytes;
  result.accessible_bytes = pool_bytes + dbms.config().os_file_cache_bytes;

  // Every database that exists before the probe database is created is
  // "user" load whose physical reads we watch (copy taken now, before
  // CreateDatabase below).
  std::vector<db::Database*> user_dbs = dbms.databases();

  db::Database* gauge_db = dbms.CreateDatabase("__gauge__");
  const uint64_t max_probe_pages =
      static_cast<uint64_t>(config_.max_steal_fraction *
                            static_cast<double>(result.accessible_bytes)) /
      page_bytes;
  db::Region* probe = gauge_db->CreateTable("probe", 0, max_probe_pages + 1);

  auto take_user_reads = [&user_dbs]() {
    int64_t reads = 0;
    for (auto* d : user_dbs) reads += d->TakeWindow().physical_reads;
    return reads;
  };

  // Baseline physical-read rate before stealing anything.
  take_user_reads();  // clear
  driver->Run(config_.read_window_seconds, config_.read_window_seconds);
  const double baseline = static_cast<double>(take_user_reads()) /
                          config_.read_window_seconds;

  // Sliding window of recent (reads, seconds) chunks.
  std::deque<std::pair<double, double>> window;
  double window_reads = 0, window_seconds = 0;

  uint64_t step = config_.initial_step_pages;
  uint64_t stolen_pages = 0;
  uint64_t last_step = 0;
  double elapsed = 0;

  while (stolen_pages < max_probe_pages) {
    // Grow the probe (appendRows in Figure 3).
    const uint64_t grow = std::min(step, max_probe_pages - stolen_pages);
    dbms.AppendPages(gauge_db, probe, grow, /*cpu_us_per_page=*/2.0,
                     config_.insert_log_bytes_per_page);
    stolen_pages += grow;
    last_step = grow;

    // Scan the probe to pin it in RAM (SELECT COUNT(*) in Figure 3), then
    // let the user workload run for READ_WAIT seconds.
    dbms.TouchSequential(gauge_db, *probe, 0, probe->pages, /*dirty=*/false,
                         config_.scan_cpu_us_per_page);
    driver->Run(config_.read_wait_seconds, config_.read_wait_seconds);
    elapsed += config_.read_wait_seconds;

    const double chunk_reads = static_cast<double>(take_user_reads());
    window.emplace_back(chunk_reads, config_.read_wait_seconds);
    window_reads += chunk_reads;
    window_seconds += config_.read_wait_seconds;
    while (window_seconds > config_.read_window_seconds && window.size() > 1) {
      window_reads -= window.front().first;
      window_seconds -= window.front().second;
      window.pop_front();
    }
    const double rate = window_reads / window_seconds;

    GaugePoint point;
    point.stolen_fraction = static_cast<double>(stolen_pages * page_bytes) /
                            static_cast<double>(pool_bytes);
    point.reads_per_sec = rate;
    point.probe_growth_bytes_per_sec =
        static_cast<double>(grow * page_bytes) / config_.read_wait_seconds;
    result.curve.push_back(point);

    if (rate > baseline + config_.stop_threshold_pages_per_sec) {
      // Knee found: useful pages are being displaced. Back off the last
      // step when reporting how much was safely stolen.
      stolen_pages -= last_step;
      break;
    }
    if (rate > baseline + config_.slow_threshold_pages_per_sec) {
      step = std::max<uint64_t>(
          config_.min_step_pages,
          static_cast<uint64_t>(static_cast<double>(step) * config_.backoff_factor));
    } else {
      step = std::min<uint64_t>(
          config_.max_step_pages,
          static_cast<uint64_t>(static_cast<double>(step) * config_.accelerate_factor));
    }
  }

  result.stolen_bytes = stolen_pages * page_bytes;
  result.working_set_bytes = result.accessible_bytes - result.stolen_bytes;
  result.duration_s = elapsed;
  result.avg_growth_bytes_per_sec =
      elapsed > 0 ? static_cast<double>(result.stolen_bytes) / elapsed : 0;

  // Tear down: truncate the probe (dropped data needs no write-back) and
  // let the user workload re-fault whatever the knee overshoot evicted, so
  // callers resume monitoring a steady-state system.
  dbms.TruncateTable(gauge_db, probe);
  const uint64_t dirty_floor = dbms.buffer_pool().capacity() / 20;
  double settled = 0;
  while (settled < config_.settle_timeout_seconds) {
    driver->Run(2.0, 2.0);
    settled += 2.0;
    const double reads = static_cast<double>(take_user_reads()) / 2.0;
    if (reads <= baseline + config_.slow_threshold_pages_per_sec &&
        dbms.buffer_pool().dirty_count() <= dirty_floor) {
      break;
    }
  }
  return result;
}

}  // namespace kairos::monitor
