#include "monitor/resource_monitor.h"

#include <cmath>

namespace kairos::monitor {

ResourceMonitor::ResourceMonitor(const MonitorConfig& config) : config_(config) {}

std::vector<WorkloadProfile> ResourceMonitor::Collect(
    workload::Driver* driver, double seconds,
    const std::vector<workload::Workload*>& workloads,
    const std::map<std::string, uint64_t>& gauged_ws_bytes) {
  const double interval = config_.sample_interval_s;
  const int samples = std::max(1, static_cast<int>(std::llround(seconds / interval)));
  const size_t n = workloads.size();

  std::vector<std::vector<double>> cpu(n), ram(n), upd(n), os_ram(n), os_write(n);
  // Clear any counters accumulated before monitoring started.
  for (auto* w : workloads) w->database()->TakeWindow();

  db::Dbms& dbms = driver->server()->dbms();
  const double base_share =
      dbms.config().base_cpu_cores / static_cast<double>(std::max<size_t>(1, n));

  for (int s = 0; s < samples; ++s) {
    const workload::RunResult res = driver->Run(interval, interval);
    // Instance-level OS statistics for this window.
    const double inst_write_bps =
        res.server.write_mbps.empty() ? 0.0 : res.server.write_mbps.at(0) * 1e6;
    const uint64_t rss = dbms.RssBytes() + dbms.FileCacheBytes();

    // Split instance write bytes across databases in proportion to their
    // log production (only matters when co-monitoring several workloads;
    // dedicated-server profiling has one workload that gets everything).
    std::vector<db::DbCounters> windows(n);
    double total_log = 0;
    for (size_t i = 0; i < n; ++i) {
      windows[i] = workloads[i]->database()->TakeWindow();
      total_log += static_cast<double>(windows[i].log_bytes);
    }
    for (size_t i = 0; i < n; ++i) {
      const db::DbCounters& w = windows[i];
      cpu[i].push_back(w.cpu_seconds / interval + base_share);
      upd[i].push_back(static_cast<double>(w.update_rows) / interval);
      const double write_share =
          total_log > 0 ? static_cast<double>(w.log_bytes) / total_log
                        : 1.0 / static_cast<double>(n);
      os_write[i].push_back(inst_write_bps * write_share);
      os_ram[i].push_back(static_cast<double>(rss) / static_cast<double>(n));
    }
  }

  std::vector<WorkloadProfile> profiles;
  profiles.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    WorkloadProfile p;
    p.name = workloads[i]->name();
    p.cpu_cores = util::TimeSeries(interval, std::move(cpu[i]));
    p.update_rows_per_sec = util::TimeSeries(interval, std::move(upd[i]));
    p.os_ram_bytes = util::TimeSeries(interval, std::move(os_ram[i]));
    p.os_write_bytes_per_sec = util::TimeSeries(interval, std::move(os_write[i]));

    uint64_t required_ram = 0;
    if (config_.use_gauged_ram) {
      auto it = gauged_ws_bytes.find(p.name);
      required_ram =
          it != gauged_ws_bytes.end() ? it->second : workloads[i]->WorkingSetBytes();
    } else {
      required_ram = static_cast<uint64_t>(config_.ram_scaling *
                                           p.os_ram_bytes.Mean());
    }
    p.working_set_bytes = static_cast<double>(required_ram);
    p.ram_bytes =
        util::TimeSeries::Constant(interval, p.cpu_cores.size(),
                                   static_cast<double>(required_ram));
    profiles.push_back(std::move(p));
  }
  return profiles;
}

}  // namespace kairos::monitor
