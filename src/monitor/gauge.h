// Buffer pool gauging (Section 3.1, Figure 3): measure a live database's
// working set by growing a probe table inside the DBMS, keeping the probe
// pages hot with periodic COUNT(*) scans, and watching physical reads. When
// stolen buffer-pool space starts displacing useful pages, the user
// workload's disk reads rise — that knee reveals the working set size.
#ifndef KAIROS_MONITOR_GAUGE_H_
#define KAIROS_MONITOR_GAUGE_H_

#include <cstdint>
#include <vector>

#include "workload/driver.h"
#include "workload/workload.h"

namespace kairos::monitor {

/// Tuning of the probing procedure.
struct GaugeConfig {
  /// Seconds between probe-table scans (READ_WAIT_SECONDS in Figure 3:
  /// 1-10 s keeps the probe resident with < 5% CPU overhead).
  double read_wait_seconds = 2.0;
  /// Initial probe growth per step, in pages.
  uint64_t initial_step_pages = 64;
  /// Bounds on the adaptive step size. The max bounds the knee overshoot
  /// (and therefore the working-set underestimate) to 32 MB of 16 KB pages.
  uint64_t min_step_pages = 16;
  uint64_t max_step_pages = 2048;
  /// Multiplicative step adaptation: grow when reads are flat, shrink when
  /// they rise.
  double accelerate_factor = 1.5;
  double backoff_factor = 0.5;
  /// A reads/sec increase beyond baseline + this many pages/sec is "small
  /// but real" -> slow down.
  double slow_threshold_pages_per_sec = 8.0;
  /// Sustained increase beyond baseline + this -> stop, we found the knee.
  double stop_threshold_pages_per_sec = 40.0;
  /// Never steal more than this fraction of DBMS-accessible memory.
  double max_steal_fraction = 0.97;
  /// Averaging window for the physical-read rate (paper default 10 s).
  double read_window_seconds = 10.0;
  /// CPU cost of scanning one probe page (cheap COUNT(*) on unindexed data).
  double scan_cpu_us_per_page = 0.5;
  /// Log bytes per appended probe page (few large tuples sized to the page).
  uint64_t insert_log_bytes_per_page = 64;
  /// After probing, keep the user workload running until the probe's
  /// write-back debt has drained (or this many seconds elapse), so the
  /// instance returns to steady state before monitoring resumes.
  double settle_timeout_seconds = 240.0;
};

/// One measurement point of the gauging curve (Figure 2).
struct GaugePoint {
  double stolen_fraction = 0;       ///< Probe size / buffer pool size.
  double reads_per_sec = 0;         ///< User physical reads per second.
  double probe_growth_bytes_per_sec = 0;  ///< Adaptive growth rate.
};

/// Result of one gauging run.
struct GaugeResult {
  uint64_t working_set_bytes = 0;   ///< Estimated application working set.
  uint64_t stolen_bytes = 0;        ///< Probe size when the knee was hit.
  uint64_t accessible_bytes = 0;    ///< Buffer pool (+ OS cache) gauged.
  double duration_s = 0;            ///< Simulated gauging time.
  double avg_growth_bytes_per_sec = 0;
  std::vector<GaugePoint> curve;    ///< Reads-vs-stolen curve (Figure 2).
};

/// Runs the probing procedure against the (single) DBMS instance driven by
/// `driver` while its user workloads keep running.
class BufferPoolGauge {
 public:
  explicit BufferPoolGauge(const GaugeConfig& config);

  /// Gauges the instance hosting `driver`'s workloads. The probe table is
  /// created in its own tenant database on the same instance (sharing the
  /// buffer pool, as in the paper).
  GaugeResult Run(workload::Driver* driver);

 private:
  GaugeConfig config_;
};

}  // namespace kairos::monitor

#endif  // KAIROS_MONITOR_GAUGE_H_
