#include "monitor/profile.h"

namespace kairos::monitor {

ProfileStats Summarize(const WorkloadProfile& profile) {
  ProfileStats stats;
  stats.mean_cpu_cores = profile.cpu_cores.Mean();
  stats.p95_cpu_cores = profile.cpu_cores.Percentile(95.0);
  stats.peak_cpu_cores = profile.cpu_cores.Max();
  stats.mean_ram_bytes = profile.ram_bytes.Mean();
  stats.p95_ram_bytes = profile.ram_bytes.Percentile(95.0);
  stats.peak_ram_bytes = profile.ram_bytes.Max();
  stats.p95_update_rows_per_sec = profile.update_rows_per_sec.Percentile(95.0);
  stats.working_set_bytes = profile.working_set_bytes;
  return stats;
}

}  // namespace kairos::monitor
