// The resource monitor of Section 3: samples DBMS and OS statistics for
// each tenant database while workloads run, producing WorkloadProfiles.
#ifndef KAIROS_MONITOR_RESOURCE_MONITOR_H_
#define KAIROS_MONITOR_RESOURCE_MONITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "monitor/profile.h"
#include "workload/driver.h"

namespace kairos::monitor {

/// Options controlling a monitoring session.
struct MonitorConfig {
  /// Statistics sampling interval (the paper uses 15 s to 5 min windows;
  /// controlled experiments use seconds).
  double sample_interval_s = 1.0;
  /// If true, report the workload's gauged working set as its RAM need;
  /// otherwise fall back to `ram_scaling` times the OS-reported allocation.
  bool use_gauged_ram = true;
  /// Scaling factor applied to OS-reported RAM when gauging is unavailable
  /// (the paper uses 0.7 for the Wikipedia / Second Life statistics).
  double ram_scaling = 1.0;
};

/// Drives workloads via a Driver while periodically sampling per-database
/// statistics, yielding one WorkloadProfile per workload.
class ResourceMonitor {
 public:
  explicit ResourceMonitor(const MonitorConfig& config);

  /// Runs `driver` for `seconds` of simulated time and returns one profile
  /// per registered workload. `gauged_ws_bytes` optionally supplies
  /// buffer-pool-gauging results keyed by workload name; workloads without
  /// an entry use their declared working set when `use_gauged_ram`.
  std::vector<WorkloadProfile> Collect(
      workload::Driver* driver, double seconds,
      const std::vector<workload::Workload*>& workloads,
      const std::map<std::string, uint64_t>& gauged_ws_bytes = {});

 private:
  MonitorConfig config_;
};

}  // namespace kairos::monitor

#endif  // KAIROS_MONITOR_RESOURCE_MONITOR_H_
