// Automated disk-profiling tool (Section 4.1): sweeps a synthetic OLTP
// workload over a grid of (working set size, row update rate) on a given
// machine/DBMS configuration, recording achieved update rates and write
// throughput. The paper collects ~7,000 points in about two hours on real
// hardware; the simulated sweep uses a coarser grid.
#ifndef KAIROS_MODEL_PROFILER_H_
#define KAIROS_MODEL_PROFILER_H_

#include <cstdint>
#include <vector>

#include "db/dbms.h"
#include "model/disk_model.h"
#include "sim/machine.h"

namespace kairos::model {

/// Grid and run-length configuration for the profiling sweep.
struct ProfilerConfig {
  std::vector<double> working_set_bytes;  ///< Sizes to sweep.
  std::vector<double> rows_per_sec;       ///< Update rates to sweep.
  double warmup_seconds = 2.0;
  double measure_seconds = 6.0;
  double tick_seconds = 0.1;
  /// Achieved/target below this ratio flags a saturated point.
  double saturation_ratio = 0.93;
  /// Updates per synthetic transaction (the sweep varies rate, not shape).
  double updates_per_tx = 10.0;

  /// Default grid resembling Figure 4 (1.0-3.5 GB working sets, update
  /// rates up to 40K rows/sec).
  static ProfilerConfig Default();
  /// Tiny grid for unit tests.
  static ProfilerConfig Small();
};

/// Runs the sweep on a simulated machine and fits a DiskModel.
class DiskModelProfiler {
 public:
  DiskModelProfiler(const sim::MachineSpec& machine, const db::DbmsConfig& dbms_config,
                    const ProfilerConfig& config);

  /// Collects the raw grid measurements.
  std::vector<ProfilePoint> CollectPoints(uint64_t seed) const;

  /// Collects points and fits the model.
  DiskModel BuildModel(uint64_t seed) const;

  /// Measures a single grid point (exposed for tests and Figure 12).
  ProfilePoint MeasurePoint(double working_set_bytes, double rows_per_sec,
                            uint64_t seed) const;

 private:
  sim::MachineSpec machine_;
  db::DbmsConfig dbms_config_;
  ProfilerConfig config_;
};

}  // namespace kairos::model

#endif  // KAIROS_MODEL_PROFILER_H_
