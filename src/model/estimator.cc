#include "model/estimator.h"

#include <algorithm>

namespace kairos::model {

CombinedLoadEstimator::CombinedLoadEstimator(const DiskModel* disk_model,
                                             double per_instance_cpu_overhead_cores,
                                             uint64_t instance_ram_overhead_bytes)
    : disk_model_(disk_model),
      per_instance_cpu_overhead_cores_(per_instance_cpu_overhead_cores),
      instance_ram_overhead_bytes_(instance_ram_overhead_bytes) {}

CombinedPrediction CombinedLoadEstimator::Combine(
    const std::vector<const monitor::WorkloadProfile*>& profiles) const {
  CombinedPrediction out;
  if (profiles.empty()) return out;

  util::TimeSeries cpu, ram, rate;
  for (const auto* p : profiles) {
    cpu.AccumulateInPlace(p->cpu_cores);
    ram.AccumulateInPlace(p->ram_bytes);
    rate.AccumulateInPlace(p->update_rows_per_sec);
    out.total_working_set_bytes += p->working_set_bytes;
  }

  // Remove the (N-1) duplicated per-instance overheads: each profile was
  // measured on a dedicated server running its own OS + DBMS.
  const double overhead_savings =
      per_instance_cpu_overhead_cores_ * static_cast<double>(profiles.size() - 1);
  out.cpu_cores = cpu.Map([overhead_savings](double v) {
    return std::max(0.0, v - overhead_savings);
  });

  const double ram_overhead = static_cast<double>(instance_ram_overhead_bytes_);
  out.ram_bytes = ram.Map([ram_overhead](double v) { return v + ram_overhead; });

  if (disk_model_ != nullptr && disk_model_->valid()) {
    const double ws = out.total_working_set_bytes;
    const DiskModel* m = disk_model_;
    out.disk_write_bytes_per_sec =
        rate.Map([m, ws](double r) { return m->PredictWriteBytesPerSec(ws, r); });
  } else {
    util::TimeSeries os_write;
    for (const auto* p : profiles) os_write.AccumulateInPlace(p->os_write_bytes_per_sec);
    out.disk_write_bytes_per_sec = os_write;
  }
  return out;
}

CombinedPrediction CombinedLoadEstimator::NaiveSum(
    const std::vector<const monitor::WorkloadProfile*>& profiles) {
  CombinedPrediction out;
  for (const auto* p : profiles) {
    out.cpu_cores.AccumulateInPlace(p->cpu_cores);
    out.ram_bytes.AccumulateInPlace(p->os_ram_bytes);
    out.disk_write_bytes_per_sec.AccumulateInPlace(p->os_write_bytes_per_sec);
    out.total_working_set_bytes += p->os_ram_bytes.Mean();
  }
  return out;
}

}  // namespace kairos::model
