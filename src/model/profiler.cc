#include "model/profiler.h"

#include <memory>

#include "db/server.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/micro.h"

namespace kairos::model {

ProfilerConfig ProfilerConfig::Default() {
  ProfilerConfig c;
  for (double gb : {1.0, 1.5, 2.0, 2.5, 3.0, 3.5}) {
    c.working_set_bytes.push_back(gb * static_cast<double>(util::kGiB));
  }
  for (double rate : {1000.0, 4000.0, 8000.0, 12000.0, 16000.0, 20000.0, 26000.0,
                      32000.0, 40000.0}) {
    c.rows_per_sec.push_back(rate);
  }
  return c;
}

ProfilerConfig ProfilerConfig::Small() {
  ProfilerConfig c;
  // Working sets comfortably inside the default 1 GB buffer pool.
  for (double gb : {0.25, 0.375, 0.5}) {
    c.working_set_bytes.push_back(gb * static_cast<double>(util::kGiB));
  }
  for (double rate : {2000.0, 8000.0, 16000.0}) {
    c.rows_per_sec.push_back(rate);
  }
  c.warmup_seconds = 1.0;
  c.measure_seconds = 3.0;
  return c;
}

DiskModelProfiler::DiskModelProfiler(const sim::MachineSpec& machine,
                                     const db::DbmsConfig& dbms_config,
                                     const ProfilerConfig& config)
    : machine_(machine), dbms_config_(dbms_config), config_(config) {}

ProfilePoint DiskModelProfiler::MeasurePoint(double working_set_bytes,
                                             double rows_per_sec,
                                             uint64_t seed) const {
  ProfilePoint point;
  point.working_set_bytes = working_set_bytes;
  point.target_rows_per_sec = rows_per_sec;

  db::Server server(machine_, dbms_config_, seed);

  workload::MicroSpec spec;
  spec.working_set_bytes = static_cast<uint64_t>(working_set_bytes);
  spec.data_bytes = spec.working_set_bytes * 2;
  spec.updates_per_tx = config_.updates_per_tx;
  spec.reads_per_tx = 2.0;
  spec.cpu_us_per_tx = 120.0;
  spec.log_bytes_per_update = 180.0;
  const double tps = rows_per_sec / config_.updates_per_tx;
  spec.pattern = std::make_shared<workload::FlatPattern>(tps);
  workload::MicroWorkload w("profiler", spec);

  workload::Driver driver(&server, seed ^ 0xABCD, config_.tick_seconds);
  driver.AddWorkload(&w);
  driver.Warm();
  driver.Run(config_.warmup_seconds, config_.warmup_seconds);
  w.database()->TakeWindow();

  const workload::RunResult res =
      driver.Run(config_.measure_seconds, config_.measure_seconds);
  const auto& ws = res.workloads.front();
  point.achieved_rows_per_sec = ws.update_rows_per_sec.Mean() *
                                (ws.total_submitted > 0
                                     ? static_cast<double>(ws.total_completed) /
                                           static_cast<double>(ws.total_submitted)
                                     : 1.0);
  point.write_bytes_per_sec = res.server.write_mbps.Mean() * 1e6;
  point.saturated =
      point.achieved_rows_per_sec < config_.saturation_ratio * rows_per_sec;
  return point;
}

std::vector<ProfilePoint> DiskModelProfiler::CollectPoints(uint64_t seed) const {
  std::vector<ProfilePoint> points;
  points.reserve(config_.working_set_bytes.size() * config_.rows_per_sec.size());
  uint64_t s = seed;
  for (double ws : config_.working_set_bytes) {
    for (double rate : config_.rows_per_sec) {
      points.push_back(MeasurePoint(ws, rate, ++s));
    }
  }
  return points;
}

DiskModel DiskModelProfiler::BuildModel(uint64_t seed) const {
  return DiskModel::Fit(CollectPoints(seed));
}

}  // namespace kairos::model
