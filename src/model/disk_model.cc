#include "model/disk_model.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace kairos::model {

DiskModel DiskModel::Fit(const std::vector<ProfilePoint>& points) {
  DiskModel m;
  if (points.size() < 6) return m;

  // Normalize for numeric stability of the polynomial fit.
  double max_ws = 0, max_rate = 0;
  for (const auto& p : points) {
    max_ws = std::max(max_ws, p.working_set_bytes);
    max_rate = std::max(max_rate, p.achieved_rows_per_sec);
  }
  if (max_ws <= 0 || max_rate <= 0) return m;
  m.ws_scale_ = max_ws;
  m.rate_scale_ = max_rate;

  // Fit the I/O surface on unsaturated points (the paper cares about
  // accuracy near — but below — saturation).
  std::vector<double> u, v, y;
  for (const auto& p : points) {
    if (p.saturated) continue;
    u.push_back(p.working_set_bytes / m.ws_scale_);
    v.push_back(p.achieved_rows_per_sec / m.rate_scale_);
    y.push_back(p.write_bytes_per_sec);
  }
  auto try_fit = [&](const std::vector<double>& fu, const std::vector<double>& fv,
                     const std::vector<double>& fy) {
    return util::Poly2D::FitLar(fu, fv, fy, &m.io_poly_) ||
           util::Poly2D::FitLeastSquares(fu, fv, fy, &m.io_poly_);
  };
  bool fitted = u.size() >= 6 && try_fit(u, v, y);
  if (!fitted) {
    // Too few (or collinear) unsaturated points: fall back to all points.
    u.clear();
    v.clear();
    y.clear();
    for (const auto& p : points) {
      u.push_back(p.working_set_bytes / m.ws_scale_);
      v.push_back(p.achieved_rows_per_sec / m.rate_scale_);
      y.push_back(p.write_bytes_per_sec);
    }
    fitted = try_fit(u, v, y);
  }
  if (!fitted) return m;

  // Saturation frontier: the max achieved rate at each working-set size,
  // quadratic in ws (Figure 4's dashed line).
  std::map<double, double> max_rate_at_ws;
  for (const auto& p : points) {
    auto& r = max_rate_at_ws[p.working_set_bytes];
    r = std::max(r, p.achieved_rows_per_sec);
  }
  std::vector<double> fu, fy;
  for (const auto& [ws, rate] : max_rate_at_ws) {
    fu.push_back(ws / m.ws_scale_);
    fy.push_back(rate);
  }
  if (fu.size() >= 3) {
    if (!util::Poly1D::Fit(fu, fy, &m.frontier_)) return m;
  } else {
    // Too few distinct sizes for a quadratic: flat frontier at the max.
    double best = 0;
    for (double r : fy) best = std::max(best, r);
    m.frontier_ = util::Poly1D({best, 0.0, 0.0});
  }
  double min_frontier = 1e300;
  for (double r : fy) min_frontier = std::min(min_frontier, r);
  m.min_frontier_ = std::max(1.0, 0.25 * min_frontier);

  m.valid_ = true;
  return m;
}

double DiskModel::PredictWriteBytesPerSec(double working_set_bytes,
                                          double rows_per_sec) const {
  if (!valid_) return 0.0;
  const double v =
      io_poly_.Eval(working_set_bytes / ws_scale_, rows_per_sec / rate_scale_);
  return std::max(0.0, v);
}

double DiskModel::MaxSustainableRate(double working_set_bytes) const {
  if (!valid_) return 0.0;
  return std::max(min_frontier_, frontier_.Eval(working_set_bytes / ws_scale_));
}

bool DiskModel::IsSustainable(double working_set_bytes, double rows_per_sec,
                              double headroom) const {
  return rows_per_sec <= headroom * MaxSustainableRate(working_set_bytes);
}

double DiskModel::UtilizationFraction(double working_set_bytes,
                                      double rows_per_sec) const {
  const double cap = MaxSustainableRate(working_set_bytes);
  return cap > 0 ? rows_per_sec / cap : 0.0;
}

}  // namespace kairos::model
