// Closed-form disk profiling for working-set sizes too large to sweep with
// the full DBMS simulator (e.g. the 96 GB consolidation targets of the
// trace experiments). Evaluates the same steady-state mechanics the
// simulator implements — log append with group commit, update coalescing on
// dirty pages, sorted elevator write-back — analytically, then feeds the
// points to DiskModel::Fit like any measured profile.
#ifndef KAIROS_MODEL_ANALYTIC_H_
#define KAIROS_MODEL_ANALYTIC_H_

#include <cstdint>
#include <vector>

#include "model/disk_model.h"
#include "sim/disk.h"

namespace kairos::model {

/// Workload constants mirrored from the simulator's defaults.
struct AnalyticConfig {
  uint64_t page_bytes = 16 * 1024;
  double flush_interval_s = 60.0;       ///< Background trickle cycle time.
  uint64_t log_file_bytes = 128ULL << 20;  ///< Redo capacity (pacing driver).
  double checkpoint_safety = 0.8;       ///< Finish flushing early by this.
  double log_bytes_per_row = 180.0;
  double group_commit_window_ms = 5.0;
  double commits_per_row = 0.1;         ///< Commits per updated row.
  /// Data span factor: write-back spreads over ws * this many bytes.
  double span_factor = 2.0;
};

/// Steady-state write throughput (bytes/sec) at one (ws, rate) point.
double AnalyticWriteBytesPerSec(const AnalyticConfig& config, double working_set_bytes,
                                double rows_per_sec);

/// Device busy fraction at one point (>= 1 means unsustainable).
double AnalyticDiskBusyFraction(const sim::DiskSpec& disk, const AnalyticConfig& config,
                                double working_set_bytes, double rows_per_sec);

/// Max sustainable update rate at a working set size (bisection on the
/// busy fraction).
double AnalyticMaxRate(const sim::DiskSpec& disk, const AnalyticConfig& config,
                       double working_set_bytes);

/// Produces ProfilePoints over a (ws, rate) grid, marking saturated points,
/// ready for DiskModel::Fit.
std::vector<ProfilePoint> AnalyticProfile(const sim::DiskSpec& disk,
                                          const AnalyticConfig& config,
                                          const std::vector<double>& ws_grid,
                                          const std::vector<double>& rate_grid);

/// Convenience: grid + fit for a consolidation target machine.
DiskModel BuildAnalyticModel(const sim::DiskSpec& disk, const AnalyticConfig& config,
                             double max_ws_bytes, double max_rate);

}  // namespace kairos::model

#endif  // KAIROS_MODEL_ANALYTIC_H_
