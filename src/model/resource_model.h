// The resource-axis layer: how per-workload loads combine on a shared
// server and how much combined load a server sustains. The paper's central
// modeling claim (Section 4) is that CPU and RAM combine (near-)linearly
// under consolidation while disk I/O combines nonlinearly and must be
// predicted by a measured model — a ResourceModel captures exactly that
// split, so the evaluator, the greedy packers, the capacity ledger, and the
// online migration planner all price an axis through one interface instead
// of hand-rolling its arithmetic at every call site.
//
// Loads on every axis *aggregate* by summation (the paper's combining
// property: N databases behave like one database at the summed inputs);
// what differs per axis is the *capacity* available to the aggregate:
//   * LinearResource — capacity is a constant (CPU cores, RAM bytes,
//     a fixed IOPS budget): utilization is load/capacity, linear in load.
//   * DiskResource — capacity is the saturation frontier of a fitted
//     DiskModel evaluated at the aggregate working set: adding working set
//     to a server shrinks the sustainable update rate for everyone on it.
//     With no (or an invalid) model the axis degrades to LinearResource
//     semantics with an unbounded default capacity, i.e. unconstrained.
#ifndef KAIROS_MODEL_RESOURCE_MODEL_H_
#define KAIROS_MODEL_RESOURCE_MODEL_H_

#include <algorithm>
#include <string>
#include <utility>

#include "model/disk_model.h"

namespace kairos::model {

/// Capacity semantics of one resource axis on one machine class. The
/// auxiliary scalar `aux` is the axis's capacity input aggregated over the
/// co-located workloads (the summed working set for disk; unused for linear
/// axes).
class ResourceModel {
 public:
  virtual ~ResourceModel() = default;

  /// Axis label for reports ("cpu", "ram", "disk", ...).
  virtual std::string name() const = 0;

  /// True when the axis imposes a real constraint. Inactive axes are
  /// skipped by consumers (the classic "no disk model" setup).
  virtual bool active() const { return true; }

  /// Full capacity available to an aggregate load at `aux` (the balance
  /// term's denominator — no safety headroom).
  virtual double Capacity(double aux) const = 0;

  /// Safety-headroom fraction in (0, 1]; the constraint-checked capacity is
  /// headroom() * Capacity(aux).
  virtual double headroom() const { return 1.0; }

  /// Headroomed capacity (the violation threshold).
  double UsableCapacity(double aux) const { return headroom() * Capacity(aux); }

  /// Utilization fraction of an aggregate `load` at `aux`, against the full
  /// capacity. 0 when the axis has no capacity at all.
  double Utilization(double load, double aux) const {
    const double cap = Capacity(aux);
    return cap > 0 ? load / cap : 0.0;
  }
};

/// An axis whose capacity is a constant: CPU standard-cores and RAM bytes,
/// where the paper measures near-perfectly linear combination.
class LinearResource final : public ResourceModel {
 public:
  LinearResource(std::string name, double capacity, double headroom)
      : name_(std::move(name)), capacity_(capacity), headroom_(headroom) {}

  std::string name() const override { return name_; }
  double Capacity(double /*aux*/) const override { return capacity_; }
  double headroom() const override { return headroom_; }

 private:
  std::string name_;
  double capacity_ = 0;
  double headroom_ = 1.0;
};

/// The nonlinear disk axis: capacity is the fitted model's saturation
/// frontier at the aggregate working set, so utilization is monotone in
/// *both* the update rate and the working set other tenants bring along.
/// With a null/invalid model the axis reduces to linear semantics at
/// `fallback_capacity` (unbounded by default — no constraint).
class DiskResource final : public ResourceModel {
 public:
  static constexpr double kUnbounded = 1e300;

  DiskResource() = default;
  explicit DiskResource(const DiskModel* model, double headroom = 0.9,
                        double fallback_capacity = kUnbounded)
      : model_(model), headroom_(headroom), fallback_(fallback_capacity) {}

  std::string name() const override { return "disk"; }
  bool active() const override { return model_ != nullptr && model_->valid(); }
  double Capacity(double working_set_bytes) const override {
    if (!active()) return fallback_;
    return model_->MaxSustainableRate(std::max(0.0, working_set_bytes));
  }
  double headroom() const override { return headroom_; }

  const DiskModel* disk_model() const { return model_; }

 private:
  const DiskModel* model_ = nullptr;
  double headroom_ = 0.9;
  double fallback_ = kUnbounded;
};

}  // namespace kairos::model

#endif  // KAIROS_MODEL_RESOURCE_MODEL_H_
