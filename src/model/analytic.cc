#include "model/analytic.h"

#include <algorithm>
#include <cmath>

namespace kairos::model {

namespace {

/// Steady-state write-back characteristics under fuzzy-checkpoint pacing:
/// a dirty page lingers for T = min(flush_interval, safety * time for the
/// redo log to fill), so updates spread over P pages coalesce into
/// D = P (1 - exp(-u T / P)) / T distinct page writes per second.
struct Steady {
  double residence_s = 0;       ///< T: how long a page stays dirty.
  double dirty_pages = 0;       ///< Steady-state dirty set size.
  double flush_pages_per_sec = 0;  ///< D.
};

Steady SteadyState(const AnalyticConfig& c, double working_set_bytes,
                   double rows_per_sec) {
  Steady s;
  const double pages =
      std::max(1.0, working_set_bytes / static_cast<double>(c.page_bytes));
  const double log_rate = std::max(1.0, rows_per_sec * c.log_bytes_per_row);
  const double seconds_to_checkpoint =
      static_cast<double>(c.log_file_bytes) / log_rate;
  s.residence_s = std::max(
      0.1, std::min(c.flush_interval_s, c.checkpoint_safety * seconds_to_checkpoint));
  s.dirty_pages = pages * (1.0 - std::exp(-rows_per_sec * s.residence_s / pages));
  s.flush_pages_per_sec = s.dirty_pages / s.residence_s;
  return s;
}

}  // namespace

double AnalyticWriteBytesPerSec(const AnalyticConfig& c, double working_set_bytes,
                                double rows_per_sec) {
  const Steady s = SteadyState(c, working_set_bytes, rows_per_sec);
  return rows_per_sec * c.log_bytes_per_row +
         s.flush_pages_per_sec * static_cast<double>(c.page_bytes);
}

double AnalyticDiskBusyFraction(const sim::DiskSpec& disk_spec,
                                const AnalyticConfig& c, double working_set_bytes,
                                double rows_per_sec) {
  sim::Disk disk(disk_spec);
  const Steady s = SteadyState(c, working_set_bytes, rows_per_sec);

  // Log stream: sequential bytes plus group-commit fsyncs.
  const double log_bytes = rows_per_sec * c.log_bytes_per_row;
  const double commits = rows_per_sec * c.commits_per_row;
  const double max_groups = 1000.0 / std::max(0.1, c.group_commit_window_ms);
  const double fsyncs = std::min(commits, max_groups);
  const double log_cost =
      disk.SeqWriteCost(static_cast<uint64_t>(log_bytes), static_cast<int>(fsyncs));

  // Elevator write-back: one second's batch of D consecutive dirty pages
  // spans span_total / residence bytes of the data region.
  const double span_total = working_set_bytes * c.span_factor;
  const double span_per_sec = span_total / s.residence_s;
  const double flush_cost = disk.SortedWriteCost(
      static_cast<int64_t>(std::max(0.0, s.flush_pages_per_sec)), c.page_bytes,
      static_cast<uint64_t>(std::max(span_per_sec,
                                     s.flush_pages_per_sec *
                                         static_cast<double>(c.page_bytes))));
  return log_cost + flush_cost;
}

double AnalyticMaxRate(const sim::DiskSpec& disk, const AnalyticConfig& c,
                       double working_set_bytes) {
  double lo = 0.0, hi = 1.0;
  while (AnalyticDiskBusyFraction(disk, c, working_set_bytes, hi) < 1.0 && hi < 1e9) {
    hi *= 2.0;
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (AnalyticDiskBusyFraction(disk, c, working_set_bytes, mid) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<ProfilePoint> AnalyticProfile(const sim::DiskSpec& disk,
                                          const AnalyticConfig& c,
                                          const std::vector<double>& ws_grid,
                                          const std::vector<double>& rate_grid) {
  std::vector<ProfilePoint> points;
  points.reserve(ws_grid.size() * (rate_grid.size() + 1));
  for (double ws : ws_grid) {
    const double max_rate = AnalyticMaxRate(disk, c, ws);
    for (double rate : rate_grid) {
      ProfilePoint p;
      p.working_set_bytes = ws;
      p.target_rows_per_sec = rate;
      p.achieved_rows_per_sec = std::min(rate, max_rate);
      p.write_bytes_per_sec = AnalyticWriteBytesPerSec(c, ws, p.achieved_rows_per_sec);
      p.saturated = rate > max_rate;
      points.push_back(p);
    }
    // The exact saturation point: achievable, and it anchors the frontier
    // fit even when the sampled grid sits entirely above or below it.
    ProfilePoint frontier;
    frontier.working_set_bytes = ws;
    frontier.target_rows_per_sec = max_rate;
    frontier.achieved_rows_per_sec = max_rate;
    frontier.write_bytes_per_sec = AnalyticWriteBytesPerSec(c, ws, max_rate);
    frontier.saturated = false;
    points.push_back(frontier);
  }
  return points;
}

DiskModel BuildAnalyticModel(const sim::DiskSpec& disk, const AnalyticConfig& c,
                             double max_ws_bytes, double max_rate) {
  std::vector<double> ws_grid, rate_grid;
  for (int i = 1; i <= 6; ++i) {
    ws_grid.push_back(max_ws_bytes * static_cast<double>(i) / 6.0);
  }
  for (int i = 1; i <= 8; ++i) {
    rate_grid.push_back(max_rate * static_cast<double>(i) / 8.0);
  }
  return DiskModel::Fit(AnalyticProfile(disk, c, ws_grid, rate_grid));
}

}  // namespace kairos::model
