// Combined load estimator (Section 4): predicts the resource consumption of
// several workloads consolidated into one DBMS instance.
//   CPU: sum of per-workload CPU minus the duplicated per-instance
//        OS+DBMS overhead.
//   RAM: sum of gauged working sets (plus one instance's overhead).
//   Disk: the nonlinear DiskModel evaluated at the aggregate working set
//        and aggregate row-update rate.
// A naive baseline (straight sums of OS metrics) is provided for the
// Figure 6 comparison.
#ifndef KAIROS_MODEL_ESTIMATOR_H_
#define KAIROS_MODEL_ESTIMATOR_H_

#include <vector>

#include "model/disk_model.h"
#include "monitor/profile.h"
#include "util/timeseries.h"

namespace kairos::model {

/// Predicted combined utilization over time.
struct CombinedPrediction {
  util::TimeSeries cpu_cores;
  util::TimeSeries ram_bytes;
  util::TimeSeries disk_write_bytes_per_sec;
  double total_working_set_bytes = 0;

  double PeakCpu() const { return cpu_cores.Max(); }
  double PeakRamBytes() const { return ram_bytes.Max(); }
  double PeakDiskBytesPerSec() const { return disk_write_bytes_per_sec.Max(); }
};

/// Estimates combined resource consumption of co-located workloads.
class CombinedLoadEstimator {
 public:
  /// `disk_model` may be null, in which case disk predictions fall back to
  /// summed OS write statistics. `per_instance_cpu_overhead_cores` is the
  /// experimentally determined OS+DBMS background load included in each
  /// dedicated-server profile; (N-1) copies are removed when combining N
  /// workloads. `instance_ram_overhead_bytes` is the single consolidated
  /// instance's process overhead.
  CombinedLoadEstimator(const DiskModel* disk_model,
                        double per_instance_cpu_overhead_cores,
                        uint64_t instance_ram_overhead_bytes = 0);

  /// Model-based combined prediction (Kairos).
  CombinedPrediction Combine(
      const std::vector<const monitor::WorkloadProfile*>& profiles) const;

  /// Naive baseline: straight sums of the OS-reported statistics.
  static CombinedPrediction NaiveSum(
      const std::vector<const monitor::WorkloadProfile*>& profiles);

 private:
  const DiskModel* disk_model_;
  double per_instance_cpu_overhead_cores_;
  uint64_t instance_ram_overhead_bytes_;
};

}  // namespace kairos::model

#endif  // KAIROS_MODEL_ESTIMATOR_H_
