// The empirical disk model of Section 4.1: a hardware/DBMS-configuration-
// specific map from (working set size, row update rate) to disk write
// throughput, fit as a Least-Absolute-Residuals second-order polynomial,
// plus a quadratic saturation frontier (the dashed line of Figure 4).
#ifndef KAIROS_MODEL_DISK_MODEL_H_
#define KAIROS_MODEL_DISK_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/polyfit.h"

namespace kairos::model {

/// One profiling measurement.
struct ProfilePoint {
  double working_set_bytes = 0;
  double target_rows_per_sec = 0;    ///< Offered update rate.
  double achieved_rows_per_sec = 0;  ///< Sustained update rate.
  double write_bytes_per_sec = 0;    ///< Observed physical write throughput.
  bool saturated = false;            ///< Achieved noticeably below target.
};

/// The fitted model. The paper's combining property: N databases with
/// aggregate working set X and aggregate update rate Y behave like one
/// database at (X, Y) — so consolidation queries sum the inputs and
/// evaluate this model once.
class DiskModel {
 public:
  DiskModel() = default;

  /// Fits the model from profiling points. Points flagged saturated feed
  /// only the saturation frontier, not the I/O surface.
  static DiskModel Fit(const std::vector<ProfilePoint>& points);

  /// Predicted physical write throughput (bytes/sec) for a combined
  /// workload with the given aggregate working set and update rate.
  double PredictWriteBytesPerSec(double working_set_bytes, double rows_per_sec) const;

  /// Max sustainable aggregate update rate (rows/sec) at this working set
  /// (the saturation frontier; decreasing in working set size).
  double MaxSustainableRate(double working_set_bytes) const;

  /// True when (ws, rate) is within `headroom` (e.g. 0.9) of saturation.
  bool IsSustainable(double working_set_bytes, double rows_per_sec,
                     double headroom = 0.9) const;

  /// Disk "utilization" proxy in [0, inf): rate / max sustainable rate.
  double UtilizationFraction(double working_set_bytes, double rows_per_sec) const;

  /// True once Fit() has produced a usable model.
  bool valid() const { return valid_; }

  const util::Poly2D& io_surface() const { return io_poly_; }
  const util::Poly1D& saturation_frontier() const { return frontier_; }

  /// Normalization constants used internally (inputs are scaled to ~[0,1]
  /// before fitting for numeric stability).
  double ws_scale() const { return ws_scale_; }
  double rate_scale() const { return rate_scale_; }

 private:
  util::Poly2D io_poly_;      // (ws, rate) -> write bytes/sec.
  util::Poly1D frontier_;     // ws -> max rows/sec.
  double ws_scale_ = 1.0;
  double rate_scale_ = 1.0;
  double min_frontier_ = 0.0;  // Frontier floor (quadratics can dip).
  bool valid_ = false;
};

}  // namespace kairos::model

#endif  // KAIROS_MODEL_DISK_MODEL_H_
