// Deterministic union-find (disjoint-set) over dense integer ids, used for
// anti-affinity grouping: workloads joined by anti-affinity pairs must
// route to one shard/group atomically. Path-halving Find; the *smaller*
// root wins every Union, so a set's representative is always its smallest
// member and grouping is independent of the order pairs arrive in.
#ifndef KAIROS_UTIL_UNION_FIND_H_
#define KAIROS_UTIL_UNION_FIND_H_

#include <utility>
#include <vector>

namespace kairos::util {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }

  /// Representative (smallest member) of x's set, with path halving.
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; the smaller representative wins.
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[b] = a;
  }

  /// True when a and b share a set.
  bool Connected(int a, int b) { return Find(a) == Find(b); }

  int size() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
};

}  // namespace kairos::util

#endif  // KAIROS_UTIL_UNION_FIND_H_
