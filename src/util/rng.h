// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in Kairos (workload generators, trace synthesis,
// simulated devices) flows from util::Rng seeded explicitly, so every test,
// example, and benchmark is reproducible bit-for-bit.
#ifndef KAIROS_UTIL_RNG_H_
#define KAIROS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace kairos::util {

/// xoshiro256** pseudo-random generator with SplitMix64 seeding.
///
/// Small, fast, and high quality; deliberately not std::mt19937 so that the
/// stream is stable across standard library implementations.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a normally distributed value (Box-Muller).
  double Gaussian(double mean, double stddev);

  /// Returns an exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// Returns a Poisson-distributed count with the given mean. Uses the
  /// inversion method for small means and a Gaussian approximation above
  /// mean 64 (adequate for workload arrival counts).
  int64_t Poisson(double mean);

  /// Returns a Zipf-distributed rank in [0, n) with skew `theta` in (0, 1).
  /// theta -> 0 approaches uniform; larger theta is more skewed.
  int64_t Zipf(int64_t n, double theta);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Creates a child generator whose stream is independent of this one.
  /// Useful to give each workload or server its own stream derived from a
  /// single experiment seed.
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cached second Box-Muller variate.
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace kairos::util

#endif  // KAIROS_UTIL_RNG_H_
