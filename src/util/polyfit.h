// Polynomial fitting: ordinary least squares and Least Absolute Residuals
// (LAR, via iteratively reweighted least squares). Used by the disk model
// (Section 4.1 of the paper fits a LAR second-order 2-D polynomial).
#ifndef KAIROS_UTIL_POLYFIT_H_
#define KAIROS_UTIL_POLYFIT_H_

#include <cstddef>
#include <vector>

namespace kairos::util {

/// Solves the dense linear system A x = b by Gaussian elimination with
/// partial pivoting. `a` is row-major n x n. Returns false if singular.
bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, size_t n,
                       std::vector<double>* x);

/// Fits `beta` minimizing ||X beta - y||_2, where `x` is row-major with
/// `num_features` columns. Returns false on a singular design.
bool LeastSquares(const std::vector<double>& x, const std::vector<double>& y,
                  size_t num_features, std::vector<double>* beta);

/// Fits `beta` approximately minimizing the sum of absolute residuals
/// (Least Absolute Residuals) by IRLS with 1/|r| weights.
bool LeastAbsoluteResiduals(const std::vector<double>& x, const std::vector<double>& y,
                            size_t num_features, std::vector<double>* beta,
                            int iterations = 20);

/// Second-order polynomial in two variables:
///   f(u, v) = c0 + c1 u + c2 v + c3 u^2 + c4 u v + c5 v^2.
class Poly2D {
 public:
  Poly2D() : coeff_(6, 0.0) {}
  /// Builds from 6 coefficients [c0..c5].
  explicit Poly2D(std::vector<double> coeff);

  /// Evaluates the polynomial.
  double Eval(double u, double v) const;

  /// The 6 coefficients.
  const std::vector<double>& coefficients() const { return coeff_; }

  /// Fits via ordinary least squares. Returns false on singular design.
  static bool FitLeastSquares(const std::vector<double>& u, const std::vector<double>& v,
                              const std::vector<double>& y, Poly2D* out);

  /// Fits via Least Absolute Residuals (the paper's choice).
  static bool FitLar(const std::vector<double>& u, const std::vector<double>& v,
                     const std::vector<double>& y, Poly2D* out);

 private:
  std::vector<double> coeff_;
};

/// One-dimensional quadratic f(u) = c0 + c1 u + c2 u^2 (used for the disk
/// saturation frontier in Figure 4).
class Poly1D {
 public:
  Poly1D() : coeff_(3, 0.0) {}
  explicit Poly1D(std::vector<double> coeff);

  double Eval(double u) const;
  const std::vector<double>& coefficients() const { return coeff_; }

  /// Fits via ordinary least squares on (u, y) pairs.
  static bool Fit(const std::vector<double>& u, const std::vector<double>& y, Poly1D* out);

 private:
  std::vector<double> coeff_;
};

}  // namespace kairos::util

#endif  // KAIROS_UTIL_POLYFIT_H_
