#include "util/json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace kairos::util {

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(Offset());
    }
    return false;
  }

  size_t Offset() const { return static_cast<size_t>(p - begin); }
  const char* begin;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end - p) < n || std::strncmp(p, lit, n) != 0) {
      return Fail(std::string("expected '") + lit + "'");
    }
    p += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (p >= end || *p != '"') return Fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return Fail("truncated escape");
      const char esc = *p++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (end - p < 4) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (the names we emit are ASCII;
          // surrogate pairs are out of scope and decode as two units).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    if (p >= end) return Fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (p >= end) return Fail("unexpected end of input");
    switch (*p) {
      case '{': {
        out->type = JsonValue::Type::kObject;
        ++p;
        SkipWs();
        if (p < end && *p == '}') { ++p; return true; }
        for (;;) {
          SkipWs();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipWs();
          if (p >= end || *p != ':') return Fail("expected ':'");
          ++p;
          JsonValue value;
          if (!ParseValue(&value)) return false;
          out->object.emplace_back(std::move(key), std::move(value));
          SkipWs();
          if (p < end && *p == ',') { ++p; continue; }
          if (p < end && *p == '}') { ++p; return true; }
          return Fail("expected ',' or '}'");
        }
      }
      case '[': {
        out->type = JsonValue::Type::kArray;
        ++p;
        SkipWs();
        if (p < end && *p == ']') { ++p; return true; }
        for (;;) {
          JsonValue value;
          if (!ParseValue(&value)) return false;
          out->array.push_back(std::move(value));
          SkipWs();
          if (p < end && *p == ',') { ++p; continue; }
          if (p < end && *p == ']') { ++p; return true; }
          return Fail("expected ',' or ']'");
        }
      }
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default: {
        char* num_end = nullptr;
        const double v = std::strtod(p, &num_end);
        if (num_end == p || num_end > end) return Fail("expected value");
        out->type = JsonValue::Type::kNumber;
        out->number = v;
        p = num_end;
        return true;
      }
    }
  }
};

}  // namespace

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  Parser parser;
  parser.p = text.data();
  parser.begin = text.data();
  parser.end = text.data() + text.size();
  if (!parser.ParseValue(out)) {
    if (error) *error = parser.error;
    return false;
  }
  parser.SkipWs();
  if (parser.p != parser.end) {
    if (error) {
      *error = "trailing garbage at offset " + std::to_string(parser.Offset());
    }
    return false;
  }
  return true;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace kairos::util
