#include "util/rng.h"

#include <cmath>

namespace kairos::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Gaussian(double mean, double stddev) {
  if (has_gauss_) {
    has_gauss_ = false;
    return mean + stddev * gauss_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -mean * std::log(u);
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = Gaussian(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  // Knuth inversion.
  const double l = std::exp(-mean);
  int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

int64_t Rng::Zipf(int64_t n, double theta) {
  // Rejection-inversion style approximation via the standard "zeta" trick is
  // expensive to set up per-call; we use the bounded power-law inversion,
  // which matches Zipf closely for the ranges used in workload generators.
  if (n <= 1) return 0;
  const double alpha = 1.0 - theta;  // CDF exponent, in (0, 1].
  const double u = NextDouble();
  const double x = std::pow(u, 1.0 / alpha) * static_cast<double>(n);
  int64_t r = static_cast<int64_t>(x);
  if (r >= n) r = n - 1;
  return r;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace kairos::util
