// Common byte/time unit constants used throughout Kairos.
#ifndef KAIROS_UTIL_UNITS_H_
#define KAIROS_UTIL_UNITS_H_

#include <cstdint>

namespace kairos::util {

/// Binary byte units.
inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;

/// Converts bytes to fractional mebibytes.
inline constexpr double ToMiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

/// Converts bytes to fractional gibibytes.
inline constexpr double ToGiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}

/// Converts fractional mebibytes to bytes (rounding down).
inline constexpr uint64_t MiBToBytes(double mib) {
  return static_cast<uint64_t>(mib * static_cast<double>(kMiB));
}

/// Converts fractional gibibytes to bytes (rounding down).
inline constexpr uint64_t GiBToBytes(double gib) {
  return static_cast<uint64_t>(gib * static_cast<double>(kGiB));
}

}  // namespace kairos::util

#endif  // KAIROS_UTIL_UNITS_H_
