// Deterministic work-stealing thread pool for shard-parallel solving.
//
// Design constraints (the sharded-solver determinism contract):
//   - fixed worker count, decided at construction — never grows with load;
//   - per-worker deques: task i of a ParallelFor is dealt to worker i % W,
//     owners pop their own queue from the front (FIFO over their share),
//     thieves steal from the back of victims in a fixed order (worker
//     id+1, id+2, ... wrapping) — so the *schedule* may vary with timing
//     but the steal order per worker never does;
//   - tasks must be independent and write only their own result slot.
//     Under that discipline the set of executed tasks — and therefore any
//     index-merged result — is identical at 1, 2, 4, or 8 workers no
//     matter how the steals interleave.
//
// The calling thread participates as worker 0, so a pool of W workers
// spawns only W-1 threads and ThreadPool(1) runs everything serially on
// the caller with no synchronization at all.
#ifndef KAIROS_UTIL_THREAD_POOL_H_
#define KAIROS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace kairos::util {

class ThreadPool {
 public:
  /// `threads` <= 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for every i in [0, n), blocking until all complete. The
  /// caller executes tasks too (as worker 0). Not reentrant: fn must not
  /// call ParallelFor on the same pool.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Successful steals since construction (diagnostic only — the count
  /// depends on timing, results never do).
  uint64_t steal_count() const { return steals_.load(std::memory_order_relaxed); }

 private:
  // One deque per worker. `gen` stamps which ParallelFor the queued tasks
  // belong to: a straggler from the previous call sees a newer stamp and
  // backs off instead of running fresh tasks against its stale closure.
  struct Worker {
    std::mutex mu;
    std::deque<int> queue;
    uint64_t gen = 0;
  };

  void WorkerLoop(int id);
  void RunTasks(int id, uint64_t gen, const std::function<void(int)>& fn);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex job_mu_;
  std::condition_variable job_cv_;
  uint64_t generation_ = 0;
  bool stop_ = false;
  const std::function<void(int)>* job_ = nullptr;

  std::atomic<int> remaining_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  std::atomic<uint64_t> steals_{0};
};

}  // namespace kairos::util

#endif  // KAIROS_UTIL_THREAD_POOL_H_
