// Minimal JSON document model + recursive-descent parser — just enough to
// read back the documents this repo writes (obs exports, bench reports,
// metrics baselines) without an external dependency. Numbers are doubles
// (exact for the int64 counters we emit up to 2^53), objects preserve
// insertion order and are looked up linearly (documents here are small and
// metric names contain '.', so there is deliberately no dotted-path
// helper — index sections explicitly).
#ifndef KAIROS_UTIL_JSON_H_
#define KAIROS_UTIL_JSON_H_

#include <string>
#include <utility>
#include <vector>

namespace kairos::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses `text` into `*out`. Returns false (with a position-annotated
  /// message in `*error` when non-null) on malformed input or trailing
  /// garbage.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error = nullptr);

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup (null when absent or not an object).
  const JsonValue* Find(const std::string& key) const;
};

}  // namespace kairos::util

#endif  // KAIROS_UTIL_JSON_H_
