// Summary statistics used by the monitor, the models, and the benches.
#ifndef KAIROS_UTIL_STATS_H_
#define KAIROS_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace kairos::util {

/// Streaming accumulator for mean / variance / min / max.
class Accumulator {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  size_t count() const { return count_; }
  /// Sum of observations (0 when empty).
  double sum() const { return sum_; }
  /// Arithmetic mean (0 when empty).
  double Mean() const;
  /// Population variance (0 with < 2 observations).
  double Variance() const;
  /// Population standard deviation.
  double Stddev() const;
  /// Smallest observation (+inf when empty).
  double Min() const { return min_; }
  /// Largest observation (-inf when empty).
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_;
  double max_;

 public:
  Accumulator();
};

/// Returns the p-th percentile (p in [0, 100]) by linear interpolation over
/// a copy of `values`. Returns 0 for an empty input.
double Percentile(std::vector<double> values, double p);

/// Root-mean-squared error between two equally sized series.
double Rmse(const std::vector<double>& a, const std::vector<double>& b);

/// Mean absolute error between two equally sized series.
double MeanAbsError(const std::vector<double>& a, const std::vector<double>& b);

/// One point of an empirical CDF.
struct CdfPoint {
  double value;     ///< Observation value.
  double fraction;  ///< Fraction of observations <= value, in (0, 1].
};

/// Builds the empirical CDF of `values` (sorted ascending).
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values);

/// Five-number box-plot summary plus outliers, using the paper's Tukey-style
/// fences [q1 - 1.5(q3-q1), q3 + 1.5(q3-q1)].
struct BoxPlot {
  double min = 0;     ///< Smallest non-outlier.
  double q1 = 0;      ///< 25th percentile.
  double median = 0;  ///< 50th percentile.
  double q3 = 0;      ///< 75th percentile.
  double max = 0;     ///< Largest non-outlier.
  std::vector<double> outliers;  ///< Points outside the fences.
};

/// Computes a box plot summary of `values`.
BoxPlot MakeBoxPlot(std::vector<double> values);

}  // namespace kairos::util

#endif  // KAIROS_UTIL_STATS_H_
