// Regularly sampled time series: the lingua franca between the resource
// monitor, the trace datasets, and the consolidation engine.
#ifndef KAIROS_UTIL_TIMESERIES_H_
#define KAIROS_UTIL_TIMESERIES_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace kairos::util {

/// A time series with a fixed sampling interval, as produced by rrdtool-style
/// monitoring (Cacti / Ganglia / Munin) and by our own resource monitor.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Creates a series sampled every `interval_seconds`, starting at t = 0.
  TimeSeries(double interval_seconds, std::vector<double> values);

  /// Creates a constant series of `n` samples.
  static TimeSeries Constant(double interval_seconds, size_t n, double value);

  /// Sampling interval in seconds (0 for an empty default-constructed series).
  double interval_seconds() const { return interval_seconds_; }
  /// Number of samples.
  size_t size() const { return values_.size(); }
  /// True when the series has no samples.
  bool empty() const { return values_.empty(); }
  /// Sample values.
  const std::vector<double>& values() const { return values_; }
  /// Mutable sample values (for in-place scaling by callers that own it).
  std::vector<double>& mutable_values() { return values_; }
  /// Value of sample i.
  double at(size_t i) const { return values_[i]; }
  /// Timestamp (seconds) of sample i.
  double TimeAt(size_t i) const { return interval_seconds_ * static_cast<double>(i); }

  /// Largest sample (0 for empty).
  double Max() const;
  /// Smallest sample (0 for empty).
  double Min() const;
  /// Mean sample (0 for empty).
  double Mean() const;
  /// p-th percentile of the samples.
  double Percentile(double p) const;

  /// Returns a series scaled by `factor`.
  TimeSeries Scaled(double factor) const;

  /// Element-wise sum; the result has min(size) samples. Requires matching
  /// intervals (checked).
  TimeSeries operator+(const TimeSeries& other) const;

  /// Adds `other` element-wise into this series, extending if needed.
  void AccumulateInPlace(const TimeSeries& other);

  /// Returns a series resampled to `new_interval` by averaging whole buckets.
  /// `new_interval` must be a multiple of the current interval.
  TimeSeries Resampled(double new_interval) const;

  /// Applies `fn` to every sample and returns the result.
  TimeSeries Map(const std::function<double(double)>& fn) const;

 private:
  double interval_seconds_ = 0.0;
  std::vector<double> values_;
};

/// Sums a set of series element-wise (all must share the interval; the
/// result length is the max length, missing samples treated as 0).
TimeSeries SumSeries(const std::vector<TimeSeries>& series);

}  // namespace kairos::util

#endif  // KAIROS_UTIL_TIMESERIES_H_
