#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kairos::util {

Accumulator::Accumulator()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Accumulator::Add(double x) {
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Accumulator::Variance() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  double v = sum_sq_ / n - m * m;
  return v < 0.0 ? 0.0 : v;
}

double Accumulator::Stddev() const { return std::sqrt(Variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double Rmse(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double MeanAbsError(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values) {
  std::vector<CdfPoint> cdf;
  if (values.empty()) return cdf;
  std::sort(values.begin(), values.end());
  cdf.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    cdf.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

BoxPlot MakeBoxPlot(std::vector<double> values) {
  BoxPlot box;
  if (values.empty()) return box;
  std::sort(values.begin(), values.end());
  box.q1 = Percentile(values, 25.0);
  box.median = Percentile(values, 50.0);
  box.q3 = Percentile(values, 75.0);
  const double iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - 1.5 * iqr;
  const double hi_fence = box.q3 + 1.5 * iqr;
  box.min = box.q1;
  box.max = box.q3;
  bool have_inlier = false;
  for (double v : values) {
    if (v < lo_fence || v > hi_fence) {
      box.outliers.push_back(v);
    } else {
      if (!have_inlier) {
        box.min = v;
        have_inlier = true;
      }
      box.max = v;
    }
  }
  return box;
}

}  // namespace kairos::util
