#include "util/thread_pool.h"

#include <algorithm>

namespace kairos::util {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(1, threads);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads - 1);
  for (int i = 1; i < threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1) {
    // One task is dealt to worker 0 — the caller — so run it inline and
    // skip the generation bump, queue stamping, and worker wakeups.
    fn(0);
    return;
  }
  const int W = num_workers();
  if (W == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    gen = ++generation_;
    job_ = &fn;
  }
  // Deal task i to worker i % W. Stamping each queue with the new
  // generation invalidates any leftovers a straggler might still see.
  for (int w = 0; w < W; ++w) {
    std::lock_guard<std::mutex> lock(workers_[w]->mu);
    workers_[w]->queue.clear();
    workers_[w]->gen = gen;
  }
  remaining_.store(n, std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    Worker& w = *workers_[i % W];
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(i);
  }
  job_cv_.notify_all();

  RunTasks(0, gen, fn);

  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] { return remaining_.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::WorkerLoop(int id) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    uint64_t gen = 0;
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      job_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = gen = generation_;
      job = job_;
    }
    if (job != nullptr) RunTasks(id, gen, *job);
  }
}

void ThreadPool::RunTasks(int id, uint64_t gen, const std::function<void(int)>& fn) {
  const int W = num_workers();
  for (;;) {
    int task = -1;
    {
      Worker& own = *workers_[id];
      std::lock_guard<std::mutex> lock(own.mu);
      if (own.gen == gen && !own.queue.empty()) {
        task = own.queue.front();
        own.queue.pop_front();
      }
    }
    if (task < 0) {
      // Steal from the back of victims in fixed id order.
      for (int d = 1; d < W && task < 0; ++d) {
        Worker& victim = *workers_[(id + d) % W];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (victim.gen == gen && !victim.queue.empty()) {
          task = victim.queue.back();
          victim.queue.pop_back();
          steals_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (task < 0) return;
    fn(task);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
}

}  // namespace kairos::util
