// ASCII table / CSV rendering for bench output. Every bench binary prints
// the rows or series of one of the paper's tables/figures through this.
#ifndef KAIROS_UTIL_TABLE_H_
#define KAIROS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace kairos::util {

/// A simple column-aligned text table.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row of cells (padded/truncated to the header count).
  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns and a header rule.
  std::string ToString() const;

  /// Renders as CSV (no escaping of commas in cells; cells are numeric or
  /// simple identifiers throughout this project).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits = 2);

}  // namespace kairos::util

#endif  // KAIROS_UTIL_TABLE_H_
