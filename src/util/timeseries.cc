#include "util/timeseries.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stats.h"

namespace kairos::util {

TimeSeries::TimeSeries(double interval_seconds, std::vector<double> values)
    : interval_seconds_(interval_seconds), values_(std::move(values)) {
  assert(interval_seconds_ > 0.0);
}

TimeSeries TimeSeries::Constant(double interval_seconds, size_t n, double value) {
  return TimeSeries(interval_seconds, std::vector<double>(n, value));
}

double TimeSeries::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::Mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double TimeSeries::Percentile(double p) const {
  return util::Percentile(values_, p);
}

TimeSeries TimeSeries::Scaled(double factor) const {
  TimeSeries out = *this;
  for (double& v : out.values_) v *= factor;
  return out;
}

TimeSeries TimeSeries::operator+(const TimeSeries& other) const {
  assert(interval_seconds_ == other.interval_seconds_ || empty() || other.empty());
  const size_t n = std::min(values_.size(), other.values_.size());
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = values_[i] + other.values_[i];
  return TimeSeries(empty() ? other.interval_seconds_ : interval_seconds_,
                    std::move(out));
}

void TimeSeries::AccumulateInPlace(const TimeSeries& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  assert(interval_seconds_ == other.interval_seconds_);
  if (other.values_.size() > values_.size()) values_.resize(other.values_.size(), 0.0);
  for (size_t i = 0; i < other.values_.size(); ++i) values_[i] += other.values_[i];
}

TimeSeries TimeSeries::Resampled(double new_interval) const {
  if (empty() || new_interval == interval_seconds_) return *this;
  assert(new_interval > interval_seconds_);
  const size_t bucket = static_cast<size_t>(std::llround(new_interval / interval_seconds_));
  assert(bucket >= 1);
  std::vector<double> out;
  out.reserve(values_.size() / bucket + 1);
  for (size_t i = 0; i < values_.size(); i += bucket) {
    double s = 0.0;
    size_t n = 0;
    for (size_t j = i; j < std::min(i + bucket, values_.size()); ++j, ++n) s += values_[j];
    out.push_back(s / static_cast<double>(n));
  }
  return TimeSeries(new_interval, std::move(out));
}

TimeSeries TimeSeries::Map(const std::function<double(double)>& fn) const {
  TimeSeries out = *this;
  for (double& v : out.values_) v = fn(v);
  return out;
}

TimeSeries SumSeries(const std::vector<TimeSeries>& series) {
  TimeSeries acc;
  for (const auto& s : series) acc.AccumulateInPlace(s);
  return acc;
}

}  // namespace kairos::util
