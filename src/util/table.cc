#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace kairos::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace kairos::util
