#include "util/polyfit.h"

#include <cassert>
#include <cmath>

namespace kairos::util {

bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, size_t n,
                       std::vector<double>* x) {
  assert(a.size() == n * n && b.size() == n);
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= a[ri * n + c] * (*x)[c];
    (*x)[ri] = s / a[ri * n + ri];
  }
  return true;
}

namespace {

// Weighted normal equations: (X^T W X) beta = X^T W y.
bool WeightedLeastSquares(const std::vector<double>& x, const std::vector<double>& y,
                          const std::vector<double>& w, size_t k,
                          std::vector<double>* beta) {
  const size_t n = y.size();
  std::vector<double> xtx(k * k, 0.0);
  std::vector<double> xty(k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double wi = w.empty() ? 1.0 : w[i];
    const double* row = &x[i * k];
    for (size_t a = 0; a < k; ++a) {
      xty[a] += wi * row[a] * y[i];
      for (size_t b = a; b < k; ++b) xtx[a * k + b] += wi * row[a] * row[b];
    }
  }
  for (size_t a = 0; a < k; ++a)
    for (size_t b = 0; b < a; ++b) xtx[a * k + b] = xtx[b * k + a];
  return SolveLinearSystem(std::move(xtx), std::move(xty), k, beta);
}

}  // namespace

bool LeastSquares(const std::vector<double>& x, const std::vector<double>& y,
                  size_t num_features, std::vector<double>* beta) {
  return WeightedLeastSquares(x, y, {}, num_features, beta);
}

bool LeastAbsoluteResiduals(const std::vector<double>& x, const std::vector<double>& y,
                            size_t num_features, std::vector<double>* beta,
                            int iterations) {
  if (!LeastSquares(x, y, num_features, beta)) return false;
  const size_t n = y.size();
  std::vector<double> w(n, 1.0);
  for (int it = 0; it < iterations; ++it) {
    // Weights 1/|r| turn the L2 objective into an L1 objective at the fixed
    // point; epsilon keeps the weights bounded.
    for (size_t i = 0; i < n; ++i) {
      double pred = 0.0;
      for (size_t a = 0; a < num_features; ++a) pred += x[i * num_features + a] * (*beta)[a];
      const double r = std::fabs(y[i] - pred);
      w[i] = 1.0 / std::max(r, 1e-6);
    }
    std::vector<double> next;
    if (!WeightedLeastSquares(x, y, w, num_features, &next)) return true;  // keep last
    *beta = std::move(next);
  }
  return true;
}

Poly2D::Poly2D(std::vector<double> coeff) : coeff_(std::move(coeff)) {
  assert(coeff_.size() == 6);
}

double Poly2D::Eval(double u, double v) const {
  return coeff_[0] + coeff_[1] * u + coeff_[2] * v + coeff_[3] * u * u +
         coeff_[4] * u * v + coeff_[5] * v * v;
}

namespace {

std::vector<double> DesignMatrix2D(const std::vector<double>& u,
                                   const std::vector<double>& v) {
  std::vector<double> x;
  x.reserve(u.size() * 6);
  for (size_t i = 0; i < u.size(); ++i) {
    x.push_back(1.0);
    x.push_back(u[i]);
    x.push_back(v[i]);
    x.push_back(u[i] * u[i]);
    x.push_back(u[i] * v[i]);
    x.push_back(v[i] * v[i]);
  }
  return x;
}

}  // namespace

bool Poly2D::FitLeastSquares(const std::vector<double>& u, const std::vector<double>& v,
                             const std::vector<double>& y, Poly2D* out) {
  assert(u.size() == v.size() && u.size() == y.size());
  std::vector<double> beta;
  if (!LeastSquares(DesignMatrix2D(u, v), y, 6, &beta)) return false;
  *out = Poly2D(std::move(beta));
  return true;
}

bool Poly2D::FitLar(const std::vector<double>& u, const std::vector<double>& v,
                    const std::vector<double>& y, Poly2D* out) {
  assert(u.size() == v.size() && u.size() == y.size());
  std::vector<double> beta;
  if (!LeastAbsoluteResiduals(DesignMatrix2D(u, v), y, 6, &beta)) return false;
  *out = Poly2D(std::move(beta));
  return true;
}

Poly1D::Poly1D(std::vector<double> coeff) : coeff_(std::move(coeff)) {
  assert(coeff_.size() == 3);
}

double Poly1D::Eval(double u) const {
  return coeff_[0] + coeff_[1] * u + coeff_[2] * u * u;
}

bool Poly1D::Fit(const std::vector<double>& u, const std::vector<double>& y, Poly1D* out) {
  assert(u.size() == y.size());
  std::vector<double> x;
  x.reserve(u.size() * 3);
  for (double ui : u) {
    x.push_back(1.0);
    x.push_back(ui);
    x.push_back(ui * ui);
  }
  std::vector<double> beta;
  if (!LeastSquares(x, y, 3, &beta)) return false;
  *out = Poly1D(std::move(beta));
  return true;
}

}  // namespace kairos::util
