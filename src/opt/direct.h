// DIRECT (DIviding RECTangles) global optimization, after D. R. Jones —
// the general-purpose global solver the paper uses (via Tomlab) for the
// mixed-integer nonlinear consolidation program. This implementation works
// on the unit hypercube [0,1]^n; the consolidation engine encodes each
// (workload, replica) slot as one dimension mapped onto server indices.
//
// The epsilon parameter is DIRECT's local/global search balance knob that
// Section 6 discusses: larger epsilon biases toward large rectangles
// (global exploration), smaller epsilon polishes around the incumbent.
#ifndef KAIROS_OPT_DIRECT_H_
#define KAIROS_OPT_DIRECT_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace kairos::opt {

/// Budget and behaviour knobs for one Minimize() call.
struct DirectOptions {
  int max_evaluations = 5000;
  int max_iterations = 1000;
  /// Potentially-optimal filter: required improvement over the incumbent,
  /// relative (Jones' epsilon). Larger = more global.
  double epsilon = 1e-4;
  /// Stop early when the incumbent reaches this value (e.g., a known
  /// feasibility threshold during the binary search on server count).
  double target_value = -1e300;
};

/// Result of a DIRECT run.
struct DirectResult {
  std::vector<double> x;     ///< Best point found (in [0,1]^n).
  double fx = 0;             ///< Objective at x.
  int evaluations = 0;
  int iterations = 0;
  bool hit_target = false;   ///< Stopped because target_value was reached.
};

/// The optimizer. Stateless between Minimize() calls.
class DirectOptimizer {
 public:
  using Objective = std::function<double(const std::vector<double>&)>;

  /// Minimizes `f` over [0,1]^dims.
  DirectResult Minimize(const Objective& f, int dims, const DirectOptions& options) const;
};

}  // namespace kairos::opt

#endif  // KAIROS_OPT_DIRECT_H_
