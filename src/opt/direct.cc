#include "opt/direct.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

namespace kairos::opt {

namespace {

/// One hyperrectangle: its center, value, and per-dimension trisection
/// depth (side length in dim i is 3^-levels[i]).
struct Rect {
  std::vector<double> center;
  std::vector<uint16_t> levels;
  double f = 0;
  double diameter = 0;
};

double Diameter(const std::vector<uint16_t>& levels) {
  double s = 0;
  for (uint16_t l : levels) {
    const double side = std::pow(3.0, -static_cast<double>(l));
    s += side * side;
  }
  return 0.5 * std::sqrt(s);
}

}  // namespace

DirectResult DirectOptimizer::Minimize(const Objective& f, int dims,
                                       const DirectOptions& options) const {
  DirectResult result;
  if (dims <= 0) return result;

  std::vector<Rect> rects;
  Rect root;
  root.center.assign(dims, 0.5);
  root.levels.assign(dims, 0);
  root.f = f(root.center);
  root.diameter = Diameter(root.levels);
  result.evaluations = 1;
  result.x = root.center;
  result.fx = root.f;
  rects.push_back(std::move(root));

  auto consider = [&](const std::vector<double>& x, double fx) {
    if (fx < result.fx) {
      result.fx = fx;
      result.x = x;
    }
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (result.evaluations >= options.max_evaluations) break;
    if (result.fx <= options.target_value) {
      result.hit_target = true;
      break;
    }
    result.iterations = iter + 1;

    // Group rectangles by diameter; keep the best rect per group.
    std::map<double, size_t> best_per_diameter;  // diameter -> index
    for (size_t i = 0; i < rects.size(); ++i) {
      auto [it, inserted] = best_per_diameter.try_emplace(rects[i].diameter, i);
      if (!inserted && rects[i].f < rects[it->second].f) it->second = i;
    }

    // Candidate (d, fmin) points in ascending diameter order.
    std::vector<std::pair<double, size_t>> groups(best_per_diameter.begin(),
                                                  best_per_diameter.end());

    // Potentially-optimal selection (Jones' two conditions).
    std::vector<size_t> selected;
    const double fbest = result.fx;
    for (size_t g = 0; g < groups.size(); ++g) {
      const double dj = groups[g].first;
      const double fj = rects[groups[g].second].f;
      double k_lo = 0.0;
      double k_hi = std::numeric_limits<double>::infinity();
      bool dominated = false;
      for (size_t h = 0; h < groups.size(); ++h) {
        if (h == g) continue;
        const double di = groups[h].first;
        const double fi = rects[groups[h].second].f;
        if (di < dj) {
          k_lo = std::max(k_lo, (fj - fi) / (dj - di));
        } else if (di > dj) {
          k_hi = std::min(k_hi, (fi - fj) / (di - dj));
        } else if (fi < fj) {
          dominated = true;
        }
      }
      if (dominated || k_lo > k_hi) continue;
      // Nontrivial improvement condition with the most favorable K.
      const double k = std::min(k_hi, 1e300);
      const double threshold =
          fbest - options.epsilon * std::max(std::fabs(fbest), 1e-12);
      if (std::isfinite(k)) {
        if (fj - k * dj > threshold) continue;
      }
      selected.push_back(groups[g].second);
    }
    if (selected.empty()) {
      // Numerical corner: always divide the largest rectangle.
      selected.push_back(groups.back().second);
    }

    // Divide each selected rectangle along its longest dimensions.
    for (size_t idx : selected) {
      if (result.evaluations >= options.max_evaluations) break;
      // Copy: rects will be appended to (iterator invalidation).
      Rect parent = rects[idx];

      uint16_t min_level = std::numeric_limits<uint16_t>::max();
      for (uint16_t l : parent.levels) min_level = std::min(min_level, l);
      std::vector<int> long_dims;
      for (int d = 0; d < dims; ++d) {
        if (parent.levels[d] == min_level) long_dims.push_back(d);
      }
      const double delta = std::pow(3.0, -static_cast<double>(min_level) - 1.0);

      // Sample c +/- delta e_d for each long dimension.
      struct Probe {
        int dim;
        double f_plus, f_minus, w;
        std::vector<double> x_plus, x_minus;
      };
      std::vector<Probe> probes;
      for (int d : long_dims) {
        if (result.evaluations + 2 > options.max_evaluations) break;
        Probe p;
        p.dim = d;
        p.x_plus = parent.center;
        p.x_plus[d] += delta;
        p.x_minus = parent.center;
        p.x_minus[d] -= delta;
        p.f_plus = f(p.x_plus);
        p.f_minus = f(p.x_minus);
        result.evaluations += 2;
        consider(p.x_plus, p.f_plus);
        consider(p.x_minus, p.f_minus);
        p.w = std::min(p.f_plus, p.f_minus);
        probes.push_back(std::move(p));
      }
      if (probes.empty()) continue;
      std::sort(probes.begin(), probes.end(),
                [](const Probe& a, const Probe& b) { return a.w < b.w; });

      // Trisect best-w dimension first (Jones' division order). Work on the
      // local copy: push_back below may reallocate `rects`.
      for (const Probe& p : probes) {
        parent.levels[p.dim] += 1;
        Rect plus;
        plus.center = p.x_plus;
        plus.levels = parent.levels;
        plus.f = p.f_plus;
        plus.diameter = Diameter(plus.levels);
        Rect minus;
        minus.center = p.x_minus;
        minus.levels = parent.levels;
        minus.f = p.f_minus;
        minus.diameter = Diameter(minus.levels);
        rects.push_back(std::move(plus));
        rects.push_back(std::move(minus));
      }
      parent.diameter = Diameter(parent.levels);
      rects[idx] = std::move(parent);
    }
  }
  return result;
}

}  // namespace kairos::opt
