// Experiment driver for the virtualization comparisons (Figures 10-11):
// runs one workload per tenant database on a MultiInstanceServer and
// records total and per-database throughput.
#ifndef KAIROS_VM_VM_DRIVER_H_
#define KAIROS_VM_VM_DRIVER_H_

#include <memory>
#include <vector>

#include "util/rng.h"
#include "util/timeseries.h"
#include "vm/multi_instance.h"
#include "workload/workload.h"

namespace kairos::vm {

/// Results of one run.
struct VmRunResult {
  util::TimeSeries total_tps;             ///< Aggregate completed tx/sec.
  std::vector<double> per_db_mean_tps;    ///< Mean per tenant.
  double mean_total_tps = 0;
  double mean_latency_ms = 0;
};

/// Drives one workload per tenant database.
class VmDriver {
 public:
  VmDriver(MultiInstanceServer* server, uint64_t seed, double tick_seconds = 0.1);

  /// Attaches `w` to tenant `i`'s database.
  void AttachWorkload(int i, workload::Workload* w);

  /// Pre-faults working sets (bounded by each instance's pool).
  void Warm();

  /// Runs for `seconds`, sampling every `sample_window_s`.
  VmRunResult Run(double seconds, double sample_window_s = 1.0);

 private:
  MultiInstanceServer* server_;
  util::Rng rng_;
  double tick_seconds_;
  std::vector<workload::Workload*> workloads_;  // index = tenant
};

}  // namespace kairos::vm

#endif  // KAIROS_VM_VM_DRIVER_H_
