// The consolidation baselines of Section 7.4:
//  * hardware virtualization (VMware-style): one VM per database, each with
//    its own OS image and DBMS instance, hypervisor CPU tax;
//  * OS virtualization (containers / separate processes): one DBMS process
//    per database on a shared kernel;
//  * consolidated DBMS (Kairos): one instance hosting all databases.
// All three run on one simulated machine sharing a single disk; the
// baselines lose the single coordinated log stream and sorted write-back,
// which the shared-disk interleaving costs capture.
#ifndef KAIROS_VM_MULTI_INSTANCE_H_
#define KAIROS_VM_MULTI_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "db/dbms.h"
#include "sim/disk.h"
#include "sim/machine.h"

namespace kairos::vm {

/// Deployment style.
enum class VirtKind { kHardwareVm, kOsVirt, kConsolidatedDbms };

/// Name for reports.
std::string VirtKindName(VirtKind kind);

/// Configuration of one multi-instance machine.
struct MultiInstanceConfig {
  sim::MachineSpec machine = sim::MachineSpec::Server1();
  VirtKind kind = VirtKind::kHardwareVm;
  /// Number of databases to host (= instances for the VM kinds; tenant
  /// databases of the single instance for kConsolidatedDbms).
  int databases = 1;
  /// Template DBMS configuration; buffer pool sizes are derived from the
  /// machine RAM and the deployment style.
  db::DbmsConfig dbms;
  /// Hypervisor CPU overhead (hardware VMs only).
  double hypervisor_cpu_tax = 0.12;
};

/// One machine hosting N instances (or one consolidated instance).
class MultiInstanceServer {
 public:
  MultiInstanceServer(const MultiInstanceConfig& config, uint64_t seed);

  /// Number of DBMS instances (1 for kConsolidatedDbms).
  int num_instances() const { return static_cast<int>(instances_.size()); }
  db::Dbms& instance(int i) { return *instances_[i]; }

  /// The database for logical tenant `i` (on its own instance for the VM
  /// kinds, on the shared instance otherwise).
  db::Database* database(int i) { return databases_[i]; }
  /// The instance hosting tenant `i`.
  db::Dbms& instance_of(int i);

  const MultiInstanceConfig& config() const { return config_; }
  sim::Disk& disk() { return disk_; }
  double now() const { return now_; }

  /// Aggregated per-tick outcome.
  struct TickReport {
    std::vector<db::InstanceTickReport> instances;
    double disk_utilization = 0;
    double cpu_demand_cores = 0;
    int64_t TotalCompleted() const;
  };

  /// Closes one tick across all instances sharing CPU and disk.
  TickReport Tick(double tick_seconds);

  /// Buffer pool bytes granted to each instance (diagnostic).
  uint64_t pool_bytes_per_instance() const { return pool_bytes_per_instance_; }

 private:
  MultiInstanceConfig config_;
  sim::Disk disk_;
  std::vector<std::unique_ptr<db::Dbms>> instances_;
  std::vector<db::Database*> databases_;
  uint64_t pool_bytes_per_instance_ = 0;
  double now_ = 0;
};

}  // namespace kairos::vm

#endif  // KAIROS_VM_MULTI_INSTANCE_H_
