#include "vm/vm_driver.h"

#include <cmath>

namespace kairos::vm {

VmDriver::VmDriver(MultiInstanceServer* server, uint64_t seed, double tick_seconds)
    : server_(server), rng_(seed), tick_seconds_(tick_seconds) {
  workloads_.resize(server->config().databases, nullptr);
}

void VmDriver::AttachWorkload(int i, workload::Workload* w) {
  w->Attach(server_->database(i));
  workloads_[i] = w;
}

void VmDriver::Warm() {
  for (auto* w : workloads_) {
    if (w != nullptr) w->Warm();
  }
  // Close one tick to absorb the bulk faults, then drop the one-off device
  // demand (see workload::Driver::Warm).
  server_->Tick(tick_seconds_);
  server_->disk().Reset();
  for (auto* w : workloads_) {
    if (w != nullptr) w->database()->TakeWindow();
  }
}

VmRunResult VmDriver::Run(double seconds, double sample_window_s) {
  VmRunResult result;
  const size_t n = workloads_.size();
  std::vector<int64_t> window_completed_per_db(n, 0);
  std::vector<int64_t> total_completed_per_db(n, 0);
  double latency_weighted = 0;
  int64_t latency_count = 0;

  std::vector<double> total_series;
  int64_t window_completed = 0;
  double window_elapsed = 0;

  const int ticks = static_cast<int>(std::llround(seconds / tick_seconds_));
  for (int tick = 0; tick < ticks; ++tick) {
    const double t = server_->now();
    for (size_t i = 0; i < n; ++i) {
      if (workloads_[i] == nullptr) continue;
      db::TxBatch batch = workloads_[i]->MakeBatch(t, tick_seconds_, rng_);
      server_->instance_of(static_cast<int>(i))
          .Submit(workloads_[i]->database(), batch);
    }
    const MultiInstanceServer::TickReport report = server_->Tick(tick_seconds_);
    for (const auto& inst : report.instances) {
      for (const auto& per_db : inst.per_db) {
        for (size_t i = 0; i < n; ++i) {
          if (workloads_[i] != nullptr && workloads_[i]->database() == per_db.db) {
            window_completed_per_db[i] += per_db.completed;
            total_completed_per_db[i] += per_db.completed;
            window_completed += per_db.completed;
            latency_weighted += per_db.avg_latency_ms *
                                static_cast<double>(per_db.completed);
            latency_count += per_db.completed;
            break;
          }
        }
      }
    }
    window_elapsed += tick_seconds_;
    if (window_elapsed + 1e-9 >= sample_window_s || tick == ticks - 1) {
      total_series.push_back(static_cast<double>(window_completed) / window_elapsed);
      window_completed = 0;
      window_elapsed = 0;
      std::fill(window_completed_per_db.begin(), window_completed_per_db.end(), 0);
    }
  }

  result.total_tps = util::TimeSeries(sample_window_s, std::move(total_series));
  result.mean_total_tps = result.total_tps.Mean();
  result.per_db_mean_tps.resize(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    result.per_db_mean_tps[i] =
        static_cast<double>(total_completed_per_db[i]) / seconds;
  }
  result.mean_latency_ms =
      latency_count > 0 ? latency_weighted / static_cast<double>(latency_count) : 0.0;
  return result;
}

}  // namespace kairos::vm
