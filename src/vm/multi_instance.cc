#include "vm/multi_instance.h"

#include <algorithm>
#include <string>

namespace kairos::vm {

std::string VirtKindName(VirtKind kind) {
  switch (kind) {
    case VirtKind::kHardwareVm:
      return "hardware-vm";
    case VirtKind::kOsVirt:
      return "os-virtualization";
    case VirtKind::kConsolidatedDbms:
      return "consolidated-dbms";
  }
  return "?";
}

int64_t MultiInstanceServer::TickReport::TotalCompleted() const {
  int64_t total = 0;
  for (const auto& r : instances) total += r.TotalCompleted();
  return total;
}

MultiInstanceServer::MultiInstanceServer(const MultiInstanceConfig& config,
                                         uint64_t seed)
    : config_(config), disk_(config.machine.disk) {
  const int n = std::max(1, config_.databases);
  const uint64_t machine_ram = config_.machine.ram_bytes;
  const uint64_t dbms_overhead = config_.dbms.dbms_ram_overhead_bytes;
  const uint64_t os_overhead = config_.dbms.os_ram_overhead_bytes;

  auto pool_of = [](uint64_t total, uint64_t overhead) {
    return total > overhead ? total - overhead : (64ULL << 20);
  };

  switch (config_.kind) {
    case VirtKind::kHardwareVm: {
      // Each VM carries a full OS image plus its own DBMS process.
      const uint64_t per_vm = machine_ram / static_cast<uint64_t>(n);
      pool_bytes_per_instance_ = pool_of(per_vm, dbms_overhead + os_overhead);
      for (int i = 0; i < n; ++i) {
        db::DbmsConfig c = config_.dbms;
        c.buffer_pool_bytes = pool_bytes_per_instance_;
        instances_.push_back(
            std::make_unique<db::Dbms>(c, &disk_, seed + 100 + i, /*stream_id=*/i));
        databases_.push_back(instances_.back()->CreateDatabase(
            "db" + std::to_string(i)));
      }
      break;
    }
    case VirtKind::kOsVirt: {
      // One shared kernel; each database still runs its own DBMS process.
      const uint64_t usable =
          machine_ram > os_overhead ? machine_ram - os_overhead : machine_ram;
      const uint64_t per_proc = usable / static_cast<uint64_t>(n);
      pool_bytes_per_instance_ = pool_of(per_proc, dbms_overhead);
      for (int i = 0; i < n; ++i) {
        db::DbmsConfig c = config_.dbms;
        c.buffer_pool_bytes = pool_bytes_per_instance_;
        instances_.push_back(
            std::make_unique<db::Dbms>(c, &disk_, seed + 100 + i, /*stream_id=*/i));
        databases_.push_back(instances_.back()->CreateDatabase(
            "db" + std::to_string(i)));
      }
      break;
    }
    case VirtKind::kConsolidatedDbms: {
      // One instance hosting all tenants with the whole machine's RAM.
      pool_bytes_per_instance_ =
          pool_of(machine_ram, dbms_overhead + os_overhead);
      db::DbmsConfig c = config_.dbms;
      c.buffer_pool_bytes = pool_bytes_per_instance_;
      instances_.push_back(std::make_unique<db::Dbms>(c, &disk_, seed + 100, 0));
      for (int i = 0; i < n; ++i) {
        databases_.push_back(
            instances_[0]->CreateDatabase("db" + std::to_string(i)));
      }
      break;
    }
  }
}

db::Dbms& MultiInstanceServer::instance_of(int i) {
  if (config_.kind == VirtKind::kConsolidatedDbms) return *instances_[0];
  return *instances_[i];
}

MultiInstanceServer::TickReport MultiInstanceServer::Tick(double tick_seconds) {
  TickReport report;

  // Phase 1: every instance prepares its I/O against the shared disk.
  double mandatory = 0;
  double cpu_demand = 0;
  int active_streams = 0;
  int64_t batched_ops = 0;
  for (auto& inst : instances_) {
    inst->PrepareTick(tick_seconds);
    mandatory += inst->last_mandatory_disk_seconds();
    cpu_demand += inst->last_cpu_demand_core_s();
    if (inst->last_disk_seconds() > 0) {
      ++active_streams;
      batched_ops += inst->last_log_fsyncs() + (inst->last_pages_flushed() > 0 ? 1 : 0);
    }
  }

  // Cross-stream interleaving: independent log streams and flushers force
  // head movement between file regions (the coordination the consolidated
  // DBMS preserves and the VM baselines lose).
  const double interleave = disk_.InterleaveCost(active_streams, batched_ops);
  if (interleave > 0) {
    disk_.Submit(interleave);
    mandatory += interleave;
  }

  const sim::Disk::TickStats disk_stats = disk_.EndTick(tick_seconds);
  report.disk_utilization = disk_stats.utilization;
  report.cpu_demand_cores = cpu_demand / tick_seconds;

  // Phase 2: proportional CPU sharing (every instance sees the same
  // machine-wide pressure), with the hypervisor tax for hardware VMs.
  const double tax =
      config_.kind == VirtKind::kHardwareVm ? 1.0 + config_.hypervisor_cpu_tax : 1.0;
  const double capacity = config_.machine.StandardCores() / tax;
  const double disk_pressure = mandatory / tick_seconds;
  for (auto& inst : instances_) {
    const double share =
        cpu_demand > 0 ? inst->last_cpu_demand_core_s() / cpu_demand : 1.0;
    const double allotted = std::max(1e-9, capacity * share);
    report.instances.push_back(
        inst->FinalizeTick(tick_seconds, allotted, disk_pressure));
  }
  now_ += tick_seconds;
  return report;
}

}  // namespace kairos::vm
