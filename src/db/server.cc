#include "db/server.h"

namespace kairos::db {

Server::Server(const sim::MachineSpec& machine, const DbmsConfig& config, uint64_t seed)
    : machine_(machine), disk_(machine.disk) {
  dbms_ = std::make_unique<Dbms>(config, &disk_, seed);
}

InstanceTickReport Server::Tick(double tick_seconds) {
  dbms_->PrepareTick(tick_seconds);
  const double disk_pressure =
      dbms_->last_mandatory_disk_seconds() / tick_seconds;
  const sim::Disk::TickStats disk_stats = disk_.EndTick(tick_seconds);
  last_disk_utilization_ = disk_stats.utilization;
  InstanceTickReport report =
      dbms_->FinalizeTick(tick_seconds, machine_.StandardCores(), disk_pressure);
  now_ += tick_seconds;
  return report;
}

}  // namespace kairos::db
