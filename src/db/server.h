// A simulated physical server running exactly one DBMS instance — the
// deployment model Kairos consolidates onto (one instance, many tenant
// databases). The VM baselines (many instances per machine) live in
// kairos::vm.
#ifndef KAIROS_DB_SERVER_H_
#define KAIROS_DB_SERVER_H_

#include <cstdint>
#include <memory>

#include "db/dbms.h"
#include "sim/disk.h"
#include "sim/machine.h"

namespace kairos::db {

/// Machine + disk + one DBMS instance, with a simple tick driver.
class Server {
 public:
  Server(const sim::MachineSpec& machine, const DbmsConfig& config, uint64_t seed);

  const sim::MachineSpec& machine() const { return machine_; }
  Dbms& dbms() { return *dbms_; }
  const Dbms& dbms() const { return *dbms_; }
  sim::Disk& disk() { return disk_; }

  /// Simulation time elapsed (seconds).
  double now() const { return now_; }

  /// Closes one tick: the DBMS prepares its I/O, the disk services it, and
  /// completions are finalized against this machine's full CPU capacity.
  InstanceTickReport Tick(double tick_seconds);

  /// Disk utilization of the last tick.
  double last_disk_utilization() const { return last_disk_utilization_; }

 private:
  sim::MachineSpec machine_;
  sim::Disk disk_;
  std::unique_ptr<Dbms> dbms_;
  double now_ = 0.0;
  double last_disk_utilization_ = 0.0;
};

}  // namespace kairos::db

#endif  // KAIROS_DB_SERVER_H_
