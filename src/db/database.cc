#include "db/database.h"

#include <algorithm>

#include "db/dbms.h"

namespace kairos::db {

void DbCounters::Accumulate(const DbCounters& other) {
  submitted_tx += other.submitted_tx;
  completed_tx += other.completed_tx;
  dropped_tx += other.dropped_tx;
  physical_reads += other.physical_reads;
  file_cache_hits += other.file_cache_hits;
  read_rows += other.read_rows;
  update_rows += other.update_rows;
  pages_dirtied += other.pages_dirtied;
  log_bytes += other.log_bytes;
  cpu_seconds += other.cpu_seconds;
  latency_weighted_ms += other.latency_weighted_ms;
}

double DbCounters::AvgLatencyMs() const {
  if (completed_tx == 0) return 0.0;
  return latency_weighted_ms / static_cast<double>(completed_tx);
}

Database::Database(Dbms* owner, int id, std::string name)
    : owner_(owner), id_(id), name_(std::move(name)) {}

Region* Database::CreateTable(const std::string& table_name, uint64_t initial_pages,
                              uint64_t reserved_pages) {
  reserved_pages = std::max(reserved_pages, initial_pages);
  Region region;
  region.name = table_name;
  region.start = owner_->AllocatePages(reserved_pages);
  region.pages = initial_pages;
  region.reserved = reserved_pages;
  tables_.push_back(region);
  return &tables_.back();
}

void Database::ExtendTable(Region* region, uint64_t pages) {
  if (region->pages + pages <= region->reserved) {
    region->pages += pages;
    return;
  }
  // Reservation exhausted: allocate a fresh, larger contiguous region and
  // treat it as the table moving (simulated page space is free, and nothing
  // holds raw page ids across ticks except the buffer pool, which simply
  // re-faults the new range).
  const uint64_t new_reserved = std::max(region->reserved * 2, region->pages + pages);
  region->start = owner_->AllocatePages(new_reserved);
  region->reserved = new_reserved;
  region->pages += pages;
}

Region* Database::FindTable(const std::string& table_name) {
  for (auto& t : tables_) {
    if (t.name == table_name) return &t;
  }
  return nullptr;
}

uint64_t Database::TotalPages() const {
  uint64_t total = 0;
  for (const auto& t : tables_) total += t.pages;
  return total;
}

DbCounters Database::TakeWindow() {
  DbCounters w = window_;
  window_ = DbCounters();
  return w;
}

}  // namespace kairos::db
