// The DBMS buffer pool: strict LRU with dirty-page tracking.
//
// Central behaviours the paper relies on:
//  * the pool fills with pages and stays full (OS sees everything "active"),
//  * a page already dirty absorbs further updates at zero extra write-back
//    cost (update coalescing -> the nonlinear disk model of Section 4),
//  * evictions of hot pages cause physical re-reads (-> buffer pool gauging).
#ifndef KAIROS_DB_BUFFER_POOL_H_
#define KAIROS_DB_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <set>
#include <unordered_map>
#include <vector>

#include "db/page.h"

namespace kairos::db {

/// Outcome of touching one page in the pool.
struct TouchResult {
  bool hit = false;           ///< Page was already resident.
  bool newly_dirty = false;   ///< Page transitioned clean->dirty.
  bool evicted = false;       ///< Another page was evicted to make room.
  bool evicted_dirty = false; ///< The evicted page was dirty (forced write).
  PageId evicted_page = 0;    ///< Which page was evicted (valid if evicted).
};

/// Strict-LRU buffer pool with a sorted dirty set for elevator write-back.
class BufferPool {
 public:
  /// Creates a pool holding at most `capacity_pages` pages.
  explicit BufferPool(uint64_t capacity_pages);

  /// Touches `page`, optionally dirtying it. Faults it in on miss, evicting
  /// the LRU page when full.
  TouchResult Touch(PageId page, bool dirty);

  /// True if the page is resident.
  bool Contains(PageId page) const { return map_.find(page) != map_.end(); }

  /// True if the page is resident and dirty.
  bool IsDirty(PageId page) const { return dirty_.count(page) > 0; }

  /// Marks a resident page clean (after write-back).
  void MarkClean(PageId page);

  /// Drops a page from the pool (e.g., table dropped). No write-back.
  void Evict(PageId page);

  /// Resident pages.
  uint64_t size() const { return map_.size(); }
  /// Capacity in pages.
  uint64_t capacity() const { return capacity_pages_; }
  /// Number of dirty resident pages.
  uint64_t dirty_count() const { return dirty_.size(); }
  /// Dirty pages in ascending page-id order (the flusher's elevator order).
  const std::set<PageId>& dirty_pages() const { return dirty_; }
  /// Fraction of the pool that is dirty.
  double DirtyFraction() const;

  /// Cumulative counters.
  uint64_t logical_reads() const { return logical_reads_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t dirty_evictions() const { return dirty_evictions_; }

  /// Buffer pool miss ratio over the whole lifetime (misses / logical reads).
  double MissRatio() const;

  /// Clears contents and statistics.
  void Reset();

 private:
  struct Node {
    PageId page;
    bool dirty;
  };

  uint64_t capacity_pages_;
  std::list<Node> lru_;  // front = MRU
  std::unordered_map<PageId, std::list<Node>::iterator> map_;
  std::set<PageId> dirty_;

  uint64_t logical_reads_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t dirty_evictions_ = 0;
};

}  // namespace kairos::db

#endif  // KAIROS_DB_BUFFER_POOL_H_
