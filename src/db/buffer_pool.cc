#include "db/buffer_pool.h"

namespace kairos::db {

BufferPool::BufferPool(uint64_t capacity_pages) : capacity_pages_(capacity_pages) {}

TouchResult BufferPool::Touch(PageId page, bool dirty) {
  TouchResult r;
  ++logical_reads_;
  auto it = map_.find(page);
  if (it != map_.end()) {
    r.hit = true;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (dirty && !it->second->dirty) {
      it->second->dirty = true;
      dirty_.insert(page);
      r.newly_dirty = true;
    }
    return r;
  }
  ++misses_;
  // Fault in, evicting if full.
  if (map_.size() >= capacity_pages_ && !lru_.empty()) {
    const Node& victim = lru_.back();
    r.evicted = true;
    r.evicted_page = victim.page;
    r.evicted_dirty = victim.dirty;
    ++evictions_;
    if (victim.dirty) {
      ++dirty_evictions_;
      dirty_.erase(victim.page);
    }
    map_.erase(victim.page);
    lru_.pop_back();
  }
  lru_.push_front(Node{page, dirty});
  map_[page] = lru_.begin();
  if (dirty) {
    dirty_.insert(page);
    r.newly_dirty = true;
  }
  return r;
}

void BufferPool::MarkClean(PageId page) {
  auto it = map_.find(page);
  if (it == map_.end()) return;
  if (it->second->dirty) {
    it->second->dirty = false;
    dirty_.erase(page);
  }
}

void BufferPool::Evict(PageId page) {
  auto it = map_.find(page);
  if (it == map_.end()) return;
  if (it->second->dirty) dirty_.erase(page);
  lru_.erase(it->second);
  map_.erase(it);
}

double BufferPool::DirtyFraction() const {
  if (capacity_pages_ == 0) return 0.0;
  return static_cast<double>(dirty_.size()) / static_cast<double>(capacity_pages_);
}

double BufferPool::MissRatio() const {
  if (logical_reads_ == 0) return 0.0;
  return static_cast<double>(misses_) / static_cast<double>(logical_reads_);
}

void BufferPool::Reset() {
  lru_.clear();
  map_.clear();
  dirty_.clear();
  logical_reads_ = 0;
  misses_ = 0;
  evictions_ = 0;
  dirty_evictions_ = 0;
}

}  // namespace kairos::db
