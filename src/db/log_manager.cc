#include "db/log_manager.h"

#include <algorithm>
#include <cmath>

namespace kairos::db {

LogManager::LogManager(double group_commit_window_ms, uint64_t log_file_bytes)
    : group_commit_window_ms_(group_commit_window_ms), log_file_bytes_(log_file_bytes) {}

void LogManager::Append(int64_t commits, uint64_t bytes) {
  pending_commits_ += commits;
  pending_bytes_ += bytes;
}

LogManager::FlushResult LogManager::FlushTick(double tick_seconds) {
  FlushResult r;
  if (pending_commits_ == 0 && pending_bytes_ == 0) return r;
  const double window_s = group_commit_window_ms_ * 1e-3;
  // At most one group per window elapses in the tick; never more groups
  // than commits.
  const int64_t max_groups =
      window_s > 0 ? std::max<int64_t>(1, static_cast<int64_t>(std::ceil(tick_seconds / window_s)))
                   : pending_commits_;
  r.groups = std::min<int64_t>(pending_commits_, max_groups);
  r.bytes = pending_bytes_;
  // A commit waits on average half the group window for its group to flush.
  r.avg_commit_wait_ms = group_commit_window_ms_ * 0.5;
  total_bytes_ += r.bytes;
  total_groups_ += r.groups;
  bytes_since_checkpoint_ += r.bytes;
  pending_commits_ = 0;
  pending_bytes_ = 0;
  return r;
}

}  // namespace kairos::db
