#include "db/flusher.h"

#include <algorithm>
#include <cmath>

namespace kairos::db {

Flusher::Flusher(const FlusherConfig& config) : config_(config) {}

FlushBatch Flusher::SelectBatch(const BufferPool& pool, double tick_seconds,
                                double disk_utilization, bool checkpoint,
                                double seconds_to_checkpoint) {
  FlushBatch batch;
  const uint64_t dirty = pool.dirty_count();
  if (dirty == 0) return batch;
  const double dirty_d = static_cast<double>(dirty);

  // Background trickle.
  const double background = dirty_d * tick_seconds / config_.flush_interval_s;

  // Fuzzy checkpoint pacing: drain the dirty set before the log fills.
  // This is deadline work — if the device cannot sustain it, the DBMS must
  // throttle transactions.
  double deadline_target = 0.0;
  if (std::isfinite(seconds_to_checkpoint)) {
    const double deadline =
        std::max(tick_seconds, seconds_to_checkpoint * config_.checkpoint_safety);
    deadline_target = dirty_d * tick_seconds / deadline;
  }

  double target = std::max(background, deadline_target);

  // Idle flushing at the configured I/O capacity.
  if (disk_utilization < config_.idle_utilization_threshold) {
    target = std::max(target, config_.idle_io_pages_per_sec * tick_seconds);
  }

  const bool over_watermark = pool.DirtyFraction() > config_.max_dirty_fraction;
  if (checkpoint || over_watermark) {
    target = dirty_d;
    batch.mandatory = true;
    batch.mandatory_fraction = 1.0;
  } else if (target > 0) {
    batch.mandatory_fraction = std::min(1.0, deadline_target / target);
  }

  int64_t count = std::min<int64_t>(static_cast<int64_t>(std::ceil(target)),
                                    config_.max_pages_per_tick);
  count = std::min<int64_t>(count, static_cast<int64_t>(dirty));
  if (count <= 0) return batch;

  // Elevator: continue the sweep from the cursor; stop at the end of the
  // dirty set (the sweep wraps on the next tick).
  const auto& dirty_set = pool.dirty_pages();
  auto it = dirty_set.lower_bound(cursor_);
  if (it == dirty_set.end()) it = dirty_set.begin();
  batch.pages.reserve(static_cast<size_t>(count));
  while (it != dirty_set.end() &&
         static_cast<int64_t>(batch.pages.size()) < count) {
    batch.pages.push_back(*it);
    ++it;
  }
  cursor_ = it == dirty_set.end() ? 0 : *it;
  if (!batch.pages.empty()) {
    batch.span_pages = batch.pages.back() - batch.pages.front() + 1;
  }
  return batch;
}

}  // namespace kairos::db
