// Page identifiers and table regions in the simulated DBMS.
#ifndef KAIROS_DB_PAGE_H_
#define KAIROS_DB_PAGE_H_

#include <cstdint>
#include <string>

namespace kairos::db {

/// Identifier of a fixed-size page in the instance-global page space.
using PageId = uint64_t;

/// Default InnoDB-style page size.
inline constexpr uint64_t kDefaultPageBytes = 16 * 1024;

/// A contiguous run of pages backing one table (plus reserved growth room).
struct Region {
  std::string name;        ///< Table name.
  PageId start = 0;        ///< First page id.
  uint64_t pages = 0;      ///< Pages currently in use.
  uint64_t reserved = 0;   ///< Pages reserved for growth (>= pages).

  /// One past the last in-use page id.
  PageId End() const { return start + pages; }
  /// Bytes currently in use given a page size.
  uint64_t SizeBytes(uint64_t page_bytes) const { return pages * page_bytes; }
};

}  // namespace kairos::db

#endif  // KAIROS_DB_PAGE_H_
