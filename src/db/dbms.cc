#include "db/dbms.h"

#include <algorithm>
#include <cmath>

namespace kairos::db {

int64_t InstanceTickReport::TotalCompleted() const {
  int64_t total = 0;
  for (const auto& d : per_db) total += d.completed;
  return total;
}

Dbms::Dbms(const DbmsConfig& config, sim::Disk* disk, uint64_t seed, int stream_id)
    : config_(config),
      disk_(disk),
      rng_(seed),
      stream_id_(stream_id),
      pool_(config.buffer_pool_bytes / config.page_bytes),
      log_(config.group_commit_window_ms, config.log_file_bytes),
      flusher_(config.flusher) {
  if (config_.os_file_cache_bytes > 0) {
    cache_ = std::make_unique<os::FileCache>(config_.os_file_cache_bytes /
                                             config_.page_bytes);
  }
}

Database* Dbms::CreateDatabase(const std::string& name) {
  databases_.push_back(std::make_unique<Database>(
      this, static_cast<int>(databases_.size()), name));
  database_ptrs_.push_back(databases_.back().get());
  return databases_.back().get();
}

PageId Dbms::AllocatePages(uint64_t pages) {
  const PageId start = next_page_;
  next_page_ += pages;
  return start;
}

Dbms::PendingDb& Dbms::Pending(Database* db) { return pending_[db]; }

void Dbms::TouchPage(PageId page, bool dirty, PendingDb* pd) {
  ++pd->touches;
  const TouchResult r = pool_.Touch(page, dirty);
  if (!r.hit) {
    // Buffer pool miss: maybe served by the OS file cache.
    if (cache_ && cache_->Lookup(page)) {
      ++pd->cache_hits;
    } else {
      ++pd->misses;
      if (cache_) cache_->Insert(page);  // Read path populates the cache.
    }
  }
  if (r.newly_dirty) ++pd->pages_dirtied;
  if (r.evicted_dirty) {
    ++dirty_evictions_tick_;
    if (cache_) cache_->Insert(r.evicted_page);  // Write-back lands in cache.
  }
}

void Dbms::Submit(Database* db, const TxBatch& batch) {
  if (batch.transactions <= 0) return;
  PendingDb& pd = Pending(db);
  const int64_t n = batch.transactions;
  const TxProfile& p = batch.profile;

  int64_t reads = static_cast<int64_t>(std::llround(
      static_cast<double>(n) * p.read_rows * p.pages_per_read));
  int64_t updates = static_cast<int64_t>(std::llround(
      static_cast<double>(n) * p.update_rows * p.pages_per_update));

  // Subsampling guard for extreme rates: simulate a fraction of the touches
  // and scale the counter deltas back up.
  double scale = 1.0;
  const int64_t total_touches = reads + updates;
  if (total_touches > config_.max_touches_per_tick && total_touches > 0) {
    scale = static_cast<double>(total_touches) /
            static_cast<double>(config_.max_touches_per_tick);
    reads = static_cast<int64_t>(static_cast<double>(reads) / scale);
    updates = static_cast<int64_t>(static_cast<double>(updates) / scale);
  }

  PendingDb local;  // Deltas from this batch, scaled at the end.
  if (batch.sampler != nullptr) {
    for (int64_t i = 0; i < reads; ++i) {
      TouchPage(batch.sampler->SampleRead(rng_), false, &local);
    }
    for (int64_t i = 0; i < updates; ++i) {
      TouchPage(batch.sampler->SampleUpdate(rng_), true, &local);
    }
  }

  pd.submitted += n;
  pd.misses += static_cast<int64_t>(std::llround(local.misses * scale));
  pd.cache_hits += static_cast<int64_t>(std::llround(local.cache_hits * scale));
  pd.pages_dirtied += static_cast<int64_t>(std::llround(local.pages_dirtied * scale));
  pd.touches += static_cast<int64_t>(std::llround(local.touches * scale));
  pd.read_rows += static_cast<int64_t>(std::llround(static_cast<double>(n) * p.read_rows));
  pd.update_rows +=
      static_cast<int64_t>(std::llround(static_cast<double>(n) * p.update_rows));
  pd.log_bytes += static_cast<uint64_t>(std::llround(
      static_cast<double>(n) * p.update_rows * p.log_bytes_per_update));
  pd.commits += static_cast<double>(n) * p.commits_per_tx;
  pd.cpu_seconds +=
      static_cast<double>(n) * (p.cpu_us + config_.per_tx_cpu_overhead_us) * 1e-6 +
      static_cast<double>(local.touches) * scale * config_.page_touch_cpu_us * 1e-6;
  pd.profile = p;
  pd.has_profile = true;
}

void Dbms::TouchSequential(Database* db, const Region& region, uint64_t from_page,
                           uint64_t count, bool dirty, double cpu_us_per_page,
                           uint64_t log_bytes_per_page) {
  PendingDb& pd = Pending(db);
  PendingDb local;
  const uint64_t end = std::min(from_page + count, region.pages);
  for (uint64_t i = from_page; i < end; ++i) {
    TouchPage(region.start + i, dirty, &local);
  }
  const uint64_t touched = end > from_page ? end - from_page : 0;
  seq_miss_pages_tick_ += local.misses;
  pd.misses += local.misses;
  pd.cache_hits += local.cache_hits;
  pd.pages_dirtied += local.pages_dirtied;
  pd.touches += local.touches;
  pd.cpu_seconds += static_cast<double>(touched) * cpu_us_per_page * 1e-6;
  if (dirty && log_bytes_per_page > 0) {
    pd.log_bytes += touched * log_bytes_per_page;
    pd.commits += 1.0;  // One bulk transaction for the whole append.
  }
}

void Dbms::AppendPages(Database* db, Region* region, uint64_t pages,
                       double cpu_us_per_page, uint64_t log_bytes_per_page) {
  PendingDb& pd = Pending(db);
  const uint64_t first_new = region->pages;
  db->ExtendTable(region, pages);
  PendingDb local;
  for (uint64_t i = 0; i < pages; ++i) {
    const PageId page = region->start + first_new + i;
    ++local.touches;
    const TouchResult r = pool_.Touch(page, /*dirty=*/true);
    // A fresh page is allocated, not read: suppress the miss-read path, but
    // evictions it causes are real.
    if (r.newly_dirty) ++local.pages_dirtied;
    if (r.evicted_dirty) {
      ++dirty_evictions_tick_;
      if (cache_) cache_->Insert(r.evicted_page);
    }
    if (cache_) cache_->Insert(page);  // The insert write lands in the cache.
  }
  pd.pages_dirtied += local.pages_dirtied;
  pd.touches += local.touches;
  pd.cpu_seconds += static_cast<double>(pages) * cpu_us_per_page * 1e-6;
  if (log_bytes_per_page > 0) {
    pd.log_bytes += pages * log_bytes_per_page;
    pd.commits += 1.0;
  }
}

void Dbms::TruncateTable(Database* db, Region* region) {
  (void)db;
  for (uint64_t i = 0; i < region->pages; ++i) {
    const PageId page = region->start + i;
    pool_.Evict(page);
    if (cache_) cache_->Erase(page);
  }
  region->pages = 0;
}

void Dbms::PrepareTick(double tick_seconds) {
  tick_ = TickState();

  // 1. Log flush (shared sequential stream, group commit across tenants).
  int64_t commits = 0;
  uint64_t log_bytes = 0;
  int64_t misses = 0;
  double cpu = config_.base_cpu_cores * tick_seconds;
  for (auto& [db, pd] : pending_) {
    commits += static_cast<int64_t>(std::llround(pd.commits));
    log_bytes += pd.log_bytes;
    misses += pd.misses;
    cpu += pd.cpu_seconds;
  }
  log_.Append(commits, log_bytes);
  const LogManager::FlushResult fr = log_.FlushTick(tick_seconds);
  const double log_cost = disk_->SeqWriteCost(fr.bytes, static_cast<int>(fr.groups));
  tick_.log_fsyncs = fr.groups;
  tick_.commit_wait_ms = fr.avg_commit_wait_ms;

  // 2. Physical reads from buffer pool misses. Misses from sequential
  // scans stream off the platter; the rest are random point reads.
  const int64_t seq_misses = std::min(seq_miss_pages_tick_, misses);
  const int64_t rand_misses = misses - seq_misses;
  const double read_cost =
      disk_->RandomReadCost(rand_misses, config_.page_bytes) +
      disk_->SeqReadCost(static_cast<uint64_t>(seq_misses) * config_.page_bytes);
  seq_miss_pages_tick_ = 0;
  tick_.pages_read = misses;
  tick_.read_bytes = static_cast<uint64_t>(misses) * config_.page_bytes;

  // 3. Forced single-page writes from dirty evictions.
  const double evict_cost = disk_->RandomWriteCost(dirty_evictions_tick_, config_.page_bytes);
  const uint64_t evict_bytes =
      static_cast<uint64_t>(dirty_evictions_tick_) * config_.page_bytes;

  // 4. Checkpoint trigger + paced background write-back.
  if (log_.CheckpointDue() && !checkpoint_active_) {
    checkpoint_active_ = true;
    checkpoint_remaining_pages_ = static_cast<int64_t>(pool_.dirty_count());
  }
  const double alpha = std::min(1.0, 0.2 * tick_seconds / 0.1);
  log_bytes_per_sec_ema_ =
      (1.0 - alpha) * log_bytes_per_sec_ema_ +
      alpha * static_cast<double>(fr.bytes) / tick_seconds;
  const double seconds_to_checkpoint =
      log_bytes_per_sec_ema_ > 1.0
          ? static_cast<double>(config_.log_file_bytes -
                                std::min(config_.log_file_bytes,
                                         log_.bytes_since_checkpoint())) /
                log_bytes_per_sec_ema_
          : std::numeric_limits<double>::infinity();
  FlushBatch batch =
      flusher_.SelectBatch(pool_, tick_seconds, disk_->last_utilization(),
                           checkpoint_active_, seconds_to_checkpoint);

  auto batch_cost = [&](const FlushBatch& b) {
    if (b.pages.empty()) return 0.0;
    return disk_->SortedWriteCost(static_cast<int64_t>(b.pages.size()),
                                  config_.page_bytes,
                                  b.span_pages * config_.page_bytes);
  };

  // The device time the selected batch NEEDS; its deadline share is
  // mandatory load whether or not the disk can serve it this tick. The
  // stall signal is bounded: fuzzy checkpointing never blocks the world
  // for more than a few ticks at a time.
  const double flush_needed = batch_cost(batch);
  const double mandatory_flush_needed =
      std::min(flush_needed * batch.mandatory_fraction, 3.0 * tick_seconds);

  // Trim the batch to the device capacity actually available this tick so
  // reported write bytes never exceed what the disk can absorb. Mandatory
  // batches may burst up to two ticks worth; unflushed pages stay dirty
  // and keep applying pressure.
  const double other_cost = log_cost + read_cost + evict_cost;
  const double burst = batch.mandatory ? 2.0 : 1.0;
  const double available =
      std::max(0.0, burst * tick_seconds - other_cost - disk_->pending_backlog());
  double flush_cost = flush_needed;
  if (flush_cost > available && !batch.pages.empty()) {
    const double frac = available / flush_cost;
    const size_t keep = static_cast<size_t>(
        static_cast<double>(batch.pages.size()) * frac);
    batch.pages.resize(keep);
    batch.span_pages =
        batch.pages.empty() ? 0 : batch.pages.back() - batch.pages.front() + 1;
    flush_cost = batch_cost(batch);
  }
  for (PageId p : batch.pages) {
    pool_.MarkClean(p);
    if (cache_) cache_->Insert(p);  // Write-back passes through the OS cache.
  }
  if (checkpoint_active_) {
    checkpoint_remaining_pages_ -= static_cast<int64_t>(batch.pages.size());
    if (checkpoint_remaining_pages_ <= 0 || pool_.dirty_count() == 0) {
      log_.CheckpointDone();
      checkpoint_active_ = false;
      checkpoint_remaining_pages_ = 0;
    }
  }
  tick_.mandatory_flush = batch.mandatory;
  tick_.pages_flushed = static_cast<int64_t>(batch.pages.size());

  tick_.write_bytes = fr.bytes + evict_bytes +
                      static_cast<uint64_t>(batch.pages.size()) * config_.page_bytes;
  tick_.disk_seconds = log_cost + read_cost + evict_cost + flush_cost;
  tick_.mandatory_disk_seconds =
      log_cost + read_cost + evict_cost + mandatory_flush_needed;
  tick_.cpu_demand_core_s = cpu;

  disk_->Submit(tick_.disk_seconds);

  total_write_bytes_ += tick_.write_bytes;
  total_read_bytes_ += tick_.read_bytes;
  total_pages_read_ += tick_.pages_read;
  dirty_evictions_tick_ = 0;
}

double Dbms::PageReadLatencyMs() const {
  return disk_->RandomReadCost(1, config_.page_bytes) * 1e3;
}

InstanceTickReport Dbms::FinalizeTick(double tick_seconds, double cpu_cores_allotted,
                                      double machine_disk_pressure) {
  InstanceTickReport report;
  report.cpu_demand_core_s = tick_.cpu_demand_core_s;
  report.disk_seconds = tick_.disk_seconds;
  report.mandatory_disk_seconds = tick_.mandatory_disk_seconds;
  report.write_bytes = tick_.write_bytes;
  report.read_bytes = tick_.read_bytes;
  report.pages_flushed = tick_.pages_flushed;
  report.pages_read = tick_.pages_read;
  report.log_fsyncs = tick_.log_fsyncs;
  report.checkpoint_active = checkpoint_active_;

  const double cpu_capacity = std::max(1e-9, cpu_cores_allotted * tick_seconds);
  const double rho_cpu = tick_.cpu_demand_core_s / cpu_capacity;
  const double rho_disk = machine_disk_pressure;
  const double rho = std::max(rho_cpu, rho_disk);
  report.cpu_utilization = rho_cpu;

  // Sustainable fraction of this tick's offered transactions.
  const double f = rho > 1.0 ? 1.0 / rho : 1.0;
  // When underutilized, backlog can be drained with spare capacity.
  const double catchup = rho < 1.0 ? std::min(1.0 / std::max(rho, 0.05), 2.0) : 1.0;
  // Queueing inflation for latency.
  const double inflation = 1.0 / (1.0 - std::min(rho, 0.98));

  const double read_latency_ms = PageReadLatencyMs();

  for (auto& [db, pd] : pending_) {
    InstanceTickReport::PerDb out;
    out.db = db;
    out.submitted = pd.submitted;

    const double demand =
        db->backlog_tx_ + static_cast<double>(pd.submitted);
    double completed = std::min(demand, static_cast<double>(pd.submitted) * f * catchup);
    if (pd.submitted == 0) completed = std::min(demand, db->backlog_tx_ * f);
    double backlog = demand - completed;
    // Shed load beyond the queue limit (admission control).
    const double queue_limit =
        std::max(1.0, static_cast<double>(pd.submitted) / tick_seconds *
                          config_.max_queue_seconds);
    double dropped = 0;
    if (backlog > queue_limit) {
      dropped = backlog - queue_limit;
      backlog = queue_limit;
    }
    db->backlog_tx_ = backlog;

    // Latency of a completed transaction.
    double latency_ms = 0;
    if (pd.has_profile && pd.submitted > 0) {
      const double n = static_cast<double>(pd.submitted);
      const double cpu_ms_per_tx = pd.cpu_seconds / n * 1e3;
      const double misses_per_tx = static_cast<double>(pd.misses) / n;
      latency_ms = pd.profile.base_latency_ms + cpu_ms_per_tx * inflation +
                   misses_per_tx * read_latency_ms *
                       (1.0 + std::min(rho_disk, 2.0)) +
                   tick_.commit_wait_ms;
      // Waiting time behind the backlog queue.
      if (backlog > 0 && completed > 0) {
        latency_ms += backlog / (completed / tick_seconds) * 1e3;
      }
      if (checkpoint_active_) latency_ms += config_.checkpoint_latency_ms;
    }
    out.completed = static_cast<int64_t>(std::llround(completed));
    out.avg_latency_ms = latency_ms;

    // Roll counters into the database.
    DbCounters delta;
    delta.submitted_tx = pd.submitted;
    delta.completed_tx = out.completed;
    delta.dropped_tx = static_cast<int64_t>(std::llround(dropped));
    delta.physical_reads = pd.misses;
    delta.file_cache_hits = pd.cache_hits;
    delta.read_rows = pd.read_rows;
    delta.update_rows = pd.update_rows;
    delta.pages_dirtied = pd.pages_dirtied;
    delta.log_bytes = pd.log_bytes;
    delta.cpu_seconds = pd.cpu_seconds;
    delta.latency_weighted_ms = latency_ms * completed;
    db->lifetime_.Accumulate(delta);
    db->window_.Accumulate(delta);

    report.per_db.push_back(out);
  }

  pending_.clear();
  return report;
}

uint64_t Dbms::RssBytes() const {
  return pool_.size() * config_.page_bytes + config_.dbms_ram_overhead_bytes;
}

uint64_t Dbms::ActiveBytes() const {
  // The kernel sees every resident buffer-pool page as recently used: the
  // DBMS cycles through them keeping them active.
  return pool_.size() * config_.page_bytes + config_.dbms_ram_overhead_bytes;
}

uint64_t Dbms::FileCacheBytes() const {
  return cache_ ? cache_->size() * config_.page_bytes : 0;
}

}  // namespace kairos::db
