// Cost profile of one transaction class, and the page-access distribution
// interface a workload supplies to the DBMS.
#ifndef KAIROS_DB_TX_PROFILE_H_
#define KAIROS_DB_TX_PROFILE_H_

#include <cstdint>

#include "db/page.h"
#include "util/rng.h"

namespace kairos::db {

/// Average per-transaction costs for one transaction class.
struct TxProfile {
  double cpu_us = 200.0;               ///< Pure CPU work per transaction.
  double read_rows = 10.0;             ///< Row reads per transaction.
  double update_rows = 2.0;            ///< Rows modified per transaction.
  double pages_per_read = 1.0;         ///< Distinct page touches per row read.
  double pages_per_update = 1.0;       ///< Distinct page touches per row update.
  double log_bytes_per_update = 180.0; ///< Redo bytes per modified row.
  double base_latency_ms = 5.0;        ///< Client round-trips, lock waits, etc.
  double commits_per_tx = 1.0;         ///< Commit records per transaction.
};

/// Maps row accesses to pages according to the workload's access skew.
/// Implementations are provided by the workload generators.
class PageSampler {
 public:
  virtual ~PageSampler() = default;
  /// Page touched by a row read.
  virtual PageId SampleRead(util::Rng& rng) = 0;
  /// Page touched by a row update.
  virtual PageId SampleUpdate(util::Rng& rng) = 0;
};

/// One tick's worth of offered transactions for one database.
struct TxBatch {
  int64_t transactions = 0;
  TxProfile profile;
  PageSampler* sampler = nullptr;
};

}  // namespace kairos::db

#endif  // KAIROS_DB_TX_PROFILE_H_
