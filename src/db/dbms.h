// A simulated DBMS instance hosting one or more tenant databases.
//
// The instance advances in fixed ticks. Within a tick, workloads Submit()
// batches of transactions whose row accesses touch buffer-pool pages
// (misses -> physical reads, updates -> dirty pages). Closing the tick is a
// two-phase protocol so several instances can share one disk (the VM
// baselines):
//
//   PrepareTick()  - group-commit log flush, dirty-page write-back
//                    selection, I/O cost computation; submits busy time to
//                    the shared sim::Disk.
//   <owner calls disk->EndTick() and divides CPU among instances>
//   FinalizeTick() - completion throttling, backlog queues, and latency
//                    under the machine-wide CPU/disk pressure.
//
// Single-DBMS-per-machine experiments use db::Server, which wraps the
// protocol for the common case.
#ifndef KAIROS_DB_DBMS_H_
#define KAIROS_DB_DBMS_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/buffer_pool.h"
#include "db/database.h"
#include "db/flusher.h"
#include "db/log_manager.h"
#include "db/page.h"
#include "db/tx_profile.h"
#include "os/file_cache.h"
#include "sim/disk.h"
#include "util/rng.h"
#include "util/units.h"

namespace kairos::db {

/// Static configuration of one DBMS instance.
struct DbmsConfig {
  uint64_t page_bytes = kDefaultPageBytes;
  /// Buffer pool size (InnoDB buffer pool / Postgres shared_buffers).
  uint64_t buffer_pool_bytes = 1 * util::kGiB;
  /// OS file cache available below the DBMS. Zero = O_DIRECT (MySQL-style);
  /// nonzero = PostgreSQL-style double buffering.
  uint64_t os_file_cache_bytes = 0;
  double group_commit_window_ms = 5.0;
  /// Log capacity before a checkpoint (full flush + log reclaim) is forced.
  /// Also drives fuzzy-checkpoint flush pacing: smaller logs force faster
  /// write-back and hence less update coalescing.
  uint64_t log_file_bytes = 128 * util::kMiB;
  FlusherConfig flusher;
  /// Memory the DBMS process needs beyond the buffer pool (~190 MB for
  /// MySQL per the paper).
  uint64_t dbms_ram_overhead_bytes = 190 * util::kMiB;
  /// Memory of the OS image hosting this instance (~64 MB per the paper);
  /// relevant when each database gets its own VM.
  uint64_t os_ram_overhead_bytes = 64 * util::kMiB;
  /// Background CPU (cores) burned by OS + DBMS housekeeping regardless of
  /// load — the per-instance overhead Kairos subtracts when consolidating.
  double base_cpu_cores = 0.04;
  /// Per-transaction connection/parse/plan overhead.
  double per_tx_cpu_overhead_us = 40.0;
  /// CPU cost of one buffer-pool page access.
  double page_touch_cpu_us = 0.8;
  /// Latency added while a checkpoint's mandatory flushing is in progress
  /// (the paper observes ~150 ms spikes during MySQL log reclamation).
  double checkpoint_latency_ms = 120.0;
  /// Offered transactions are shed beyond this many seconds of queue.
  double max_queue_seconds = 2.0;
  /// Simulation guard: page touches per tick above which accesses are
  /// subsampled and rescaled.
  int64_t max_touches_per_tick = 2'000'000;
};

/// Per-instance results of one tick.
struct InstanceTickReport {
  double cpu_demand_core_s = 0;      ///< CPU wanted this tick (core-seconds).
  double cpu_utilization = 0;        ///< Demand / allotted capacity.
  double disk_seconds = 0;           ///< Total device time submitted.
  double mandatory_disk_seconds = 0; ///< Reads + log + forced flushes only.
  uint64_t write_bytes = 0;          ///< Log + write-back bytes.
  uint64_t read_bytes = 0;           ///< Physical read bytes.
  int64_t pages_flushed = 0;
  int64_t pages_read = 0;
  int64_t log_fsyncs = 0;
  bool checkpoint_active = false;

  /// Per-database completions for the tick.
  struct PerDb {
    Database* db = nullptr;
    int64_t submitted = 0;
    int64_t completed = 0;
    double avg_latency_ms = 0;
  };
  std::vector<PerDb> per_db;

  /// Sum of completed transactions across databases.
  int64_t TotalCompleted() const;
};

/// One simulated DBMS instance.
class Dbms {
 public:
  /// `disk` is borrowed (the hosting machine owns it) and may be shared
  /// with other instances. `stream_id` distinguishes instances sharing a
  /// disk for interleaving penalties.
  Dbms(const DbmsConfig& config, sim::Disk* disk, uint64_t seed, int stream_id = 0);

  const DbmsConfig& config() const { return config_; }

  /// Creates a tenant database.
  Database* CreateDatabase(const std::string& name);
  /// All tenant databases.
  const std::vector<Database*>& databases() const { return database_ptrs_; }

  /// Allocates `pages` of contiguous page space (used by Database).
  PageId AllocatePages(uint64_t pages);

  /// Offers a batch of transactions for `db` in the current tick.
  void Submit(Database* db, const TxBatch& batch);

  /// Touches `count` pages of `region` starting at `from_page` (relative to
  /// the region) in sequential order. Used by table scans and the gauging
  /// probe. Dirty touches append `log_bytes_per_page` of log each.
  void TouchSequential(Database* db, const Region& region, uint64_t from_page,
                       uint64_t count, bool dirty, double cpu_us_per_page,
                       uint64_t log_bytes_per_page = 0);

  /// Appends `pages` fresh pages to `region` (growing the table) and faults
  /// them into the buffer pool dirty. Unlike TouchSequential, appends never
  /// cause physical reads (new pages are born in memory). Used by inserts
  /// that grow tables — notably the gauging probe table.
  void AppendPages(Database* db, Region* region, uint64_t pages,
                   double cpu_us_per_page, uint64_t log_bytes_per_page);

  /// Truncates a table: evicts all its pages from the buffer pool and OS
  /// cache, discarding dirty state (dropped data needs no write-back), and
  /// resets the region to zero pages. Used when the gauging probe table is
  /// torn down.
  void TruncateTable(Database* db, Region* region);

  /// Phase 1 of closing a tick; submits I/O busy time to the disk.
  void PrepareTick(double tick_seconds);

  /// Mandatory device seconds (reads + log + forced flushes) computed by the
  /// last PrepareTick(). The hosting machine divides this by the tick length
  /// (summing across instances sharing the disk) to obtain the disk pressure
  /// passed to FinalizeTick().
  double last_mandatory_disk_seconds() const { return tick_.mandatory_disk_seconds; }

  /// Total device seconds submitted by the last PrepareTick().
  double last_disk_seconds() const { return tick_.disk_seconds; }

  /// CPU demand (core-seconds) computed by the last PrepareTick().
  double last_cpu_demand_core_s() const { return tick_.cpu_demand_core_s; }

  /// Log fsyncs issued by the last PrepareTick() (for cross-stream
  /// interleaving accounting on shared disks).
  int64_t last_log_fsyncs() const { return tick_.log_fsyncs; }

  /// Pages written back by the last PrepareTick().
  int64_t last_pages_flushed() const { return tick_.pages_flushed; }

  /// Phase 2: finalize completions and latency.
  /// `cpu_cores_allotted`: CPU capacity this instance may use this tick.
  /// `machine_disk_pressure`: machine-wide mandatory disk demand divided by
  /// the tick length (>1 means mandatory I/O alone over-commits the disk).
  InstanceTickReport FinalizeTick(double tick_seconds, double cpu_cores_allotted,
                                  double machine_disk_pressure);

  /// Resident set size of the DBMS process (buffer pool + process overhead).
  uint64_t RssBytes() const;
  /// Bytes the kernel would report "active" — effectively the whole pool
  /// once warmed (the overestimate that motivates gauging).
  uint64_t ActiveBytes() const;
  /// Bytes held by this instance's OS file cache.
  uint64_t FileCacheBytes() const;

  BufferPool& buffer_pool() { return pool_; }
  const BufferPool& buffer_pool() const { return pool_; }
  LogManager& log_manager() { return log_; }
  os::FileCache* file_cache() { return cache_ ? cache_.get() : nullptr; }
  sim::Disk* disk() { return disk_; }
  int stream_id() const { return stream_id_; }

  /// Cumulative physical I/O (what iostat would charge to this instance).
  uint64_t total_write_bytes() const { return total_write_bytes_; }
  uint64_t total_read_bytes() const { return total_read_bytes_; }
  int64_t total_pages_read() const { return total_pages_read_; }

  /// Expected latency (ms) of one physical page read on the current disk.
  double PageReadLatencyMs() const;

 private:
  struct PendingDb {
    int64_t submitted = 0;
    double cpu_seconds = 0;
    int64_t misses = 0;
    int64_t cache_hits = 0;
    uint64_t log_bytes = 0;
    double commits = 0;
    int64_t read_rows = 0;
    int64_t update_rows = 0;
    int64_t pages_dirtied = 0;
    int64_t touches = 0;
    bool has_profile = false;
    TxProfile profile;
  };

  /// Touches one page through pool + OS cache; updates pending counters.
  void TouchPage(PageId page, bool dirty, PendingDb* pd);

  PendingDb& Pending(Database* db);

  DbmsConfig config_;
  sim::Disk* disk_;
  util::Rng rng_;
  int stream_id_;

  BufferPool pool_;
  std::unique_ptr<os::FileCache> cache_;
  LogManager log_;
  Flusher flusher_;

  PageId next_page_ = 1;
  std::list<std::unique_ptr<Database>> databases_;
  std::vector<Database*> database_ptrs_;

  std::unordered_map<Database*, PendingDb> pending_;
  int64_t dirty_evictions_tick_ = 0;
  // Misses from sequential scans this tick: serviced as sequential reads,
  // not random seeks.
  int64_t seq_miss_pages_tick_ = 0;
  bool checkpoint_active_ = false;
  // Fuzzy checkpoint: only the pages dirty when the checkpoint triggered
  // must be written back before the log is reclaimed.
  int64_t checkpoint_remaining_pages_ = 0;
  double log_bytes_per_sec_ema_ = 0.0;

  // Carried between Prepare and Finalize.
  struct TickState {
    double disk_seconds = 0;
    double mandatory_disk_seconds = 0;
    uint64_t write_bytes = 0;
    uint64_t read_bytes = 0;
    int64_t pages_flushed = 0;
    int64_t pages_read = 0;
    int64_t log_fsyncs = 0;
    double commit_wait_ms = 0;
    bool mandatory_flush = false;
    double cpu_demand_core_s = 0;
  };
  TickState tick_;

  uint64_t total_write_bytes_ = 0;
  uint64_t total_read_bytes_ = 0;
  int64_t total_pages_read_ = 0;
};

}  // namespace kairos::db

#endif  // KAIROS_DB_DBMS_H_
