// Write-ahead log with group commit.
//
// All tenant databases of one DBMS instance share a single sequential log
// stream (the paper's point: the DBMS coordinates log writes across
// databases, unlike the one-instance-per-database VM baselines).
#ifndef KAIROS_DB_LOG_MANAGER_H_
#define KAIROS_DB_LOG_MANAGER_H_

#include <cstdint>

namespace kairos::db {

/// Accumulates commit records during a tick and models group commit when
/// the tick ends.
class LogManager {
 public:
  /// `group_commit_window_ms`: commits arriving within one window share one
  /// log write + fsync. `log_file_bytes`: when this much log accumulates
  /// since the last checkpoint, a checkpoint (full dirty-page flush) is due.
  LogManager(double group_commit_window_ms, uint64_t log_file_bytes);

  /// Adds `commits` committing transactions producing `bytes` of log.
  void Append(int64_t commits, uint64_t bytes);

  /// Result of flushing one tick's worth of commits.
  struct FlushResult {
    uint64_t bytes = 0;              ///< Log bytes written.
    int64_t groups = 0;              ///< Group-commit batches (= fsyncs).
    double avg_commit_wait_ms = 0;   ///< Mean wait for the group to fill.
  };

  /// Flushes commits accumulated in a tick of `tick_seconds`.
  FlushResult FlushTick(double tick_seconds);

  /// True when enough log has accumulated to require a checkpoint.
  bool CheckpointDue() const { return bytes_since_checkpoint_ >= log_file_bytes_; }

  /// Acknowledges a completed checkpoint (log reclaimed).
  void CheckpointDone() { bytes_since_checkpoint_ = 0; }

  /// Cumulative totals.
  uint64_t total_bytes() const { return total_bytes_; }
  int64_t total_groups() const { return total_groups_; }
  uint64_t bytes_since_checkpoint() const { return bytes_since_checkpoint_; }
  double group_commit_window_ms() const { return group_commit_window_ms_; }

 private:
  double group_commit_window_ms_;
  uint64_t log_file_bytes_;
  int64_t pending_commits_ = 0;
  uint64_t pending_bytes_ = 0;
  uint64_t bytes_since_checkpoint_ = 0;
  uint64_t total_bytes_ = 0;
  int64_t total_groups_ = 0;
};

}  // namespace kairos::db

#endif  // KAIROS_DB_LOG_MANAGER_H_
