// Background dirty-page flusher.
//
// Mirrors InnoDB behaviour the paper relies on:
//  * write-back is PACED, not eager: dirty pages linger so repeated updates
//    coalesce into one physical write (the source of the nonlinear disk
//    behaviour of Section 4);
//  * the pacing target is the checkpoint deadline — the dirty set must be
//    written back before the redo log fills (fuzzy checkpointing);
//  * when the disk is idle the flusher opportunistically writes back at its
//    configured I/O capacity (the idle flushing that makes naive iostat
//    measurements overestimate required bandwidth, Section 3);
//  * a dirty-fraction high watermark and due checkpoints force mandatory
//    flushing;
//  * pages are written in elevator order via a sweep cursor, so a dense
//    dirty set degenerates into cheap near-sequential runs.
#ifndef KAIROS_DB_FLUSHER_H_
#define KAIROS_DB_FLUSHER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "db/buffer_pool.h"
#include "db/page.h"

namespace kairos::db {

/// Flusher policy parameters.
struct FlusherConfig {
  /// Background trickle: cycle the dirty set every this many seconds when
  /// nothing else forces a faster pace.
  double flush_interval_s = 60.0;
  /// Finish write-back this fraction of the way to the checkpoint deadline.
  double checkpoint_safety = 0.8;
  /// Opportunistic flush rate when the disk is idle (innodb_io_capacity).
  /// Like InnoDB, a (nearly) idle server writes back dirty pages long
  /// before it must — which is why naive iostat sums from underutilized
  /// dedicated servers overestimate the I/O a consolidated server needs
  /// (Section 3).
  double idle_io_pages_per_sec = 4000.0;
  /// Disk utilization below which idle flushing engages.
  double idle_utilization_threshold = 0.08;
  /// Dirty fraction above which flushing becomes mandatory.
  double max_dirty_fraction = 0.75;
  /// Max pages written back in one tick (I/O burst guard).
  int64_t max_pages_per_tick = 20000;
};

/// A batch of elevator-ordered dirty pages chosen for write-back.
struct FlushBatch {
  std::vector<PageId> pages;   ///< Ascending page ids (one sweep segment).
  uint64_t span_pages = 0;     ///< max - min + 1 over the batch (0 if empty).
  bool mandatory = false;      ///< True if forced (watermark / checkpoint).
  /// Fraction of this batch that is deadline work (checkpoint pacing):
  /// device time for it counts as mandatory load — if it cannot keep up,
  /// transactions must stall, exactly like InnoDB's sync flush point.
  double mandatory_fraction = 0.0;
};

/// Chooses which dirty pages to write back each tick.
class Flusher {
 public:
  explicit Flusher(const FlusherConfig& config);

  const FlusherConfig& config() const { return config_; }

  /// Selects the tick's write-back batch.
  /// `disk_utilization`: previous tick's utilization (gates idle flushing).
  /// `checkpoint`: a checkpoint is due — drain as fast as allowed.
  /// `seconds_to_checkpoint`: projected time until the redo log fills at
  /// the current log rate (infinity when the log is quiet).
  FlushBatch SelectBatch(
      const BufferPool& pool, double tick_seconds, double disk_utilization,
      bool checkpoint,
      double seconds_to_checkpoint = std::numeric_limits<double>::infinity());

 private:
  FlusherConfig config_;
  PageId cursor_ = 0;  ///< Elevator sweep position.
};

}  // namespace kairos::db

#endif  // KAIROS_DB_FLUSHER_H_
