// A tenant database inside a (possibly multi-tenant) DBMS instance.
#ifndef KAIROS_DB_DATABASE_H_
#define KAIROS_DB_DATABASE_H_

#include <cstdint>
#include <list>
#include <string>

#include "db/page.h"

namespace kairos::db {

class Dbms;

/// Cumulative-and-windowed activity counters for one database. The resource
/// monitor samples these the way it would poll SHOW STATUS.
struct DbCounters {
  int64_t submitted_tx = 0;
  int64_t completed_tx = 0;
  int64_t dropped_tx = 0;         ///< Shed when the queue limit was hit.
  int64_t physical_reads = 0;     ///< Pages read from disk.
  int64_t file_cache_hits = 0;    ///< Buffer misses served by the OS cache.
  int64_t read_rows = 0;
  int64_t update_rows = 0;
  int64_t pages_dirtied = 0;      ///< Clean->dirty transitions caused.
  uint64_t log_bytes = 0;
  double cpu_seconds = 0.0;
  double latency_weighted_ms = 0.0;  ///< Sum of latency*completed, for means.

  /// Adds `other` into this.
  void Accumulate(const DbCounters& other);
  /// Mean completed-transaction latency (ms).
  double AvgLatencyMs() const;
};

/// A named tenant database: a set of table regions in the instance's page
/// space plus activity counters.
class Database {
 public:
  Database(Dbms* owner, int id, std::string name);

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Dbms* owner() const { return owner_; }

  /// Creates a table of `initial_pages` pages, reserving `reserved_pages`
  /// (>= initial) of contiguous growth room. Returns a stable pointer.
  Region* CreateTable(const std::string& table_name, uint64_t initial_pages,
                      uint64_t reserved_pages = 0);

  /// Grows a table by `pages` within its reservation; extends the
  /// reservation if exhausted (allocating fresh contiguous space).
  void ExtendTable(Region* region, uint64_t pages);

  /// Looks up a table by name (nullptr if absent).
  Region* FindTable(const std::string& table_name);

  /// Total in-use pages across tables.
  uint64_t TotalPages() const;

  /// Counters since creation.
  const DbCounters& lifetime() const { return lifetime_; }
  /// Counters since the last TakeWindow() call.
  const DbCounters& window() const { return window_; }
  /// Returns and resets the windowed counters.
  DbCounters TakeWindow();

  /// Transactions queued but not yet completed (overload backlog).
  double backlog_tx() const { return backlog_tx_; }

 private:
  friend class Dbms;

  Dbms* owner_;
  int id_;
  std::string name_;
  std::list<Region> tables_;  // std::list: stable Region pointers.
  DbCounters lifetime_;
  DbCounters window_;
  double backlog_tx_ = 0.0;
};

}  // namespace kairos::db

#endif  // KAIROS_DB_DATABASE_H_
