#include "workload/driver.h"

#include <cmath>

namespace kairos::workload {

double WorkloadRunStats::MeanLatencyMs() const {
  // Weight each window's mean latency by its completions.
  double weighted = 0.0;
  double weight = 0.0;
  for (size_t i = 0; i < latency_ms.size() && i < tps.size(); ++i) {
    weighted += latency_ms.at(i) * tps.at(i);
    weight += tps.at(i);
  }
  return weight > 0 ? weighted / weight : 0.0;
}

Driver::Driver(db::Server* server, uint64_t seed, double tick_seconds)
    : server_(server), rng_(seed), tick_seconds_(tick_seconds) {}

db::Database* Driver::AddWorkload(Workload* w) {
  db::Database* database = server_->dbms().CreateDatabase(w->name());
  w->Attach(database);
  workloads_.push_back(w);
  return database;
}

void Driver::AddAttachedWorkload(Workload* w) { workloads_.push_back(w); }

void Driver::Warm() {
  for (Workload* w : workloads_) w->Warm();
  // The warm-up touches are bulk faults, not workload activity: close one
  // tick to drain them, then discard windowed counters and the (enormous)
  // one-off device demand they queued — a real deployment warms up over
  // minutes of sequential scanning, which we don't simulate tick by tick.
  server_->Tick(tick_seconds_);
  server_->disk().Reset();
  for (Workload* w : workloads_) w->database()->TakeWindow();
}

RunResult Driver::Run(double seconds, double sample_window_s) {
  RunResult result;
  result.duration_s = seconds;
  const size_t n_workloads = workloads_.size();

  struct WindowAcc {
    int64_t completed = 0;
    int64_t submitted = 0;
    int64_t update_rows = 0;
    double latency_weighted = 0.0;
  };
  std::vector<WindowAcc> acc(n_workloads);
  std::vector<WorkloadRunStats> wstats(n_workloads);
  for (size_t i = 0; i < n_workloads; ++i) wstats[i].name = workloads_[i]->name();

  std::vector<std::vector<double>> tps_series(n_workloads), lat_series(n_workloads),
      upd_series(n_workloads);
  std::vector<double> write_mbps, read_mbps, pages_read, cpu_cores, disk_util;

  uint64_t window_write_bytes = 0, window_read_bytes = 0;
  int64_t window_pages_read = 0;
  double window_cpu_core_s = 0, window_disk_util = 0;
  int ticks_in_window = 0;
  double window_elapsed = 0;

  const int total_ticks = static_cast<int>(std::llround(seconds / tick_seconds_));
  for (int tick = 0; tick < total_ticks; ++tick) {
    const double t = server_->now();
    for (size_t i = 0; i < n_workloads; ++i) {
      Workload* w = workloads_[i];
      db::TxBatch batch = w->MakeBatch(t, tick_seconds_, rng_);
      server_->dbms().Submit(w->database(), batch);
      acc[i].submitted += batch.transactions;
      acc[i].update_rows += static_cast<int64_t>(
          std::llround(batch.transactions * batch.profile.update_rows));
    }
    const db::InstanceTickReport report = server_->Tick(tick_seconds_);
    for (const auto& per_db : report.per_db) {
      for (size_t i = 0; i < n_workloads; ++i) {
        if (workloads_[i]->database() == per_db.db) {
          acc[i].completed += per_db.completed;
          acc[i].latency_weighted +=
              per_db.avg_latency_ms * static_cast<double>(per_db.completed);
          break;
        }
      }
    }
    window_write_bytes += report.write_bytes;
    window_read_bytes += report.read_bytes;
    window_pages_read += report.pages_read;
    window_cpu_core_s += report.cpu_demand_core_s;
    window_disk_util += server_->last_disk_utilization();
    ++ticks_in_window;
    window_elapsed += tick_seconds_;

    if (window_elapsed + 1e-9 >= sample_window_s || tick == total_ticks - 1) {
      for (size_t i = 0; i < n_workloads; ++i) {
        const double tps = static_cast<double>(acc[i].completed) / window_elapsed;
        tps_series[i].push_back(tps);
        lat_series[i].push_back(acc[i].completed > 0
                                    ? acc[i].latency_weighted /
                                          static_cast<double>(acc[i].completed)
                                    : 0.0);
        upd_series[i].push_back(static_cast<double>(acc[i].update_rows) /
                                window_elapsed);
        wstats[i].total_completed += acc[i].completed;
        wstats[i].total_submitted += acc[i].submitted;
        acc[i] = WindowAcc();
      }
      write_mbps.push_back(static_cast<double>(window_write_bytes) / window_elapsed / 1e6);
      read_mbps.push_back(static_cast<double>(window_read_bytes) / window_elapsed / 1e6);
      pages_read.push_back(static_cast<double>(window_pages_read) / window_elapsed);
      cpu_cores.push_back(window_cpu_core_s / window_elapsed);
      disk_util.push_back(window_disk_util / ticks_in_window);
      window_write_bytes = window_read_bytes = 0;
      window_pages_read = 0;
      window_cpu_core_s = window_disk_util = 0;
      ticks_in_window = 0;
      window_elapsed = 0;
    }
  }

  for (size_t i = 0; i < n_workloads; ++i) {
    wstats[i].tps = util::TimeSeries(sample_window_s, std::move(tps_series[i]));
    wstats[i].latency_ms = util::TimeSeries(sample_window_s, std::move(lat_series[i]));
    wstats[i].update_rows_per_sec =
        util::TimeSeries(sample_window_s, std::move(upd_series[i]));
  }
  result.workloads = std::move(wstats);
  result.server.write_mbps = util::TimeSeries(sample_window_s, std::move(write_mbps));
  result.server.read_mbps = util::TimeSeries(sample_window_s, std::move(read_mbps));
  result.server.pages_read_per_sec =
      util::TimeSeries(sample_window_s, std::move(pages_read));
  result.server.cpu_cores = util::TimeSeries(sample_window_s, std::move(cpu_cores));
  result.server.disk_utilization =
      util::TimeSeries(sample_window_s, std::move(disk_util));
  return result;
}

}  // namespace kairos::workload
