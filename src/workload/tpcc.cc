#include "workload/tpcc.h"

#include "db/dbms.h"

namespace kairos::workload {

TpccWorkload::TpccWorkload(std::string name, int warehouses,
                           std::shared_ptr<LoadPattern> pattern)
    : Workload(std::move(name)), warehouses_(warehouses), pattern_(std::move(pattern)) {}

db::TxProfile TpccWorkload::Profile() {
  db::TxProfile p;
  // Weighted mix of NewOrder/Payment/OrderStatus/Delivery/StockLevel.
  p.cpu_us = 420.0;
  p.read_rows = 22.0;
  p.update_rows = 12.0;
  p.pages_per_read = 1.0;
  p.pages_per_update = 1.0;
  p.log_bytes_per_update = 160.0;
  p.base_latency_ms = 70.0;
  p.commits_per_tx = 1.0;
  return p;
}

void TpccWorkload::Attach(db::Database* database) {
  database_ = database;
  page_bytes_ = database->owner()->config().page_bytes;
  const uint64_t data_pages =
      static_cast<uint64_t>(warehouses_) * kDataBytesPerWarehouse / page_bytes_;
  region_ = database->CreateTable("tpcc", data_pages, data_pages * 2);
  const uint64_t hot_pages =
      static_cast<uint64_t>(warehouses_) * kHotBytesPerWarehouse / page_bytes_;
  // TPC-C access is skewed (district/stock hot rows dominate; old orders
  // and rare items sit in the tail), so overflowing the buffer pool by a
  // little costs a little — not a thrash cliff.
  sampler_ = std::make_unique<ZipfSampler>(region_, hot_pages, 0.6);
}

db::TxBatch TpccWorkload::MakeBatch(double t, double dt, util::Rng& rng) {
  db::TxBatch batch;
  batch.profile = Profile();
  batch.sampler = sampler_.get();
  batch.transactions = rng.Poisson(pattern_->RateAt(t) * dt);
  return batch;
}

uint64_t TpccWorkload::WorkingSetBytes() const {
  return static_cast<uint64_t>(warehouses_) * kHotBytesPerWarehouse;
}

uint64_t TpccWorkload::DataSizeBytes() const {
  return static_cast<uint64_t>(warehouses_) * kDataBytesPerWarehouse;
}

void TpccWorkload::Warm() {
  WarmDescending(database_, *region_, WorkingSetBytes() / page_bytes_);
}

}  // namespace kairos::workload
