#include "workload/wikipedia.h"

#include <cmath>

#include "db/dbms.h"
#include "util/units.h"

namespace kairos::workload {

namespace {
// At the paper's 100K-page scale: 67 GB of data, 2.2 GB working set.
constexpr double kDataBytesPerKPage = 67.0 * 1024 * 1024 * 1024 / 100.0;
constexpr double kHotBytesPerKPage = 2.2 * 1024 * 1024 * 1024 / 100.0;
}  // namespace

WikipediaWorkload::WikipediaWorkload(std::string name, int scale_k_pages,
                                     std::shared_ptr<LoadPattern> pattern)
    : Workload(std::move(name)),
      scale_k_pages_(scale_k_pages),
      pattern_(std::move(pattern)) {}

db::TxProfile WikipediaWorkload::Profile() {
  db::TxProfile p;
  // 92% of queries read (article fetch, watch list, login); 8% write.
  p.cpu_us = 140.0;
  p.read_rows = 6.0;
  p.update_rows = 0.5;  // 8% writers x ~6 rows each.
  p.pages_per_read = 1.0;
  p.pages_per_update = 1.0;
  // Mean over 70 B metadata rows and multi-MB article text revisions.
  p.log_bytes_per_update = 2400.0;
  p.base_latency_ms = 10.0;
  p.commits_per_tx = 1.0;
  return p;
}

void WikipediaWorkload::Attach(db::Database* database) {
  database_ = database;
  page_bytes_ = database->owner()->config().page_bytes;
  const uint64_t data_pages = DataSizeBytes() / page_bytes_;
  region_ = database->CreateTable("wiki", data_pages, data_pages + data_pages / 4);
  const uint64_t hot_pages = WorkingSetBytes() / page_bytes_;
  // Article popularity is heavily skewed; the hot set itself is accessed
  // with a mild Zipf within the region's first hot_pages pages.
  sampler_ = std::make_unique<ZipfSampler>(region_, hot_pages, 0.3);
}

db::TxBatch WikipediaWorkload::MakeBatch(double t, double dt, util::Rng& rng) {
  db::TxBatch batch;
  batch.profile = Profile();
  // High tuple-size variance: jitter the log bytes per update with a
  // mean-preserving lognormal factor (Figure 12b's wider spread).
  const double sigma = 0.8;
  batch.profile.log_bytes_per_update *=
      std::exp(rng.Gaussian(-sigma * sigma / 2.0, sigma));
  batch.sampler = sampler_.get();
  batch.transactions = rng.Poisson(pattern_->RateAt(t) * dt);
  return batch;
}

uint64_t WikipediaWorkload::WorkingSetBytes() const {
  return static_cast<uint64_t>(kHotBytesPerKPage * scale_k_pages_);
}

uint64_t WikipediaWorkload::DataSizeBytes() const {
  return static_cast<uint64_t>(kDataBytesPerKPage * scale_k_pages_);
}

void WikipediaWorkload::Warm() {
  WarmDescending(database_, *region_, WorkingSetBytes() / page_bytes_);
}

}  // namespace kairos::workload
