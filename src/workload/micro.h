// Fully parameterized synthetic micro-benchmark (Section 7.1): a single
// table with a controllable working set, CPU-heavy selects (expensive
// cryptographic functions in the paper), controllable update rate, and a
// time-varying offered-rate pattern. Used to validate the resource models
// (Figure 6), to build disk profiles (Figure 4), and for the
// size-independence experiment (Figure 12a).
#ifndef KAIROS_WORKLOAD_MICRO_H_
#define KAIROS_WORKLOAD_MICRO_H_

#include <memory>
#include <string>

#include "workload/patterns.h"
#include "workload/workload.h"

namespace kairos::workload {

/// All knobs of the synthetic workload.
struct MicroSpec {
  uint64_t data_bytes = 1ULL << 30;          ///< Total table size.
  uint64_t working_set_bytes = 512ULL << 20; ///< Hot subset.
  double reads_per_tx = 4.0;                 ///< Row reads per transaction.
  double updates_per_tx = 2.0;               ///< Row updates per transaction.
  double cpu_us_per_tx = 300.0;              ///< CPU-heavy selects.
  double log_bytes_per_update = 200.0;
  double base_latency_ms = 5.0;
  double zipf_theta = 0.0;                   ///< 0 = uniform access.
  double cold_probability = 0.0;             ///< Stray accesses to cold data.
  std::shared_ptr<LoadPattern> pattern;      ///< Offered rate over time.
};

/// The synthetic micro workload.
class MicroWorkload : public Workload {
 public:
  MicroWorkload(std::string name, MicroSpec spec);

  void Attach(db::Database* database) override;
  db::TxBatch MakeBatch(double t, double dt, util::Rng& rng) override;
  uint64_t WorkingSetBytes() const override { return spec_.working_set_bytes; }
  uint64_t DataSizeBytes() const override { return spec_.data_bytes; }
  void Warm() override;

  const MicroSpec& spec() const { return spec_; }

 private:
  MicroSpec spec_;
  db::Region* region_ = nullptr;
  std::unique_ptr<db::PageSampler> sampler_;
  uint64_t page_bytes_ = db::kDefaultPageBytes;
};

}  // namespace kairos::workload

#endif  // KAIROS_WORKLOAD_MICRO_H_
