// Experiment driver: runs one or more workloads against a single-instance
// server for a span of simulated time, recording throughput, latency, and
// device statistics in sampling windows. All controlled experiments in
// tests/ and bench/ go through this.
#ifndef KAIROS_WORKLOAD_DRIVER_H_
#define KAIROS_WORKLOAD_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "db/server.h"
#include "util/rng.h"
#include "util/timeseries.h"
#include "workload/workload.h"

namespace kairos::workload {

/// Per-workload results of a run.
struct WorkloadRunStats {
  std::string name;
  util::TimeSeries tps;         ///< Completed transactions/sec per window.
  util::TimeSeries latency_ms;  ///< Mean completed-tx latency per window.
  util::TimeSeries update_rows_per_sec;  ///< Row-modification rate.
  int64_t total_completed = 0;
  int64_t total_submitted = 0;

  double MeanTps() const { return tps.Mean(); }
  double MeanLatencyMs() const;
  /// 95th-percentile of the per-window mean latencies.
  double P95LatencyMs() const { return latency_ms.Percentile(95.0); }
};

/// Server-level results of a run.
struct ServerRunStats {
  util::TimeSeries write_mbps;       ///< Physical writes (log + flush).
  util::TimeSeries read_mbps;        ///< Physical reads.
  util::TimeSeries pages_read_per_sec;
  util::TimeSeries cpu_cores;        ///< CPU demand in cores.
  util::TimeSeries disk_utilization;
};

/// Results of one driver run.
struct RunResult {
  std::vector<WorkloadRunStats> workloads;
  ServerRunStats server;
  double duration_s = 0;
};

/// Drives workloads on one db::Server in fixed ticks.
class Driver {
 public:
  /// `tick_seconds` is the simulation step; sampling windows are multiples.
  Driver(db::Server* server, uint64_t seed, double tick_seconds = 0.1);

  /// Creates a tenant database for `w`, attaches it, and registers it.
  db::Database* AddWorkload(Workload* w);

  /// Registers a workload already attached to a database of this server.
  void AddAttachedWorkload(Workload* w);

  /// Pre-faults every workload's working set and clears window counters.
  void Warm();

  /// Runs for `seconds` of simulated time; returns stats sampled every
  /// `sample_window_s`.
  RunResult Run(double seconds, double sample_window_s = 1.0);

  double tick_seconds() const { return tick_seconds_; }
  db::Server* server() { return server_; }
  util::Rng& rng() { return rng_; }

 private:
  db::Server* server_;
  util::Rng rng_;
  double tick_seconds_;
  std::vector<Workload*> workloads_;
};

}  // namespace kairos::workload

#endif  // KAIROS_WORKLOAD_DRIVER_H_
