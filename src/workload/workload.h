// Workload generator interface plus common page samplers.
#ifndef KAIROS_WORKLOAD_WORKLOAD_H_
#define KAIROS_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "db/database.h"
#include "db/dbms.h"
#include "db/tx_profile.h"
#include "util/rng.h"

namespace kairos::workload {

/// Samples pages uniformly from the first `hot_pages` pages of a region
/// (the workload's working set), with an optional cold tail probability.
class HotSetSampler : public db::PageSampler {
 public:
  /// `cold_probability` of touching a page outside the hot set (uniform over
  /// the whole region), modelling occasional scans of cold data.
  HotSetSampler(const db::Region* region, uint64_t hot_pages,
                double cold_probability = 0.0);

  db::PageId SampleRead(util::Rng& rng) override;
  db::PageId SampleUpdate(util::Rng& rng) override;

  uint64_t hot_pages() const { return hot_pages_; }
  void set_hot_pages(uint64_t hot_pages) { hot_pages_ = hot_pages; }

 private:
  db::PageId Sample(util::Rng& rng);
  const db::Region* region_;
  uint64_t hot_pages_;
  double cold_probability_;
};

/// Samples pages from a region's hot set with Zipf skew.
class ZipfSampler : public db::PageSampler {
 public:
  ZipfSampler(const db::Region* region, uint64_t hot_pages, double theta);

  db::PageId SampleRead(util::Rng& rng) override;
  db::PageId SampleUpdate(util::Rng& rng) override;

 private:
  const db::Region* region_;
  uint64_t hot_pages_;
  double theta_;
};

/// Pre-faults the first `hot_pages` of `region` into the buffer pool in
/// descending page order, so that when the pool is smaller than the hot
/// set, the LOW page ids — the most popular ranks under a Zipf access
/// distribution — end up resident (what a warmed-up production cache
/// converges to).
void WarmDescending(db::Database* database, const db::Region& region,
                    uint64_t hot_pages);

/// A transactional workload: owns its table layout, access distribution,
/// transaction profile, and offered-rate schedule.
class Workload {
 public:
  explicit Workload(std::string name) : name_(std::move(name)) {}
  virtual ~Workload() = default;

  const std::string& name() const { return name_; }

  /// Creates this workload's tables inside `database` and sets up samplers.
  /// Must be called exactly once before MakeBatch.
  virtual void Attach(db::Database* database) = 0;

  /// Produces the offered transactions for the tick [t, t+dt).
  virtual db::TxBatch MakeBatch(double t, double dt, util::Rng& rng) = 0;

  /// The application's true working set (bytes) — what buffer pool gauging
  /// should discover.
  virtual uint64_t WorkingSetBytes() const = 0;

  /// Total on-disk data size (bytes).
  virtual uint64_t DataSizeBytes() const = 0;

  /// Pre-faults the working set into the buffer pool so experiments start
  /// warm (equivalent to a warm-up run).
  virtual void Warm() = 0;

  /// The database this workload is attached to (nullptr before Attach).
  db::Database* database() const { return database_; }

 protected:
  std::string name_;
  db::Database* database_ = nullptr;
};

}  // namespace kairos::workload

#endif  // KAIROS_WORKLOAD_WORKLOAD_H_
