#include "workload/workload.h"

#include <algorithm>

#include "db/dbms.h"

namespace kairos::workload {

void WarmDescending(db::Database* database, const db::Region& region,
                    uint64_t hot_pages) {
  constexpr uint64_t kChunk = 4096;
  db::Dbms* dbms = database->owner();
  uint64_t remaining = std::min(hot_pages, region.pages);
  while (remaining > 0) {
    const uint64_t chunk = std::min(kChunk, remaining);
    remaining -= chunk;
    dbms->TouchSequential(database, region, remaining, chunk, /*dirty=*/false,
                          /*cpu_us_per_page=*/0.0);
  }
}

HotSetSampler::HotSetSampler(const db::Region* region, uint64_t hot_pages,
                             double cold_probability)
    : region_(region),
      hot_pages_(std::max<uint64_t>(1, hot_pages)),
      cold_probability_(cold_probability) {}

db::PageId HotSetSampler::Sample(util::Rng& rng) {
  const uint64_t pages = std::max<uint64_t>(1, region_->pages);
  const uint64_t hot = std::min(hot_pages_, pages);
  if (cold_probability_ > 0.0 && rng.Bernoulli(cold_probability_)) {
    return region_->start + static_cast<uint64_t>(rng.UniformInt(0, pages - 1));
  }
  return region_->start + static_cast<uint64_t>(rng.UniformInt(0, hot - 1));
}

db::PageId HotSetSampler::SampleRead(util::Rng& rng) { return Sample(rng); }
db::PageId HotSetSampler::SampleUpdate(util::Rng& rng) { return Sample(rng); }

ZipfSampler::ZipfSampler(const db::Region* region, uint64_t hot_pages, double theta)
    : region_(region), hot_pages_(std::max<uint64_t>(1, hot_pages)), theta_(theta) {}

db::PageId ZipfSampler::SampleRead(util::Rng& rng) {
  const uint64_t hot = std::min(hot_pages_, std::max<uint64_t>(1, region_->pages));
  return region_->start + static_cast<uint64_t>(rng.Zipf(hot, theta_));
}

db::PageId ZipfSampler::SampleUpdate(util::Rng& rng) { return SampleRead(rng); }

}  // namespace kairos::workload
