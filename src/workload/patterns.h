// Time-varying request-rate patterns for the synthetic workloads of
// Section 7.1 (sinusoidal, sawtooth, square, flat, bursty).
#ifndef KAIROS_WORKLOAD_PATTERNS_H_
#define KAIROS_WORKLOAD_PATTERNS_H_

#include <memory>

namespace kairos::workload {

/// A deterministic offered-rate function of time.
class LoadPattern {
 public:
  virtual ~LoadPattern() = default;
  /// Offered rate (transactions/sec) at time `t` seconds.
  virtual double RateAt(double t) const = 0;
};

/// Constant rate.
class FlatPattern : public LoadPattern {
 public:
  explicit FlatPattern(double rate) : rate_(rate) {}
  double RateAt(double) const override { return rate_; }

 private:
  double rate_;
};

/// mean + amplitude * sin(2 pi t / period).
class SinusoidPattern : public LoadPattern {
 public:
  SinusoidPattern(double mean, double amplitude, double period_s, double phase = 0.0);
  double RateAt(double t) const override;

 private:
  double mean_, amplitude_, period_s_, phase_;
};

/// Linear ramp from low to high over each period, then reset.
class SawtoothPattern : public LoadPattern {
 public:
  SawtoothPattern(double low, double high, double period_s);
  double RateAt(double t) const override;

 private:
  double low_, high_, period_s_;
};

/// Alternates low/high each half period.
class SquarePattern : public LoadPattern {
 public:
  SquarePattern(double low, double high, double period_s);
  double RateAt(double t) const override;

 private:
  double low_, high_, period_s_;
};

/// Baseline rate with periodic short bursts.
class BurstyPattern : public LoadPattern {
 public:
  BurstyPattern(double base, double burst, double period_s, double burst_fraction);
  double RateAt(double t) const override;

 private:
  double base_, burst_, period_s_, burst_fraction_;
};

}  // namespace kairos::workload

#endif  // KAIROS_WORKLOAD_PATTERNS_H_
