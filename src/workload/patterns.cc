#include "workload/patterns.h"

#include <cmath>

namespace kairos::workload {

SinusoidPattern::SinusoidPattern(double mean, double amplitude, double period_s,
                                 double phase)
    : mean_(mean), amplitude_(amplitude), period_s_(period_s), phase_(phase) {}

double SinusoidPattern::RateAt(double t) const {
  const double v = mean_ + amplitude_ * std::sin(2.0 * M_PI * t / period_s_ + phase_);
  return v < 0.0 ? 0.0 : v;
}

SawtoothPattern::SawtoothPattern(double low, double high, double period_s)
    : low_(low), high_(high), period_s_(period_s) {}

double SawtoothPattern::RateAt(double t) const {
  const double frac = std::fmod(t, period_s_) / period_s_;
  return low_ + (high_ - low_) * frac;
}

SquarePattern::SquarePattern(double low, double high, double period_s)
    : low_(low), high_(high), period_s_(period_s) {}

double SquarePattern::RateAt(double t) const {
  const double frac = std::fmod(t, period_s_) / period_s_;
  return frac < 0.5 ? low_ : high_;
}

BurstyPattern::BurstyPattern(double base, double burst, double period_s,
                             double burst_fraction)
    : base_(base), burst_(burst), period_s_(period_s), burst_fraction_(burst_fraction) {}

double BurstyPattern::RateAt(double t) const {
  const double frac = std::fmod(t, period_s_) / period_s_;
  return frac < burst_fraction_ ? burst_ : base_;
}

}  // namespace kairos::workload
