#include "workload/micro.h"

#include "db/dbms.h"

namespace kairos::workload {

MicroWorkload::MicroWorkload(std::string name, MicroSpec spec)
    : Workload(std::move(name)), spec_(std::move(spec)) {}

void MicroWorkload::Attach(db::Database* database) {
  database_ = database;
  page_bytes_ = database->owner()->config().page_bytes;
  const uint64_t data_pages = spec_.data_bytes / page_bytes_;
  region_ = database->CreateTable("t", data_pages, data_pages * 2);
  const uint64_t hot_pages = spec_.working_set_bytes / page_bytes_;
  if (spec_.zipf_theta > 0.0) {
    sampler_ = std::make_unique<ZipfSampler>(region_, hot_pages, spec_.zipf_theta);
  } else {
    sampler_ =
        std::make_unique<HotSetSampler>(region_, hot_pages, spec_.cold_probability);
  }
}

db::TxBatch MicroWorkload::MakeBatch(double t, double dt, util::Rng& rng) {
  db::TxBatch batch;
  batch.profile.cpu_us = spec_.cpu_us_per_tx;
  batch.profile.read_rows = spec_.reads_per_tx;
  batch.profile.update_rows = spec_.updates_per_tx;
  batch.profile.log_bytes_per_update = spec_.log_bytes_per_update;
  batch.profile.base_latency_ms = spec_.base_latency_ms;
  batch.sampler = sampler_.get();
  batch.transactions = rng.Poisson(spec_.pattern->RateAt(t) * dt);
  return batch;
}

void MicroWorkload::Warm() {
  const uint64_t hot_pages = spec_.working_set_bytes / page_bytes_;
  database_->owner()->TouchSequential(database_, *region_, 0, hot_pages,
                                      /*dirty=*/false, /*cpu_us_per_page=*/0.0);
}

}  // namespace kairos::workload
