// A TPC-C-like OLTP workload generator.
//
// This reproduces the knobs the paper manipulates: the number of warehouses
// controls data size and working set (~120-150 MB of hot data per
// warehouse), and the offered rate is throttleable. Transaction costs are
// aggregates over the five TPC-C transaction types weighted by the standard
// mix.
#ifndef KAIROS_WORKLOAD_TPCC_H_
#define KAIROS_WORKLOAD_TPCC_H_

#include <memory>

#include "workload/patterns.h"
#include "workload/workload.h"

namespace kairos::workload {

/// TPC-C-like workload scaled by warehouse count.
class TpccWorkload : public Workload {
 public:
  /// Bytes of on-disk data per warehouse.
  static constexpr uint64_t kDataBytesPerWarehouse = 200ULL * 1024 * 1024;
  /// Bytes of hot (working set) data per warehouse (~135 MB, matching the
  /// paper's 120-150 MB estimate).
  static constexpr uint64_t kHotBytesPerWarehouse = 135ULL * 1024 * 1024;

  /// `pattern` drives the offered rate over time.
  TpccWorkload(std::string name, int warehouses, std::shared_ptr<LoadPattern> pattern);

  void Attach(db::Database* database) override;
  db::TxBatch MakeBatch(double t, double dt, util::Rng& rng) override;
  uint64_t WorkingSetBytes() const override;
  uint64_t DataSizeBytes() const override;
  void Warm() override;

  int warehouses() const { return warehouses_; }

  /// The aggregate transaction profile (public so benches can reuse it).
  static db::TxProfile Profile();

 private:
  int warehouses_;
  std::shared_ptr<LoadPattern> pattern_;
  db::Region* region_ = nullptr;
  std::unique_ptr<ZipfSampler> sampler_;
  uint64_t page_bytes_ = db::kDefaultPageBytes;
};

}  // namespace kairos::workload

#endif  // KAIROS_WORKLOAD_TPCC_H_
