// A Wikipedia-like web/OLTP workload generator.
//
// Models the benchmark the paper derived from Wikipedia's trace: ~92% reads
// / 8% writes, four transaction classes folded into aggregate per-tx costs,
// tuple sizes from 70 bytes to 3.6 MB (high log-byte variance), and a
// working set that is a small fraction of the total data (2.2 GB hot vs
// 67 GB of data at the 100K-page scale).
#ifndef KAIROS_WORKLOAD_WIKIPEDIA_H_
#define KAIROS_WORKLOAD_WIKIPEDIA_H_

#include <memory>

#include "workload/patterns.h"
#include "workload/workload.h"

namespace kairos::workload {

/// Wikipedia-like workload scaled by article count (in thousands of pages).
class WikipediaWorkload : public Workload {
 public:
  WikipediaWorkload(std::string name, int scale_k_pages,
                    std::shared_ptr<LoadPattern> pattern);

  void Attach(db::Database* database) override;
  db::TxBatch MakeBatch(double t, double dt, util::Rng& rng) override;
  uint64_t WorkingSetBytes() const override;
  uint64_t DataSizeBytes() const override;
  void Warm() override;

  /// Aggregate transaction profile (reads dominate; writes carry large,
  /// highly variable article text).
  static db::TxProfile Profile();

 private:
  int scale_k_pages_;
  std::shared_ptr<LoadPattern> pattern_;
  db::Region* region_ = nullptr;
  std::unique_ptr<ZipfSampler> sampler_;
  uint64_t page_bytes_ = db::kDefaultPageBytes;
};

}  // namespace kairos::workload

#endif  // KAIROS_WORKLOAD_WIKIPEDIA_H_
