// Drift detection: decides *when* the online controller should re-solve.
// Two triggers, checked in priority order:
//   1. violation forecast — the incumbent placement no longer fits the
//      rolling profiles (fires immediately, ignoring the cooldown);
//   2. profile drift — some workload's rolling p95 CPU or RAM fingerprint
//      deviates from the fingerprint captured at the last solve by more
//      than a relative threshold (with absolute floors so idle workloads
//      don't flap).
#ifndef KAIROS_ONLINE_DRIFT_H_
#define KAIROS_ONLINE_DRIFT_H_

#include <string>
#include <vector>

#include "monitor/profile.h"

namespace kairos::online {

struct DriftConfig {
  /// Fractional deviation of a workload's p95 fingerprint that counts as
  /// drift.
  double relative_threshold = 0.30;
  /// Deviation floors: changes below these never count as drift.
  double absolute_cpu_floor_cores = 0.15;
  double absolute_ram_floor_bytes = 1.0 * 1024 * 1024 * 1024;
  /// Steps after a solve during which profile drift is ignored (violation
  /// forecasts are not).
  int cooldown_steps = 6;
};

struct DriftDecision {
  bool resolve = false;
  std::string reason;  // "violation-forecast", "drift:<workload>", or ""
};

class DriftDetector {
 public:
  explicit DriftDetector(const DriftConfig& config) : config_(config) {}

  /// Captures the fingerprints a fresh plan was solved against.
  void Rebase(int step, std::vector<monitor::ProfileStats> reference);

  /// `forecast_violation`: the controller's capacity forecast of the
  /// incumbent placement against current rolling profiles.
  DriftDecision Check(int step,
                      const std::vector<monitor::ProfileStats>& current,
                      bool forecast_violation) const;

 private:
  DriftConfig config_;
  int rebased_step_ = -1;
  std::vector<monitor::ProfileStats> reference_;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_DRIFT_H_
