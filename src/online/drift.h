// Drift detection: decides *when* the online controller should re-solve.
// Two triggers, checked in priority order:
//   1. violation forecast — the incumbent placement no longer fits the
//      rolling profiles (fires immediately, ignoring the cooldown);
//   2. profile drift — some workload's rolling p95 CPU or RAM fingerprint
//      deviates from the fingerprint captured at the last solve by more
//      than a relative threshold (with absolute floors so idle workloads
//      don't flap).
//
// The scan decomposes over stream ranges: ScanRange(current, b, e) counts
// the drifted streams in [b, e) and remembers the first, so the striped
// ingestion tier can scan each shard's stripe on its own worker and fold
// the per-shard results in shard order — Decide() then builds a decision
// identical to the serial full-range Check(). The decision also reports
// *how many* streams (and shards) drifted: the controller uses a
// single-stream drift for the local shard repair and escalates multi-stream
// or cross-shard drift to a global re-solve.
#ifndef KAIROS_ONLINE_DRIFT_H_
#define KAIROS_ONLINE_DRIFT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "monitor/profile.h"

namespace kairos::online {

struct DriftConfig {
  /// Fractional deviation of a workload's p95 fingerprint that counts as
  /// drift.
  double relative_threshold = 0.30;
  /// Deviation floors: changes below these never count as drift.
  double absolute_cpu_floor_cores = 0.15;
  double absolute_ram_floor_bytes = 1.0 * 1024 * 1024 * 1024;
  /// Steps after a solve during which profile drift is ignored (violation
  /// forecasts are not).
  int cooldown_steps = 6;
};

/// Result of scanning one stream range for drift.
struct DriftScan {
  int first_stream = -1;    ///< lowest-indexed drifted stream, -1 if none
  int drifted_streams = 0;  ///< drifted streams in the scanned range
};

struct DriftDecision {
  bool resolve = false;
  std::string reason;  // "violation-forecast", "drift:<workload>", or ""
  /// Lowest-indexed drifted stream (-1 for violation forecasts / no drift).
  int first_stream = -1;
  /// Streams past the drift threshold (0 for violation forecasts). A
  /// value > 1 means a single-shard repair cannot cover the change.
  int drifted_streams = 0;
  /// Ingest shards with at least one drifted stream. Depends on the stripe
  /// layout (observability / escalation only — never on the transcript).
  int drifted_shards = 0;
};

class DriftDetector {
 public:
  explicit DriftDetector(const DriftConfig& config) : config_(config) {}

  /// Captures the fingerprints a fresh plan was solved against.
  void Rebase(int step, std::vector<monitor::ProfileStats> reference);

  /// `forecast_violation`: the controller's capacity forecast of the
  /// incumbent placement against current rolling profiles. Serial
  /// equivalent of ScanEnabled + full-range ScanRange + Decide.
  DriftDecision Check(int step,
                      const std::vector<monitor::ProfileStats>& current,
                      bool forecast_violation) const;

  /// False when no drift scan should run at `step`: no reference yet, a
  /// stream-count mismatch, or inside the post-solve cooldown.
  bool ScanEnabled(int step, size_t num_streams) const;

  /// Scans streams [begin, end) against the reference. Pure read — safe to
  /// run concurrently over disjoint ranges. Call only when ScanEnabled.
  DriftScan ScanRange(const std::vector<monitor::ProfileStats>& current,
                      int begin, int end) const;

  /// Builds the decision from a folded scan. `drifted_shards` is the number
  /// of stripes whose scan found drift (1 for the serial path).
  DriftDecision Decide(const DriftScan& folded, int drifted_shards) const;

 private:
  DriftConfig config_;
  int rebased_step_ = -1;
  std::vector<monitor::ProfileStats> reference_;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_DRIFT_H_
