#include "online/controller.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

#include "core/evaluator.h"

namespace kairos::online {

namespace {

/// Deterministic per-(solve, member) seed derivation.
uint64_t MixSeed(uint64_t seed, int solve_index, int member) {
  uint64_t x = seed ^ (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(solve_index + 1));
  x += 0xBF58476D1CE4E5B9ULL * static_cast<uint64_t>(member + 1);
  return x == 0 ? 1 : x;
}

/// Accumulates the wall seconds of its scope into `*accum` on destruction.
/// A null `accum` makes it a no-op that never reads the clock, so the
/// unobserved path stays clock-free.
class ScopedAccumTimer {
 public:
  explicit ScopedAccumTimer(double* accum) : accum_(accum) {
    if (accum_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedAccumTimer() {
    if (accum_ != nullptr) {
      *accum_ += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    }
  }

 private:
  double* accum_;
  std::chrono::steady_clock::time_point start_;
};

/// Brackets one control step's evaluator ops on the control thread (the
/// forecast feasibility check and plan finalization; portfolio workers
/// bracket their own members). No-op without a sink.
struct EvalOpsScope {
  explicit EvalOpsScope(obs::Sink* s) : sink(s) {
    if (sink != nullptr) core::ResetEvalOps();
  }
  ~EvalOpsScope() {
    if (sink != nullptr) core::FlushEvalOps(sink);
  }
  obs::Sink* sink;
};

}  // namespace

ConsolidationController::ConsolidationController(const ControllerConfig& config)
    : config_(config),
      builder_(static_cast<int>(config.base.workloads.size()),
               static_cast<size_t>(config.window_samples),
               config.sample_interval_seconds),
      drift_(config.drift) {
  assert(!config.base.workloads.empty());
  // A bounded fleet is the server pool; num_servers can only shrink it
  // (with an unbounded fleet the classic one-per-slot default applies).
  active_servers_ = config_.base.ServerCap(config.num_servers);
  // The template's series are dead weight (rolling profiles replace them in
  // every snapshot); drop them so per-control-step problem copies stay cheap.
  for (auto& w : config_.base.workloads) {
    w.cpu_cores = util::TimeSeries();
    w.ram_bytes = util::TimeSeries();
    w.update_rows_per_sec = util::TimeSeries();
    w.os_ram_bytes = util::TimeSeries();
    w.os_write_bytes_per_sec = util::TimeSeries();
  }
  // The striped ingestion tier is opt-in: the defaults keep the serial
  // builder path (and its exact observability counter set) untouched.
  if (config_.ingest_threads > 1 || config_.ingest_stripes > 0) {
    IngestOptions options;
    options.threads = config_.ingest_threads;
    options.stripes = config_.ingest_stripes;
    ingest_ = std::make_unique<IngestPlane>(&builder_, options);
    ingest_->AttachSink(config_.sink);
  }
}

core::ConsolidationProblem ConsolidationController::SnapshotProblem() const {
  core::ConsolidationProblem problem = config_.base;
  problem.max_servers = active_servers_;
  problem.current_assignment.clear();
  problem.migration_cost_weight = 0.0;
  for (int w = 0; w < builder_.num_workloads(); ++w) {
    const monitor::WorkloadProfile rolling = builder_.Profile(w);
    problem.workloads[w].cpu_cores = rolling.cpu_cores;
    problem.workloads[w].ram_bytes = rolling.ram_bytes;
    problem.workloads[w].update_rows_per_sec = rolling.update_rows_per_sec;
    problem.workloads[w].working_set_bytes = rolling.working_set_bytes;
  }
  return problem;
}

std::vector<monitor::ProfileStats> ConsolidationController::CurrentStats() {
  std::vector<monitor::ProfileStats> stats(builder_.num_workloads());
  if (ingest_ != nullptr) {
    // Each stripe summarizes its own streams into disjoint result slots.
    ingest_->ForEachStripe([&](int, int begin, int end) {
      for (int w = begin; w < end; ++w) stats[w] = builder_.Stats(w);
    });
  } else {
    for (int w = 0; w < builder_.num_workloads(); ++w) {
      stats[w] = builder_.Stats(w);
    }
  }
  return stats;
}

void ConsolidationController::Ingest(const std::vector<TelemetrySample>& samples) {
  const bool observed = config_.sink != nullptr;
  if (observed) InternObsIds();
  {
    // Time only the telemetry -> rolling-profile path (the ROADMAP
    // samples/sec KPI measures ingestion, not the re-solves it triggers).
    ScopedAccumTimer timer(observed ? &ingest_seconds_accum_ : nullptr);
    if (ingest_ != nullptr) {
      ingest_->IngestStep(samples);
    } else {
      builder_.Ingest(samples);
    }
  }
  if (observed) {
    obs_ingest_seconds_->Set(ingest_seconds_accum_);
    obs_steps_ingested_->Add(1);
    obs_samples_ingested_->Add(static_cast<int64_t>(samples.size()));
  }
  ++step_;
  if (static_cast<int>(builder_.samples_seen()) < config_.warmup_samples) return;
  // The bootstrap solve happens at the first warmed-up step; afterwards
  // control runs every control_interval steps.
  if (!assignment_.empty() && config_.control_interval > 1 &&
      step_ % config_.control_interval != 0) {
    return;
  }
  RunControl("");
}

int ConsolidationController::RunToEnd(TelemetryFeed* feed) {
  std::vector<TelemetrySample> samples;
  int steps = 0;
  while (feed->Next(&samples)) {
    Ingest(samples);
    ++steps;
  }
  return steps;
}

bool ConsolidationController::DrainHighestServer() {
  if (active_servers_ <= 1) {
    last_drain_refusal_ = "refusing node drain: only one server remains";
    return false;
  }
  // The relabel below swaps server indices, which is only meaning-preserving
  // when every server is the same machine. Heterogeneous fleets drain whole
  // classes instead (DrainClass).
  if (!config_.base.fleet.Uniform()) {
    last_drain_refusal_ =
        "refusing node drain: fleet is not uniform (" +
        config_.base.fleet.Render() +
        "); the highest-server relabel assumes identical machines — use "
        "DrainClass(<class_index>) to retire a hardware generation";
    return false;
  }
  if (assignment_.empty()) {  // nothing placed yet: just shrink the fleet
    --active_servers_;
    last_drain_refusal_.clear();
    return true;
  }
  // Drain the highest-indexed server *in use*. Machines are homogeneous, so
  // relabel it as the fleet's top index (swap labels with active_servers_-1,
  // which the incumbent cannot use more heavily by definition), then shrink
  // the cap: its slots are stranded outside the cap and must evacuate.
  int drained = 0;
  for (int s : assignment_) drained = std::max(drained, s);
  const int top = active_servers_ - 1;
  // Pins name physical servers; relabeling would silently retarget them and
  // evacuating a pinned workload is never valid — refuse.
  for (const auto& w : config_.base.workloads) {
    if (w.pinned_server == drained || w.pinned_server == top) {
      last_drain_refusal_ = "refusing node drain: workload '" + w.name +
                            "' is pinned to server " +
                            std::to_string(w.pinned_server);
      return false;
    }
  }
  for (int& s : assignment_) {
    if (s == drained) {
      s = top;
    } else if (s == top) {
      s = drained;
    }
  }
  --active_servers_;
  last_drain_refusal_.clear();
  RunControl("node-drain");
  return true;
}

bool ConsolidationController::DrainClass(int class_index) {
  sim::FleetSpec& fleet = config_.base.fleet;
  if (class_index < 0 || class_index >= fleet.num_classes()) {
    last_drain_refusal_ = "refusing class drain: class index " +
                          std::to_string(class_index) + " is out of range";
    return false;
  }
  if (fleet.classes[class_index].drained) {
    last_drain_refusal_ = "refusing class drain: class '" +
                          fleet.classes[class_index].spec.name +
                          "' is already drained";
    return false;
  }
  // At least one usable (non-drained) server must remain within the cap.
  bool usable_remains = false;
  for (int j = 0; j < active_servers_; ++j) {
    const int klass = fleet.ClassOf(j);
    if (klass != class_index && !fleet.classes[klass].drained) {
      usable_remains = true;
      break;
    }
  }
  if (!usable_remains) {
    last_drain_refusal_ =
        "refusing class drain: no usable server would remain";
    return false;
  }
  // Evacuating a pinned workload is never valid: refuse, like the
  // single-server drain does.
  for (const auto& w : config_.base.workloads) {
    if (w.pinned_server >= 0 && fleet.ClassOf(w.pinned_server) == class_index) {
      last_drain_refusal_ = "refusing class drain: workload '" + w.name +
                            "' is pinned to server " +
                            std::to_string(w.pinned_server) + " of class '" +
                            fleet.classes[class_index].spec.name + "'";
      return false;
    }
  }
  fleet.classes[class_index].drained = true;
  last_drain_refusal_.clear();
  if (assignment_.empty()) return true;  // nothing placed yet
  // Server indices stay stable (unlike the homogeneous relabel trick): the
  // evaluator now penalizes every slot left on the class, so the forced
  // re-solve evacuates it and the migration planner sequences the moves.
  RunControl("class-drain:" + fleet.classes[class_index].spec.name);
  return true;
}

void ConsolidationController::InternObsIds() {
  if (obs_ids_ready_ || config_.sink == nullptr) return;
  obs::TraceSink& trace = config_.sink->trace();
  obs_track_ = trace.InternTrack("controller");
  obs_detect_ = trace.InternName("detect");
  obs_resolve_ = trace.InternName("resolve");
  obs_plan_ = trace.InternName("plan");
  obs_ledger_ = trace.InternName("ledger");
  obs_latency_ = trace.InternName("detect_to_migrate");
  obs::Registry& metrics = config_.sink->metrics();
  obs_resolves_ = metrics.counter("controller.resolves");
  obs_infeasible_ = metrics.counter("controller.infeasible_adoptions");
  obs_samples_ingested_ = metrics.counter("controller.samples_ingested");
  obs_steps_ingested_ = metrics.counter("controller.steps_ingested");
  obs_ingest_seconds_ = metrics.gauge("controller.ingest_seconds");
  obs_latency_hist_ = metrics.histogram(
      "controller.detect_to_migrate_seconds",
      {0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0});
  obs_ids_ready_ = true;
}

double ConsolidationController::StageSeconds() const {
  if (config_.sink == nullptr) return 0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       stage_start_)
      .count();
}

void ConsolidationController::EmitStage(uint32_t name_id, int64_t value) {
  if (config_.sink == nullptr) return;
  config_.sink->trace().Emit(obs_track_, name_id, obs::EventKind::kPoint,
                             /*i0=*/step_, /*i1=*/value,
                             /*d0=*/StageSeconds());
}

void ConsolidationController::RunControl(const std::string& forced_reason) {
  // The detection clock starts here: every stage point of this control step
  // carries its offset from this instant, and detect_to_migrate is the
  // offset at which the migration plan was ready.
  if (config_.sink != nullptr) {
    InternObsIds();
    stage_start_ = std::chrono::steady_clock::now();
  }
  EvalOpsScope ops_scope(config_.sink);
  core::ConsolidationProblem problem = SnapshotProblem();
  if (assignment_.empty()) {
    EmitStage(obs_detect_, 1);
    Resolve(&problem, "bootstrap");
    return;
  }
  if (!forced_reason.empty()) {
    EmitStage(obs_detect_, 1);
    Resolve(&problem, forced_reason);
    return;
  }
  // Would the incumbent placement violate constraints on the live rolling
  // profiles? (The drained-server case never reaches here: entries are
  // always within the cap outside a forced drain re-solve.)
  bool forecast_violation = false;
  {
    core::Evaluator ev(problem, active_servers_);
    ev.Load(assignment_);
    forecast_violation = !ev.IsFeasible();
  }
  const DriftDecision decision = DetectDrift(forecast_violation);
  EmitStage(obs_detect_, decision.resolve ? 1 : 0);
  if (decision.resolve) Resolve(&problem, decision.reason, &decision);
}

DriftDecision ConsolidationController::DetectDrift(bool forecast_violation) {
  if (ingest_ == nullptr) {
    return drift_.Check(step_, CurrentStats(), forecast_violation);
  }
  if (forecast_violation) {
    DriftDecision decision;
    decision.resolve = true;
    decision.reason = "violation-forecast";
    return decision;
  }
  if (!drift_.ScanEnabled(step_, static_cast<size_t>(builder_.num_workloads()))) {
    return {};
  }
  const std::vector<monitor::ProfileStats> stats = CurrentStats();
  // Each shard scans its own stripe concurrently into a disjoint slot...
  std::vector<DriftScan> scans(ingest_->stripes().num_stripes());
  ingest_->ForEachStripe([&](int s, int begin, int end) {
    scans[s] = drift_.ScanRange(stats, begin, end);
  });
  // ...and the fold walks the stripes in order, so first_stream is the
  // lowest-indexed drifted stream — the same stream (and reason string) the
  // serial scan reports, at every stripe and thread count.
  DriftScan folded;
  int drifted_shards = 0;
  for (const DriftScan& scan : scans) {
    if (scan.drifted_streams == 0) continue;
    if (folded.first_stream < 0) folded.first_stream = scan.first_stream;
    folded.drifted_streams += scan.drifted_streams;
    ++drifted_shards;
  }
  return drift_.Decide(folded, drifted_shards);
}

void ConsolidationController::Resolve(core::ConsolidationProblem* problem,
                                      const std::string& reason,
                                      const DriftDecision* drift) {
  const std::vector<int> before = assignment_;

  solve::SolveBudget budget = config_.budget;
  budget.seed_assignment.clear();
  // Forward the controller's sink to the portfolio (incumbent curves per
  // member) unless the caller already attached one to the budget.
  if (config_.sink != nullptr && budget.sink == nullptr) {
    budget.sink = config_.sink;
  }
  if (config_.migration_aware && !before.empty()) {
    problem->current_assignment = before;
    problem->migration_cost_weight = config_.migration_cost_weight;
    // Warm seed for the solvers: entries stranded outside the cap (on a
    // drained server) are remapped deterministically; the move penalty
    // still charges them wherever they land.
    std::vector<int> seed = before;
    for (int& s : seed) {
      if (s >= active_servers_) s %= active_servers_;
    }
    budget.seed_assignment = std::move(seed);
  }

  // Shard-routed drift repair: a drift re-solve names one workload, so
  // before paying for the full portfolio, re-solve just the fleet shard
  // that owns it and keep every other slot where it is. Falls through to
  // the portfolio (with identical seeds to the gate-off path) when the
  // repair does not pay off.
  if (config_.shard_repair && config_.migration_aware && !before.empty() &&
      reason.rfind("drift:", 0) == 0) {
    if (drift != nullptr && drift->drifted_streams > 1) {
      // Drift spanning several streams (often several shards) is beyond any
      // single shard's repair: escalate straight to the global portfolio.
      // Its seeds below are identical to the gate-off path, so the
      // escalated re-solve is exactly a full re-solve.
      if (config_.sink != nullptr) {
        config_.sink->Count("controller.drift_escalations");
      }
    } else {
      // The scan already names the drifted stream; fall back to parsing the
      // reason only for callers that hand in a bare "drift:<name>" string.
      int drifted = drift != nullptr ? drift->first_stream : -1;
      if (drifted < 0) {
        const std::string name = reason.substr(6);
        for (size_t w = 0; w < config_.base.workloads.size(); ++w) {
          if (config_.base.workloads[w].name == name) {
            drifted = static_cast<int>(w);
            break;
          }
        }
      }
      core::ConsolidationPlan repaired;
      if (drifted >= 0 &&
          solve::ShardRepair(*problem, budget, config_.shard,
                             MixSeed(config_.seed, solves_,
                                     static_cast<int>(config_.solvers.size())),
                             drifted, &repaired)) {
        ++solves_;
        EmitStage(obs_resolve_, /*value=*/-2);  // -2 marks a shard repair
        if (config_.sink != nullptr) {
          config_.sink->Count("controller.shard_repairs");
        }
        AdoptPlan(*problem, reason, "shard-repair", repaired, before);
        return;
      }
    }
  }

  std::vector<solve::PortfolioSolverSpec> specs;
  specs.reserve(config_.solvers.size());
  for (size_t i = 0; i < config_.solvers.size(); ++i) {
    specs.push_back({config_.solvers[i],
                     MixSeed(config_.seed, solves_, static_cast<int>(i))});
  }

  solve::PortfolioOptions options;
  options.threads = config_.threads;
  options.budget = budget;
  // No target objective: early-stop would make the winner depend on thread
  // scheduling and break history determinism.
  const solve::PortfolioResult result =
      solve::PortfolioRunner(options).Run(*problem, specs);
  ++solves_;
  EmitStage(obs_resolve_, result.winner_index);
  if (result.winner_index < 0) {
    // Only unknown solver names: no plan to adopt. Keep the incumbent, but
    // pull any stranded entries (a drained server's label) back inside the
    // cap so later forecast checks stay within Evaluator bounds.
    for (int& s : assignment_) {
      if (s >= active_servers_) s %= active_servers_;
    }
    return;
  }

  AdoptPlan(*problem, reason, result.winner, result.best, before);
}

void ConsolidationController::AdoptPlan(
    const core::ConsolidationProblem& problem, const std::string& reason,
    const std::string& winner, const core::ConsolidationPlan& plan,
    const std::vector<int>& before) {
  ControlEvent event;
  event.step = step_;
  event.reason = reason;
  event.winner = winner;
  event.servers_before =
      before.empty() ? 0 : core::Assignment{before}.ServersUsed();
  event.servers_after = plan.servers_used;
  event.feasible = plan.feasible;
  event.objective = plan.objective;
  event.migration_cost = plan.migration_cost;
  event.service_objective = plan.objective - plan.migration_cost;
  event.plan = plan.assignment.server_of_slot;

  MigrationPlan migration;
  if (!before.empty()) {
    migration = planner_.Plan(problem, before, plan.assignment.server_of_slot);
    event.moves = migration.total_moves();
    event.stages = static_cast<int>(migration.stages.size());
    event.migration_safe = migration.safe;
  }
  // Stage timeline: the migration plan is ready ("plan"), its spill check
  // verdict is in ("ledger" — MigrationPlanner's CapacityLedger pass), and
  // the detection-to-migration latency is the offset at this instant. The
  // bootstrap placement has an empty (trivially safe) plan; it still closes
  // the timeline so every adopted plan reports a latency.
  EmitStage(obs_plan_, event.moves);
  EmitStage(obs_ledger_, event.migration_safe ? 1 : 0);
  if (config_.sink != nullptr) {
    const double latency = StageSeconds();
    config_.sink->trace().Emit(obs_track_, obs_latency_,
                               obs::EventKind::kPoint, /*i0=*/step_,
                               /*i1=*/event.moves, /*d0=*/latency);
    obs_latency_hist_->Observe(latency);
    obs_resolves_->Add(1);
    if (!event.feasible) obs_infeasible_->Add(1);
  }
  migration_plans_.push_back(std::move(migration));

  assignment_ = plan.assignment.server_of_slot;
  history_.push_back(std::move(event));
  drift_.Rebase(step_, CurrentStats());
}

int ConsolidationController::total_moves() const {
  int moves = 0;
  for (const auto& e : history_) moves += e.moves;
  return moves;
}

double ConsolidationController::last_service_objective() const {
  return history_.empty() ? 0.0 : history_.back().service_objective;
}

double ConsolidationController::CurrentServiceObjective() const {
  if (assignment_.empty()) return 0.0;
  const core::ConsolidationProblem problem = SnapshotProblem();
  core::Evaluator ev(problem, active_servers_);
  ev.Load(assignment_);
  return ev.current_cost();
}

std::string ConsolidationController::RenderHistory() const {
  std::ostringstream out;
  char line[192];
  for (const auto& e : history_) {
    std::snprintf(line, sizeof(line),
                  "step %03d reason=%s winner=%s servers %d->%d moves=%d "
                  "stages=%d safe=%s feasible=%s objective=%.4f "
                  "service=%.4f migration=%.4f plan=",
                  e.step, e.reason.c_str(), e.winner.c_str(), e.servers_before,
                  e.servers_after, e.moves, e.stages,
                  e.migration_safe ? "yes" : "no", e.feasible ? "yes" : "no",
                  e.objective, e.service_objective, e.migration_cost);
    out << line;
    for (size_t i = 0; i < e.plan.size(); ++i) {
      if (i > 0) out << ',';
      out << e.plan[i];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace kairos::online
