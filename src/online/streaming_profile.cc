#include "online/streaming_profile.h"

#include <cassert>

namespace kairos::online {

StreamingProfileBuilder::StreamingProfileBuilder(int num_workloads,
                                                 size_t window_samples,
                                                 double interval_seconds,
                                                 double working_set_decay) {
  assert(num_workloads >= 1 && window_samples >= 1);
  cpu_.reserve(num_workloads);
  ram_.reserve(num_workloads);
  rate_.reserve(num_workloads);
  for (int w = 0; w < num_workloads; ++w) {
    cpu_.emplace_back(window_samples, interval_seconds);
    ram_.emplace_back(window_samples, interval_seconds);
    rate_.emplace_back(window_samples, interval_seconds);
    p95_cpu_.emplace_back(0.95);
    working_set_.emplace_back(working_set_decay);
  }
}

void StreamingProfileBuilder::Ingest(const std::vector<TelemetrySample>& samples) {
  assert(static_cast<int>(samples.size()) == num_workloads());
  for (int w = 0; w < num_workloads(); ++w) {
    cpu_[w].Push(samples[w].cpu_cores);
    ram_[w].Push(samples[w].ram_bytes);
    rate_[w].Push(samples[w].update_rows_per_sec);
    p95_cpu_[w].Add(samples[w].cpu_cores);
    working_set_[w].Push(samples[w].working_set_bytes);
  }
  ++samples_seen_;
}

monitor::WorkloadProfile StreamingProfileBuilder::Profile(int w) const {
  monitor::WorkloadProfile profile;
  profile.cpu_cores = cpu_[w].ToSeries();
  profile.ram_bytes = ram_[w].ToSeries();
  profile.update_rows_per_sec = rate_[w].ToSeries();
  profile.working_set_bytes = working_set_[w].value();
  return profile;
}

monitor::ProfileStats StreamingProfileBuilder::Stats(int w) const {
  // One fingerprint definition for the whole system: the drift detector
  // compares exactly what monitor::Summarize says about the rolling profile.
  return monitor::Summarize(Profile(w));
}

}  // namespace kairos::online
