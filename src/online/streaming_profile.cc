#include "online/streaming_profile.h"

#include <cassert>

namespace kairos::online {

StreamingProfileBuilder::StreamingProfileBuilder(int num_workloads,
                                                 size_t window_samples,
                                                 double interval_seconds,
                                                 double working_set_decay)
    : num_workloads_(num_workloads),
      cpu_(num_workloads, window_samples, interval_seconds),
      ram_(num_workloads, window_samples, interval_seconds),
      rate_(num_workloads, window_samples, interval_seconds),
      p95_cpu_(num_workloads, 0.95),
      working_set_(num_workloads, working_set_decay) {
  assert(num_workloads >= 1 && window_samples >= 1);
}

void StreamingProfileBuilder::Ingest(const std::vector<TelemetrySample>& samples) {
  assert(static_cast<int>(samples.size()) == num_workloads_);
  IngestBatch(samples.data(), 0, num_workloads_);
  CommitStep();
}

void StreamingProfileBuilder::IngestBatch(const TelemetrySample* samples,
                                          int begin, int end) {
  // One fused pass: per workload, three window-row stores (contiguous in w
  // thanks to the banks' slot-major layout), the P² marker update, and the
  // decaying max. No virtual dispatch, no allocation.
  for (int w = begin; w < end; ++w) {
    const TelemetrySample& s = samples[w];
    cpu_.Push(w, s.cpu_cores);
    ram_.Push(w, s.ram_bytes);
    rate_.Push(w, s.update_rows_per_sec);
    p95_cpu_.Add(w, s.cpu_cores);
    working_set_.Push(w, s.working_set_bytes);
  }
}

void StreamingProfileBuilder::CommitStep() {
  cpu_.CommitStep();
  ram_.CommitStep();
  rate_.CommitStep();
  p95_cpu_.CommitStep();
  ++samples_seen_;
}

monitor::WorkloadProfile StreamingProfileBuilder::Profile(int w) const {
  monitor::WorkloadProfile profile;
  profile.cpu_cores = cpu_.ToSeries(w);
  profile.ram_bytes = ram_.ToSeries(w);
  profile.update_rows_per_sec = rate_.ToSeries(w);
  profile.working_set_bytes = working_set_.value(w);
  return profile;
}

monitor::ProfileStats StreamingProfileBuilder::Stats(int w) const {
  // One fingerprint definition for the whole system: the drift detector
  // compares exactly what monitor::Summarize says about the rolling profile.
  return monitor::Summarize(Profile(w));
}

}  // namespace kairos::online
