// StreamingProfileBuilder: turns a telemetry stream into rolling
// monitor::WorkloadProfiles the consolidation solver can re-solve against.
// Each workload keeps the last W samples (the solver's time-varying view),
// a P² estimator for the lifetime p95, and a decaying-max working-set
// estimate — all O(1) per sample.
//
// State lives in SoA estimator banks (online/estimators.h): flat per-signal
// arrays updated by a batch hot loop, not per-workload objects. The batch
// step protocol makes the builder stripeable: IngestBatch(samples, b, e)
// touches only workloads [b, e), so disjoint stripes can be ingested from
// different threads (online/ingest.h), followed by one CommitStep(). The
// resulting state is bit-identical to the serial Ingest() path regardless
// of striping.
#ifndef KAIROS_ONLINE_STREAMING_PROFILE_H_
#define KAIROS_ONLINE_STREAMING_PROFILE_H_

#include <cstddef>
#include <vector>

#include "monitor/profile.h"
#include "online/estimators.h"
#include "online/telemetry.h"

namespace kairos::online {

class StreamingProfileBuilder {
 public:
  /// `window_samples` is W, the rolling-profile length handed to re-solves;
  /// `interval_seconds` is the monitoring step.
  StreamingProfileBuilder(int num_workloads, size_t window_samples,
                          double interval_seconds,
                          double working_set_decay = 0.995);

  /// Ingests one step (one sample per workload, in workload order).
  /// Equivalent to IngestBatch over all workloads plus CommitStep().
  void Ingest(const std::vector<TelemetrySample>& samples);

  /// Batch hot loop: absorbs the current step's samples for workloads
  /// [begin, end). `samples` is the full step (indexed by workload id).
  /// Callers must cover every workload exactly once per step — disjoint
  /// ranges may run concurrently — then call CommitStep() once.
  void IngestBatch(const TelemetrySample* samples, int begin, int end);

  /// Advances the shared step state; single-threaded, once per step.
  void CommitStep();

  int num_workloads() const { return num_workloads_; }
  size_t samples_seen() const { return samples_seen_; }

  /// Rolling profile of workload `w` (series only — name/replicas/pinning
  /// metadata stay with the caller's problem template).
  monitor::WorkloadProfile Profile(int w) const;

  /// Window fingerprint of workload `w` (p95/mean over the last W samples).
  monitor::ProfileStats Stats(int w) const;

  /// Lifetime p95 CPU of workload `w` from the P² estimator (reporting).
  double LifetimeP95Cpu(int w) const { return p95_cpu_.Estimate(w); }

 private:
  int num_workloads_;
  size_t samples_seen_ = 0;
  RollingWindowBank cpu_, ram_, rate_;
  P2QuantileBank p95_cpu_;
  DecayingMaxBank working_set_;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_STREAMING_PROFILE_H_
