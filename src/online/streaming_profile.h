// StreamingProfileBuilder: turns a telemetry stream into rolling
// monitor::WorkloadProfiles the consolidation solver can re-solve against.
// Each workload keeps the last W samples (the solver's time-varying view),
// a P² estimator for the lifetime p95, and a decaying-max working-set
// estimate — all O(1) per sample.
#ifndef KAIROS_ONLINE_STREAMING_PROFILE_H_
#define KAIROS_ONLINE_STREAMING_PROFILE_H_

#include <cstddef>
#include <vector>

#include "monitor/profile.h"
#include "online/estimators.h"
#include "online/telemetry.h"

namespace kairos::online {

class StreamingProfileBuilder {
 public:
  /// `window_samples` is W, the rolling-profile length handed to re-solves;
  /// `interval_seconds` is the monitoring step.
  StreamingProfileBuilder(int num_workloads, size_t window_samples,
                          double interval_seconds,
                          double working_set_decay = 0.995);

  /// Ingests one step (one sample per workload, in workload order).
  void Ingest(const std::vector<TelemetrySample>& samples);

  int num_workloads() const { return static_cast<int>(cpu_.size()); }
  size_t samples_seen() const { return samples_seen_; }

  /// Rolling profile of workload `w` (series only — name/replicas/pinning
  /// metadata stay with the caller's problem template).
  monitor::WorkloadProfile Profile(int w) const;

  /// Window fingerprint of workload `w` (p95/mean over the last W samples).
  monitor::ProfileStats Stats(int w) const;

  /// Lifetime p95 CPU of workload `w` from the P² estimator (reporting).
  double LifetimeP95Cpu(int w) const { return p95_cpu_[w].Estimate(); }

 private:
  size_t samples_seen_ = 0;
  std::vector<RollingWindow> cpu_, ram_, rate_;
  std::vector<P2Quantile> p95_cpu_;
  std::vector<DecayingMax> working_set_;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_STREAMING_PROFILE_H_
