// Migration planning: turns (incumbent placement, target placement) into a
// sequenced MigrationPlan whose moves never push a server past its
// headroomed capacity mid-migration. Moves execute in plan order; each
// stage is one admission scan — a move is admitted only when the
// sim::CapacityLedger says the target server can absorb the slot on top of
// everything still (or already) living there — CPU, RAM, *and* the disk
// axis: the slot's update rate must stay within the target class's
// headroomed sustainable rate at the combined working set, so spindle-bound
// servers are never transiently overloaded. Capacity deadlocks (A and B
// must swap but neither fits first) are broken by bouncing a slot through
// a third server with room; if even that fails the remaining moves are
// emitted as a final forced stage and the plan is flagged unsafe.
#ifndef KAIROS_ONLINE_MIGRATION_H_
#define KAIROS_ONLINE_MIGRATION_H_

#include <string>
#include <vector>

#include "core/problem.h"

namespace kairos::online {

struct MigrationMove {
  int slot = -1;
  int workload = -1;
  int from = -1;
  int to = -1;
  /// True for a deadlock-breaking detour (the slot's final move follows in
  /// a later stage).
  bool bounce = false;
};

struct MigrationStage {
  std::vector<MigrationMove> moves;
};

struct MigrationPlan {
  std::vector<MigrationStage> stages;
  /// False when a capacity deadlock forced moves past the spill check (the
  /// final stage may transiently exceed headroom).
  bool safe = true;

  int total_moves() const;
  /// Deterministic human-readable rendering.
  std::string Render() const;
};

class MigrationPlanner {
 public:
  explicit MigrationPlanner(int max_stages = 32) : max_stages_(max_stages) {}

  /// Sequences the moves taking `from` to `to` for `problem`'s slots. The
  /// ledger charges each slot's profile series as-is (conservative: every
  /// slot carries its own instance overhead) against the headroomed target
  /// machine.
  MigrationPlan Plan(const core::ConsolidationProblem& problem,
                     const std::vector<int>& from,
                     const std::vector<int>& to) const;

 private:
  int max_stages_;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_MIGRATION_H_
