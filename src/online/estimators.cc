#include "online/estimators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace kairos::online {

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  ++count_;

  // Find the cell x falls into and update extreme heights.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three middle markers with the piecewise-parabolic formula.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      // Parabolic interpolation between the neighbours.
      const double hp =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        // Fall back to linear interpolation toward the chosen neighbour.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the few stored samples.
    std::vector<double> sorted(heights_, heights_ + count_);
    std::sort(sorted.begin(), sorted.end());
    const double rank = q_ * static_cast<double>(count_ - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

RollingWindow::RollingWindow(size_t capacity, double interval_seconds)
    : capacity_(capacity), interval_seconds_(interval_seconds) {
  assert(capacity >= 1);
}

void RollingWindow::Push(double value) {
  if (values_.size() < capacity_) {
    values_.push_back(value);
    return;
  }
  values_[start_] = value;  // overwrite the oldest
  start_ = (start_ + 1) % capacity_;
}

double RollingWindow::Mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double RollingWindow::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

util::TimeSeries RollingWindow::ToSeries() const {
  std::vector<double> ordered(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    ordered[i] = values_[(start_ + i) % values_.size()];
  }
  return util::TimeSeries(interval_seconds_, std::move(ordered));
}

void DecayingMax::Push(double value) {
  value_ = std::max(value, value_ * decay_);
}

// ---------------------------------------------------------------------------
// SoA banks
// ---------------------------------------------------------------------------

RollingWindowBank::RollingWindowBank(int streams, size_t capacity,
                                     double interval_seconds)
    : streams_(streams), capacity_(capacity), interval_seconds_(interval_seconds) {
  assert(streams >= 1 && capacity >= 1);
  values_.resize(capacity * static_cast<size_t>(streams));
  write_row_ = values_.data();  // slot 0
}

void RollingWindowBank::CommitStep() {
  // Mirrors RollingWindow::Push: fill slots 0..capacity-1 in order, then
  // overwrite the oldest (start_) and advance the ring.
  if (size_ < capacity_) {
    ++size_;
  } else {
    start_ = (start_ + 1) % capacity_;
  }
  const size_t next_slot = size_ < capacity_ ? size_ : start_;
  write_row_ = values_.data() + next_slot * static_cast<size_t>(streams_);
}

double RollingWindowBank::Mean(int w) const {
  if (size_ == 0) return 0.0;
  // Storage (slot) order, like RollingWindow::Mean iterating values_ —
  // identical FP summation order.
  double sum = 0;
  for (size_t i = 0; i < size_; ++i) {
    sum += values_[i * static_cast<size_t>(streams_) + w];
  }
  return sum / static_cast<double>(size_);
}

double RollingWindowBank::Max(int w) const {
  if (size_ == 0) return 0.0;
  double best = values_[w];
  for (size_t i = 1; i < size_; ++i) {
    best = std::max(best, values_[i * static_cast<size_t>(streams_) + w]);
  }
  return best;
}

util::TimeSeries RollingWindowBank::ToSeries(int w) const {
  std::vector<double> ordered(size_);
  for (size_t i = 0; i < size_; ++i) {
    const size_t slot = (start_ + i) % size_;
    ordered[i] = values_[slot * static_cast<size_t>(streams_) + w];
  }
  return util::TimeSeries(interval_seconds_, std::move(ordered));
}

P2QuantileBank::P2QuantileBank(int streams, double q)
    : streams_(streams), q_(q) {
  assert(streams >= 1 && q > 0.0 && q < 1.0);
  heights_.assign(static_cast<size_t>(streams) * 5, 0.0);
  positions_.resize(static_cast<size_t>(streams) * 5);
  for (int w = 0; w < streams; ++w) {
    for (int i = 0; i < 5; ++i) {
      positions_[static_cast<size_t>(w) * 5 + i] = static_cast<double>(i + 1);
    }
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
  for (int i = 0; i < 5; ++i) desired_step_[i] = desired_[i] + increments_[i];
}

void P2QuantileBank::Add(int w, double x) {
  double* h = &heights_[static_cast<size_t>(w) * 5];
  const size_t c = count_;  // samples committed before this step
  if (c < 5) {
    h[c] = x;
    if (c == 4) std::sort(h, h + 5);
    return;
  }

  double* pos = &positions_[static_cast<size_t>(w) * 5];
  int k;
  if (x < h[0]) {
    h[0] = x;
    k = 0;
  } else if (x >= h[4]) {
    h[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= h[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) pos[i] += 1.0;
  // desired_step_ is the shared ladder *after* this step's increment — the
  // exact value the scalar Add() sees after its `desired_ += increments_`.
  const double* des = desired_step_;

  for (int i = 1; i <= 3; ++i) {
    const double d = des[i] - pos[i];
    const double below = pos[i] - pos[i - 1];
    const double above = pos[i + 1] - pos[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      const double hp =
          h[i] + sign / (pos[i + 1] - pos[i - 1]) *
                     ((below + sign) * (h[i + 1] - h[i]) / above +
                      (above - sign) * (h[i] - h[i - 1]) / below);
      if (h[i - 1] < hp && hp < h[i + 1]) {
        h[i] = hp;
      } else {
        const int j = i + static_cast<int>(sign);
        h[i] += sign * (h[j] - h[i]) / (pos[j] - pos[i]);
      }
      pos[i] += sign;
    }
  }
}

void P2QuantileBank::CommitStep() {
  // Past five samples the scalar estimator adds increments_ to desired_
  // once per sample; lockstep makes that one shared addition per step.
  if (count_ >= 5) {
    for (int i = 0; i < 5; ++i) desired_[i] = desired_step_[i];
  }
  ++count_;
  for (int i = 0; i < 5; ++i) desired_step_[i] = desired_[i] + increments_[i];
}

double P2QuantileBank::Estimate(int w) const {
  const double* h = &heights_[static_cast<size_t>(w) * 5];
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::vector<double> sorted(h, h + count_);
    std::sort(sorted.begin(), sorted.end());
    const double rank = q_ * static_cast<double>(count_ - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return h[2];
}

DecayingMaxBank::DecayingMaxBank(int streams, double decay) : decay_(decay) {
  assert(streams >= 1);
  values_.assign(static_cast<size_t>(streams), 0.0);
}

void DecayingMaxBank::Push(int w, double value) {
  values_[w] = std::max(value, values_[w] * decay_);
}

}  // namespace kairos::online
