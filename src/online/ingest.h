// Striped parallel telemetry ingestion: the throughput tier between a
// TelemetryFeed and the StreamingProfileBuilder.
//
// Workloads are striped across S shards — fixed contiguous ranges decided
// once from the stream count (never from the thread count) — and each shard
// owns a disjoint slice of the builder's SoA estimator state. A step is
// ingested by running every shard's IngestBatch concurrently on the
// deterministic util::ThreadPool, then committing the shared step counters
// once on the calling thread. Because per-stream estimator state is
// disjoint and the shared counters advance only in the sequential commit,
// profiles are bit-identical at 1, 2, 4, or 8 ingest threads and to the
// serial StreamingProfileBuilder::Ingest path.
//
// The same stripe map drives the per-shard drift scan: each shard scans
// only its stripe (online/drift.h ScanRange) and the controller folds the
// per-shard results in shard order, so drift decisions are equally
// thread-count independent.
#ifndef KAIROS_ONLINE_INGEST_H_
#define KAIROS_ONLINE_INGEST_H_

#include <functional>
#include <memory>
#include <vector>

#include "online/streaming_profile.h"
#include "online/telemetry.h"
#include "util/thread_pool.h"

namespace kairos::obs {
class Counter;
class Sink;
}  // namespace kairos::obs

namespace kairos::online {

struct IngestOptions {
  /// Ingest worker threads. <= 1 runs every stripe serially on the caller
  /// (no pool, no synchronization). Results never depend on this value.
  int threads = 1;
  /// Stripe count. 0 picks StripeMap::AutoStripes(num_streams) — a function
  /// of the stream count only, so the stripe layout (and everything derived
  /// from it) is identical at every thread count.
  int stripes = 0;
};

/// Fixed assignment of streams [0, N) to stripes as contiguous ranges:
/// an even split with the remainder dealt to the lowest stripes.
class StripeMap {
 public:
  StripeMap(int num_streams, int stripes = 0);

  /// Default stripe count for `num_streams` streams: one stripe per 2048
  /// streams, clamped to [1, 256]. Thread-count independent by design.
  static int AutoStripes(int num_streams);

  int num_streams() const { return streams_; }
  int num_stripes() const { return stripes_; }

  /// Stripe s owns streams [begin(s), end(s)).
  int begin(int s) const { return s * base_ + (s < rem_ ? s : rem_); }
  int end(int s) const { return begin(s + 1); }
  int size(int s) const { return end(s) - begin(s); }

  /// Owning stripe of stream `w` (inverse of begin/end).
  int StripeOf(int w) const;

 private:
  int streams_;
  int stripes_;
  int base_;  ///< streams per stripe before remainder
  int rem_;   ///< first `rem_` stripes get one extra stream
};

/// Drives a StreamingProfileBuilder through the striped step protocol on a
/// worker pool. Owns the pool and the stripe map; the builder stays with
/// the caller (the controller reads profiles from it directly).
class IngestPlane {
 public:
  IngestPlane(StreamingProfileBuilder* builder, const IngestOptions& options);

  /// Attaches observability: "ingest.steps" / "ingest.stripe_batches"
  /// counters and "ingest.stripes" / "ingest.threads" gauges. Null detaches.
  void AttachSink(obs::Sink* sink);

  /// Ingests one step (one sample per stream, stream order): all stripes'
  /// IngestBatch in parallel, then one CommitStep on this thread.
  void IngestStep(const TelemetrySample* samples, int num_samples);
  void IngestStep(const std::vector<TelemetrySample>& samples);

  /// Runs fn(stripe, begin, end) for every stripe — in parallel on the
  /// pool when one exists. fn must touch only per-stream state inside its
  /// range (plus its own result slot); the per-shard drift/stats scans use
  /// this.
  void ForEachStripe(const std::function<void(int, int, int)>& fn);

  const StripeMap& stripes() const { return map_; }
  int threads() const { return pool_ ? pool_->num_workers() : 1; }

 private:
  StreamingProfileBuilder* builder_;
  StripeMap map_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when threads <= 1
  obs::Counter* steps_ = nullptr;
  obs::Counter* stripe_batches_ = nullptr;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_INGEST_H_
