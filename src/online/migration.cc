#include "online/migration.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "sim/capacity.h"

namespace kairos::online {

int MigrationPlan::total_moves() const {
  int n = 0;
  for (const auto& stage : stages) n += static_cast<int>(stage.moves.size());
  return n;
}

std::string MigrationPlan::Render() const {
  std::ostringstream out;
  out << "migration plan: " << total_moves() << " moves in " << stages.size()
      << " stages (" << (safe ? "safe" : "UNSAFE") << ")\n";
  for (size_t i = 0; i < stages.size(); ++i) {
    out << "  stage " << (i + 1) << ":";
    for (const auto& m : stages[i].moves) {
      out << " slot" << m.slot << "(w" << m.workload << ") " << m.from << "->"
          << m.to << (m.bounce ? "[bounce]" : "") << ";";
    }
    out << "\n";
  }
  return out.str();
}

MigrationPlan MigrationPlanner::Plan(const core::ConsolidationProblem& problem,
                                     const std::vector<int>& from,
                                     const std::vector<int>& to) const {
  MigrationPlan plan;
  const int num_slots = problem.TotalSlots();
  if (static_cast<int>(from.size()) != num_slots ||
      static_cast<int>(to.size()) != num_slots) {
    return plan;
  }

  // Per-slot series (replica expansion), truncated to the common CPU/RAM
  // length. The rate series deliberately does NOT shrink this horizon: a
  // short (or empty) rate series must never weaken the CPU/RAM spill
  // check, so missing rate samples are zero-filled instead (no disk demand
  // assumed where none was measured). Note the planner also charges the
  // *raw* profile series — unlike core::LoadAccountant it does not subtract
  // the per-instance CPU overhead, which is conservative mid-migration
  // (every moving slot briefly carries its own instance).
  size_t samples = SIZE_MAX;
  for (const auto& w : problem.workloads) {
    samples = std::min({samples, w.cpu_cores.size(), w.ram_bytes.size()});
  }
  if (samples == SIZE_MAX || samples == 0) samples = 1;

  std::vector<std::vector<double>> slot_cpu, slot_ram, slot_rate;
  std::vector<double> slot_ws;
  std::vector<int> workload_of_slot;
  for (int wi = 0; wi < static_cast<int>(problem.workloads.size()); ++wi) {
    const auto& w = problem.workloads[wi];
    std::vector<double> cpu(samples, 0.0), ram(samples, 0.0), rate(samples, 0.0);
    for (size_t t = 0; t < samples; ++t) {
      cpu[t] = t < w.cpu_cores.size() ? w.cpu_cores.at(t) : 0.0;
      ram[t] = t < w.ram_bytes.size() ? w.ram_bytes.at(t) : 0.0;
      rate[t] = t < w.update_rows_per_sec.size() ? w.update_rows_per_sec.at(t) : 0.0;
    }
    for (int r = 0; r < w.replicas; ++r) {
      slot_cpu.push_back(cpu);
      slot_ram.push_back(ram);
      slot_rate.push_back(rate);
      slot_ws.push_back(w.working_set_bytes);
      workload_of_slot.push_back(wi);
    }
  }

  // The usable fleet (spare servers are legitimate bounce targets). The
  // ledger additionally covers stranded source indices (e.g. a drained
  // server) so their loads are accounted for, but bounces never land there.
  // Per-server capacities follow the problem's FleetSpec machine classes.
  const int fleet = problem.ServerCap();
  int num_servers = fleet;
  for (int s = 0; s < num_slots; ++s) {
    num_servers = std::max({num_servers, from[s] + 1, to[s] + 1});
  }

  // The ledger shares the problem's per-class disk models (legacy shared
  // model for classes without their own), so the spill check enforces
  // MaxSustainableRate per class: a staged plan that transiently overloads
  // a spindle-bound server is held back or flagged unsafe.
  sim::CapacityLedger ledger(
      problem.fleet, num_servers, static_cast<int>(samples),
      problem.cpu_headroom, problem.ram_headroom,
      static_cast<double>(problem.instance_ram_overhead_bytes),
      problem.disk_model, problem.disk_headroom);

  std::vector<int> state = from;
  std::vector<int> pending;
  for (int s = 0; s < num_slots; ++s) {
    ledger.Add(state[s], slot_cpu[s], slot_ram[s], slot_rate[s], slot_ws[s]);
    if (from[s] != to[s]) pending.push_back(s);
  }

  // Anti-affine slot pairs (replicas of one workload, plus the problem's
  // explicit pairs): a move must not co-locate them even transiently.
  std::vector<std::vector<int>> conflicts(num_slots);
  for (int a = 0; a < num_slots; ++a) {
    for (int b = a + 1; b < num_slots; ++b) {
      bool conflict = workload_of_slot[a] == workload_of_slot[b];
      for (const auto& [wa, wb] : problem.anti_affinity) {
        conflict = conflict ||
                   (workload_of_slot[a] == wa && workload_of_slot[b] == wb) ||
                   (workload_of_slot[a] == wb && workload_of_slot[b] == wa);
      }
      if (conflict) {
        conflicts[a].push_back(b);
        conflicts[b].push_back(a);
      }
    }
  }
  const auto affinity_ok = [&](int slot, int server) {
    for (int other : conflicts[slot]) {
      if (state[other] == server) return false;
    }
    return true;
  };

  while (!pending.empty() &&
         static_cast<int>(plan.stages.size()) < max_stages_) {
    MigrationStage stage;

    // Admission scan: moves execute in plan order, so capacity freed by an
    // admitted move is visible to the next candidate.
    std::vector<int> still_pending;
    for (int slot : pending) {
      const int target = to[slot];
      if (affinity_ok(slot, target) &&
          ledger.CanAdd(target, slot_cpu[slot], slot_ram[slot],
                        slot_rate[slot], slot_ws[slot])) {
        ledger.Add(target, slot_cpu[slot], slot_ram[slot], slot_rate[slot],
                   slot_ws[slot]);
        ledger.Remove(state[slot], slot_cpu[slot], slot_ram[slot],
                      slot_rate[slot], slot_ws[slot]);
        stage.moves.push_back(
            {slot, workload_of_slot[slot], state[slot], target, false});
        state[slot] = target;
      } else {
        still_pending.push_back(slot);
      }
    }
    pending = std::move(still_pending);

    if (stage.moves.empty()) {
      // Capacity deadlock: bounce one slot through a third server with room
      // (within the usable fleet — never a stranded/drained index).
      bool bounced = false;
      for (int slot : pending) {
        for (int s = 0; s < fleet && !bounced; ++s) {
          if (s == state[slot] || s == to[slot]) continue;
          // Never detour through a drained machine class.
          if (problem.fleet.DrainedServer(s)) continue;
          if (affinity_ok(slot, s) &&
              ledger.CanAdd(s, slot_cpu[slot], slot_ram[slot],
                            slot_rate[slot], slot_ws[slot])) {
            ledger.Add(s, slot_cpu[slot], slot_ram[slot], slot_rate[slot],
                       slot_ws[slot]);
            ledger.Remove(state[slot], slot_cpu[slot], slot_ram[slot],
                          slot_rate[slot], slot_ws[slot]);
            stage.moves.push_back(
                {slot, workload_of_slot[slot], state[slot], s, true});
            state[slot] = s;
            bounced = true;
          }
        }
        if (bounced) break;
      }
      if (!bounced) {
        // Nothing fits anywhere: force the remaining moves and flag them.
        for (int slot : pending) {
          stage.moves.push_back(
              {slot, workload_of_slot[slot], state[slot], to[slot], false});
          state[slot] = to[slot];
        }
        pending.clear();
        plan.safe = false;
      }
    }
    plan.stages.push_back(std::move(stage));
  }

  if (!pending.empty()) {
    // Stage budget exhausted (pathological bouncing): force the rest.
    MigrationStage stage;
    for (int slot : pending) {
      stage.moves.push_back(
          {slot, workload_of_slot[slot], state[slot], to[slot], false});
    }
    plan.stages.push_back(std::move(stage));
    plan.safe = false;
  }
  return plan;
}

}  // namespace kairos::online
