// Incremental statistics for streaming telemetry: a P² quantile estimator
// (Jain & Chlamtac), a fixed-capacity rolling window, and a decaying peak
// tracker for working sets. These let the online controller maintain
// per-workload profile statistics in O(1) per sample instead of re-scanning
// history.
#ifndef KAIROS_ONLINE_ESTIMATORS_H_
#define KAIROS_ONLINE_ESTIMATORS_H_

#include <cstddef>
#include <vector>

#include "util/timeseries.h"

namespace kairos::online {

/// Streaming quantile estimation with the P² algorithm: five markers whose
/// heights approximate the q-quantile without storing samples. Exact for
/// the first five observations, O(1) memory and time per update.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.95 for the p95.
  explicit P2Quantile(double q);

  void Add(double x);
  /// Current estimate (exact below 5 samples; 0 when empty).
  double Estimate() const;
  size_t count() const { return count_; }

 private:
  double q_;
  size_t count_ = 0;
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

/// Last-W samples of one signal, with window statistics and export to the
/// profile time-series format. Push is O(1) (ring buffer); the statistics
/// and export walk the window.
class RollingWindow {
 public:
  RollingWindow(size_t capacity, double interval_seconds);

  void Push(double value);
  size_t size() const { return values_.size(); }
  bool full() const { return values_.size() == capacity_; }

  double Mean() const;
  double Max() const;

  /// Window contents, oldest first, as a TimeSeries.
  util::TimeSeries ToSeries() const;

 private:
  size_t capacity_;
  double interval_seconds_;
  std::vector<double> values_;  // ring; oldest at start_ once full
  size_t start_ = 0;
};

/// Peak tracker with geometric decay: follows a rising signal exactly and
/// forgets spikes at `decay` per sample. Used for working-set estimates,
/// which should deflate slowly after a burst.
class DecayingMax {
 public:
  explicit DecayingMax(double decay = 0.99) : decay_(decay) {}

  void Push(double value);
  double value() const { return value_; }

 private:
  double decay_;
  double value_ = 0.0;
};

// ---------------------------------------------------------------------------
// SoA estimator banks — the batch form of the scalar estimators above.
//
// One bank holds the state of N per-stream estimators in flat arrays and is
// updated in *lockstep*: every monitoring step, every stream absorbs exactly
// one value (streams may be pushed from different threads as long as each
// thread touches a disjoint stream range), then a single thread calls
// CommitStep() to advance the shared step counters. Because each stream's
// update reads and writes only that stream's slice plus shared read-only
// step state, the bank's contents after k committed steps are bit-identical
// to k Push/Add calls on N independent scalar estimator objects — no matter
// how the streams were partitioned across threads. The scalar classes are
// the reference semantics; the banks are the hot path.
// ---------------------------------------------------------------------------

/// N RollingWindows over one signal, slot-major: a step writes one
/// contiguous row of N doubles instead of N strided ring slots.
class RollingWindowBank {
 public:
  RollingWindowBank(int streams, size_t capacity, double interval_seconds);

  /// Stream `w`'s value for the current (uncommitted) step. Writes only
  /// stream w's cell of the step row — safe concurrently for distinct w.
  void Push(int w, double value) { write_row_[w] = value; }

  /// Advances the shared ring state; call exactly once per step, after
  /// every stream was pushed, from a single thread.
  void CommitStep();

  int streams() const { return streams_; }
  size_t size() const { return size_; }
  bool full() const { return size_ == capacity_; }

  /// Bit-identical to the matching RollingWindow accessor (same summation
  /// and comparison order).
  double Mean(int w) const;
  double Max(int w) const;
  util::TimeSeries ToSeries(int w) const;

 private:
  int streams_;
  size_t capacity_;
  double interval_seconds_;
  size_t size_ = 0;   ///< committed samples per stream (<= capacity)
  size_t start_ = 0;  ///< oldest slot once full (== scalar start_)
  std::vector<double> values_;  ///< [slot * streams + w]
  double* write_row_;           ///< &values_[write_slot * streams]
};

/// N P² estimators for the same quantile. Marker heights/positions are
/// per-stream; the sample count and the desired-position ladder are shared
/// (they depend only on q and the step count, which lockstep makes common
/// to every stream) and advance by the same single FP addition per step
/// that the scalar estimator performs — keeping the math bit-identical.
class P2QuantileBank {
 public:
  P2QuantileBank(int streams, double q);

  /// Stream w's value for the current step (one per stream per step;
  /// disjoint streams may be updated concurrently).
  void Add(int w, double x);

  /// Call exactly once per step, after every stream was added.
  void CommitStep();

  double Estimate(int w) const;
  size_t count() const { return count_; }  ///< committed samples per stream

 private:
  int streams_;
  double q_;
  size_t count_ = 0;
  double increments_[5];
  double desired_[5];       ///< ladder after count_ committed samples
  double desired_step_[5];  ///< ladder Add() must see for the current step
  std::vector<double> heights_;    ///< [w * 5 + i]
  std::vector<double> positions_;  ///< [w * 5 + i]
};

/// N DecayingMax trackers. Stateless across streams: no commit needed.
class DecayingMaxBank {
 public:
  DecayingMaxBank(int streams, double decay);

  void Push(int w, double value);
  double value(int w) const { return values_[w]; }

 private:
  double decay_;
  std::vector<double> values_;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_ESTIMATORS_H_
