// Incremental statistics for streaming telemetry: a P² quantile estimator
// (Jain & Chlamtac), a fixed-capacity rolling window, and a decaying peak
// tracker for working sets. These let the online controller maintain
// per-workload profile statistics in O(1) per sample instead of re-scanning
// history.
#ifndef KAIROS_ONLINE_ESTIMATORS_H_
#define KAIROS_ONLINE_ESTIMATORS_H_

#include <cstddef>
#include <vector>

#include "util/timeseries.h"

namespace kairos::online {

/// Streaming quantile estimation with the P² algorithm: five markers whose
/// heights approximate the q-quantile without storing samples. Exact for
/// the first five observations, O(1) memory and time per update.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.95 for the p95.
  explicit P2Quantile(double q);

  void Add(double x);
  /// Current estimate (exact below 5 samples; 0 when empty).
  double Estimate() const;
  size_t count() const { return count_; }

 private:
  double q_;
  size_t count_ = 0;
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

/// Last-W samples of one signal, with window statistics and export to the
/// profile time-series format. Push is O(1) (ring buffer); the statistics
/// and export walk the window.
class RollingWindow {
 public:
  RollingWindow(size_t capacity, double interval_seconds);

  void Push(double value);
  size_t size() const { return values_.size(); }
  bool full() const { return values_.size() == capacity_; }

  double Mean() const;
  double Max() const;

  /// Window contents, oldest first, as a TimeSeries.
  util::TimeSeries ToSeries() const;

 private:
  size_t capacity_;
  double interval_seconds_;
  std::vector<double> values_;  // ring; oldest at start_ once full
  size_t start_ = 0;
};

/// Peak tracker with geometric decay: follows a rising signal exactly and
/// forgets spikes at `decay` per sample. Used for working-set estimates,
/// which should deflate slowly after a burst.
class DecayingMax {
 public:
  explicit DecayingMax(double decay = 0.99) : decay_(decay) {}

  void Push(double value);
  double value() const { return value_; }

 private:
  double decay_;
  double value_ = 0.0;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_ESTIMATORS_H_
