#include "online/drift.h"

#include <cmath>

namespace kairos::online {

namespace {

bool Deviates(double current, double reference, double relative, double floor) {
  const double delta = std::abs(current - reference);
  if (delta <= floor) return false;
  return delta > relative * std::abs(reference);
}

}  // namespace

void DriftDetector::Rebase(int step, std::vector<monitor::ProfileStats> reference) {
  rebased_step_ = step;
  reference_ = std::move(reference);
}

DriftDecision DriftDetector::Check(
    int step, const std::vector<monitor::ProfileStats>& current,
    bool forecast_violation) const {
  if (forecast_violation) return {true, "violation-forecast"};
  if (reference_.empty() || current.size() != reference_.size()) return {};
  if (rebased_step_ >= 0 && step - rebased_step_ < config_.cooldown_steps) return {};

  for (size_t w = 0; w < current.size(); ++w) {
    if (Deviates(current[w].p95_cpu_cores, reference_[w].p95_cpu_cores,
                 config_.relative_threshold, config_.absolute_cpu_floor_cores) ||
        Deviates(current[w].p95_ram_bytes, reference_[w].p95_ram_bytes,
                 config_.relative_threshold, config_.absolute_ram_floor_bytes)) {
      return {true, "drift:w" + std::to_string(w)};
    }
  }
  return {};
}

}  // namespace kairos::online
