#include "online/drift.h"

#include <cmath>

namespace kairos::online {

namespace {

bool Deviates(double current, double reference, double relative, double floor) {
  const double delta = std::abs(current - reference);
  if (delta <= floor) return false;
  return delta > relative * std::abs(reference);
}

}  // namespace

void DriftDetector::Rebase(int step, std::vector<monitor::ProfileStats> reference) {
  rebased_step_ = step;
  reference_ = std::move(reference);
}

bool DriftDetector::ScanEnabled(int step, size_t num_streams) const {
  if (reference_.empty() || num_streams != reference_.size()) return false;
  if (rebased_step_ >= 0 && step - rebased_step_ < config_.cooldown_steps) {
    return false;
  }
  return true;
}

DriftScan DriftDetector::ScanRange(
    const std::vector<monitor::ProfileStats>& current, int begin,
    int end) const {
  DriftScan scan;
  for (int w = begin; w < end; ++w) {
    if (Deviates(current[w].p95_cpu_cores, reference_[w].p95_cpu_cores,
                 config_.relative_threshold, config_.absolute_cpu_floor_cores) ||
        Deviates(current[w].p95_ram_bytes, reference_[w].p95_ram_bytes,
                 config_.relative_threshold, config_.absolute_ram_floor_bytes)) {
      if (scan.first_stream < 0) scan.first_stream = w;
      ++scan.drifted_streams;
    }
  }
  return scan;
}

DriftDecision DriftDetector::Decide(const DriftScan& folded,
                                    int drifted_shards) const {
  DriftDecision decision;
  if (folded.drifted_streams == 0) return decision;
  decision.resolve = true;
  decision.reason = "drift:w" + std::to_string(folded.first_stream);
  decision.first_stream = folded.first_stream;
  decision.drifted_streams = folded.drifted_streams;
  decision.drifted_shards = drifted_shards;
  return decision;
}

DriftDecision DriftDetector::Check(
    int step, const std::vector<monitor::ProfileStats>& current,
    bool forecast_violation) const {
  if (forecast_violation) {
    DriftDecision decision;
    decision.resolve = true;
    decision.reason = "violation-forecast";
    return decision;
  }
  if (!ScanEnabled(step, current.size())) return {};
  const DriftScan scan =
      ScanRange(current, 0, static_cast<int>(current.size()));
  return Decide(scan, scan.drifted_streams > 0 ? 1 : 0);
}

}  // namespace kairos::online
