// ConsolidationController: the serving control loop that keeps a
// consolidation plan current under live traffic —
//
//   telemetry -> rolling profiles -> drift detection -> migration-aware
//   re-solve (warm-started portfolio) -> staged migration plan
//
// One Ingest() per monitoring step. The controller bootstraps a plan once
// enough samples accumulated, then re-solves only when the drift detector
// fires (profile deviation or a forecast constraint violation) or when a
// server is drained. Re-solves extend the problem with the incumbent
// placement and a migration cost, warm-start the solver portfolio from the
// incumbent, and sequence the resulting moves through the spill-checked
// MigrationPlanner.
//
// Determinism: fixed telemetry + ControllerConfig::seed give a
// byte-identical RenderHistory() regardless of portfolio thread count (no
// early-stop target is set, so the portfolio winner is schedule-independent).
#ifndef KAIROS_ONLINE_CONTROLLER_H_
#define KAIROS_ONLINE_CONTROLLER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/problem.h"
#include "online/drift.h"
#include "online/ingest.h"
#include "online/migration.h"
#include "online/streaming_profile.h"
#include "online/telemetry.h"
#include "solve/portfolio.h"
#include "solve/shard.h"

namespace kairos::online {

struct ControllerConfig {
  /// Problem template: workload metadata (names, replicas, pins),
  /// anti-affinity pairs, target machine, headrooms, weights, disk model.
  /// Workload time series are ignored — rolling profiles replace them.
  core::ConsolidationProblem base;

  /// Servers available to place on (the fleet). 0 means one per slot.
  int num_servers = 0;

  /// Rolling profile length (samples) handed to each re-solve.
  int window_samples = 12;
  /// Monitoring step length (the rolling profiles' sampling interval).
  double sample_interval_seconds = 300.0;
  /// Drift is checked every `control_interval` ingested steps.
  int control_interval = 2;
  /// Samples required before the bootstrap solve.
  int warmup_samples = 6;

  DriftConfig drift;

  /// Migration-aware re-solving: warm-start from the incumbent and charge
  /// `migration_cost_weight` objective points per moved slot. false gives
  /// the cold-re-solve baseline (fresh solve, no move penalty).
  bool migration_aware = true;
  double migration_cost_weight = 25.0;

  /// Shard-routed drift repair: when a drift re-solve names a single
  /// workload, first re-solve only the fleet shard owning it
  /// (solve::ShardRepair, warm-started from the incumbent) and adopt the
  /// stitched plan when it scores no worse; fall back to the full
  /// portfolio otherwise. Off by default — existing transcripts stay
  /// byte-identical. Requires migration_aware (the repair stitches around
  /// the incumbent placement).
  bool shard_repair = false;
  /// Partitioner knobs for the shard-routed repair.
  solve::ShardOptions shard;

  /// Striped parallel ingestion (online/ingest.h). ingest_threads > 1 runs
  /// each stripe's batch on the deterministic util::ThreadPool;
  /// ingest_stripes = 0 picks StripeMap::AutoStripes from the stream count.
  /// The defaults (1/0) keep the legacy serial builder path and its exact
  /// counter set. Profiles, drift decisions, and RenderHistory() are
  /// byte-identical across every setting of both knobs: stripes own
  /// disjoint estimator state, the stripe map never depends on the thread
  /// count, and all reductions fold in sequential stripe order.
  int ingest_threads = 1;
  int ingest_stripes = 0;

  /// Portfolio raced at each re-solve (registry names).
  std::vector<std::string> solvers = {"polish", "greedy", "anneal", "tabu"};
  solve::SolveBudget budget = MakeDefaultBudget();
  /// Portfolio threads (0 = auto). Results are thread-count independent.
  int threads = 0;
  uint64_t seed = 1;

  /// Observability sink, nullable. When attached the controller records its
  /// per-stage timeline on track "controller" — "detect" / "resolve" /
  /// "plan" / "ledger" points per control step plus a "detect_to_migrate"
  /// latency per adopted plan — and forwards the sink to the re-solve
  /// portfolio (budget.sink) unless the budget already carries one. A null
  /// sink costs one predictable branch per stage; an attached one never
  /// touches an RNG stream, so RenderHistory() stays byte-identical with
  /// the observer on or off.
  obs::Sink* sink = nullptr;

  /// Re-solve budget sized for frequent incremental solves, not one-shot
  /// offline runs.
  static solve::SolveBudget MakeDefaultBudget() {
    solve::SolveBudget budget;
    budget.max_iterations = 8000;
    budget.direct_evaluations = 500;
    budget.probe_direct_evaluations = 250;
    budget.local_search_max_sweeps = 40;
    return budget;
  }
};

/// One control decision that led to a re-solve.
struct ControlEvent {
  int step = -1;
  std::string reason;  // "bootstrap", "drift:<w>", "violation-forecast", "node-drain"
  std::string winner;  // portfolio member that produced the plan
  int servers_before = 0;
  int servers_after = 0;
  /// Migration moves (0 for the bootstrap placement) and their staging.
  int moves = 0;
  int stages = 0;
  bool migration_safe = true;
  /// False when even the portfolio's best plan violates constraints (the
  /// controller still adopts it — serving degraded beats not serving — but
  /// the transcript makes it visible).
  bool feasible = true;
  double objective = 0;          ///< Includes the migration penalty.
  double service_objective = 0;  ///< objective minus the migration penalty.
  double migration_cost = 0;
  /// The placement adopted by this event (server per slot).
  std::vector<int> plan;
};

class ConsolidationController {
 public:
  explicit ConsolidationController(const ControllerConfig& config);

  /// Feeds one monitoring step (one sample per workload, matching
  /// config.base.workloads order). May trigger a re-solve.
  void Ingest(const std::vector<TelemetrySample>& samples);

  /// Drains every step from `feed`; returns the number of steps ingested.
  int RunToEnd(TelemetryFeed* feed);

  /// Retires the highest-indexed server *in use*: shrinks the fleet by one
  /// and forces an evacuating re-solve. Returns false without draining when
  /// only one server remains, a workload is pinned to an affected server
  /// (a pinned-server drain needs an operator decision, not a relabel), or
  /// the fleet mixes machine classes (the relabel trick assumes identical
  /// machines — use DrainClass for heterogeneous fleets).
  bool DrainHighestServer();

  /// Class-targeted drain ("evacuate all server1-generation nodes"): marks
  /// every server of fleet class `class_index` drained and forces an
  /// evacuating re-solve. Returns false without draining when the index is
  /// invalid or already drained, no usable server would remain, or a
  /// workload is pinned to a server of the class.
  bool DrainClass(int class_index);

  /// Why the last Drain* call refused (empty after a successful drain, or
  /// before any drain was attempted). The heterogeneous-fleet refusal of
  /// DrainHighestServer names the class mix and points at DrainClass.
  const std::string& last_drain_refusal() const { return last_drain_refusal_; }

  /// Incumbent placement (empty before the bootstrap solve).
  const std::vector<int>& assignment() const { return assignment_; }
  int active_servers() const { return active_servers_; }
  int steps_ingested() const { return step_ + 1; }

  const std::vector<ControlEvent>& history() const { return history_; }
  const std::vector<MigrationPlan>& migration_plans() const {
    return migration_plans_;
  }
  /// Migration moves across all re-solves (bootstrap placement excluded).
  int total_moves() const;
  /// Service objective of the last re-solve (0 before bootstrap).
  double last_service_objective() const;
  /// Placement quality of the incumbent on the *current* rolling profiles,
  /// with no migration term (0 before bootstrap). The metric the
  /// aware-vs-cold comparison is asserted and reported on.
  double CurrentServiceObjective() const;

  /// Deterministic transcript: one line per control event plus the plan
  /// vector — byte-identical for fixed telemetry, config, and seed.
  std::string RenderHistory() const;

  /// The problem the controller would solve right now (rolling profiles
  /// merged into the template). Exposed for tests and reporting.
  core::ConsolidationProblem SnapshotProblem() const;

 private:
  void RunControl(const std::string& forced_reason);
  /// `drift` carries the scan detail of a drift-triggered re-solve (null
  /// for bootstrap/forced/violation reasons): multi-stream drift escalates
  /// past the shard repair to the full portfolio.
  void Resolve(core::ConsolidationProblem* problem, const std::string& reason,
               const DriftDecision* drift = nullptr);
  /// Adopts `plan` as the incumbent: control event, staged migration plan,
  /// stage timeline, counters, drift rebase. The shared tail of the full
  /// portfolio re-solve and the shard-routed repair.
  void AdoptPlan(const core::ConsolidationProblem& problem,
                 const std::string& reason, const std::string& winner,
                 const core::ConsolidationPlan& plan,
                 const std::vector<int>& before);
  std::vector<monitor::ProfileStats> CurrentStats();
  /// Drift check for the current step: per-stripe ScanRange on the ingest
  /// plane folded in stripe order (identical decision to the serial
  /// DriftDetector::Check), plus shard attribution for escalation.
  DriftDecision DetectDrift(bool forecast_violation);

  /// Lazily interns the controller's trace ids (no-op without a sink).
  void InternObsIds();
  /// Seconds since the current control step's detection clock started
  /// (0 without a sink).
  double StageSeconds() const;
  /// Emits one stage point on track "controller": i0 = step, i1 = `value`,
  /// d0 = StageSeconds() — the stage's offset in the detection-to-migration
  /// timeline. One branch when no sink is attached.
  void EmitStage(uint32_t name_id, int64_t value);

  ControllerConfig config_;
  StreamingProfileBuilder builder_;
  /// Striped parallel ingestion tier; null when the config keeps the
  /// legacy serial path (ingest_threads <= 1 and ingest_stripes == 0).
  std::unique_ptr<IngestPlane> ingest_;
  DriftDetector drift_;
  MigrationPlanner planner_;

  // Controller trace ids and metric handles (single control thread: the
  // "controller" track has one writer by construction). Handles are cached
  // at first use so per-step/per-resolve paths never re-intern names or
  // take the registry lock.
  bool obs_ids_ready_ = false;
  uint32_t obs_track_ = 0;
  uint32_t obs_detect_ = 0;
  uint32_t obs_resolve_ = 0;
  uint32_t obs_plan_ = 0;
  uint32_t obs_ledger_ = 0;
  uint32_t obs_latency_ = 0;
  obs::Counter* obs_resolves_ = nullptr;
  obs::Counter* obs_infeasible_ = nullptr;
  obs::Counter* obs_samples_ingested_ = nullptr;
  obs::Counter* obs_steps_ingested_ = nullptr;
  obs::Gauge* obs_ingest_seconds_ = nullptr;
  obs::Histogram* obs_latency_hist_ = nullptr;
  double ingest_seconds_accum_ = 0;
  std::chrono::steady_clock::time_point stage_start_;

  int step_ = -1;
  int active_servers_ = 0;
  int solves_ = 0;
  std::string last_drain_refusal_;
  std::vector<int> assignment_;
  std::vector<ControlEvent> history_;
  std::vector<MigrationPlan> migration_plans_;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_CONTROLLER_H_
