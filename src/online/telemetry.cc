#include "online/telemetry.h"

#include <algorithm>
#include <cassert>

#include "obs/sink.h"

namespace kairos::online {

void TelemetryFeed::AttachSink(obs::Sink* sink) {
  if (sink == nullptr) {
    steps_emitted_ = nullptr;
    samples_emitted_ = nullptr;
    return;
  }
  steps_emitted_ = sink->metrics().counter("telemetry.steps_emitted");
  samples_emitted_ = sink->metrics().counter("telemetry.samples_emitted");
}

void TelemetryFeed::CountEmitted(size_t samples) {
  if (steps_emitted_ == nullptr) return;
  steps_emitted_->Add(1);
  samples_emitted_->Add(static_cast<int64_t>(samples));
}

ReplayFeed::ReplayFeed(std::vector<std::string> names,
                       std::vector<std::vector<TelemetrySample>> steps)
    : names_(std::move(names)), steps_(std::move(steps)) {
  for (const auto& step : steps_) {
    assert(step.size() == names_.size());
    (void)step;
  }
}

ReplayFeed ReplayFeed::FromProfiles(
    const std::vector<monitor::WorkloadProfile>& profiles) {
  std::vector<std::string> names;
  size_t horizon = SIZE_MAX;
  for (const auto& p : profiles) {
    names.push_back(p.name);
    horizon = std::min({horizon, p.cpu_cores.size(), p.ram_bytes.size(),
                        p.update_rows_per_sec.size()});
  }
  if (horizon == SIZE_MAX) horizon = 0;

  std::vector<std::vector<TelemetrySample>> steps;
  steps.reserve(horizon);
  for (size_t t = 0; t < horizon; ++t) {
    std::vector<TelemetrySample> step(profiles.size());
    for (size_t w = 0; w < profiles.size(); ++w) {
      step[w].cpu_cores = profiles[w].cpu_cores.at(t);
      step[w].ram_bytes = profiles[w].ram_bytes.at(t);
      step[w].update_rows_per_sec = profiles[w].update_rows_per_sec.at(t);
      step[w].working_set_bytes = profiles[w].working_set_bytes;
    }
    steps.push_back(std::move(step));
  }
  return ReplayFeed(std::move(names), std::move(steps));
}

ReplayFeed ReplayFeed::FromTraces(const std::vector<trace::ServerTrace>& traces) {
  return FromProfiles(trace::ToProfiles(traces));
}

ReplayFeed ReplayFeed::FromRun(const workload::RunResult& run,
                               const std::vector<double>& working_set_bytes) {
  assert(working_set_bytes.size() == run.workloads.size());
  std::vector<std::string> names;
  size_t horizon = run.server.cpu_cores.size();
  for (const auto& w : run.workloads) {
    names.push_back(w.name);
    horizon = std::min({horizon, w.tps.size(), w.update_rows_per_sec.size()});
  }

  std::vector<std::vector<TelemetrySample>> steps;
  steps.reserve(horizon);
  for (size_t t = 0; t < horizon; ++t) {
    double total_tps = 0;
    for (const auto& w : run.workloads) total_tps += w.tps.at(t);
    std::vector<TelemetrySample> step(run.workloads.size());
    for (size_t w = 0; w < run.workloads.size(); ++w) {
      const double share =
          total_tps > 0 ? run.workloads[w].tps.at(t) / total_tps
                        : 1.0 / static_cast<double>(run.workloads.size());
      step[w].cpu_cores = run.server.cpu_cores.at(t) * share;
      step[w].ram_bytes = working_set_bytes[w];
      step[w].update_rows_per_sec = run.workloads[w].update_rows_per_sec.at(t);
      step[w].working_set_bytes = working_set_bytes[w];
    }
    steps.push_back(std::move(step));
  }
  return ReplayFeed(std::move(names), std::move(steps));
}

int ReplayFeed::num_workloads() const { return static_cast<int>(names_.size()); }

std::string ReplayFeed::workload_name(int w) const { return names_[w]; }

bool ReplayFeed::Next(std::vector<TelemetrySample>* out) {
  if (cursor_ >= steps_.size()) return false;
  // assign() reuses the caller's buffer: after the first step the loop
  // `while (feed.Next(&samples)) controller.Ingest(samples);` never
  // allocates (every step has the same workload count).
  const std::vector<TelemetrySample>& step = steps_[cursor_++];
  out->assign(step.begin(), step.end());
  CountEmitted(out->size());
  return true;
}

}  // namespace kairos::online
