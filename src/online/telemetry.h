// Telemetry ingestion for the online consolidation controller: one
// TelemetrySample per workload per monitoring step, pulled from a
// TelemetryFeed. Feeds replay historical rrdtool-style series
// (trace::Dataset / trace::MakeScenario profiles) or re-shape a live
// workload::Driver run into per-workload samples.
#ifndef KAIROS_ONLINE_TELEMETRY_H_
#define KAIROS_ONLINE_TELEMETRY_H_

#include <string>
#include <vector>

#include "monitor/profile.h"
#include "trace/dataset.h"
#include "workload/driver.h"

namespace kairos::obs {
class Counter;
class Sink;
}  // namespace kairos::obs

namespace kairos::online {

/// One monitoring window's measurements for one workload.
struct TelemetrySample {
  double cpu_cores = 0;
  double ram_bytes = 0;
  double update_rows_per_sec = 0;
  double working_set_bytes = 0;
};

/// A stream of telemetry steps; each step yields one sample per workload,
/// in a fixed workload order.
class TelemetryFeed {
 public:
  virtual ~TelemetryFeed() = default;

  virtual int num_workloads() const = 0;
  virtual std::string workload_name(int w) const = 0;

  /// Fills `out` (resized to num_workloads()) with the next step's samples.
  /// Returns false when the feed is exhausted (out untouched).
  virtual bool Next(std::vector<TelemetrySample>* out) = 0;

  /// Attaches an observability sink: every successful Next() counts into
  /// "telemetry.steps_emitted" / "telemetry.samples_emitted". Counter
  /// handles are cached here once, so the per-step cost is two relaxed
  /// adds; a null sink detaches (one branch per step).
  void AttachSink(obs::Sink* sink);

 protected:
  /// Subclasses call this once per successful Next() with the step's
  /// sample count.
  void CountEmitted(size_t samples);

 private:
  obs::Counter* steps_emitted_ = nullptr;
  obs::Counter* samples_emitted_ = nullptr;
};

/// Replays pre-recorded per-step samples, e.g. converted trace series.
class ReplayFeed : public TelemetryFeed {
 public:
  ReplayFeed(std::vector<std::string> names,
             std::vector<std::vector<TelemetrySample>> steps);

  /// One step per series sample (the shortest series bounds the horizon).
  static ReplayFeed FromProfiles(const std::vector<monitor::WorkloadProfile>& profiles);

  /// Replays a synthesized or imported dataset (trace::ToProfiles applied).
  static ReplayFeed FromTraces(const std::vector<trace::ServerTrace>& traces);

  /// Re-shapes a workload::Driver run: the server's measured CPU demand is
  /// apportioned to workloads by their per-window throughput share, the
  /// row-modification rates are taken per workload, and RAM is the caller's
  /// per-workload working set (the driver's server is shared, so per-tenant
  /// RAM is not directly observable).
  static ReplayFeed FromRun(const workload::RunResult& run,
                            const std::vector<double>& working_set_bytes);

  int num_workloads() const override;
  std::string workload_name(int w) const override;
  bool Next(std::vector<TelemetrySample>* out) override;

  int steps_total() const { return static_cast<int>(steps_.size()); }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<TelemetrySample>> steps_;  // [step][workload]
  size_t cursor_ = 0;
};

}  // namespace kairos::online

#endif  // KAIROS_ONLINE_TELEMETRY_H_
