#include "online/ingest.h"

#include <algorithm>
#include <cassert>

#include "obs/sink.h"

namespace kairos::online {

StripeMap::StripeMap(int num_streams, int stripes) : streams_(num_streams) {
  assert(num_streams >= 1);
  if (stripes <= 0) stripes = AutoStripes(num_streams);
  stripes_ = std::max(1, std::min(stripes, num_streams));
  base_ = streams_ / stripes_;
  rem_ = streams_ % stripes_;
}

int StripeMap::AutoStripes(int num_streams) {
  const int stripes = (num_streams + 2047) / 2048;
  return std::max(1, std::min(stripes, 256));
}

int StripeMap::StripeOf(int w) const {
  assert(w >= 0 && w < streams_);
  const int fat = rem_ * (base_ + 1);  // streams held by the fat stripes
  if (w < fat) return w / (base_ + 1);
  return rem_ + (w - fat) / base_;
}

IngestPlane::IngestPlane(StreamingProfileBuilder* builder,
                         const IngestOptions& options)
    : builder_(builder), map_(builder->num_workloads(), options.stripes) {
  if (options.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options.threads);
  }
}

void IngestPlane::AttachSink(obs::Sink* sink) {
  if (sink == nullptr) {
    steps_ = nullptr;
    stripe_batches_ = nullptr;
    return;
  }
  steps_ = sink->metrics().counter("ingest.steps");
  stripe_batches_ = sink->metrics().counter("ingest.stripe_batches");
  sink->metrics().gauge("ingest.stripes")->Set(map_.num_stripes());
  sink->metrics().gauge("ingest.threads")->Set(threads());
}

void IngestPlane::IngestStep(const TelemetrySample* samples, int num_samples) {
  assert(num_samples == builder_->num_workloads());
  (void)num_samples;
  const int S = map_.num_stripes();
  if (pool_ != nullptr) {
    pool_->ParallelFor(S, [&](int s) {
      builder_->IngestBatch(samples, map_.begin(s), map_.end(s));
    });
  } else {
    builder_->IngestBatch(samples, 0, map_.num_streams());
  }
  builder_->CommitStep();
  if (steps_ != nullptr) {
    steps_->Add(1);
    stripe_batches_->Add(S);
  }
}

void IngestPlane::IngestStep(const std::vector<TelemetrySample>& samples) {
  IngestStep(samples.data(), static_cast<int>(samples.size()));
}

void IngestPlane::ForEachStripe(const std::function<void(int, int, int)>& fn) {
  const int S = map_.num_stripes();
  if (pool_ != nullptr) {
    pool_->ParallelFor(S, [&](int s) { fn(s, map_.begin(s), map_.end(s)); });
  } else {
    for (int s = 0; s < S; ++s) fn(s, map_.begin(s), map_.end(s));
  }
}

}  // namespace kairos::online
