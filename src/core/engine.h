// The consolidation engine (Sections 5-6): solves the mixed-integer
// nonlinear program with the DIRECT global optimizer, accelerated by a
// binary search on the server count K between the fractional lower bound
// and a greedy upper bound, and polished with a discrete local search (the
// paper's "polishing" around the incumbent).
#ifndef KAIROS_CORE_ENGINE_H_
#define KAIROS_CORE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "core/problem.h"
#include "obs/sink.h"
#include "util/rng.h"

namespace kairos::core {

/// How the bounded search dimensions the target fleet.
enum class DimensioningMode {
  /// Legacy Section-6 behaviour: binary search on the server *count* K,
  /// probing the declaration-order prefix [0, K) of the fleet's index
  /// space. Exact on uniform fleets, where prefix order is immaterial; on
  /// mixed fleets it can never open a cheaper class declared late.
  kCountPrefix,
  /// Cost-based: binary search on the total fleet-cost *budget*, each probe
  /// buying the cheapest-dense-first multiset of per-class servers within
  /// budget (core::FleetDimensioner). Uniform fleets still take the
  /// bit-identical count-prefix path — there the two searches coincide.
  kCostBudget,
};

/// Solver budgets and switches.
struct EngineOptions {
  uint64_t seed = 1;
  /// DIRECT evaluation budget for the final bounded-K solve.
  int direct_evaluations = 4000;
  /// DIRECT evaluation budget per binary-search feasibility probe.
  int probe_direct_evaluations = 800;
  /// Local-search sweep cap (each sweep tries every slot against every
  /// server, plus a swap pass).
  int local_search_max_sweeps = 60;
  /// Section 6 optimization: binary search on K. Disable to solve the full
  /// space directly (the ablation of the solver-performance experiment).
  bool use_bounded_k = true;
  /// DIRECT local/global balance.
  double direct_epsilon = 1e-3;
  /// How the bounded search dimensions heterogeneous fleets (only read when
  /// use_bounded_k is set; uniform fleets always take the count-prefix
  /// path, which is exact for them and stays bit-identical).
  DimensioningMode dimensioning = DimensioningMode::kCostBudget;
  /// Reuse the full-cap Evaluator and greedy packing context (slot
  /// accountant + slot/server orderings) across the dimensioner's budget
  /// probes and the polish, instead of rebuilding them per probe. Results
  /// are bit-identical either way — Evaluate() is pure and Load() fully
  /// resets — so this is purely a probe-latency lever; the off switch
  /// exists for the cached-vs-uncached comparison in the benches.
  bool reuse_probe_context = true;

  /// Called whenever the engine improves its incumbent (after each
  /// successful feasibility probe and after the final polish). Lets a
  /// portfolio runner broadcast partial results while the solve is still
  /// running. May be empty.
  std::function<void(const Assignment&, double objective, bool feasible)>
      on_incumbent;
  /// Polled between probe/polish phases; returning true aborts the solve
  /// early with the best incumbent found so far. May be empty.
  std::function<bool()> should_stop;

  /// Observability sink (metrics + trace), nullable. When attached the
  /// engine records every feasibility probe ("probe"/"budget_probe"
  /// events, probe-granular — MoveDelta stays un-instrumented) and its
  /// incumbent improvements; when null each instrumented site costs one
  /// predictable branch. An attached sink never perturbs the RNG streams:
  /// results are bit-identical with the observer on or off.
  obs::Sink* sink = nullptr;
  /// Trace-track prefix for this engine's events (the track is
  /// "<obs_label>/<seed>"), so wrappers like the portfolio's polish solver
  /// stay distinguishable in one merged trace.
  std::string obs_label = "engine";
};

/// Output of one engine run.
struct ConsolidationPlan {
  Assignment assignment;
  bool feasible = false;
  int servers_used = 0;
  double objective = 0;
  /// Source servers (slots) per consolidated server.
  double consolidation_ratio = 0;
  /// Sum of the used servers' machine-class cost weights (== servers_used
  /// for a homogeneous weight-1 fleet): the fleet-cost objective the
  /// heterogeneous benches compare on.
  double fleet_cost = 0;
  /// Used-server count per fleet class, indexed like fleet.classes.
  std::vector<int> class_servers_used;
  /// Class names for Render(), one per fleet class (the per-class breakdown
  /// is only rendered when there is more than one).
  std::vector<std::string> class_names;
  int fractional_lower_bound = 0;
  /// Greedy baseline server count (-1 when greedy found nothing feasible).
  int greedy_servers = -1;
  /// Budget/mix probes the cost-based dimensioner ran (0 under count-prefix
  /// dimensioning or on uniform fleets).
  int budget_probes = 0;
  /// Per-class server counts of the dimensioner's chosen mix — what the
  /// budget search *bought* (class_servers_used is what the plan occupies).
  /// Empty when the plan did not come from cost-based dimensioning.
  std::vector<int> chosen_class_counts;
  /// Per-used-server load summaries, indexed densely (only used servers).
  std::vector<Evaluator::ServerLoad> server_loads;
  /// Migration penalty included in `objective` (0 unless the problem
  /// carries an incumbent placement); objective - migration_cost is the
  /// pure placement-quality ("service") objective.
  double migration_cost = 0;
  /// Slots placed away from the problem's current_assignment.
  int moves_from_current = 0;
  double solve_seconds = 0;
  int solver_evaluations = 0;
  /// Feasibility probes attempted (count-prefix ProbeK plus cost-budget
  /// ProbeServers calls). With solve_seconds this yields the probe rate
  /// Render() reports.
  int probe_attempts = 0;
  /// True when this plan came from the exact branch-and-bound solver (the
  /// fields below are only meaningful — and only rendered — then).
  bool exact_search = false;
  /// True when the exact search exhausted its tree within budget: the plan
  /// is a global optimum of the encoding up to the search's 1e-7 relative
  /// pruning slack, and optimality_gap is exactly 0.
  bool proved_optimal = false;
  /// Search-tree nodes (placements) the exact solver expanded.
  int64_t exact_nodes = 0;
  /// Upper bound on objective - optimum when the search was truncated by
  /// its node/time budget (0 when proved_optimal).
  double optimality_gap = 0;

  /// Human-readable summary.
  std::string Render() const;
};

/// Solves ConsolidationProblems.
class ConsolidationEngine {
 public:
  ConsolidationEngine(const ConsolidationProblem& problem, const EngineOptions& options);

  /// Runs the full pipeline and returns the best plan found.
  ConsolidationPlan Solve();

  /// Tries to find a feasible assignment using at most `k` servers within
  /// the probe budget. Exposed for the solver-performance experiments.
  bool ProbeK(int k, int direct_budget, Assignment* out);

  /// Tries to find a feasible assignment restricted to exactly `servers`
  /// (an explicit multiset of the index space — the cost-based
  /// dimensioner's probe; pinned servers must be included by the caller).
  /// Unused members cost nothing, so the probe minimizes within the subset.
  bool ProbeServers(const std::vector<int>& servers, int direct_budget,
                    Assignment* out);

  /// The final polish phase: local search around `incumbent` at `k`
  /// servers (plus a DIRECT pass when bounded-K is enabled), returning the
  /// fully reported plan. Exposed so portfolio solvers can polish a seed
  /// produced elsewhere. A non-null `targets` restricts every move and the
  /// DIRECT encoding to that server subset (cost-budget dimensioning);
  /// null keeps the classic fleet-wide polish.
  ConsolidationPlan PolishPlan(const Assignment& incumbent, int k,
                               const std::vector<int>* targets = nullptr);

 private:
  /// Un-instrumented probe bodies (ProbeK/ProbeServers wrap them with the
  /// probe counter and trace emission).
  bool ProbeKImpl(int k, int direct_budget, Assignment* out);
  bool ProbeServersImpl(const std::vector<int>& servers, int direct_budget,
                        Assignment* out);

  /// Interned trace ids for this engine's track, lazily created on the
  /// first instrumented event (the engine is internally single-threaded).
  uint32_t ObsTrack();
  /// Emits an "incumbent" point (i0 = DIRECT evaluations so far) when a
  /// sink is attached; single branch otherwise.
  void EmitIncumbent(double objective, bool feasible);

  /// First-improvement local search with an extra swap pass. A non-null
  /// `targets` restricts relocation targets and swap endpoints to that
  /// subset; null uses the fleet's placement mask (the classic scan).
  void LocalSearch(Evaluator* ev, int max_sweeps, util::Rng* rng,
                   const std::vector<int>* targets = nullptr);

  /// DIRECT over the slot->server encoding with `k` servers. A non-null
  /// `targets` overrides the fleet placement mask with an explicit subset.
  /// A non-null `reuse_ev` (which must be sized for `k` servers) serves
  /// the objective evaluations instead of a freshly built Evaluator; only
  /// its scratch is touched, never its Load state.
  Assignment RunDirect(int k, int budget, double target_value, int* evals_out,
                       const std::vector<int>* targets = nullptr,
                       Evaluator* reuse_ev = nullptr);

  /// An Evaluator sized for `k` servers: the cached full-cap instance when
  /// probe-context reuse is on and `k` is the problem's cap (the
  /// dimensioner probes and the polish), else a fresh one parked in
  /// `*owned`. Callers fully re-Load before reading, so sharing one
  /// instance across sequential phases cannot change results.
  Evaluator* EvaluatorFor(int k, std::unique_ptr<Evaluator>* owned);

  /// Respects pins when decoding DIRECT points. A non-empty `targets`
  /// restricts the encoding to those servers (the hard drain mask).
  Assignment DecodePoint(const std::vector<double>& x, int k,
                         const std::vector<int>* targets = nullptr) const;

  const ConsolidationProblem& problem_;
  EngineOptions options_;
  int evaluations_ = 0;
  int probe_attempts_ = 0;
  uint32_t obs_track_ = kNoObsTrack;

  /// Probe caches (see EngineOptions::reuse_probe_context): the full-cap
  /// Evaluator and greedy packing context every ProbeServers call used to
  /// rebuild from scratch. Lazily built; both are keyed to the problem's
  /// ServerCap(), which ProbeServersImpl always probes at.
  std::unique_ptr<Evaluator> probe_ev_;
  std::unique_ptr<GreedyPackContext> probe_pack_;

  static constexpr uint32_t kNoObsTrack = 0xFFFFFFFFu;
};

/// Evaluates `assignment` at `k` servers and fills a fully reported plan
/// (feasibility, objective, ratio, per-server loads). Shared by the engine
/// and the solve/ portfolio so every solver reports plans identically.
ConsolidationPlan FinalizePlan(const ConsolidationProblem& problem,
                               const std::vector<int>& assignment, int k);

}  // namespace kairos::core

#endif  // KAIROS_CORE_ENGINE_H_
