#include "core/load_accountant.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace kairos::core {

LoadAccountant::LoadAccountant(const ConsolidationProblem& problem,
                               int num_servers, bool track_server_load)
    : num_servers_(num_servers) {
  assert(num_servers_ >= 1);
  assert(!problem.fleet.classes.empty());
  num_slots_ = problem.TotalSlots();

  // Common sample count across all profiles.
  size_t n = SIZE_MAX;
  for (const auto& w : problem.workloads) {
    n = std::min({n, w.cpu_cores.size(), w.ram_bytes.size(),
                  w.update_rows_per_sec.size()});
  }
  if (n == SIZE_MAX || n == 0) n = 1;
  num_samples_ = static_cast<int>(n);

  for (auto& axis : slot_) {
    axis.reserve(static_cast<size_t>(num_slots_) * num_samples_);
  }
  slot_ws_.reserve(num_slots_);
  workload_of_slot_.reserve(num_slots_);
  pin_of_slot_.reserve(num_slots_);
  const double overhead = problem.per_instance_cpu_overhead_cores;
  for (int wi = 0; wi < static_cast<int>(problem.workloads.size()); ++wi) {
    const auto& w = problem.workloads[wi];
    for (int r = 0; r < w.replicas; ++r) {
      for (size_t t = 0; t < n; ++t) {
        // Each dedicated-server profile includes one instance overhead;
        // store the workload's intrinsic demand — consumers re-add a single
        // overhead per used server.
        slot_[static_cast<int>(Axis::kCpu)].push_back(
            std::max(0.0, w.cpu_cores.at(t) - overhead));
        slot_[static_cast<int>(Axis::kRam)].push_back(w.ram_bytes.at(t));
        slot_[static_cast<int>(Axis::kRate)].push_back(
            w.update_rows_per_sec.at(t));
      }
      slot_ws_.push_back(w.working_set_bytes);
      workload_of_slot_.push_back(wi);
      pin_of_slot_.push_back(w.pinned_server);
    }
  }

  if (track_server_load) {
    for (auto& axis : server_) {
      axis.assign(static_cast<size_t>(num_servers_) * num_samples_, 0.0);
    }
    server_ws_.assign(num_servers_, 0.0);
    server_count_.assign(num_servers_, 0);
  }

  class_caps_ = problem.fleet.ClassCapacities(problem.cpu_headroom,
                                              problem.ram_headroom);
  const int classes = static_cast<int>(problem.fleet.classes.size());
  class_weight_.reserve(classes);
  class_drained_.reserve(classes);
  class_disk_.reserve(classes);
  class_cpu_.reserve(classes);
  class_ram_.reserve(classes);
  for (int c = 0; c < classes; ++c) {
    const sim::MachineClass& mc = problem.fleet.classes[c];
    class_weight_.push_back(mc.cost_weight);
    class_drained_.push_back(mc.drained ? 1 : 0);
    class_cpu_.emplace_back("cpu", class_caps_[c].cpu_full_cores,
                            problem.cpu_headroom);
    class_ram_.emplace_back("ram", class_caps_[c].ram_full_bytes,
                            problem.ram_headroom);
    class_disk_.emplace_back(problem.DiskModelOfClass(c),
                             problem.DiskHeadroomOfClass(c));
  }
  class_of_ = problem.fleet.ClassOfServers(num_servers_);
  placable_ = problem.fleet.PlacableServers(num_servers_);
}

void LoadAccountant::Apply(int server, int slot, double sign) {
  assert(server >= 0 && server < num_servers_);
  assert(slot >= 0 && slot < num_slots_);
  assert(!server_ws_.empty() && "constructed with track_server_load=false");
  for (int a = 0; a < kNumAxes; ++a) {
    double* dst = server_[a].data() + static_cast<size_t>(server) * num_samples_;
    const double* src =
        slot_[a].data() + static_cast<size_t>(slot) * num_samples_;
    for (int t = 0; t < num_samples_; ++t) dst[t] += sign * src[t];
  }
  server_ws_[server] += sign * slot_ws_[slot];
  server_count_[server] += sign > 0 ? 1 : -1;
}

void LoadAccountant::Clear() {
  for (auto& axis : server_) std::fill(axis.begin(), axis.end(), 0.0);
  std::fill(server_ws_.begin(), server_ws_.end(), 0.0);
  std::fill(server_count_.begin(), server_count_.end(), 0);
}

LoadAccountant::AggregateDemand LoadAccountant::TotalDemand() const {
  AggregateDemand agg;
  std::vector<double> cpu(num_samples_, 0.0), ram(num_samples_, 0.0),
      rate(num_samples_, 0.0);
  for (int s = 0; s < num_slots_; ++s) {
    const double* s_cpu = SlotSeries(Axis::kCpu, s);
    const double* s_ram = SlotSeries(Axis::kRam, s);
    const double* s_rate = SlotSeries(Axis::kRate, s);
    for (int t = 0; t < num_samples_; ++t) {
      cpu[t] += s_cpu[t];
      ram[t] += s_ram[t];
      rate[t] += s_rate[t];
    }
    agg.ws += slot_ws_[s];
  }
  for (int t = 0; t < num_samples_; ++t) {
    agg.peak_cpu = std::max(agg.peak_cpu, cpu[t]);
    agg.peak_ram = std::max(agg.peak_ram, ram[t]);
    agg.peak_rate = std::max(agg.peak_rate, rate[t]);
  }
  return agg;
}

sim::EffectiveCapacity LoadAccountant::BestClass() const {
  sim::EffectiveCapacity best;
  for (const auto& c : class_caps_) {
    best.cpu_full_cores = std::max(best.cpu_full_cores, c.cpu_full_cores);
    best.ram_full_bytes = std::max(best.ram_full_bytes, c.ram_full_bytes);
    best.cpu_cores = std::max(best.cpu_cores, c.cpu_cores);
    best.ram_bytes = std::max(best.ram_bytes, c.ram_bytes);
  }
  return best;
}

bool LoadAccountant::AnyDiskActive() const {
  for (const auto& disk : class_disk_) {
    if (disk.active()) return true;
  }
  return false;
}

double LoadAccountant::BestDiskCapacity(double ws) const {
  double cap = 0;
  for (const auto& disk : class_disk_) {
    if (disk.active()) cap = std::max(cap, disk.Capacity(ws));
  }
  return cap;
}

double LoadAccountant::BestUsableDiskCapacity(double ws) const {
  double cap = 0;
  for (const auto& disk : class_disk_) {
    if (disk.active()) cap = std::max(cap, disk.UsableCapacity(ws));
  }
  return cap;
}

double LoadAccountant::SubsetWeight(const std::vector<int>& servers) const {
  double weight = 0.0;
  for (int j : servers) weight += class_weight_[class_of_[j]];
  return weight;
}

double LoadAccountant::PrefixWeight(int k) const {
  double weight = 0.0;
  for (int j : placable_) {
    if (j >= k) break;
    weight += class_weight_[class_of_[j]];
  }
  return weight;
}

}  // namespace kairos::core
