// Baseline packers and bounds (Sections 6 and 7.3):
//  * single-resource greedy bin packing — the paper's comparison baseline:
//    considers one resource, places each workload on the most-loaded server
//    where it fits, discards solutions violating the other resources;
//  * a multi-resource greedy used to seed the solver / upper-bound K;
//  * the fractional idealized lower bound on the number of servers.
#ifndef KAIROS_CORE_GREEDY_H_
#define KAIROS_CORE_GREEDY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/problem.h"

namespace kairos::core {

class LoadAccountant;

/// The resource a single-resource packer considers.
enum class Resource { kCpu, kRam, kDisk };

/// Name for reports.
std::string ResourceName(Resource r);

/// Result of a greedy packing attempt.
struct GreedyResult {
  bool feasible = false;      ///< Satisfies ALL constraints (checked post hoc).
  Assignment assignment;      ///< Valid packing by the packed resource only.
  int servers_used = 0;
  Resource packed_by = Resource::kCpu;
};

/// Packs considering only resource `r` (most-loaded-that-fits, decreasing
/// peak order), then checks the full constraint set. `max_servers` bounds
/// the packing (0 = one server per slot allowed).
GreedyResult GreedySingleResource(const ConsolidationProblem& problem, Resource r,
                                  int max_servers = 0);

/// The paper's greedy baseline: try each resource, return the feasible
/// solution with the fewest servers (feasible=false if none).
GreedyResult GreedyBaseline(const ConsolidationProblem& problem, int max_servers = 0);

/// Multi-resource greedy: places each slot on the most-loaded server that
/// fits ALL resources; opens servers as needed up to `max_servers`, then
/// falls back to the least-loaded server (possibly violating). Always
/// returns a complete assignment; `*feasible` reports constraint cleanness.
/// A non-null `allowed_servers` restricts the packing to that subset of the
/// index space (the cost-based dimensioner's budget-selected multiset);
/// null keeps the classic whole-fleet packing.
Assignment GreedyMultiResource(const ConsolidationProblem& problem, int max_servers,
                               bool* feasible,
                               const std::vector<int>* allowed_servers = nullptr);

/// Reusable packing state for repeated GreedyMultiResource calls over the
/// same problem and server cap — the dimensioner's budget probes, which
/// historically rebuilt the slot accountant, the hardest-first slot order,
/// both open orders, and (on mixed fleets) a full Evaluator on every probe.
/// Packing through a context is bit-identical to the classic entry point:
/// per-call subset restriction preserves the cached orders' relative order
/// (stable sorts), and the cached comparison Evaluator is pure.
class GreedyPackContext {
 public:
  /// `max_servers` as in GreedyMultiResource (0 = problem's own cap).
  GreedyPackContext(const ConsolidationProblem& problem, int max_servers);
  ~GreedyPackContext();

  GreedyPackContext(const GreedyPackContext&) = delete;
  GreedyPackContext& operator=(const GreedyPackContext&) = delete;

  const ConsolidationProblem& problem() const { return problem_; }
  const LoadAccountant& accountant() const { return *acct_; }

 private:
  friend Assignment GreedyMultiResource(GreedyPackContext& ctx, bool* feasible,
                                        const std::vector<int>* allowed_servers);

  /// Lazily built full-cap Evaluator for the scale-out-vs-scale-up packing
  /// comparison on mixed fleets.
  Evaluator& compare_evaluator();

  const ConsolidationProblem& problem_;
  std::unique_ptr<LoadAccountant> acct_;
  std::vector<int> slot_order_;   // hardest first
  std::vector<int> cheap_order_;  // placable servers, cheapest class first
  std::vector<int> dense_order_;  // placable servers, capacity-per-cost first
  std::unique_ptr<Evaluator> compare_ev_;
};

/// GreedyMultiResource through a reusable context (see above); identical
/// results to the classic entry point with the context's problem and cap.
Assignment GreedyMultiResource(GreedyPackContext& ctx, bool* feasible,
                               const std::vector<int>* allowed_servers = nullptr);

/// Capacity-per-cost ("dense") open order over the accountant's placable
/// servers: most combined normalized capacity per unit of cost weight
/// first. When any class carries an active disk axis, the per-class
/// headroomed sustainable update rate at zero working set joins the
/// CPU/RAM terms (so a RAID class ranks as dense as its disk actually is;
/// a class with no disk limit counts as matching the best disk); fleets
/// with no disk models score bit-identically to the CPU/RAM-only order.
/// Shared by the greedy packers and core::FleetDimensioner's purchase
/// order.
std::vector<int> DenseServerOrder(const LoadAccountant& acct);

/// Idealized fractional lower bound on the server count: workloads are
/// divisible and resources independent.
int FractionalLowerBound(const ConsolidationProblem& problem);

}  // namespace kairos::core

#endif  // KAIROS_CORE_GREEDY_H_
