// LoadAccountant: the shared resource-accounting layer of the consolidation
// stack. It owns (a) the flattened per-slot demand matrices every consumer
// used to re-derive from the workload profiles by hand — replica expansion,
// per-instance CPU-overhead subtraction, sample-count truncation — in one
// contiguous structure-of-arrays layout, (b) the per-server aggregate load
// matrices those slots sum into, and (c) the per-class resource models
// (linear CPU/RAM capacities via sim::EffectiveCapacity, the nonlinear
// per-class model::DiskResource) that price the aggregates.
//
// Consumers: core::Evaluator (one-shot + incremental move evaluation over
// the flat arrays), both greedy packers and FractionalLowerBound
// (core/greedy.cc), the engine's probe threshold, and — through the same
// per-class models — sim::CapacityLedger and online::MigrationPlanner.
//
// Layout: series are stored flat as slot-major / server-major blocks of
// num_samples doubles (SlotSeries(a, s)[t]), so the hot MoveDelta path
// walks three contiguous arrays instead of chasing vector<vector<double>>.
#ifndef KAIROS_CORE_LOAD_ACCOUNTANT_H_
#define KAIROS_CORE_LOAD_ACCOUNTANT_H_

#include <vector>

#include "core/problem.h"
#include "model/resource_model.h"
#include "sim/fleet.h"

namespace kairos::core {

/// The series axes every slot/server carries.
enum class Axis { kCpu = 0, kRam = 1, kRate = 2 };
inline constexpr int kNumAxes = 3;

class LoadAccountant {
 public:
  /// Flattens `problem`'s workloads into per-slot matrices and derives the
  /// per-class models for servers [0, num_servers). Pass
  /// `track_server_load = false` when the consumer only reads slot data
  /// and per-class models (the greedy packers keep their own bins): the
  /// per-server aggregate matrices are then not allocated and
  /// Apply()/ServerSeries() must not be called.
  LoadAccountant(const ConsolidationProblem& problem, int num_servers,
                 bool track_server_load = true);

  int num_slots() const { return num_slots_; }
  int num_servers() const { return num_servers_; }
  int num_samples() const { return num_samples_; }

  // --- Per-slot demand (replica-expanded, overhead-subtracted) ---
  /// Contiguous series of `num_samples()` values for one slot.
  const double* SlotSeries(Axis a, int slot) const {
    return slot_[static_cast<int>(a)].data() +
           static_cast<size_t>(slot) * num_samples_;
  }
  double SlotWs(int slot) const { return slot_ws_[slot]; }
  int WorkloadOfSlot(int slot) const { return workload_of_slot_[slot]; }
  int PinOfSlot(int slot) const { return pin_of_slot_[slot]; }

  // --- Per-server aggregate load (requires track_server_load) ---
  const double* ServerSeries(Axis a, int server) const {
    return server_[static_cast<int>(a)].data() +
           static_cast<size_t>(server) * num_samples_;
  }
  double ServerWs(int server) const { return server_ws_[server]; }
  int ServerCount(int server) const { return server_count_[server]; }

  /// Adds (`sign` +1) or removes (-1) one slot's demand from a server's
  /// aggregates.
  void Apply(int server, int slot, double sign);

  /// Zeroes every server aggregate (fresh packing / reload).
  void Clear();

  // --- Per-class resource models ---
  int num_classes() const { return static_cast<int>(class_caps_.size()); }
  int ClassOfServer(int server) const { return class_of_[server]; }
  const sim::EffectiveCapacity& CapacityOfClass(int c) const {
    return class_caps_[c];
  }
  double ClassWeight(int c) const { return class_weight_[c]; }
  bool ClassDrained(int c) const { return class_drained_[c] != 0; }
  /// The nonlinear disk axis of a class (inactive when the class resolves
  /// to no valid model).
  const model::DiskResource& Disk(int c) const { return class_disk_[c]; }

  /// The resource model pricing axis `a` on class `c`: LinearResource for
  /// CPU/RAM, the DiskResource for the update-rate axis. Hot loops hoist
  /// the models' (constant) capacities out instead of calling through the
  /// interface per sample; this accessor is the axis-generic view for
  /// everything else.
  const model::ResourceModel& AxisModel(Axis a, int c) const {
    switch (a) {
      case Axis::kCpu:
        return class_cpu_[c];
      case Axis::kRam:
        return class_ram_[c];
      case Axis::kRate:
        return class_disk_[c];
    }
    return class_disk_[c];  // unreachable
  }

  /// Peak aggregate demand per axis (all slots summed per sample) plus the
  /// total working set — the fractional "the fleet together must cover
  /// this" figure shared by FractionalLowerBound and the cost-based
  /// dimensioner's coverage checks.
  struct AggregateDemand {
    double peak_cpu = 0;
    double peak_ram = 0;
    double peak_rate = 0;
    double ws = 0;
  };
  AggregateDemand TotalDemand() const;

  /// Largest headroomed linear capacities across classes (the reference
  /// machine for difficulty ordering and the fractional bound).
  sim::EffectiveCapacity BestClass() const;

  /// True when any machine class carries an active disk axis.
  bool AnyDiskActive() const;

  /// Largest full disk capacity across active classes at aggregate `ws`
  /// (the idealized reference for difficulty ordering and the fractional
  /// bound); 0 when no class has an active disk axis.
  double BestDiskCapacity(double ws) const;

  /// Largest headroomed disk capacity across active classes at `ws`.
  double BestUsableDiskCapacity(double ws) const;

  /// Sum of the class cost weights of the placable (non-drained) servers in
  /// [0, k): the engine's probe feasibility threshold is built on this.
  double PrefixWeight(int k) const;

  /// Sum of the class cost weights of an explicit server subset — the
  /// cost-budget probe's analogue of PrefixWeight. Every member counts:
  /// the subset is what the probe bought, which may include a pinned
  /// server on a drained class alongside the drain-filtered purchase
  /// order.
  double SubsetWeight(const std::vector<int>& servers) const;

  /// Non-drained servers in [0, num_servers): the hard placement mask.
  const std::vector<int>& PlacableServers() const { return placable_; }

 private:
  int num_slots_ = 0;
  int num_servers_ = 0;
  int num_samples_ = 1;

  // Slot-major flat series, one vector per axis.
  std::vector<double> slot_[kNumAxes];
  std::vector<double> slot_ws_;
  std::vector<int> workload_of_slot_;
  std::vector<int> pin_of_slot_;

  // Server-major flat series, one vector per axis.
  std::vector<double> server_[kNumAxes];
  std::vector<double> server_ws_;
  std::vector<int> server_count_;

  // Per-class models (indexed like the problem fleet's classes).
  std::vector<sim::EffectiveCapacity> class_caps_;
  std::vector<double> class_weight_;
  std::vector<char> class_drained_;
  std::vector<model::LinearResource> class_cpu_;
  std::vector<model::LinearResource> class_ram_;
  std::vector<model::DiskResource> class_disk_;
  std::vector<int> class_of_;
  std::vector<int> placable_;
};

}  // namespace kairos::core

#endif  // KAIROS_CORE_LOAD_ACCOUNTANT_H_
