#include "core/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace kairos::core {

namespace {
/// Affinity violations are counted in units of this many "relative excess"
/// points, so they share the violation penalty scale.
constexpr double kAffinityUnit = 0.1;
constexpr double kPinPenalty = 1e9;
/// Relative-excess units charged per slot left on a drained machine class,
/// so an evacuation always pays for itself but a pin still dominates.
constexpr double kDrainedUnit = 0.25;
}  // namespace

Evaluator::Evaluator(const ConsolidationProblem& problem, int max_servers)
    : problem_(problem), max_servers_(max_servers) {
  num_slots_ = problem.TotalSlots();
  assert(max_servers_ >= 1);

  // Common sample count across all profiles.
  size_t n = SIZE_MAX;
  for (const auto& w : problem.workloads) {
    n = std::min({n, w.cpu_cores.size(), w.ram_bytes.size(),
                  w.update_rows_per_sec.size()});
  }
  if (n == SIZE_MAX || n == 0) n = 1;
  num_samples_ = static_cast<int>(n);

  slot_cpu_.reserve(num_slots_);
  slot_ram_.reserve(num_slots_);
  slot_rate_.reserve(num_slots_);
  const double overhead = problem.per_instance_cpu_overhead_cores;
  for (int wi = 0; wi < static_cast<int>(problem.workloads.size()); ++wi) {
    const auto& w = problem.workloads[wi];
    std::vector<double> cpu(n), ram(n), rate(n);
    for (size_t t = 0; t < n; ++t) {
      // Each dedicated-server profile includes one instance overhead; store
      // the workload's intrinsic demand and re-add a single overhead per
      // used server in ServerCost().
      cpu[t] = std::max(0.0, w.cpu_cores.at(t) - overhead);
      ram[t] = w.ram_bytes.at(t);
      rate[t] = w.update_rows_per_sec.at(t);
    }
    const double move_cost =
        wi < static_cast<int>(problem.migration_move_cost.size())
            ? problem.migration_move_cost[wi]
            : 1.0;
    for (int r = 0; r < w.replicas; ++r) {
      slot_cpu_.push_back(cpu);
      slot_ram_.push_back(ram);
      slot_rate_.push_back(rate);
      slot_ws_.push_back(w.working_set_bytes);
      workload_of_slot_.push_back(wi);
      pin_of_slot_.push_back(w.pinned_server);
      slot_move_cost_.push_back(move_cost);
    }
  }

  // slot_current_ tracks moves even at zero weight (for reporting); the
  // cost term itself needs a positive weight.
  if (static_cast<int>(problem.current_assignment.size()) == num_slots_) {
    slot_current_ = problem.current_assignment;
  }
  has_migration_ = problem.migration_cost_weight > 0.0 && !slot_current_.empty();

  assert(!problem.fleet.classes.empty());
  class_caps_ =
      problem.fleet.ClassCapacities(problem.cpu_headroom, problem.ram_headroom);
  class_weight_.reserve(problem.fleet.classes.size());
  class_drained_.reserve(problem.fleet.classes.size());
  for (const auto& c : problem.fleet.classes) {
    class_weight_.push_back(c.cost_weight);
    class_drained_.push_back(c.drained ? 1 : 0);
  }
  class_of_ = problem.fleet.ClassOfServers(max_servers_);
}

void Evaluator::Apply(ServerState* s, int slot, double sign) const {
  if (s->cpu.empty()) {
    s->cpu.assign(num_samples_, 0.0);
    s->ram.assign(num_samples_, 0.0);
    s->rate.assign(num_samples_, 0.0);
  }
  const auto& cpu = slot_cpu_[slot];
  const auto& ram = slot_ram_[slot];
  const auto& rate = slot_rate_[slot];
  for (int t = 0; t < num_samples_; ++t) {
    s->cpu[t] += sign * cpu[t];
    s->ram[t] += sign * ram[t];
    s->rate[t] += sign * rate[t];
  }
  s->ws += sign * slot_ws_[slot];
  s->count += sign > 0 ? 1 : -1;
}

double Evaluator::ServerCost(const ServerState& s, int klass) const {
  if (s.count <= 0) return 0.0;
  const double overhead = problem_.per_instance_cpu_overhead_cores;
  const double ram_overhead = static_cast<double>(problem_.instance_ram_overhead_bytes);
  const double wsum =
      problem_.cpu_weight + problem_.ram_weight + problem_.disk_weight;
  const sim::EffectiveCapacity& cap = class_caps_[klass];

  double disk_cap = 0;
  const bool has_disk = problem_.disk_model != nullptr && problem_.disk_model->valid();
  if (has_disk) {
    disk_cap = problem_.disk_model->MaxSustainableRate(std::max(0.0, s.ws));
  }

  double exp_sum = 0;
  double violation = 0;
  for (int t = 0; t < num_samples_; ++t) {
    const double cpu = s.cpu[t] + overhead;
    const double ram = s.ram[t] + ram_overhead;
    const double u_cpu = cpu / cap.cpu_full_cores;
    const double u_ram = ram / cap.ram_full_bytes;
    double u_disk = 0;
    if (has_disk && disk_cap > 0) u_disk = s.rate[t] / disk_cap;

    double load = (problem_.cpu_weight * std::min(u_cpu, 1.5) +
                   problem_.ram_weight * std::min(u_ram, 1.5) +
                   problem_.disk_weight * std::min(u_disk, 1.5)) /
                  wsum;
    exp_sum += std::exp(std::min(load, 1.0));

    violation += std::max(0.0, cpu / cap.cpu_cores - 1.0);
    violation += std::max(0.0, ram / cap.ram_bytes - 1.0);
    if (has_disk && disk_cap > 0) {
      violation +=
          std::max(0.0, s.rate[t] / (problem_.disk_headroom * disk_cap) - 1.0);
    }
  }
  violation /= static_cast<double>(num_samples_);
  if (class_drained_[klass]) violation += s.count * kDrainedUnit;

  double cost = kServerCost * class_weight_[klass] +
                exp_sum / static_cast<double>(num_samples_);
  if (violation > 1e-12) cost += kViolationBase + kViolationScale * violation;
  return cost;
}

void Evaluator::RecomputeServer(int j) {
  ServerState* s = &servers_[j];
  const int klass = class_of_[j];
  s->cost = ServerCost(*s, klass);
  // Extract the violation part for feasibility tracking.
  if (s->count <= 0) {
    s->violation = 0;
    return;
  }
  // Recompute violation identically to ServerCost (kept in one place would
  // need an out-param; mirror the arithmetic via cost decomposition).
  // Cheaper: violation = (cost - base - exp part) / scale when penalized.
  // To stay exact we recompute directly:
  const double overhead = problem_.per_instance_cpu_overhead_cores;
  const double ram_overhead = static_cast<double>(problem_.instance_ram_overhead_bytes);
  const sim::EffectiveCapacity& cap = class_caps_[klass];
  double disk_cap = 0;
  const bool has_disk = problem_.disk_model != nullptr && problem_.disk_model->valid();
  if (has_disk) disk_cap = problem_.disk_model->MaxSustainableRate(std::max(0.0, s->ws));
  double violation = 0;
  for (int t = 0; t < num_samples_; ++t) {
    violation += std::max(0.0, (s->cpu[t] + overhead) / cap.cpu_cores - 1.0);
    violation += std::max(0.0, (s->ram[t] + ram_overhead) / cap.ram_bytes - 1.0);
    if (has_disk && disk_cap > 0) {
      violation +=
          std::max(0.0, s->rate[t] / (problem_.disk_headroom * disk_cap) - 1.0);
    }
  }
  s->violation = violation / static_cast<double>(num_samples_);
  if (class_drained_[klass]) s->violation += s->count * kDrainedUnit;
}

double Evaluator::AffinityViolations(const std::vector<int>& assignment) const {
  double units = 0;
  // Replica anti-affinity: two slots of the same workload on one server.
  for (int a = 0; a < num_slots_; ++a) {
    for (int b = a + 1; b < num_slots_; ++b) {
      if (assignment[a] == assignment[b] &&
          workload_of_slot_[a] == workload_of_slot_[b]) {
        units += 1;
      }
    }
  }
  // Explicit anti-affinity pairs.
  for (const auto& [wa, wb] : problem_.anti_affinity) {
    for (int a = 0; a < num_slots_; ++a) {
      if (workload_of_slot_[a] != wa) continue;
      for (int b = 0; b < num_slots_; ++b) {
        if (workload_of_slot_[b] == wb && assignment[a] == assignment[b]) units += 1;
      }
    }
  }
  return units;
}

double Evaluator::Evaluate(const std::vector<int>& assignment) const {
  assert(static_cast<int>(assignment.size()) == num_slots_);
  std::vector<ServerState> servers(max_servers_);
  double pin_penalty = 0;
  for (int s = 0; s < num_slots_; ++s) {
    const int j = assignment[s];
    assert(j >= 0 && j < max_servers_);
    Apply(&servers[j], s, +1.0);
    if (pin_of_slot_[s] >= 0 && pin_of_slot_[s] != j) pin_penalty += kPinPenalty;
  }
  double cost = pin_penalty;
  for (int j = 0; j < max_servers_; ++j) cost += ServerCost(servers[j], class_of_[j]);
  const double aff = AffinityViolations(assignment);
  if (aff > 0) cost += aff * (kViolationBase + kViolationScale * kAffinityUnit);
  if (has_migration_) {
    for (int s = 0; s < num_slots_; ++s) cost += SlotMigrationCost(s, assignment[s]);
  }
  return cost;
}

void Evaluator::Load(const std::vector<int>& assignment) {
  assert(static_cast<int>(assignment.size()) == num_slots_);
  assignment_ = assignment;
  servers_.assign(max_servers_, ServerState());
  for (int s = 0; s < num_slots_; ++s) Apply(&servers_[assignment[s]], s, +1.0);
  current_cost_ = 0;
  total_violation_ = 0;
  for (int j = 0; j < max_servers_; ++j) {
    RecomputeServer(j);
    current_cost_ += servers_[j].cost;
    total_violation_ += servers_[j].violation;
  }
  const double aff = AffinityViolations(assignment_);
  if (aff > 0) {
    current_cost_ += aff * (kViolationBase + kViolationScale * kAffinityUnit);
    total_violation_ += aff * kAffinityUnit;
  }
  for (int s = 0; s < num_slots_; ++s) {
    if (pin_of_slot_[s] >= 0 && pin_of_slot_[s] != assignment_[s]) {
      current_cost_ += kPinPenalty;
      total_violation_ += 1.0;
    }
  }
  migration_cost_ = 0;
  if (has_migration_) {
    for (int s = 0; s < num_slots_; ++s) {
      migration_cost_ += SlotMigrationCost(s, assignment_[s]);
    }
    current_cost_ += migration_cost_;
  }
}

double Evaluator::SlotAffinity(int slot, int server) const {
  double units = 0;
  const int w = workload_of_slot_[slot];
  for (int b = 0; b < num_slots_; ++b) {
    if (b == slot || assignment_[b] != server) continue;
    if (workload_of_slot_[b] == w) units += 1;
    for (const auto& [wa, wb] : problem_.anti_affinity) {
      if ((workload_of_slot_[b] == wa && w == wb) ||
          (workload_of_slot_[b] == wb && w == wa)) {
        units += 1;
      }
    }
  }
  return units;
}

double Evaluator::MoveDelta(int slot, int to) const {
  const int from = assignment_[slot];
  if (to == from) return 0.0;
  if (pin_of_slot_[slot] >= 0 && to != pin_of_slot_[slot]) return kPinPenalty;

  ServerState from_copy = servers_[from];
  Apply(&from_copy, slot, -1.0);
  ServerState to_copy = servers_[to];
  Apply(&to_copy, slot, +1.0);

  double delta = ServerCost(from_copy, class_of_[from]) - servers_[from].cost +
                 ServerCost(to_copy, class_of_[to]) - servers_[to].cost;
  delta += (SlotAffinity(slot, to) - SlotAffinity(slot, from)) *
           (kViolationBase + kViolationScale * kAffinityUnit);
  delta += SlotMigrationCost(slot, to) - SlotMigrationCost(slot, from);
  return delta;
}

void Evaluator::ApplyMove(int slot, int to) {
  const int from = assignment_[slot];
  if (to == from) return;
  const double delta = MoveDelta(slot, to);
  const double affinity_delta = SlotAffinity(slot, to) - SlotAffinity(slot, from);

  current_cost_ += delta;
  migration_cost_ += SlotMigrationCost(slot, to) - SlotMigrationCost(slot, from);
  total_violation_ -= servers_[from].violation + servers_[to].violation;

  Apply(&servers_[from], slot, -1.0);
  Apply(&servers_[to], slot, +1.0);
  assignment_[slot] = to;
  RecomputeServer(from);
  RecomputeServer(to);
  total_violation_ += servers_[from].violation + servers_[to].violation;
  total_violation_ += affinity_delta * kAffinityUnit;
}

Evaluator::ServerLoad Evaluator::GetServerLoad(int j) const {
  ServerLoad out;
  const ServerState& s = servers_[j];
  out.used = s.count > 0;
  out.num_slots = std::max(0, s.count);
  out.violation = s.violation;
  if (!out.used) return out;
  const double overhead = problem_.per_instance_cpu_overhead_cores;
  const double ram_overhead = static_cast<double>(problem_.instance_ram_overhead_bytes);
  out.cpu_cores.resize(num_samples_);
  out.ram_bytes.resize(num_samples_);
  out.update_rows_per_sec.resize(num_samples_);
  for (int t = 0; t < num_samples_; ++t) {
    out.cpu_cores[t] = s.cpu[t] + overhead;
    out.ram_bytes[t] = s.ram[t] + ram_overhead;
    out.update_rows_per_sec[t] = s.rate[t];
  }
  out.working_set_bytes = s.ws;
  return out;
}

int Evaluator::MovesFromCurrent() const {
  if (slot_current_.empty()) return 0;
  int moves = 0;
  for (int s = 0; s < num_slots_; ++s) {
    if (assignment_[s] != slot_current_[s]) ++moves;
  }
  return moves;
}

int Assignment::ServersUsed() const {
  std::vector<int> seen;
  for (int s : server_of_slot) {
    if (std::find(seen.begin(), seen.end(), s) == seen.end()) seen.push_back(s);
  }
  return static_cast<int>(seen.size());
}

}  // namespace kairos::core
