#include "core/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/sink.h"

namespace kairos::core {

namespace {

/// The hot-path op tallies (see EvalOpCounts in evaluator.h). Plain
/// thread-local integers: bumping them costs one increment and never
/// touches shared state, so MoveDelta stays atomic-free.
thread_local EvalOpCounts tl_eval_ops;

}  // namespace

void ResetEvalOps() { tl_eval_ops = EvalOpCounts{}; }

EvalOpCounts CurrentEvalOps() { return tl_eval_ops; }

void FlushEvalOps(obs::Sink* sink) {
  if (sink != nullptr) {
    if (tl_eval_ops.evaluate_ops > 0) {
      sink->metrics().counter("evaluator.evaluate_ops")
          ->Add(tl_eval_ops.evaluate_ops);
    }
    if (tl_eval_ops.move_delta_ops > 0) {
      sink->metrics().counter("evaluator.move_delta_ops")
          ->Add(tl_eval_ops.move_delta_ops);
    }
    if (tl_eval_ops.apply_move_ops > 0) {
      sink->metrics().counter("evaluator.apply_move_ops")
          ->Add(tl_eval_ops.apply_move_ops);
    }
  }
  tl_eval_ops = EvalOpCounts{};
}

Evaluator::Evaluator(const ConsolidationProblem& problem, int max_servers)
    : problem_(problem),
      max_servers_(max_servers),
      acct_(problem, max_servers) {
  assert(max_servers_ >= 1);

  slot_move_cost_.reserve(acct_.num_slots());
  for (int wi = 0; wi < static_cast<int>(problem.workloads.size()); ++wi) {
    const double move_cost =
        wi < static_cast<int>(problem.migration_move_cost.size())
            ? problem.migration_move_cost[wi]
            : 1.0;
    for (int r = 0; r < problem.workloads[wi].replicas; ++r) {
      slot_move_cost_.push_back(move_cost);
    }
  }

  // slot_current_ tracks moves even at zero weight (for reporting); the
  // cost term itself needs a positive weight.
  if (static_cast<int>(problem.current_assignment.size()) == acct_.num_slots()) {
    slot_current_ = problem.current_assignment;
  }
  has_migration_ = problem.migration_cost_weight > 0.0 && !slot_current_.empty();

  const int num_workloads = static_cast<int>(problem.workloads.size());
  workload_slot_begin_.assign(num_workloads + 1, 0);
  for (int wi = 0; wi < num_workloads; ++wi) {
    workload_slot_begin_[wi + 1] =
        workload_slot_begin_[wi] + problem.workloads[wi].replicas;
  }
  affinity_partners_.assign(num_workloads, {});
  for (const auto& [wa, wb] : problem.anti_affinity) {
    if (wa < 0 || wa >= num_workloads || wb < 0 || wb >= num_workloads) continue;
    if (wa == wb) {
      affinity_partners_[wa].push_back(wa);
    } else {
      affinity_partners_[wa].push_back(wb);
      affinity_partners_[wb].push_back(wa);
    }
  }
}

template <typename CpuAt, typename RamAt, typename RateAt>
double Evaluator::ServerCostOf(int klass, double ws, int count, CpuAt cpu_at,
                               RamAt ram_at, RateAt rate_at,
                               double* violation_out) const {
  // The arithmetic lives in core/bounds.h so the exact search's partial
  // aggregates price a server with literally the same expression.
  return ServerAggregateCost(problem_, acct_, klass, ws, count, cpu_at, ram_at,
                             rate_at, violation_out);
}

double Evaluator::WhatIfCost(int j, int slot, double sign) const {
  const double* srv_cpu = acct_.ServerSeries(Axis::kCpu, j);
  const double* srv_ram = acct_.ServerSeries(Axis::kRam, j);
  const double* srv_rate = acct_.ServerSeries(Axis::kRate, j);
  const double* sl_cpu = acct_.SlotSeries(Axis::kCpu, slot);
  const double* sl_ram = acct_.SlotSeries(Axis::kRam, slot);
  const double* sl_rate = acct_.SlotSeries(Axis::kRate, slot);
  const double ws = acct_.ServerWs(j) + sign * acct_.SlotWs(slot);
  const int count = acct_.ServerCount(j) + (sign > 0 ? 1 : -1);
  return ServerCostOf(
      acct_.ClassOfServer(j), ws, count,
      [&](int t) { return srv_cpu[t] + sign * sl_cpu[t]; },
      [&](int t) { return srv_ram[t] + sign * sl_ram[t]; },
      [&](int t) { return srv_rate[t] + sign * sl_rate[t]; }, nullptr);
}

void Evaluator::RecomputeServer(int j) {
  const double* cpu = acct_.ServerSeries(Axis::kCpu, j);
  const double* ram = acct_.ServerSeries(Axis::kRam, j);
  const double* rate = acct_.ServerSeries(Axis::kRate, j);
  server_cost_[j] = ServerCostOf(
      acct_.ClassOfServer(j), acct_.ServerWs(j), acct_.ServerCount(j),
      [&](int t) { return cpu[t]; }, [&](int t) { return ram[t]; },
      [&](int t) { return rate[t]; }, &server_violation_[j]);
}

double Evaluator::AffinityViolations(const std::vector<int>& assignment) const {
  // Slots are workload-major, so both terms scan only the contiguous slot
  // range(s) of the workloads involved — O(sum r_w^2 + sum pairs) instead
  // of the old all-pairs O(num_slots^2). Every addition is an exact +1,
  // so the total matches the historical scan bit-for-bit.
  double units = 0;
  const int num_workloads = static_cast<int>(workload_slot_begin_.size()) - 1;
  // Replica anti-affinity: two slots of the same workload on one server.
  for (int w = 0; w < num_workloads; ++w) {
    for (int a = workload_slot_begin_[w]; a < workload_slot_begin_[w + 1]; ++a) {
      for (int b = a + 1; b < workload_slot_begin_[w + 1]; ++b) {
        if (assignment[a] == assignment[b]) units += 1;
      }
    }
  }
  // Explicit anti-affinity pairs (a == b co-location counts when a pair
  // names the same workload twice, as it always has).
  for (const auto& [wa, wb] : problem_.anti_affinity) {
    if (wa < 0 || wa >= num_workloads || wb < 0 || wb >= num_workloads) continue;
    for (int a = workload_slot_begin_[wa]; a < workload_slot_begin_[wa + 1]; ++a) {
      for (int b = workload_slot_begin_[wb]; b < workload_slot_begin_[wb + 1]; ++b) {
        if (assignment[a] == assignment[b]) units += 1;
      }
    }
  }
  return units;
}

void Evaluator::ResetScratch() const {
  const size_t rows = static_cast<size_t>(max_servers_) * acct_.num_samples();
  if (scratch_ws_.empty()) {
    for (auto& axis : scratch_) axis.assign(rows, 0.0);
    scratch_ws_.assign(max_servers_, 0.0);
    scratch_count_.assign(max_servers_, 0);
    return;
  }
  for (int j : scratch_dirty_) {
    for (auto& axis : scratch_) {
      std::fill_n(axis.begin() + static_cast<size_t>(j) * acct_.num_samples(),
                  acct_.num_samples(), 0.0);
    }
    scratch_ws_[j] = 0.0;
    scratch_count_[j] = 0;
  }
  scratch_dirty_.clear();
}

double Evaluator::Evaluate(const std::vector<int>& assignment) const {
  ++tl_eval_ops.evaluate_ops;
  const int num_slots = acct_.num_slots();
  const int samples = acct_.num_samples();
  assert(static_cast<int>(assignment.size()) == num_slots);
  ResetScratch();
  double pin_penalty = 0;
  for (int s = 0; s < num_slots; ++s) {
    const int j = assignment[s];
    assert(j >= 0 && j < max_servers_);
    if (scratch_count_[j] == 0) scratch_dirty_.push_back(j);
    const size_t base = static_cast<size_t>(j) * samples;
    const double* sl_cpu = acct_.SlotSeries(Axis::kCpu, s);
    const double* sl_ram = acct_.SlotSeries(Axis::kRam, s);
    const double* sl_rate = acct_.SlotSeries(Axis::kRate, s);
    double* dst_cpu = scratch_[static_cast<int>(Axis::kCpu)].data() + base;
    double* dst_ram = scratch_[static_cast<int>(Axis::kRam)].data() + base;
    double* dst_rate = scratch_[static_cast<int>(Axis::kRate)].data() + base;
    for (int t = 0; t < samples; ++t) {
      dst_cpu[t] += sl_cpu[t];
      dst_ram[t] += sl_ram[t];
      dst_rate[t] += sl_rate[t];
    }
    scratch_ws_[j] += acct_.SlotWs(s);
    scratch_count_[j] += 1;
    if (acct_.PinOfSlot(s) >= 0 && acct_.PinOfSlot(s) != j) {
      pin_penalty += kPinPenalty;
    }
  }
  double cost = pin_penalty;
  for (int j = 0; j < max_servers_; ++j) {
    const size_t base = static_cast<size_t>(j) * samples;
    const double* cpu = scratch_[static_cast<int>(Axis::kCpu)].data() + base;
    const double* ram = scratch_[static_cast<int>(Axis::kRam)].data() + base;
    const double* rate = scratch_[static_cast<int>(Axis::kRate)].data() + base;
    cost += ServerCostOf(
        acct_.ClassOfServer(j), scratch_ws_[j], scratch_count_[j],
        [&](int t) { return cpu[t]; }, [&](int t) { return ram[t]; },
        [&](int t) { return rate[t]; }, nullptr);
  }
  const double aff = AffinityViolations(assignment);
  if (aff > 0) cost += aff * (kViolationBase + kViolationScale * kAffinityUnit);
  if (has_migration_) {
    for (int s = 0; s < num_slots; ++s) cost += SlotMigrationCost(s, assignment[s]);
  }
  return cost;
}

void Evaluator::Load(const std::vector<int>& assignment) {
  const int num_slots = acct_.num_slots();
  assert(static_cast<int>(assignment.size()) == num_slots);
  assignment_ = assignment;
  acct_.Clear();
  for (int s = 0; s < num_slots; ++s) acct_.Apply(assignment[s], s, +1.0);
  server_cost_.assign(max_servers_, 0.0);
  server_violation_.assign(max_servers_, 0.0);
  current_cost_ = 0;
  total_violation_ = 0;
  for (int j = 0; j < max_servers_; ++j) {
    RecomputeServer(j);
    current_cost_ += server_cost_[j];
    total_violation_ += server_violation_[j];
  }
  const double aff = AffinityViolations(assignment_);
  if (aff > 0) {
    current_cost_ += aff * (kViolationBase + kViolationScale * kAffinityUnit);
    total_violation_ += aff * kAffinityUnit;
  }
  for (int s = 0; s < num_slots; ++s) {
    if (acct_.PinOfSlot(s) >= 0 && acct_.PinOfSlot(s) != assignment_[s]) {
      current_cost_ += kPinPenalty;
      total_violation_ += 1.0;
    }
  }
  migration_cost_ = 0;
  if (has_migration_) {
    for (int s = 0; s < num_slots; ++s) {
      migration_cost_ += SlotMigrationCost(s, assignment_[s]);
    }
    current_cost_ += migration_cost_;
  }
}

double Evaluator::SlotAffinity(int slot, int server) const {
  // Only the slot's own workload and its anti-affinity partners can
  // contribute, so scan just those contiguous slot ranges. All additions
  // are exact +1s — identical units to the historical all-slot scan.
  double units = 0;
  const int w = acct_.WorkloadOfSlot(slot);
  for (int b = workload_slot_begin_[w]; b < workload_slot_begin_[w + 1]; ++b) {
    if (b != slot && assignment_[b] == server) units += 1;
  }
  for (int p : affinity_partners_[w]) {
    for (int b = workload_slot_begin_[p]; b < workload_slot_begin_[p + 1]; ++b) {
      if (b != slot && assignment_[b] == server) units += 1;
    }
  }
  return units;
}

double Evaluator::MoveDelta(int slot, int to) const {
  ++tl_eval_ops.move_delta_ops;
  const int from = assignment_[slot];
  if (to == from) return 0.0;
  if (acct_.PinOfSlot(slot) >= 0 && to != acct_.PinOfSlot(slot)) {
    return kPinPenalty;
  }

  double delta = WhatIfCost(from, slot, -1.0) - server_cost_[from] +
                 WhatIfCost(to, slot, +1.0) - server_cost_[to];
  delta += (SlotAffinity(slot, to) - SlotAffinity(slot, from)) *
           (kViolationBase + kViolationScale * kAffinityUnit);
  delta += SlotMigrationCost(slot, to) - SlotMigrationCost(slot, from);
  return delta;
}

void Evaluator::MoveDeltaBatch(int slot, const std::vector<int>& targets,
                               std::vector<double>* deltas) const {
  tl_eval_ops.move_delta_ops += static_cast<int64_t>(targets.size());
  deltas->resize(targets.size());
  if (targets.empty()) return;
  const int from = assignment_[slot];
  const int pin = acct_.PinOfSlot(slot);
  // From-side terms do not depend on the target. FP note: the scalar
  // MoveDelta evaluates ((A - B) + C) - D left to right; base = A - B
  // keeps that grouping, so each batched delta is bit-identical to its
  // scalar counterpart.
  const double base = WhatIfCost(from, slot, -1.0) - server_cost_[from];
  const double aff_from = SlotAffinity(slot, from);
  const double mig_from = SlotMigrationCost(slot, from);
  for (size_t i = 0; i < targets.size(); ++i) {
    const int to = targets[i];
    if (to == from) {
      (*deltas)[i] = 0.0;
      continue;
    }
    if (pin >= 0 && to != pin) {
      (*deltas)[i] = kPinPenalty;
      continue;
    }
    double delta = base + WhatIfCost(to, slot, +1.0) - server_cost_[to];
    delta += (SlotAffinity(slot, to) - aff_from) *
             (kViolationBase + kViolationScale * kAffinityUnit);
    delta += SlotMigrationCost(slot, to) - mig_from;
    (*deltas)[i] = delta;
  }
}

void Evaluator::ApplyMove(int slot, int to) {
  ++tl_eval_ops.apply_move_ops;
  const int from = assignment_[slot];
  if (to == from) return;
  const double delta = MoveDelta(slot, to);
  const double affinity_delta = SlotAffinity(slot, to) - SlotAffinity(slot, from);

  current_cost_ += delta;
  migration_cost_ += SlotMigrationCost(slot, to) - SlotMigrationCost(slot, from);
  total_violation_ -= server_violation_[from] + server_violation_[to];

  acct_.Apply(from, slot, -1.0);
  acct_.Apply(to, slot, +1.0);
  assignment_[slot] = to;
  RecomputeServer(from);
  RecomputeServer(to);
  total_violation_ += server_violation_[from] + server_violation_[to];
  total_violation_ += affinity_delta * kAffinityUnit;
}

Evaluator::ServerLoad Evaluator::GetServerLoad(int j) const {
  ServerLoad out;
  const int count = acct_.ServerCount(j);
  out.used = count > 0;
  out.num_slots = std::max(0, count);
  out.violation = server_violation_[j];
  if (!out.used) return out;
  const double overhead = problem_.per_instance_cpu_overhead_cores;
  const double ram_overhead = static_cast<double>(problem_.instance_ram_overhead_bytes);
  const int samples = acct_.num_samples();
  const double* cpu = acct_.ServerSeries(Axis::kCpu, j);
  const double* ram = acct_.ServerSeries(Axis::kRam, j);
  const double* rate = acct_.ServerSeries(Axis::kRate, j);
  out.cpu_cores.resize(samples);
  out.ram_bytes.resize(samples);
  out.update_rows_per_sec.resize(samples);
  for (int t = 0; t < samples; ++t) {
    out.cpu_cores[t] = cpu[t] + overhead;
    out.ram_bytes[t] = ram[t] + ram_overhead;
    out.update_rows_per_sec[t] = rate[t];
  }
  out.working_set_bytes = acct_.ServerWs(j);
  return out;
}

int Evaluator::MovesFromCurrent() const {
  if (slot_current_.empty()) return 0;
  int moves = 0;
  for (int s = 0; s < acct_.num_slots(); ++s) {
    if (assignment_[s] != slot_current_[s]) ++moves;
  }
  return moves;
}

int Assignment::ServersUsed() const {
  std::vector<int> seen = server_of_slot;
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return static_cast<int>(seen.size());
}

}  // namespace kairos::core
