// Objective function and constraint evaluation (the landscape of Figure 5):
//   minimize  sum_j [ used_j * (w_j * C_server + mean_t exp(load_tj)) + penalty_j ]
// where load_tj is the utilization of server j at time t normalized by j's
// *own* machine-class capacity (the problem's sim::FleetSpec), w_j is the
// class's cost weight — so minimizing the objective prefers fewer *and
// cheaper* servers — and penalty_j spikes when capacity, replication,
// anti-affinity, or class-drain constraints are violated. A FleetSpec of
// identical machines at weight 1 reproduces the homogeneous objective
// bit-for-bit. When the problem carries an incumbent placement
// (current_assignment + migration_cost_weight), a migration term
// additionally charges every slot placed away from its current server,
// making re-solves move-averse (the src/online/ loop).
//
// Resource accounting lives in core::LoadAccountant: flat SoA load
// matrices plus the per-class resource models (linear CPU/RAM, per-class
// nonlinear model::DiskResource). The evaluator owns only the objective
// shape — exp-balance, violation penalties, affinity/pin/migration terms.
//
// Supports both one-shot evaluation (for DIRECT) and cached incremental
// move evaluation (for the local-search polish). Instances are not
// thread-safe (Evaluate() reuses internal scratch buffers); portfolio
// solvers each construct their own.
#ifndef KAIROS_CORE_EVALUATOR_H_
#define KAIROS_CORE_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "core/bounds.h"
#include "core/load_accountant.h"
#include "core/problem.h"

namespace kairos::obs {
class Sink;
}  // namespace kairos::obs

namespace kairos::core {

/// Thread-local evaluator op tallies. Every Evaluate/MoveDelta/ApplyMove
/// bumps a plain thread-local integer — no atomics, no sink branch — and an
/// instrumented region brackets the work with ResetEvalOps() before and
/// FlushEvalOps(sink) after (portfolio workers flush per member, the
/// controller per resolve, the engine per Solve). ApplyMove computes its
/// delta through MoveDelta, so one applied move also counts one delta op.
struct EvalOpCounts {
  int64_t evaluate_ops = 0;
  int64_t move_delta_ops = 0;
  int64_t apply_move_ops = 0;
};

/// Zeroes the calling thread's tallies (start of an instrumented region).
void ResetEvalOps();
/// The calling thread's tallies since the last reset.
EvalOpCounts CurrentEvalOps();
/// Adds the calling thread's tallies to the sink's "evaluator.*_ops"
/// counters and zeroes them. A null sink only zeroes.
void FlushEvalOps(obs::Sink* sink);

/// Evaluates assignments for one ConsolidationProblem.
class Evaluator {
 public:
  /// `max_servers` bounds the server indices assignments may use.
  Evaluator(const ConsolidationProblem& problem, int max_servers);

  int num_slots() const { return acct_.num_slots(); }
  int max_servers() const { return max_servers_; }
  int num_samples() const { return acct_.num_samples(); }
  /// Workload index of a slot.
  int WorkloadOfSlot(int slot) const { return acct_.WorkloadOfSlot(slot); }
  /// Pinned server of a slot (-1 if free).
  int PinOfSlot(int slot) const { return acct_.PinOfSlot(slot); }

  /// One-shot evaluation of an assignment (no cached state touched; reuses
  /// internal scratch, so not concurrency-safe on one instance).
  double Evaluate(const std::vector<int>& assignment) const;

  /// Loads `assignment` into the incremental cache.
  void Load(const std::vector<int>& assignment);
  /// Cached objective of the loaded assignment.
  double current_cost() const { return current_cost_; }
  /// Cached assignment.
  const std::vector<int>& assignment() const { return assignment_; }
  /// Objective delta if `slot` moved to `to` (no state change).
  double MoveDelta(int slot, int to) const;
  /// Batched MoveDelta: deltas->at(i) is the objective delta of moving
  /// `slot` to targets[i], bit-identical to calling MoveDelta per target.
  /// The from-side what-if cost, affinity, and migration terms are
  /// computed once and shared across the batch, so each extra target
  /// costs one pass over the accountant's SoA rows instead of two.
  void MoveDeltaBatch(int slot, const std::vector<int>& targets,
                      std::vector<double>* deltas) const;
  /// Applies a move and updates the cache.
  void ApplyMove(int slot, int to);
  /// True when the loaded assignment violates no constraint.
  bool IsFeasible() const { return total_violation_ <= 0.0; }
  /// Total relative constraint excess of the loaded assignment.
  double total_violation() const { return total_violation_; }
  /// Migration penalty included in current_cost() (0 when the problem has
  /// no current_assignment or a zero migration_cost_weight).
  double migration_cost() const { return migration_cost_; }
  /// Slots of the loaded assignment placed away from the problem's
  /// current_assignment (0 when the problem has none).
  int MovesFromCurrent() const;

  /// Per-server combined load of the loaded assignment (for reports).
  struct ServerLoad {
    bool used = false;
    std::vector<double> cpu_cores;         ///< Over time.
    std::vector<double> ram_bytes;         ///< Over time.
    std::vector<double> update_rows_per_sec;
    double working_set_bytes = 0;
    int num_slots = 0;
    double violation = 0;
  };
  /// Snapshot of server `j`'s load (requires Load()).
  ServerLoad GetServerLoad(int j) const;
  /// Cached constraint excess of server `j` (requires Load()). Cheap
  /// enough for the sharded solver's rebalancer to rank donors by.
  double ServerViolation(int j) const { return server_violation_[j]; }

  /// Capacities after headroom, per server (machine-class dependent).
  double cpu_capacity(int server = 0) const {
    return acct_.CapacityOfClass(acct_.ClassOfServer(server)).cpu_cores;
  }
  double ram_capacity_bytes(int server = 0) const {
    return acct_.CapacityOfClass(acct_.ClassOfServer(server)).ram_bytes;
  }
  /// Machine class of a server (index into the problem's fleet classes).
  int ClassOfServer(int server) const { return acct_.ClassOfServer(server); }

  /// The shared resource-accounting layer (slot/server load matrices and
  /// per-class resource models).
  const LoadAccountant& accountant() const { return acct_; }

 private:
  /// Cost + constraint excess of one server aggregate. The getters supply
  /// the aggregate series value at each sample, so the same arithmetic
  /// serves the cached state, the what-if MoveDelta composition, and the
  /// one-shot scratch without materializing copies.
  template <typename CpuAt, typename RamAt, typename RateAt>
  double ServerCostOf(int klass, double ws, int count, CpuAt cpu_at,
                      RamAt ram_at, RateAt rate_at, double* violation_out) const;

  /// Cost of server `j`'s current aggregate with `slot` added (sign +1) or
  /// removed (-1) — the allocation-free MoveDelta core.
  double WhatIfCost(int j, int slot, double sign) const;

  /// Recomputes server `j`'s cached cost + violation from its aggregates.
  void RecomputeServer(int j);
  /// Anti-affinity violation count for an assignment.
  double AffinityViolations(const std::vector<int>& assignment) const;
  /// Affinity units between `slot` and other slots currently on `server`.
  double SlotAffinity(int slot, int server) const;
  /// Migration penalty of placing `slot` on `server`.
  double SlotMigrationCost(int slot, int server) const {
    return (has_migration_ && server != slot_current_[slot])
               ? problem_.migration_cost_weight * slot_move_cost_[slot]
               : 0.0;
  }
  /// Zeroes the servers dirtied by the previous Evaluate() call.
  void ResetScratch() const;

  const ConsolidationProblem& problem_;
  int max_servers_;
  LoadAccountant acct_;

  // Migration term (empty/disabled unless the problem carries an incumbent).
  bool has_migration_ = false;
  std::vector<int> slot_current_;       // incumbent server per slot
  std::vector<double> slot_move_cost_;  // per-slot move cost

  // Affinity indexes: slots of workload w occupy
  // [workload_slot_begin_[w], workload_slot_begin_[w+1]) — replicas are
  // laid out workload-major — and affinity_partners_[w] lists the partner
  // workload of every anti-affinity pair touching w (with multiplicity,
  // so duplicate pairs keep their historical double count). Both exist so
  // affinity scans touch only the relevant slot ranges instead of every
  // slot; the counted units are identical.
  std::vector<int> workload_slot_begin_;
  std::vector<std::vector<int>> affinity_partners_;

  // Incremental cache.
  std::vector<int> assignment_;
  std::vector<double> server_cost_;
  std::vector<double> server_violation_;
  double current_cost_ = 0;
  double total_violation_ = 0;
  double migration_cost_ = 0;

  // One-shot scratch (lazily allocated, reused across Evaluate calls).
  mutable std::vector<double> scratch_[kNumAxes];
  mutable std::vector<double> scratch_ws_;
  mutable std::vector<int> scratch_count_;
  mutable std::vector<int> scratch_dirty_;
};

}  // namespace kairos::core

#endif  // KAIROS_CORE_EVALUATOR_H_
