#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <sstream>

#include "core/bounds.h"
#include "core/dimensioner.h"
#include "opt/direct.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace kairos::core {

namespace {

/// Scope guard flushing the thread's evaluator op tallies to the sink on
/// every exit path of an instrumented solve (no-op on a null sink).
struct EvalOpsFlusher {
  obs::Sink* sink;
  ~EvalOpsFlusher() {
    if (sink != nullptr) FlushEvalOps(sink);
  }
};

}  // namespace

ConsolidationEngine::ConsolidationEngine(const ConsolidationProblem& problem,
                                         const EngineOptions& options)
    : problem_(problem), options_(options) {}

uint32_t ConsolidationEngine::ObsTrack() {
  if (obs_track_ == kNoObsTrack) {
    obs_track_ = options_.sink->trace().InternTrack(
        options_.obs_label + "/" + std::to_string(options_.seed));
  }
  return obs_track_;
}

void ConsolidationEngine::EmitIncumbent(double objective, bool feasible) {
  if (options_.sink == nullptr) return;
  obs::TraceSink& trace = options_.sink->trace();
  trace.Emit(ObsTrack(), trace.InternName("incumbent"), obs::EventKind::kPoint,
             /*i0=*/evaluations_, /*i1=*/feasible ? 1 : 0, /*d0=*/objective);
}

bool ConsolidationEngine::ProbeK(int k, int direct_budget, Assignment* out) {
  ++probe_attempts_;
  const int evals_before = evaluations_;
  const bool feasible = ProbeKImpl(k, direct_budget, out);
  if (options_.sink != nullptr) {
    obs::TraceSink& trace = options_.sink->trace();
    trace.Emit(ObsTrack(), trace.InternName("probe"), obs::EventKind::kPoint,
               /*i0=*/k, /*i1=*/feasible ? 1 : 0,
               /*d0=*/static_cast<double>(evaluations_ - evals_before));
    options_.sink->metrics().counter("engine.probes")->Add(1);
    if (feasible) {
      options_.sink->metrics().counter("engine.probes_feasible")->Add(1);
    }
  }
  return feasible;
}

bool ConsolidationEngine::ProbeServers(const std::vector<int>& servers,
                                       int direct_budget, Assignment* out) {
  ++probe_attempts_;
  const int evals_before = evaluations_;
  const bool feasible = ProbeServersImpl(servers, direct_budget, out);
  if (options_.sink != nullptr) {
    obs::TraceSink& trace = options_.sink->trace();
    trace.Emit(ObsTrack(), trace.InternName("probe"), obs::EventKind::kPoint,
               /*i0=*/static_cast<int64_t>(servers.size()),
               /*i1=*/feasible ? 1 : 0,
               /*d0=*/static_cast<double>(evaluations_ - evals_before));
    options_.sink->metrics().counter("engine.probes")->Add(1);
    if (feasible) {
      options_.sink->metrics().counter("engine.probes_feasible")->Add(1);
    }
  }
  return feasible;
}

Assignment ConsolidationEngine::DecodePoint(const std::vector<double>& x, int k,
                                            const std::vector<int>* targets) const {
  // With drained classes the DIRECT encoding covers placable servers only
  // (the hard drain mask): the search space shrinks instead of the
  // optimizer wading through penalized regions. `targets` null or empty
  // means no mask — the classic [0, k) encoding, bit-for-bit.
  const int m = targets != nullptr ? static_cast<int>(targets->size()) : 0;
  Assignment a;
  a.server_of_slot.resize(x.size());
  int slot = 0;
  for (const auto& w : problem_.workloads) {
    for (int r = 0; r < w.replicas; ++r, ++slot) {
      if (w.pinned_server >= 0 && w.pinned_server < k) {
        a.server_of_slot[slot] = w.pinned_server;
      } else if (m > 0) {
        int idx = static_cast<int>(x[slot] * m);
        a.server_of_slot[slot] = (*targets)[std::clamp(idx, 0, m - 1)];
      } else {
        int j = static_cast<int>(x[slot] * k);
        a.server_of_slot[slot] = std::clamp(j, 0, k - 1);
      }
    }
  }
  return a;
}

Evaluator* ConsolidationEngine::EvaluatorFor(int k,
                                             std::unique_ptr<Evaluator>* owned) {
  if (options_.reuse_probe_context && k == problem_.ServerCap()) {
    if (probe_ev_ == nullptr) {
      probe_ev_ = std::make_unique<Evaluator>(problem_, k);
    }
    return probe_ev_.get();
  }
  *owned = std::make_unique<Evaluator>(problem_, k);
  return owned->get();
}

Assignment ConsolidationEngine::RunDirect(int k, int budget, double target_value,
                                          int* evals_out,
                                          const std::vector<int>* targets_override,
                                          Evaluator* reuse_ev) {
  std::unique_ptr<Evaluator> owned_ev;
  Evaluator* ev = reuse_ev;
  if (ev == nullptr) {
    owned_ev = std::make_unique<Evaluator>(problem_, k);
    ev = owned_ev.get();
  }
  const sim::FleetSpec::PlacementMask mask = problem_.fleet.PlacementTargets(k);
  const std::vector<int>* targets =
      targets_override != nullptr ? targets_override
                                  : (mask.masked ? &mask.targets : nullptr);
  const int dims = ev->num_slots();
  opt::DirectOptimizer direct;
  opt::DirectOptions opts;
  opts.max_evaluations = budget;
  opts.epsilon = options_.direct_epsilon;
  opts.target_value = target_value;
  const auto objective = [&](const std::vector<double>& x) {
    return ev->Evaluate(DecodePoint(x, k, targets).server_of_slot);
  };
  const opt::DirectResult res = direct.Minimize(objective, dims, opts);
  if (evals_out) *evals_out = res.evaluations;
  return DecodePoint(res.x, k, targets);
}

void ConsolidationEngine::LocalSearch(Evaluator* ev, int max_sweeps, util::Rng* rng,
                                      const std::vector<int>* targets) {
  const int slots = ev->num_slots();
  std::vector<int> order(slots);
  std::iota(order.begin(), order.end(), 0);
  // Relocation targets: placable servers only (the hard drain mask), or the
  // caller's explicit subset (cost-budget dimensioning). With nothing
  // drained and no subset this is exactly [0, k) — the classic scan. A
  // fully drained fleet degenerates back to the full scan.
  const LoadAccountant& acct = ev->accountant();
  const sim::FleetSpec::PlacementMask mask =
      targets != nullptr ? sim::FleetSpec::PlacementMask{*targets, true}
                         : problem_.fleet.PlacementTargets(ev->max_servers());
  // Swap guard: with an explicit subset, both endpoints must be members
  // (a seed may still sit on un-bought servers); under the drain mask the
  // guard is exactly "not drained", as before.
  std::vector<char> swap_ok;
  if (targets != nullptr) {
    swap_ok.assign(ev->max_servers(), 0);
    for (int j : *targets) {
      if (j >= 0 && j < ev->max_servers()) swap_ok[j] = 1;
    }
  }
  const auto drained_server = [&](int j) {
    if (targets != nullptr) return swap_ok[j] == 0;
    return mask.masked && acct.ClassDrained(acct.ClassOfServer(j));
  };

  // Relocation scratch, reused across sweeps. The batched evaluation
  // shares the from-side what-if cost across a slot's whole target scan
  // (the evaluator state is constant during the scan — moves apply after
  // it), with deltas bit-identical to the scalar loop; the first-in-order
  // strict-< winner is therefore the same move the scalar scan picked.
  std::vector<int> batch_targets;
  std::vector<double> batch_deltas;
  batch_targets.reserve(mask.targets.size());

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool improved = false;
    // Relocation pass (best-improvement per slot, batched deltas).
    for (int i = slots - 1; i > 0; --i) {
      std::swap(order[i], order[static_cast<int>(rng->UniformInt(0, i))]);
    }
    for (int slot : order) {
      if (ev->PinOfSlot(slot) >= 0) continue;
      const int cur = ev->assignment()[slot];
      batch_targets.clear();
      for (int j : mask.targets) {
        if (j != cur) batch_targets.push_back(j);
      }
      if (batch_targets.empty()) continue;
      ev->MoveDeltaBatch(slot, batch_targets, &batch_deltas);
      double best_delta = -1e-9;
      int best_to = -1;
      for (size_t i = 0; i < batch_targets.size(); ++i) {
        if (batch_deltas[i] < best_delta) {
          best_delta = batch_deltas[i];
          best_to = batch_targets[i];
        }
      }
      if (best_to >= 0) {
        ev->ApplyMove(slot, best_to);
        improved = true;
      }
    }
    // Swap pass: random pairs; keep improving swaps. Never swap a slot
    // *onto* a drained server (the mask again; no-op without drain).
    const int swap_tries = slots * 2;
    for (int i = 0; i < swap_tries; ++i) {
      const int a = static_cast<int>(rng->UniformInt(0, slots - 1));
      const int b = static_cast<int>(rng->UniformInt(0, slots - 1));
      if (a == b) continue;
      if (ev->PinOfSlot(a) >= 0 || ev->PinOfSlot(b) >= 0) continue;
      const int sa = ev->assignment()[a];
      const int sb = ev->assignment()[b];
      if (sa == sb) continue;
      if (drained_server(sa) || drained_server(sb)) continue;
      const double before = ev->current_cost();
      ev->ApplyMove(a, sb);
      ev->ApplyMove(b, sa);
      if (ev->current_cost() > before - 1e-9) {
        ev->ApplyMove(b, sb);
        ev->ApplyMove(a, sa);
      } else {
        improved = true;
      }
    }
    if (!improved) break;
  }
}

bool ConsolidationEngine::ProbeKImpl(int k, int direct_budget, Assignment* out) {
  if (k < 1) return false;
  if (options_.should_stop && options_.should_stop()) return false;
  util::Rng rng(options_.seed ^ (0x9E37ULL * static_cast<uint64_t>(k)));

  // 1. Multi-resource greedy restricted to k servers, then local search.
  bool greedy_clean = false;
  Assignment seed = GreedyMultiResource(problem_, k, &greedy_clean);
  Evaluator ev(problem_, k);
  ev.Load(seed.server_of_slot);
  if (!ev.IsFeasible()) {
    LocalSearch(&ev, options_.local_search_max_sweeps, &rng);
  }
  if (ev.IsFeasible()) {
    if (out) out->server_of_slot = ev.assignment();
    return true;
  }

  // 2. DIRECT global probe with early stop at the first feasible value,
  //    then a final repair pass. The probe encodes the *placable* servers
  //    of the fleet-order prefix [0, k), so any feasible plan there costs
  //    at most the sum of those servers' weighted server costs plus a
  //    balance tail of e each — a looser bound (e.g. fleet-wide max
  //    weight) would let an infeasible all-cheap-class plan pass as
  //    "feasible" and stop DIRECT early.
  const double feasible_threshold =
      BoundEngine::PrefixFeasibleThreshold(problem_, ev.accountant(), k);
  int evals = 0;
  Assignment candidate = RunDirect(k, direct_budget, feasible_threshold, &evals);
  evaluations_ += evals;
  ev.Load(candidate.server_of_slot);
  if (!ev.IsFeasible()) {
    LocalSearch(&ev, options_.local_search_max_sweeps, &rng);
  }
  if (ev.IsFeasible()) {
    if (out) out->server_of_slot = ev.assignment();
    return true;
  }
  return false;
}

bool ConsolidationEngine::ProbeServersImpl(const std::vector<int>& servers,
                                           int direct_budget, Assignment* out) {
  if (servers.empty()) return false;
  if (options_.should_stop && options_.should_stop()) return false;
  const int k = problem_.ServerCap();
  util::Rng rng(options_.seed ^
                (0xB06DULL * (static_cast<uint64_t>(servers.size()) + 1)));

  // 1. Multi-resource greedy restricted to the subset, then local search
  //    over the same subset. Every probe runs at k == ServerCap(), so the
  //    packing context and the Evaluator are reusable across the
  //    dimensioner's whole probe sequence (bit-identical results; see
  //    EngineOptions::reuse_probe_context).
  bool greedy_clean = false;
  Assignment seed;
  if (options_.reuse_probe_context) {
    if (probe_pack_ == nullptr) {
      probe_pack_ = std::make_unique<GreedyPackContext>(problem_, k);
    }
    seed = GreedyMultiResource(*probe_pack_, &greedy_clean, &servers);
  } else {
    seed = GreedyMultiResource(problem_, k, &greedy_clean, &servers);
  }
  std::unique_ptr<Evaluator> owned_ev;
  Evaluator* ev = EvaluatorFor(k, &owned_ev);
  ev->Load(seed.server_of_slot);
  if (!ev->IsFeasible()) {
    LocalSearch(ev, options_.local_search_max_sweeps, &rng, &servers);
  }
  if (ev->IsFeasible()) {
    if (out) out->server_of_slot = ev->assignment();
    return true;
  }

  // 2. DIRECT global probe over the subset encoding with early stop at the
  //    first feasible value, then a final repair pass. Any feasible plan
  //    within the subset costs at most the sum of the members' weighted
  //    server costs plus a balance tail of e each — the subset analogue of
  //    the prefix probe's threshold.
  const double feasible_threshold =
      BoundEngine::SubsetFeasibleThreshold(ev->accountant(), servers);
  int evals = 0;
  Assignment candidate =
      RunDirect(k, direct_budget, feasible_threshold, &evals, &servers, ev);
  evaluations_ += evals;
  ev->Load(candidate.server_of_slot);
  if (!ev->IsFeasible()) {
    LocalSearch(ev, options_.local_search_max_sweeps, &rng, &servers);
  }
  if (ev->IsFeasible()) {
    if (out) out->server_of_slot = ev->assignment();
    return true;
  }
  return false;
}

ConsolidationPlan ConsolidationEngine::Solve() {
  const auto start = std::chrono::steady_clock::now();
  ConsolidationPlan plan;
  evaluations_ = 0;
  probe_attempts_ = 0;
  obs::ScopedSpan solve_span(options_.sink,
                             options_.obs_label + "/" +
                                 std::to_string(options_.seed),
                             "solve");
  // Credit the evaluator ops of this solve to the sink on every return
  // path. Standalone runs start the tallies clean; under the portfolio the
  // worker brackets each member anyway, so the flush here just lands the
  // same ops earlier.
  if (options_.sink != nullptr) ResetEvalOps();
  EvalOpsFlusher ops_flusher{options_.sink};

  const int num_slots = problem_.TotalSlots();
  if (num_slots == 0) return plan;
  const int hard_cap = problem_.ServerCap();

  plan.fractional_lower_bound = FractionalLowerBound(problem_);

  // Greedy baseline & upper bound.
  const GreedyResult greedy = GreedyBaseline(problem_, hard_cap);
  plan.greedy_servers = greedy.feasible ? greedy.servers_used : -1;
  int upper = greedy.feasible ? greedy.servers_used : hard_cap;
  upper = std::min(upper, hard_cap);
  int lower = std::max(1, plan.fractional_lower_bound);
  if (lower > upper) lower = upper;

  Assignment best;
  int best_k = -1;
  int budget_probes = 0;
  std::vector<int> chosen_class_counts;
  std::vector<int> chosen_servers;
  bool polished_multi_greedy_fallback = false;

  const auto broadcast = [this](const Assignment& a, int k) {
    if (!options_.on_incumbent && options_.sink == nullptr) return;
    std::unique_ptr<Evaluator> owned_ev;
    Evaluator* ev = EvaluatorFor(k, &owned_ev);
    ev->Load(a.server_of_slot);
    EmitIncumbent(ev->current_cost(), ev->IsFeasible());
    if (options_.on_incumbent) {
      options_.on_incumbent(a, ev->current_cost(), ev->IsFeasible());
    }
  };
  const auto stop_requested = [this] {
    return options_.should_stop && options_.should_stop();
  };

  // Cost-based dimensioning replaces the count-prefix binary search on
  // heterogeneous fleets: the prefix [0, K) of the declaration order can
  // never open a cheaper class declared late, while the budget search buys
  // dense-first class mixes. Uniform fleets keep the count path — prefix
  // order is immaterial there and the classic results stay bit-identical.
  const bool cost_budget =
      options_.use_bounded_k &&
      options_.dimensioning == DimensioningMode::kCostBudget &&
      !problem_.fleet.Uniform();

  if (cost_budget) {
    FleetDimensioner dimensioner(problem_, *this, options_);
    const DimensioningResult dim = dimensioner.Run(
        greedy, [&](const Assignment& a) { broadcast(a, hard_cap); });
    budget_probes = dim.budget_probes;
    if (dim.found) {
      best = dim.assignment;
      best_k = hard_cap;
      chosen_class_counts = dim.class_counts;
      chosen_servers = dim.servers;
    }
  } else if (options_.use_bounded_k) {
    // Binary search for the smallest feasible K' (Section 6).
    // First make sure the upper bound actually works.
    Assignment a;
    if (ProbeK(upper, options_.probe_direct_evaluations, &a)) {
      best = a;
      best_k = upper;
      broadcast(best, best_k);
      int lo = lower, hi = upper;
      while (lo < hi && !stop_requested()) {
        const int mid = lo + (hi - lo) / 2;
        Assignment mid_a;
        if (ProbeK(mid, options_.probe_direct_evaluations, &mid_a)) {
          best = mid_a;
          best_k = mid;
          broadcast(best, best_k);
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
    } else {
      // Relax upward until something fits.
      for (int k = upper + 1; k <= hard_cap && !stop_requested(); ++k) {
        Assignment a2;
        if (ProbeK(k, options_.probe_direct_evaluations, &a2)) {
          best = a2;
          best_k = k;
          broadcast(best, best_k);
          break;
        }
      }
    }
  } else {
    // Ablation: one full-space solve (no bounding of K).
    int evals = 0;
    const Assignment direct_a = RunDirect(hard_cap, options_.direct_evaluations,
                                          -1e300, &evals);
    evaluations_ += evals;
    util::Rng rng(options_.seed);
    Evaluator ev(problem_, hard_cap);
    ev.Load(direct_a.server_of_slot);
    LocalSearch(&ev, options_.local_search_max_sweeps, &rng);
    best.server_of_slot = ev.assignment();
    best_k = hard_cap;
  }

  if (best_k < 0) {
    // Nothing feasible at all: report the greedy/fallback assignment.
    bool clean = false;
    best = GreedyMultiResource(problem_, hard_cap, &clean);
    best_k = hard_cap;
    polished_multi_greedy_fallback = true;
  }

  // Final polish at K' with the full budget (restricted to the dimensioner's
  // chosen multiset when there is one). PolishPlan reports from scratch, so
  // carry over the bound fields computed above.
  ConsolidationPlan polished = PolishPlan(
      best, best_k, chosen_servers.empty() ? nullptr : &chosen_servers);
  polished.fractional_lower_bound = plan.fractional_lower_bound;
  polished.greedy_servers = plan.greedy_servers;
  polished.budget_probes = budget_probes;
  polished.chosen_class_counts = chosen_class_counts;
  plan = std::move(polished);

  if (!problem_.fleet.Uniform()) {
    // Safety net on heterogeneous fleets: the class-aware greedy baseline
    // sees the whole fleet, so never return a plan worse than what it
    // reaches — compare PolishPlan outcomes (feasible beats infeasible,
    // then objective) even when the greedy packing itself was flagged
    // infeasible, since its polish can still be *less* infeasible than the
    // probed plan. (Uniform fleets skip this: the classic path stays
    // bit-identical.)
    Assignment rescue_seed;
    bool have_rescue = false;
    if (greedy.feasible) {
      rescue_seed = greedy.assignment;
      have_rescue = true;
    } else if (!polished_multi_greedy_fallback) {
      // GreedyBaseline found nothing clean; its multi-resource completion is
      // still a whole-fleet seed worth polishing (skipped when the plan
      // above already IS that polish).
      bool clean = false;
      rescue_seed = GreedyMultiResource(problem_, hard_cap, &clean);
      have_rescue = true;
    }
    if (have_rescue) {
      ConsolidationPlan from_greedy = PolishPlan(rescue_seed, hard_cap);
      if ((from_greedy.feasible && !plan.feasible) ||
          (from_greedy.feasible == plan.feasible &&
           from_greedy.objective < plan.objective)) {
        from_greedy.fractional_lower_bound = plan.fractional_lower_bound;
        from_greedy.greedy_servers = plan.greedy_servers;
        from_greedy.budget_probes = budget_probes;
        plan = std::move(from_greedy);
      }
    }
  }

  plan.solver_evaluations = evaluations_;
  plan.probe_attempts = probe_attempts_;
  plan.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return plan;
}

ConsolidationPlan ConsolidationEngine::PolishPlan(const Assignment& incumbent, int k,
                                                  const std::vector<int>* targets) {
  // Standalone polish runs (warm-started re-solves) credit their evaluator
  // ops too; under the portfolio the worker's bracket subsumes this.
  EvalOpsFlusher ops_flusher{options_.sink};
  // When the race is already over, skip the polish entirely: report the
  // incumbent as-is so the portfolio can join quickly.
  if (options_.should_stop && options_.should_stop()) {
    ConsolidationPlan plan = FinalizePlan(problem_, incumbent.server_of_slot, k);
    EmitIncumbent(plan.objective, plan.feasible);
    if (options_.on_incumbent) {
      options_.on_incumbent(plan.assignment, plan.objective, plan.feasible);
    }
    return plan;
  }

  // DIRECT for global moves, then local search, keeping the best feasible
  // incumbent. One evaluator serves both phases: everything the first
  // phase decides on is copied out before the second re-Loads it.
  util::Rng rng(options_.seed + 17);
  std::unique_ptr<Evaluator> owned_ev;
  Evaluator* ev = EvaluatorFor(k, &owned_ev);
  ev->Load(incumbent.server_of_slot);
  LocalSearch(ev, options_.local_search_max_sweeps * 2, &rng, targets);
  double best_cost = ev->current_cost();
  std::vector<int> best_assign = ev->assignment();
  const bool best_feasible = ev->IsFeasible();

  if (options_.use_bounded_k &&
      !(options_.should_stop && options_.should_stop())) {
    int evals = 0;
    Assignment polished =
        RunDirect(k, options_.direct_evaluations, -1e300, &evals, targets, ev);
    evaluations_ += evals;
    ev->Load(polished.server_of_slot);
    LocalSearch(ev, options_.local_search_max_sweeps, &rng, targets);
    if (ev->current_cost() < best_cost && (ev->IsFeasible() || !best_feasible)) {
      best_cost = ev->current_cost();
      best_assign = ev->assignment();
    }
  }

  ConsolidationPlan plan = FinalizePlan(problem_, best_assign, k);
  plan.probe_attempts = probe_attempts_;
  EmitIncumbent(plan.objective, plan.feasible);
  if (options_.on_incumbent) {
    options_.on_incumbent(plan.assignment, plan.objective, plan.feasible);
  }
  return plan;
}

ConsolidationPlan FinalizePlan(const ConsolidationProblem& problem,
                               const std::vector<int>& assignment, int k) {
  ConsolidationPlan plan;
  Evaluator final_ev(problem, k);
  final_ev.Load(assignment);
  plan.assignment.server_of_slot = assignment;
  plan.feasible = final_ev.IsFeasible();
  plan.objective = final_ev.current_cost();
  plan.migration_cost = final_ev.migration_cost();
  plan.moves_from_current = final_ev.MovesFromCurrent();
  plan.servers_used = plan.assignment.ServersUsed();
  const int num_slots = problem.TotalSlots();
  plan.consolidation_ratio =
      plan.servers_used > 0
          ? static_cast<double>(num_slots) / static_cast<double>(plan.servers_used)
          : 0.0;
  plan.class_servers_used.assign(problem.fleet.num_classes(), 0);
  for (const auto& c : problem.fleet.classes) plan.class_names.push_back(c.spec.name);
  std::vector<char> used(k, 0);
  for (int s : assignment) {
    if (s >= 0 && s < k) used[s] = 1;
  }
  for (int j = 0; j < k; ++j) {
    if (!used[j]) continue;
    const int klass = problem.fleet.ClassOf(j);
    plan.fleet_cost += problem.fleet.classes[klass].cost_weight;
    ++plan.class_servers_used[klass];
  }
  for (int j = 0; j < k; ++j) {
    Evaluator::ServerLoad load = final_ev.GetServerLoad(j);
    if (load.used) plan.server_loads.push_back(std::move(load));
  }
  return plan;
}

std::string ConsolidationPlan::Render() const {
  std::ostringstream out;
  out << "consolidation plan: " << (feasible ? "FEASIBLE" : "INFEASIBLE")
      << ", servers=" << servers_used << " (ratio " << util::FormatDouble(
             consolidation_ratio, 1)
      << ":1, fractional bound " << fractional_lower_bound << ", greedy "
      << (greedy_servers >= 0 ? std::to_string(greedy_servers) : std::string("n/a"))
      << "), solve " << util::FormatDouble(solve_seconds, 2) << "s";
  if (probe_attempts > 0) {
    out << ", probes " << probe_attempts;
    if (solve_seconds > 0) {
      out << " ("
          << util::FormatDouble(static_cast<double>(probe_attempts) /
                                    solve_seconds,
                                1)
          << "/s)";
    }
  }
  out << "\n";
  if (exact_search) {
    // Only the exact solver sets exact_search, so existing heuristic
    // transcripts stay byte-identical.
    out << "exact: " << exact_nodes << " nodes, ";
    if (proved_optimal) {
      out << "proved optimal";
    } else {
      out << "budget-truncated, gap <= " << util::FormatDouble(optimality_gap, 3);
    }
    out << "\n";
  }
  if (class_servers_used.size() > 1) {
    out << "fleet cost " << util::FormatDouble(fleet_cost, 2) << ":";
    for (size_t c = 0; c < class_servers_used.size(); ++c) {
      out << " " << (c < class_names.size() ? class_names[c] : "class") << "="
          << class_servers_used[c];
    }
    out << "\n";
  }
  if (!chosen_class_counts.empty()) {
    out << "dimensioning: cost-budget (" << budget_probes
        << " budget probes), chosen mix:";
    for (size_t c = 0; c < chosen_class_counts.size(); ++c) {
      out << " " << (c < class_names.size() ? class_names[c] : "class") << "="
          << chosen_class_counts[c];
    }
    out << "\n";
  }
  util::Table table({"server", "slots", "peak cpu (cores)", "peak ram (GB)",
                     "mean cpu", "p95 cpu"});
  for (size_t j = 0; j < server_loads.size(); ++j) {
    const auto& s = server_loads[j];
    util::Accumulator cpu;
    for (double v : s.cpu_cores) cpu.Add(v);
    table.AddRow({std::to_string(j), std::to_string(s.num_slots),
                  util::FormatDouble(cpu.Max(), 2),
                  util::FormatDouble(s.ram_bytes.empty()
                                         ? 0.0
                                         : *std::max_element(s.ram_bytes.begin(),
                                                             s.ram_bytes.end()) /
                                               static_cast<double>(util::kGiB),
                                     1),
                  util::FormatDouble(cpu.Mean(), 2),
                  util::FormatDouble(util::Percentile(s.cpu_cores, 95.0), 2)});
  }
  out << table.ToString();
  return out.str();
}

}  // namespace kairos::core
