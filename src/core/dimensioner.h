// Cost-based fleet dimensioning: the budget-constrained-optimization
// framing of the engine's bounded search, built for heterogeneous fleets.
// The legacy Section-6 search binary-searches on the server *count* K and
// probes the declaration-order prefix [0, K) of the index space — which can
// never open a cheaper class declared late (the ROADMAP's RAID-vs-spindle
// miss). The dimensioner instead binary-searches on the total fleet-cost
// *budget*: it orders the placable fleet by disk-aware capacity per cost
// (core::DenseServerOrder), buys the cheapest-dense-first multiset of
// per-class servers within each candidate budget, and asks the engine for a
// feasible assignment restricted to exactly that multiset
// (ConsolidationEngine::ProbeServers). Budgets are nested (each is a prefix
// of one purchase order), so feasibility is monotone in the budget and the
// binary search is as sound as the legacy count search.
#ifndef KAIROS_CORE_DIMENSIONER_H_
#define KAIROS_CORE_DIMENSIONER_H_

#include <functional>
#include <vector>

#include "core/engine.h"
#include "core/greedy.h"
#include "core/problem.h"

namespace kairos::core {

/// Outcome of one budget search.
struct DimensioningResult {
  bool found = false;      ///< Some subset probe produced a feasible plan.
  Assignment assignment;   ///< The best feasible assignment (when found).
  /// The chosen multiset of server indices, ascending — the mask the final
  /// polish is restricted to.
  std::vector<int> servers;
  /// Per-class counts of `servers`, indexed like the problem fleet.
  std::vector<int> class_counts;
  /// Fleet cost of the chosen multiset (sum of class cost weights).
  double budget = 0;
  /// Subset probes run (the cost-budget analogue of binary-search steps).
  int budget_probes = 0;
};

/// Dimensions a heterogeneous fleet by fleet-cost budget for one engine
/// solve. Deterministic: a pure function of (problem, engine options).
class FleetDimensioner {
 public:
  FleetDimensioner(const ConsolidationProblem& problem,
                   ConsolidationEngine& engine, const EngineOptions& options);

  /// Runs the budget search. `greedy_upper` is the engine's class-aware
  /// greedy baseline (may be infeasible/empty): when feasible, its fleet
  /// cost seeds the upper budget the way the greedy server count seeds the
  /// legacy upper K. `on_improve` (may be empty) fires on every improving
  /// feasible probe, so the engine can stream incumbents to a portfolio.
  DimensioningResult Run(const GreedyResult& greedy_upper,
                         const std::function<void(const Assignment&)>&
                             on_improve = nullptr);

  /// The dimensioner's cheap warm-start seed, no DIRECT probes: the
  /// multi-resource greedy packing restricted to the fractional *coverage
  /// prefix* of the dense purchase order (the cheapest multiset whose
  /// idealized aggregate capacity covers peak demand). Used by the solve/
  /// layer to warm-start anneal/tabu toward cheap-dense mixes on
  /// heterogeneous fleets.
  static Assignment GreedySeed(const ConsolidationProblem& problem, int cap);

 private:
  const ConsolidationProblem& problem_;
  ConsolidationEngine& engine_;
  const EngineOptions& options_;
};

}  // namespace kairos::core

#endif  // KAIROS_CORE_DIMENSIONER_H_
