// The consolidation problem (Section 5): workload profiles to be packed
// onto target machines subject to time-varying CPU/RAM/disk constraints,
// replication, anti-affinity, and pinning.
#ifndef KAIROS_CORE_PROBLEM_H_
#define KAIROS_CORE_PROBLEM_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "model/disk_model.h"
#include "monitor/profile.h"
#include "sim/fleet.h"

namespace kairos::core {

/// Inputs of one consolidation run.
struct ConsolidationProblem {
  /// Workloads to place. `replicas` and `pinned_server` inside each profile
  /// are honoured.
  std::vector<monitor::WorkloadProfile> workloads;

  /// Target fleet: ordered machine classes defining the server index space
  /// (heterogeneous *sources* are already normalized to standard cores in
  /// the profiles; this is the heterogeneous *target* side). The default is
  /// the pre-fleet setup — unbounded identical consolidation targets.
  sim::FleetSpec fleet =
      sim::FleetSpec::Homogeneous(sim::MachineSpec::ConsolidationTarget());

  /// Hard cap on servers the solver may use (defaults to one per workload
  /// replica when 0). The fleet's total server count, when bounded, caps it
  /// further — see ServerCap().
  int max_servers = 0;

  /// Legacy shared disk model: the model every machine class uses when its
  /// MachineClass::disk_model is unset — "same hardware curve everywhere".
  /// May be null, in which case classes without their own model have no
  /// disk constraint. Per-class models (a RAID class next to a
  /// single-spindle class) live on the fleet's classes; resolution is
  /// DiskModelOfClass() / DiskHeadroomOfClass().
  const model::DiskModel* disk_model = nullptr;

  /// Resource headroom: a server is only loaded to this fraction of its
  /// capacity (the paper keeps a ~5-10% safety margin).
  double cpu_headroom = 0.90;
  double ram_headroom = 0.95;
  double disk_headroom = 0.90;

  /// Per-instance OS+DBMS background CPU included in each dedicated-server
  /// profile; (n-1) copies are subtracted when n workloads co-locate.
  double per_instance_cpu_overhead_cores = 0.04;

  /// RAM overhead of the single consolidated DBMS instance per server.
  uint64_t instance_ram_overhead_bytes = 254ULL * 1024 * 1024;  // DBMS+OS

  /// Balance weights in the objective's linear combination of resources.
  double cpu_weight = 1.0;
  double ram_weight = 1.0;
  double disk_weight = 1.0;

  /// Pairs of workload indices that must not share a server (beyond the
  /// automatic anti-affinity between replicas of one workload).
  std::vector<std::pair<int, int>> anti_affinity;

  /// --- Migration-aware re-solve (the src/online/ control loop) ---
  /// Incumbent placement, one server index per slot (same slot order as
  /// TotalSlots()). Empty for greenfield solves. Entries may exceed
  /// max_servers (e.g. a slot still sitting on a drained server); such
  /// slots are charged a move wherever they are placed.
  std::vector<int> current_assignment;
  /// Objective points charged per unit of move cost when a slot is placed
  /// away from its current server. Keep well below kServerCost so saving a
  /// server still pays for any full reshuffle; 0 disables the term.
  double migration_cost_weight = 0.0;
  /// Relative move cost per workload (all replicas of a workload share it).
  /// Empty means 1.0 per workload.
  std::vector<double> migration_move_cost;

  /// Effective disk model of fleet class `c` (class override, else the
  /// shared legacy model; may be null).
  const model::DiskModel* DiskModelOfClass(int c) const {
    return fleet.EffectiveDiskModel(c, disk_model);
  }

  /// Effective disk headroom of fleet class `c`.
  double DiskHeadroomOfClass(int c) const {
    return fleet.EffectiveDiskHeadroom(c, disk_headroom);
  }

  /// Number of placement slots (sum of replica counts).
  int TotalSlots() const {
    int slots = 0;
    for (const auto& w : workloads) slots += w.replicas;
    return slots;
  }

  /// Upper bound on usable server indices. A bounded fleet *is* the server
  /// pool: its total count is the default and max_servers can only shrink
  /// it. With an unbounded fleet the classic rule applies — max_servers, or
  /// one server per slot when 0.
  int ServerCap() const { return ServerCap(max_servers); }

  /// Same rule with an explicit max_servers override (<= 0 = unset), for
  /// callers that bound the pool per call (greedy packers, the online
  /// controller's num_servers knob).
  int ServerCap(int max_servers_override) const {
    const int fleet_total = fleet.TotalServers();
    if (fleet_total > 0) {
      return max_servers_override > 0 ? std::min(max_servers_override, fleet_total)
                                      : fleet_total;
    }
    return max_servers_override > 0 ? max_servers_override : TotalSlots();
  }
};

/// A placement: server index per slot (slots enumerate workloads' replicas
/// in workload order).
struct Assignment {
  std::vector<int> server_of_slot;

  /// Number of distinct servers used.
  int ServersUsed() const;
};

}  // namespace kairos::core

#endif  // KAIROS_CORE_PROBLEM_H_
