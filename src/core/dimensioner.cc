#include "core/dimensioner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/bounds.h"
#include "core/load_accountant.h"

namespace kairos::core {

namespace {

/// Widest replica set of the problem: replicas never co-locate, so no
/// subset smaller than this can host the load.
int MinServersOf(const ConsolidationProblem& problem) {
  int min_servers = 1;
  for (const auto& w : problem.workloads) {
    min_servers = std::max(min_servers, w.replicas);
  }
  return min_servers;
}

/// Moves pinned servers to the front of `order` (appending any pin the
/// order does not contain, e.g. on a drained class): DecodePoint forces
/// pins onto their servers, so every probed subset must contain them.
std::vector<int> WithPinsFirst(const ConsolidationProblem& problem,
                               std::vector<int> order, int cap) {
  std::vector<int> pins;
  for (const auto& w : problem.workloads) {
    if (w.pinned_server >= 0 && w.pinned_server < cap) {
      pins.push_back(w.pinned_server);
    }
  }
  if (pins.empty()) return order;
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  std::vector<char> pinned(cap, 0);
  for (int j : pins) pinned[j] = 1;
  std::vector<int> out = std::move(pins);
  for (int j : order) {
    if (!pinned[j]) out.push_back(j);
  }
  return out;
}

/// The candidate purchase orders the budget search buys prefixes of. One
/// density scalar cannot express "buy the dear disk class only for the
/// update-heavy payload", so alongside the disk-aware dense order the
/// search also tries cheapest-class-first and, per class, that class's
/// servers first (dense within and after) — the "all on class c, then
/// spill dense" mixes. Deduplicated, deterministic order.
std::vector<std::vector<int>> CandidateOrders(
    const ConsolidationProblem& problem, const LoadAccountant& acct, int cap) {
  std::vector<std::vector<int>> orders;
  const auto push = [&](std::vector<int> order) {
    order = WithPinsFirst(problem, std::move(order), cap);
    if (order.empty()) return;
    if (std::find(orders.begin(), orders.end(), order) == orders.end()) {
      orders.push_back(std::move(order));
    }
  };

  const std::vector<int> dense = DenseServerOrder(acct);
  push(dense);

  // Cheapest class first (stable: ascending index within equal weight) —
  // the order the legacy prefix approximates when cheap classes lead the
  // declaration.
  std::vector<int> cheap = acct.PlacableServers();
  std::stable_sort(cheap.begin(), cheap.end(), [&](int a, int b) {
    return acct.ClassWeight(acct.ClassOfServer(a)) <
           acct.ClassWeight(acct.ClassOfServer(b));
  });
  push(std::move(cheap));

  for (int c = 0; c < acct.num_classes(); ++c) {
    if (acct.ClassDrained(c)) continue;
    std::vector<int> first = dense;
    std::stable_partition(first.begin(), first.end(), [&](int j) {
      return acct.ClassOfServer(j) == c;
    });
    push(std::move(first));
  }
  return orders;
}

/// Shortest prefix of `order` whose idealized (fractional) aggregate
/// capacity covers the peak demand on every axis (arithmetic now lives in
/// the unified bound layer; GreedySeed still ranks candidate orders by it).
int CoveragePrefix(const LoadAccountant& acct,
                   const LoadAccountant::AggregateDemand& demand,
                   int min_servers, const std::vector<int>& order) {
  return BoundEngine::CoveragePrefix(acct, demand, min_servers, order);
}

/// First m of the purchase order, as an ascending server-index subset.
std::vector<int> SubsetOf(const std::vector<int>& order, int m) {
  std::vector<int> subset(order.begin(), order.begin() + m);
  std::sort(subset.begin(), subset.end());
  return subset;
}

}  // namespace

FleetDimensioner::FleetDimensioner(const ConsolidationProblem& problem,
                                   ConsolidationEngine& engine,
                                   const EngineOptions& options)
    : problem_(problem), engine_(engine), options_(options) {}

DimensioningResult FleetDimensioner::Run(
    const GreedyResult& greedy_upper,
    const std::function<void(const Assignment&)>& on_improve) {
  DimensioningResult result;
  const int cap = problem_.ServerCap();
  if (cap < 1 || problem_.TotalSlots() == 0) return result;
  const LoadAccountant acct(problem_, cap, /*track_server_load=*/false);
  const LoadAccountant::AggregateDemand demand = acct.TotalDemand();
  const int min_servers = MinServersOf(problem_);
  const int num_classes = problem_.fleet.num_classes();

  const auto stop = [&] {
    return options_.should_stop && options_.should_stop();
  };
  // Fleet cost of the class-aware greedy baseline: the known-feasible
  // anchor bounding the knapsack (legacy anchored its upper K on the
  // greedy server count the same way).
  double greedy_cost = -1.0;
  if (greedy_upper.feasible) {
    std::vector<char> used(cap, 0);
    for (int s : greedy_upper.assignment.server_of_slot) {
      if (s >= 0 && s < cap) used[s] = 1;
    }
    std::vector<int> greedy_servers;
    for (int j = 0; j < cap; ++j) {
      if (used[j]) greedy_servers.push_back(j);
    }
    greedy_cost = problem_.fleet.CostOfServers(greedy_servers);
  }

  // Pins must ride in every probed subset (DecodePoint forces them), so
  // they floor their class counts; drained classes offer nothing beyond
  // their pins.
  std::vector<std::vector<int>> pins_of_class(num_classes);
  std::vector<char> is_pin(cap, 0);
  for (const auto& w : problem_.workloads) {
    const int pin = w.pinned_server;
    if (pin >= 0 && pin < cap && !is_pin[pin]) {
      is_pin[pin] = 1;
      pins_of_class[problem_.fleet.ClassOf(pin)].push_back(pin);
    }
  }
  for (auto& pins : pins_of_class) std::sort(pins.begin(), pins.end());
  const std::vector<int> class_counts = problem_.fleet.ClassCounts(cap);
  std::vector<int> min_counts(num_classes, 0), avail(num_classes, 0);
  for (int c = 0; c < num_classes; ++c) {
    min_counts[c] = static_cast<int>(pins_of_class[c].size());
    avail[c] = acct.ClassDrained(c) ? min_counts[c] : class_counts[c];
  }

  // The bounded knapsack over class counts: cheapest fractional covers in
  // ascending fleet cost. Unlike the retired prefix enumeration, this
  // reaches mixes that interleave two bounded classes mid-order without
  // any greedy rescue. The greedy anchor prunes mixes that cannot improve
  // on a known-feasible fleet.
  constexpr int kMaxMixProbes = 48;
  const std::vector<ClassMix> mixes = BoundEngine::CheapestCoverMixes(
      acct, demand, min_servers, min_counts, avail,
      /*max_cost=*/greedy_cost >= 0.0 ? greedy_cost : 0.0,
      /*max_mixes=*/kMaxMixProbes);

  // Trace ids for the budget probes (one branch when no sink attached).
  uint32_t obs_track = 0, obs_probe = 0, obs_improve = 0;
  if (options_.sink != nullptr) {
    obs::TraceSink& trace = options_.sink->trace();
    obs_track = trace.InternTrack("dimensioner/" +
                                  std::to_string(options_.seed));
    obs_probe = trace.InternName("budget_probe");
    obs_improve = trace.InternName("dim_improve");
  }

  // Ascending server-index subset realizing a class-count mix: each
  // class's pinned servers, then its lowest non-pinned indices.
  const auto subset_for = [&](const std::vector<int>& counts) {
    std::vector<int> subset;
    for (int c = 0; c < num_classes; ++c) {
      int taken = 0;
      for (int j : pins_of_class[c]) {
        if (taken >= counts[c]) break;
        subset.push_back(j);
        ++taken;
      }
      const int begin = problem_.fleet.ClassBegin(c);
      for (int j = begin; j < begin + class_counts[c] && taken < counts[c];
           ++j) {
        if (!is_pin[j]) {
          subset.push_back(j);
          ++taken;
        }
      }
    }
    std::sort(subset.begin(), subset.end());
    return subset;
  };

  const auto probe = [&](const std::vector<int>& servers, double mix_cost,
                         Assignment* out) {
    ++result.budget_probes;
    const bool ok = engine_.ProbeServers(
        servers, options_.probe_direct_evaluations, out);
    if (options_.sink != nullptr) {
      options_.sink->trace().Emit(
          obs_track, obs_probe, obs::EventKind::kPoint,
          /*i0=*/static_cast<int64_t>(servers.size()),
          /*i1=*/ok ? 1 : 0, /*d0=*/mix_cost);
      options_.sink->metrics().counter("dimensioner.budget_probes")->Add(1);
    }
    return ok;
  };
  const auto improve = [&](Assignment a, std::vector<int> servers) {
    result.found = true;
    result.assignment = std::move(a);
    result.servers = std::move(servers);
    result.class_counts.assign(num_classes, 0);
    for (int j : result.servers) {
      ++result.class_counts[problem_.fleet.ClassOf(j)];
    }
    result.budget = problem_.fleet.CostOfServers(result.servers);
    if (options_.sink != nullptr) {
      options_.sink->trace().Emit(
          obs_track, obs_improve, obs::EventKind::kPoint,
          /*i0=*/static_cast<int64_t>(result.servers.size()),
          /*i1=*/1, /*d0=*/result.budget);
    }
    if (on_improve) on_improve(result.assignment);
  };

  // Mixes arrive cost-ascending, so the first probe-feasible one is the
  // cheapest reachable — nothing cheaper remains to try.
  for (const ClassMix& mix : mixes) {
    if (stop()) break;
    Assignment a;
    const std::vector<int> servers = subset_for(mix.counts);
    if (servers.empty()) continue;
    if (probe(servers, mix.cost, &a)) {
      improve(std::move(a), servers);
      break;
    }
  }

  if (!result.found && !stop()) {
    // No bounded-budget mix held the load (or the knapsack was anchored
    // out): relax to the whole placable fleet plus pins once, the
    // full-order fallback of the retired prefix search. The engine's
    // greedy rescue remains the backstop past this.
    std::vector<int> full = acct.PlacableServers();
    for (int j = 0; j < cap; ++j) {
      if (is_pin[j] &&
          std::find(full.begin(), full.end(), j) == full.end()) {
        full.push_back(j);
      }
    }
    std::sort(full.begin(), full.end());
    if (!full.empty()) {
      Assignment a;
      if (probe(full, problem_.fleet.CostOfServers(full), &a)) {
        improve(std::move(a), std::move(full));
      }
    }
  }
  return result;
}

Assignment FleetDimensioner::GreedySeed(const ConsolidationProblem& problem,
                                        int cap) {
  bool clean = false;
  if (cap < 1 || problem.TotalSlots() == 0) {
    return GreedyMultiResource(problem, cap, &clean);
  }
  const LoadAccountant acct(problem, cap, /*track_server_load=*/false);
  const LoadAccountant::AggregateDemand demand = acct.TotalDemand();
  const int min_servers = MinServersOf(problem);
  const std::vector<std::vector<int>> orders = CandidateOrders(problem, acct, cap);

  // No probes here: pick the candidate coverage prefix with the cheapest
  // fractional-cover cost and pack restricted to it. Deterministic, and
  // cheap enough to run per metaheuristic warm start.
  const std::vector<int>* seed_order = nullptr;
  int seed_m = 0;
  double seed_cost = std::numeric_limits<double>::infinity();
  for (const std::vector<int>& order : orders) {
    const int m = CoveragePrefix(acct, demand, min_servers, order);
    if (m <= 0) continue;
    double cost = 0;
    for (int i = 0; i < m; ++i) {
      cost += problem.fleet.classes[problem.fleet.ClassOf(order[i])].cost_weight;
    }
    if (cost < seed_cost) {
      seed_cost = cost;
      seed_order = &order;
      seed_m = m;
    }
  }
  if (seed_order == nullptr) return GreedyMultiResource(problem, cap, &clean);
  const std::vector<int> subset = SubsetOf(*seed_order, seed_m);
  return GreedyMultiResource(problem, cap, &clean, &subset);
}

}  // namespace kairos::core
